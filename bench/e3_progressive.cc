// E3 — incremental/progressive computation (Section 2, refs [46, 2, 69,
// 123]): in the WoD setting data arrives over an endpoint in pages, so a
// batch system cannot answer before the whole dataset has streamed in. A
// progressive aggregator shows its first estimate after one page and hits
// a 1%-CI answer after a (CLT-fixed, N-independent) number of rows —
// so its advantage grows linearly with dataset size.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "explore/progressive.h"

namespace lodviz {
namespace {

int Run() {
  bench::Telemetry telemetry("e3_progressive");
  bench::PrintHeader(
      "E3", "Progressive aggregation over streaming data",
      "first answers appear after one page; 1%-CI answers after a fixed "
      "number of rows regardless of N — batch systems wait for the full "
      "stream");

  // Endpoint model: pages of 10k rows, 50 ms per round trip (network +
  // server), the regime live SPARQL endpoints operate in.
  const size_t kPageRows = 10000;
  const double kPageMs = 50.0;

  TablePrinter table({"N", "batch: time to exact (s)",
                      "progressive: first estimate (s)",
                      "progressive: 1%-CI answer (s)", "speedup to 1%",
                      "1%-answer err"});
  Rng rng(13);
  for (size_t n : {200000ul, 800000ul, 3200000ul, 12800000ul}) {
    // I.i.d. stream (order is already random; no shuffle needed).
    explore::ProgressiveAggregator agg(n);
    double true_sum = 0;
    size_t rows_to_ci = 0;
    double mean_at_ci = 0;
    bool reached = false;
    std::vector<double> page(kPageRows);
    size_t produced = 0;
    while (produced < n) {
      size_t m = std::min(kPageRows, n - produced);
      for (size_t i = 0; i < m; ++i) {
        page[i] = rng.Normal(1000.0, 250.0);
        true_sum += page[i];
      }
      produced += m;
      agg.ProcessChunk(page.data(), m);
      if (!reached) {
        explore::ProgressiveEstimate est = agg.Estimate();
        if (est.rows_seen > 30 && est.ci95 <= 0.01 * std::abs(est.mean)) {
          reached = true;
          rows_to_ci = est.rows_seen;
          mean_at_ci = est.mean;
        }
      }
    }
    double true_mean = true_sum / static_cast<double>(n);
    if (!reached) {
      rows_to_ci = n;
      mean_at_ci = agg.Estimate().mean;
    }

    double pages_total = std::ceil(static_cast<double>(n) / kPageRows);
    double pages_to_ci =
        std::ceil(static_cast<double>(rows_to_ci) / kPageRows);
    double batch_s = pages_total * kPageMs / 1e3;
    double first_s = kPageMs / 1e3;
    double ci_s = pages_to_ci * kPageMs / 1e3;

    table.AddRow({FormatCount(n), bench::Num(batch_s, 1),
                  bench::Num(first_s, 2), bench::Num(ci_s, 2),
                  bench::Num(batch_s / ci_s, 0) + "x",
                  bench::Pct(std::abs(mean_at_ci - true_mean) /
                             std::abs(true_mean))});
  }
  table.Print(std::cout);

  std::cout << "\nLocal-compute view (no network): CPU ms to reach a 1% CI "
               "vs scanning everything, including the progressive "
               "machinery's own overhead:\n";
  TablePrinter cpu({"N", "full scan+var ms", "progressive-to-1% ms",
                    "rows consumed"});
  for (size_t n : {800000ul, 12800000ul}) {
    std::vector<double> values;
    values.reserve(n);
    Rng vrng(21);
    for (size_t i = 0; i < n; ++i) values.push_back(vrng.Normal(1000, 250));

    Stopwatch sw;
    double sum = 0, sumsq = 0;
    for (double v : values) {
      sum += v;
      sumsq += v * v;
    }
    volatile double sink = sum + sumsq;
    (void)sink;
    double scan_ms = sw.ElapsedMillis();

    sw.Reset();
    explore::ProgressiveAggregator agg(n);
    size_t pos = 0;
    explore::ProgressiveEstimate est;
    while (pos < n) {
      size_t m = std::min<size_t>(5000, n - pos);
      agg.ProcessChunk(values.data() + pos, m);
      pos += m;
      est = agg.Estimate();
      if (est.rows_seen > 30 && est.ci95 <= 0.01 * std::abs(est.mean)) break;
    }
    double prog_ms = sw.ElapsedMillis();
    cpu.AddRow({FormatCount(n), bench::Ms(scan_ms), bench::Ms(prog_ms),
                FormatCount(est.rows_seen)});
  }
  cpu.Print(std::cout);

  std::cout << "\nConvergence trajectory for N = 3.2M (mean +/- CI95):\n";
  Rng rng2(19);
  std::vector<double> values;
  for (size_t i = 0; i < 3200000; ++i) values.push_back(rng2.Normal(1000, 250));
  auto trajectory = explore::RunProgressive(values, 20000, 0.0, 23);
  TablePrinter conv({"rows seen", "mean", "ci95", "rel. CI width"});
  for (size_t i = 0; i < trajectory.size(); i = i == 0 ? 1 : i * 2) {
    const auto& est = trajectory[i];
    conv.AddRow({FormatCount(est.rows_seen), bench::Num(est.mean),
                 bench::Num(est.ci95, 3),
                 bench::Pct(est.ci95 / std::abs(est.mean))});
    if (i >= trajectory.size() / 2) break;
  }
  conv.Print(std::cout);

  std::cout << "\nThread scaling — one 12.8M-value ProcessChunk (parallel "
               "Welford partials, Chan-merged); 1 thread = original serial "
               "accumulation:\n";
  TablePrinter scaling({"threads", "chunk ms", "speedup vs 1T"});
  {
    std::vector<double> big;
    big.reserve(12800000);
    Rng brng(27);
    for (size_t i = 0; i < 12800000; ++i) big.push_back(brng.Normal(1000, 250));
    double t1_ms = 0.0;
    for (size_t t : {1ul, 2ul, 4ul, 8ul}) {
      exec::SetThreads(t);
      exec::ParallelFor(0, t * 2, 1, [](size_t, size_t) {});  // warm pool
      explore::ProgressiveAggregator agg(big.size());
      Stopwatch tsw;
      agg.ProcessChunk(big);
      double ms = tsw.ElapsedMillis();
      volatile double sink = agg.Estimate().mean;
      (void)sink;
      if (t == 1) t1_ms = ms;
      telemetry.RecordPhase("chunk_ms_t" + std::to_string(t), ms);
      scaling.AddRow({FormatCount(t), bench::Ms(ms),
                      bench::Num(t1_ms / std::max(1e-6, ms), 2) + "x"});
    }
    exec::SetThreads(0);
  }
  scaling.Print(std::cout);

  std::cout << "Shape check: rows-to-1%-CI is constant in N (CLT), so the "
               "streaming speedup grows linearly with dataset size; local "
               "CPU cost of the progressive path is likewise flat.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
