// E14 — the SPARQL serving layer under load: sustained throughput and
// tail latency of the HTTP front door at 1, 4, and 16 simulated clients,
// the value of the fingerprint-keyed plan cache, and the
// warm-equals-cold answer-stability contract. The survey's premise is
// interactive exploration over live endpoints; this measures whether the
// serving substrate holds up when many explorers hit it at once.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/engine.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/server.h"

namespace lodviz {
namespace {

// The client mix: the same exploration-shaped queries e10 uses, now
// arriving over the wire.
const char* kQueries[] = {
    "SELECT ?s ?age WHERE { "
    "?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    "<http://lod.example/ontology/Person> ; "
    "<http://lod.example/ontology/age> ?age . FILTER(?age > 60) } "
    "ORDER BY DESC(?age) LIMIT 100",
    "SELECT ?cat (COUNT(*) AS ?n) WHERE { "
    "?s <http://lod.example/ontology/category> ?cat } GROUP BY ?cat "
    "ORDER BY DESC(?n) ?cat",
    "SELECT ?s ?label WHERE { ?s <http://lod.example/ontology/age> ?age . "
    "OPTIONAL { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?label . } "
    "FILTER(?age < 20) } ORDER BY ?s LIMIT 200",
    "ASK { ?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    "<http://lod.example/ontology/Place> }",
};
constexpr size_t kNumQueries = sizeof(kQueries) / sizeof(kQueries[0]);

std::string PercentEncode(const std::string& s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : s) {
    if (isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xF]);
    }
  }
  return out;
}

/// One-shot HTTP exchange (connect, send, read to close).
std::string Fetch(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[8192];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

struct LoadResult {
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  size_t errors = 0;
};

/// Closed-loop load: `clients` threads each issue `per_client` requests
/// back-to-back; per-request latency is client-observed wall time.
LoadResult RunLoad(int port, size_t clients, size_t per_client,
                   const std::vector<std::string>& requests,
                   const std::vector<std::string>& expected_bodies) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<size_t> errors{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      latencies[c].reserve(per_client);
      for (size_t r = 0; r < per_client; ++r) {
        const size_t i = (c + r) % requests.size();
        Stopwatch sw;
        const std::string raw = Fetch(port, requests[i]);
        latencies[c].push_back(sw.ElapsedMillis());
        Result<serve::HttpResponse> resp = serve::ParseHttpResponse(raw);
        if (!resp.ok() || resp.ValueOrDie().status != 200 ||
            resp.ValueOrDie().body != expected_bodies[i]) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double elapsed_s = wall.ElapsedMillis() / 1000.0;

  std::vector<double> all;
  for (const auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  LoadResult out;
  out.qps = elapsed_s > 0 ? static_cast<double>(all.size()) / elapsed_s : 0;
  if (!all.empty()) {
    out.p50_ms = all[all.size() / 2];
    out.p99_ms = all[std::min(all.size() - 1,
                              static_cast<size_t>(all.size() * 0.99))];
  }
  out.errors = errors.load();
  return out;
}

void Run() {
  bench::PrintHeader(
      "E14", "SPARQL serving layer under concurrent load",
      "the plan-cached, admission-controlled front door sustains "
      "multi-client query traffic with stable answers (warm == cold) and "
      "bounded tail latency");
  bench::Telemetry telemetry("e14_serving");

  core::Engine engine;
  workload::SyntheticLodOptions synth;
  synth.num_entities = 4000;
  synth.seed = 11;
  Stopwatch load_sw;
  engine.LoadSynthetic(synth);
  telemetry.RecordPhase("load", load_sw.ElapsedMillis());
  std::cout << "dataset: " << engine.store().size() << " triples\n\n";

  serve::FrontendOptions fopts;
  fopts.max_concurrent = 32;
  auto frontend = bench::Unwrap(engine.MakeFrontend(fopts));

  exec::ThreadPool pool(10);
  serve::Server::Options sopts;
  sopts.port = 0;
  sopts.num_workers = 8;
  sopts.queue_capacity = 256;
  serve::Server server(frontend.get(), &pool, sopts);
  LODVIZ_CHECK_OK(server.Start());
  const int port = server.port();

  std::vector<std::string> requests;
  for (size_t i = 0; i < kNumQueries; ++i) {
    requests.push_back("GET /sparql?query=" + PercentEncode(kQueries[i]) +
                       " HTTP/1.1\r\nHost: bench\r\n\r\n");
  }

  // Cold pass: first execution of each query plans it; the bodies become
  // the reference every later (cached-plan) answer must match byte for
  // byte — the answer-stability contract gate 6 also enforces.
  std::vector<std::string> expected;
  for (const std::string& req : requests) {
    Result<serve::HttpResponse> cold = serve::ParseHttpResponse(
        Fetch(port, req));
    LODVIZ_CHECK_OK(cold);
    LODVIZ_CHECK(cold.ValueOrDie().status == 200)
        << "cold request failed: " << cold.ValueOrDie().body;
    expected.push_back(cold.ValueOrDie().body);
  }
  for (size_t i = 0; i < requests.size(); ++i) {
    Result<serve::HttpResponse> warm = serve::ParseHttpResponse(
        Fetch(port, requests[i]));
    LODVIZ_CHECK_OK(warm);
    LODVIZ_CHECK(warm.ValueOrDie().body == expected[i])
        << "warm-cache answer diverged from cold for query " << i;
  }
  std::cout << "warm == cold: all " << requests.size()
            << " query bodies bit-identical\n\n";

  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::Counter& cache_hits = reg.GetCounter("serve.plan_cache.hits");
  obs::Counter& cache_misses = reg.GetCounter("serve.plan_cache.misses");
  obs::Counter& shed = reg.GetCounter("serve.shed");

  TablePrinter table({"clients", "requests", "qps", "p50 ms", "p99 ms",
                      "errors"});
  const size_t kPerClient = 60;
  for (size_t clients : {1u, 4u, 16u}) {
    const uint64_t hits0 = cache_hits.value();
    Stopwatch phase_sw;
    LoadResult r = RunLoad(port, clients, kPerClient, requests, expected);
    const std::string tag = "clients" + std::to_string(clients);
    telemetry.RecordPhase(tag + "_run", phase_sw.ElapsedMillis());
    // qps/p99 ride along in the phases map (the JSON consumer reads them
    // by name; units are in the key, not ms).
    telemetry.RecordPhase(tag + "_qps", r.qps);
    telemetry.RecordPhase(tag + "_p50_ms", r.p50_ms);
    telemetry.RecordPhase(tag + "_p99_ms", r.p99_ms);
    table.AddRow({std::to_string(clients),
                  std::to_string(clients * kPerClient), bench::Num(r.qps, 0),
                  bench::Ms(r.p50_ms), bench::Ms(r.p99_ms),
                  std::to_string(r.errors)});
    LODVIZ_CHECK(r.errors == 0)
        << "divergent or failed responses under " << clients << " clients";
    LODVIZ_CHECK(cache_hits.value() > hits0)
        << "plan cache served no hits during the load phase";
  }
  std::cout << table.ToString() << "\n";

  std::cout << "plan cache: " << cache_hits.value() << " hits, "
            << cache_misses.value() << " misses ("
            << bench::Pct(static_cast<double>(cache_hits.value()) /
                          std::max<uint64_t>(
                              1, cache_hits.value() + cache_misses.value()))
            << " hit rate); load-shed refusals: " << shed.value() << "\n";

  server.Stop();
  pool.Shutdown();
}

}  // namespace
}  // namespace lodviz

int main() {
  lodviz::Run();
  return 0;
}
