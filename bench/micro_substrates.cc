// Google-benchmark micro-benchmarks for the hot substrate paths: the
// per-operation costs everything else in lodviz is built on.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "common/random.h"
#include "geo/rtree.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "rdf/triple_store.h"
#include "sparql/column_batch.h"
#include "sparql/engine.h"
#include "sparql/parser.h"
#include "sparql/row_append.h"
#include "stats/sketch.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <unistd.h>
#include <unordered_map>
#include <vector>

namespace lodviz {
namespace {

void BM_DictionaryIntern(benchmark::State& state) {
  rdf::Dictionary dict;
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        dict.InternIri("http://bench.example/entity/" +
                       std::to_string(i++ % 100000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DictionaryIntern);

void BM_TripleStoreMatchBySubject(benchmark::State& state) {
  rdf::TripleStore store;
  Rng rng(1);
  for (int i = 0; i < 200000; ++i) {
    store.AddEncoded({static_cast<rdf::TermId>(1 + rng.Uniform(20000)),
                      static_cast<rdf::TermId>(1 + rng.Uniform(10)),
                      static_cast<rdf::TermId>(1 + rng.Uniform(50000))});
  }
  store.Compact();
  Rng qrng(2);
  for (auto _ : state) {
    rdf::TriplePattern pat(
        static_cast<rdf::TermId>(1 + qrng.Uniform(20000)),
        rdf::kInvalidTermId, rdf::kInvalidTermId);
    benchmark::DoNotOptimize(store.Count(pat));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TripleStoreMatchBySubject);

void BM_BTreeLookup(benchmark::State& state) {
  std::string path = "/tmp/lodviz_microbench_" + std::to_string(::getpid());
  storage::PageFile file;
  (void)file.Open(path, true);
  storage::BufferPool pool(&file, 1024);
  std::vector<storage::BTree::Item> items;
  for (uint64_t i = 0; i < 500000; ++i) items.push_back({{i * 7, i}, i});
  auto tree = storage::BTree::BulkLoad(&pool, items);
  Rng rng(3);
  for (auto _ : state) {
    uint64_t i = rng.Uniform(500000);
    benchmark::DoNotOptimize(tree->Lookup({i * 7, i}));
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_BTreeLookup);

/// Shared fixture for the leaf-format benchmarks: dense SPO-shaped keys
/// (clustered hi, small lo gaps, zero values — the triple-index common
/// case the compressed format is tuned for).
std::vector<storage::BTree::Item> LeafBenchItems() {
  std::vector<storage::BTree::Item> items;
  for (uint64_t i = 0; i < 4096; ++i) {
    items.push_back({{1000 + i / 16, (i % 16) * 3}, 0});
  }
  return items;
}

void BM_VarintGapEncode(benchmark::State& state) {
  const std::vector<storage::BTree::Item> items = LeafBenchItems();
  alignas(8) uint8_t page[storage::kPageSize] = {};
  size_t encoded = 0;
  for (auto _ : state) {
    storage::CompressedLeafBuilder builder(page, 16);
    size_t n = 0;
    while (n < items.size() && builder.Append(items[n].key, items[n].value)) {
      ++n;
    }
    benchmark::DoNotOptimize(builder.Finish());
    encoded += n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(encoded));
}
BENCHMARK(BM_VarintGapEncode);

void BM_LeafDecodeFixed(benchmark::State& state) {
  // A fixed-format leaf is raw 24-byte entries after the header; decoding
  // is a bounds-checked copy-out, the baseline the varint decoder races.
  const std::vector<storage::BTree::Item> items = LeafBenchItems();
  alignas(8) uint8_t page[storage::kPageSize] = {};
  const size_t capacity = (storage::kPageSize - 16) / 24;
  const size_t n = std::min(capacity, items.size());
  std::memcpy(page + 16, items.data(), n * sizeof(storage::BTree::Item));
  std::vector<storage::BTree::Item> out;
  out.reserve(capacity);
  size_t decoded = 0;
  for (auto _ : state) {
    out.clear();
    const auto* entries =
        reinterpret_cast<const storage::BTree::Item*>(page + 16);
    out.insert(out.end(), entries, entries + n);
    benchmark::DoNotOptimize(out.data());
    decoded += n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(decoded));
}
BENCHMARK(BM_LeafDecodeFixed);

void BM_LeafDecodeVarint(benchmark::State& state) {
  const std::vector<storage::BTree::Item> items = LeafBenchItems();
  alignas(8) uint8_t page[storage::kPageSize] = {};
  storage::CompressedLeafBuilder builder(page, 16);
  size_t n = 0;
  while (n < items.size() && builder.Append(items[n].key, items[n].value)) ++n;
  const uint16_t count = builder.Finish();
  storage::CompressedLeafReader reader(page, 16, count);
  std::vector<storage::BTree::Item> out;
  out.reserve(count);
  size_t decoded = 0;
  for (auto _ : state) {
    out.clear();
    reader.DecodeFrom(storage::Key128::Min(), &out);
    benchmark::DoNotOptimize(out.data());
    decoded += out.size();
  }
  state.SetItemsProcessed(static_cast<int64_t>(decoded));
}
BENCHMARK(BM_LeafDecodeVarint);

void BM_RTreeWindowQuery(benchmark::State& state) {
  Rng rng(4);
  std::vector<geo::RTree::Entry> entries;
  for (uint64_t i = 0; i < 100000; ++i) {
    double x = rng.UniformDouble(0, 1000), y = rng.UniformDouble(0, 1000);
    entries.push_back({{x, y, x, y}, i});
  }
  geo::RTree tree;
  tree.BulkLoad(entries);
  Rng qrng(5);
  for (auto _ : state) {
    double x = qrng.UniformDouble(0, 950), y = qrng.UniformDouble(0, 950);
    uint64_t n = 0;
    tree.Search({x, y, x + 50, y + 50}, [&](const geo::RTree::Entry&) {
      ++n;
      return true;
    });
    benchmark::DoNotOptimize(n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RTreeWindowQuery);

void BM_CountMinUpdate(benchmark::State& state) {
  stats::CountMinSketch cms(4096, 4);
  uint64_t i = 0;
  for (auto _ : state) {
    cms.Add(i++ * 2654435761ULL);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate);

void BM_HyperLogLogUpdate(benchmark::State& state) {
  stats::HyperLogLog hll(14);
  uint64_t i = 0;
  for (auto _ : state) {
    hll.Add(i++ * 0x9E3779B97F4A7C15ULL);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogUpdate);

void BM_BufferPoolFetchHit(benchmark::State& state) {
  std::string path = "/tmp/lodviz_microbench_bp_" + std::to_string(::getpid());
  storage::PageFile file;
  (void)file.Open(path, true);
  storage::BufferPool pool(&file, 64);
  std::vector<storage::PageId> ids;
  for (int i = 0; i < 32; ++i) {
    auto p = pool.NewPage();
    ids.push_back(p->page_id());
  }
  Rng rng(6);
  for (auto _ : state) {
    auto p = pool.Fetch(ids[rng.Uniform(ids.size())]);
    benchmark::DoNotOptimize(p->data());
  }
  state.SetItemsProcessed(state.iterations());
  std::remove(path.c_str());
}
BENCHMARK(BM_BufferPoolFetchHit);

void BM_SparqlExecute(benchmark::State& state) {
  rdf::TripleStore store;
  rdf::Dictionary& dict = store.dict();
  rdf::TermId age = dict.InternIri("http://bench.example/age");
  for (int i = 0; i < 10000; ++i) {
    rdf::TermId s =
        dict.InternIri("http://bench.example/person/" + std::to_string(i));
    rdf::TermId o = dict.Intern(rdf::Term::IntLiteral(i % 90));
    store.AddEncoded({s, age, o});
  }
  store.Compact();
  sparql::QueryEngine engine(&store);
  sparql::Query query = bench::Unwrap(sparql::ParseQuery(
      "SELECT ?s WHERE { ?s <http://bench.example/age> ?age . "
      "FILTER(?age < 10) } LIMIT 100"));
  for (auto _ : state) {
    auto r = engine.Execute(query);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparqlExecute);

// Binding-row representation: the slot-addressed executor stores each
// solution as a dense TermId vector indexed by planner-assigned slot; the
// alternative is a per-row string-keyed hash map. These two benchmarks
// measure the cost of extending a row by one binding under each scheme —
// the innermost operation of BGP evaluation.
void BM_BindingExtendSlotRow(benchmark::State& state) {
  constexpr size_t kWidth = 4;
  std::vector<rdf::TermId> parent = {5, 17, 0, 0};
  std::vector<rdf::TermId> out;
  rdf::TermId v = 1;
  for (auto _ : state) {
    out.assign(parent.begin(), parent.end());
    out[2] = v;
    out[3] = v + 1;
    ++v;
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * kWidth * sizeof(rdf::TermId));
}
BENCHMARK(BM_BindingExtendSlotRow);

void BM_BindingExtendHashMap(benchmark::State& state) {
  std::unordered_map<std::string, rdf::TermId> parent = {{"?a", 5},
                                                         {"?b", 17}};
  std::unordered_map<std::string, rdf::TermId> out;
  rdf::TermId v = 1;
  for (auto _ : state) {
    out = parent;
    out["?c"] = v;
    out["?d"] = v + 1;
    ++v;
    benchmark::DoNotOptimize(&out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BindingExtendHashMap);

// Observability substrate costs: a counter increment and a histogram record
// are one relaxed atomic op each; a disabled span is a single relaxed load.
// These bound the overhead instrumentation adds to the hot paths above.
void BM_ObsCounterIncrement(benchmark::State& state) {
  obs::Counter& c =
      obs::MetricRegistry::Global().GetCounter("bench.micro.counter");
  for (auto _ : state) {
    c.Increment();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsCounterIncrement);

void BM_ObsHistogramRecord(benchmark::State& state) {
  obs::Histogram& h =
      obs::MetricRegistry::Global().GetHistogram("bench.micro.histogram");
  uint64_t i = 0;
  for (auto _ : state) {
    h.Record(i++ * 2654435761ULL >> 32);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsHistogramRecord);

void BM_ObsSpanDisabled(benchmark::State& state) {
  obs::Tracer::Global().SetEnabled(false);
  for (auto _ : state) {
    LODVIZ_TRACE_SPAN("bench.micro.span");
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ObsSpanDisabled);

// Per-operator profiling cost (obs::OperatorTimer, the EXPLAIN ANALYZE
// substrate). The executor constructs one timer per operator invocation;
// with profiling off the node pointer is null and construct+Finish must
// compile down to two predictable branches — the disabled path is what
// every query pays (see the EXPERIMENTS.md micro-benchmarks section).
void BM_ProfileOperatorOff(benchmark::State& state) {
  for (auto _ : state) {
    obs::OperatorTimer timer(nullptr, 1);
    timer.Finish(1);
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileOperatorOff);

void BM_ProfileOperatorOn(benchmark::State& state) {
  obs::OperatorProfile node;
  for (auto _ : state) {
    obs::OperatorTimer timer(&node, 1);
    timer.Finish(1);
    benchmark::DoNotOptimize(&node);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProfileOperatorOn);

// --- Adaptive-join substrate -------------------------------------------
//
// Hash vs index nested-loop on a fanout self-join at three probe-rows/
// bucket-size cardinality ratios. Every subject has `fanout` p1-edges and
// the second pattern re-derives the edge with a variable predicate
// (`?a ?p ?b`), so a nested-loop probe must index-scan the subject's
// whole `fanout`-row range to find its single match, while the hash probe
// jumps straight to a one-element (?a,?b)-keyed bucket. Output is pinned
// at 8192 rows for every arg, so the measured difference is pure probe
// cost: NLJ work grows linearly with fanout, hash work stays flat.

constexpr int kJoinResultRows = 8192;

void FillJoinStore(rdf::TripleStore* store, int fanout) {
  rdf::Dictionary& dict = store->dict();
  rdf::TermId p1 = dict.InternIri("http://bench.example/p1");
  const int subjects = kJoinResultRows / fanout;
  for (int i = 0; i < subjects; ++i) {
    rdf::TermId a =
        dict.InternIri("http://bench.example/a/" + std::to_string(i));
    for (int k = 0; k < fanout; ++k) {
      rdf::TermId b = dict.InternIri("http://bench.example/b/" +
                                     std::to_string(i * fanout + k));
      store->AddEncoded({a, p1, b});
    }
  }
  store->Compact();
}

void RunJoinBench(benchmark::State& state, sparql::JoinForce force) {
  rdf::TripleStore store;
  FillJoinStore(&store, static_cast<int>(state.range(0)));
  sparql::QueryEngine::Options opts;
  opts.force_join = force;
  sparql::QueryEngine engine(&store, opts);
  // COUNT(*) keeps the measurement on the join itself — materializing
  // 8192 projected term rows would otherwise dominate both strategies.
  sparql::Query query = bench::Unwrap(sparql::ParseQuery(
      "SELECT (COUNT(*) AS ?n) WHERE { ?a <http://bench.example/p1> ?b . "
      "?a ?p ?b . }"));
  for (auto _ : state) {
    auto r = engine.Execute(query);
    benchmark::DoNotOptimize(r.ok());
  }
  state.SetItemsProcessed(state.iterations() * kJoinResultRows);
}

void BM_SparqlJoinNestedLoop(benchmark::State& state) {
  RunJoinBench(state, sparql::JoinForce::kNestedLoop);
}
BENCHMARK(BM_SparqlJoinNestedLoop)->Arg(4)->Arg(32)->Arg(256);

void BM_SparqlJoinHash(benchmark::State& state) {
  RunJoinBench(state, sparql::JoinForce::kHash);
}
BENCHMARK(BM_SparqlJoinHash)->Arg(4)->Arg(32)->Arg(256);

// --- Buffer-pool striping ----------------------------------------------
//
// Fetch throughput on an all-hits working set, striped pool vs the same
// pool behind one big mutex (how the pre-PR-5 DiskSourceAdapter
// serialized every scan). Run at 1/2/4/8 threads: the striped pool's
// per-shard mutexes should keep scaling where the single mutex flatlines.
// On a single-core host both curves flatline — the interesting signal is
// then the absence of *regression* at thread counts > 1.

struct PoolBenchEnv {
  std::string path;
  storage::PageFile file;
  std::unique_ptr<storage::BufferPool> pool;
  std::mutex big_lock;
  std::vector<storage::PageId> ids;
};
PoolBenchEnv* g_pool_env = nullptr;

void PoolBenchSetup() {
  auto* env = new PoolBenchEnv;
  env->path = "/tmp/lodviz_microbench_stripe_" + std::to_string(::getpid());
  (void)env->file.Open(env->path, true);
  env->pool = std::make_unique<storage::BufferPool>(&env->file, 128);
  for (int i = 0; i < 128; ++i) {
    auto p = env->pool->NewPage();
    env->ids.push_back(p->page_id());
  }
  g_pool_env = env;
}

void PoolBenchTeardown() {
  std::string path = g_pool_env->path;
  delete g_pool_env;
  g_pool_env = nullptr;
  std::remove(path.c_str());
}

void BM_BufferPoolFetchStriped(benchmark::State& state) {
  if (state.thread_index() == 0) PoolBenchSetup();
  // google-benchmark barriers all threads at loop entry, so the setup
  // above is visible before any thread iterates.
  Rng rng(100 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    auto p = g_pool_env->pool->Fetch(
        g_pool_env->ids[rng.Uniform(g_pool_env->ids.size())]);
    benchmark::DoNotOptimize(p->data());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) PoolBenchTeardown();
}
BENCHMARK(BM_BufferPoolFetchStriped)->ThreadRange(1, 8)->UseRealTime();

void BM_BufferPoolFetchSingleMutex(benchmark::State& state) {
  if (state.thread_index() == 0) PoolBenchSetup();
  Rng rng(200 + static_cast<uint64_t>(state.thread_index()));
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(g_pool_env->big_lock);
    auto p = g_pool_env->pool->Fetch(
        g_pool_env->ids[rng.Uniform(g_pool_env->ids.size())]);
    benchmark::DoNotOptimize(p->data());
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) PoolBenchTeardown();
}
BENCHMARK(BM_BufferPoolFetchSingleMutex)->ThreadRange(1, 8)->UseRealTime();

// --- Decoded-literal fast path -----------------------------------------
//
// The cost of one numeric filter comparison per row: via the dictionary's
// decoded-value side table (one indexed load) vs re-parsing the literal's
// lexical form the way the pre-PR-5 evaluator did on every row.

void BM_FilterNumericDecoded(benchmark::State& state) {
  rdf::Dictionary dict;
  std::vector<rdf::TermId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(dict.Intern(rdf::Term::IntLiteral(i % 90)));
  }
  size_t i = 0;
  for (auto _ : state) {
    const rdf::DecodedValue& d = dict.decoded(ids[i++ & 4095]);
    bool pass = d.kind == rdf::DecodedValue::Kind::kNum && d.num < 10.0;
    benchmark::DoNotOptimize(pass);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterNumericDecoded);

void BM_FilterNumericStringParse(benchmark::State& state) {
  rdf::Dictionary dict;
  std::vector<rdf::TermId> ids;
  for (int i = 0; i < 4096; ++i) {
    ids.push_back(dict.Intern(rdf::Term::IntLiteral(i % 90)));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto v = dict.term(ids[i++ & 4095]).AsDouble();
    bool pass = v.ok() && v.ValueOrDie() < 10.0;
    benchmark::DoNotOptimize(pass);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FilterNumericStringParse);

// --- Row vs batch operator substrates ----------------------------------
//
// The vectorized executor's two inner loops against their row-engine
// counterparts, at the representation level. Extend: the row engine copies
// the full parent solution (width TermIds) per match and appends it to a
// row-major table; the batch engine appends one run via
// ColumnBatch::AppendRun, paying only for the columns that actually vary
// (constant-encoded carries cost O(1) per run). Filter: the row engine
// reads the filtered slot with a row-major stride and dispatches each row
// through the expression evaluator (modeled by an opaque function
// pointer); the batch engine's specialized path streams one contiguous
// column segment with the comparison inlined, emitting a selection vector.

constexpr size_t kOpWidth = 8;     // typical mid-plan solution width
constexpr size_t kOpRows = 4096;   // four full batches of work per tick

using FilterFn = bool (*)(const rdf::DecodedValue&);
bool DecodedAtLeast500(const rdf::DecodedValue& d) {
  return d.kind == rdf::DecodedValue::Kind::kNum && d.num >= 500.0;
}

void BM_FilterRow(benchmark::State& state) {
  rdf::Dictionary dict;
  sparql::FlatRows<rdf::TermId> rows(kOpWidth);
  std::vector<rdf::TermId> rowbuf(kOpWidth, 7);
  for (size_t i = 0; i < kOpRows; ++i) {
    rowbuf[5] = dict.Intern(rdf::Term::IntLiteral(static_cast<int>(i % 1000)));
    rows.AppendRow(rowbuf.data());
  }
  FilterFn fn = DecodedAtLeast500;
  benchmark::DoNotOptimize(fn);  // opaque, like the per-row AST dispatch
  std::vector<uint32_t> keep;
  for (auto _ : state) {
    keep.clear();
    for (uint32_t r = 0; r < kOpRows; ++r) {
      if (fn(dict.decoded(rows.row(r)[5]))) keep.push_back(r);
    }
    benchmark::DoNotOptimize(keep.data());
  }
  state.SetItemsProcessed(state.iterations() * kOpRows);
}
BENCHMARK(BM_FilterRow);

void BM_FilterBatch(benchmark::State& state) {
  rdf::Dictionary dict;
  std::vector<rdf::TermId> values;
  values.reserve(kOpRows);
  for (size_t i = 0; i < kOpRows; ++i) {
    values.push_back(
        dict.Intern(rdf::Term::IntLiteral(static_cast<int>(i % 1000))));
  }
  sparql::ColumnBatch batch(kOpWidth);
  const std::vector<rdf::TermId> sol(kOpWidth, 7);
  const sparql::ColumnBatch::RunColumn var[1] = {{5, values.data()}};
  batch.AppendRun(sol.data(), kOpRows, var, 1);
  const sparql::ColumnSegment& col = batch.col(5);
  std::vector<uint32_t> sel;
  for (auto _ : state) {
    sel.clear();
    for (uint32_t r = 0; r < kOpRows; ++r) {
      const rdf::DecodedValue& d = dict.decoded(col.at(r));
      if (d.kind == rdf::DecodedValue::Kind::kNum && d.num >= 500.0) {
        sel.push_back(r);
      }
    }
    benchmark::DoNotOptimize(sel.data());
  }
  state.SetItemsProcessed(state.iterations() * kOpRows);
}
BENCHMARK(BM_FilterBatch);

void BM_BgpExtendRow(benchmark::State& state) {
  const std::vector<rdf::TermId> sol(kOpWidth, 7);
  std::vector<rdf::TermId> matches(kOpRows);
  for (size_t i = 0; i < kOpRows; ++i) {
    matches[i] = static_cast<rdf::TermId>(i + 1);
  }
  sparql::FlatRows<rdf::TermId> out(kOpWidth);
  std::vector<rdf::TermId> rowbuf(kOpWidth);
  for (auto _ : state) {
    out.Clear();
    for (size_t m = 0; m < matches.size(); ++m) {
      rowbuf.assign(sol.begin(), sol.end());
      rowbuf[5] = matches[m];
      out.AppendRow(rowbuf.data());
    }
    benchmark::DoNotOptimize(out.data().data());
  }
  state.SetItemsProcessed(state.iterations() * kOpRows);
  state.SetBytesProcessed(state.iterations() * kOpRows * kOpWidth *
                          sizeof(rdf::TermId));
}
BENCHMARK(BM_BgpExtendRow);

void BM_BgpExtendBatch(benchmark::State& state) {
  const std::vector<rdf::TermId> sol(kOpWidth, 7);
  std::vector<rdf::TermId> matches(kOpRows);
  for (size_t i = 0; i < kOpRows; ++i) {
    matches[i] = static_cast<rdf::TermId>(i + 1);
  }
  sparql::ColumnBatch out(kOpWidth);
  for (auto _ : state) {
    out.Clear();
    const sparql::ColumnBatch::RunColumn var[1] = {{5, matches.data()}};
    out.AppendRun(sol.data(), matches.size(), var, 1);
    benchmark::DoNotOptimize(&out);
  }
  state.SetItemsProcessed(state.iterations() * kOpRows);
  state.SetBytesProcessed(state.iterations() * kOpRows * kOpWidth *
                          sizeof(rdf::TermId));
}
BENCHMARK(BM_BgpExtendBatch);

}  // namespace
}  // namespace lodviz

BENCHMARK_MAIN();
