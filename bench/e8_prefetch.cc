// E8 — caching & prefetching for interactive latency (Section 4, refs
// [128, 16, 33, 39]): over a pan/zoom session against a simulated
// 40ms-latency tile backend, an LRU cache removes revisit cost and
// momentum prefetching hides most first-visit latency too.

#include <iostream>

#include "bench_util.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "explore/prefetch.h"
#include "geo/tiles.h"
#include "workload/scenario.h"

namespace lodviz {
namespace {

int Run() {
  bench::PrintHeader(
      "E8", "Caching and prefetching of map/graph tiles",
      "LRU caching removes revisit latency; momentum prefetching also "
      "hides first-visit latency during directional panning");

  const double kBackendMs = 40.0;  // simulated backend cost per tile
  auto scenario = workload::PanZoomTileScenario(/*max_zoom=*/9,
                                                /*num_requests=*/1200,
                                                /*seed=*/33);

  struct Config {
    const char* name;
    bool prefetch;
    size_t cache;
  };
  const Config configs[] = {
      {"no cache (re-fetch everything)", false, 1},
      {"LRU cache only", false, 512},
      {"LRU cache + momentum prefetch", true, 512},
  };

  TablePrinter table({"strategy", "user hit rate", "backend fetches",
                      "user-visible latency (s)", "total backend work (s)"});
  for (const Config& config : configs) {
    uint64_t fetches = 0;
    auto fetch = [&](const geo::TileKey& key) {
      ++fetches;
      return std::vector<uint64_t>{key.Pack()};
    };
    explore::TilePrefetcher::Options opts;
    opts.cache_capacity = config.cache;
    opts.enable_prefetch = config.prefetch;
    opts.lookahead = 2;
    explore::TilePrefetcher prefetcher(fetch, opts);

    uint64_t user_misses = 0;
    uint64_t requests = 0;
    for (const auto& key : scenario) {
      uint64_t before = prefetcher.backend_fetches();
      bool was_cached = true;
      (void)before;
      uint64_t fetches_before = fetches;
      prefetcher.Request(key);
      // A user-visible miss = a backend fetch happened synchronously for
      // THIS tile (prefetch fetches happen "in the background").
      was_cached = prefetcher.UserHitRate() > 0 &&
                   fetches == fetches_before;  // heuristic for display only
      (void)was_cached;
      ++requests;
    }
    user_misses = requests - static_cast<uint64_t>(
                                 prefetcher.UserHitRate() *
                                 static_cast<double>(requests) + 0.5);

    double user_latency_s = static_cast<double>(user_misses) * kBackendMs / 1e3;
    double backend_s = static_cast<double>(prefetcher.backend_fetches()) *
                       kBackendMs / 1e3;
    table.AddRow({config.name, bench::Pct(prefetcher.UserHitRate()),
                  FormatCount(prefetcher.backend_fetches()),
                  bench::Num(user_latency_s, 1), bench::Num(backend_s, 1)});
  }
  table.Print(std::cout);

  std::cout << "\nShape check: user-visible latency drops sharply from "
               "no-cache -> LRU -> LRU+prefetch, at the cost of extra "
               "(asynchronous) backend work — the standard prefetching "
               "trade-off in [16].\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
