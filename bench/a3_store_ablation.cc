// A3 (ablation) — triple-store compaction threshold under the dynamic
// setting: the pending-buffer size trades insert amortization against
// query-time buffer scans. Backs DESIGN.md's default of 64k.

#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "rdf/triple_store.h"

namespace lodviz {
namespace {

int Run() {
  bench::PrintHeader(
      "A3", "Triple-store compaction threshold ablation",
      "query-heavy interleaved workload (200 lookups per 10k inserts): small "
      "thresholds compact too often, huge ones make every query scan a "
      "large buffer");

  const size_t kTriples = 500000;
  const int kQueriesPerBatch = 200;  // exploration sessions are query-heavy
  const size_t kBatch = 10000;

  TablePrinter table({"threshold", "total insert ms", "total query ms",
                      "workload ms", "compactions (approx)"});
  for (size_t threshold : {4096ul, 16384ul, 65536ul, 262144ul, 1048576ul}) {
    Rng rng(5);
    rdf::TripleStore store(threshold);
    double insert_ms = 0, query_ms = 0;
    Stopwatch sw;
    size_t inserted = 0;
    while (inserted < kTriples) {
      sw.Reset();
      for (size_t i = 0; i < kBatch; ++i) {
        store.AddEncoded({static_cast<rdf::TermId>(1 + rng.Uniform(50000)),
                          static_cast<rdf::TermId>(1 + rng.Uniform(20)),
                          static_cast<rdf::TermId>(1 + rng.Uniform(100000))});
      }
      inserted += kBatch;
      insert_ms += sw.ElapsedMillis();

      sw.Reset();
      for (int q = 0; q < kQueriesPerBatch; ++q) {
        rdf::TriplePattern pat(
            static_cast<rdf::TermId>(1 + rng.Uniform(50000)),
            rdf::kInvalidTermId, rdf::kInvalidTermId);
        volatile uint64_t n = store.Count(pat);
        (void)n;
      }
      query_ms += sw.ElapsedMillis();
    }
    table.AddRow({FormatCount(threshold), bench::Ms(insert_ms),
                  bench::Ms(query_ms), bench::Ms(insert_ms + query_ms),
                  FormatCount(kTriples / threshold)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: query time grows with the threshold (linear "
               "buffer scans) while insert time shrinks (fewer sorts); the "
               "total is U-shaped with a sweet spot in the tens of "
               "thousands — the 64k default.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
