// E9 — visualization recommendation (Section 3.2: LinkDaViz, Vis Wizard,
// LDVizWiz, LDVM): datasets with a known dominant data type should elicit
// the matching visualization; rankings must respond to user preferences;
// recommendation must be fast enough to run on every dataset load.

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "rec/recommender.h"
#include "stats/profile.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

struct Case {
  std::string name;
  viz::VisKind expected;
  rdf::TripleStore store;
};

std::vector<Case> MakeCases() {
  using rdf::Term;
  std::vector<Case> cases;

  {  // Spatial dataset -> map.
    Case c{"geo points", viz::VisKind::kMap, rdf::TripleStore{}};
    for (int i = 0; i < 200; ++i) {
      std::string s = "http://x/poi" + std::to_string(i);
      c.store.Add(Term::Iri(s), Term::Iri(rdf::vocab::kGeoLat),
                  Term::DoubleLiteral(40 + i * 0.01));
      c.store.Add(Term::Iri(s), Term::Iri(rdf::vocab::kGeoLong),
                  Term::DoubleLiteral(-74 + i * 0.01));
    }
    cases.push_back(std::move(c));
  }
  {  // Single numeric property -> chart (histogram).
    Case c{"one numeric property", viz::VisKind::kChart, rdf::TripleStore{}};
    for (int i = 0; i < 200; ++i) {
      c.store.Add(Term::Iri("http://x/m" + std::to_string(i)),
                  Term::Iri("http://x/value"), Term::DoubleLiteral(i * 1.7));
    }
    cases.push_back(std::move(c));
  }
  {  // Temporal + numeric -> time-series chart.
    Case c{"time series", viz::VisKind::kChart, rdf::TripleStore{}};
    for (int i = 0; i < 200; ++i) {
      std::string s = "http://x/r" + std::to_string(i);
      c.store.Add(Term::Iri(s), Term::Iri("http://x/when"),
                  Term::DateTimeLiteral(1000000000 + i * 3600));
      c.store.Add(Term::Iri(s), Term::Iri("http://x/reading"),
                  Term::DoubleLiteral(20 + i % 7));
    }
    cases.push_back(std::move(c));
  }
  {  // Few-valued categorical -> pie.
    Case c{"small categorical", viz::VisKind::kPie, rdf::TripleStore{}};
    for (int i = 0; i < 200; ++i) {
      c.store.Add(Term::Iri("http://x/t" + std::to_string(i)),
                  Term::Iri("http://x/status"),
                  Term::Literal(i % 3 == 0 ? "open" : "closed"));
    }
    cases.push_back(std::move(c));
  }
  {  // Class hierarchy -> treemap.
    Case c{"class hierarchy", viz::VisKind::kTreemap, rdf::TripleStore{}};
    for (int i = 0; i < 50; ++i) {
      c.store.Add(Term::Iri("http://x/C" + std::to_string(i)),
                  Term::Iri(rdf::vocab::kRdfsSubClassOf),
                  Term::Iri("http://x/C" + std::to_string(i / 4)));
    }
    cases.push_back(std::move(c));
  }
  {  // Dense entity links -> graph.
    Case c{"dense link graph", viz::VisKind::kGraph, rdf::TripleStore{}};
    for (int i = 0; i < 300; ++i) {
      c.store.Add(Term::Iri("http://x/n" + std::to_string(i)),
                  Term::Iri("http://x/linked"),
                  Term::Iri("http://x/n" + std::to_string((i * 7) % 300)));
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

int Run() {
  bench::PrintHeader(
      "E9", "Visualization recommendation accuracy & speed",
      "rule-based mapping from dataset profiles to visualization types "
      "picks the expected visualization for characteristic datasets");

  rec::Recommender recommender;
  auto cases = MakeCases();

  TablePrinter table({"dataset", "expected", "top-1", "top-3 contains?",
                      "top-1 correct?"});
  int top1 = 0, top3 = 0;
  for (auto& c : cases) {
    auto profile = bench::Unwrap(stats::ProfileDataset(c.store));
    auto recs = recommender.Recommend(profile, 3);
    bool in_top3 = false;
    for (const auto& r : recs) in_top3 |= r.spec.kind == c.expected;
    bool is_top1 = !recs.empty() && recs.front().spec.kind == c.expected;
    top1 += is_top1;
    top3 += in_top3;
    table.AddRow({c.name, std::string(viz::VisKindName(c.expected)),
                  recs.empty() ? "-" : std::string(viz::VisKindName(
                                           recs.front().spec.kind)),
                  in_top3 ? "yes" : "NO", is_top1 ? "yes" : "NO"});
  }
  table.Print(std::cout);
  std::cout << "top-1 accuracy: " << top1 << "/" << cases.size()
            << ", top-3 accuracy: " << top3 << "/" << cases.size() << "\n";

  // Preference personalization flips a ranking.
  std::cout << "\nPreference effect (synthetic LOD, spatial+numeric):\n";
  rdf::TripleStore lod_store;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 2000;
  workload::GenerateSyntheticLod(lod, &lod_store);
  auto profile = bench::Unwrap(stats::ProfileDataset(lod_store));
  auto before = recommender.Recommend(profile, 1);
  recommender.SetPreference(viz::VisKind::kMap, 0.25);
  auto after = recommender.Recommend(profile, 1);
  std::cout << "  default top-1: " << viz::VisKindName(before[0].spec.kind)
            << "; after down-weighting maps: "
            << viz::VisKindName(after[0].spec.kind) << "\n";
  recommender.SetPreference(viz::VisKind::kMap, 1.0);

  // Throughput.
  Stopwatch sw;
  const int kRounds = 2000;
  size_t total = 0;
  for (int i = 0; i < kRounds; ++i) {
    total += recommender.Recommend(profile, 5).size();
  }
  double us = sw.ElapsedMicros() / kRounds;
  std::cout << "\nThroughput: " << bench::Num(us, 1)
            << " us per recommendation round (" << total / kRounds
            << " suggestions each).\n";
  return top1 == static_cast<int>(cases.size()) ? 0 : 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
