// E1 — sampling/filtering as data reduction (Section 2, refs [46, 105, 2,
// 69, 17]): approximate aggregates over a fixed-size sample answer in
// (near-)constant time with small bounded error, while exact scans grow
// linearly with data size.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "stats/moments.h"
#include "stats/sampler.h"

namespace lodviz {
namespace {

int Run() {
  bench::Telemetry telemetry("e1_sampling");
  bench::PrintHeader(
      "E1", "Sampling vs full scan",
      "fixed-size samples give bounded-latency approximate answers whose "
      "error shrinks as 1/sqrt(k), while exact scans scale with N");

  TablePrinter table({"N", "scan ms", "sample ms (k=10k)", "speedup",
                      "mean rel.err", "p99-style |err| bound"});
  Rng data_rng(7);

  for (size_t n : {100000ul, 400000ul, 1600000ul, 6400000ul}) {
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) values.push_back(data_rng.Normal(500, 120));

    // Exact scan.
    Stopwatch sw;
    stats::RunningMoments exact;
    for (double v : values) exact.Add(v);
    double scan_ms = sw.ElapsedMillis();

    // Reservoir sample of fixed size k (averaged over repeats for error).
    const size_t k = 10000;
    double sample_ms = 0.0;
    double err_sum = 0.0, err_max = 0.0;
    const int repeats = 5;
    for (int r = 0; r < repeats; ++r) {
      sw.Reset();
      stats::ReservoirSampler<double> sampler(k, 100 + r);
      for (double v : values) sampler.Add(v);
      stats::RunningMoments approx;
      for (double v : sampler.sample()) approx.Add(v);
      sample_ms += sw.ElapsedMillis();
      double err = std::abs(approx.mean() - exact.mean()) /
                   std::abs(exact.mean());
      err_sum += err;
      err_max = std::max(err_max, err);
    }
    sample_ms /= repeats;
    // Note: reservoir sampling still touches every row once (cheaply); the
    // win is that the expensive aggregate only sees k rows. For a stored
    // sample the cost would be O(k) flat, shown in the second experiment.
    table.AddRow({FormatCount(n), bench::Ms(scan_ms), bench::Ms(sample_ms),
                  bench::Num(scan_ms / std::max(1e-9, sample_ms)) + "x",
                  bench::Pct(err_sum / repeats), bench::Pct(err_max)});
  }
  table.Print(std::cout);

  // Pre-materialized sample (BlinkDB-style): O(k) per query, flat in N.
  std::cout << "\nQuerying a pre-materialized 10k-row sample (the BlinkDB "
               "pattern):\n";
  TablePrinter flat({"N", "exact query ms", "sample query ms", "speedup",
                     "rel.err"});
  for (size_t n : {100000ul, 1600000ul, 6400000ul}) {
    std::vector<double> values;
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) values.push_back(data_rng.Normal(500, 120));
    stats::ReservoirSampler<double> sampler(10000, 9);
    for (double v : values) sampler.Add(v);
    std::vector<double> sample = sampler.sample();

    Stopwatch sw;
    double exact_sum = 0;
    for (double v : values) exact_sum += v;
    double exact_ms = sw.ElapsedMillis();
    double exact_mean = exact_sum / n;

    sw.Reset();
    double approx_sum = 0;
    for (double v : sample) approx_sum += v;
    double sample_ms = sw.ElapsedMillis();
    double approx_mean = approx_sum / sample.size();

    flat.AddRow({FormatCount(n), bench::Ms(exact_ms), bench::Ms(sample_ms),
                 bench::Num(exact_ms / std::max(1e-6, sample_ms)) + "x",
                 bench::Pct(std::abs(approx_mean - exact_mean) /
                            std::abs(exact_mean))});
  }
  flat.Print(std::cout);
  std::cout << "\nShape check: sample-query cost is flat in N while exact "
               "cost grows linearly; error stays sub-percent.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
