// E7 — out-of-core exploration (Section 4: "systems should be integrated
// with disk structures, retrieving data dynamically during runtime";
// SynopsViz and graphVizdb [22, 23] are the survey's only examples): a
// disk-resident triple store behind a bounded buffer pool answers
// exploration queries with memory capped at the pool size, while the
// load-everything approach grows without bound.

#include <iostream>

#include "bench_util.h"
#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "rdf/triple_store.h"
#include "storage/disk_triple_store.h"
#include "unistd.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

std::string TempPath(const std::string& tag) {
  return "/tmp/lodviz_e7_" + tag + "_" + std::to_string(::getpid()) + ".db";
}

int Run() {
  bench::Telemetry telemetry("e7_disk_exploration");
  bench::PrintHeader(
      "E7", "Disk-based exploration with bounded memory",
      "a 2 MiB buffer pool explores datasets of any size; in-memory "
      "loading grows linearly and eventually cannot fit");

  const size_t kPoolPages = 256;  // 2 MiB

  TablePrinter table({"entities", "triples", "in-mem bytes",
                      "disk-resident bytes (pool)", "bulk load ms",
                      "100 subject lookups ms", "pool hit rate"});

  for (uint64_t entities : {20000ul, 80000ul, 320000ul}) {
    workload::SyntheticLodOptions lod;
    lod.num_entities = entities;
    lod.seed = 4;
    lod.with_labels = false;  // keep the dictionary small; triples dominate

    rdf::TripleStore mem;
    workload::GenerateSyntheticLod(lod, &mem);
    mem.Compact();

    std::vector<rdf::Triple> triples;
    triples.reserve(mem.size());
    mem.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
      triples.push_back(t);
      return true;
    });

    Stopwatch sw;
    auto disk_r =
        storage::DiskTripleStore::Create(TempPath(std::to_string(entities)),
                                         kPoolPages);
    if (!disk_r.ok()) {
      std::cerr << disk_r.status().ToString() << "\n";
      return 1;
    }
    storage::DiskTripleStore& disk = **disk_r;
    if (!disk.BulkLoad(triples).ok()) return 1;
    double load_ms = sw.ElapsedMillis();

    // Exploration: 100 random subject lookups (entity pages).
    Rng rng(9);
    disk.pool().ResetCounters();
    sw.Reset();
    uint64_t touched = 0;
    for (int q = 0; q < 100; ++q) {
      rdf::TermId s = static_cast<rdf::TermId>(1 + rng.Uniform(entities));
      LODVIZ_CHECK_OK(disk.Scan({s, rdf::kInvalidTermId, rdf::kInvalidTermId},
                                [&](const rdf::Triple&) {
                                  ++touched;
                                  return true;
                                }));
    }
    double lookup_ms = sw.ElapsedMillis();
    (void)touched;

    table.AddRow({FormatCount(entities), FormatCount(disk.size()),
                  FormatCount(mem.MemoryUsage()),
                  FormatCount(disk.MemoryUsage()), bench::Ms(load_ms),
                  bench::Ms(lookup_ms),
                  bench::Pct(disk.pool().HitRate())});
  }
  table.Print(std::cout);

  std::cout << "\nPool-size sensitivity (100k entities, 100 lookups + 20 "
               "predicate scans):\n";
  workload::SyntheticLodOptions lod;
  lod.num_entities = 100000;
  lod.seed = 6;
  lod.with_labels = false;
  rdf::TripleStore mem;
  workload::GenerateSyntheticLod(lod, &mem);
  std::vector<rdf::Triple> triples;
  mem.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });

  TablePrinter pools({"pool pages", "pool MiB", "workload ms", "hit rate",
                      "disk reads"});
  for (size_t pages : {16ul, 64ul, 256ul, 1024ul}) {
    auto disk_r = storage::DiskTripleStore::Create(
        TempPath("pool" + std::to_string(pages)), pages);
    if (!disk_r.ok()) return 1;
    storage::DiskTripleStore& disk = **disk_r;
    if (!disk.BulkLoad(triples).ok()) return 1;
    disk.pool().ResetCounters();
    disk.file().ResetCounters();

    Rng rng(11);
    Stopwatch sw;
    for (int q = 0; q < 100; ++q) {
      rdf::TermId s = static_cast<rdf::TermId>(1 + rng.Uniform(100000));
      disk.Count({s, rdf::kInvalidTermId, rdf::kInvalidTermId});
    }
    const auto& preds = mem.predicate_counts();
    int scans = 0;
    for (const auto& [pred, count] : preds) {
      if (scans++ >= 20) break;
      uint64_t n = 0;
      LODVIZ_CHECK_OK(disk.Scan({rdf::kInvalidTermId, pred, rdf::kInvalidTermId},
                                [&](const rdf::Triple&) {
                                  ++n;
                                  return n < 5000;
                                }));
    }
    double workload_ms = sw.ElapsedMillis();
    pools.AddRow({FormatCount(pages),
                  bench::Num(pages * 8.0 / 1024.0, 2),
                  bench::Ms(workload_ms), bench::Pct(disk.pool().HitRate()),
                  FormatCount(disk.file().reads())});
  }
  pools.Print(std::cout);
  std::cout << "\nShape check: memory stays capped at the pool size across "
               "dataset scales; larger pools trade memory for hit rate, the "
               "classic buffer-pool curve.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
