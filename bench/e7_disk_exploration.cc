// E7 — out-of-core exploration (Section 4: "systems should be integrated
// with disk structures, retrieving data dynamically during runtime";
// SynopsViz and graphVizdb [22, 23] are the survey's only examples): a
// disk-resident triple store behind a bounded buffer pool answers
// exploration queries with memory capped at the pool size, while the
// load-everything approach grows without bound.

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/check.h"
#include "exec/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "storage/disk_source_adapter.h"
#include "storage/disk_triple_store.h"
#include "unistd.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

std::string TempPath(const std::string& tag) {
  return "/tmp/lodviz_e7_" + tag + "_" + std::to_string(::getpid()) + ".db";
}

int Run() {
  bench::Telemetry telemetry("e7_disk_exploration");
  bench::PrintHeader(
      "E7", "Disk-based exploration with bounded memory",
      "a 2 MiB buffer pool explores datasets of any size; in-memory "
      "loading grows linearly and eventually cannot fit");

  const size_t kPoolPages = 256;  // 2 MiB

  TablePrinter table({"entities", "triples", "in-mem bytes",
                      "disk-resident bytes (pool)", "bulk load ms",
                      "100 subject lookups ms", "pool hit rate"});

  for (uint64_t entities : {20000ul, 80000ul, 320000ul}) {
    workload::SyntheticLodOptions lod;
    lod.num_entities = entities;
    lod.seed = 4;
    lod.with_labels = false;  // keep the dictionary small; triples dominate

    rdf::TripleStore mem;
    workload::GenerateSyntheticLod(lod, &mem);
    mem.Compact();

    std::vector<rdf::Triple> triples;
    triples.reserve(mem.size());
    mem.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
      triples.push_back(t);
      return true;
    });

    Stopwatch sw;
    auto disk_r =
        storage::DiskTripleStore::Create(TempPath(std::to_string(entities)),
                                         kPoolPages);
    if (!disk_r.ok()) {
      std::cerr << disk_r.status().ToString() << "\n";
      return 1;
    }
    storage::DiskTripleStore& disk = **disk_r;
    if (!disk.BulkLoad(triples).ok()) return 1;
    double load_ms = sw.ElapsedMillis();

    // Exploration: 100 random subject lookups (entity pages).
    Rng rng(9);
    disk.pool().ResetCounters();
    sw.Reset();
    uint64_t touched = 0;
    for (int q = 0; q < 100; ++q) {
      rdf::TermId s = static_cast<rdf::TermId>(1 + rng.Uniform(entities));
      LODVIZ_CHECK_OK(disk.Scan({s, rdf::kInvalidTermId, rdf::kInvalidTermId},
                                [&](const rdf::Triple&) {
                                  ++touched;
                                  return true;
                                }));
    }
    double lookup_ms = sw.ElapsedMillis();
    (void)touched;

    table.AddRow({FormatCount(entities), FormatCount(disk.size()),
                  FormatCount(mem.MemoryUsage()),
                  FormatCount(disk.MemoryUsage()), bench::Ms(load_ms),
                  bench::Ms(lookup_ms),
                  bench::Pct(disk.pool().HitRate())});
  }
  table.Print(std::cout);

  std::cout << "\nPool-size sensitivity (100k entities, 100 lookups + 20 "
               "predicate scans):\n";
  workload::SyntheticLodOptions lod;
  lod.num_entities = 100000;
  lod.seed = 6;
  lod.with_labels = false;
  rdf::TripleStore mem;
  workload::GenerateSyntheticLod(lod, &mem);
  mem.Compact();  // parity contract: dedup before mirroring to disk
  std::vector<rdf::Triple> triples;
  mem.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });

  TablePrinter pools({"pool pages", "pool MiB", "workload ms", "hit rate",
                      "disk reads"});
  for (size_t pages : {16ul, 64ul, 256ul, 1024ul}) {
    auto disk_r = storage::DiskTripleStore::Create(
        TempPath("pool" + std::to_string(pages)), pages);
    if (!disk_r.ok()) return 1;
    storage::DiskTripleStore& disk = **disk_r;
    if (!disk.BulkLoad(triples).ok()) return 1;
    disk.pool().ResetCounters();
    disk.file().ResetCounters();

    Rng rng(11);
    Stopwatch sw;
    for (int q = 0; q < 100; ++q) {
      rdf::TermId s = static_cast<rdf::TermId>(1 + rng.Uniform(100000));
      disk.Count({s, rdf::kInvalidTermId, rdf::kInvalidTermId});
    }
    const auto& preds = mem.predicate_counts();
    int scans = 0;
    for (const auto& [pred, count] : preds) {
      if (scans++ >= 20) break;
      uint64_t n = 0;
      LODVIZ_CHECK_OK(disk.Scan({rdf::kInvalidTermId, pred, rdf::kInvalidTermId},
                                [&](const rdf::Triple&) {
                                  ++n;
                                  return n < 5000;
                                }));
    }
    double workload_ms = sw.ElapsedMillis();
    pools.AddRow({FormatCount(pages),
                  bench::Num(pages * 8.0 / 1024.0, 2),
                  bench::Ms(workload_ms), bench::Pct(disk.pool().HitRate()),
                  FormatCount(disk.file().reads())});
  }
  pools.Print(std::cout);

  // SPARQL over the TripleSource contract: the same exploration queries
  // against the in-memory store and against a small-pool disk mirror.
  std::cout << "\nSPARQL exploration, memory vs disk backend (100k "
               "entities, 64-page pool):\n";
  const std::string sparql_path = TempPath("sparql");
  auto sparql_disk_r = storage::DiskTripleStore::Create(sparql_path, 64);
  if (!sparql_disk_r.ok()) return 1;
  storage::DiskTripleStore& sparql_disk = **sparql_disk_r;
  if (!sparql_disk.BulkLoad(triples).ok()) return 1;
  storage::DiskSourceAdapter adapter(&sparql_disk, &mem.dict());
  sparql::QueryEngine mem_engine(&mem);
  sparql::QueryEngine disk_engine(&adapter);
  // Row-mode leg: the same explore queries through the row-at-a-time
  // executor, so the batch engine's contribution to interactive latency is
  // visible (and its answers provably unchanged) on every query shape.
  sparql::QueryEngine::Options row_mode;
  row_mode.exec_mode = sparql::ExecMode::kRow;
  sparql::QueryEngine mem_row_engine(&mem, row_mode);

  const struct {
    const char* label;
    const char* text;
  } kExploreQueries[] = {
      {"facet_count",
       "SELECT ?cat (COUNT(*) AS ?n) WHERE { ?s "
       "<http://lod.example/ontology/category> ?cat . } GROUP BY ?cat"},
      {"filtered_slice",
       "SELECT ?s ?age WHERE { ?s <http://lod.example/ontology/age> ?age . "
       "FILTER(?age > 70) } LIMIT 5000"},
      {"neighborhood",
       "SELECT ?a ?b WHERE { ?a <http://lod.example/ontology/knows> ?b . } "
       "LIMIT 10000"},
  };
  TablePrinter sparql_table({"query", "mem row ms", "mem ms", "mem rows/s",
                             "disk ms", "disk 4t ms", "disk rows/s",
                             "pool hit rate", "identical"});
  for (const auto& q : kExploreQueries) {
    Stopwatch mem_row_sw;
    auto mem_row_result = mem_row_engine.ExecuteString(q.text);
    double mem_row_ms = mem_row_sw.ElapsedMillis();
    if (!mem_row_result.ok()) return 1;

    Stopwatch mem_sw;
    sparql::QueryStats mem_stats;
    auto mem_result = mem_engine.ExecuteString(q.text, &mem_stats);
    double mem_ms = mem_sw.ElapsedMillis();
    if (!mem_result.ok()) return 1;

    sparql_disk.pool().ResetCounters();
    Stopwatch disk_sw;
    sparql::QueryStats disk_stats;
    auto disk_result = disk_engine.ExecuteString(q.text, &disk_stats);
    double disk_ms = disk_sw.ElapsedMillis();
    if (!disk_result.ok()) return 1;

    // Same query with 4 executor threads hitting the lock-striped pool
    // concurrently (the pool is warm from the run above, so this isolates
    // storage-layer concurrency from first-touch I/O).
    exec::SetThreads(4);
    Stopwatch disk4_sw;
    auto disk4_result = disk_engine.ExecuteString(q.text);
    double disk4_ms = disk4_sw.ElapsedMillis();
    exec::SetThreads(0);
    if (!disk4_result.ok()) return 1;

    double mem_rows_s =
        mem_ms > 0
            ? static_cast<double>(mem_stats.intermediate_rows) / (mem_ms / 1e3)
            : 0;
    double disk_rows_s = disk_ms > 0
                             ? static_cast<double>(disk_stats.intermediate_rows) /
                                   (disk_ms / 1e3)
                             : 0;
    double hit_rate = sparql_disk.pool().HitRate();
    bool identical = mem_result->ToString(mem_result->num_rows()) ==
                     disk_result->ToString(disk_result->num_rows());
    bool identical4 = disk_result->ToString(disk_result->num_rows()) ==
                      disk4_result->ToString(disk4_result->num_rows());
    bool identical_row = mem_row_result->ToString(mem_row_result->num_rows()) ==
                         mem_result->ToString(mem_result->num_rows());
    identical = identical && identical_row;
    sparql_table.AddRow(
        {q.label, bench::Ms(mem_row_ms), bench::Ms(mem_ms),
         FormatCount(static_cast<uint64_t>(mem_rows_s)), bench::Ms(disk_ms),
         bench::Ms(disk4_ms),
         FormatCount(static_cast<uint64_t>(disk_rows_s)),
         bench::Pct(hit_rate),
         identical && identical4 ? "yes" : "NO"});
    telemetry.RecordPhase(std::string("disk_") + q.label + "_4t_ms", disk4_ms);
    telemetry.RecordPhase(std::string("mem_row_") + q.label + "_ms",
                          mem_row_ms);
    telemetry.RecordPhase(std::string("mem_") + q.label + "_ms", mem_ms);
    telemetry.RecordPhase(std::string("mem_") + q.label + "_rows_per_s",
                          mem_rows_s);
    telemetry.RecordPhase(std::string("disk_") + q.label + "_ms", disk_ms);
    telemetry.RecordPhase(std::string("disk_") + q.label + "_rows_per_s",
                          disk_rows_s);
    telemetry.RecordPhase(std::string("disk_") + q.label + "_pool_hit_rate",
                          hit_rate);
    if (!identical || !identical4) {
      std::cerr << "backend divergence on " << q.label << "\n";
      std::remove(sparql_path.c_str());
      return 1;
    }
  }
  sparql_table.Print(std::cout);
  std::remove(sparql_path.c_str());

  std::cout << "\nShape check: memory stays capped at the pool size across "
               "dataset scales; larger pools trade memory for hit rate, the "
               "classic buffer-pool curve; SPARQL answers are bit-identical "
               "across backends.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
