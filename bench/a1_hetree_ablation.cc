// A1 (ablation) — HETree parameter choices: fanout and leaf capacity
// trade construction cost against drill-down depth and per-level detail.
// Backs the DESIGN.md choice of fanout 4-5 / leaf capacity ~64 as the
// default exploration configuration.

#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "hier/hetree.h"

namespace lodviz {
namespace {

int Run() {
  bench::PrintHeader(
      "A1", "HETree parameter ablation",
      "fanout/leaf-capacity sweep: small fanouts give deep, gradual "
      "drill-downs; large fanouts give shallow trees with busy levels");

  Rng rng(3);
  std::vector<hier::Item> items(1000000);
  for (size_t i = 0; i < items.size(); ++i) {
    items[i] = {rng.Normal(50, 15), i};
  }

  TablePrinter table({"fanout", "leaf cap", "build ms", "nodes", "depth",
                      "level-1 nodes", "drill cost (nodes/level)"});
  for (size_t fanout : {2ul, 4ul, 8ul, 16ul, 64ul}) {
    for (size_t leaf : {16ul, 256ul}) {
      hier::HETree::Options opts;
      opts.fanout = fanout;
      opts.leaf_capacity = leaf;
      Stopwatch sw;
      auto tree = hier::HETree::Build(items, opts);
      double ms = sw.ElapsedMillis();
      if (!tree.ok()) return 1;

      // Depth of the leftmost path.
      hier::HETree::NodeId current = tree->root();
      int depth = 0;
      while (!tree->node(current).is_leaf) {
        current = tree->Children(current).front();
        ++depth;
      }
      table.AddRow({FormatCount(fanout), FormatCount(leaf), bench::Ms(ms),
                    FormatCount(tree->materialized_nodes()),
                    std::to_string(depth),
                    FormatCount(tree->Children(tree->root()).size()),
                    FormatCount(fanout)});
    }
  }
  table.Print(std::cout);
  std::cout << "\nShape check: build time is sort-dominated and nearly flat "
               "across parameters; depth ~ log_fanout(N/leaf). Fanout 4-8 "
               "keeps both the per-level element count and the number of "
               "drill steps small — the SynopsViz default regime.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
