#ifndef LODVIZ_BENCH_BENCH_UTIL_H_
#define LODVIZ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/result.h"
#include "common/stopwatch.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace lodviz::bench {

/// Unwraps a Result<T>, aborting loudly (file:line + error) on failure —
/// bench drivers have no error channel to propagate into.
template <typename T>
T Unwrap(Result<T> r) {
  LODVIZ_CHECK_OK(r);
  return std::move(r).ValueOrDie();
}

/// Prints the standard experiment banner tying a bench binary back to the
/// paper artifact it regenerates (see DESIGN.md's per-experiment index).
inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "Claim: " << claim << "\n"
            << "================================================================\n\n";
}

inline std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

inline std::string Num(double v, int digits = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

/// Machine-readable bench telemetry. Declare one at the top of a bench's
/// Run():
///
///   bench::Telemetry telemetry("e1_sampling");
///   ...
///   telemetry.RecordPhase("scan_1m", scan_ms);   // optional named timings
///
/// When the LODVIZ_BENCH_JSON environment variable names a directory, the
/// destructor enables span tracing for the bench's lifetime and writes
/// `<dir>/BENCH_<id>.json` containing the named phase timings, a full
/// metrics snapshot (counters + gauges + histograms with p50/p95/p99),
/// the slow-query journal (obs::QueryLog::ToJson — empty unless the bench
/// armed it with SetSlowQueryThreshold or the journal was armed
/// elsewhere), and the Chrome trace-event array collected while the bench
/// ran. With the variable unset this is a no-op, so interactive bench
/// runs are unaffected.
class Telemetry {
 public:
  explicit Telemetry(std::string bench_id) : id_(std::move(bench_id)) {
    const char* dir = std::getenv("LODVIZ_BENCH_JSON");
    if (dir != nullptr && *dir != '\0') {
      dir_ = dir;
      obs::Tracer::Global().SetEnabled(true);
    }
  }

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  ~Telemetry() {
    if (dir_.empty()) return;
    obs::Tracer& tracer = obs::Tracer::Global();
    tracer.SetEnabled(false);
    const std::string path = dir_ + "/BENCH_" + id_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::cerr << "bench: cannot write telemetry to " << path << "\n";
      return;
    }
    out << "{\"bench\":\"" << obs::JsonEscape(id_) << "\",\"schema\":1"
        << ",\"total_ms\":" << total_.ElapsedMillis() << ",\"phases\":{";
    for (size_t i = 0; i < phases_.size(); ++i) {
      if (i > 0) out << ",";
      out << "\"" << obs::JsonEscape(phases_[i].first)
          << "\":" << phases_[i].second;
    }
    out << "},\"metrics\":" << obs::JsonSnapshot()
        << ",\"query_log\":" << obs::QueryLog::Global().ToJson()
        << ",\"dropped_spans\":" << tracer.dropped()
        << ",\"traceEvents\":" << obs::ChromeTraceJson(tracer.Finished())
        << "}\n";
    std::cout << "\n[telemetry] wrote " << path << "\n";
  }

  /// Arms the process-wide slow-query journal so SPARQL-heavy benches
  /// capture their slow queries into the telemetry JSON (0 journals every
  /// query).
  static void SetSlowQueryThreshold(int64_t us) {
    obs::QueryLog::Global().SetThresholdMicros(us);
  }

  /// Records a named wall-time measurement (milliseconds) for the JSON
  /// "phases" object; also feeds the `bench.phase_us` histogram.
  void RecordPhase(const std::string& name, double ms) {
    phases_.emplace_back(name, ms);
    obs::MetricRegistry::Global()
        .GetHistogram("bench.phase_us")
        .RecordDouble(ms * 1e3);
  }

  bool enabled() const { return !dir_.empty(); }

 private:
  std::string id_;
  std::string dir_;
  Stopwatch total_;
  std::vector<std::pair<std::string, double>> phases_;
};

}  // namespace lodviz::bench

#endif  // LODVIZ_BENCH_BENCH_UTIL_H_
