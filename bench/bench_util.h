#ifndef LODVIZ_BENCH_BENCH_UTIL_H_
#define LODVIZ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/result.h"

namespace lodviz::bench {

/// Unwraps a Result<T>, aborting loudly (file:line + error) on failure —
/// bench drivers have no error channel to propagate into.
template <typename T>
T Unwrap(Result<T> r) {
  LODVIZ_CHECK_OK(r);
  return std::move(r).ValueOrDie();
}

/// Prints the standard experiment banner tying a bench binary back to the
/// paper artifact it regenerates (see DESIGN.md's per-experiment index).
inline void PrintHeader(const std::string& id, const std::string& title,
                        const std::string& claim) {
  std::cout << "\n================================================================\n"
            << id << ": " << title << "\n"
            << "Claim: " << claim << "\n"
            << "================================================================\n\n";
}

inline std::string Ms(double ms) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", ms);
  return buf;
}

inline std::string Num(double v, int digits = 2) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

inline std::string Pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

}  // namespace lodviz::bench

#endif  // LODVIZ_BENCH_BENCH_UTIL_H_
