// E11 — statistical Linked Data at interactive rates (Section 3.3:
// CubeViz, OpenCube, LDCE): cube extraction from RDF, then OLAP
// slice/dice/roll-up/pivot latencies across observation counts.

#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "cube/data_cube.h"
#include "rdf/triple_store.h"

namespace lodviz {
namespace {

void BuildObservations(rdf::TripleStore* store, size_t n, uint64_t seed) {
  using rdf::Term;
  Rng rng(seed);
  const int kRegions = 20, kYears = 10, kSectors = 8;
  for (size_t i = 0; i < n; ++i) {
    std::string obs = "http://stats.example/obs/" + std::to_string(i);
    store->Add(Term::Iri(obs), Term::Iri("http://stats.example/region"),
               Term::Iri("http://stats.example/region/" +
                         std::to_string(rng.Uniform(kRegions))));
    store->Add(Term::Iri(obs), Term::Iri("http://stats.example/year"),
               Term::Literal(std::to_string(2006 + rng.Uniform(kYears))));
    store->Add(Term::Iri(obs), Term::Iri("http://stats.example/sector"),
               Term::Iri("http://stats.example/sector/" +
                         std::to_string(rng.Uniform(kSectors))));
    store->Add(Term::Iri(obs), Term::Iri("http://stats.example/value"),
               Term::DoubleLiteral(rng.UniformDouble(10, 1000)));
  }
}

int Run() {
  bench::PrintHeader(
      "E11", "RDF Data Cube OLAP",
      "cube extraction plus slice/dice/roll-up/pivot stay interactive "
      "(sub-second) into the hundreds of thousands of observations");

  TablePrinter table({"observations", "extract ms", "rollup(region) ms",
                      "pivot region x year ms", "slice ms", "dice ms"});

  for (size_t n : {5000ul, 20000ul, 80000ul, 320000ul}) {
    rdf::TripleStore store;
    BuildObservations(&store, n, 7);
    store.Compact();

    Stopwatch sw;
    auto cube = cube::DataCube::FromStore(
        store,
        {"http://stats.example/region", "http://stats.example/year",
         "http://stats.example/sector"},
        {"http://stats.example/value"});
    double extract_ms = sw.ElapsedMillis();
    if (!cube.ok()) {
      std::cerr << cube.status().ToString() << "\n";
      return 1;
    }

    sw.Reset();
    auto rollup = cube->RollUp({0}, 0, cube::Agg::kSum);
    double rollup_ms = sw.ElapsedMillis();

    sw.Reset();
    auto pivot = cube->Pivot(0, 1, 0, cube::Agg::kAvg);
    double pivot_ms = sw.ElapsedMillis();

    auto regions = cube->DimensionValues(0);
    sw.Reset();
    auto slice = cube->Slice(0, regions.front());
    double slice_ms = sw.ElapsedMillis();

    sw.Reset();
    auto dice = cube->Dice(0, {regions[0], regions[1], regions[2]});
    double dice_ms = sw.ElapsedMillis();

    (void)rollup;
    (void)pivot;
    (void)slice;
    (void)dice;
    table.AddRow({FormatCount(n), bench::Ms(extract_ms),
                  bench::Ms(rollup_ms), bench::Ms(pivot_ms),
                  bench::Ms(slice_ms), bench::Ms(dice_ms)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: OLAP operations are linear single passes; "
               "extraction dominates (it joins per observation), matching "
               "why CubeViz-style tools precompute their cubes.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
