// Regenerates the survey's Table 1 (Generic Visualization Systems).
//
// Every check mark in the capability columns is *executed*, not copied:
// each surveyed system is modeled as an archetype over the lodviz engine,
// and a column shows a check only if the corresponding probe actually ran
// through the real component (recommender, sampler, HETree, progressive
// aggregator, disk store, ...). The paper's published marks are then
// compared against the executed ones row by row.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/archetype.h"
#include "core/engine.h"
#include "core/registry.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

std::string DataTypesString(const core::SurveyedSystem& s) {
  std::string out;
  for (size_t i = 0; i < s.data_types.size(); ++i) {
    if (i) out += ", ";
    out += viz::DataTypeCode(s.data_types[i]);
  }
  return out;
}

std::string VisTypesString(const core::SurveyedSystem& s) {
  std::string out;
  for (size_t i = 0; i < s.vis_types.size(); ++i) {
    if (i) out += ", ";
    out += viz::VisKindCode(s.vis_types[i]);
  }
  return out;
}

int Run() {
  bench::PrintHeader(
      "T1", "Table 1 — Generic Visualization Systems",
      "feature matrix of 11 surveyed systems; every check mark below was "
      "executed through the corresponding lodviz component");

  core::Engine engine;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 2000;
  lod.seed = 1;
  engine.LoadSynthetic(lod);

  // Column order follows the paper.
  const core::Capability kColumns[] = {
      core::Capability::kRecommendation, core::Capability::kPreferences,
      core::Capability::kStatistics,     core::Capability::kSampling,
      core::Capability::kAggregation,    core::Capability::kIncremental,
      core::Capability::kDiskBased,
  };

  TablePrinter table({"System", "Year", "Data Types", "Vis. Types", "Recomm.",
                      "Preferences", "Statistics", "Sampling", "Aggregation",
                      "Incr.", "Disk", "Domain", "App. Type"});

  int mismatches = 0;
  auto add_row = [&](const core::SurveyedSystem& sys) {
    core::ArchetypeAdapter adapter(sys, &engine);
    std::vector<std::string> row = {sys.name, std::to_string(sys.year),
                                    DataTypesString(sys), VisTypesString(sys)};
    for (core::Capability cap : kColumns) {
      Result<core::ProbeResult> probe = adapter.Probe(cap);
      bool executed = probe.ok() && probe->executed;
      bool published = core::HasCapability(sys.caps, cap);
      if (executed != published) {
        ++mismatches;
        std::cerr << "MISMATCH: " << sys.name << " / "
                  << core::CapabilityName(cap) << " published=" << published
                  << " executed=" << executed;
        if (!probe.ok()) std::cerr << " (" << probe.status().ToString() << ")";
        std::cerr << "\n";
      }
      row.push_back(executed ? "x" : "");
    }
    row.push_back(sys.domain);
    row.push_back(sys.app_type);
    table.AddRow(std::move(row));
  };

  for (const core::SurveyedSystem& sys : core::Table1Systems()) add_row(sys);
  add_row(core::LodvizSystem(1));

  table.Print(std::cout);

  std::cout << "\nDiscussion-section checks (Section 4 of the paper):\n";
  int approximating = 0, disk = 0, recommending = 0;
  for (const auto& s : core::Table1Systems()) {
    approximating += core::HasCapability(s.caps, core::Capability::kSampling) ||
                     core::HasCapability(s.caps, core::Capability::kAggregation);
    disk += core::HasCapability(s.caps, core::Capability::kDiskBased);
    recommending +=
        core::HasCapability(s.caps, core::Capability::kRecommendation);
  }
  std::cout << "  systems using approximation (sampling/aggregation): "
            << approximating << " of 11 (paper: only SynopsViz and VizBoard)\n"
            << "  systems using external memory at runtime: " << disk
            << " of 11 (paper: only SynopsViz)\n"
            << "  systems offering recommendations: " << recommending
            << " of 11\n";
  std::cout << "\nRow-by-row agreement with the published table: "
            << (mismatches == 0 ? "EXACT (0 mismatches)"
                                : std::to_string(mismatches) + " MISMATCHES")
            << "\n";
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
