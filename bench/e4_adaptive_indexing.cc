// E4 — adaptive indexing in exploration sessions (database cracking [67],
// used for exploration in [144]): with no preprocessing allowed (dynamic
// data), cracking's first query costs about a scan, later queries approach
// index speed, and cumulative cost beats both scan-always and
// sort-everything-first for typical session lengths.

#include <algorithm>
#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "storage/cracking.h"
#include "workload/scenario.h"

namespace lodviz {
namespace {

int Run() {
  bench::PrintHeader(
      "E4", "Adaptive indexing (database cracking)",
      "indexes built incrementally as a side effect of exploration beat "
      "both full scans and up-front sorting over an exploration session");

  const size_t n = 4000000;
  Rng rng(5);
  std::vector<double> column;
  column.reserve(n);
  for (size_t i = 0; i < n; ++i) column.push_back(rng.UniformDouble(0, 1e6));

  auto queries = workload::ExplorationRangeScenario(0, 1e6, 60, 21);

  // Strategy 1: always scan. (volatile sink keeps the loop from being
  // optimized away)
  volatile uint64_t sink = 0;
  std::vector<double> scan_times;
  for (const auto& q : queries) {
    Stopwatch sw;
    uint64_t count = 0;
    for (double v : column) count += (v >= q.lo && v < q.hi);
    sink = sink + count;
    scan_times.push_back(sw.ElapsedMillis());
  }

  // Strategy 2: sort everything up front, then binary search.
  Stopwatch sort_sw;
  std::vector<double> sorted = column;
  std::sort(sorted.begin(), sorted.end());
  double sort_ms = sort_sw.ElapsedMillis();
  std::vector<double> index_times;
  for (const auto& q : queries) {
    Stopwatch sw;
    auto lo = std::lower_bound(sorted.begin(), sorted.end(), q.lo);
    auto hi = std::lower_bound(sorted.begin(), sorted.end(), q.hi);
    volatile uint64_t count = static_cast<uint64_t>(hi - lo);
    (void)count;
    index_times.push_back(sw.ElapsedMillis());
  }

  // Strategy 3: cracking.
  storage::CrackerColumn cracker(column);
  std::vector<double> crack_times;
  for (const auto& q : queries) {
    Stopwatch sw;
    volatile uint64_t count = cracker.CountRange(q.lo, q.hi);
    (void)count;
    crack_times.push_back(sw.ElapsedMillis());
  }

  auto cumulative = [](const std::vector<double>& times, size_t upto,
                       double upfront = 0.0) {
    double total = upfront;
    for (size_t i = 0; i < upto; ++i) total += times[i];
    return total;
  };

  std::cout << "Per-query latency (ms), N = " << FormatCount(n) << ":\n";
  TablePrinter per({"query#", "scan", "full sort index", "cracking"});
  for (size_t q : {0ul, 1ul, 2ul, 4ul, 9ul, 19ul, 39ul, 59ul}) {
    per.AddRow({std::to_string(q + 1), bench::Ms(scan_times[q]),
                bench::Ms(index_times[q]), bench::Ms(crack_times[q])});
  }
  per.Print(std::cout);

  std::cout << "\nCumulative session cost (ms; sort strategy pays "
            << bench::Ms(sort_ms) << " ms up front):\n";
  TablePrinter cum({"after query#", "scan-always", "sort+index", "cracking"});
  for (size_t q : {1ul, 5ul, 10ul, 20ul, 40ul, 60ul}) {
    cum.AddRow({std::to_string(q), bench::Ms(cumulative(scan_times, q)),
                bench::Ms(cumulative(index_times, q, sort_ms)),
                bench::Ms(cumulative(crack_times, q))});
  }
  cum.Print(std::cout);

  std::cout << "\nCracking state after the session: " << cracker.num_cracks()
            << " piece boundaries, "
            << FormatCount(cracker.elements_touched())
            << " element moves total.\n";
  std::cout << "Shape check: cracking's first query ~ scan cost; later "
               "queries ~ index cost; cumulative line crosses below "
               "'sort+index' for short sessions and below 'scan-always' "
               "almost immediately.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
