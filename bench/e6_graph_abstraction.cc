// E6 — graph visual scalability (Section 4, refs [1, 8, 9, 93, 95]):
// direct force-directed layout of a large graph is quadratic-ish and
// memory hungry; hierarchical abstraction lays out a bounded super-graph,
// and sampling previews scale flatly. This is the survey's core argument
// for why WoD graph tools that "load the whole graph in main memory" stop
// scaling.

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "graph/bundling.h"
#include "graph/generators.h"
#include "graph/layout.h"
#include "graph/sampling.h"
#include "graph/supergraph.h"
#include "viz/canvas.h"
#include "viz/renderers.h"

namespace lodviz {
namespace {

int Run() {
  bench::Telemetry telemetry("e6_graph_abstraction");
  bench::PrintHeader(
      "E6", "Graph abstraction vs direct layout",
      "full FR layout cost explodes with graph size; coarsened super-graph "
      "layout and sampled previews stay interactive with bounded elements");

  TablePrinter table({"nodes", "edges", "full FR ms", "hier build ms",
                      "top-level layout ms", "top nodes",
                      "sample preview ms", "drawn full", "drawn abstract"});

  for (graph::NodeId n : {2000u, 8000u, 32000u, 128000u}) {
    graph::Graph g = graph::BarabasiAlbert(n, 3, 17);

    // Direct layout of everything (exact repulsion for <= 2k, grid after;
    // iterations fixed so cost reflects per-iteration work).
    graph::ForceLayoutOptions full_opts;
    full_opts.iterations = 25;
    Stopwatch sw;
    graph::Layout full_layout = graph::ForceDirectedLayout(g, full_opts);
    double full_ms = sw.ElapsedMillis();

    viz::Canvas full_canvas(800, 600);
    auto full_render = viz::RenderGraph(&full_canvas, g, full_layout);

    // Hierarchical abstraction + top-level layout.
    sw.Reset();
    graph::GraphHierarchy::Options hopts;
    hopts.target_top_nodes = 64;
    graph::GraphHierarchy hierarchy = graph::GraphHierarchy::Build(g, hopts);
    double hier_ms = sw.ElapsedMillis();

    sw.Reset();
    graph::ForceLayoutOptions top_opts;
    top_opts.iterations = 50;
    graph::Layout top_layout =
        graph::ForceDirectedLayout(hierarchy.top().graph, top_opts);
    double top_ms = sw.ElapsedMillis();

    viz::Canvas abstract_canvas(800, 600);
    auto abstract_render = viz::RenderGraph(&abstract_canvas,
                                            hierarchy.top().graph, top_layout);

    // Sampling preview.
    sw.Reset();
    auto sample_nodes = graph::ForestFireSample(g, 400, 9);
    graph::Graph sample = g.InducedSubgraph(sample_nodes);
    graph::ForceLayoutOptions sample_opts;
    sample_opts.iterations = 30;
    graph::ForceDirectedLayout(sample, sample_opts);
    double sample_ms = sw.ElapsedMillis();

    table.AddRow({FormatCount(n), FormatCount(g.num_edges()),
                  bench::Ms(full_ms), bench::Ms(hier_ms), bench::Ms(top_ms),
                  FormatCount(hierarchy.top().graph.num_nodes()),
                  bench::Ms(sample_ms),
                  FormatCount(full_render.elements_drawn),
                  FormatCount(abstract_render.elements_drawn)});
  }
  table.Print(std::cout);

  std::cout << "\nLayout working-set memory (positions + displacement "
               "buffers):\n";
  TablePrinter mem({"nodes", "full layout bytes", "top-level bytes"});
  for (graph::NodeId n : {32000u, 1000000u, 100000000u}) {
    mem.AddRow({FormatCount(n),
                FormatCount(graph::ForceLayoutMemoryBytes(n)),
                FormatCount(graph::ForceLayoutMemoryBytes(64))});
  }
  mem.Print(std::cout);

  std::cout << "\nThread scaling — FR layout (grid repulsion, 32k nodes) "
               "and edge bundling (800 edges) at 1/2/4/8 threads:\n";
  TablePrinter scaling({"threads", "layout ms", "bundle ms",
                        "layout speedup", "bundle speedup"});
  {
    graph::Graph layout_g = graph::BarabasiAlbert(32000u, 3, 17);
    graph::Graph bundle_g = graph::BarabasiAlbert(400u, 2, 19);
    graph::Layout bundle_layout = graph::CircularLayout(bundle_g);
    graph::ForceLayoutOptions lopts;
    lopts.iterations = 25;
    graph::BundlingOptions bopts;
    bopts.iterations = 30;
    double layout_t1 = 0.0, bundle_t1 = 0.0;
    for (size_t t : {1ul, 2ul, 4ul, 8ul}) {
      exec::SetThreads(t);
      exec::ParallelFor(0, t * 2, 1, [](size_t, size_t) {});  // warm pool
      Stopwatch tsw;
      graph::ForceDirectedLayout(layout_g, lopts);
      double layout_ms = tsw.ElapsedMillis();
      tsw.Reset();
      graph::BundleEdges(bundle_g, bundle_layout, bopts);
      double bundle_ms = tsw.ElapsedMillis();
      if (t == 1) {
        layout_t1 = layout_ms;
        bundle_t1 = bundle_ms;
      }
      telemetry.RecordPhase("layout_ms_t" + std::to_string(t), layout_ms);
      telemetry.RecordPhase("bundle_ms_t" + std::to_string(t), bundle_ms);
      scaling.AddRow(
          {FormatCount(t), bench::Ms(layout_ms), bench::Ms(bundle_ms),
           bench::Num(layout_t1 / std::max(1e-6, layout_ms), 2) + "x",
           bench::Num(bundle_t1 / std::max(1e-6, bundle_ms), 2) + "x"});
    }
    exec::SetThreads(0);
  }
  scaling.Print(std::cout);

  std::cout << "\nShape check: hierarchy+top-layout time grows slowly "
               "(clustering is near-linear) while full layout grows "
               "super-linearly; abstract rendering draws 2-3 orders of "
               "magnitude fewer elements.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
