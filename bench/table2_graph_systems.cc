// Regenerates the survey's Table 2 (Graph-based Visualization Systems):
// 21 systems x {Keyword, Filter, Sampling, Aggregation, Incr., Disk}
// capability columns plus domain and application type. As in the Table 1
// bench, every check mark is produced by executing the capability through
// the lodviz engine behind the system's archetype profile.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "core/archetype.h"
#include "core/engine.h"
#include "core/registry.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

int Run() {
  bench::PrintHeader(
      "T2", "Table 2 — Graph-based Visualization Systems",
      "feature matrix of 21 surveyed graph/ontology visualizers; check "
      "marks executed through lodviz's graph substrate");

  core::Engine engine;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 2000;
  lod.seed = 2;
  engine.LoadSynthetic(lod);

  const core::Capability kColumns[] = {
      core::Capability::kKeywordSearch, core::Capability::kFilter,
      core::Capability::kSampling,      core::Capability::kAggregation,
      core::Capability::kIncremental,   core::Capability::kDiskBased,
  };

  TablePrinter table({"System", "Year", "Keyword", "Filter", "Sampling",
                      "Aggregation", "Incr.", "Disk", "Domain", "App. Type"});

  int mismatches = 0;
  auto add_row = [&](const core::SurveyedSystem& sys) {
    core::ArchetypeAdapter adapter(sys, &engine);
    std::vector<std::string> row = {sys.name, std::to_string(sys.year)};
    for (core::Capability cap : kColumns) {
      Result<core::ProbeResult> probe = adapter.Probe(cap);
      bool executed = probe.ok() && probe->executed;
      bool published = core::HasCapability(sys.caps, cap);
      if (executed != published) {
        ++mismatches;
        std::cerr << "MISMATCH: " << sys.name << " / "
                  << core::CapabilityName(cap) << "\n";
      }
      row.push_back(executed ? "x" : "");
    }
    row.push_back(sys.domain);
    row.push_back(sys.app_type);
    table.AddRow(std::move(row));
  };

  for (const core::SurveyedSystem& sys : core::Table2Systems()) add_row(sys);
  add_row(core::LodvizSystem(2));

  table.Print(std::cout);

  std::cout << "\nDiscussion-section checks:\n";
  int desktop = 0, ontology = 0, memory_bound = 0;
  for (const auto& s : core::Table2Systems()) {
    desktop += s.app_type == "Desktop";
    ontology += s.domain == "ontology";
    memory_bound += !core::HasCapability(s.caps, core::Capability::kDiskBased);
  }
  std::cout << "  desktop applications: " << desktop << " of 21\n"
            << "  ontology-specific systems: " << ontology << " of 21\n"
            << "  systems that keep the whole graph in main memory: "
            << memory_bound << " of 21 (the paper's core criticism)\n";
  std::cout << "\nRow-by-row agreement with the published table: "
            << (mismatches == 0 ? "EXACT (0 mismatches)"
                                : std::to_string(mismatches) + " MISMATCHES")
            << "\n";
  return mismatches == 0 ? 0 : 1;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
