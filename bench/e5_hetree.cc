// E5 — HETree hierarchical aggregation [25, 26]: multilevel exploration
// over big numeric/temporal properties. Compares HETree-C vs HETree-R
// construction, full materialization vs ICO (incremental construction as
// the user drills), and ADA adaptation vs rebuilding after a parameter
// change.

#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "hier/hetree.h"

namespace lodviz {
namespace {

std::vector<hier::Item> MakeItems(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<hier::Item> items(n);
  for (size_t i = 0; i < n; ++i) {
    // Skewed ages-like data: mixture of two normals.
    double v = rng.Bernoulli(0.7) ? rng.Normal(35, 10) : rng.Normal(70, 5);
    items[i] = {v, i};
  }
  return items;
}

int Run() {
  bench::Telemetry telemetry("e5_hetree");
  bench::PrintHeader(
      "E5", "HETree multilevel aggregation (SynopsViz core)",
      "one sorted pass supports overview-first exploration; ICO builds "
      "only the visited path; ADA re-parameterizes without re-sorting");

  std::cout << "Part A — full construction, HETree-C vs HETree-R:\n";
  TablePrinter build({"N", "HETree-C ms", "nodes C", "HETree-R ms",
                      "nodes R"});
  for (size_t n : {100000ul, 400000ul, 1600000ul}) {
    auto items = MakeItems(n, 3);
    hier::HETree::Options copts;
    copts.kind = hier::HETree::Kind::kContent;
    copts.fanout = 4;
    copts.leaf_capacity = 64;
    Stopwatch sw;
    auto ctree = hier::HETree::Build(items, copts);
    double c_ms = sw.ElapsedMillis();

    hier::HETree::Options ropts = copts;
    ropts.kind = hier::HETree::Kind::kRange;
    sw.Reset();
    auto rtree = hier::HETree::Build(items, ropts);
    double r_ms = sw.ElapsedMillis();

    build.AddRow({FormatCount(n), bench::Ms(c_ms),
                  FormatCount(ctree->materialized_nodes()), bench::Ms(r_ms),
                  FormatCount(rtree->materialized_nodes())});
  }
  build.Print(std::cout);

  std::cout << "\nPart B — ICO: after the one-off sort, the cost of "
               "'overview + drill 3 levels' vs materializing the whole "
               "tree:\n";
  TablePrinter ico({"N", "sort (shared) ms", "full materialize ms",
                    "ICO session ms", "speedup",
                    "nodes materialized (ICO vs full)"});
  for (size_t n : {100000ul, 400000ul, 1600000ul}) {
    auto items = MakeItems(n, 5);
    hier::HETree::Options opts;
    opts.fanout = 4;
    opts.leaf_capacity = 64;
    opts.lazy = true;

    Stopwatch sw;
    auto lazy = hier::HETree::Build(items, opts);
    double sort_ms = sw.ElapsedMillis();

    // Full materialization from the shared sorted data (ADA keeps the
    // sort; only node construction is measured).
    hier::HETree eager = lazy->Adapt(opts);
    sw.Reset();
    for (hier::HETree::NodeId id = 0; id < eager.materialized_nodes(); ++id) {
      eager.Children(id);  // grows materialized_nodes as it goes
    }
    double full_ms = sw.ElapsedMillis();

    // The ICO exploration session on a fresh adaptation.
    hier::HETree ico_tree = lazy->Adapt(opts);
    sw.Reset();
    hier::HETree::NodeId current = ico_tree.root();
    for (int depth = 0; depth < 3 && !ico_tree.node(current).is_leaf;
         ++depth) {
      const auto& children = ico_tree.Children(current);
      current = children[children.size() / 2];
    }
    double ico_ms = sw.ElapsedMillis();

    ico.AddRow({FormatCount(n), bench::Ms(sort_ms), bench::Ms(full_ms),
                bench::Ms(ico_ms),
                bench::Num(full_ms / std::max(1e-6, ico_ms), 1) + "x",
                FormatCount(ico_tree.materialized_nodes()) + " vs " +
                    FormatCount(eager.materialized_nodes())});
  }
  ico.Print(std::cout);

  std::cout << "\nPart C — ADA: adapting fanout 4 -> 10 vs rebuilding:\n";
  TablePrinter ada({"N", "rebuild ms", "ADA ms", "speedup"});
  for (size_t n : {400000ul, 1600000ul}) {
    auto items = MakeItems(n, 7);
    hier::HETree::Options opts;
    opts.fanout = 4;
    opts.leaf_capacity = 64;
    opts.lazy = true;
    auto tree = hier::HETree::Build(items, opts);
    // User looks at the overview first.
    tree->Children(tree->root());

    hier::HETree::Options new_opts = opts;
    new_opts.fanout = 10;

    Stopwatch sw;
    auto rebuilt = hier::HETree::Build(items, new_opts);
    rebuilt->Children(rebuilt->root());
    double rebuild_ms = sw.ElapsedMillis();

    sw.Reset();
    hier::HETree adapted = tree->Adapt(new_opts);
    adapted.Children(adapted.root());
    double ada_ms = sw.ElapsedMillis();

    ada.AddRow({FormatCount(n), bench::Ms(rebuild_ms), bench::Ms(ada_ms),
                bench::Num(rebuild_ms / std::max(1e-6, ada_ms), 1) + "x"});
  }
  ada.Print(std::cout);

  std::cout << "\nPart D — exact range statistics from prefix sums "
               "(O(log n) per query):\n";
  auto items = MakeItems(1600000, 9);
  auto tree = hier::HETree::Build(items, {.lazy = true});
  Stopwatch sw;
  const int kQueries = 10000;
  Rng rng(11);
  double checksum = 0;
  for (int q = 0; q < kQueries; ++q) {
    double lo = rng.UniformDouble(0, 80);
    checksum += tree->RangeStats(lo, lo + 10).mean;
  }
  double us_per_query = sw.ElapsedMicros() / kQueries;
  std::cout << "  " << kQueries << " range-stat queries over 1.6M items: "
            << bench::Num(us_per_query) << " us/query (checksum "
            << bench::Num(checksum, 1) << ")\n";
  std::cout << "\nPart E — thread scaling: full HETree-C build (sort + "
               "materialize) over 1.6M items at 1/2/4/8 threads. "
               "LODVIZ_THREADS=1 is the bit-identical serial baseline:\n";
  TablePrinter scaling({"threads", "build ms", "speedup vs 1T"});
  {
    auto scale_items = MakeItems(1600000, 3);
    hier::HETree::Options opts;
    opts.fanout = 4;
    opts.leaf_capacity = 64;
    double t1_ms = 0.0;
    for (size_t t : {1ul, 2ul, 4ul, 8ul}) {
      exec::SetThreads(t);
      // Warm the pool so thread spawn cost is not billed to the build.
      exec::ParallelFor(0, t * 2, 1, [](size_t, size_t) {});
      Stopwatch tsw;
      auto tree = hier::HETree::Build(scale_items, opts);
      double ms = tsw.ElapsedMillis();
      LODVIZ_CHECK_OK(tree);
      if (t == 1) t1_ms = ms;
      telemetry.RecordPhase("build_ms_t" + std::to_string(t), ms);
      scaling.AddRow({FormatCount(t), bench::Ms(ms),
                      bench::Num(t1_ms / std::max(1e-6, ms), 2) + "x"});
    }
    exec::SetThreads(0);
    telemetry.RecordPhase("default_threads",
                          static_cast<double>(exec::ThreadCount()));
  }
  scaling.Print(std::cout);

  std::cout << "\nShape check: ICO and ADA are orders of magnitude cheaper "
               "than full (re)builds and flat-ish in N, matching the "
               "SynopsViz design goals.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
