// E13 — spatio-temporal indexing (Section 4: "data structures and indexes
// should be developed focusing on WoD tasks and data, such as Nanocubes
// [96] in the context of spatio-temporal data exploration"): a
// nanocube-lite answers viewport+time-brush+category counts in
// microseconds independent of event count, where raw scans grow linearly.

#include <iostream>
#include <optional>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "geo/nanocube.h"
#include "workload/scenario.h"

namespace lodviz {
namespace {

std::vector<geo::StEvent> MakeEvents(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::StEvent> events(n);
  // Five spatial hubs (like the synthetic LOD geography) + daily rhythm.
  static constexpr double kHubs[5][2] = {
      {0.2, 0.3}, {0.7, 0.6}, {0.4, 0.8}, {0.85, 0.2}, {0.55, 0.45}};
  for (size_t i = 0; i < n; ++i) {
    const double* hub = kHubs[rng.Uniform(5)];
    events[i].position = {std::clamp(hub[0] + rng.Normal(0, 0.05), 0.0, 1.0),
                          std::clamp(hub[1] + rng.Normal(0, 0.05), 0.0, 1.0)};
    events[i].time = rng.UniformDouble();
    events[i].category = static_cast<uint16_t>(rng.Uniform(4));
  }
  return events;
}

int Run() {
  bench::PrintHeader(
      "E13", "Nanocube-lite for spatio-temporal exploration",
      "viewport + time-brush + category counts answered from the index in "
      "~constant time vs linearly growing raw scans");

  TablePrinter table({"events", "build ms", "index MB",
                      "1000 queries: cube ms", "1000 queries: scan ms",
                      "speedup"});
  geo::SpatioTemporalCube::Options opts;
  opts.max_zoom = 8;
  opts.time_bins = 256;
  opts.num_categories = 4;

  for (size_t n : {100000ul, 400000ul, 1600000ul, 6400000ul}) {
    auto events = MakeEvents(n, 7);
    Stopwatch sw;
    auto cube = geo::SpatioTemporalCube::Build(events, opts);
    double build_ms = sw.ElapsedMillis();
    if (!cube.ok()) {
      std::cerr << cube.status().ToString() << "\n";
      return 1;
    }

    // Interactive session: 1000 viewport+brush+category queries.
    Rng rng(11);
    struct Q {
      uint8_t zoom;
      geo::Rect window;
      double t0, t1;
      std::optional<uint16_t> cat;
    };
    std::vector<Q> queries;
    for (int q = 0; q < 1000; ++q) {
      Q query;
      query.zoom = static_cast<uint8_t>(3 + rng.Uniform(6));
      double x = rng.UniformDouble(0, 0.8), y = rng.UniformDouble(0, 0.8);
      query.window = {x, y, x + 0.15, y + 0.15};
      query.t0 = rng.UniformDouble(0, 0.8);
      query.t1 = query.t0 + 0.1;
      if (rng.Bernoulli(0.5)) {
        query.cat = static_cast<uint16_t>(rng.Uniform(4));
      }
      queries.push_back(query);
    }

    sw.Reset();
    uint64_t cube_sum = 0;
    for (const Q& q : queries) {
      cube_sum += cube->Count(q.zoom, q.window, q.t0, q.t1, q.cat);
    }
    double cube_ms = sw.ElapsedMillis();

    // Raw scan baseline (tile-expansion semantics approximated by the
    // plain window — close enough for cost comparison).
    // 100 scans extrapolated to 1000 (a full raw baseline would dominate
    // the bench's runtime at 6.4M events).
    sw.Reset();
    volatile uint64_t scan_sum = 0;
    for (size_t qi = 0; qi < 100; ++qi) {
      const Q& q = queries[qi];
      uint64_t local = 0;
      for (const auto& e : events) {
        if (e.time < q.t0 || e.time >= q.t1) continue;
        if (q.cat.has_value() && e.category != *q.cat) continue;
        if (q.window.Contains(e.position)) ++local;
      }
      scan_sum = scan_sum + local;
    }
    double scan_ms = sw.ElapsedMillis() * 10.0;
    (void)cube_sum;

    table.AddRow({FormatCount(n), bench::Ms(build_ms),
                  bench::Num(cube->MemoryUsage() / 1048576.0, 1),
                  bench::Ms(cube_ms), bench::Ms(scan_ms),
                  bench::Num(scan_ms / std::max(1e-6, cube_ms), 0) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: cube query time is flat in N (it only walks "
               "index cells) while raw scans grow linearly — the Nanocubes "
               "result at laptop scale. Build cost is a one-off linear "
               "pass.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
