// E10 — the SPARQL substrate at scale: query latency across dataset sizes
// and the effect of selectivity-based join ordering (the kind of
// database-side machinery the survey says WoD visualization systems must
// sit on top of).

#include <cstdio>
#include <iostream>
#include <mutex>
#include <unistd.h>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "storage/disk_source_adapter.h"
#include "storage/disk_triple_store.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

const char* kQueries[] = {
    // Q1: star query on one entity type with a numeric filter.
    "SELECT ?s ?age WHERE { "
    "?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    "<http://lod.example/ontology/Person> ; "
    "<http://lod.example/ontology/age> ?age . FILTER(?age > 60) }",
    // Q2: two-hop path.
    "SELECT ?a ?c WHERE { ?a <http://lod.example/ontology/knows> ?b . "
    "?b <http://lod.example/ontology/knows> ?c . } LIMIT 5000",
    // Q3: group-by aggregate over categories.
    "SELECT ?cat (COUNT(*) AS ?n) (AVG(?age) AS ?avg) WHERE { "
    "?s <http://lod.example/ontology/category> ?cat ; "
    "<http://lod.example/ontology/age> ?age . } GROUP BY ?cat",
    // Q4: optional + keyword-ish filter.
    "SELECT ?s ?label WHERE { ?s <http://lod.example/ontology/age> ?age . "
    "OPTIONAL { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?label . } "
    "FILTER(?age < 20) } LIMIT 2000",
};

// Bench-local reconstruction of the pre-striping storage behavior: one
// mutex around every Scan/Count, exactly how DiskSourceAdapter used to
// serialize concurrent BGP probes before the buffer pool was striped.
// Part D measures what removing it bought.
class SerializedSource : public rdf::TripleSource {
 public:
  explicit SerializedSource(const rdf::TripleSource* inner) : inner_(inner) {}

  void Scan(const rdf::TriplePattern& pattern,
            const ScanFn& fn) const override {
    std::lock_guard<std::mutex> lock(mu_);
    inner_->Scan(pattern, fn);
  }

  [[nodiscard]] uint64_t Count(const rdf::TriplePattern& pattern)
      const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inner_->Count(pattern);
  }

  const rdf::Dictionary& dict() const override { return inner_->dict(); }

  [[nodiscard]] uint64_t size() const override { return inner_->size(); }

  [[nodiscard]] uint64_t PredicateCount(rdf::TermId p) const override {
    return inner_->PredicateCount(p);
  }

 private:
  const rdf::TripleSource* inner_;
  mutable std::mutex mu_;
};

int Run() {
  bench::Telemetry telemetry("e10_sparql");
  bench::PrintHeader(
      "E10", "SPARQL engine scaling & join ordering",
      "index nested-loop BGP evaluation with selectivity ordering keeps "
      "exploration queries interactive as data grows");

  std::cout << "Part A — latency vs dataset size (optimized ordering):\n";
  TablePrinter table({"entities", "triples", "Q1 ms", "Q2 ms", "Q3 ms",
                      "Q4 ms"});
  for (uint64_t entities : {10000ul, 40000ul, 160000ul}) {
    rdf::TripleStore store;
    workload::SyntheticLodOptions lod;
    lod.num_entities = entities;
    lod.seed = 3;
    workload::GenerateSyntheticLod(lod, &store);
    store.Compact();
    sparql::QueryEngine engine(&store);

    std::vector<std::string> row = {FormatCount(entities),
                                    FormatCount(store.size())};
    for (const char* q : kQueries) {
      Stopwatch sw;
      auto result = engine.ExecuteString(q);
      double ms = sw.ElapsedMillis();
      if (!result.ok()) {
        std::cerr << "query failed: " << result.status().ToString() << "\n";
        return 1;
      }
      row.push_back(bench::Ms(ms));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nPart B — join ordering effect (40k entities):\n";
  rdf::TripleStore store;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 40000;
  lod.seed = 3;
  workload::GenerateSyntheticLod(lod, &store);
  store.Compact();

  sparql::QueryEngine::Options naive_opts;
  naive_opts.optimize_join_order = false;
  sparql::QueryEngine optimized(&store);
  sparql::QueryEngine naive(&store, naive_opts);

  // A query written in a bad textual order: the most selective pattern
  // (the FILTERed age) comes last.
  const char* bad_order =
      "SELECT ?s WHERE { "
      "?s <http://lod.example/ontology/knows> ?o . "
      "?s <http://lod.example/ontology/category> "
      "<http://lod.example/category/0> . "
      "?s <http://lod.example/ontology/age> ?age . FILTER(?age > 75) }";

  TablePrinter join({"engine", "ms", "intermediate rows", "results"});
  struct Runner {
    sparql::QueryEngine* engine;
    const char* name;
  };
  for (const Runner& r : {Runner{&naive, "textual order"},
                          Runner{&optimized, "selectivity order"}}) {
    Stopwatch sw;
    sparql::QueryStats stats;
    auto result = r.engine->ExecuteString(bad_order, &stats);
    double ms = sw.ElapsedMillis();
    if (!result.ok()) return 1;
    join.AddRow({r.name, bench::Ms(ms), FormatCount(stats.intermediate_rows),
                 FormatCount(result->num_rows())});
  }
  join.Print(std::cout);
  std::cout << "\nShape check: the optimizer evaluates the selective "
               "pattern first, shrinking intermediate results and latency; "
               "both orders return identical answers.\n";

  std::cout << "\nPart C — backend comparison (40k entities, same queries "
               "over memory vs disk TripleSource):\n";
  const std::string disk_path =
      "/tmp/lodviz_e10_backend_" + std::to_string(::getpid()) + ".db";
  std::vector<rdf::Triple> triples;
  store.Scan({}, [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });
  auto disk = bench::Unwrap(storage::DiskTripleStore::Create(disk_path, 256));
  LODVIZ_CHECK_OK(disk->BulkLoad(std::move(triples)));
  storage::DiskSourceAdapter adapter(disk.get(), &store.dict());
  sparql::QueryEngine disk_engine(&adapter);

  TablePrinter backends({"query", "mem ms", "mem rows/s", "disk ms",
                         "disk rows/s", "pool hit rate", "identical"});
  for (size_t qi = 0; qi < std::size(kQueries); ++qi) {
    const char* q = kQueries[qi];
    const std::string label = "q" + std::to_string(qi + 1);

    Stopwatch mem_sw;
    sparql::QueryStats mem_stats;
    auto mem_result = optimized.ExecuteString(q, &mem_stats);
    double mem_ms = mem_sw.ElapsedMillis();
    if (!mem_result.ok()) return 1;

    disk->pool().ResetCounters();
    Stopwatch disk_sw;
    sparql::QueryStats disk_stats;
    auto disk_result = disk_engine.ExecuteString(q, &disk_stats);
    double disk_ms = disk_sw.ElapsedMillis();
    if (!disk_result.ok()) return 1;

    // rows/s counts the rows the executor materialized (intermediate +
    // final): the substrate throughput, not just the projected output.
    double mem_rows_s = mem_ms > 0
                            ? static_cast<double>(mem_stats.intermediate_rows) /
                                  (mem_ms / 1e3)
                            : 0;
    double disk_rows_s =
        disk_ms > 0 ? static_cast<double>(disk_stats.intermediate_rows) /
                          (disk_ms / 1e3)
                    : 0;
    double hit_rate = disk->pool().HitRate();
    bool identical = mem_result->ToString(mem_result->num_rows()) ==
                     disk_result->ToString(disk_result->num_rows());
    backends.AddRow({label, bench::Ms(mem_ms), FormatCount(static_cast<uint64_t>(mem_rows_s)),
                     bench::Ms(disk_ms), FormatCount(static_cast<uint64_t>(disk_rows_s)),
                     bench::Pct(hit_rate), identical ? "yes" : "NO"});
    telemetry.RecordPhase("mem_" + label + "_ms", mem_ms);
    telemetry.RecordPhase("mem_" + label + "_rows_per_s", mem_rows_s);
    telemetry.RecordPhase("disk_" + label + "_ms", disk_ms);
    telemetry.RecordPhase("disk_" + label + "_rows_per_s", disk_rows_s);
    telemetry.RecordPhase("disk_" + label + "_pool_hit_rate", hit_rate);
    if (!identical) {
      std::cerr << "backend divergence on " << label << "\n";
      std::remove(disk_path.c_str());
      return 1;
    }
  }
  backends.Print(std::cout);
  std::cout << "\nShape check: both backends return bit-identical tables; "
               "the disk backend pays buffer-pool traffic, amortized by its "
               "hit rate.\n";

  std::cout << "\nPart D — disk BGP thread scaling: lock-striped buffer "
               "pool vs a single-mutex source (how the pre-striping "
               "adapter serialized every scan):\n";
  // Nested-loop joins do one index scan per probe row, so they put the
  // most concurrent pressure on the storage layer — exactly what the
  // striping is for. Force NLJ so the comparison measures the pool, not
  // the join strategy.
  sparql::QueryEngine::Options nlj_opts;
  nlj_opts.force_join = sparql::JoinForce::kNestedLoop;
  SerializedSource serialized(&adapter);
  sparql::QueryEngine striped_engine(&adapter, nlj_opts);
  sparql::QueryEngine serialized_engine(&serialized, nlj_opts);
  const char* scaling_q = kQueries[1];  // two-hop path: probe-heavy BGP

  TablePrinter scaling({"source", "threads", "ms"});
  double phase_ms[2][2] = {};
  struct Src {
    sparql::QueryEngine* engine;
    const char* name;
  } sources[] = {{&serialized_engine, "serialized"},
                 {&striped_engine, "striped"}};
  for (int si = 0; si < 2; ++si) {
    for (int ti = 0; ti < 2; ++ti) {
      const int threads = ti == 0 ? 1 : 4;
      exec::SetThreads(threads);
      // Warm the pool so every phase measures in-cache concurrency, not
      // first-touch I/O.
      (void)sources[si].engine->ExecuteString(scaling_q);
      Stopwatch sw;
      auto r = sources[si].engine->ExecuteString(scaling_q);
      double ms = sw.ElapsedMillis();
      if (!r.ok()) {
        std::remove(disk_path.c_str());
        return 1;
      }
      phase_ms[si][ti] = ms;
      const std::string phase = std::string("disk_bgp_") + sources[si].name +
                                "_" + std::to_string(threads) + "t_ms";
      telemetry.RecordPhase(phase, ms);
      scaling.AddRow({sources[si].name, std::to_string(threads),
                      bench::Ms(ms)});
    }
  }
  exec::SetThreads(0);
  const double speedup =
      phase_ms[1][1] > 0 ? phase_ms[0][1] / phase_ms[1][1] : 0;
  telemetry.RecordPhase("disk_bgp_4t_striped_speedup", speedup);
  scaling.Print(std::cout);
  char ratio[32];
  std::snprintf(ratio, sizeof(ratio), "%.2f", speedup);
  std::cout << "\nShape check: at 4 threads the striped pool should beat "
               "the single-mutex source (ratio " << ratio
            << "x); on a single-core host both flatline and the ratio "
               "hovers near 1 — see EXPERIMENTS.md E10 for the caveat.\n";

  std::cout << "\nPart E — join strategy on the disk backend (same two-hop "
               "query, forced each way):\n";
  sparql::QueryEngine::Options hash_opts;
  hash_opts.force_join = sparql::JoinForce::kHash;
  sparql::QueryEngine disk_hash_engine(&adapter, hash_opts);
  TablePrinter joins({"strategy", "ms", "identical"});
  (void)striped_engine.ExecuteString(scaling_q);
  Stopwatch nlj_sw;
  auto nlj_r = striped_engine.ExecuteString(scaling_q);
  double nlj_ms = nlj_sw.ElapsedMillis();
  (void)disk_hash_engine.ExecuteString(scaling_q);
  Stopwatch hash_sw;
  auto hash_r = disk_hash_engine.ExecuteString(scaling_q);
  double hash_ms = hash_sw.ElapsedMillis();
  if (!nlj_r.ok() || !hash_r.ok()) {
    std::remove(disk_path.c_str());
    return 1;
  }
  bool join_identical = nlj_r->ToString(nlj_r->num_rows()) ==
                        hash_r->ToString(hash_r->num_rows());
  joins.AddRow({"nested-loop", bench::Ms(nlj_ms), join_identical ? "yes" : "NO"});
  joins.AddRow({"hash", bench::Ms(hash_ms), join_identical ? "yes" : "NO"});
  telemetry.RecordPhase("disk_join_nlj_ms", nlj_ms);
  telemetry.RecordPhase("disk_join_hash_ms", hash_ms);
  joins.Print(std::cout);
  std::remove(disk_path.c_str());
  if (!join_identical) {
    std::cerr << "join strategy divergence\n";
    return 1;
  }
  std::cout << "\nShape check: both strategies return bit-identical rows; "
               "the adaptive planner picks between them per pattern from "
               "shared statistics.\n";

  std::cout << "\nPart F — row vs batch execution (40k entities, in-memory "
               "backend, same queries both modes):\n";
  sparql::QueryEngine::Options row_mode;
  row_mode.exec_mode = sparql::ExecMode::kRow;
  sparql::QueryEngine::Options batch_mode;
  batch_mode.exec_mode = sparql::ExecMode::kBatch;
  sparql::QueryEngine row_engine(&store, row_mode);
  sparql::QueryEngine batch_engine(&store, batch_mode);
  struct ModeQuery {
    const char* label;
    const char* text;
  };
  const ModeQuery mode_queries[] = {
      {"bgp_filter", kQueries[0]},
      {"bgp_2hop", kQueries[1]},
      {"group_by", kQueries[2]},
      {"optional", kQueries[3]},
  };
  TablePrinter modes({"query", "row ms", "batch ms", "speedup", "identical"});
  double bgp_row_ms = 0, bgp_batch_ms = 0;
  for (const ModeQuery& mq : mode_queries) {
    (void)row_engine.ExecuteString(mq.text);  // warm both engines
    (void)batch_engine.ExecuteString(mq.text);
    Stopwatch row_sw;
    auto row_r = row_engine.ExecuteString(mq.text);
    const double row_ms = row_sw.ElapsedMillis();
    Stopwatch batch_sw;
    auto batch_r = batch_engine.ExecuteString(mq.text);
    const double batch_ms = batch_sw.ElapsedMillis();
    if (!row_r.ok() || !batch_r.ok()) return 1;
    const bool identical = row_r->ToString(row_r->num_rows()) ==
                           batch_r->ToString(batch_r->num_rows());
    char speed[32];
    std::snprintf(speed, sizeof(speed), "%.2fx",
                  batch_ms > 0 ? row_ms / batch_ms : 0);
    modes.AddRow({mq.label, bench::Ms(row_ms), bench::Ms(batch_ms), speed,
                  identical ? "yes" : "NO"});
    telemetry.RecordPhase(std::string("partF_") + mq.label + "_row_ms",
                          row_ms);
    telemetry.RecordPhase(std::string("partF_") + mq.label + "_batch_ms",
                          batch_ms);
    if (!identical) {
      std::cerr << "row/batch divergence on " << mq.label << "\n";
      return 1;
    }
    if (std::string(mq.label) == "bgp_2hop") {
      bgp_row_ms = row_ms;
      bgp_batch_ms = batch_ms;
    }
  }
  telemetry.RecordPhase("partF_bgp_batch_speedup",
                        bgp_batch_ms > 0 ? bgp_row_ms / bgp_batch_ms : 0);
  modes.Print(std::cout);
  std::cout << "\nShape check: both modes return bit-identical rows (the "
               "ExecMode contract); the batch engine's advantage is widest "
               "on scan/extend-heavy BGPs, where per-row dispatch and "
               "full-width row copies disappear from the inner loop.\n";

  std::cout << "\nPart G — disk leaf format: fixed 24-byte entries vs "
               "delta-compressed varint pages (same data, same queries):\n";
  std::vector<rdf::Triple> leaf_triples;
  store.Scan({}, [&](const rdf::Triple& t) {
    leaf_triples.push_back(t);
    return true;
  });
  const std::string mem_q2 = [&] {
    auto r = optimized.ExecuteString(kQueries[1]);
    LODVIZ_CHECK(r.ok()) << r.status().ToString();
    return r->ToString(r->num_rows());
  }();
  struct FormatLeg {
    storage::LeafFormat format;
    const char* name;
  } legs[] = {{storage::LeafFormat::kFixed, "fixed"},
              {storage::LeafFormat::kCompressed, "compressed"}};
  TablePrinter leaf_table({"leaf format", "pages", "pages/triple", "Q2 ms",
                           "pool hit rate", "identical"});
  double pages_per_triple[2] = {};
  for (int li = 0; li < 2; ++li) {
    const std::string leg_path = "/tmp/lodviz_e10_leaf_" +
                                 std::string(legs[li].name) + "_" +
                                 std::to_string(::getpid()) + ".db";
    auto leg_store = bench::Unwrap(
        storage::DiskTripleStore::Create(leg_path, 256, legs[li].format));
    LODVIZ_CHECK_OK(leg_store->BulkLoad(leaf_triples));
    storage::DiskSourceAdapter leg_adapter(leg_store.get(), &store.dict());
    sparql::QueryEngine leg_engine(&leg_adapter);

    const double ppt = static_cast<double>(leg_store->file().num_pages()) /
                       static_cast<double>(leg_store->size());
    pages_per_triple[li] = ppt;

    (void)leg_engine.ExecuteString(kQueries[1]);  // warm the pool
    leg_store->pool().ResetCounters();
    Stopwatch leg_sw;
    auto leg_r = leg_engine.ExecuteString(kQueries[1]);
    const double leg_ms = leg_sw.ElapsedMillis();
    if (!leg_r.ok()) {
      std::remove(leg_path.c_str());
      return 1;
    }
    const double leg_hit = leg_store->pool().HitRate();
    const bool identical = leg_r->ToString(leg_r->num_rows()) == mem_q2;

    char ppt_text[32];
    std::snprintf(ppt_text, sizeof(ppt_text), "%.4f", ppt);
    leaf_table.AddRow({legs[li].name,
                       FormatCount(leg_store->file().num_pages()), ppt_text,
                       bench::Ms(leg_ms), bench::Pct(leg_hit),
                       identical ? "yes" : "NO"});
    const std::string tag = legs[li].name;
    telemetry.RecordPhase("partG_pages_per_triple_" + tag, ppt);
    telemetry.RecordPhase("partG_disk_bgp_" + tag + "_ms", leg_ms);
    telemetry.RecordPhase("partG_pool_hit_rate_" + tag, leg_hit);
    std::remove(leg_path.c_str());
    if (!identical) {
      std::cerr << "leaf-format divergence on " << legs[li].name << "\n";
      return 1;
    }
  }
  const double page_ratio = pages_per_triple[1] > 0
                                ? pages_per_triple[0] / pages_per_triple[1]
                                : 0;
  telemetry.RecordPhase("partG_pages_ratio_fixed_over_compressed", page_ratio);
  leaf_table.Print(std::cout);
  char ratio_text[32];
  std::snprintf(ratio_text, sizeof(ratio_text), "%.2f", page_ratio);
  std::cout << "\nShape check: both leaf formats serve bit-identical rows; "
               "the compressed layout stores the same triples in "
            << ratio_text
            << "x fewer pages per triple, which is the same factor of extra "
               "triples each buffer-pool frame now caches.\n";
  if (page_ratio < 2.0) {
    std::cerr << "compressed leaves must reduce pages/triple by >= 2x "
                 "(measured "
              << ratio_text << "x)\n";
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
