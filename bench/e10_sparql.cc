// E10 — the SPARQL substrate at scale: query latency across dataset sizes
// and the effect of selectivity-based join ordering (the kind of
// database-side machinery the survey says WoD visualization systems must
// sit on top of).

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "workload/synthetic_lod.h"

namespace lodviz {
namespace {

const char* kQueries[] = {
    // Q1: star query on one entity type with a numeric filter.
    "SELECT ?s ?age WHERE { "
    "?s <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> "
    "<http://lod.example/ontology/Person> ; "
    "<http://lod.example/ontology/age> ?age . FILTER(?age > 60) }",
    // Q2: two-hop path.
    "SELECT ?a ?c WHERE { ?a <http://lod.example/ontology/knows> ?b . "
    "?b <http://lod.example/ontology/knows> ?c . } LIMIT 5000",
    // Q3: group-by aggregate over categories.
    "SELECT ?cat (COUNT(*) AS ?n) (AVG(?age) AS ?avg) WHERE { "
    "?s <http://lod.example/ontology/category> ?cat ; "
    "<http://lod.example/ontology/age> ?age . } GROUP BY ?cat",
    // Q4: optional + keyword-ish filter.
    "SELECT ?s ?label WHERE { ?s <http://lod.example/ontology/age> ?age . "
    "OPTIONAL { ?s <http://www.w3.org/2000/01/rdf-schema#label> ?label . } "
    "FILTER(?age < 20) } LIMIT 2000",
};

int Run() {
  bench::Telemetry telemetry("e10_sparql");
  bench::PrintHeader(
      "E10", "SPARQL engine scaling & join ordering",
      "index nested-loop BGP evaluation with selectivity ordering keeps "
      "exploration queries interactive as data grows");

  std::cout << "Part A — latency vs dataset size (optimized ordering):\n";
  TablePrinter table({"entities", "triples", "Q1 ms", "Q2 ms", "Q3 ms",
                      "Q4 ms"});
  for (uint64_t entities : {10000ul, 40000ul, 160000ul}) {
    rdf::TripleStore store;
    workload::SyntheticLodOptions lod;
    lod.num_entities = entities;
    lod.seed = 3;
    workload::GenerateSyntheticLod(lod, &store);
    store.Compact();
    sparql::QueryEngine engine(&store);

    std::vector<std::string> row = {FormatCount(entities),
                                    FormatCount(store.size())};
    for (const char* q : kQueries) {
      Stopwatch sw;
      auto result = engine.ExecuteString(q);
      double ms = sw.ElapsedMillis();
      if (!result.ok()) {
        std::cerr << "query failed: " << result.status().ToString() << "\n";
        return 1;
      }
      row.push_back(bench::Ms(ms));
    }
    table.AddRow(std::move(row));
  }
  table.Print(std::cout);

  std::cout << "\nPart B — join ordering effect (40k entities):\n";
  rdf::TripleStore store;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 40000;
  lod.seed = 3;
  workload::GenerateSyntheticLod(lod, &store);
  store.Compact();

  sparql::QueryEngine::Options naive_opts;
  naive_opts.optimize_join_order = false;
  sparql::QueryEngine optimized(&store);
  sparql::QueryEngine naive(&store, naive_opts);

  // A query written in a bad textual order: the most selective pattern
  // (the FILTERed age) comes last.
  const char* bad_order =
      "SELECT ?s WHERE { "
      "?s <http://lod.example/ontology/knows> ?o . "
      "?s <http://lod.example/ontology/category> "
      "<http://lod.example/category/0> . "
      "?s <http://lod.example/ontology/age> ?age . FILTER(?age > 75) }";

  TablePrinter join({"engine", "ms", "intermediate rows", "results"});
  struct Runner {
    sparql::QueryEngine* engine;
    const char* name;
  };
  for (const Runner& r : {Runner{&naive, "textual order"},
                          Runner{&optimized, "selectivity order"}}) {
    Stopwatch sw;
    auto result = r.engine->ExecuteString(bad_order);
    double ms = sw.ElapsedMillis();
    if (!result.ok()) return 1;
    join.AddRow({r.name, bench::Ms(ms),
                 FormatCount(r.engine->last_intermediate_rows()),
                 FormatCount(result->num_rows())});
  }
  join.Print(std::cout);
  std::cout << "\nShape check: the optimizer evaluates the selective "
               "pattern first, shrinking intermediate results and latency; "
               "both orders return identical answers.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
