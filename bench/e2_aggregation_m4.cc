// E2 — aggregation bounds visual elements ("squeeze a billion records
// into a million pixels" [119]; binning [42, 138]; M4 pixel-perfect
// aggregation [73, 74]): raw rendering over-plots catastrophically as N
// grows, while binned / M4 renderings keep drawn elements bounded by the
// display, at near-zero pixel error for M4.

#include <cmath>
#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "geo/geometry.h"
#include "stats/histogram.h"
#include "viz/canvas.h"
#include "viz/m4.h"
#include "viz/renderers.h"
#include "workload/scenario.h"

namespace lodviz {
namespace {

void ScatterOverplot() {
  std::cout << "Part A — scatter over-plotting vs binned aggregation "
               "(800x600 canvas):\n";
  TablePrinter table({"N", "raw elems", "hidden marks", "overplot x",
                      "binned elems", "bin render ms", "raw render ms"});
  Rng rng(3);
  for (size_t n : {10000ul, 100000ul, 1000000ul, 4000000ul}) {
    std::vector<geo::Point> points;
    points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      points.push_back({rng.Normal(0.5, 0.15), rng.Normal(0.5, 0.15)});
    }
    viz::Canvas raw(800, 600);
    Stopwatch sw;
    viz::RenderStats raw_stats = viz::RenderScatter(&raw, points);
    double raw_ms = sw.ElapsedMillis();

    // Binned: 2-D aggregation to a 40x30 grid rendered as filled cells.
    sw.Reset();
    const int bx = 40, by = 30;
    std::vector<uint64_t> grid(bx * by, 0);
    for (const auto& p : points) {
      int cx = std::clamp(static_cast<int>(p.x * bx), 0, bx - 1);
      int cy = std::clamp(static_cast<int>(p.y * by), 0, by - 1);
      ++grid[cy * bx + cx];
    }
    viz::Canvas binned(800, 600);
    uint64_t cells_drawn = 0;
    for (int cy = 0; cy < by; ++cy) {
      for (int cx = 0; cx < bx; ++cx) {
        if (grid[cy * bx + cx] == 0) continue;
        ++cells_drawn;
        binned.FillRect({static_cast<double>(cx) / bx,
                         static_cast<double>(cy) / by,
                         static_cast<double>(cx + 1) / bx,
                         static_cast<double>(cy + 1) / by});
      }
    }
    double bin_ms = sw.ElapsedMillis();

    table.AddRow({FormatCount(n), FormatCount(raw_stats.elements_drawn),
                  bench::Pct(raw.HiddenMarkFraction()),
                  bench::Num(raw.OverplotFactor(), 1),
                  FormatCount(cells_drawn), bench::Ms(bin_ms),
                  bench::Ms(raw_ms)});
  }
  table.Print(std::cout);
  std::cout << "Shape check: hidden-mark fraction approaches 100% for raw "
               "scatter while binned output stays bounded (<= 1200 cells).\n\n";
}

void M4LineCharts() {
  std::cout << "Part B — M4 vs naive stride downsampling for line charts "
               "(320px wide):\n";
  TablePrinter table({"N", "M4 points", "M4 pixel err", "stride pixel err",
                      "raw ms", "M4 ms", "speedup"});
  const int width = 320, height = 160;
  for (size_t n : {50000ul, 200000ul, 1000000ul, 4000000ul}) {
    auto series = workload::RandomWalkSeries(n, 11);
    viz::Canvas raw(width, height);
    Stopwatch sw;
    viz::RenderLineChart(&raw, series);
    double raw_ms = sw.ElapsedMillis();

    sw.Reset();
    auto m4 = viz::M4Downsample(series, width);
    viz::Canvas m4_canvas(width, height);
    viz::RenderLineChart(&m4_canvas, m4);
    double m4_ms = sw.ElapsedMillis();

    auto stride = viz::StrideDownsample(series, m4.size());
    viz::Canvas stride_canvas(width, height);
    viz::RenderLineChart(&stride_canvas, stride);

    auto pixel_error = [&](const viz::Canvas& c) {
      uint64_t differing = 0;
      for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
          if ((raw.At(x, y) > 0) != (c.At(x, y) > 0)) ++differing;
        }
      }
      return static_cast<double>(differing) /
             static_cast<double>(raw.pixels_touched());
    };

    table.AddRow({FormatCount(n), FormatCount(m4.size()),
                  bench::Pct(pixel_error(m4_canvas)),
                  bench::Pct(pixel_error(stride_canvas)), bench::Ms(raw_ms),
                  bench::Ms(m4_ms),
                  bench::Num(raw_ms / std::max(1e-6, m4_ms)) + "x"});
  }
  table.Print(std::cout);
  std::cout << "Shape check: M4 error stays ~0% at a fixed 4w point budget; "
               "equal-budget stride sampling distorts the chart badly.\n";
}

}  // namespace
}  // namespace lodviz

int main() {
  lodviz::bench::PrintHeader(
      "E2", "Aggregation keeps visual elements bounded",
      "binning and M4 reduce millions of objects to display-bounded "
      "elements; raw rendering hides most marks behind over-plotting");
  lodviz::ScatterOverplot();
  lodviz::M4LineCharts();
  return 0;
}
