// A2 (ablation) — spatial access paths for viewport exploration
// (graphVizdb-style): STR bulk load vs incremental insertion, node fanout
// sweep, and the window-selectivity crossover against a linear scan.
// Backs DESIGN.md's choice of STR bulk loading with fanout 16.

#include <iostream>

#include "bench_util.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "geo/rtree.h"

namespace lodviz {
namespace {

std::vector<geo::RTree::Entry> RandomPoints(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geo::RTree::Entry> entries;
  entries.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.UniformDouble(0, 1000), y = rng.UniformDouble(0, 1000);
    entries.push_back({{x, y, x, y}, i});
  }
  return entries;
}

int Run() {
  bench::PrintHeader(
      "A2", "Spatial index ablation",
      "STR bulk load vs insertion, fanout sweep, and the window size at "
      "which an R-tree stops paying vs a linear scan");

  const size_t kN = 200000;
  auto entries = RandomPoints(kN, 7);

  std::cout << "Part A — construction strategy and fanout (" << FormatCount(kN)
            << " points, 1000 window queries of 20x20):\n";
  TablePrinter build({"strategy", "fanout", "build ms", "query ms (1000)",
                      "index nodes visited/query"});
  Rng qrng(9);
  std::vector<geo::Rect> windows;
  for (int q = 0; q < 1000; ++q) {
    double x = qrng.UniformDouble(0, 980), y = qrng.UniformDouble(0, 980);
    windows.push_back({x, y, x + 20, y + 20});
  }
  for (size_t fanout : {4ul, 8ul, 16ul, 64ul}) {
    for (bool bulk : {true, false}) {
      geo::RTree tree(fanout);
      Stopwatch sw;
      if (bulk) {
        tree.BulkLoad(entries);
      } else {
        for (const auto& e : entries) tree.Insert(e.rect, e.id);
      }
      double build_ms = sw.ElapsedMillis();

      sw.Reset();
      uint64_t visited = 0, found = 0;
      for (const auto& w : windows) {
        tree.Search(w, [&](const geo::RTree::Entry&) {
          ++found;
          return true;
        });
        visited += tree.nodes_visited;
      }
      double query_ms = sw.ElapsedMillis();
      (void)found;
      build.AddRow({bulk ? "STR bulk" : "insert", FormatCount(fanout),
                    bench::Ms(build_ms), bench::Ms(query_ms),
                    bench::Num(static_cast<double>(visited) / windows.size(),
                               1)});
    }
  }
  build.Print(std::cout);

  std::cout << "\nPart B — crossover vs linear scan (bulk-loaded, fanout 16; "
               "window side sweep):\n";
  geo::RTree tree(16);
  tree.BulkLoad(entries);
  TablePrinter crossover({"window side", "matches", "rtree ms (100q)",
                          "scan ms (100q)", "winner"});
  for (double side : {5.0, 50.0, 200.0, 500.0, 1000.0}) {
    Rng wrng(11);
    std::vector<geo::Rect> ws;
    for (int q = 0; q < 100; ++q) {
      double x = wrng.UniformDouble(0, std::max(1.0, 1000 - side));
      double y = wrng.UniformDouble(0, std::max(1.0, 1000 - side));
      ws.push_back({x, y, x + side, y + side});
    }
    Stopwatch sw;
    uint64_t rtree_found = 0;
    for (const auto& w : ws) {
      tree.Search(w, [&](const geo::RTree::Entry&) {
        ++rtree_found;
        return true;
      });
    }
    double rtree_ms = sw.ElapsedMillis();

    sw.Reset();
    uint64_t scan_found = 0;
    for (const auto& w : ws) {
      for (const auto& e : entries) {
        if (e.rect.Intersects(w)) ++scan_found;
      }
    }
    double scan_ms = sw.ElapsedMillis();
    if (rtree_found != scan_found) {
      std::cerr << "MISMATCH in counts!\n";
      return 1;
    }
    crossover.AddRow({bench::Num(side, 0),
                      FormatCount(rtree_found / ws.size()),
                      bench::Ms(rtree_ms), bench::Ms(scan_ms),
                      rtree_ms < scan_ms ? "rtree" : "scan"});
  }
  crossover.Print(std::cout);
  std::cout << "\nShape check: STR bulk load builds an order of magnitude "
               "faster and queries slightly better than insertion; the "
               "R-tree wins for selective viewports (pan/zoom) and only "
               "loses when the window covers most of the data — exactly "
               "when a full redraw is needed anyway.\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
