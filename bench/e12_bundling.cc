// E12 — edge bundling reduces clutter (Section 4, refs [63, 48, 44, 90]):
// force-directed edge bundling merges compatible edges into shared
// corridors, measurably shrinking the screen area ink covers while
// keeping endpoints fixed.

#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "graph/bundling.h"
#include "graph/generators.h"
#include "graph/layout.h"

namespace lodviz {
namespace {

int Run() {
  bench::PrintHeader(
      "E12", "Force-directed edge bundling",
      "bundling reduces distinct rendered cells (clutter) on graphs with "
      "parallel structure, at bounded polyline overhead");

  struct CaseSpec {
    const char* name;
    graph::Graph g;
  };
  std::vector<CaseSpec> cases;
  cases.push_back({"bipartite flows (2x40 nodes)", {}});
  {
    std::vector<std::pair<graph::NodeId, graph::NodeId>> edges;
    for (graph::NodeId i = 0; i < 40; ++i) {
      edges.emplace_back(i, 40 + (i * 13) % 40);
      edges.emplace_back(i, 40 + (i * 7) % 40);
    }
    cases.back().g = graph::Graph::FromEdges(80, edges);
  }
  cases.push_back(
      {"clustered (planted partition)",
       graph::PlantedPartition(4, 20, 0.35, 0.03, 5)});
  cases.push_back({"small world", graph::WattsStrogatz(100, 6, 0.05, 7)});

  TablePrinter table({"graph", "edges", "compatible pairs",
                      "cells before", "cells after", "clutter reduction",
                      "ink ratio", "bundle ms"});
  for (auto& c : cases) {
    graph::Layout layout;
    if (c.name == std::string("bipartite flows (2x40 nodes)")) {
      layout.resize(c.g.num_nodes());
      for (graph::NodeId i = 0; i < 40; ++i) {
        layout[i] = {0.05, 0.05 + 0.9 * i / 39.0};
        layout[40 + i] = {0.95, 0.05 + 0.9 * i / 39.0};
      }
    } else {
      graph::ForceLayoutOptions lopts;
      lopts.iterations = 60;
      layout = graph::ForceDirectedLayout(c.g, lopts);
    }

    graph::BundlingOptions bopts;
    bopts.iterations = 45;
    bopts.compatibility_threshold = 0.55;
    Stopwatch sw;
    graph::BundlingResult r = graph::BundleEdges(c.g, layout, bopts);
    double ms = sw.ElapsedMillis();

    double reduction =
        1.0 - static_cast<double>(r.distinct_cells_after) /
                  static_cast<double>(std::max<uint64_t>(1, r.distinct_cells_before));
    table.AddRow({c.name, FormatCount(c.g.num_edges()),
                  FormatCount(r.compatible_pairs),
                  FormatCount(r.distinct_cells_before),
                  FormatCount(r.distinct_cells_after), bench::Pct(reduction),
                  bench::Num(r.ink_after / std::max(1e-9, r.ink_before), 2),
                  bench::Ms(ms)});
  }
  table.Print(std::cout);
  std::cout << "\nShape check: structured graphs (bipartite flows, "
               "clustered) bundle well — large cell reductions with "
               "modest polyline lengthening; unstructured small-world "
               "graphs bundle less, as in [48].\n";
  return 0;
}

}  // namespace
}  // namespace lodviz

int main() { return lodviz::Run(); }
