# Empty compiler generated dependencies file for e1_sampling.
# This may be replaced when dependencies are built.
