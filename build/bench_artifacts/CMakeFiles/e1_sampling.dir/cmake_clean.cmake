file(REMOVE_RECURSE
  "../bench/e1_sampling"
  "../bench/e1_sampling.pdb"
  "CMakeFiles/e1_sampling.dir/e1_sampling.cc.o"
  "CMakeFiles/e1_sampling.dir/e1_sampling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
