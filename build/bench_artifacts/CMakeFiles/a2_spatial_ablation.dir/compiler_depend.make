# Empty compiler generated dependencies file for a2_spatial_ablation.
# This may be replaced when dependencies are built.
