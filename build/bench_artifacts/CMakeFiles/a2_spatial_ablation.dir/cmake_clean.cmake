file(REMOVE_RECURSE
  "../bench/a2_spatial_ablation"
  "../bench/a2_spatial_ablation.pdb"
  "CMakeFiles/a2_spatial_ablation.dir/a2_spatial_ablation.cc.o"
  "CMakeFiles/a2_spatial_ablation.dir/a2_spatial_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a2_spatial_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
