# Empty compiler generated dependencies file for e11_cube.
# This may be replaced when dependencies are built.
