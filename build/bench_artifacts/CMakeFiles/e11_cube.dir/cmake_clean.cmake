file(REMOVE_RECURSE
  "../bench/e11_cube"
  "../bench/e11_cube.pdb"
  "CMakeFiles/e11_cube.dir/e11_cube.cc.o"
  "CMakeFiles/e11_cube.dir/e11_cube.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
