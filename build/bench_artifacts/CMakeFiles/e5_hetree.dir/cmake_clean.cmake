file(REMOVE_RECURSE
  "../bench/e5_hetree"
  "../bench/e5_hetree.pdb"
  "CMakeFiles/e5_hetree.dir/e5_hetree.cc.o"
  "CMakeFiles/e5_hetree.dir/e5_hetree.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_hetree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
