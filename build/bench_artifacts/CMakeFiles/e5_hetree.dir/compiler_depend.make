# Empty compiler generated dependencies file for e5_hetree.
# This may be replaced when dependencies are built.
