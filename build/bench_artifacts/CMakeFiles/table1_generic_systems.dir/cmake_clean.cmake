file(REMOVE_RECURSE
  "../bench/table1_generic_systems"
  "../bench/table1_generic_systems.pdb"
  "CMakeFiles/table1_generic_systems.dir/table1_generic_systems.cc.o"
  "CMakeFiles/table1_generic_systems.dir/table1_generic_systems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_generic_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
