file(REMOVE_RECURSE
  "../bench/table2_graph_systems"
  "../bench/table2_graph_systems.pdb"
  "CMakeFiles/table2_graph_systems.dir/table2_graph_systems.cc.o"
  "CMakeFiles/table2_graph_systems.dir/table2_graph_systems.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_graph_systems.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
