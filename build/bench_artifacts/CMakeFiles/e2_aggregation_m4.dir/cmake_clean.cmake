file(REMOVE_RECURSE
  "../bench/e2_aggregation_m4"
  "../bench/e2_aggregation_m4.pdb"
  "CMakeFiles/e2_aggregation_m4.dir/e2_aggregation_m4.cc.o"
  "CMakeFiles/e2_aggregation_m4.dir/e2_aggregation_m4.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_aggregation_m4.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
