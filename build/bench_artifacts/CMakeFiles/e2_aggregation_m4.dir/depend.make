# Empty dependencies file for e2_aggregation_m4.
# This may be replaced when dependencies are built.
