file(REMOVE_RECURSE
  "../bench/e9_recommendation"
  "../bench/e9_recommendation.pdb"
  "CMakeFiles/e9_recommendation.dir/e9_recommendation.cc.o"
  "CMakeFiles/e9_recommendation.dir/e9_recommendation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_recommendation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
