# Empty compiler generated dependencies file for e9_recommendation.
# This may be replaced when dependencies are built.
