# Empty dependencies file for e10_sparql.
# This may be replaced when dependencies are built.
