file(REMOVE_RECURSE
  "../bench/e10_sparql"
  "../bench/e10_sparql.pdb"
  "CMakeFiles/e10_sparql.dir/e10_sparql.cc.o"
  "CMakeFiles/e10_sparql.dir/e10_sparql.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
