
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/e10_sparql.cc" "bench_artifacts/CMakeFiles/e10_sparql.dir/e10_sparql.cc.o" "gcc" "bench_artifacts/CMakeFiles/e10_sparql.dir/e10_sparql.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lodviz_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/lodviz_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/sparql/CMakeFiles/lodviz_sparql.dir/DependInfo.cmake"
  "/root/repo/build/src/cube/CMakeFiles/lodviz_cube.dir/DependInfo.cmake"
  "/root/repo/build/src/rec/CMakeFiles/lodviz_rec.dir/DependInfo.cmake"
  "/root/repo/build/src/explore/CMakeFiles/lodviz_explore.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lodviz_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/lodviz_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/lodviz_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lodviz_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lodviz_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/lodviz_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lodviz_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lodviz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
