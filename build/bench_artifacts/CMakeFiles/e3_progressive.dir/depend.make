# Empty dependencies file for e3_progressive.
# This may be replaced when dependencies are built.
