file(REMOVE_RECURSE
  "../bench/e3_progressive"
  "../bench/e3_progressive.pdb"
  "CMakeFiles/e3_progressive.dir/e3_progressive.cc.o"
  "CMakeFiles/e3_progressive.dir/e3_progressive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_progressive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
