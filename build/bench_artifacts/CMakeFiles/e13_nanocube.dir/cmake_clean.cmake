file(REMOVE_RECURSE
  "../bench/e13_nanocube"
  "../bench/e13_nanocube.pdb"
  "CMakeFiles/e13_nanocube.dir/e13_nanocube.cc.o"
  "CMakeFiles/e13_nanocube.dir/e13_nanocube.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e13_nanocube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
