# Empty dependencies file for e13_nanocube.
# This may be replaced when dependencies are built.
