# Empty compiler generated dependencies file for a3_store_ablation.
# This may be replaced when dependencies are built.
