file(REMOVE_RECURSE
  "../bench/a3_store_ablation"
  "../bench/a3_store_ablation.pdb"
  "CMakeFiles/a3_store_ablation.dir/a3_store_ablation.cc.o"
  "CMakeFiles/a3_store_ablation.dir/a3_store_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a3_store_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
