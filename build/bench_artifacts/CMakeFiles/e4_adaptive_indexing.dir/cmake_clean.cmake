file(REMOVE_RECURSE
  "../bench/e4_adaptive_indexing"
  "../bench/e4_adaptive_indexing.pdb"
  "CMakeFiles/e4_adaptive_indexing.dir/e4_adaptive_indexing.cc.o"
  "CMakeFiles/e4_adaptive_indexing.dir/e4_adaptive_indexing.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_adaptive_indexing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
