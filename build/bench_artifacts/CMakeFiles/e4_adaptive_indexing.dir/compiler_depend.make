# Empty compiler generated dependencies file for e4_adaptive_indexing.
# This may be replaced when dependencies are built.
