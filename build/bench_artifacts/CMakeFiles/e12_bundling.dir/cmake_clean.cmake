file(REMOVE_RECURSE
  "../bench/e12_bundling"
  "../bench/e12_bundling.pdb"
  "CMakeFiles/e12_bundling.dir/e12_bundling.cc.o"
  "CMakeFiles/e12_bundling.dir/e12_bundling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_bundling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
