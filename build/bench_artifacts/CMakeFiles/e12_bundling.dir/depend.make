# Empty dependencies file for e12_bundling.
# This may be replaced when dependencies are built.
