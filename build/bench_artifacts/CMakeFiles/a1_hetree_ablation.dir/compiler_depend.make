# Empty compiler generated dependencies file for a1_hetree_ablation.
# This may be replaced when dependencies are built.
