file(REMOVE_RECURSE
  "../bench/a1_hetree_ablation"
  "../bench/a1_hetree_ablation.pdb"
  "CMakeFiles/a1_hetree_ablation.dir/a1_hetree_ablation.cc.o"
  "CMakeFiles/a1_hetree_ablation.dir/a1_hetree_ablation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/a1_hetree_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
