# Empty dependencies file for e7_disk_exploration.
# This may be replaced when dependencies are built.
