file(REMOVE_RECURSE
  "../bench/e7_disk_exploration"
  "../bench/e7_disk_exploration.pdb"
  "CMakeFiles/e7_disk_exploration.dir/e7_disk_exploration.cc.o"
  "CMakeFiles/e7_disk_exploration.dir/e7_disk_exploration.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_disk_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
