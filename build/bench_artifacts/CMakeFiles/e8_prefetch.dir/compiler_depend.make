# Empty compiler generated dependencies file for e8_prefetch.
# This may be replaced when dependencies are built.
