file(REMOVE_RECURSE
  "../bench/e8_prefetch"
  "../bench/e8_prefetch.pdb"
  "CMakeFiles/e8_prefetch.dir/e8_prefetch.cc.o"
  "CMakeFiles/e8_prefetch.dir/e8_prefetch.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
