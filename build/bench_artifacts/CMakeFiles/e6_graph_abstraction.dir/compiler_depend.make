# Empty compiler generated dependencies file for e6_graph_abstraction.
# This may be replaced when dependencies are built.
