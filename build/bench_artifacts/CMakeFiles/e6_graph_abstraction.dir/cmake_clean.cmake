file(REMOVE_RECURSE
  "../bench/e6_graph_abstraction"
  "../bench/e6_graph_abstraction.pdb"
  "CMakeFiles/e6_graph_abstraction.dir/e6_graph_abstraction.cc.o"
  "CMakeFiles/e6_graph_abstraction.dir/e6_graph_abstraction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_graph_abstraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
