# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_term_test[1]_include.cmake")
include("/root/repo/build/tests/rdf_store_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/hier_test[1]_include.cmake")
include("/root/repo/build/tests/cube_test[1]_include.cmake")
include("/root/repo/build/tests/viz_test[1]_include.cmake")
include("/root/repo/build/tests/rec_test[1]_include.cmake")
include("/root/repo/build/tests/explore_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/turtle_test[1]_include.cmake")
include("/root/repo/build/tests/explore2_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/onto_test[1]_include.cmake")
include("/root/repo/build/tests/sparql_property_test[1]_include.cmake")
include("/root/repo/build/tests/nanocube_test[1]_include.cmake")
