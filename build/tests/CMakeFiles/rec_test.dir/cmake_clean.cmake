file(REMOVE_RECURSE
  "CMakeFiles/rec_test.dir/rec_test.cc.o"
  "CMakeFiles/rec_test.dir/rec_test.cc.o.d"
  "rec_test"
  "rec_test.pdb"
  "rec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
