# Empty dependencies file for onto_test.
# This may be replaced when dependencies are built.
