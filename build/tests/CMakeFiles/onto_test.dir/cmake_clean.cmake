file(REMOVE_RECURSE
  "CMakeFiles/onto_test.dir/onto_test.cc.o"
  "CMakeFiles/onto_test.dir/onto_test.cc.o.d"
  "onto_test"
  "onto_test.pdb"
  "onto_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onto_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
