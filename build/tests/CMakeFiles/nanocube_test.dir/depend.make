# Empty dependencies file for nanocube_test.
# This may be replaced when dependencies are built.
