file(REMOVE_RECURSE
  "CMakeFiles/nanocube_test.dir/nanocube_test.cc.o"
  "CMakeFiles/nanocube_test.dir/nanocube_test.cc.o.d"
  "nanocube_test"
  "nanocube_test.pdb"
  "nanocube_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nanocube_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
