file(REMOVE_RECURSE
  "CMakeFiles/explore2_test.dir/explore2_test.cc.o"
  "CMakeFiles/explore2_test.dir/explore2_test.cc.o.d"
  "explore2_test"
  "explore2_test.pdb"
  "explore2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
