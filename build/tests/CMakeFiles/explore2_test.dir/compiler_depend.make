# Empty compiler generated dependencies file for explore2_test.
# This may be replaced when dependencies are built.
