# Empty dependencies file for rdf_store_test.
# This may be replaced when dependencies are built.
