file(REMOVE_RECURSE
  "CMakeFiles/rdf_store_test.dir/rdf_store_test.cc.o"
  "CMakeFiles/rdf_store_test.dir/rdf_store_test.cc.o.d"
  "rdf_store_test"
  "rdf_store_test.pdb"
  "rdf_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rdf_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
