# Empty compiler generated dependencies file for lodviz_core.
# This may be replaced when dependencies are built.
