file(REMOVE_RECURSE
  "CMakeFiles/lodviz_core.dir/archetype.cc.o"
  "CMakeFiles/lodviz_core.dir/archetype.cc.o.d"
  "CMakeFiles/lodviz_core.dir/capabilities.cc.o"
  "CMakeFiles/lodviz_core.dir/capabilities.cc.o.d"
  "CMakeFiles/lodviz_core.dir/engine.cc.o"
  "CMakeFiles/lodviz_core.dir/engine.cc.o.d"
  "CMakeFiles/lodviz_core.dir/ldvm.cc.o"
  "CMakeFiles/lodviz_core.dir/ldvm.cc.o.d"
  "CMakeFiles/lodviz_core.dir/registry.cc.o"
  "CMakeFiles/lodviz_core.dir/registry.cc.o.d"
  "liblodviz_core.a"
  "liblodviz_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
