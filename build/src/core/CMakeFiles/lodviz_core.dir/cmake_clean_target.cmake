file(REMOVE_RECURSE
  "liblodviz_core.a"
)
