# Empty compiler generated dependencies file for lodviz_graph.
# This may be replaced when dependencies are built.
