
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/bundling.cc" "src/graph/CMakeFiles/lodviz_graph.dir/bundling.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/bundling.cc.o.d"
  "/root/repo/src/graph/clustering.cc" "src/graph/CMakeFiles/lodviz_graph.dir/clustering.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/clustering.cc.o.d"
  "/root/repo/src/graph/generators.cc" "src/graph/CMakeFiles/lodviz_graph.dir/generators.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/lodviz_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/layout.cc" "src/graph/CMakeFiles/lodviz_graph.dir/layout.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/layout.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/graph/CMakeFiles/lodviz_graph.dir/sampling.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/sampling.cc.o.d"
  "/root/repo/src/graph/supergraph.cc" "src/graph/CMakeFiles/lodviz_graph.dir/supergraph.cc.o" "gcc" "src/graph/CMakeFiles/lodviz_graph.dir/supergraph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lodviz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lodviz_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lodviz_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
