file(REMOVE_RECURSE
  "CMakeFiles/lodviz_graph.dir/bundling.cc.o"
  "CMakeFiles/lodviz_graph.dir/bundling.cc.o.d"
  "CMakeFiles/lodviz_graph.dir/clustering.cc.o"
  "CMakeFiles/lodviz_graph.dir/clustering.cc.o.d"
  "CMakeFiles/lodviz_graph.dir/generators.cc.o"
  "CMakeFiles/lodviz_graph.dir/generators.cc.o.d"
  "CMakeFiles/lodviz_graph.dir/graph.cc.o"
  "CMakeFiles/lodviz_graph.dir/graph.cc.o.d"
  "CMakeFiles/lodviz_graph.dir/layout.cc.o"
  "CMakeFiles/lodviz_graph.dir/layout.cc.o.d"
  "CMakeFiles/lodviz_graph.dir/sampling.cc.o"
  "CMakeFiles/lodviz_graph.dir/sampling.cc.o.d"
  "CMakeFiles/lodviz_graph.dir/supergraph.cc.o"
  "CMakeFiles/lodviz_graph.dir/supergraph.cc.o.d"
  "liblodviz_graph.a"
  "liblodviz_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
