file(REMOVE_RECURSE
  "liblodviz_graph.a"
)
