file(REMOVE_RECURSE
  "liblodviz_common.a"
)
