# Empty compiler generated dependencies file for lodviz_common.
# This may be replaced when dependencies are built.
