file(REMOVE_RECURSE
  "CMakeFiles/lodviz_common.dir/logging.cc.o"
  "CMakeFiles/lodviz_common.dir/logging.cc.o.d"
  "CMakeFiles/lodviz_common.dir/random.cc.o"
  "CMakeFiles/lodviz_common.dir/random.cc.o.d"
  "CMakeFiles/lodviz_common.dir/status.cc.o"
  "CMakeFiles/lodviz_common.dir/status.cc.o.d"
  "CMakeFiles/lodviz_common.dir/string_util.cc.o"
  "CMakeFiles/lodviz_common.dir/string_util.cc.o.d"
  "CMakeFiles/lodviz_common.dir/table_printer.cc.o"
  "CMakeFiles/lodviz_common.dir/table_printer.cc.o.d"
  "liblodviz_common.a"
  "liblodviz_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
