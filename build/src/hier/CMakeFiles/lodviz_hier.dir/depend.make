# Empty dependencies file for lodviz_hier.
# This may be replaced when dependencies are built.
