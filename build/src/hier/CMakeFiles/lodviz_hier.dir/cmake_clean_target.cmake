file(REMOVE_RECURSE
  "liblodviz_hier.a"
)
