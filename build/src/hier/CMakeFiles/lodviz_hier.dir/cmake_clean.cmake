file(REMOVE_RECURSE
  "CMakeFiles/lodviz_hier.dir/hetree.cc.o"
  "CMakeFiles/lodviz_hier.dir/hetree.cc.o.d"
  "liblodviz_hier.a"
  "liblodviz_hier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_hier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
