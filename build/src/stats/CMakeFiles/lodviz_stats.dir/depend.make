# Empty dependencies file for lodviz_stats.
# This may be replaced when dependencies are built.
