
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/lodviz_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/lodviz_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/profile.cc" "src/stats/CMakeFiles/lodviz_stats.dir/profile.cc.o" "gcc" "src/stats/CMakeFiles/lodviz_stats.dir/profile.cc.o.d"
  "/root/repo/src/stats/quantile.cc" "src/stats/CMakeFiles/lodviz_stats.dir/quantile.cc.o" "gcc" "src/stats/CMakeFiles/lodviz_stats.dir/quantile.cc.o.d"
  "/root/repo/src/stats/sketch.cc" "src/stats/CMakeFiles/lodviz_stats.dir/sketch.cc.o" "gcc" "src/stats/CMakeFiles/lodviz_stats.dir/sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lodviz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lodviz_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
