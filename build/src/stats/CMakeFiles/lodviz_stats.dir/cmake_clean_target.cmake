file(REMOVE_RECURSE
  "liblodviz_stats.a"
)
