file(REMOVE_RECURSE
  "CMakeFiles/lodviz_stats.dir/histogram.cc.o"
  "CMakeFiles/lodviz_stats.dir/histogram.cc.o.d"
  "CMakeFiles/lodviz_stats.dir/profile.cc.o"
  "CMakeFiles/lodviz_stats.dir/profile.cc.o.d"
  "CMakeFiles/lodviz_stats.dir/quantile.cc.o"
  "CMakeFiles/lodviz_stats.dir/quantile.cc.o.d"
  "CMakeFiles/lodviz_stats.dir/sketch.cc.o"
  "CMakeFiles/lodviz_stats.dir/sketch.cc.o.d"
  "liblodviz_stats.a"
  "liblodviz_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
