file(REMOVE_RECURSE
  "liblodviz_rec.a"
)
