file(REMOVE_RECURSE
  "CMakeFiles/lodviz_rec.dir/recommender.cc.o"
  "CMakeFiles/lodviz_rec.dir/recommender.cc.o.d"
  "liblodviz_rec.a"
  "liblodviz_rec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_rec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
