# Empty compiler generated dependencies file for lodviz_rec.
# This may be replaced when dependencies are built.
