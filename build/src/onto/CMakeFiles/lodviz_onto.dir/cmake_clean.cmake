file(REMOVE_RECURSE
  "CMakeFiles/lodviz_onto.dir/containment.cc.o"
  "CMakeFiles/lodviz_onto.dir/containment.cc.o.d"
  "CMakeFiles/lodviz_onto.dir/hierarchy.cc.o"
  "CMakeFiles/lodviz_onto.dir/hierarchy.cc.o.d"
  "liblodviz_onto.a"
  "liblodviz_onto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_onto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
