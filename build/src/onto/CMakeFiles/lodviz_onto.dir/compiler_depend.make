# Empty compiler generated dependencies file for lodviz_onto.
# This may be replaced when dependencies are built.
