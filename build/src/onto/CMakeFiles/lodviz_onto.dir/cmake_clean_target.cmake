file(REMOVE_RECURSE
  "liblodviz_onto.a"
)
