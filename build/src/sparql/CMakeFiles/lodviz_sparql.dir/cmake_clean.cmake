file(REMOVE_RECURSE
  "CMakeFiles/lodviz_sparql.dir/engine.cc.o"
  "CMakeFiles/lodviz_sparql.dir/engine.cc.o.d"
  "CMakeFiles/lodviz_sparql.dir/lexer.cc.o"
  "CMakeFiles/lodviz_sparql.dir/lexer.cc.o.d"
  "CMakeFiles/lodviz_sparql.dir/parser.cc.o"
  "CMakeFiles/lodviz_sparql.dir/parser.cc.o.d"
  "CMakeFiles/lodviz_sparql.dir/result_table.cc.o"
  "CMakeFiles/lodviz_sparql.dir/result_table.cc.o.d"
  "liblodviz_sparql.a"
  "liblodviz_sparql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_sparql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
