file(REMOVE_RECURSE
  "liblodviz_sparql.a"
)
