# Empty dependencies file for lodviz_sparql.
# This may be replaced when dependencies are built.
