file(REMOVE_RECURSE
  "CMakeFiles/lodviz_storage.dir/btree.cc.o"
  "CMakeFiles/lodviz_storage.dir/btree.cc.o.d"
  "CMakeFiles/lodviz_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/lodviz_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/lodviz_storage.dir/cracking.cc.o"
  "CMakeFiles/lodviz_storage.dir/cracking.cc.o.d"
  "CMakeFiles/lodviz_storage.dir/disk_triple_store.cc.o"
  "CMakeFiles/lodviz_storage.dir/disk_triple_store.cc.o.d"
  "CMakeFiles/lodviz_storage.dir/page_file.cc.o"
  "CMakeFiles/lodviz_storage.dir/page_file.cc.o.d"
  "liblodviz_storage.a"
  "liblodviz_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
