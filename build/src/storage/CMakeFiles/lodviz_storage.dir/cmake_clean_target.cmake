file(REMOVE_RECURSE
  "liblodviz_storage.a"
)
