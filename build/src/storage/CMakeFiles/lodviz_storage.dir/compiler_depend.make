# Empty compiler generated dependencies file for lodviz_storage.
# This may be replaced when dependencies are built.
