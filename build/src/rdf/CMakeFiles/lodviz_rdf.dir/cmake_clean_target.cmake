file(REMOVE_RECURSE
  "liblodviz_rdf.a"
)
