
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rdf/dictionary.cc" "src/rdf/CMakeFiles/lodviz_rdf.dir/dictionary.cc.o" "gcc" "src/rdf/CMakeFiles/lodviz_rdf.dir/dictionary.cc.o.d"
  "/root/repo/src/rdf/ntriples.cc" "src/rdf/CMakeFiles/lodviz_rdf.dir/ntriples.cc.o" "gcc" "src/rdf/CMakeFiles/lodviz_rdf.dir/ntriples.cc.o.d"
  "/root/repo/src/rdf/streaming.cc" "src/rdf/CMakeFiles/lodviz_rdf.dir/streaming.cc.o" "gcc" "src/rdf/CMakeFiles/lodviz_rdf.dir/streaming.cc.o.d"
  "/root/repo/src/rdf/term.cc" "src/rdf/CMakeFiles/lodviz_rdf.dir/term.cc.o" "gcc" "src/rdf/CMakeFiles/lodviz_rdf.dir/term.cc.o.d"
  "/root/repo/src/rdf/triple_store.cc" "src/rdf/CMakeFiles/lodviz_rdf.dir/triple_store.cc.o" "gcc" "src/rdf/CMakeFiles/lodviz_rdf.dir/triple_store.cc.o.d"
  "/root/repo/src/rdf/turtle.cc" "src/rdf/CMakeFiles/lodviz_rdf.dir/turtle.cc.o" "gcc" "src/rdf/CMakeFiles/lodviz_rdf.dir/turtle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lodviz_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
