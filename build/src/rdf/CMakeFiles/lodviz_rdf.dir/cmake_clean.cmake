file(REMOVE_RECURSE
  "CMakeFiles/lodviz_rdf.dir/dictionary.cc.o"
  "CMakeFiles/lodviz_rdf.dir/dictionary.cc.o.d"
  "CMakeFiles/lodviz_rdf.dir/ntriples.cc.o"
  "CMakeFiles/lodviz_rdf.dir/ntriples.cc.o.d"
  "CMakeFiles/lodviz_rdf.dir/streaming.cc.o"
  "CMakeFiles/lodviz_rdf.dir/streaming.cc.o.d"
  "CMakeFiles/lodviz_rdf.dir/term.cc.o"
  "CMakeFiles/lodviz_rdf.dir/term.cc.o.d"
  "CMakeFiles/lodviz_rdf.dir/triple_store.cc.o"
  "CMakeFiles/lodviz_rdf.dir/triple_store.cc.o.d"
  "CMakeFiles/lodviz_rdf.dir/turtle.cc.o"
  "CMakeFiles/lodviz_rdf.dir/turtle.cc.o.d"
  "liblodviz_rdf.a"
  "liblodviz_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
