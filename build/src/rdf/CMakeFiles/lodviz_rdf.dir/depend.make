# Empty dependencies file for lodviz_rdf.
# This may be replaced when dependencies are built.
