file(REMOVE_RECURSE
  "CMakeFiles/lodviz_viz.dir/canvas.cc.o"
  "CMakeFiles/lodviz_viz.dir/canvas.cc.o.d"
  "CMakeFiles/lodviz_viz.dir/m4.cc.o"
  "CMakeFiles/lodviz_viz.dir/m4.cc.o.d"
  "CMakeFiles/lodviz_viz.dir/renderers.cc.o"
  "CMakeFiles/lodviz_viz.dir/renderers.cc.o.d"
  "CMakeFiles/lodviz_viz.dir/svg.cc.o"
  "CMakeFiles/lodviz_viz.dir/svg.cc.o.d"
  "CMakeFiles/lodviz_viz.dir/types.cc.o"
  "CMakeFiles/lodviz_viz.dir/types.cc.o.d"
  "liblodviz_viz.a"
  "liblodviz_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
