# Empty dependencies file for lodviz_viz.
# This may be replaced when dependencies are built.
