file(REMOVE_RECURSE
  "liblodviz_viz.a"
)
