
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/canvas.cc" "src/viz/CMakeFiles/lodviz_viz.dir/canvas.cc.o" "gcc" "src/viz/CMakeFiles/lodviz_viz.dir/canvas.cc.o.d"
  "/root/repo/src/viz/m4.cc" "src/viz/CMakeFiles/lodviz_viz.dir/m4.cc.o" "gcc" "src/viz/CMakeFiles/lodviz_viz.dir/m4.cc.o.d"
  "/root/repo/src/viz/renderers.cc" "src/viz/CMakeFiles/lodviz_viz.dir/renderers.cc.o" "gcc" "src/viz/CMakeFiles/lodviz_viz.dir/renderers.cc.o.d"
  "/root/repo/src/viz/svg.cc" "src/viz/CMakeFiles/lodviz_viz.dir/svg.cc.o" "gcc" "src/viz/CMakeFiles/lodviz_viz.dir/svg.cc.o.d"
  "/root/repo/src/viz/types.cc" "src/viz/CMakeFiles/lodviz_viz.dir/types.cc.o" "gcc" "src/viz/CMakeFiles/lodviz_viz.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lodviz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lodviz_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/lodviz_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/hier/CMakeFiles/lodviz_hier.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lodviz_rdf.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
