file(REMOVE_RECURSE
  "CMakeFiles/lodviz_explore.dir/browser.cc.o"
  "CMakeFiles/lodviz_explore.dir/browser.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/explain.cc.o"
  "CMakeFiles/lodviz_explore.dir/explain.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/facets.cc.o"
  "CMakeFiles/lodviz_explore.dir/facets.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/interest.cc.o"
  "CMakeFiles/lodviz_explore.dir/interest.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/keyword.cc.o"
  "CMakeFiles/lodviz_explore.dir/keyword.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/prefetch.cc.o"
  "CMakeFiles/lodviz_explore.dir/prefetch.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/progressive.cc.o"
  "CMakeFiles/lodviz_explore.dir/progressive.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/session.cc.o"
  "CMakeFiles/lodviz_explore.dir/session.cc.o.d"
  "CMakeFiles/lodviz_explore.dir/summary.cc.o"
  "CMakeFiles/lodviz_explore.dir/summary.cc.o.d"
  "liblodviz_explore.a"
  "liblodviz_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
