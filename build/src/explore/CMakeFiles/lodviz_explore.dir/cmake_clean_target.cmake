file(REMOVE_RECURSE
  "liblodviz_explore.a"
)
