# Empty dependencies file for lodviz_explore.
# This may be replaced when dependencies are built.
