
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/explore/browser.cc" "src/explore/CMakeFiles/lodviz_explore.dir/browser.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/browser.cc.o.d"
  "/root/repo/src/explore/explain.cc" "src/explore/CMakeFiles/lodviz_explore.dir/explain.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/explain.cc.o.d"
  "/root/repo/src/explore/facets.cc" "src/explore/CMakeFiles/lodviz_explore.dir/facets.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/facets.cc.o.d"
  "/root/repo/src/explore/interest.cc" "src/explore/CMakeFiles/lodviz_explore.dir/interest.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/interest.cc.o.d"
  "/root/repo/src/explore/keyword.cc" "src/explore/CMakeFiles/lodviz_explore.dir/keyword.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/keyword.cc.o.d"
  "/root/repo/src/explore/prefetch.cc" "src/explore/CMakeFiles/lodviz_explore.dir/prefetch.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/prefetch.cc.o.d"
  "/root/repo/src/explore/progressive.cc" "src/explore/CMakeFiles/lodviz_explore.dir/progressive.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/progressive.cc.o.d"
  "/root/repo/src/explore/session.cc" "src/explore/CMakeFiles/lodviz_explore.dir/session.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/session.cc.o.d"
  "/root/repo/src/explore/summary.cc" "src/explore/CMakeFiles/lodviz_explore.dir/summary.cc.o" "gcc" "src/explore/CMakeFiles/lodviz_explore.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/lodviz_common.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/lodviz_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/lodviz_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/lodviz_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
