# Empty dependencies file for lodviz_cube.
# This may be replaced when dependencies are built.
