file(REMOVE_RECURSE
  "CMakeFiles/lodviz_cube.dir/data_cube.cc.o"
  "CMakeFiles/lodviz_cube.dir/data_cube.cc.o.d"
  "liblodviz_cube.a"
  "liblodviz_cube.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
