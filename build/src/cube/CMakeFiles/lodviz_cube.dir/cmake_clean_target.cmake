file(REMOVE_RECURSE
  "liblodviz_cube.a"
)
