file(REMOVE_RECURSE
  "liblodviz_workload.a"
)
