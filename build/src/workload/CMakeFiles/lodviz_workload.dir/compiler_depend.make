# Empty compiler generated dependencies file for lodviz_workload.
# This may be replaced when dependencies are built.
