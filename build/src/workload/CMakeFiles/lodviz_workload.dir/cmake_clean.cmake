file(REMOVE_RECURSE
  "CMakeFiles/lodviz_workload.dir/scenario.cc.o"
  "CMakeFiles/lodviz_workload.dir/scenario.cc.o.d"
  "CMakeFiles/lodviz_workload.dir/synthetic_lod.cc.o"
  "CMakeFiles/lodviz_workload.dir/synthetic_lod.cc.o.d"
  "liblodviz_workload.a"
  "liblodviz_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
