file(REMOVE_RECURSE
  "liblodviz_geo.a"
)
