# Empty dependencies file for lodviz_geo.
# This may be replaced when dependencies are built.
