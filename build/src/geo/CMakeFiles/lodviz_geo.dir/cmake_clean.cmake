file(REMOVE_RECURSE
  "CMakeFiles/lodviz_geo.dir/nanocube.cc.o"
  "CMakeFiles/lodviz_geo.dir/nanocube.cc.o.d"
  "CMakeFiles/lodviz_geo.dir/rtree.cc.o"
  "CMakeFiles/lodviz_geo.dir/rtree.cc.o.d"
  "CMakeFiles/lodviz_geo.dir/tiles.cc.o"
  "CMakeFiles/lodviz_geo.dir/tiles.cc.o.d"
  "liblodviz_geo.a"
  "liblodviz_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lodviz_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
