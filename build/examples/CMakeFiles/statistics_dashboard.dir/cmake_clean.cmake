file(REMOVE_RECURSE
  "CMakeFiles/statistics_dashboard.dir/statistics_dashboard.cpp.o"
  "CMakeFiles/statistics_dashboard.dir/statistics_dashboard.cpp.o.d"
  "statistics_dashboard"
  "statistics_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statistics_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
