# Empty dependencies file for statistics_dashboard.
# This may be replaced when dependencies are built.
