# Empty compiler generated dependencies file for spatiotemporal_explorer.
# This may be replaced when dependencies are built.
