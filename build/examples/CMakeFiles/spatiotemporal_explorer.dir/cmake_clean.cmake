file(REMOVE_RECURSE
  "CMakeFiles/spatiotemporal_explorer.dir/spatiotemporal_explorer.cpp.o"
  "CMakeFiles/spatiotemporal_explorer.dir/spatiotemporal_explorer.cpp.o.d"
  "spatiotemporal_explorer"
  "spatiotemporal_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spatiotemporal_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
