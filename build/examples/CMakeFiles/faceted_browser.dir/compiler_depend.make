# Empty compiler generated dependencies file for faceted_browser.
# This may be replaced when dependencies are built.
