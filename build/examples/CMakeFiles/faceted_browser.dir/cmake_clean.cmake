file(REMOVE_RECURSE
  "CMakeFiles/faceted_browser.dir/faceted_browser.cpp.o"
  "CMakeFiles/faceted_browser.dir/faceted_browser.cpp.o.d"
  "faceted_browser"
  "faceted_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faceted_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
