file(REMOVE_RECURSE
  "CMakeFiles/progressive_analytics.dir/progressive_analytics.cpp.o"
  "CMakeFiles/progressive_analytics.dir/progressive_analytics.cpp.o.d"
  "progressive_analytics"
  "progressive_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/progressive_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
