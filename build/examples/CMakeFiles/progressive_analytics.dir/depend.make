# Empty dependencies file for progressive_analytics.
# This may be replaced when dependencies are built.
