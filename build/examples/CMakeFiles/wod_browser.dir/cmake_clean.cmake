file(REMOVE_RECURSE
  "CMakeFiles/wod_browser.dir/wod_browser.cpp.o"
  "CMakeFiles/wod_browser.dir/wod_browser.cpp.o.d"
  "wod_browser"
  "wod_browser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wod_browser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
