# Empty compiler generated dependencies file for wod_browser.
# This may be replaced when dependencies are built.
