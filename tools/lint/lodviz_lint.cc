// lodviz_lint v2: standalone project-invariant checker for the lodviz tree.
//
// A deliberately dependency-free (no libclang) static analyzer built on a
// comment/string-literal-aware lexer and a two-pass file model:
//
//   pass 1  lex every file into a token stream and build a structural model
//           (namespace / class / nested-class tracking via a classified
//           brace stack, per-class member declarations with their
//           thread-safety annotations, include directives, LINT-ALLOW
//           waivers);
//   pass 2  run per-file rules over each model, then the cross-file rules
//           (the lock-acquisition graph) over all models together.
//
// Rules (ids used in output and in LINT-EXPECT fixture comments):
//   header-guard             #ifndef/#define guard must be LODVIZ_<PATH>_H_
//   include-first            a .cc file must include its own header first
//   using-namespace-header   no `using namespace` at any scope in headers
//   naked-new                no naked new/delete in src/ (smart ptrs only)
//   io-print                 no std::cout / printf-family in src/ outside
//                            the table printer and logging sinks
//   unchecked-result         no ValueOrDie()/operator* /operator-> on a
//                            Result without a lexically preceding ok() or
//                            LODVIZ_CHECK_OK in an enclosing scope
//   no-raw-clock             no direct std::chrono clock `::now()` calls
//                            outside src/common/ and src/obs/; go through
//                            common/stopwatch.h so time is observable and
//                            mockable in one place
//   exec.no_raw_thread       raw std::thread construction belongs in
//                            src/exec/ only; everything else parallelizes
//                            through exec::ParallelFor / exec::ThreadPool
//   sparql.no_concrete_store no rdf::TripleStore / storage::DiskTripleStore
//                            in src/sparql/; the query layer sees only the
//                            abstract rdf::TripleSource contract so every
//                            backend runs the same plans and operators
//   sparql.no_row_loop_in_batch_ops
//                            inside src/sparql/ functions whose name
//                            contains "Batch", a per-row virtual
//                            TripleSource::Scan call may not appear inside
//                            a loop (or per-row lambda) — batch operators
//                            extend whole runs; an intentional per-row
//                            probe (the runtime-unbound NLJ fallback)
//                            carries a LINT-ALLOW rationale
//   concurrency.guarded_by   every mutable data member of a class that owns
//                            a Mutex/std::mutex must carry LODVIZ_GUARDED_BY
//                            / LODVIZ_PT_GUARDED_BY, be of an internally
//                            thread-safe type (std::atomic, obs::Counter/
//                            Gauge/Histogram, CondVar), be const, or carry
//                            an explicit `// LINT-ALLOW(concurrency.
//                            guarded_by): rationale` waiver
//   concurrency.lock_order   the static lock-acquisition graph declared by
//                            LODVIZ_ACQUIRED_BEFORE / LODVIZ_ACQUIRED_AFTER
//                            annotations on mutex members must be acyclic
//   arch.layering            src/ includes must follow the layering DAG
//                            common -> obs -> exec -> rdf -> storage ->
//                            sparql -> domain tiers (geo/stats/onto/cube/
//                            hier -> graph/explore -> viz -> rec/workload)
//                            -> core; no module may include a module at or
//                            above its own layer
//
// Waivers: `// LINT-ALLOW(<rule>): <rationale>` on the offending line (or
// the line directly above it) suppresses that one rule there. The rationale
// is mandatory by convention: a waiver documents a contract (e.g. "written
// only during single-threaded construction"), not an opt-out.
//
// Usage:
//   lodviz_lint --root <repo-root> [dirs...]     (default: src bench tests tools)
//   lodviz_lint --expect --root <fixture-dir>    self-test mode: violations
//       must exactly match the `// LINT-EXPECT: <rule>` comments in the
//       fixture files (all rules applied regardless of path scoping).
//   lodviz_lint --self-test                      run the built-in lexer and
//       structure-model unit tests (no filesystem access).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // path relative to the scan root
  int line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

// ---------------------------------------------------------------------------
// Lexer: source preparation
// ---------------------------------------------------------------------------

/// True for characters that may appear in an identifier (or number) token.
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// If `source[i]` starts a string/char literal prefix (u8, u, U, L —
/// optionally followed by R for raw strings), returns the prefix length
/// (0 for an unprefixed literal position). Requires that the character
/// before `i` is not an identifier character, so `value` or `myU"x"`-style
/// identifiers never match.
size_t LiteralPrefixLen(const std::string& source, size_t i) {
  const size_t n = source.size();
  if (i > 0 && IsIdentChar(source[i - 1])) return 0;
  size_t p = i;
  if (p < n && source[p] == 'u' && p + 1 < n && source[p + 1] == '8') {
    p += 2;
  } else if (p < n &&
             (source[p] == 'u' || source[p] == 'U' || source[p] == 'L')) {
    p += 1;
  }
  if (p < n && source[p] == 'R' && p + 1 < n && source[p + 1] == '"') {
    return p + 1 - i;  // prefix up to and including R
  }
  if (p > i && p < n && (source[p] == '"' || source[p] == '\'')) {
    return p - i;
  }
  return 0;
}

/// Returns `source` with comments and string/char literal contents replaced
/// by spaces (newlines kept), so token scans cannot match inside them.
///
/// Handles //-comments (including backslash-newline splices, which extend
/// the comment onto the next physical line), /* */ comments, "..." and
/// '...' with escapes, encoding prefixes (u8"x", L'c', ...), raw strings
/// R"delim(...)delim" with any prefix, and C++14 digit separators
/// (1'000'000 — the quotes are separators, not char-literal delimiters).
std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  size_t i = 0;
  const size_t n = source.size();
  auto blank = [&](size_t from, size_t to) {
    for (size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    char c = source[i];
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      // A backslash immediately before the newline splices the next line
      // into this comment (translation phase 2 runs before comment
      // removal), so keep extending past spliced newlines.
      size_t end = i;
      for (;;) {
        end = source.find('\n', end);
        if (end == std::string::npos) {
          end = n;
          break;
        }
        size_t back = end;
        while (back > i && source[back - 1] == '\r') --back;
        if (back > i && source[back - 1] == '\\') {
          ++end;  // spliced: the comment continues on the next line
          continue;
        }
        break;
      }
      blank(i, end);
      i = end;
      continue;
    }
    if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t end = source.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      blank(i, end);
      i = end;
      continue;
    }
    const size_t prefix = LiteralPrefixLen(source, i);
    const size_t q = i + prefix;  // position of the quote (if any)
    if (q < n && source[q] == '"' && q > i && source[q - 1] == 'R') {
      // Raw string: R"delim( ... )delim" (with optional encoding prefix).
      size_t paren = source.find('(', q + 1);
      if (paren == std::string::npos) {
        ++i;
        continue;
      }
      std::string delim;
      delim.reserve(paren - q + 1);
      delim.push_back(')');
      delim.append(source, q + 1, paren - q - 1);
      delim.push_back('"');
      size_t end = source.find(delim, paren + 1);
      end = (end == std::string::npos) ? n : end + delim.size();
      blank(i, end);
      i = end;
      continue;
    }
    if (q < n && (source[q] == '"' || source[q] == '\'') &&
        (prefix > 0 || q == i)) {
      const char quote = source[q];
      if (quote == '\'' && q == i && i > 0 && IsIdentChar(source[i - 1])) {
        // Digit separator inside a numeric literal (1'000'000): part of
        // the number, not a char literal delimiter.
        ++i;
        continue;
      }
      size_t j = q + 1;
      while (j < n && source[j] != quote) {
        if (source[j] == '\\') ++j;
        ++j;
      }
      if (j < n) ++j;
      blank(q + 1, j);  // keep the quotes so tokenization stays sane
      blank(i, q);      // blank the encoding prefix too
      i = j;
      continue;
    }
    ++i;
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Tokenizes stripped source into identifiers and single punctuation chars
/// (with `::` and `->` kept as single tokens).
std::vector<Token> Tokenize(const std::string& stripped) {
  std::vector<Token> toks;
  int line = 1;
  size_t i = 0;
  const size_t n = stripped.size();
  while (i < n) {
    char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (IsIdentChar(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(stripped[j])) ++j;
      bool ident = !std::isdigit(static_cast<unsigned char>(c));
      toks.push_back({stripped.substr(i, j - i), line, ident});
      i = j;
    } else if (c == '-' && i + 1 < n && stripped[i + 1] == '>') {
      toks.push_back({"->", line, false});
      i += 2;
    } else if (c == ':' && i + 1 < n && stripped[i + 1] == ':') {
      toks.push_back({"::", line, false});
      i += 2;
    } else {
      toks.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Structural file model (pass 1)
// ---------------------------------------------------------------------------

/// One data- or function-member declaration inside a class body.
struct MemberDecl {
  std::string name;
  int line = 0;        // line of the member name
  int first_line = 0;  // first and last physical line of the declaration
  int last_line = 0;
  bool is_function = false;
  bool is_static = false;
  bool is_const = false;
  bool is_lockable = false;         // Mutex / std::mutex / shared_mutex ...
  bool is_threadsafe_type = false;  // std::atomic, obs::Counter, CondVar ...
  bool has_guard_annotation = false;  // [LODVIZ_][PT_]GUARDED_BY present
  /// Lock-order edges declared on this (mutex) member; targets are the raw
  /// annotation arguments, resolved against the owning class later.
  std::vector<std::pair<std::string, int>> acquired_before;  // (target, line)
  std::vector<std::pair<std::string, int>> acquired_after;
};

/// A class/struct definition with its qualified name ("storage::BufferPool"
/// or "storage::BufferPool::Shard"; the outer `lodviz::` and anonymous
/// namespaces are dropped).
struct ClassInfo {
  std::string qname;
  int line = 0;
  std::vector<MemberDecl> members;

  bool OwnsLock() const {
    for (const MemberDecl& m : members) {
      if (m.is_lockable && !m.is_function) return true;
    }
    return false;
  }
};

struct IncludeDirective {
  std::string path;  // as written between the quotes / angle brackets
  int line = 0;
  bool system = false;  // #include <...> (exempt from layering)
};

/// Everything pass 1 extracts from one file; pass 2 rules read only this.
struct FileModel {
  fs::path abs;
  std::string rel;
  std::string source;
  std::string stripped;
  std::vector<std::string> raw_lines;
  std::vector<std::string> stripped_lines;
  std::vector<Token> tokens;
  std::vector<ClassInfo> classes;
  std::vector<IncludeDirective> includes;
  /// line -> rules waived on that line and the next (// LINT-ALLOW(rule)).
  std::map<int, std::set<std::string>> allows;
};

/// Thread-safety annotation macros recognized on member declarations. The
/// trailing `(args)` group is consumed so annotation arguments never look
/// like function-parameter lists or member names.
const std::set<std::string>& AnnotationIdents() {
  static const std::set<std::string> kSet = {
      "LODVIZ_GUARDED_BY",      "GUARDED_BY",
      "LODVIZ_PT_GUARDED_BY",   "PT_GUARDED_BY",
      "LODVIZ_ACQUIRED_BEFORE", "ACQUIRED_BEFORE",
      "LODVIZ_ACQUIRED_AFTER",  "ACQUIRED_AFTER",
      "LODVIZ_REQUIRES",        "LODVIZ_EXCLUDES",
      "LODVIZ_ACQUIRE",         "LODVIZ_RELEASE",
      "LODVIZ_CAPABILITY",      "alignas",
  };
  return kSet;
}

bool IsLockableTypeToken(const std::string& t) {
  return t == "Mutex" || t == "mutex" || t == "shared_mutex" ||
         t == "recursive_mutex" || t == "timed_mutex" ||
         t == "recursive_timed_mutex";
}

/// Types that are internally synchronized and therefore exempt from
/// concurrency.guarded_by (lock-free atomics and the obs metric primitives
/// built on them; condition variables carry their own safety contract).
bool IsThreadSafeTypeToken(const std::string& t) {
  return t == "atomic" || t == "atomic_flag" || t == "once_flag" ||
         t == "condition_variable" || t == "condition_variable_any" ||
         t == "CondVar" || t == "Counter" || t == "Gauge" || t == "Histogram";
}

/// Joins annotation-argument tokens back into one target name per
/// (top-level) comma: {obs, ::, MetricRegistry, ::, mu_} ->
/// "obs::MetricRegistry::mu_".
std::vector<std::string> JoinAnnotationArgs(const std::vector<Token>& toks,
                                            size_t begin, size_t end) {
  std::vector<std::string> args;
  std::string cur;
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = toks[i].text;
    if (t == "(") ++depth;
    if (t == ")") --depth;
    if (t == "," && depth == 0) {
      if (!cur.empty()) args.push_back(cur);
      cur.clear();
      continue;
    }
    cur += t;
  }
  if (!cur.empty()) args.push_back(cur);
  return args;
}

/// Classifies and records one member declaration (the token range
/// accumulated between `;`-boundaries at class-body depth).
void FinalizeMember(const std::vector<Token>& decl, ClassInfo* cls) {
  if (decl.empty()) return;
  for (const Token& t : decl) {
    if (t.text == "friend" || t.text == "using" || t.text == "typedef" ||
        t.text == "static_assert" || t.text == "operator" ||
        t.text == "template" || t.text == "enum") {
      return;  // not a data member
    }
  }
  MemberDecl m;
  m.first_line = decl.front().line;
  m.last_line = decl.back().line;
  int angle = 0;
  bool saw_assign = false;
  size_t name_index = decl.size();
  size_t type_end = decl.size();  // index where the member name was found
  for (size_t i = 0; i < decl.size(); ++i) {
    const Token& t = decl[i];
    if (t.ident && AnnotationIdents().count(t.text) && i + 1 < decl.size() &&
        decl[i + 1].text == "(") {
      // Consume the annotation and its argument group.
      const bool guard = t.text == "LODVIZ_GUARDED_BY" ||
                         t.text == "GUARDED_BY" ||
                         t.text == "LODVIZ_PT_GUARDED_BY" ||
                         t.text == "PT_GUARDED_BY";
      const bool before = t.text == "LODVIZ_ACQUIRED_BEFORE" ||
                          t.text == "ACQUIRED_BEFORE";
      const bool after =
          t.text == "LODVIZ_ACQUIRED_AFTER" || t.text == "ACQUIRED_AFTER";
      if (guard) m.has_guard_annotation = true;
      int depth = 0;
      size_t j = i + 1;
      for (; j < decl.size(); ++j) {
        if (decl[j].text == "(") ++depth;
        if (decl[j].text == ")" && --depth == 0) break;
      }
      if (before || after) {
        for (const std::string& arg :
             JoinAnnotationArgs(decl, i + 2, std::min(j, decl.size()))) {
          if (before) m.acquired_before.emplace_back(arg, t.line);
          if (after) m.acquired_after.emplace_back(arg, t.line);
        }
      }
      i = j;
      continue;
    }
    if (t.text == "[" && i + 1 < decl.size() && decl[i + 1].text == "[") {
      // [[nodiscard]]-style attribute: skip to the closing ]].
      size_t j = i + 2;
      while (j + 1 < decl.size() &&
             !(decl[j].text == "]" && decl[j + 1].text == "]")) {
        ++j;
      }
      i = j + 1;
      continue;
    }
    if (t.text == "<") {
      ++angle;
      continue;
    }
    if (t.text == ">") {
      if (angle > 0) --angle;
      continue;
    }
    if (angle > 0) continue;  // inside template arguments
    if (t.text == "=") {
      saw_assign = true;
      continue;
    }
    if (t.text == "(" && !saw_assign) {
      // A top-level parameter list before any initializer: this is a
      // function (method, constructor, or destructor) declaration.
      m.is_function = true;
      int depth = 0;
      size_t j = i;
      for (; j < decl.size(); ++j) {
        if (decl[j].text == "(") ++depth;
        if (decl[j].text == ")" && --depth == 0) break;
      }
      i = j;
      continue;
    }
    if (t.text == "[" && !saw_assign) {
      // Array extent: the member name was the identifier before it.
      size_t j = i;
      int depth = 0;
      for (; j < decl.size(); ++j) {
        if (decl[j].text == "[") ++depth;
        if (decl[j].text == "]" && --depth == 0) break;
      }
      i = j;
      continue;
    }
    if (saw_assign) continue;  // initializer expression: not the name
    if (t.text == "static") m.is_static = true;
    if (t.text == "constexpr") m.is_static = true;  // implies static storage
    if (t.text == "const") m.is_const = true;
    if (t.ident && t.text != "static" && t.text != "constexpr" &&
        t.text != "const" && t.text != "mutable" && t.text != "inline" &&
        t.text != "volatile" && t.text != "struct" && t.text != "class") {
      name_index = i;
      type_end = i;
    }
  }
  if (m.is_function || name_index >= decl.size()) {
    if (m.is_function) {
      m.name = "(function)";
      cls->members.push_back(std::move(m));
    }
    return;
  }
  m.name = decl[name_index].text;
  m.line = decl[name_index].line;
  // The type is every depth-0 identifier before the name.
  int angle2 = 0;
  for (size_t i = 0; i < type_end; ++i) {
    const Token& t = decl[i];
    if (t.text == "<") {
      ++angle2;
      continue;
    }
    if (t.text == ">") {
      if (angle2 > 0) --angle2;
      continue;
    }
    if (angle2 > 0 || !t.ident) continue;
    if (IsLockableTypeToken(t.text)) m.is_lockable = true;
    if (IsThreadSafeTypeToken(t.text)) m.is_threadsafe_type = true;
  }
  cls->members.push_back(std::move(m));
}

/// Builds the namespace/class structure model from the token stream.
/// Preprocessor lines (and their backslash continuations) are excluded so
/// unbalanced braces inside macro definitions cannot corrupt the scope
/// stack.
void BuildStructure(FileModel* model) {
  // Mark preprocessor lines (1-based), including continuation lines.
  std::vector<bool> is_pp(model->stripped_lines.size() + 2, false);
  bool continuing = false;
  for (size_t i = 0; i < model->stripped_lines.size(); ++i) {
    const std::string& line = model->stripped_lines[i];
    bool pp = continuing;
    if (!pp) {
      size_t first = line.find_first_not_of(" \t");
      pp = first != std::string::npos && line[first] == '#';
    }
    is_pp[i + 1] = pp;
    size_t last = line.find_last_not_of(" \t\r");
    continuing = pp && last != std::string::npos && line[last] == '\\';
  }

  enum class ScopeKind { kNamespace, kClass, kEnum, kBlock };
  struct Scope {
    ScopeKind kind;
    std::string name;        // namespace or class segment ("" = anonymous)
    size_t class_index = 0;  // into model->classes, for kClass
    bool resume_decl = false;  // kBlock opened by a brace-initializer
  };
  std::vector<Scope> stack;
  std::vector<Token> decl;  // tokens of the declaration being accumulated

  auto qualified = [&](const std::string& leaf) {
    std::string q;
    for (const Scope& s : stack) {
      if ((s.kind == ScopeKind::kNamespace || s.kind == ScopeKind::kClass) &&
          !s.name.empty() && s.name != "lodviz") {
        q += s.name + "::";
      }
    }
    q += leaf;
    return q;
  };

  auto in_class = [&]() {
    return !stack.empty() && stack.back().kind == ScopeKind::kClass;
  };
  auto in_enum = [&]() {
    return !stack.empty() && stack.back().kind == ScopeKind::kEnum;
  };

  const std::vector<Token>& toks = model->tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.line < static_cast<int>(is_pp.size()) && is_pp[t.line]) continue;
    if (in_enum() && t.text != "}" && t.text != "{") continue;

    if (t.text == "{") {
      // Classify the scope this brace opens from the accumulated decl.
      bool is_namespace = false, is_class = false, is_enum_scope = false;
      bool has_paren = false, has_assign = false;
      std::string name;
      int angle = 0;
      for (size_t k = 0; k < decl.size(); ++k) {
        const Token& d = decl[k];
        if (d.text == "<") ++angle;
        if (d.text == ">" && angle > 0) --angle;
        if (angle > 0) continue;
        if (d.ident && AnnotationIdents().count(d.text) &&
            k + 1 < decl.size() && decl[k + 1].text == "(") {
          int depth = 0;
          while (k < decl.size()) {  // skip the annotation argument group
            if (decl[k].text == "(") ++depth;
            if (decl[k].text == ")" && --depth == 0) break;
            ++k;
          }
          continue;
        }
        if (d.text == "namespace") is_namespace = true;
        if (d.text == "enum") is_enum_scope = true;
        if ((d.text == "class" || d.text == "struct" || d.text == "union") &&
            !is_enum_scope) {
          is_class = true;
        }
        if (d.text == "=") has_assign = true;
        if (d.text == "(" && !has_assign) has_paren = true;
        if (d.ident && (is_namespace || is_class) && d.text != "namespace" &&
            d.text != "class" && d.text != "struct" && d.text != "union" &&
            d.text != "final" && d.text != "public" && d.text != "private" &&
            d.text != "protected" && d.text != "virtual" &&
            !AnnotationIdents().count(d.text)) {
          // Base-clause names come after the introducer ':'; stop at it.
          name = d.text;
        }
        if (d.text == ":" && (is_namespace || is_class)) break;
      }
      if (is_namespace) {
        stack.push_back({ScopeKind::kNamespace, name, 0, false});
        decl.clear();
      } else if (is_class && !has_paren) {
        ClassInfo cls;
        cls.qname = qualified(name.empty() ? "(anon)" : name);
        cls.line = t.line;
        model->classes.push_back(std::move(cls));
        stack.push_back(
            {ScopeKind::kClass, name, model->classes.size() - 1, false});
        decl.clear();
      } else if (is_enum_scope) {
        stack.push_back({ScopeKind::kEnum, name, 0, false});
        decl.clear();
      } else {
        // Function body, initializer list, or brace initializer. Inside a
        // class body, a brace with no preceding parameter list is a member
        // brace-initializer: keep the declaration alive across it.
        const bool initializer = in_class() && !has_paren;
        stack.push_back({ScopeKind::kBlock, "", 0, initializer});
        if (!initializer) {
          if (in_class()) {
            // (The just-pushed block hides the class; check the parent.)
          }
        }
      }
      continue;
    }
    if (t.text == "}") {
      if (stack.empty()) continue;
      Scope closed = stack.back();
      stack.pop_back();
      if (closed.kind == ScopeKind::kBlock && !closed.resume_decl) {
        // A function body (or similar) ended: the declaration is complete.
        if (in_class()) {
          FinalizeMember(decl, &model->classes[stack.back().class_index]);
        }
        decl.clear();
      }
      continue;
    }
    // Only accumulate declaration tokens at namespace/class level (or
    // top level); function bodies and enums are opaque.
    bool at_decl_level =
        stack.empty() || stack.back().kind == ScopeKind::kNamespace ||
        stack.back().kind == ScopeKind::kClass ||
        (stack.back().kind == ScopeKind::kBlock && stack.back().resume_decl);
    if (!at_decl_level) continue;
    if (t.text == ";") {
      if (in_class() ||
          (!stack.empty() && stack.back().kind == ScopeKind::kBlock &&
           stack.back().resume_decl)) {
        // Find the innermost class on the stack (a brace-initializer block
        // may sit on top of it).
        for (size_t s = stack.size(); s-- > 0;) {
          if (stack[s].kind == ScopeKind::kClass) {
            FinalizeMember(decl, &model->classes[stack[s].class_index]);
            break;
          }
          if (stack[s].kind != ScopeKind::kBlock || !stack[s].resume_decl) {
            break;
          }
        }
      }
      decl.clear();
      continue;
    }
    // Access specifiers reset the declaration accumulator.
    if (in_class() && t.ident &&
        (t.text == "public" || t.text == "private" || t.text == "protected") &&
        i + 1 < toks.size() && toks[i + 1].text == ":") {
      decl.clear();
      ++i;
      continue;
    }
    decl.push_back(t);
  }
}

/// Collects `#include "..."` directives: detection on the stripped view
/// (commented-out includes are invisible), path from the raw line (the path
/// itself lives inside a string literal, which stripping blanks).
void CollectIncludes(FileModel* model) {
  for (size_t i = 0; i < model->stripped_lines.size(); ++i) {
    if (model->stripped_lines[i].find("#include") == std::string::npos) {
      continue;
    }
    const std::string& raw =
        i < model->raw_lines.size() ? model->raw_lines[i] : std::string();
    size_t open = raw.find('"');
    if (open != std::string::npos) {
      size_t close = raw.find('"', open + 1);
      if (close == std::string::npos) continue;
      model->includes.push_back({raw.substr(open + 1, close - open - 1),
                                 static_cast<int>(i + 1), false});
      continue;
    }
    open = raw.find('<');
    if (open == std::string::npos) continue;
    size_t close = raw.find('>', open + 1);
    if (close == std::string::npos) continue;
    model->includes.push_back(
        {raw.substr(open + 1, close - open - 1), static_cast<int>(i + 1),
         true});
  }
}

/// Collects `// LINT-ALLOW(rule): rationale` waivers from the raw source.
void CollectAllows(FileModel* model) {
  for (size_t i = 0; i < model->raw_lines.size(); ++i) {
    const std::string& line = model->raw_lines[i];
    size_t pos = 0;
    while ((pos = line.find("LINT-ALLOW(", pos)) != std::string::npos) {
      size_t open = pos + 10;  // index of '('
      size_t close = line.find(')', open);
      if (close == std::string::npos) break;
      std::string rule = line.substr(open + 1, close - open - 1);
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!rule.empty()) {
        model->allows[static_cast<int>(i + 1)].insert(rule);
      }
      pos = close;
    }
  }
}

/// True if `rule` is waived for a violation on `line` (a LINT-ALLOW on the
/// same line or the line directly above).
bool IsAllowed(const FileModel& model, const std::string& rule, int line) {
  for (int l : {line, line - 1}) {
    auto it = model.allows.find(l);
    if (it != model.allows.end() && it->second.count(rule)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

/// src/common/result.h -> LODVIZ_COMMON_RESULT_H_ ; bench/x.h keeps `bench/`.
std::string ExpectedGuard(const std::string& rel) {
  std::string path = rel;
  if (path.rfind("src/", 0) == 0) path = path.substr(4);
  std::string guard = "LODVIZ_";
  for (char c : path) {
    guard += IsIdentChar(c) ? static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c)))
                            : '_';
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const FileModel& m, std::vector<Violation>* out) {
  const std::string want = ExpectedGuard(m.rel);
  for (size_t i = 0; i < m.stripped_lines.size(); ++i) {
    std::istringstream in(m.stripped_lines[i]);
    std::string directive, name;
    in >> directive >> name;
    if (directive == "#pragma" && name == "once") {
      out->push_back({m.rel, static_cast<int>(i + 1), "header-guard",
                      "use an include guard named " + want +
                          ", not #pragma once"});
      return;
    }
    if (directive != "#ifndef") continue;
    if (name != want) {
      out->push_back({m.rel, static_cast<int>(i + 1), "header-guard",
                      "guard is '" + name + "', expected '" + want + "'"});
    }
    return;
  }
  out->push_back({m.rel, 1, "header-guard", "missing include guard " + want});
}

void CheckIncludeFirst(const FileModel& m, std::vector<Violation>* out) {
  fs::path own_header = m.abs;
  own_header.replace_extension(".h");
  if (!fs::exists(own_header)) return;
  std::string want = m.rel.substr(0, m.rel.size() - 3) + ".h";
  if (want.rfind("src/", 0) == 0) want = want.substr(4);
  if (m.includes.empty()) return;
  if (m.includes.front().system || m.includes.front().path != want) {
    out->push_back({m.rel, m.includes.front().line, "include-first",
                    "first include must be \"" + want + "\""});
  }
}

void CheckUsingNamespace(const FileModel& m, std::vector<Violation>* out) {
  const std::vector<Token>& toks = m.tokens;
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "using" && toks[i + 1].text == "namespace") {
      out->push_back({m.rel, toks[i].line, "using-namespace-header",
                      "`using namespace` in a header pollutes every "
                      "includer's scope"});
    }
  }
}

void CheckNakedNewDelete(const FileModel& m, std::vector<Violation>* out) {
  const std::vector<Token>& toks = m.tokens;
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "new") {
      // `operator new` declarations are fine; expressions are not.
      if (i > 0 && toks[i - 1].text == "operator") continue;
      out->push_back({m.rel, toks[i].line, "naked-new",
                      "naked `new`; use std::make_unique/static storage"});
    } else if (t == "delete") {
      // `= delete` (deleted functions) and `operator delete` are fine.
      if (i > 0 &&
          (toks[i - 1].text == "=" || toks[i - 1].text == "operator")) {
        continue;
      }
      out->push_back({m.rel, toks[i].line, "naked-new",
                      "naked `delete`; ownership must be RAII-managed"});
    }
  }
}

bool IoPrintAllowlisted(const std::string& rel) {
  return rel.find("table_printer") != std::string::npos ||
         rel.find("common/logging") != std::string::npos;
}

void CheckIoPrint(const FileModel& m, std::vector<Violation>* out) {
  for (const Token& t : m.tokens) {
    if (!t.ident) continue;
    if (t.text == "cout" || t.text == "printf" || t.text == "fprintf" ||
        t.text == "puts" || t.text == "putchar") {
      out->push_back({m.rel, t.line, "io-print",
                      "`" + t.text +
                          "` in src/; route output through an ostream& "
                          "parameter or common/logging"});
    }
  }
}

/// Only common/stopwatch.h (and the obs layer built on it) may read the
/// std::chrono clocks directly; everything else must go through Stopwatch
/// so timing is centralized, observable, and swappable.
void CheckRawClock(const FileModel& m, std::vector<Violation>* out) {
  const std::vector<Token>& toks = m.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "steady_clock" && t != "system_clock" &&
        t != "high_resolution_clock") {
      continue;
    }
    if (toks[i + 1].text == "::" && toks[i + 2].text == "now") {
      out->push_back({m.rel, toks[i].line, "no-raw-clock",
                      "direct std::chrono::" + t +
                          "::now(); use common/stopwatch.h (Stopwatch / "
                          "Stopwatch::Now) instead"});
    }
  }
}

/// exec.no_raw_thread: raw std::thread construction belongs in src/exec/
/// only — every other subsystem parallelizes through exec::ParallelFor /
/// exec::ThreadPool so thread count, shutdown order, and per-worker
/// observability stay centralized (and LODVIZ_THREADS=1 can force the
/// deterministic serial mode). `std::thread::hardware_concurrency()` is a
/// static query, not a thread, and stays allowed.
void CheckRawThread(const FileModel& m, std::vector<Violation>* out) {
  const std::vector<Token>& toks = m.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "std" || toks[i + 1].text != "::" ||
        toks[i + 2].text != "thread") {
      continue;
    }
    if (i + 3 < toks.size() && toks[i + 3].text == "::") continue;
    out->push_back({m.rel, toks[i].line, "exec.no_raw_thread",
                    "raw std::thread outside src/exec/; parallelize via "
                    "exec::ParallelFor / exec::ThreadPool (exec/parallel.h) "
                    "so thread lifecycle, shutdown, and observability stay "
                    "in one subsystem"});
  }
}

/// sparql.no_concrete_store: src/sparql/ must depend only on the abstract
/// rdf::TripleSource contract. Naming a concrete store (the in-memory
/// TripleStore or the disk-resident DiskTripleStore) inside the query
/// layer re-couples planning/execution to one backend and silently breaks
/// the memory/disk parity guarantee the core engine relies on.
void CheckNoConcreteStore(const FileModel& m, std::vector<Violation>* out) {
  for (const Token& t : m.tokens) {
    if (!t.ident) continue;
    if (t.text == "TripleStore" || t.text == "DiskTripleStore") {
      out->push_back({m.rel, t.line, "sparql.no_concrete_store",
                      "`" + t.text +
                          "` in src/sparql/; the query layer may only see "
                          "the abstract rdf::TripleSource interface "
                          "(rdf/triple_source.h)"});
    }
  }
}

/// sparql.no_row_loop_in_batch_ops: the whole point of the vectorized
/// executor is that per-row virtual dispatch into the TripleSource
/// disappears from inner loops — a batch operator that calls `Scan` once
/// per row has silently regressed to the row engine with extra copies.
/// Inside any function whose name contains "Batch" (the batch-operator
/// naming convention: EvalBgpBatches, FilterBatches, ...), a `.Scan(` /
/// `->Scan(` call lexically inside a loop body — `for`, `while`, `do`, or
/// a lambda, since batch code expresses its per-row iteration as callbacks
/// handed to BatchListView::ForEachRow / exec::ParallelReduce — must carry
/// a LINT-ALLOW rationale (the one sanctioned case is the NLJ probe for
/// join keys that are unbound at runtime, which is a per-solution index
/// walk no batch primitive can replace).
///
/// Brace classification is lexical: for each `{`, look back — `) {` whose
/// matching `(` follows `for`/`while` is a loop; whose matching `(`
/// follows `]` is a lambda (treated as a loop body); whose matching `(`
/// follows an identifier containing "Batch" is a batch-operator function
/// body; `do {` is a loop. A Scan call fires when the brace stack holds a
/// batch-function frame with a loop frame above it.
void CheckNoRowLoopInBatchOps(const FileModel& m, std::vector<Violation>* out) {
  const std::vector<Token>& toks = m.tokens;
  const size_t n = toks.size();
  enum class Brace { kOther, kBatchFn, kLoop };

  // Classifies the brace at token index `i` by scanning backwards.
  auto classify = [&](size_t i) {
    // Skip cv-qualifiers and specifiers between `)` and `{`.
    size_t j = i;
    while (j > 0 &&
           (toks[j - 1].text == "const" || toks[j - 1].text == "noexcept" ||
            toks[j - 1].text == "override" || toks[j - 1].text == "mutable")) {
      --j;
    }
    if (j > 0 && toks[j - 1].text == "do") return Brace::kLoop;
    if (j == 0 || toks[j - 1].text != ")") return Brace::kOther;
    // Match the parameter/condition list backwards.
    int depth = 0;
    size_t k = j - 1;
    for (;; --k) {
      if (toks[k].text == ")") ++depth;
      if (toks[k].text == "(" && --depth == 0) break;
      if (k == 0) return Brace::kOther;
    }
    if (k == 0) return Brace::kOther;
    const Token& head = toks[k - 1];
    if (head.text == "for" || head.text == "while") return Brace::kLoop;
    if (head.text == "]") return Brace::kLoop;  // lambda: per-row callback
    if (head.ident && head.text.find("Batch") != std::string::npos) {
      return Brace::kBatchFn;
    }
    return Brace::kOther;
  };

  std::vector<Brace> stack;
  for (size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      stack.push_back(classify(i));
      continue;
    }
    if (t == "}") {
      if (!stack.empty()) stack.pop_back();
      continue;
    }
    if (t != "Scan" || i == 0 || i + 1 >= n || toks[i + 1].text != "(" ||
        (toks[i - 1].text != "->" && toks[i - 1].text != ".")) {
      continue;
    }
    bool in_batch_fn = false, in_loop = false;
    for (Brace b : stack) {
      if (b == Brace::kBatchFn) {
        in_batch_fn = true;
        in_loop = false;  // loops outside the innermost batch fn don't count
      } else if (in_batch_fn && b == Brace::kLoop) {
        in_loop = true;
      }
    }
    if (in_batch_fn && in_loop) {
      out->push_back(
          {m.rel, toks[i].line, "sparql.no_row_loop_in_batch_ops",
           "per-row Scan() call inside a loop in a batch operator; extend "
           "whole runs (ColumnBatch::AppendRun) instead, or document the "
           "intentional per-row probe with `// LINT-ALLOW("
           "sparql.no_row_loop_in_batch_ops): <rationale>`"});
    }
  }
}

/// Scope-stack analysis for unchecked Result access.
///
/// Tracks (a) identifiers declared as `Result<...> name`, and (b)
/// identifiers that appeared in `name.ok()` / LODVIZ_CHECK_OK(name) — the
/// "checked" set, per brace scope. `name.ValueOrDie()`, `*name`, and
/// `name->` require `name` to be checked in an enclosing scope. Calling
/// ValueOrDie() directly on a temporary (`Foo().ValueOrDie()`) always fires.
void CheckUncheckedResult(const FileModel& m, std::vector<Violation>* out) {
  struct Scope {
    std::set<std::string> checked;
    std::set<std::string> result_vars;
  };
  const std::vector<Token>& toks = m.tokens;
  std::vector<Scope> scopes(1);
  auto is_checked = [&](const std::string& name) {
    for (const Scope& s : scopes) {
      if (s.checked.count(name)) return true;
    }
    return false;
  };
  auto is_result_var = [&](const std::string& name) {
    for (const Scope& s : scopes) {
      if (s.result_vars.count(name)) return true;
    }
    return false;
  };
  const size_t n = toks.size();
  for (size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      scopes.emplace_back();
      continue;
    }
    if (t == "}") {
      if (scopes.size() > 1) scopes.pop_back();
      continue;
    }
    // Declaration: Result < ... > name ( = | ; | { )
    if (t == "Result" && i + 1 < n && toks[i + 1].text == "<") {
      int depth = 0;
      size_t j = i + 1;
      for (; j < n; ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) break;
      }
      if (j + 2 < n && toks[j + 1].ident) {
        const std::string& after = toks[j + 2].text;
        if (after == "=" || after == ";" || after == "{") {
          scopes.back().result_vars.insert(toks[j + 1].text);
        }
      }
      continue;
    }
    // Check marking: name.ok(  or  CHECK_OK-style macro (name...
    if (t == "ok" && i + 1 < n && toks[i + 1].text == "(" && i >= 2 &&
        toks[i - 1].text == "." && toks[i - 2].ident) {
      scopes.back().checked.insert(toks[i - 2].text);
      continue;
    }
    if ((t == "LODVIZ_CHECK_OK" || t == "CHECK_OK" || t == "ASSERT_OK" ||
         t == "EXPECT_OK") &&
        i + 2 < n && toks[i + 1].text == "(" && toks[i + 2].ident) {
      scopes.back().checked.insert(toks[i + 2].text);
      continue;
    }
    // Use: name.ValueOrDie(  or  std::move(name).ValueOrDie(
    if (t == "ValueOrDie" && i >= 1 && toks[i - 1].text == ".") {
      std::string target;
      if (i >= 2 && toks[i - 2].ident) {
        target = toks[i - 2].text;
      } else if (i >= 2 && toks[i - 2].text == ")") {
        int depth = 0;
        for (size_t j = i - 2; j + 1 > 0; --j) {
          if (toks[j].text == ")") ++depth;
          if (toks[j].text == "(" && --depth == 0) break;
          if (toks[j].ident && toks[j].text != "std" &&
              toks[j].text != "move") {
            target = toks[j].text;
          }
        }
      }
      if (target.empty() || !is_checked(target)) {
        out->push_back(
            {m.rel, toks[i].line, "unchecked-result",
             target.empty()
                 ? "ValueOrDie() on a temporary; bind it and check ok() "
                   "first (or use LODVIZ_ASSIGN_OR_RETURN)"
                 : "ValueOrDie() on '" + target +
                       "' with no lexically preceding '" + target +
                       ".ok()' / CHECK_OK in scope"});
      }
      continue;
    }
    // Use: *name  (unary) or name->  on a known Result variable.
    if (t == "*" && i + 1 < n && toks[i + 1].ident &&
        is_result_var(toks[i + 1].text) && !is_checked(toks[i + 1].text)) {
      bool binary = i > 0 && (toks[i - 1].ident || toks[i - 1].text == ")" ||
                              toks[i - 1].text == "]");
      if (!binary) {
        out->push_back({m.rel, toks[i].line, "unchecked-result",
                        "operator* on Result '" + toks[i + 1].text +
                            "' with no preceding ok() check in scope"});
      }
      continue;
    }
    if (t == "->" && i > 0 && toks[i - 1].ident &&
        is_result_var(toks[i - 1].text) && !is_checked(toks[i - 1].text)) {
      out->push_back({m.rel, toks[i].line, "unchecked-result",
                      "operator-> on Result '" + toks[i - 1].text +
                          "' with no preceding ok() check in scope"});
    }
  }
}

// ---------------------------------------------------------------------------
// concurrency.guarded_by
// ---------------------------------------------------------------------------

/// Every mutable data member of a class that owns a mutex must be tied to
/// that mutex (GUARDED_BY / PT_GUARDED_BY), be internally thread-safe
/// (atomics, obs counters), be const/static, or carry an explicit
/// LINT-ALLOW waiver documenting why it is safe unguarded. This is what
/// keeps "which lock protects this field" a checkable property instead of
/// a code-review convention as the concurrent serving layer grows.
void CheckGuardedBy(const FileModel& m, std::vector<Violation>* out) {
  for (const ClassInfo& cls : m.classes) {
    if (!cls.OwnsLock()) continue;
    for (const MemberDecl& mem : cls.members) {
      if (mem.is_function || mem.is_static || mem.is_const) continue;
      if (mem.is_lockable || mem.is_threadsafe_type) continue;
      if (mem.has_guard_annotation) continue;
      bool waived = false;
      for (int l = mem.first_line - 1; l <= mem.last_line && !waived; ++l) {
        auto it = m.allows.find(l);
        waived = it != m.allows.end() &&
                 it->second.count("concurrency.guarded_by") > 0;
      }
      if (waived) continue;
      out->push_back(
          {m.rel, mem.line, "concurrency.guarded_by",
           "member '" + mem.name + "' of mutex-owning class '" + cls.qname +
               "' has no LODVIZ_GUARDED_BY/PT_GUARDED_BY; annotate it, or "
               "waive with `// LINT-ALLOW(concurrency.guarded_by): "
               "<rationale>`"});
    }
  }
}

// ---------------------------------------------------------------------------
// concurrency.lock_order (cross-file)
// ---------------------------------------------------------------------------

/// One declared acquisition-order edge: `from` may be held when `to` is
/// acquired (from LODVIZ_ACQUIRED_BEFORE(to) on `from`, or
/// LODVIZ_ACQUIRED_AFTER(from) on `to`).
struct LockEdge {
  std::string from;
  std::string to;
  std::string file;
  int line = 0;
};

/// Normalizes an annotation argument or node name: drops the `lodviz::`
/// prefix; unqualified names resolve to the owning class.
std::string NormalizeLockName(const std::string& name,
                              const std::string& owner_qname) {
  std::string s = name;
  if (s.rfind("lodviz::", 0) == 0) s = s.substr(8);
  if (s.find("::") == std::string::npos) s = owner_qname + "::" + s;
  return s;
}

void CollectLockEdges(const FileModel& m, std::vector<LockEdge>* edges) {
  for (const ClassInfo& cls : m.classes) {
    for (const MemberDecl& mem : cls.members) {
      if (mem.is_function) continue;
      const std::string self = cls.qname + "::" + mem.name;
      for (const auto& [target, line] : mem.acquired_before) {
        edges->push_back(
            {self, NormalizeLockName(target, cls.qname), m.rel, line});
      }
      for (const auto& [target, line] : mem.acquired_after) {
        edges->push_back(
            {NormalizeLockName(target, cls.qname), self, m.rel, line});
      }
    }
  }
}

/// Builds the acquisition graph and reports every edge that participates in
/// a cycle. A cycle means two code paths may acquire the same pair of locks
/// in opposite orders — a latent deadlock the type system cannot see.
void CheckLockOrder(const std::vector<LockEdge>& edges,
                    std::vector<Violation>* out) {
  std::map<std::string, std::vector<size_t>> adj;  // node -> edge indexes
  for (size_t i = 0; i < edges.size(); ++i) {
    adj[edges[i].from].push_back(i);
    adj.try_emplace(edges[i].to);
  }
  // Iterative DFS, three colors; every back edge closes a cycle made of the
  // stack segment from the revisited node to the top.
  std::map<std::string, int> color;  // 0 white, 1 gray, 2 black
  std::set<size_t> cycle_edges;
  for (const auto& [start, unused] : adj) {
    if (color[start] != 0) continue;
    // Stack frames: (node, next out-edge position, incoming edge index).
    struct Frame {
      std::string node;
      size_t next = 0;
      size_t in_edge = static_cast<size_t>(-1);
    };
    std::vector<Frame> stack{{start, 0, static_cast<size_t>(-1)}};
    color[start] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const std::vector<size_t>& outs = adj[f.node];
      if (f.next >= outs.size()) {
        color[f.node] = 2;
        stack.pop_back();
        continue;
      }
      size_t e = outs[f.next++];
      const std::string& to = edges[e].to;
      if (color[to] == 1) {
        // Back edge: collect the cycle (stack frames from `to` upward).
        cycle_edges.insert(e);
        for (size_t s = stack.size(); s-- > 0;) {
          if (stack[s].node == to) break;  // in_edge enters from outside
          if (stack[s].in_edge != static_cast<size_t>(-1)) {
            cycle_edges.insert(stack[s].in_edge);
          }
        }
      } else if (color[to] == 0) {
        color[to] = 1;
        stack.push_back({to, 0, e});
      }
    }
  }
  std::set<std::tuple<std::string, int, std::string>> reported;
  for (size_t e : cycle_edges) {
    const LockEdge& edge = edges[e];
    if (!reported.insert({edge.file, edge.line, edge.from}).second) continue;
    out->push_back(
        {edge.file, edge.line, "concurrency.lock_order",
         "lock-order cycle: the acquisition graph edge '" + edge.from +
             "' -> '" + edge.to +
             "' participates in a cycle; two paths may take these mutexes "
             "in opposite orders (potential deadlock)"});
  }
}

// ---------------------------------------------------------------------------
// arch.layering
// ---------------------------------------------------------------------------

/// The include DAG, bottom-up. A module may include itself and any module
/// with a strictly lower rank. Modules sharing a rank are peers and must
/// not include each other — the SPARQL serving layer (`serve`) slots in
/// above `sparql` without ever being able to create a cycle.
const std::map<std::string, int>& LayerRanks() {
  static const std::map<std::string, int> kRanks = {
      {"common", 0},  {"obs", 1},    {"exec", 2},  {"rdf", 3},
      {"storage", 4}, {"sparql", 5}, {"serve", 6}, {"geo", 6},
      {"stats", 6},   {"onto", 6},   {"cube", 6},  {"hier", 6},
      {"graph", 7},   {"explore", 7}, {"viz", 8},  {"rec", 9},
      {"workload", 9}, {"core", 10},
  };
  return kRanks;
}

/// Module name for a path like "src/sparql/ast.h" ("" if not a src module).
std::string ModuleOf(const std::string& rel) {
  if (rel.rfind("src/", 0) != 0) return "";
  size_t slash = rel.find('/', 4);
  if (slash == std::string::npos) return "";
  std::string mod = rel.substr(4, slash - 4);
  return LayerRanks().count(mod) ? mod : "";
}

void CheckLayering(const FileModel& m, std::vector<Violation>* out) {
  const std::string mod = ModuleOf(m.rel);
  if (mod.empty()) return;
  const int my_rank = LayerRanks().at(mod);
  for (const IncludeDirective& inc : m.includes) {
    if (inc.system) continue;
    size_t slash = inc.path.find('/');
    if (slash == std::string::npos) continue;
    const std::string dep = inc.path.substr(0, slash);
    auto it = LayerRanks().find(dep);
    if (it == LayerRanks().end()) continue;
    if (dep == mod || it->second < my_rank) continue;
    out->push_back(
        {m.rel, inc.line, "arch.layering",
         "module '" + mod + "' (layer " + std::to_string(my_rank) +
             ") includes \"" + inc.path + "\" from '" + dep + "' (layer " +
             std::to_string(it->second) +
             "), which is not below it; the include DAG is common -> obs -> "
             "exec -> rdf -> storage -> sparql -> domain tiers -> core"});
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
  fs::path root;
  std::vector<std::string> dirs;
  bool expect_mode = false;
};

bool ShouldSkipDir(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

/// Pass 1: lex + model one file.
FileModel BuildModel(const fs::path& abs, const std::string& rel) {
  FileModel m;
  m.abs = abs;
  m.rel = rel;
  std::ifstream in(abs, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  m.source = buf.str();
  m.stripped = StripCommentsAndStrings(m.source);
  m.raw_lines = SplitLines(m.source);
  m.stripped_lines = SplitLines(m.stripped);
  m.tokens = Tokenize(m.stripped);
  BuildStructure(&m);
  CollectIncludes(&m);
  CollectAllows(&m);
  return m;
}

/// Pass 2: per-file rules (path scoping disabled in expect mode so fixture
/// files exercise every rule).
void LintFile(const FileModel& m, bool all_rules, std::vector<Violation>* out) {
  const std::string& rel = m.rel;
  const bool is_header = rel.size() > 2 && rel.rfind(".h") == rel.size() - 2;
  const bool in_src = all_rules || rel.rfind("src/", 0) == 0;

  if (is_header) {
    CheckHeaderGuard(m, out);
    CheckUsingNamespace(m, out);
  } else {
    CheckIncludeFirst(m, out);
  }
  if (in_src) {
    CheckNakedNewDelete(m, out);
    if (!IoPrintAllowlisted(rel)) CheckIoPrint(m, out);
  }
  const bool clock_sanctioned = !all_rules &&
                                (rel.rfind("src/common/", 0) == 0 ||
                                 rel.rfind("src/obs/", 0) == 0);
  if (!clock_sanctioned) CheckRawClock(m, out);
  const bool thread_sanctioned = !all_rules && rel.rfind("src/exec/", 0) == 0;
  if (in_src && !thread_sanctioned) CheckRawThread(m, out);
  const bool in_sparql = all_rules || rel.rfind("src/sparql/", 0) == 0;
  if (in_sparql) {
    CheckNoConcreteStore(m, out);
    CheckNoRowLoopInBatchOps(m, out);
  }
  CheckUncheckedResult(m, out);
  if (in_src) CheckGuardedBy(m, out);
  CheckLayering(m, out);  // path-scoped by construction (src/<module>/)
}

/// Collects `// LINT-EXPECT: rule-a, rule-b` annotations from raw source.
std::set<std::pair<std::string, std::string>> CollectExpectations(
    const FileModel& m) {
  std::set<std::pair<std::string, std::string>> expected;
  for (const std::string& line : m.raw_lines) {
    size_t pos = line.find("LINT-EXPECT:");
    if (pos == std::string::npos) continue;
    std::string rest = line.substr(pos + 12);
    std::istringstream items(rest);
    std::string rule;
    while (std::getline(items, rule, ',')) {
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!rule.empty()) expected.insert({m.rel, rule});
    }
  }
  return expected;
}

int Run(const Options& opts) {
  std::vector<std::pair<fs::path, std::string>> files;  // (abs, rel)
  std::error_code ec;
  std::vector<fs::path> roots;
  if (opts.dirs.empty()) {
    roots.push_back(opts.root);
  } else {
    for (const std::string& d : opts.dirs) roots.push_back(opts.root / d);
  }
  for (const fs::path& scan_root : roots) {
    if (!fs::exists(scan_root)) {
      std::cerr << "lodviz_lint: scan dir '" << scan_root.string()
                << "' does not exist\n";
      return 2;
    }
    fs::recursive_directory_iterator it(scan_root, ec), end;
    for (; it != end; it.increment(ec)) {
      if (it->is_directory() &&
          ShouldSkipDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      files.push_back(
          {it->path(), fs::relative(it->path(), opts.root).string()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  // Pass 1: build every file model.
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& [abs, rel] : files) models.push_back(BuildModel(abs, rel));

  // Pass 2: per-file rules, then the cross-file acquisition graph.
  std::vector<Violation> violations;
  std::vector<LockEdge> lock_edges;
  std::set<std::pair<std::string, std::string>> expected;
  for (const FileModel& m : models) {
    LintFile(m, opts.expect_mode, &violations);
    const bool in_src = opts.expect_mode || m.rel.rfind("src/", 0) == 0;
    if (in_src) CollectLockEdges(m, &lock_edges);
    if (opts.expect_mode) expected.merge(CollectExpectations(m));
  }
  CheckLockOrder(lock_edges, &violations);

  // Apply LINT-ALLOW waivers.
  std::map<std::string, const FileModel*> by_rel;
  for (const FileModel& m : models) by_rel[m.rel] = &m;
  std::vector<Violation> kept;
  for (const Violation& v : violations) {
    auto it = by_rel.find(v.file);
    if (it != by_rel.end() && IsAllowed(*it->second, v.rule, v.line)) continue;
    kept.push_back(v);
  }
  violations.swap(kept);

  if (!opts.expect_mode) {
    for (const Violation& v : violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    if (violations.empty()) {
      std::cout << "lodviz_lint: " << files.size() << " files clean\n";
      return 0;
    }
    std::cout << "lodviz_lint: " << violations.size() << " violation(s) in "
              << files.size() << " files\n";
    return 1;
  }

  // Expect mode: fired (file, rule) pairs must equal the annotated set.
  std::set<std::pair<std::string, std::string>> fired;
  for (const Violation& v : violations) fired.insert({v.file, v.rule});
  int failures = 0;
  for (const auto& [file, rule] : expected) {
    if (!fired.count({file, rule})) {
      std::cout << "MISSING: expected [" << rule << "] to fire in " << file
                << "\n";
      ++failures;
    }
  }
  for (const auto& [file, rule] : fired) {
    if (!expected.count({file, rule})) {
      std::cout << "UNEXPECTED: [" << rule << "] fired in " << file << "\n";
      ++failures;
    }
  }
  std::cout << "lodviz_lint --expect: " << expected.size() << " expected, "
            << fired.size() << " fired, " << failures << " mismatch(es)\n";
  return failures ? 1 : 0;
}

// ---------------------------------------------------------------------------
// Built-in lexer + structure self-tests (lodviz_lint --self-test)
// ---------------------------------------------------------------------------

int g_checks = 0;
int g_failures = 0;

void Expect(bool cond, const std::string& what) {
  ++g_checks;
  if (!cond) {
    ++g_failures;
    std::cout << "SELF-TEST FAIL: " << what << "\n";
  }
}

/// Tokenizes `src` after stripping and returns the token texts.
std::vector<std::string> TokenTexts(const std::string& src) {
  std::vector<std::string> texts;
  for (const Token& t : Tokenize(StripCommentsAndStrings(src))) {
    texts.push_back(t.text);
  }
  return texts;
}

bool Contains(const std::vector<std::string>& toks, const std::string& t) {
  return std::find(toks.begin(), toks.end(), t) != toks.end();
}

FileModel ModelOf(const std::string& src, const std::string& rel) {
  FileModel m;
  m.rel = rel;
  m.source = src;
  m.stripped = StripCommentsAndStrings(src);
  m.raw_lines = SplitLines(src);
  m.stripped_lines = SplitLines(m.stripped);
  m.tokens = Tokenize(m.stripped);
  BuildStructure(&m);
  CollectIncludes(&m);
  CollectAllows(&m);
  return m;
}

int RunSelfTest() {
  // --- Lexer: comments ---
  {
    auto t = TokenTexts("int a; // delete everything\nint b; /* new */ int c;");
    Expect(Contains(t, "a") && Contains(t, "b") && Contains(t, "c"),
           "code around comments survives");
    Expect(!Contains(t, "delete") && !Contains(t, "new"),
           "keywords inside comments are stripped");
  }
  {
    // Backslash-newline splices the next line into the // comment.
    auto t = TokenTexts("// still a comment \\\ndelete p;\nint live;");
    Expect(!Contains(t, "delete"), "spliced line comment hides second line");
    Expect(Contains(t, "live"), "line after spliced comment is code");
  }
  // --- Lexer: strings, prefixes, raw strings ---
  {
    auto t = TokenTexts("auto s = \"new delete printf\"; auto c = 'x';");
    Expect(!Contains(t, "printf"), "contents of plain strings are stripped");
  }
  {
    auto t = TokenTexts("auto s = u8\"printf\"; auto w = L'\\''; int ok;");
    Expect(!Contains(t, "printf"), "u8 string prefix recognized");
    Expect(Contains(t, "ok"), "escaped quote in prefixed char literal");
  }
  {
    auto t = TokenTexts(
        "auto r = R\"lint(delete new cout)lint\"; int after;");
    Expect(!Contains(t, "cout") && Contains(t, "after"),
           "raw string with custom delimiter stripped exactly");
  }
  {
    auto t = TokenTexts("auto r = LR\"(printf)\"; int tail;");
    Expect(!Contains(t, "printf") && Contains(t, "tail"),
           "raw string with encoding prefix stripped");
  }
  // --- Lexer: digit separators ---
  {
    // Three separators (odd count): a naive char-literal scan would swallow
    // the rest of the file from the last quote; the following `delete` and
    // `printf` must stay visible.
    auto t = TokenTexts(
        "uint64_t ns = 1'000'000'000;\ndelete p;\nstd::printf(\"x\");");
    Expect(Contains(t, "delete"),
           "digit separators do not open char literals (delete visible)");
    Expect(Contains(t, "printf"),
           "digit separators do not open char literals (printf visible)");
  }
  {
    auto t = TokenTexts("f(1'000, 'n'); delete q;");
    Expect(Contains(t, "delete"),
           "separator followed by real char literal keeps code visible");
  }
  // --- Structure: namespaces, classes, nesting ---
  {
    FileModel m = ModelOf(
        "namespace lodviz::storage {\n"
        "class Pool {\n"
        " public:\n"
        "  void Fetch(int id);\n"
        " private:\n"
        "  struct Shard {\n"
        "    mutable Mutex mu;\n"
        "    int tick GUARDED_BY(mu) = 0;\n"
        "  };\n"
        "  Mutex big_mu_;\n"
        "  std::map<int, int> table_ LODVIZ_GUARDED_BY(big_mu_);\n"
        "  std::atomic<int> pins_{0};\n"
        "  const int capacity_ = 8;\n"
        "  static constexpr int kBatch = 64;\n"
        "  int stray_;\n"
        "};\n"
        "}  // namespace\n",
        "src/storage/pool.h");
    Expect(m.classes.size() == 2, "two classes found (outer + nested)");
    const ClassInfo* pool = nullptr;
    const ClassInfo* shard = nullptr;
    for (const ClassInfo& c : m.classes) {
      if (c.qname == "storage::Pool") pool = &c;
      if (c.qname == "storage::Pool::Shard") shard = &c;
    }
    Expect(pool != nullptr, "outer class qualified name");
    Expect(shard != nullptr, "nested class qualified name");
    if (shard != nullptr) {
      Expect(shard->OwnsLock(), "nested class owns its mutex");
      bool tick_guarded = false;
      for (const MemberDecl& mem : shard->members) {
        if (mem.name == "tick") tick_guarded = mem.has_guard_annotation;
      }
      Expect(tick_guarded, "GUARDED_BY detected on nested member");
    }
    if (pool != nullptr) {
      std::map<std::string, const MemberDecl*> by_name;
      for (const MemberDecl& mem : pool->members) by_name[mem.name] = &mem;
      Expect(by_name.count("big_mu_") && by_name["big_mu_"]->is_lockable,
             "Mutex member detected as lockable");
      Expect(by_name.count("table_") &&
                 by_name["table_"]->has_guard_annotation,
             "LODVIZ_GUARDED_BY detected after template type");
      Expect(by_name.count("pins_") && by_name["pins_"]->is_threadsafe_type,
             "std::atomic member exempt (thread-safe type)");
      Expect(by_name.count("capacity_") && by_name["capacity_"]->is_const,
             "const member detected");
      Expect(by_name.count("kBatch") && by_name["kBatch"]->is_static,
             "static constexpr member detected");
      Expect(by_name.count("stray_") &&
                 !by_name["stray_"]->has_guard_annotation &&
                 !by_name["stray_"]->is_function,
             "unannotated data member classified as data");
      Expect(by_name.count("Fetch") == 0, "methods not recorded as data");
    }
  }
  {
    // Brace initializers, function bodies, and preprocessor lines must not
    // derail member collection.
    FileModel m = ModelOf(
        "#define HALF_OPEN {\n"
        "namespace lodviz {\n"
        "class Pool {\n"
        "  int Size() const { return n_; }\n"
        "  std::mutex mu_;\n"
        "  std::vector<int> rows_ = {1, 2, 3};\n"
        "  std::function<int()> fn_;\n"
        "  uint8_t buf_[16];\n"
        "  int n_ = 0;\n"
        "};\n"
        "}\n",
        "src/exec/pool.h");
    Expect(m.classes.size() == 1, "macro with unbalanced brace ignored");
    if (m.classes.size() == 1) {
      const ClassInfo& c = m.classes[0];
      Expect(c.qname == "Pool", "lodviz:: outer namespace dropped");
      Expect(c.OwnsLock(), "std::mutex member detected");
      std::map<std::string, const MemberDecl*> by_name;
      for (const MemberDecl& mem : c.members) by_name[mem.name] = &mem;
      Expect(by_name.count("rows_") > 0, "brace-initialized member found");
      Expect(by_name.count("fn_") > 0 && !by_name["fn_"]->is_function,
             "std::function member is data, not a method");
      Expect(by_name.count("buf_") > 0, "array member name before extent");
    }
  }
  // --- Lock-order graph ---
  {
    FileModel a = ModelOf(
        "namespace lodviz::exec {\n"
        "class Pool {\n"
        "  Mutex mu_ LODVIZ_ACQUIRED_BEFORE(obs::Registry::mu_);\n"
        "  int queue_ LODVIZ_GUARDED_BY(mu_);\n"
        "};\n"
        "}\n",
        "src/exec/pool.h");
    FileModel b = ModelOf(
        "namespace lodviz::obs {\n"
        "class Registry {\n"
        "  Mutex mu_ LODVIZ_ACQUIRED_BEFORE(exec::Pool::mu_);\n"
        "  int map_ LODVIZ_GUARDED_BY(mu_);\n"
        "};\n"
        "}\n",
        "src/obs/registry.h");
    std::vector<LockEdge> edges;
    CollectLockEdges(a, &edges);
    CollectLockEdges(b, &edges);
    Expect(edges.size() == 2, "one edge per ACQUIRED_BEFORE");
    std::vector<Violation> v;
    CheckLockOrder(edges, &v);
    Expect(v.size() == 2, "two-node cycle reported on both edges");
    std::vector<LockEdge> acyclic = {edges[0]};
    v.clear();
    CheckLockOrder(acyclic, &v);
    Expect(v.empty(), "single edge is acyclic");
  }
  // --- ACQUIRED_AFTER direction ---
  {
    FileModel m = ModelOf(
        "namespace lodviz {\n"
        "class A { Mutex a_ LODVIZ_ACQUIRED_AFTER(B::b_); int x_ "
        "LODVIZ_GUARDED_BY(a_); };\n"
        "}\n",
        "src/common/a.h");
    std::vector<LockEdge> edges;
    CollectLockEdges(m, &edges);
    Expect(edges.size() == 1 && edges[0].from == "B::b_" &&
               edges[0].to == "A::a_",
           "ACQUIRED_AFTER reverses the edge");
  }
  // --- LINT-ALLOW ---
  {
    FileModel m = ModelOf(
        "namespace lodviz {\n"
        "class C {\n"
        "  Mutex mu_;\n"
        "  // LINT-ALLOW(concurrency.guarded_by): set once in the ctor\n"
        "  int immutable_after_ctor_;\n"
        "};\n"
        "}\n",
        "src/common/c.h");
    std::vector<Violation> v;
    CheckGuardedBy(m, &v);
    Expect(v.empty(), "LINT-ALLOW waives guarded_by on the next line");
  }
  {
    FileModel m = ModelOf(
        "namespace lodviz {\n"
        "class C { Mutex mu_; int unguarded_; };\n"
        "}\n",
        "src/common/c.h");
    std::vector<Violation> v;
    CheckGuardedBy(m, &v);
    Expect(v.size() == 1 && v[0].rule == "concurrency.guarded_by",
           "missing GUARDED_BY fires");
  }
  // --- sparql.no_row_loop_in_batch_ops ---
  {
    FileModel m = ModelOf(
        "namespace lodviz::sparql {\n"
        "void Executor::EvalBgpBatches(const Plan& p) {\n"
        "  for (size_t i = 0; i < p.n; ++i) {\n"
        "    source_->Scan(pat, cb);\n"
        "  }\n"
        "}\n"
        "}\n",
        "src/sparql/executor.cc");
    std::vector<Violation> v;
    CheckNoRowLoopInBatchOps(m, &v);
    Expect(v.size() == 1 && v[0].rule == "sparql.no_row_loop_in_batch_ops",
           "Scan inside a for loop in a Batch function fires");
  }
  {
    // A lambda body counts as a loop body (ForEachRow-style callbacks).
    FileModel m = ModelOf(
        "namespace lodviz::sparql {\n"
        "void FilterBatches(View& view) {\n"
        "  view.ForEachRow(0, view.total(), [&](const B& b, uint32_t r) {\n"
        "    src.Scan(pat, cb);\n"
        "  });\n"
        "}\n"
        "}\n",
        "src/sparql/executor.cc");
    std::vector<Violation> v;
    CheckNoRowLoopInBatchOps(m, &v);
    Expect(v.size() == 1,
           "Scan inside a per-row lambda in a Batch function fires");
  }
  {
    // Batch-level (not per-row) Scan and row-engine loops stay allowed.
    FileModel m = ModelOf(
        "namespace lodviz::sparql {\n"
        "void Executor::EvalBgpBatches(const Plan& p) {\n"
        "  source_->Scan(pat, cb);\n"  // once per step, no loop: fine
        "}\n"
        "void Executor::EvalBgp(const Plan& p) {\n"
        "  for (size_t i = 0; i < p.n; ++i) {\n"
        "    source_->Scan(pat, cb);\n"  // row engine: out of scope
        "  }\n"
        "}\n"
        "}\n",
        "src/sparql/executor.cc");
    std::vector<Violation> v;
    CheckNoRowLoopInBatchOps(m, &v);
    Expect(v.empty(),
           "Scan outside loops / outside Batch functions does not fire");
  }
  // --- Layering ---
  {
    FileModel m = ModelOf("#include \"core/engine.h\"\nint x;\n",
                          "src/sparql/bad.cc");
    std::vector<Violation> v;
    CheckLayering(m, &v);
    Expect(v.size() == 1 && v[0].rule == "arch.layering",
           "sparql including core fires layering");
    FileModel ok = ModelOf("#include \"graph/graph.h\"\nint x;\n",
                           "src/viz/ok.cc");
    v.clear();
    CheckLayering(ok, &v);
    Expect(v.empty(), "viz including graph is allowed");
  }

  std::cout << "lodviz_lint --self-test: " << g_checks << " checks, "
            << g_failures << " failure(s)\n";
  return g_failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = fs::path(argv[++i]);
    } else if (arg == "--expect") {
      opts.expect_mode = true;
    } else if (arg == "--self-test") {
      return RunSelfTest();
    } else if (arg == "--help") {
      std::cout << "usage: lodviz_lint [--expect|--self-test] --root <dir> "
                   "[dirs...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "lodviz_lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      opts.dirs.push_back(arg);
    }
  }
  if (!fs::is_directory(opts.root)) {
    std::cerr << "lodviz_lint: --root '" << opts.root.string()
              << "' is not a directory\n";
    return 2;
  }
  if (!opts.expect_mode && opts.dirs.empty()) {
    opts.dirs = {"src", "bench", "tests", "tools"};
  }
  return Run(opts);
}
