// lodviz_lint: standalone project-invariant checker for the lodviz tree.
//
// A deliberately dependency-free (no libclang) tokenizing analyzer that
// enforces the coding invariants the Status/Result error-handling contract
// relies on. Registered as a ctest test so tier-1 fails on any violation.
//
// Rules (ids used in output and in LINT-EXPECT fixture comments):
//   header-guard             #ifndef/#define guard must be LODVIZ_<PATH>_H_
//   include-first            a .cc file must include its own header first
//   using-namespace-header   no `using namespace` at any scope in headers
//   naked-new                no naked new/delete in src/ (smart ptrs only)
//   io-print                 no std::cout / printf-family in src/ outside
//                            the table printer and logging sinks
//   unchecked-result         no ValueOrDie()/operator* /operator-> on a
//                            Result without a lexically preceding ok() or
//                            LODVIZ_CHECK_OK in an enclosing scope
//   no-raw-clock             no direct std::chrono clock `::now()` calls
//                            outside src/common/ and src/obs/; go through
//                            common/stopwatch.h so time is observable and
//                            mockable in one place
//   sparql.no_concrete_store no rdf::TripleStore / storage::DiskTripleStore
//                            in src/sparql/; the query layer sees only the
//                            abstract rdf::TripleSource contract so every
//                            backend runs the same plans and operators
//
// Usage:
//   lodviz_lint --root <repo-root> [dirs...]     (default: src bench tests tools)
//   lodviz_lint --expect --root <fixture-dir>    self-test mode: violations
//       must exactly match the `// LINT-EXPECT: <rule>` comments in the
//       fixture files (all rules applied regardless of path scoping).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

struct Violation {
  std::string file;  // path relative to the scan root
  int line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  std::string text;
  int line = 0;
  bool ident = false;
};

// ---------------------------------------------------------------------------
// Source preparation
// ---------------------------------------------------------------------------

/// Returns `source` with comments and string/char literal contents replaced
/// by spaces (newlines kept), so token scans cannot match inside them.
/// Handles //, /* */, "..." with escapes, '...', and R"delim(...)delim".
std::string StripCommentsAndStrings(const std::string& source) {
  std::string out = source;
  size_t i = 0;
  const size_t n = source.size();
  auto blank = [&](size_t from, size_t to) {
    for (size_t k = from; k < to && k < n; ++k) {
      if (out[k] != '\n') out[k] = ' ';
    }
  };
  while (i < n) {
    char c = source[i];
    if (c == '/' && i + 1 < n && source[i + 1] == '/') {
      size_t end = source.find('\n', i);
      if (end == std::string::npos) end = n;
      blank(i, end);
      i = end;
    } else if (c == '/' && i + 1 < n && source[i + 1] == '*') {
      size_t end = source.find("*/", i + 2);
      end = (end == std::string::npos) ? n : end + 2;
      blank(i, end);
      i = end;
    } else if (c == 'R' && i + 1 < n && source[i + 1] == '"') {
      size_t paren = source.find('(', i + 2);
      if (paren == std::string::npos) {
        ++i;
        continue;
      }
      std::string delim;
      delim.reserve(paren - i);
      delim.push_back(')');
      delim.append(source, i + 2, paren - i - 2);
      delim.push_back('"');
      size_t end = source.find(delim, paren + 1);
      end = (end == std::string::npos) ? n : end + delim.size();
      blank(i, end);
      i = end;
    } else if (c == '"' || c == '\'') {
      size_t j = i + 1;
      while (j < n && source[j] != c) {
        if (source[j] == '\\') ++j;
        ++j;
      }
      if (j < n) ++j;
      blank(i + 1, j);  // keep the quotes so tokenization stays sane
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Tokenizes stripped source into identifiers and single punctuation chars.
std::vector<Token> Tokenize(const std::string& stripped) {
  std::vector<Token> toks;
  int line = 1;
  size_t i = 0;
  const size_t n = stripped.size();
  while (i < n) {
    char c = stripped[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (IsIdentChar(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(stripped[j])) ++j;
      bool ident = !std::isdigit(static_cast<unsigned char>(c));
      toks.push_back({stripped.substr(i, j - i), line, ident});
      i = j;
    } else if (c == '-' && i + 1 < n && stripped[i + 1] == '>') {
      toks.push_back({"->", line, false});
      i += 2;
    } else if (c == ':' && i + 1 < n && stripped[i + 1] == ':') {
      toks.push_back({"::", line, false});
      i += 2;
    } else {
      toks.push_back({std::string(1, c), line, false});
      ++i;
    }
  }
  return toks;
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

/// src/common/result.h -> LODVIZ_COMMON_RESULT_H_ ; bench/x.h keeps `bench/`.
std::string ExpectedGuard(const std::string& rel) {
  std::string path = rel;
  if (path.rfind("src/", 0) == 0) path = path.substr(4);
  std::string guard = "LODVIZ_";
  for (char c : path) {
    guard += IsIdentChar(c) ? static_cast<char>(std::toupper(
                                  static_cast<unsigned char>(c)))
                            : '_';
  }
  guard += '_';
  return guard;
}

void CheckHeaderGuard(const std::string& rel,
                      const std::vector<std::string>& lines,
                      std::vector<Violation>* out) {
  const std::string want = ExpectedGuard(rel);
  for (size_t i = 0; i < lines.size(); ++i) {
    std::istringstream in(lines[i]);
    std::string directive, name;
    in >> directive >> name;
    if (directive == "#pragma" && name == "once") {
      out->push_back({rel, static_cast<int>(i + 1), "header-guard",
                      "use an include guard named " + want +
                          ", not #pragma once"});
      return;
    }
    if (directive != "#ifndef") continue;
    if (name != want) {
      out->push_back({rel, static_cast<int>(i + 1), "header-guard",
                      "guard is '" + name + "', expected '" + want + "'"});
    }
    return;
  }
  out->push_back({rel, 1, "header-guard", "missing include guard " + want});
}

void CheckIncludeFirst(const std::string& rel, const fs::path& abs,
                       const std::vector<std::string>& stripped_lines,
                       const std::vector<std::string>& raw_lines,
                       std::vector<Violation>* out) {
  fs::path own_header = abs;
  own_header.replace_extension(".h");
  if (!fs::exists(own_header)) return;
  std::string want = rel.substr(0, rel.size() - 3) + ".h";
  if (want.rfind("src/", 0) == 0) want = want.substr(4);
  // Directive detection uses the stripped view (ignores commented-out
  // includes); the path itself lives in a string literal, so read the raw
  // line for the comparison.
  for (size_t i = 0; i < stripped_lines.size(); ++i) {
    if (stripped_lines[i].find("#include") == std::string::npos) continue;
    const std::string& raw =
        i < raw_lines.size() ? raw_lines[i] : stripped_lines[i];
    if (raw.find("\"" + want + "\"") == std::string::npos) {
      out->push_back({rel, static_cast<int>(i + 1), "include-first",
                      "first include must be \"" + want + "\""});
    }
    return;
  }
}

void CheckUsingNamespace(const std::string& rel,
                         const std::vector<Token>& toks,
                         std::vector<Violation>* out) {
  for (size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "using" && toks[i + 1].text == "namespace") {
      out->push_back({rel, toks[i].line, "using-namespace-header",
                      "`using namespace` in a header pollutes every "
                      "includer's scope"});
    }
  }
}

void CheckNakedNewDelete(const std::string& rel,
                         const std::vector<Token>& toks,
                         std::vector<Violation>* out) {
  for (size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "new") {
      // `operator new` declarations are fine; expressions are not.
      if (i > 0 && toks[i - 1].text == "operator") continue;
      out->push_back({rel, toks[i].line, "naked-new",
                      "naked `new`; use std::make_unique/static storage"});
    } else if (t == "delete") {
      // `= delete` (deleted functions) and `operator delete` are fine.
      if (i > 0 &&
          (toks[i - 1].text == "=" || toks[i - 1].text == "operator")) {
        continue;
      }
      out->push_back({rel, toks[i].line, "naked-new",
                      "naked `delete`; ownership must be RAII-managed"});
    }
  }
}

bool IoPrintAllowlisted(const std::string& rel) {
  return rel.find("table_printer") != std::string::npos ||
         rel.find("common/logging") != std::string::npos;
}

void CheckIoPrint(const std::string& rel, const std::vector<Token>& toks,
                  std::vector<Violation>* out) {
  for (const Token& t : toks) {
    if (!t.ident) continue;
    if (t.text == "cout" || t.text == "printf" || t.text == "fprintf" ||
        t.text == "puts" || t.text == "putchar") {
      out->push_back({rel, t.line, "io-print",
                      "`" + t.text +
                          "` in src/; route output through an ostream& "
                          "parameter or common/logging"});
    }
  }
}

/// Only common/stopwatch.h (and the obs layer built on it) may read the
/// std::chrono clocks directly; everything else must go through Stopwatch
/// so timing is centralized, observable, and swappable.
void CheckRawClock(const std::string& rel, const std::vector<Token>& toks,
                   std::vector<Violation>* out) {
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t != "steady_clock" && t != "system_clock" &&
        t != "high_resolution_clock") {
      continue;
    }
    if (toks[i + 1].text == "::" && toks[i + 2].text == "now") {
      out->push_back({rel, toks[i].line, "no-raw-clock",
                      "direct std::chrono::" + t +
                          "::now(); use common/stopwatch.h (Stopwatch / "
                          "Stopwatch::Now) instead"});
    }
  }
}

/// exec.no_raw_thread: raw std::thread construction belongs in src/exec/
/// only — every other subsystem parallelizes through exec::ParallelFor /
/// exec::ThreadPool so thread count, shutdown order, and per-worker
/// observability stay centralized (and LODVIZ_THREADS=1 can force the
/// deterministic serial mode). `std::thread::hardware_concurrency()` is a
/// static query, not a thread, and stays allowed.
void CheckRawThread(const std::string& rel, const std::vector<Token>& toks,
                    std::vector<Violation>* out) {
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text != "std" || toks[i + 1].text != "::" ||
        toks[i + 2].text != "thread") {
      continue;
    }
    if (i + 3 < toks.size() && toks[i + 3].text == "::") continue;
    out->push_back({rel, toks[i].line, "exec.no_raw_thread",
                    "raw std::thread outside src/exec/; parallelize via "
                    "exec::ParallelFor / exec::ThreadPool (exec/parallel.h) "
                    "so thread lifecycle, shutdown, and observability stay "
                    "in one subsystem"});
  }
}

/// sparql.no_concrete_store: src/sparql/ must depend only on the abstract
/// rdf::TripleSource contract. Naming a concrete store (the in-memory
/// TripleStore or the disk-resident DiskTripleStore) inside the query
/// layer re-couples planning/execution to one backend and silently breaks
/// the memory/disk parity guarantee the core engine relies on.
void CheckNoConcreteStore(const std::string& rel,
                          const std::vector<Token>& toks,
                          std::vector<Violation>* out) {
  for (const Token& t : toks) {
    if (!t.ident) continue;
    if (t.text == "TripleStore" || t.text == "DiskTripleStore") {
      out->push_back({rel, t.line, "sparql.no_concrete_store",
                      "`" + t.text +
                          "` in src/sparql/; the query layer may only see "
                          "the abstract rdf::TripleSource interface "
                          "(rdf/triple_source.h)"});
    }
  }
}

/// Scope-stack analysis for unchecked Result access.
///
/// Tracks (a) identifiers declared as `Result<...> name`, and (b)
/// identifiers that appeared in `name.ok()` / LODVIZ_CHECK_OK(name) — the
/// "checked" set, per brace scope. `name.ValueOrDie()`, `*name`, and
/// `name->` require `name` to be checked in an enclosing scope. Calling
/// ValueOrDie() directly on a temporary (`Foo().ValueOrDie()`) always fires.
void CheckUncheckedResult(const std::string& rel,
                          const std::vector<Token>& toks,
                          std::vector<Violation>* out) {
  struct Scope {
    std::set<std::string> checked;
    std::set<std::string> result_vars;
  };
  std::vector<Scope> scopes(1);
  auto is_checked = [&](const std::string& name) {
    for (const Scope& s : scopes) {
      if (s.checked.count(name)) return true;
    }
    return false;
  };
  auto is_result_var = [&](const std::string& name) {
    for (const Scope& s : scopes) {
      if (s.result_vars.count(name)) return true;
    }
    return false;
  };
  const size_t n = toks.size();
  for (size_t i = 0; i < n; ++i) {
    const std::string& t = toks[i].text;
    if (t == "{") {
      scopes.emplace_back();
      continue;
    }
    if (t == "}") {
      if (scopes.size() > 1) scopes.pop_back();
      continue;
    }
    // Declaration: Result < ... > name ( = | ; | { )
    if (t == "Result" && i + 1 < n && toks[i + 1].text == "<") {
      int depth = 0;
      size_t j = i + 1;
      for (; j < n; ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">" && --depth == 0) break;
      }
      if (j + 2 < n && toks[j + 1].ident) {
        const std::string& after = toks[j + 2].text;
        if (after == "=" || after == ";" || after == "{") {
          scopes.back().result_vars.insert(toks[j + 1].text);
        }
      }
      continue;
    }
    // Check marking: name.ok(  or  CHECK_OK-style macro (name...
    if (t == "ok" && i + 1 < n && toks[i + 1].text == "(" && i >= 2 &&
        toks[i - 1].text == "." && toks[i - 2].ident) {
      scopes.back().checked.insert(toks[i - 2].text);
      continue;
    }
    if ((t == "LODVIZ_CHECK_OK" || t == "CHECK_OK" || t == "ASSERT_OK" ||
         t == "EXPECT_OK") &&
        i + 2 < n && toks[i + 1].text == "(" && toks[i + 2].ident) {
      scopes.back().checked.insert(toks[i + 2].text);
      continue;
    }
    // Use: name.ValueOrDie(  or  std::move(name).ValueOrDie(
    if (t == "ValueOrDie" && i >= 1 && toks[i - 1].text == ".") {
      std::string target;
      if (i >= 2 && toks[i - 2].ident) {
        target = toks[i - 2].text;
      } else if (i >= 2 && toks[i - 2].text == ")") {
        int depth = 0;
        for (size_t j = i - 2; j + 1 > 0; --j) {
          if (toks[j].text == ")") ++depth;
          if (toks[j].text == "(" && --depth == 0) break;
          if (toks[j].ident && toks[j].text != "std" &&
              toks[j].text != "move") {
            target = toks[j].text;
          }
        }
      }
      if (target.empty() || !is_checked(target)) {
        out->push_back(
            {rel, toks[i].line, "unchecked-result",
             target.empty()
                 ? "ValueOrDie() on a temporary; bind it and check ok() "
                   "first (or use LODVIZ_ASSIGN_OR_RETURN)"
                 : "ValueOrDie() on '" + target +
                       "' with no lexically preceding '" + target +
                       ".ok()' / CHECK_OK in scope"});
      }
      continue;
    }
    // Use: *name  (unary) or name->  on a known Result variable.
    if (t == "*" && i + 1 < n && toks[i + 1].ident &&
        is_result_var(toks[i + 1].text) && !is_checked(toks[i + 1].text)) {
      bool binary = i > 0 && (toks[i - 1].ident || toks[i - 1].text == ")" ||
                              toks[i - 1].text == "]");
      if (!binary) {
        out->push_back({rel, toks[i].line, "unchecked-result",
                        "operator* on Result '" + toks[i + 1].text +
                            "' with no preceding ok() check in scope"});
      }
      continue;
    }
    if (t == "->" && i > 0 && toks[i - 1].ident &&
        is_result_var(toks[i - 1].text) && !is_checked(toks[i - 1].text)) {
      out->push_back({rel, toks[i].line, "unchecked-result",
                      "operator-> on Result '" + toks[i - 1].text +
                          "' with no preceding ok() check in scope"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

struct Options {
  fs::path root;
  std::vector<std::string> dirs;
  bool expect_mode = false;
};

bool ShouldSkipDir(const std::string& name) {
  return name == "lint_fixtures" || name.rfind("build", 0) == 0 ||
         (!name.empty() && name[0] == '.');
}

void LintFile(const fs::path& abs, const std::string& rel, bool all_rules,
              std::vector<Violation>* out) {
  std::ifstream in(abs, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string source = buf.str();
  const std::string stripped = StripCommentsAndStrings(source);
  const std::vector<std::string> lines = SplitLines(stripped);
  const std::vector<std::string> raw_lines = SplitLines(source);
  const std::vector<Token> toks = Tokenize(stripped);
  const bool is_header = rel.size() > 2 && rel.rfind(".h") == rel.size() - 2;
  const bool in_src = all_rules || rel.rfind("src/", 0) == 0;

  if (is_header) {
    CheckHeaderGuard(rel, lines, out);
    CheckUsingNamespace(rel, toks, out);
  } else {
    CheckIncludeFirst(rel, abs, lines, raw_lines, out);
  }
  if (in_src) {
    CheckNakedNewDelete(rel, toks, out);
    if (!IoPrintAllowlisted(rel)) CheckIoPrint(rel, toks, out);
  }
  const bool clock_sanctioned = !all_rules &&
                                (rel.rfind("src/common/", 0) == 0 ||
                                 rel.rfind("src/obs/", 0) == 0);
  if (!clock_sanctioned) CheckRawClock(rel, toks, out);
  const bool thread_sanctioned = !all_rules && rel.rfind("src/exec/", 0) == 0;
  if (in_src && !thread_sanctioned) CheckRawThread(rel, toks, out);
  const bool in_sparql = all_rules || rel.rfind("src/sparql/", 0) == 0;
  if (in_sparql) CheckNoConcreteStore(rel, toks, out);
  CheckUncheckedResult(rel, toks, out);
}

/// Collects `// LINT-EXPECT: rule-a, rule-b` annotations from raw source.
std::set<std::pair<std::string, std::string>> CollectExpectations(
    const fs::path& abs, const std::string& rel) {
  std::set<std::pair<std::string, std::string>> expected;
  std::ifstream in(abs);
  std::string line;
  while (std::getline(in, line)) {
    size_t pos = line.find("LINT-EXPECT:");
    if (pos == std::string::npos) continue;
    std::string rest = line.substr(pos + 12);
    std::istringstream items(rest);
    std::string rule;
    while (std::getline(items, rule, ',')) {
      rule.erase(0, rule.find_first_not_of(" \t"));
      rule.erase(rule.find_last_not_of(" \t") + 1);
      if (!rule.empty()) expected.insert({rel, rule});
    }
  }
  return expected;
}

int Run(const Options& opts) {
  std::vector<std::pair<fs::path, std::string>> files;  // (abs, rel)
  std::error_code ec;
  std::vector<fs::path> roots;
  if (opts.dirs.empty()) {
    roots.push_back(opts.root);
  } else {
    for (const std::string& d : opts.dirs) roots.push_back(opts.root / d);
  }
  for (const fs::path& scan_root : roots) {
    if (!fs::exists(scan_root)) {
      std::cerr << "lodviz_lint: scan dir '" << scan_root.string()
                << "' does not exist\n";
      return 2;
    }
    fs::recursive_directory_iterator it(scan_root, ec), end;
    for (; it != end; it.increment(ec)) {
      if (it->is_directory() &&
          ShouldSkipDir(it->path().filename().string())) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      std::string ext = it->path().extension().string();
      if (ext != ".h" && ext != ".cc") continue;
      files.push_back(
          {it->path(), fs::relative(it->path(), opts.root).string()});
    }
  }
  std::sort(files.begin(), files.end(),
            [](const auto& a, const auto& b) { return a.second < b.second; });

  std::vector<Violation> violations;
  std::set<std::pair<std::string, std::string>> expected;
  for (const auto& [abs, rel] : files) {
    LintFile(abs, rel, opts.expect_mode, &violations);
    if (opts.expect_mode) expected.merge(CollectExpectations(abs, rel));
  }

  if (!opts.expect_mode) {
    for (const Violation& v : violations) {
      std::cout << v.file << ":" << v.line << ": [" << v.rule << "] "
                << v.message << "\n";
    }
    if (violations.empty()) {
      std::cout << "lodviz_lint: " << files.size() << " files clean\n";
      return 0;
    }
    std::cout << "lodviz_lint: " << violations.size() << " violation(s) in "
              << files.size() << " files\n";
    return 1;
  }

  // Expect mode: fired (file, rule) pairs must equal the annotated set.
  std::set<std::pair<std::string, std::string>> fired;
  for (const Violation& v : violations) fired.insert({v.file, v.rule});
  int failures = 0;
  for (const auto& [file, rule] : expected) {
    if (!fired.count({file, rule})) {
      std::cout << "MISSING: expected [" << rule << "] to fire in " << file
                << "\n";
      ++failures;
    }
  }
  for (const auto& [file, rule] : fired) {
    if (!expected.count({file, rule})) {
      std::cout << "UNEXPECTED: [" << rule << "] fired in " << file << "\n";
      ++failures;
    }
  }
  std::cout << "lodviz_lint --expect: " << expected.size() << " expected, "
            << fired.size() << " fired, " << failures << " mismatch(es)\n";
  return failures ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  opts.root = fs::current_path();
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      opts.root = fs::path(argv[++i]);
    } else if (arg == "--expect") {
      opts.expect_mode = true;
    } else if (arg == "--help") {
      std::cout << "usage: lodviz_lint [--expect] --root <dir> [dirs...]\n";
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "lodviz_lint: unknown option '" << arg << "'\n";
      return 2;
    } else {
      opts.dirs.push_back(arg);
    }
  }
  if (!fs::is_directory(opts.root)) {
    std::cerr << "lodviz_lint: --root '" << opts.root.string()
              << "' is not a directory\n";
    return 2;
  }
  if (!opts.expect_mode && opts.dirs.empty()) {
    opts.dirs = {"src", "bench", "tests", "tools"};
  }
  return Run(opts);
}
