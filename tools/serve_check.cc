// serve_check: end-to-end gate for the SPARQL serving layer (check.sh
// gate 6). Starts a real server on an ephemeral port, then asserts that
//
//   1. every query answered over HTTP is BIT-IDENTICAL to serializing a
//      direct QueryEngine execution of the same query (cold plan cache),
//   2. a second pass (warm cache, X-Plan-Cache: hit) is bit-identical to
//      the cold pass — a cached plan must never change an answer,
//   3. concurrent clients hammering the same mix all get those same
//      bytes, and
//   4. the plan cache actually served hits (hit counter advanced).
//
// Exits 0 on success; prints the first divergence and exits 1 otherwise.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "serve/http.h"
#include "serve/serialize.h"
#include "serve/server.h"

namespace {

using namespace lodviz;

/// One-shot HTTP client: connect, send, read to EOF (the server closes).
std::string Fetch(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string PercentEncode(const std::string& s) {
  static const char* hex = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(hex[c >> 4]);
      out.push_back(hex[c & 0xF]);
    }
  }
  return out;
}

std::string SparqlGet(int port, const std::string& query,
                      const std::string& format) {
  std::string req = "GET /sparql?query=" + PercentEncode(query) +
                    "&format=" + format + " HTTP/1.1\r\nHost: x\r\n\r\n";
  return Fetch(port, req);
}

int fail(const std::string& what) {
  std::cerr << "serve_check FAILED: " << what << "\n";
  return 1;
}

}  // namespace

int main() {
  core::Engine engine;
  workload::SyntheticLodOptions synth;
  synth.num_entities = 2000;
  synth.seed = 7;
  engine.LoadSynthetic(synth);

  // A mix covering the planner paths the cache must not perturb: BGP
  // joins, FILTER, OPTIONAL, ORDER BY + LIMIT, aggregation, ASK.
  const std::vector<std::string> queries = {
      "SELECT ?s ?p ?o WHERE { ?s ?p ?o } LIMIT 25",
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
      "SELECT ?s ?label WHERE { ?s rdfs:label ?label } ORDER BY ?label "
      "LIMIT 20",
      "PREFIX lod: <http://lod.example/ontology/>\n"
      "SELECT ?s ?age WHERE { ?s lod:age ?age . FILTER(?age > 50) } "
      "ORDER BY DESC(?age) ?s LIMIT 30",
      "PREFIX lod: <http://lod.example/ontology/>\n"
      "PREFIX rdfs: <http://www.w3.org/2000/01/rdf-schema#>\n"
      "SELECT ?s ?label WHERE { ?s lod:age ?a . "
      "OPTIONAL { ?s rdfs:label ?label } } ORDER BY ?s LIMIT 15",
      "PREFIX lod: <http://lod.example/ontology/>\n"
      "SELECT ?cat (COUNT(?s) AS ?n) WHERE { ?s lod:category ?cat } "
      "GROUP BY ?cat ORDER BY DESC(?n) ?cat",
      "PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>\n"
      "ASK { ?s rdf:type ?t }",
  };

  // Direct (in-process, no server, no cache) expected bytes per query,
  // in both formats.
  std::vector<std::string> expect_json;
  std::vector<std::string> expect_tsv;
  for (const std::string& q : queries) {
    Result<sparql::ResultTable> direct = engine.Query(q);
    if (!direct.ok()) {
      return fail("direct execution of [" + q +
                  "]: " + direct.status().ToString());
    }
    const bool is_ask = q.rfind("PREFIX rdf:", 0) == 0;
    expect_json.push_back(serve::ResultTableJson(direct.ValueOrDie(), is_ask));
    expect_tsv.push_back(serve::ResultTableTsv(direct.ValueOrDie(), is_ask));
  }

  auto frontend = engine.MakeFrontend(serve::FrontendOptions());
  if (!frontend.ok()) return fail(frontend.status().ToString());

  exec::ThreadPool pool(6);
  serve::Server::Options sopts;
  sopts.port = 0;  // ephemeral
  sopts.num_workers = 4;
  serve::Server server(frontend.ValueOrDie().get(), &pool, sopts);
  Status started = server.Start();
  if (!started.ok()) return fail(started.ToString());
  const int port = server.port();

  obs::Counter& hits =
      obs::MetricRegistry::Global().GetCounter("serve.plan_cache.hits");
  const uint64_t hits_before = hits.value();

  // Pass 1 (cold cache) and pass 2 (warm cache): every body must equal
  // the direct bytes, and the warm pass must be served from the cache.
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t i = 0; i < queries.size(); ++i) {
      for (const char* format : {"json", "tsv"}) {
        const std::string raw = SparqlGet(port, queries[i], format);
        Result<serve::HttpResponse> resp = serve::ParseHttpResponse(raw);
        if (!resp.ok()) {
          return fail("unparseable response for query " + std::to_string(i));
        }
        if (resp->status != 200) {
          return fail("query " + std::to_string(i) + " (" + format +
                      ") returned " + std::to_string(resp->status) + ": " +
                      resp->body);
        }
        const std::string& expected = std::strcmp(format, "json") == 0
                                          ? expect_json[i]
                                          : expect_tsv[i];
        if (resp->body != expected) {
          return fail("query " + std::to_string(i) + " (" + format +
                      ") pass " + std::to_string(pass) +
                      " diverged from direct execution:\n--- direct ---\n" +
                      expected + "\n--- served ---\n" + resp->body);
        }
        auto cache = resp->headers.find("x-plan-cache");
        if (pass == 1 && std::strcmp(format, "json") == 0 &&
            (cache == resp->headers.end() || cache->second != "hit")) {
          return fail("query " + std::to_string(i) +
                      " not served from plan cache on the warm pass");
        }
      }
    }
  }

  // Concurrent clients: same mix, every response still bit-identical.
  // (std::thread is fine here: serve_check is a tool-side HTTP client,
  // and the pool threads are all busy being the server.)
  const int kClients = 8;
  const int kRequestsPerClient = 12;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        const size_t i = static_cast<size_t>(c + r) % queries.size();
        const std::string raw = SparqlGet(port, queries[i], "json");
        Result<serve::HttpResponse> resp = serve::ParseHttpResponse(raw);
        if (!resp.ok() || resp->status != 200 ||
            resp->body != expect_json[i]) {
          errors[c] = "client " + std::to_string(c) + " request " +
                      std::to_string(r) + " diverged (query " +
                      std::to_string(i) + ")";
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (const std::string& e : errors) {
    if (!e.empty()) return fail(e);
  }

  if (hits.value() <= hits_before) {
    return fail("plan cache recorded no hits across warm + concurrent runs");
  }

  server.Stop();
  pool.Shutdown();
  std::cout << "serve_check OK: " << queries.size() << " queries x 2 formats, "
            << "cold == warm == direct, " << kClients << " x "
            << kRequestsPerClient << " concurrent requests bit-identical, "
            << (hits.value() - hits_before) << " plan-cache hits\n";
  return 0;
}
