// sparql_server: serve a dataset over the SPARQL protocol.
//
// Loads N-Triples from a file (or generates a synthetic WoD dataset),
// builds a core::Engine + serve::Frontend, and runs serve::Server on the
// shared exec::ThreadPool until stdin closes (Ctrl-D) or the process is
// signalled.
//
//   $ ./sparql_server --port 8080 --data dataset.nt
//   $ ./sparql_server --synthetic 20000 --workers 8
//   $ curl 'http://127.0.0.1:8080/sparql?query=SELECT%20*%20WHERE%20%7B%3Fs%20%3Fp%20%3Fo%7D%20LIMIT%205'
//
// Flags:
//   --port N           listen port on 127.0.0.1 (default 8080; 0 = ephemeral)
//   --data FILE        N-Triples file to load
//   --synthetic N      generate N synthetic entities instead (default 5000
//                      when no --data is given)
//   --workers N        server worker tasks (default 4)
//   --max-concurrent N admission-control limit (default 16)
//   --cache N          plan-cache capacity (default 128)
//   --time-budget-ms N per-query execution time budget (default off)
//   --max-rows N       per-query intermediate-row budget (default off)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include <fstream>
#include <iostream>
#include <sstream>

#include "core/engine.h"
#include "exec/thread_pool.h"
#include "serve/server.h"

namespace {

int64_t FlagValue(int argc, char** argv, const char* name, int64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return std::atoll(argv[i + 1]);
  }
  return fallback;
}

const char* FlagText(int argc, char** argv, const char* name) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return argv[i + 1];
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lodviz;

  core::Engine engine;
  const char* data = FlagText(argc, argv, "--data");
  if (data != nullptr) {
    std::ifstream in(data);
    if (!in) {
      std::cerr << "cannot open " << data << "\n";
      return 1;
    }
    std::ostringstream doc;
    doc << in.rdbuf();
    Status loaded = engine.LoadNTriples(doc.str());
    if (!loaded.ok()) {
      std::cerr << "load failed: " << loaded.ToString() << "\n";
      return 1;
    }
  } else {
    workload::SyntheticLodOptions synth;
    synth.num_entities = static_cast<uint64_t>(
        FlagValue(argc, argv, "--synthetic", 5000));
    engine.LoadSynthetic(synth);
  }
  std::cout << "loaded " << engine.store().size() << " triples\n";

  serve::FrontendOptions fopts;
  fopts.max_concurrent =
      static_cast<size_t>(FlagValue(argc, argv, "--max-concurrent", 16));
  fopts.plan_cache_capacity =
      static_cast<size_t>(FlagValue(argc, argv, "--cache", 128));
  const int64_t budget_ms = FlagValue(argc, argv, "--time-budget-ms", -1);
  if (budget_ms >= 0) fopts.budget.time_budget_us = budget_ms * 1000;
  fopts.budget.max_intermediate_rows =
      static_cast<uint64_t>(FlagValue(argc, argv, "--max-rows", 0));

  auto frontend = engine.MakeFrontend(fopts);
  if (!frontend.ok()) {
    std::cerr << "frontend: " << frontend.status().ToString() << "\n";
    return 1;
  }

  const size_t workers =
      static_cast<size_t>(FlagValue(argc, argv, "--workers", 4));
  exec::ThreadPool pool(workers + 1);  // acceptor + workers

  serve::Server::Options sopts;
  sopts.port = static_cast<int>(FlagValue(argc, argv, "--port", 8080));
  sopts.num_workers = workers;
  serve::Server server(frontend.ValueOrDie().get(), &pool, sopts);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "start failed: " << started.ToString() << "\n";
    return 1;
  }
  std::cout << "serving on http://127.0.0.1:" << server.port()
            << "/sparql  (metrics at /metrics; Ctrl-D stops)\n";

  // Park the main thread until stdin closes; the pool runs the server.
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.Stop();
  pool.Shutdown();
  std::cout << "stopped\n";
  return 0;
}
