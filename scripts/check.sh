#!/usr/bin/env bash
# Full correctness gate: static lint + ASan/UBSan build of the tier-1 suite
# + TSan run of the obs and exec concurrency tests.
#
#   scripts/check.sh            # lint, sanitized build + ctest, TSan obs+exec
#   scripts/check.sh --lint     # lint only (fast pre-commit check)
#
# Run from the repository root. See README "Correctness tooling".
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_BUILD=build-lint
ASAN_BUILD=build-asan
TSAN_BUILD=build-tsan
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/3] lodviz_lint =="
cmake -B "$LINT_BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$LINT_BUILD" --target lodviz_lint -j "$JOBS" >/dev/null
"$LINT_BUILD"/tools/lint/lodviz_lint --root . src bench tests tools
bash scripts/check_no_build_artifacts.sh .

if [ "${1:-}" = "--lint" ]; then
  echo "check.sh: lint OK (skipping sanitizer build)"
  exit 0
fi

echo "== [2/3] ASan+UBSan tier-1 suite =="
cmake -B "$ASAN_BUILD" -S . -C cmake/sanitize.cmake >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS"
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS"

echo "== [3/3] TSan obs + exec + sparql concurrency tests =="
# ThreadSanitizer is exclusive with ASan, so the concurrency tests get their
# own build tree. The Exec suites cover the thread pool plus every
# parallelized hot path (hetree, progressive, clustering, bundling, layout,
# sparql); the SparqlParity suites add the shared-QueryEngine regression
# (per-query stats instead of a mutable member), the memory/disk backend
# parity checks, and the SparqlParityStripedPool suite — concurrent
# Fetch/eviction and dirty write-back on the lock-striped BufferPool
# (which replaced the serialized disk adapter), so this is the race gate
# for query execution and the storage layer under it.
cmake -B "$TSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLODVIZ_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD" --target obs_test exec_test sparql_parity_test \
  -j "$JOBS"
ctest --test-dir "$TSAN_BUILD" -R '^(Obs|Exec|SparqlParity)' \
  --output-on-failure -j "$JOBS"

echo "check.sh: all gates passed"
