#!/usr/bin/env bash
# Full correctness gate, fail-fast and ordered cheapest-first:
#
#   1. static analysis  — lodviz_lint self-test + repo-wide run (seconds;
#      catches concurrency.guarded_by / lock_order / layering violations
#      before any expensive build starts)
#   2. thread-safety    — clang -Werror=thread-safety build of the library
#      (skipped with a notice when clang++ is not installed; the annotation
#      macros are no-ops elsewhere, so only clang can check them)
#   3. ASan+UBSan       — full tier-1 suite under address+undefined
#   4. TSan             — obs/exec/sparql/serve concurrency tests
#   5. mode parity      — SparqlParity suite re-run five ways on the ASan
#      build: LODVIZ_PROFILE=1 (profiling force-enabled; pins the EXPLAIN
#      ANALYZE observe-don't-perturb contract), LODVIZ_EXEC_MODE=row and
#      LODVIZ_EXEC_MODE=batch (the whole suite forced through each
#      executor; results must stay bit-identical, pinning the ExecMode
#      contract from both sides), and LODVIZ_DISK_LEAF=fixed/compressed
#      (every disk leg forced through each B+-tree leaf format)
#   6. serving parity   — serve_check drives a live HTTP server with
#      concurrent clients and asserts every answer (cold plan cache, warm
#      plan cache, and under contention) is bit-identical to a direct
#      QueryEngine execution of the same query
#
#   scripts/check.sh            # all six gates
#   scripts/check.sh --lint     # gate 1 only (fast pre-commit check)
#
# Run from the repository root. See README "Correctness tooling".
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_BUILD=build-lint
TSAFETY_BUILD=build-tsafety
ASAN_BUILD=build-asan
TSAN_BUILD=build-tsan
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/6] static analysis (lodviz_lint) =="
cmake -B "$LINT_BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$LINT_BUILD" --target lodviz_lint -j "$JOBS" >/dev/null
"$LINT_BUILD"/tools/lint/lodviz_lint --self-test
"$LINT_BUILD"/tools/lint/lodviz_lint --root . src bench tests tools
"$LINT_BUILD"/tools/lint/lodviz_lint --expect --root tests/lint_fixtures/bad
"$LINT_BUILD"/tools/lint/lodviz_lint --expect --root tests/lint_fixtures/clean
bash scripts/check_no_build_artifacts.sh .

if [ "${1:-}" = "--lint" ]; then
  echo "check.sh: lint OK (skipping thread-safety + sanitizer builds)"
  exit 0
fi

echo "== [2/6] clang -Werror=thread-safety =="
if command -v clang++ >/dev/null 2>&1; then
  # Library targets only: the annotations live in src/, and this keeps the
  # leg fast enough to run before the sanitizer builds.
  cmake -B "$TSAFETY_BUILD" -S . -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_COMPILER=clang++ -DLODVIZ_THREAD_SAFETY=ON >/dev/null
  cmake --build "$TSAFETY_BUILD" --target lodviz_common lodviz_obs \
    lodviz_exec lodviz_rdf lodviz_storage lodviz_sparql -j "$JOBS"
else
  echo "clang++ not found: skipping (GCC compiles the annotations away;" \
       "the lint gate above still enforces GUARDED_BY/lock-order statically)"
fi

echo "== [3/6] ASan+UBSan tier-1 suite =="
cmake -B "$ASAN_BUILD" -S . -C cmake/sanitize.cmake >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS"
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS"

echo "== [4/6] TSan obs + exec + sparql + serve concurrency tests =="
# ThreadSanitizer is exclusive with ASan, so the concurrency tests get their
# own build tree. The Exec suites cover the thread pool plus every
# parallelized hot path (hetree, progressive, clustering, bundling, layout,
# sparql); the SparqlParity suites add the shared-QueryEngine regression
# (per-query stats instead of a mutable member), the memory/disk backend
# parity checks, and the SparqlParityStripedPool suite — concurrent
# Fetch/eviction and dirty write-back on the lock-striped BufferPool
# (which replaced the serialized disk adapter), so this is the race gate
# for query execution and the storage layer under it.
# The Serve suites run the full HTTP server (acceptor + worker tasks on
# the shared pool, bounded fd queue, plan cache) under TSan — the race
# gate for the serving layer's front door.
cmake -B "$TSAN_BUILD" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DLODVIZ_SANITIZE=thread >/dev/null
cmake --build "$TSAN_BUILD" --target obs_test exec_test sparql_parity_test \
  serve_test -j "$JOBS"
ctest --test-dir "$TSAN_BUILD" -R '^(Obs|Exec|SparqlParity|Serve)' \
  --output-on-failure -j "$JOBS"

echo "== [5/6] SparqlParity under forced profiling and forced exec modes =="
# LODVIZ_PROFILE=1 turns per-operator profiling on for every query in the
# process (sparql/engine.cc reads it once). The parity suite asserts
# memory/disk/forced-strategy executions stay bit-identical, so running it
# under forced profiling pins that the profiler only observes — any row it
# adds, drops, or reorders fails this gate. Reuses the ASan build: the
# instrumented paths also get leak/UB coverage that way.
LODVIZ_PROFILE=1 ctest --test-dir "$ASAN_BUILD" -R '^SparqlParity' \
  --output-on-failure -j "$JOBS"
# LODVIZ_EXEC_MODE forces every engine in the process through one executor
# (sparql/engine.cc, read once, overriding per-engine Options). Running the
# full parity suite once per mode proves the row engine still answers
# everything correctly (it is the reference the batch engine is checked
# against) and that the batch engine survives the whole memory/disk/
# join-strategy/thread-count grid — under ASan, so either executor's
# memory bugs surface here.
LODVIZ_EXEC_MODE=row ctest --test-dir "$ASAN_BUILD" -R '^SparqlParity' \
  --output-on-failure -j "$JOBS"
LODVIZ_EXEC_MODE=batch ctest --test-dir "$ASAN_BUILD" -R '^SparqlParity' \
  --output-on-failure -j "$JOBS"
# LODVIZ_DISK_LEAF forces the disk B+-tree leaf format for every store the
# process creates (storage/disk_triple_store.cc, read per Create). The
# parity suite's memory/disk legs must stay bit-identical under both the
# fixed 24-byte layout and the delta-compressed varint layout — a decode
# bug in either format shows up here as a row-level diff, under ASan.
LODVIZ_DISK_LEAF=fixed ctest --test-dir "$ASAN_BUILD" -R '^SparqlParity' \
  --output-on-failure -j "$JOBS"
LODVIZ_DISK_LEAF=compressed ctest --test-dir "$ASAN_BUILD" -R '^SparqlParity' \
  --output-on-failure -j "$JOBS"

echo "== [6/6] serving layer end-to-end parity (serve_check) =="
# serve_check starts a real server on an ephemeral port and asserts that
# HTTP answers — cold cache, warm cache, and under 8 concurrent clients —
# are bit-identical to direct in-process execution, and that the plan
# cache actually served hits. Runs from the ASan build so the whole
# serving stack (sockets, HTTP parsing, cache, admission gate) gets
# address/UB coverage while being exercised end to end.
cmake --build "$ASAN_BUILD" --target serve_check -j "$JOBS"
"$ASAN_BUILD"/tools/serve_check

echo "check.sh: all gates passed"
