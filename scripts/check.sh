#!/usr/bin/env bash
# Full correctness gate: static lint + ASan/UBSan build of the tier-1 suite.
#
#   scripts/check.sh            # lint, then sanitized build + ctest
#   scripts/check.sh --lint     # lint only (fast pre-commit check)
#
# Run from the repository root. See README "Correctness tooling".
set -euo pipefail
cd "$(dirname "$0")/.."

LINT_BUILD=build-lint
ASAN_BUILD=build-asan
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "== [1/2] lodviz_lint =="
cmake -B "$LINT_BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$LINT_BUILD" --target lodviz_lint -j "$JOBS" >/dev/null
"$LINT_BUILD"/tools/lint/lodviz_lint --root . src bench tests tools
bash scripts/check_no_build_artifacts.sh .

if [ "${1:-}" = "--lint" ]; then
  echo "check.sh: lint OK (skipping sanitizer build)"
  exit 0
fi

echo "== [2/2] ASan+UBSan tier-1 suite =="
cmake -B "$ASAN_BUILD" -S . -C cmake/sanitize.cmake >/dev/null
cmake --build "$ASAN_BUILD" -j "$JOBS"
ctest --test-dir "$ASAN_BUILD" --output-on-failure -j "$JOBS"

echo "check.sh: all gates passed"
