#!/usr/bin/env bash
# Guard against build artifacts sneaking back into version control (the
# seed tree shipped a full build/ directory, binaries included).
# Usage: check_no_build_artifacts.sh [repo-root]
set -u
root="${1:-.}"

if ! command -v git >/dev/null 2>&1 ||
   ! git -C "$root" rev-parse --is-inside-work-tree >/dev/null 2>&1; then
  echo "check_no_build_artifacts: not a git checkout; skipping"
  exit 0
fi

bad=$(git -C "$root" ls-files -- \
  'build/**' 'build-*/**' 'cmake-build-*/**' \
  '*.o' '*.a' '*.so' '*.out' \
  '**/CMakeCache.txt' '**/CTestTestfile.cmake' '**/LastTest.log')

if [ -n "$bad" ]; then
  echo "check_no_build_artifacts: tracked build artifacts found:"
  echo "$bad"
  exit 1
fi
echo "check_no_build_artifacts: OK"
