#!/usr/bin/env bash
# Machine-readable bench telemetry snapshot: builds the fast experiment
# benches in Release and runs them with LODVIZ_BENCH_JSON set, so each one
# writes a BENCH_<id>.json file (metrics snapshot with p50/p95/p99
# histograms + Chrome trace-event array; see bench/bench_util.h Telemetry).
#
#   scripts/bench_snapshot.sh [output-dir]     (default: repo root)
#
# Open the "traceEvents" array of any snapshot in https://ui.perfetto.dev
# to see the span tree. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_DIR="${1:-$PWD}"
mkdir -p "$OUT_DIR"
BUILD=build-bench
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

# The fast subset: each finishes in well under a minute on a laptop. The
# longer benches (e7 disk exploration, ...) accept the same env var; run
# them by hand when their numbers are needed. e10's snapshot includes the
# memory-vs-disk backend phases (per-query mem_qN_*/disk_qN_* latency,
# rows/s, and buffer-pool hit rate), the Part D thread-scaling phases
# (disk_bgp_{serialized,striped}_{1,4}t_ms over the lock-striped buffer
# pool plus the disk_bgp_4t_striped_speedup ratio), and the Part E join
# strategy phases (disk_join_{nlj,hash}_ms); e7 records the same phase
# keys for its exploration queries.
BENCHES=(e1_sampling e5_hetree e10_sparql)

echo "== bench_snapshot: building ${BENCHES[*]} =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build "$BUILD" --target "${BENCHES[@]}" -j "$JOBS" >/dev/null

for b in "${BENCHES[@]}"; do
  echo "== bench_snapshot: $b =="
  LODVIZ_BENCH_JSON="$OUT_DIR" "$BUILD/bench/$b"
done

echo "bench_snapshot: wrote $(ls "$OUT_DIR"/BENCH_*.json | wc -l) snapshot(s) to $OUT_DIR"
