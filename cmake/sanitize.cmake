# Cache preload for one-command reproducible sanitizer builds:
#
#   cmake -B build-asan -S . -C cmake/sanitize.cmake
#   cmake --build build-asan -j && ctest --test-dir build-asan
#
# ASan + UBSan over the full tier-1 suite, warnings promoted to errors.
# For TSan instead: cmake -B build-tsan -S . -DLODVIZ_SANITIZE=thread
set(CMAKE_BUILD_TYPE RelWithDebInfo CACHE STRING "")
set(LODVIZ_SANITIZE "address;undefined" CACHE STRING "")
set(LODVIZ_WERROR ON CACHE BOOL "")
# Under clang, also hard-fail on thread-safety annotation violations
# (LODVIZ_GUARDED_BY discipline); a warning+no-op elsewhere.
set(LODVIZ_THREAD_SAFETY ON CACHE BOOL "")
