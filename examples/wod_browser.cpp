// The classic WoD-browser workflow (Section 3.1: Haystack, Disco,
// Tabulator, LodLive): load Turtle, get a schema-level summary of the
// source (LODeX style), describe resources, follow links, let an
// interest model steer you to similar entities, and export a derived
// graph with CONSTRUCT.
//
//   $ ./wod_browser

#include <iostream>

#include "core/engine.h"
#include "explore/browser.h"
#include "rdf/vocab.h"
#include "explore/interest.h"
#include "explore/summary.h"
#include "onto/containment.h"
#include "onto/hierarchy.h"
#include "viz/svg.h"
#include "workload/synthetic_lod.h"

int main() {
  using namespace lodviz;

  core::Engine engine;

  // A hand-written Turtle snippet layered over synthetic bulk data.
  lodviz::Status status = engine.LoadTurtle(R"(
@prefix ex: <http://lod.example/entity/> .
@prefix ont: <http://lod.example/ontology/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:special a ont:Person ;
    rdfs:label "The special one" ;
    ont:age 33.5 ;
    ont:knows ex:0 , ex:1 , ex:2 .

ont:Person rdfs:subClassOf ont:Agent .
ont:Organization rdfs:subClassOf ont:Agent .
ont:Place rdfs:subClassOf ont:SpatialThing .
ont:Agent rdfs:label "Agent" .
ont:SpatialThing rdfs:label "Spatial thing" .
)");
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  workload::SyntheticLodOptions lod;
  lod.num_entities = 5000;
  lod.seed = 77;
  engine.LoadSynthetic(lod);

  // 1. What is this source about? (visual summary, LODeX [19])
  explore::SchemaSummary summary = explore::BuildSchemaSummary(engine.store());
  std::cout << summary.ToString(6) << "\n";

  // 2. Describe a resource and navigate a link (Tabulator-style).
  explore::ResourceBrowser browser(&engine.store());
  rdf::TermId special = engine.store().dict().Lookup(
      rdf::Term::Iri("http://lod.example/entity/special"));
  auto view = browser.Navigate(special);
  if (!view.ok()) {
    std::cerr << view.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Resource view:\n" << browser.Render(*view) << "\n";

  rdf::TermId first_link = rdf::kInvalidTermId;
  for (const auto& row : view->outgoing) {
    if (row.link != rdf::kInvalidTermId) {
      first_link = row.link;
      break;
    }
  }
  if (first_link != rdf::kInvalidTermId) {
    auto next = browser.Navigate(first_link);
    if (next.ok()) {
      std::cout << "Followed first link:\n" << browser.Render(*next, 6) << "\n";
    }
    auto back = browser.Back();
    if (back.ok()) {
      std::cout << "(went back to " << back->label << ")\n\n";
    }
  }

  // 3. Interest-driven steering: mark a few 'Place' entities, see what
  //    the model learns and whom it suggests next.
  explore::InterestModel interest(&engine.store());
  const auto& dict = engine.store().dict();
  rdf::TermId type_pred = dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
  rdf::TermId place = dict.Lookup(rdf::Term::Iri(workload::lod::kPlace));
  int marked = 0;
  engine.store().Scan({rdf::kInvalidTermId, type_pred, place},
                      [&](const rdf::Triple& t) {
                        interest.MarkInteresting(t.s);
                        return ++marked < 6;
                      });
  std::cout << "Marked " << interest.num_marked()
            << " places as interesting. Learned signals:\n";
  for (const auto& signal : interest.TopSignals(3)) {
    std::cout << "  " << signal.predicate_label << " = "
              << signal.value_label << " (lift " << signal.lift << ")\n";
  }
  auto suggestions = interest.SuggestEntities(3);
  std::cout << "Suggested entities to look at next:\n";
  for (const auto& [entity, score] : suggestions) {
    std::cout << "  " << dict.term(entity).lexical << " (score " << score
              << ")\n";
  }

  // 4. Export a derived graph with CONSTRUCT.
  auto derived = engine.QueryGraph(
      "PREFIX ont: <http://lod.example/ontology/> "
      "CONSTRUCT { ?b ont:knownBy ?a . } WHERE { ?a ont:knows ?b . } ");
  if (derived.ok()) {
    std::cout << "\nCONSTRUCTed inverse-link graph: " << derived->size()
              << " triples (e.g. "
              << (derived->empty()
                      ? std::string("-")
                      : derived->front().subject.lexical + " knownBy " +
                            derived->front().object.lexical)
              << ").\n";
  }

  // 5. Ontology view (Section 3.5): class hierarchy + CropCircles.
  onto::ClassHierarchy hierarchy =
      onto::ClassHierarchy::Extract(engine.store());
  std::cout << "\nClass hierarchy:\n" << hierarchy.ToString(10);
  auto key_concepts = hierarchy.KeyConcepts(3);
  std::cout << "Key concepts:";
  for (int32_t idx : key_concepts) {
    std::cout << " " << hierarchy.classes()[idx].label;
  }
  std::cout << "\n";
  auto circles = onto::CropCirclesLayout(hierarchy);
  viz::SvgWriter onto_svg(600, 600);
  for (const auto& c : circles) {
    onto_svg.Circle(c.cx, c.cy, c.r * 600, "#1f77b4",
                    0.15 + 0.1 * hierarchy.classes()[c.class_idx].depth);
  }
  std::cout << "CropCircles containment layout: " << circles.size()
            << " nested circles (SVG " << onto_svg.ToString().size()
            << " bytes).\n";

  // 6. DESCRIBE over SPARQL for machine consumption.
  auto described = engine.QueryGraph(
      "DESCRIBE <http://lod.example/entity/special>");
  if (described.ok()) {
    std::cout << "DESCRIBE returned " << described->size()
              << " triples about the special resource.\n";
  }
  return 0;
}
