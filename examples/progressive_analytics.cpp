// Approximate + incremental analytics (Section 2 of the survey):
//  - progressive aggregation with shrinking 95% confidence intervals
//    (online aggregation / sampleAction style),
//  - M4 pixel-perfect line-chart reduction (VDDA),
//  - adaptive indexing (database cracking) across an exploration session.
//
//   $ ./progressive_analytics

#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "explore/progressive.h"
#include "storage/cracking.h"
#include "viz/canvas.h"
#include "viz/m4.h"
#include "viz/renderers.h"
#include "workload/scenario.h"

int main() {
  using namespace lodviz;

  // ---- 1. Progressive aggregation ----
  std::cout << "== Progressive aggregation ==\n";
  Rng rng(42);
  std::vector<double> population;
  population.reserve(2000000);
  for (int i = 0; i < 2000000; ++i) {
    population.push_back(rng.Normal(250.0, 60.0));
  }
  auto trajectory =
      explore::RunProgressive(population, 20000, /*epsilon=*/0.001, 7);
  std::cout << "Estimating the mean of 2,000,000 values:\n";
  for (const auto& est : trajectory) {
    std::printf("  after %8llu rows: mean = %7.2f +/- %5.3f%s\n",
                static_cast<unsigned long long>(est.rows_seen), est.mean,
                est.ci95, est.complete ? " (exact)" : "");
  }
  std::cout << "Stopped after "
            << 100.0 * static_cast<double>(trajectory.back().rows_seen) /
                   static_cast<double>(population.size())
            << "% of the data.\n\n";

  // ---- 2. M4 pixel-perfect reduction ----
  std::cout << "== M4 line-chart reduction ==\n";
  auto series = workload::RandomWalkSeries(1000000, 3);
  const int width = 320, height = 120;

  Stopwatch sw;
  viz::Canvas raw(width, height);
  viz::RenderLineChart(&raw, series);
  double raw_ms = sw.ElapsedMillis();

  sw.Reset();
  auto reduced = viz::M4Downsample(series, width);
  viz::Canvas m4(width, height);
  viz::RenderLineChart(&m4, reduced);
  double m4_ms = sw.ElapsedMillis();

  uint64_t differing = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if ((raw.At(x, y) > 0) != (m4.At(x, y) > 0)) ++differing;
    }
  }
  std::printf(
      "1,000,000 points -> %zu M4 points (%.2f%%); render %0.1f ms -> %0.1f "
      "ms; differing pixels: %llu of %llu touched\n",
      reduced.size(), 100.0 * reduced.size() / series.size(), raw_ms, m4_ms,
      static_cast<unsigned long long>(differing),
      static_cast<unsigned long long>(raw.pixels_touched()));
  std::cout << "The reduced chart:\n" << m4.ToAscii(78) << "\n";

  // ---- 3. Adaptive indexing across an exploration session ----
  std::cout << "== Database cracking during exploration ==\n";
  std::vector<double> column;
  column.reserve(2000000);
  for (int i = 0; i < 2000000; ++i) column.push_back(rng.UniformDouble(0, 1e6));
  storage::CrackerColumn cracker(column);

  auto queries = workload::ExplorationRangeScenario(0, 1e6, 40, 11);
  uint64_t previous = 0;
  std::cout << "Elements physically reorganized per query (zoom session):\n  ";
  for (size_t q = 0; q < queries.size(); ++q) {
    cracker.CountRange(queries[q].lo, queries[q].hi);
    uint64_t work = cracker.elements_touched() - previous;
    previous = cracker.elements_touched();
    if (q < 12 || q + 3 >= queries.size()) {
      std::cout << work << " ";
    } else if (q == 12) {
      std::cout << "... ";
    }
  }
  std::cout << "\nThe column indexes itself exactly where the user explores: "
            << cracker.num_cracks() << " crack boundaries after "
            << queries.size() << " queries.\n";
  return 0;
}
