// Statistical Linked Data (Section 3.3): an RDF Data Cube is extracted
// from triples, browsed as a pivot table (OpenCube style), sliced/rolled
// up (OLAP), and a HETree provides multilevel drill-down over a numeric
// property (SynopsViz style).
//
//   $ ./statistics_dashboard

#include <cmath>
#include <iostream>

#include "common/random.h"
#include "cube/data_cube.h"
#include "core/engine.h"
#include "hier/hetree.h"
#include "stats/histogram.h"
#include "stats/moments.h"
#include "workload/synthetic_lod.h"

int main() {
  using namespace lodviz;
  using rdf::Term;

  core::Engine engine;

  // Build a small statistical dataset: population observations by region
  // and year (qb:-style).
  const char* regions[] = {"north", "south", "east", "west"};
  const char* years[] = {"2012", "2013", "2014", "2015"};
  lodviz::Rng rng(5);
  int obs_id = 0;
  for (const char* region : regions) {
    double base = 100.0 + rng.UniformDouble(0, 400);
    for (const char* year : years) {
      base *= 1.0 + rng.UniformDouble(-0.05, 0.12);
      std::string obs = "http://stats.example/obs/" + std::to_string(obs_id++);
      auto& store = engine.store();
      store.Add(Term::Iri(obs), Term::Iri("http://stats.example/region"),
                Term::Iri(std::string("http://stats.example/region/") + region));
      store.Add(Term::Iri(obs), Term::Iri("http://stats.example/year"),
                Term::Literal(year));
      store.Add(Term::Iri(obs), Term::Iri("http://stats.example/population"),
                Term::DoubleLiteral(base));
    }
  }

  auto cube = cube::DataCube::FromStore(
      engine.store(), {"http://stats.example/region", "http://stats.example/year"},
      {"http://stats.example/population"});
  if (!cube.ok()) {
    std::cerr << cube.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Data cube: " << cube->size() << " observations, "
            << cube->dimension_names().size() << " dimensions.\n\n";

  // Pivot: region x year.
  auto pivot = cube->Pivot(0, 1, 0, cube::Agg::kSum);
  std::cout << "Population pivot (region x year):\n"
            << cube->PivotToString(pivot) << "\n";

  // Roll-up to region totals.
  std::cout << "Roll-up to regions (sum over years):\n";
  for (const auto& row : cube->RollUp({0}, 0, cube::Agg::kSum)) {
    std::cout << "  " << cube->ValueLabel(row.group[0]) << ": " << row.value
              << " (" << row.count << " observations)\n";
  }

  // Slice: only 2015.
  rdf::TermId y2015 = engine.store().dict().Lookup(Term::Literal("2015"));
  cube::DataCube slice = cube->Slice(1, y2015);
  std::cout << "\nSlice year=2015 keeps " << slice.size()
            << " observations across " << slice.dimension_names().size()
            << " remaining dimension(s).\n\n";

  // Multilevel numeric exploration with a HETree over a bigger dataset.
  workload::SyntheticLodOptions lod;
  lod.num_entities = 100000;
  lod.with_geo = false;
  engine.LoadSynthetic(lod);

  hier::HETree::Options hopts;
  hopts.kind = hier::HETree::Kind::kContent;
  hopts.fanout = 5;
  hopts.leaf_capacity = 200;
  hopts.lazy = true;  // ICO: build only what the user visits
  auto tree = engine.BuildHierarchy("http://lod.example/ontology/age", hopts);
  if (!tree.ok()) {
    std::cerr << tree.status().ToString() << "\n";
    return 1;
  }

  const auto& root = tree->node(tree->root());
  std::cout << "HETree over 'age' of " << root.stats.count
            << " entities: mean " << root.stats.mean << ", stddev "
            << std::sqrt(root.stats.variance) << ".\n";
  std::cout << "Drill-down (each level materialized on demand):\n";
  hier::HETree::NodeId current = tree->root();
  for (int depth = 0; depth < 3 && !tree->node(current).is_leaf; ++depth) {
    auto children = tree->Children(current);
    std::cout << "  depth " << depth + 1 << ":";
    for (auto c : children) {
      const auto& node = tree->node(c);
      std::cout << " [" << node.lo << ".." << node.hi << "]=" << node.stats.count;
    }
    std::cout << "\n";
    current = children[children.size() / 2];
  }
  std::cout << "Materialized " << tree->materialized_nodes()
            << " nodes out of a full tree of thousands (ICO).\n\n";

  // Exact range statistics from prefix sums, no full scan.
  auto range = tree->RangeStats(30.0, 50.0);
  std::cout << "Ages in [30, 50]: " << range.count << " entities, mean "
            << range.mean << " (computed in O(log n)).\n";

  // A quick ASCII histogram of the same property.
  std::vector<double> ages;
  for (const auto& item : tree->LeafItems(tree->root())) {
    (void)item;
    break;  // root is not a leaf; collect via RangeStats-backed histogram
  }
  auto result = engine.Query(
      "SELECT (MIN(?age) AS ?lo) (MAX(?age) AS ?hi) WHERE { ?s "
      "<http://lod.example/ontology/age> ?age . }");
  if (result.ok()) {
    std::cout << "\nAge extremes via SPARQL:\n" << result->ToString();
  }
  return 0;
}
