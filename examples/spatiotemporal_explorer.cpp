// Spatio-temporal exploration at scale (Section 4's Nanocubes direction
// [96]): one million geo-tagged, timestamped events are indexed once;
// every viewport + time-brush + category query then answers in
// microseconds — pan, zoom, brush, and filter interactively.
//
//   $ ./spatiotemporal_explorer

#include <cstdio>
#include <iostream>

#include "common/random.h"
#include "common/stopwatch.h"
#include "geo/nanocube.h"
#include "viz/canvas.h"

int main() {
  using namespace lodviz;

  // One million events around five city hubs, with a weekly rhythm in
  // category 0 (think: geo-tagged observations from a WoD source).
  Rng rng(2016);
  static constexpr double kHubs[5][2] = {
      {0.2, 0.3}, {0.7, 0.6}, {0.4, 0.8}, {0.85, 0.2}, {0.55, 0.45}};
  std::vector<geo::StEvent> events(1000000);
  for (auto& e : events) {
    const double* hub = kHubs[rng.Uniform(5)];
    e.position = {std::clamp(hub[0] + rng.Normal(0, 0.04), 0.0, 1.0),
                  std::clamp(hub[1] + rng.Normal(0, 0.04), 0.0, 1.0)};
    e.category = static_cast<uint16_t>(rng.Uniform(3));
    // Category 0 clusters in the second half of the time range.
    e.time = e.category == 0 ? 0.5 + 0.5 * rng.UniformDouble()
                             : rng.UniformDouble();
  }

  geo::SpatioTemporalCube::Options opts;
  opts.max_zoom = 9;
  opts.time_bins = 128;
  opts.num_categories = 3;
  Stopwatch sw;
  auto cube = geo::SpatioTemporalCube::Build(events, opts);
  if (!cube.ok()) {
    std::cerr << cube.status().ToString() << "\n";
    return 1;
  }
  std::printf("Indexed %llu events in %.0f ms (%.1f MB index).\n\n",
              static_cast<unsigned long long>(cube->total_events()),
              sw.ElapsedMillis(), cube->MemoryUsage() / 1048576.0);

  // Density overview: count per zoom-5 tile, drawn as shaded cells.
  viz::Canvas overview(64, 32);
  for (uint32_t x = 0; x < 32; ++x) {
    for (uint32_t y = 0; y < 32; ++y) {
      geo::Rect tile{x / 32.0 + 1e-6, y / 32.0 + 1e-6, (x + 1) / 32.0 - 1e-6,
                     (y + 1) / 32.0 - 1e-6};
      uint64_t count = cube->Count(5, tile, 0.0, 1.0);
      for (uint64_t k = 0; k < count / 500; ++k) {
        overview.DrawPoint((x + 0.5) / 32.0, (y + 0.5) / 32.0);
      }
    }
  }
  std::cout << "Event density overview (zoom 5):\n" << overview.ToAscii(64)
            << "\n";

  // Interactive-style session: zoom into the densest hub and brush time.
  geo::Rect viewport{0.62, 0.52, 0.78, 0.68};
  sw.Reset();
  uint64_t in_view = cube->Count(8, viewport, 0.0, 1.0);
  double q1_us = sw.ElapsedMicros();
  std::printf("Viewport around hub 2: %llu events (%.0f us)\n",
              static_cast<unsigned long long>(in_view), q1_us);

  sw.Reset();
  uint64_t late = cube->Count(8, viewport, 0.75, 1.0);
  double q2_us = sw.ElapsedMicros();
  std::printf("  ... in the last quarter of the time range: %llu (%.0f us)\n",
              static_cast<unsigned long long>(late), q2_us);

  sw.Reset();
  uint64_t cat0 = cube->Count(8, viewport, 0.75, 1.0, uint16_t{0});
  double q3_us = sw.ElapsedMicros();
  std::printf("  ... of category 0 only: %llu (%.0f us)\n",
              static_cast<unsigned long long>(cat0), q3_us);

  // Time histogram for the brushing widget.
  auto series = cube->TimeSeries(8, viewport, uint16_t{0});
  uint64_t peak = 1;
  for (uint64_t v : series) peak = std::max(peak, v);
  std::cout << "\nCategory-0 time histogram in the viewport (note the "
               "second-half surge):\n  ";
  for (size_t b = 0; b < series.size(); b += 4) {
    static const char kShades[] = " .:-=+*#%@";
    int shade = static_cast<int>(9.0 * series[b] / peak);
    std::cout << kShades[std::clamp(shade, 0, 9)];
  }
  std::cout << "\n\nEvery query touched only index cells — the raw million "
               "events were never rescanned.\n";
  return 0;
}
