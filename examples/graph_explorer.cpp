// Scalable graph exploration (Sections 3.4 and 4): a 50k-node entity
// graph is abstracted into a hierarchy of super-graphs, explored
// top-down, and the visible portion is queried through a spatial index —
// the graphVizdb / ASK-GraphView recipe, end to end.
//
//   $ ./graph_explorer [output.svg]

#include <iostream>

#include "core/engine.h"
#include "geo/rtree.h"
#include "graph/layout.h"
#include "graph/sampling.h"
#include "graph/supergraph.h"
#include "viz/canvas.h"
#include "viz/renderers.h"
#include "viz/svg.h"
#include "workload/synthetic_lod.h"

int main(int argc, char** argv) {
  using namespace lodviz;

  core::Engine engine;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 50000;
  lod.links_per_entity = 2.5;
  lod.with_geo = false;
  lod.with_dates = false;
  engine.LoadSynthetic(lod);

  graph::Graph g = engine.BuildGraph();
  std::cout << "Entity graph: " << g.num_nodes() << " nodes, "
            << g.num_edges() << " edges, max degree " << g.MaxDegree()
            << ".\n";
  std::cout << "Full force-directed layout would need positions for every "
            << "node; instead we build an abstraction hierarchy.\n\n";

  // 1. Hierarchical abstraction.
  graph::GraphHierarchy::Options hopts;
  hopts.target_top_nodes = 24;
  graph::GraphHierarchy hierarchy = graph::GraphHierarchy::Build(g, hopts);
  std::cout << "Hierarchy levels (base -> top):\n";
  for (size_t l = 0; l < hierarchy.num_levels(); ++l) {
    std::cout << "  level " << l << ": "
              << hierarchy.level(l).graph.num_nodes() << " nodes, "
              << hierarchy.level(l).graph.num_edges() << " edges\n";
  }

  // 2. Lay out and render only the top level.
  const auto& top = hierarchy.top();
  graph::ForceLayoutOptions lopts;
  lopts.iterations = 80;
  graph::Layout layout = graph::ForceDirectedLayout(top.graph, lopts);

  viz::Canvas canvas(400, 200);
  viz::RenderGraph(&canvas, top.graph, layout);
  std::cout << "\nTop-level overview (" << top.graph.num_nodes()
            << " super-nodes; sizes are base-node counts):\n"
            << canvas.ToAscii(78);
  for (graph::NodeId u = 0; u < std::min<graph::NodeId>(5, top.graph.num_nodes());
       ++u) {
    std::cout << "  super-node " << u << " represents "
              << top.base_node_counts[u] << " entities\n";
  }

  // 3. Drill into the biggest super-node.
  size_t top_level = hierarchy.num_levels() - 1;
  graph::NodeId biggest = 0;
  for (graph::NodeId u = 0; u < top.graph.num_nodes(); ++u) {
    if (top.base_node_counts[u] > top.base_node_counts[biggest]) biggest = u;
  }
  graph::Graph expanded = hierarchy.ExpandNode(top_level, biggest);
  std::cout << "\nExpanding super-node " << biggest << " reveals "
            << expanded.num_nodes() << " nodes / " << expanded.num_edges()
            << " edges — small enough to lay out directly.\n";

  // 4. Spatial indexing of the expanded layout: pan/zoom = window query.
  graph::Layout sub_layout = graph::ForceDirectedLayout(
      expanded, graph::ForceLayoutOptions{.iterations = 40, .seed = 2});
  geo::RTree rtree;
  std::vector<geo::RTree::Entry> entries;
  for (graph::NodeId u = 0; u < expanded.num_nodes(); ++u) {
    entries.push_back({geo::Rect::FromPoint(sub_layout[u]), u});
  }
  rtree.BulkLoad(entries);
  geo::Rect viewport{0.25, 0.25, 0.5, 0.5};
  auto visible = rtree.SearchAll(viewport);
  std::cout << "Viewport (quarter of the canvas) contains " << visible.size()
            << " nodes; the R-tree visited " << rtree.nodes_visited
            << " index nodes to find them.\n";

  // 5. As an alternative reduction: forest-fire sample of the base graph.
  auto sampled_nodes = graph::ForestFireSample(g, 500, 7);
  graph::Graph sample = g.InducedSubgraph(sampled_nodes);
  std::cout << "\nForest-fire sample: " << sample.num_nodes() << " nodes / "
            << sample.num_edges() << " edges preserve the community shape "
            << "for quick previews.\n";

  // 6. Optional SVG export of the overview.
  if (argc > 1) {
    viz::SvgWriter svg(900, 600);
    for (const auto& [u, v] : top.graph.edges()) {
      svg.Line(layout[u].x, layout[u].y, layout[v].x, layout[v].y, "#888",
               1.0, 0.5);
    }
    for (graph::NodeId u = 0; u < top.graph.num_nodes(); ++u) {
      double r = 3.0 + 10.0 * static_cast<double>(top.base_node_counts[u]) /
                           static_cast<double>(g.num_nodes());
      svg.Circle(layout[u].x, layout[u].y, r, "#1f77b4", 0.85);
    }
    if (svg.WriteFile(argv[1])) {
      std::cout << "\nWrote overview SVG to " << argv[1] << "\n";
    }
  }
  return 0;
}
