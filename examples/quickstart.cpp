// Quickstart: load RDF, query it with SPARQL, profile it, get a
// visualization recommendation, and render it — the minimal lodviz loop.
//
//   $ ./quickstart

#include <iostream>

#include "core/engine.h"
#include "core/ldvm.h"

int main() {
  using namespace lodviz;

  core::Engine engine;

  // 1. Load a small Linked Data snippet (N-Triples).
  const char* doc = R"(
<http://ex.org/athens> <http://www.w3.org/2000/01/rdf-schema#label> "Athens"@en .
<http://ex.org/athens> <http://www.w3.org/2003/01/geo/wgs84_pos#lat> "37.98"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://ex.org/athens> <http://www.w3.org/2003/01/geo/wgs84_pos#long> "23.72"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://ex.org/athens> <http://ex.org/population> "664046"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/melbourne> <http://www.w3.org/2000/01/rdf-schema#label> "Melbourne"@en .
<http://ex.org/melbourne> <http://www.w3.org/2003/01/geo/wgs84_pos#lat> "-37.81"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://ex.org/melbourne> <http://www.w3.org/2003/01/geo/wgs84_pos#long> "144.96"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://ex.org/melbourne> <http://ex.org/population> "5078193"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://ex.org/bordeaux> <http://www.w3.org/2000/01/rdf-schema#label> "Bordeaux"@en .
<http://ex.org/bordeaux> <http://www.w3.org/2003/01/geo/wgs84_pos#lat> "44.84"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://ex.org/bordeaux> <http://www.w3.org/2003/01/geo/wgs84_pos#long> "-0.58"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://ex.org/bordeaux> <http://ex.org/population> "257068"^^<http://www.w3.org/2001/XMLSchema#integer> .
)";
  lodviz::Status status = engine.LoadNTriples(doc);
  if (!status.ok()) {
    std::cerr << "load failed: " << status.ToString() << "\n";
    return 1;
  }
  std::cout << "Loaded " << engine.store().size() << " triples.\n\n";

  // 2. SPARQL: cities with population over 500k.
  auto result = engine.Query(R"(
      PREFIX ex: <http://ex.org/>
      SELECT ?city ?pop WHERE {
        ?city <http://ex.org/population> ?pop .
        FILTER(?pop > 500000)
      } ORDER BY DESC(?pop))");
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "Cities with population > 500k:\n"
            << result->ToString() << "\n";

  // 3. Profile the dataset.
  auto profile = engine.Profile();
  if (!profile.ok()) return 1;
  std::cout << "Dataset profile: " << profile->triple_count << " triples, "
            << profile->subject_count << " entities, spatial="
            << (profile->has_spatial ? "yes" : "no") << "\n\n";

  // 4. Ask the recommender what to draw.
  auto recommendations = engine.Recommend(3);
  std::cout << "Recommended visualizations:\n";
  for (const auto& rec : recommendations) {
    std::cout << "  " << viz::VisKindName(rec.spec.kind) << " (score "
              << rec.score << "): " << rec.reason << "\n";
  }
  std::cout << "\n";

  // 5. Render the top recommendation headlessly (here: a map).
  if (!recommendations.empty()) {
    auto view = engine.Render(recommendations.front().spec, /*with_svg=*/true);
    if (view.ok()) {
      std::cout << "Rendered '" << viz::VisKindName(view->spec.kind)
                << "': " << view->render.elements_drawn
                << " elements drawn, " << view->pixels_touched
                << " pixels touched.\n";
      if (view->svg.size() > 0) {
        std::cout << "(SVG export available: " << view->svg.size()
                  << " bytes)\n";
      }
    }
  }

  // 6. Or run the whole LDVM pipeline in one call.
  core::LdvmPipeline pipeline(&engine);
  auto ldvm_view = pipeline.Run();
  if (ldvm_view.ok()) {
    std::cout << "\nLDVM pipeline chose '"
              << viz::VisKindName(pipeline.last_spec().kind)
              << "' and drew " << ldvm_view->render.elements_drawn
              << " elements.\n";
  }
  return 0;
}
