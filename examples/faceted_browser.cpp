// Faceted exploration of a DBpedia-like synthetic dataset: the
// /facet-style workflow (Section 3.1 of the survey) — overview, facet
// counts, conjunctive refinement, keyword search — over 20k entities.
//
//   $ ./faceted_browser

#include <iostream>

#include "core/engine.h"
#include "rdf/vocab.h"
#include "workload/synthetic_lod.h"

int main() {
  using namespace lodviz;

  core::Engine engine;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 20000;
  lod.seed = 2016;
  size_t triples = engine.LoadSynthetic(lod);
  std::cout << "Synthetic LOD: " << triples << " triples, "
            << lod.num_entities << " entities.\n\n";

  explore::FacetedBrowser browser = engine.MakeBrowser();
  std::cout << "Matching entities (no selection): " << browser.num_matching()
            << "\n\nTop facets:\n";
  auto facets = browser.Facets();
  for (const auto& facet : facets) {
    if (facet.label.find("label") != std::string::npos) continue;
    std::cout << "  " << facet.label << "\n";
    size_t shown = 0;
    for (const auto& value : facet.values) {
      if (shown++ >= 4) break;
      std::cout << "    " << value.label << " (" << value.count << ")\n";
    }
  }

  // Refine: type = Person.
  const auto& dict = engine.store().dict();
  rdf::TermId type_pred = dict.Lookup(rdf::Term::Iri(rdf::vocab::kRdfType));
  rdf::TermId person = dict.Lookup(rdf::Term::Iri(workload::lod::kPerson));
  if (browser.Select(type_pred, person).ok()) {
    std::cout << "\nAfter selecting rdf:type = Person: "
              << browser.num_matching() << " entities.\n";
  }

  // Refine further: the most popular category among persons.
  rdf::TermId cat_pred = dict.Lookup(rdf::Term::Iri(workload::lod::kCategory));
  for (const auto& facet : browser.Facets()) {
    if (facet.predicate != cat_pred || facet.values.empty()) continue;
    const auto& top = facet.values.front();
    std::cout << "Most common category among persons: " << top.label << " ("
              << top.count << ")\n";
    if (browser.Select(cat_pred, top.value).ok()) {
      std::cout << "After selecting it: " << browser.num_matching()
                << " entities.\n";
    }
    break;
  }

  // Keyword search to find start entities (Table 2 "Keyword" column).
  std::cout << "\nKeyword search for 'ancient harbor':\n";
  for (const auto& hit : engine.Search("ancient harbor", 5)) {
    std::cout << "  " << hit.label << " (score " << hit.score << ")\n";
  }

  // SPARQL over the same data: average age per category (top 5).
  auto result = engine.Query(
      "SELECT ?cat (AVG(?age) AS ?avg) (COUNT(*) AS ?n) WHERE { "
      "?s <http://lod.example/ontology/category> ?cat ; "
      "   <http://lod.example/ontology/age> ?age . } "
      "GROUP BY ?cat LIMIT 5");
  if (result.ok()) {
    std::cout << "\nAverage age per category (sample):\n"
              << result->ToString(5);
  }

  std::cout << "\nSession trace:\n" << engine.session().ToString(10);
  return 0;
}
