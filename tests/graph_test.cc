#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "graph/bundling.h"
#include "graph/clustering.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/layout.h"
#include "graph/sampling.h"
#include "graph/supergraph.h"
#include "rdf/triple_store.h"

namespace lodviz::graph {
namespace {

Graph Triangle() { return Graph::FromEdges(3, {{0, 1}, {1, 2}, {0, 2}}); }

TEST(GraphTest, BasicCsr) {
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {2, 0}, {1, 1}, {1, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);  // self loop + duplicate removed
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_EQ(g.Degree(3), 0u);
  auto nbrs = g.Neighbors(1);
  EXPECT_EQ((std::vector<NodeId>(nbrs.begin(), nbrs.end())),
            (std::vector<NodeId>{0, 2}));
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.5);
  EXPECT_EQ(g.MaxDegree(), 2u);
}

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphTest, FromTripleStoreDropsLiterals) {
  rdf::TripleStore store;
  using rdf::Term;
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/p"),
            Term::Iri("http://x/b"));
  store.Add(Term::Iri("http://x/b"), Term::Iri("http://x/p"),
            Term::Iri("http://x/c"));
  store.Add(Term::Iri("http://x/a"), Term::Iri("http://x/age"),
            Term::IntLiteral(5));  // literal: not an edge
  Graph g = Graph::FromTripleStore(store);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);

  NodeId node;
  rdf::TermId a = store.dict().Lookup(Term::Iri("http://x/a"));
  ASSERT_TRUE(g.NodeForTerm(a, &node));
  EXPECT_EQ(g.node_term(node), a);
}

TEST(GraphTest, BfsDistances) {
  // Path 0-1-2-3 plus isolated 4.
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}});
  auto dist = g.BfsDistances(0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 3u);
  EXPECT_EQ(dist[4], UINT32_MAX);
}

TEST(GraphTest, ConnectedComponents) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {3, 4}});
  NodeId n = 0;
  auto comp = g.ConnectedComponents(&n);
  EXPECT_EQ(n, 3u);
  EXPECT_EQ(comp[0], comp[2]);
  EXPECT_EQ(comp[3], comp[4]);
  EXPECT_NE(comp[0], comp[3]);
  EXPECT_NE(comp[5], comp[0]);
}

TEST(GraphTest, CoreNumbers) {
  // A 3-clique with a pendant node: clique has core 2, pendant core 1.
  Graph g = Graph::FromEdges(4, {{0, 1}, {1, 2}, {0, 2}, {2, 3}});
  auto core = g.CoreNumbers();
  EXPECT_EQ(core[0], 2u);
  EXPECT_EQ(core[1], 2u);
  EXPECT_EQ(core[2], 2u);
  EXPECT_EQ(core[3], 1u);
}

TEST(GraphTest, InducedSubgraph) {
  Graph g = Graph::FromEdges(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  Graph sub = g.InducedSubgraph({0, 1, 2});
  EXPECT_EQ(sub.num_nodes(), 3u);
  EXPECT_EQ(sub.num_edges(), 2u);  // 0-1, 1-2 survive
}

TEST(GeneratorsTest, BarabasiAlbertIsHeavyTailed) {
  Graph g = BarabasiAlbert(2000, 3, 5);
  EXPECT_EQ(g.num_nodes(), 2000u);
  EXPECT_GT(g.num_edges(), 3000u);
  // Heavy tail: max degree far above average.
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 5.0 * g.AverageDegree());
}

TEST(GeneratorsTest, ErdosRenyiEdgeCountNearExpectation) {
  NodeId n = 500;
  double p = 0.02;
  Graph g = ErdosRenyi(n, p, 7);
  double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.15);
}

TEST(GeneratorsTest, WattsStrogatzDegrees) {
  Graph g = WattsStrogatz(300, 6, 0.1, 9);
  EXPECT_EQ(g.num_nodes(), 300u);
  // Ring lattice baseline has exactly nk/2 edges; rewiring keeps it close.
  EXPECT_NEAR(static_cast<double>(g.num_edges()), 900.0, 60.0);
}

TEST(GeneratorsTest, Deterministic) {
  Graph a = BarabasiAlbert(100, 2, 42);
  Graph b = BarabasiAlbert(100, 2, 42);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(ClusteringTest, ModularityOfPerfectSplit) {
  // Two disjoint triangles: the 2-cluster split has modularity 1/2.
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  Clustering c = Densify({0, 0, 0, 1, 1, 1});
  EXPECT_NEAR(Modularity(g, c), 0.5, 1e-12);
  Clustering all_one = Densify({0, 0, 0, 0, 0, 0});
  EXPECT_NEAR(Modularity(g, all_one), 0.0, 1e-12);
}

class CommunityRecovery : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CommunityRecovery, LouvainRecoversPlantedPartition) {
  Graph g = PlantedPartition(4, 30, 0.5, 0.01, GetParam());
  Clustering c = LouvainClustering(g, GetParam());
  // Should find ~4 clusters with high modularity.
  EXPECT_GE(c.num_clusters, 3u);
  EXPECT_LE(c.num_clusters, 8u);
  EXPECT_GT(Modularity(g, c), 0.5);
  // Nodes of the same planted block should mostly share a cluster.
  size_t agree = 0, total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v = u + 1; v < g.num_nodes(); ++v) {
      if (u / 30 != v / 30) continue;
      ++total;
      if (c.assignment[u] == c.assignment[v]) ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommunityRecovery, ::testing::Values(1, 2, 3));

TEST(ClusteringTest, LabelPropagationSeparatesComponents) {
  Graph g = Graph::FromEdges(6, {{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}});
  Clustering c = LabelPropagation(g, 3);
  EXPECT_EQ(c.num_clusters, 2u);
  EXPECT_EQ(c.assignment[0], c.assignment[1]);
  EXPECT_NE(c.assignment[0], c.assignment[3]);
  auto sizes = c.ClusterSizes();
  EXPECT_EQ(sizes, (std::vector<size_t>{3, 3}));
}

TEST(ClusteringTest, LouvainImprovesOverSingletons) {
  Graph g = BarabasiAlbert(500, 3, 11);
  Clustering c = LouvainClustering(g, 11);
  std::vector<NodeId> singleton(g.num_nodes());
  std::iota(singleton.begin(), singleton.end(), 0);
  EXPECT_GT(Modularity(g, c), Modularity(g, Densify(std::move(singleton))));
  EXPECT_LT(c.num_clusters, g.num_nodes());
}

TEST(HierarchyTest, BuildsReducingLevels) {
  Graph g = BarabasiAlbert(2000, 2, 13);
  GraphHierarchy::Options opts;
  opts.target_top_nodes = 32;
  GraphHierarchy h = GraphHierarchy::Build(g, opts);
  ASSERT_GE(h.num_levels(), 2u);
  // Levels strictly shrink and the top respects the budget (or coarsening
  // stalled, which Build guards against via the forced merge).
  for (size_t l = 1; l < h.num_levels(); ++l) {
    EXPECT_LT(h.level(l).graph.num_nodes(), h.level(l - 1).graph.num_nodes());
  }
  EXPECT_LE(h.top().graph.num_nodes(), 64u);  // close to budget

  // Base node counts are conserved at every level.
  for (size_t l = 0; l < h.num_levels(); ++l) {
    uint64_t total = 0;
    for (uint64_t c : h.level(l).base_node_counts) total += c;
    EXPECT_EQ(total, 2000u) << "level " << l;
  }
}

TEST(HierarchyTest, BaseMembersPartitionTheGraph) {
  Graph g = PlantedPartition(3, 20, 0.6, 0.02, 17);
  GraphHierarchy::Options opts;
  opts.target_top_nodes = 4;
  GraphHierarchy h = GraphHierarchy::Build(g, opts);
  const AbstractionLevel& top = h.top();
  std::set<NodeId> seen;
  for (NodeId u = 0; u < top.graph.num_nodes(); ++u) {
    for (NodeId base : h.BaseMembers(h.num_levels() - 1, u)) {
      EXPECT_TRUE(seen.insert(base).second) << "node in two super-nodes";
    }
  }
  EXPECT_EQ(seen.size(), 60u);
}

TEST(HierarchyTest, ExpandNodeReturnsSubgraph) {
  Graph g = PlantedPartition(2, 25, 0.5, 0.01, 19);
  GraphHierarchy::Options opts;
  opts.target_top_nodes = 2;
  GraphHierarchy h = GraphHierarchy::Build(g, opts);
  size_t top_level = h.num_levels() - 1;
  Graph expanded = h.ExpandNode(top_level, 0);
  EXPECT_GT(expanded.num_nodes(), 0u);
  EXPECT_LE(expanded.num_nodes(), h.level(top_level - 1).graph.num_nodes());
}

class SamplerContract : public ::testing::TestWithParam<int> {};

TEST_P(SamplerContract, RespectsTargetAndValidity) {
  Graph g = BarabasiAlbert(1000, 3, 23);
  size_t target = 150;
  std::vector<std::vector<NodeId>> samples = {
      RandomNodeSample(g, target, GetParam()),
      RandomEdgeSample(g, target, GetParam()),
      RandomWalkSample(g, target, GetParam()),
      ForestFireSample(g, target, GetParam()),
  };
  for (size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    EXPECT_LE(s.size(), target + 1) << "sampler " << i;
    EXPECT_GE(s.size(), target / 2) << "sampler " << i;
    // Valid, unique, sorted node ids.
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_EQ(std::adjacent_find(s.begin(), s.end()), s.end());
    for (NodeId u : s) EXPECT_LT(u, g.num_nodes());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerContract, ::testing::Values(1, 7, 99));

TEST(SamplerTest, EdgeSamplePrefersHubs) {
  Graph g = BarabasiAlbert(3000, 2, 31);
  auto node_sample = RandomNodeSample(g, 300, 5);
  auto edge_sample = RandomEdgeSample(g, 300, 5);
  auto mean_degree = [&](const std::vector<NodeId>& nodes) {
    double total = 0;
    for (NodeId u : nodes) total += static_cast<double>(g.Degree(u));
    return total / static_cast<double>(nodes.size());
  };
  EXPECT_GT(mean_degree(edge_sample), mean_degree(node_sample));
}

TEST(SamplerTest, WholeGraphWhenTargetExceedsSize) {
  Graph g = Triangle();
  EXPECT_EQ(RandomNodeSample(g, 100, 1).size(), 3u);
  EXPECT_EQ(RandomWalkSample(g, 100, 1).size(), 3u);
}

TEST(LayoutTest, PositionsInUnitSquare) {
  Graph g = BarabasiAlbert(200, 2, 37);
  ForceLayoutOptions opts;
  opts.iterations = 20;
  Layout layout = ForceDirectedLayout(g, opts);
  ASSERT_EQ(layout.size(), 200u);
  for (const geo::Point& p : layout) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(LayoutTest, ForceLayoutPullsNeighborsCloserThanRandom) {
  Graph g = PlantedPartition(3, 15, 0.6, 0.02, 41);
  ForceLayoutOptions opts;
  opts.iterations = 80;
  opts.seed = 3;
  Layout fr = ForceDirectedLayout(g, opts);

  // Random baseline layout.
  Rng rng(123);
  Layout random(g.num_nodes());
  for (auto& p : random) p = {rng.UniformDouble(), rng.UniformDouble()};

  EXPECT_LT(MeanEdgeLengthSq(g, fr), MeanEdgeLengthSq(g, random));
}

TEST(LayoutTest, CheapLayoutsAreValid) {
  Graph g = BarabasiAlbert(50, 2, 43);
  Layout circular = CircularLayout(g);
  Layout grid = GridLayout(g);
  EXPECT_EQ(circular.size(), 50u);
  EXPECT_EQ(grid.size(), 50u);
  // Circular layout keeps all nodes distinct.
  std::set<std::pair<double, double>> unique;
  for (const auto& p : circular) unique.insert({p.x, p.y});
  EXPECT_EQ(unique.size(), 50u);
}

TEST(LayoutTest, ApproximateRepulsionStillWorks) {
  Graph g = BarabasiAlbert(3000, 2, 47);
  ForceLayoutOptions opts;
  opts.iterations = 5;
  opts.exact_repulsion_limit = 100;  // force the grid path
  Layout layout = ForceDirectedLayout(g, opts);
  EXPECT_EQ(layout.size(), 3000u);
}

TEST(BundlingTest, ParallelEdgesBundleTogether) {
  // Two "stars" connected by many near-parallel edges.
  std::vector<std::pair<NodeId, NodeId>> edges;
  NodeId left = 10, right = 10;
  for (NodeId i = 0; i < left; ++i) edges.emplace_back(i, left + i % right);
  Graph g = Graph::FromEdges(left + right, edges);
  Layout layout(g.num_nodes());
  // Near-parallel close lines: every pair is compatible, so FDEB should
  // merge them into one bundle through the middle.
  for (NodeId i = 0; i < left; ++i) layout[i] = {0.05, 0.40 + 0.02 * i};
  for (NodeId i = 0; i < right; ++i) layout[left + i] = {0.95, 0.40 + 0.02 * i};

  BundlingOptions opts;
  opts.iterations = 60;
  BundlingResult r = BundleEdges(g, layout, opts);
  EXPECT_GT(r.compatible_pairs, 0u);
  // Bundling must reduce distinct rendered cells (less visual clutter).
  EXPECT_LT(r.distinct_cells_after, r.distinct_cells_before);
  // Endpoints are pinned.
  for (size_t e = 0; e < g.edges().size(); ++e) {
    const auto& [u, v] = g.edges()[e];
    EXPECT_EQ(r.polylines[e].front(), layout[u]);
    EXPECT_EQ(r.polylines[e].back(), layout[v]);
  }
}

TEST(BundlingTest, InkBeforeMatchesStraightLines) {
  Graph g = Triangle();
  Layout layout = {{0, 0}, {1, 0}, {0, 1}};
  BundlingOptions opts;
  opts.iterations = 0;
  BundlingResult r = BundleEdges(g, layout, opts);
  EXPECT_NEAR(r.ink_before, 2.0 + std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.ink_after, r.ink_before, 1e-9);
}

TEST(BundlingTest, CountDistinctCells) {
  // A horizontal line across the unit square touches ~resolution cells.
  Polyline line = {{0.0, 0.5}, {1.0, 0.5}};
  uint64_t cells = CountDistinctCells({line}, 64);
  EXPECT_GE(cells, 60u);
  EXPECT_LE(cells, 66u);
}

}  // namespace
}  // namespace lodviz::graph
