// Backend-parity suite: every representative SPARQL query must return a
// bit-identical ResultTable whether it executes over the in-memory
// rdf::TripleStore or the disk-resident DiskTripleStore behind a
// deliberately tiny buffer pool (so scans actually page) — and the answer
// must not depend on how many executor threads are configured. These are
// the TripleSource-contract guarantees PR 4 introduced; the suite also
// carries the TSan regression for the shared-QueryEngine data race that
// the old `mutable intermediate_rows_` member caused.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "exec/parallel.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "storage/disk_source_adapter.h"
#include "storage/disk_triple_store.h"

namespace lodviz::sparql {
namespace {

// The same graph the engine unit tests use, so parity covers the exact
// behaviors those tests pin down.
constexpr const char* kDoc = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/acme> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Company> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://x/name> "Carol" .
<http://x/alice> <http://x/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/bob> <http://x/age> "40"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/carol> <http://x/age> "35"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/bob> <http://x/knows> <http://x/carol> .
<http://x/alice> <http://x/worksAt> <http://x/acme> .
<http://x/alice> <http://x/city> "Athens" .
<http://x/bob> <http://x/city> "Melbourne" .
)";

// Every SELECT/ASK query exercised by the engine unit tests, in one list.
const char* kSelectQueries[] = {
    "SELECT ?s WHERE { ?s <http://x/knows> <http://x/bob> . }",
    "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 32 && ?a <= 40) } "
    "ORDER BY ?s",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a * 2 = 60) }",
    "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(CONTAINS(?n, \"aro\")) }",
    "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(STRSTARTS(?n, \"A\")) }",
    "SELECT ?s ?w WHERE { ?s a <http://x/Person> . "
    "OPTIONAL { ?s <http://x/worksAt> ?w . } } ORDER BY ?s",
    "SELECT ?s WHERE { ?s a <http://x/Person> . "
    "OPTIONAL { ?s <http://x/worksAt> ?w . } FILTER(!BOUND(?w)) } ORDER BY ?s",
    "SELECT ?s WHERE { { ?s <http://x/city> \"Athens\" . } UNION "
    "{ ?s <http://x/city> \"Melbourne\" . } } ORDER BY ?s",
    "SELECT ?p WHERE { ?s ?p ?o . }",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o . }",
    "SELECT ?p WHERE { ?s ?p ?o . } LIMIT 3 OFFSET 1",
    "SELECT * WHERE { ?s <http://x/knows> ?o . }",
    "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s a ?t . } GROUP BY ?t ORDER BY ?t",
    "SELECT (SUM(?a) AS ?sum) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) "
    "(MAX(?a) AS ?hi) WHERE { ?s <http://x/age> ?a . }",
    "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t . }",
    "ASK { <http://x/alice> <http://x/knows> ?x . }",
    "ASK { <http://x/carol> <http://x/knows> ?x . }",
    "SELECT ?o WHERE { <http://x/nobody> ?p ?o . }",
    "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY DESC(?a)",
    "SELECT ?s WHERE { ?s <http://x/name> ?n . "
    "FILTER(CONTAINS(STR(?s), \"alice\")) }",
    "SELECT ?o WHERE { ?s <http://x/name> ?o . FILTER(LANG(?o) = \"\") }",
    "SELECT ?o WHERE { ?s <http://x/age> ?o . "
    "FILTER(DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#integer>) }",
    "SELECT ?o WHERE { <http://x/alice> ?p ?o . FILTER(isIRI(?o)) }",
    "SELECT ?o WHERE { <http://x/alice> ?p ?o . FILTER(isLITERAL(?o)) }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(1 / (?a - 30) > 0) }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(-?a < -36) }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(!(?a > 32)) }",
    "SELECT ?s ?n WHERE { ?s ?p ?o . ?s <http://x/name> ?n . }",
    "SELECT ?s WHERE { ?s a <http://x/Person> . ?s <http://x/age> ?a . "
    "FILTER(?a < 36) }",
};

const char* kGraphQueries[] = {
    "CONSTRUCT { ?b <http://x/knownBy> ?a . } WHERE "
    "{ ?a <http://x/knows> ?b . }",
    "CONSTRUCT { ?s <http://x/employer> ?w . } WHERE { "
    "?s a <http://x/Person> . OPTIONAL { ?s <http://x/worksAt> ?w . } }",
    "CONSTRUCT { ?s a <http://x/Thing> . } WHERE { ?s ?p ?o . }",
    "DESCRIBE <http://x/bob>",
};

std::string TableKey(const ResultTable& t) {
  std::string key = t.ask_result ? "ask:true\n" : "ask:false\n";
  key += t.ToString(t.num_rows());
  return key;
}

std::string GraphKey(const std::vector<rdf::ParsedTriple>& triples) {
  std::string key;
  for (const rdf::ParsedTriple& t : triples) {
    key += t.subject.ToNTriples() + " " + t.predicate.ToNTriples() + " " +
           t.object.ToNTriples() + " .\n";
  }
  return key;
}

class SparqlParityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/lodviz_parity_" + std::to_string(::getpid()) + ".db";
    ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store_).ok());
    // Parity contract: compact (dedup) before mirroring so both backends
    // hold identical triples.
    store_.Compact();
    std::vector<rdf::Triple> triples;
    store_.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
      triples.push_back(t);
      return true;
    });
    // A 8-page pool is far smaller than the data needs, so disk scans
    // genuinely go through buffer-pool traffic.
    auto disk = storage::DiskTripleStore::Create(path_, 8);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    disk_ = std::move(disk).ValueOrDie();
    ASSERT_TRUE(disk_->BulkLoad(triples).ok());
    adapter_ = std::make_unique<storage::DiskSourceAdapter>(disk_.get(),
                                                            &store_.dict());
    mem_engine_ = std::make_unique<QueryEngine>(&store_);
    disk_engine_ = std::make_unique<QueryEngine>(adapter_.get());
  }

  void TearDown() override {
    adapter_.reset();
    disk_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  rdf::TripleStore store_;
  std::unique_ptr<storage::DiskTripleStore> disk_;
  std::unique_ptr<storage::DiskSourceAdapter> adapter_;
  std::unique_ptr<QueryEngine> mem_engine_;
  std::unique_ptr<QueryEngine> disk_engine_;
};

TEST_F(SparqlParityFixture, SelectAndAskIdenticalAcrossBackends) {
  for (const char* q : kSelectQueries) {
    auto mem = mem_engine_->ExecuteString(q);
    auto disk = disk_engine_->ExecuteString(q);
    ASSERT_TRUE(mem.ok()) << q << "\n" << mem.status().ToString();
    ASSERT_TRUE(disk.ok()) << q << "\n" << disk.status().ToString();
    EXPECT_EQ(TableKey(mem.ValueOrDie()), TableKey(disk.ValueOrDie())) << q;
  }
}

TEST_F(SparqlParityFixture, GraphQueriesIdenticalAcrossBackends) {
  for (const char* q : kGraphQueries) {
    auto mem = mem_engine_->ExecuteGraphString(q);
    auto disk = disk_engine_->ExecuteGraphString(q);
    ASSERT_TRUE(mem.ok()) << q << "\n" << mem.status().ToString();
    ASSERT_TRUE(disk.ok()) << q << "\n" << disk.status().ToString();
    EXPECT_EQ(GraphKey(mem.ValueOrDie()), GraphKey(disk.ValueOrDie())) << q;
  }
}

TEST_F(SparqlParityFixture, PlansIdenticalAcrossBackends) {
  // Bit-identical execution starts with identical plans: the shared
  // (non-virtual) selectivity model over the virtual statistics interface
  // must order joins the same way for both backends.
  for (const char* q : kSelectQueries) {
    auto mem = mem_engine_->ExplainString(q);
    auto disk = disk_engine_->ExplainString(q);
    ASSERT_TRUE(mem.ok()) << q;
    ASSERT_TRUE(disk.ok()) << q;
    EXPECT_EQ(mem.ValueOrDie(), disk.ValueOrDie()) << q;
  }
}

TEST_F(SparqlParityFixture, ThreadCountDoesNotChangeResults) {
  for (const char* q : kSelectQueries) {
    exec::SetThreads(1);
    auto serial_mem = mem_engine_->ExecuteString(q);
    auto serial_disk = disk_engine_->ExecuteString(q);
    exec::SetThreads(4);
    auto four_mem = mem_engine_->ExecuteString(q);
    auto four_disk = disk_engine_->ExecuteString(q);
    exec::SetThreads(0);  // hardware default
    auto auto_mem = mem_engine_->ExecuteString(q);
    ASSERT_TRUE(serial_mem.ok() && serial_disk.ok() && four_mem.ok() &&
                four_disk.ok() && auto_mem.ok())
        << q;
    const std::string want = TableKey(serial_mem.ValueOrDie());
    EXPECT_EQ(want, TableKey(four_mem.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(auto_mem.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(serial_disk.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(four_disk.ValueOrDie())) << q;
  }
  exec::SetThreads(0);
}

// Regression for the `mutable uint64_t intermediate_rows_` race: a single
// QueryEngine must be shareable across threads. Per-query row counts now
// come back through QueryStats, so concurrent queries cannot trample each
// other's statistics. Run under TSan via scripts/check.sh.
TEST(SparqlParitySharedEngine, ConcurrentQueriesOnOneEngine) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store).ok());
  store.Compact();
  QueryEngine engine(&store);

  const char* q =
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . "
      "?b <http://x/knows> ?c . }";
  auto want = engine.ExecuteString(q);
  ASSERT_TRUE(want.ok());
  const std::string want_key = TableKey(want.ValueOrDie());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 16;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<uint64_t> stat_errors(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      for (int j = 0; j < kQueriesPerThread; ++j) {
        QueryStats stats;
        auto got = engine.ExecuteString(q, &stats);
        if (!got.ok() || TableKey(got.ValueOrDie()) != want_key) {
          ++mismatches[i];
        }
        // Each query joins 2 `knows` scans: rows must be per-query, not
        // an accumulating shared total.
        if (stats.intermediate_rows == 0 || stats.intermediate_rows > 8) {
          ++stat_errors[i];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(mismatches[i], 0) << "thread " << i;
    EXPECT_EQ(stat_errors[i], 0u) << "thread " << i;
  }
}

TEST(SparqlParitySharedEngine, ConcurrentQueriesOnDiskBackend) {
  // The disk adapter serializes buffer-pool access internally; concurrent
  // callers must still each get the right answer.
  const std::string path = "/tmp/lodviz_parity_shared_" +
                           std::to_string(::getpid()) + ".db";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store).ok());
  store.Compact();
  std::vector<rdf::Triple> triples;
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });
  auto disk = storage::DiskTripleStore::Create(path, 8);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk.ValueOrDie()->BulkLoad(triples).ok());
  storage::DiskSourceAdapter adapter(disk.ValueOrDie().get(), &store.dict());
  QueryEngine engine(&adapter);

  const char* q = "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY ?s";
  auto want = engine.ExecuteString(q);
  ASSERT_TRUE(want.ok());
  const std::string want_key = TableKey(want.ValueOrDie());

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      for (int j = 0; j < 8; ++j) {
        auto got = engine.ExecuteString(q);
        if (!got.ok() || TableKey(got.ValueOrDie()) != want_key) {
          ++mismatches[i];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(mismatches[i], 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lodviz::sparql
