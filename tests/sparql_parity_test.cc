// Backend-parity suite: every representative SPARQL query must return a
// bit-identical ResultTable whether it executes over the in-memory
// rdf::TripleStore or the disk-resident DiskTripleStore behind a
// deliberately tiny buffer pool (so scans actually page) — and the answer
// must not depend on how many executor threads are configured, nor on
// which join strategy (index nested-loop vs build-once hash) the planner
// picks. These are the TripleSource-contract guarantees PR 4 introduced,
// extended with the PR 5 hash-join/NLJ equivalence; the suite also
// carries the TSan regressions for the shared-QueryEngine statistics race
// and for the lock-striped BufferPool (concurrent Fetch + eviction),
// which replaced the old serialized disk adapter.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "exec/parallel.h"
#include "obs/metrics.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "storage/buffer_pool.h"
#include "storage/disk_source_adapter.h"
#include "storage/disk_triple_store.h"
#include "storage/leaf_codec.h"
#include "storage/page_file.h"

namespace lodviz::sparql {
namespace {

// The same graph the engine unit tests use, so parity covers the exact
// behaviors those tests pin down.
constexpr const char* kDoc = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/acme> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Company> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://x/name> "Carol" .
<http://x/alice> <http://x/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/bob> <http://x/age> "40"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/carol> <http://x/age> "35"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/bob> <http://x/knows> <http://x/carol> .
<http://x/alice> <http://x/worksAt> <http://x/acme> .
<http://x/alice> <http://x/city> "Athens" .
<http://x/bob> <http://x/city> "Melbourne" .
)";

// Every SELECT/ASK query exercised by the engine unit tests, in one list.
const char* kSelectQueries[] = {
    "SELECT ?s WHERE { ?s <http://x/knows> <http://x/bob> . }",
    "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 32 && ?a <= 40) } "
    "ORDER BY ?s",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a * 2 = 60) }",
    "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(CONTAINS(?n, \"aro\")) }",
    "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(STRSTARTS(?n, \"A\")) }",
    "SELECT ?s ?w WHERE { ?s a <http://x/Person> . "
    "OPTIONAL { ?s <http://x/worksAt> ?w . } } ORDER BY ?s",
    "SELECT ?s WHERE { ?s a <http://x/Person> . "
    "OPTIONAL { ?s <http://x/worksAt> ?w . } FILTER(!BOUND(?w)) } ORDER BY ?s",
    "SELECT ?s WHERE { { ?s <http://x/city> \"Athens\" . } UNION "
    "{ ?s <http://x/city> \"Melbourne\" . } } ORDER BY ?s",
    "SELECT ?p WHERE { ?s ?p ?o . }",
    "SELECT DISTINCT ?p WHERE { ?s ?p ?o . }",
    "SELECT ?p WHERE { ?s ?p ?o . } LIMIT 3 OFFSET 1",
    "SELECT * WHERE { ?s <http://x/knows> ?o . }",
    "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s a ?t . } GROUP BY ?t ORDER BY ?t",
    "SELECT (SUM(?a) AS ?sum) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) "
    "(MAX(?a) AS ?hi) WHERE { ?s <http://x/age> ?a . }",
    "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t . }",
    "ASK { <http://x/alice> <http://x/knows> ?x . }",
    "ASK { <http://x/carol> <http://x/knows> ?x . }",
    "SELECT ?o WHERE { <http://x/nobody> ?p ?o . }",
    "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY DESC(?a)",
    "SELECT ?s WHERE { ?s <http://x/name> ?n . "
    "FILTER(CONTAINS(STR(?s), \"alice\")) }",
    "SELECT ?o WHERE { ?s <http://x/name> ?o . FILTER(LANG(?o) = \"\") }",
    "SELECT ?o WHERE { ?s <http://x/age> ?o . "
    "FILTER(DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#integer>) }",
    "SELECT ?o WHERE { <http://x/alice> ?p ?o . FILTER(isIRI(?o)) }",
    "SELECT ?o WHERE { <http://x/alice> ?p ?o . FILTER(isLITERAL(?o)) }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(1 / (?a - 30) > 0) }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(-?a < -36) }",
    "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(!(?a > 32)) }",
    "SELECT ?s ?n WHERE { ?s ?p ?o . ?s <http://x/name> ?n . }",
    "SELECT ?s WHERE { ?s a <http://x/Person> . ?s <http://x/age> ?a . "
    "FILTER(?a < 36) }",
};

const char* kGraphQueries[] = {
    "CONSTRUCT { ?b <http://x/knownBy> ?a . } WHERE "
    "{ ?a <http://x/knows> ?b . }",
    "CONSTRUCT { ?s <http://x/employer> ?w . } WHERE { "
    "?s a <http://x/Person> . OPTIONAL { ?s <http://x/worksAt> ?w . } }",
    "CONSTRUCT { ?s a <http://x/Thing> . } WHERE { ?s ?p ?o . }",
    "DESCRIBE <http://x/bob>",
};

std::string TableKey(const ResultTable& t) {
  std::string key = t.ask_result ? "ask:true\n" : "ask:false\n";
  key += t.ToString(t.num_rows());
  return key;
}

std::string GraphKey(const std::vector<rdf::ParsedTriple>& triples) {
  std::string key;
  for (const rdf::ParsedTriple& t : triples) {
    key += t.subject.ToNTriples() + " " + t.predicate.ToNTriples() + " " +
           t.object.ToNTriples() + " .\n";
  }
  return key;
}

class SparqlParityFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "/tmp/lodviz_parity_" + std::to_string(::getpid()) + ".db";
    ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store_).ok());
    // Parity contract: compact (dedup) before mirroring so both backends
    // hold identical triples.
    store_.Compact();
    std::vector<rdf::Triple> triples;
    store_.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
      triples.push_back(t);
      return true;
    });
    // A 8-page pool is far smaller than the data needs, so disk scans
    // genuinely go through buffer-pool traffic.
    auto disk = storage::DiskTripleStore::Create(path_, 8);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    disk_ = std::move(disk).ValueOrDie();
    ASSERT_TRUE(disk_->BulkLoad(triples).ok());
    adapter_ = std::make_unique<storage::DiskSourceAdapter>(disk_.get(),
                                                            &store_.dict());
    mem_engine_ = std::make_unique<QueryEngine>(&store_);
    disk_engine_ = std::make_unique<QueryEngine>(adapter_.get());
    QueryEngine::Options nlj;
    nlj.force_join = JoinForce::kNestedLoop;
    QueryEngine::Options hash;
    hash.force_join = JoinForce::kHash;
    mem_nlj_ = std::make_unique<QueryEngine>(&store_, nlj);
    mem_hash_ = std::make_unique<QueryEngine>(&store_, hash);
    disk_nlj_ = std::make_unique<QueryEngine>(adapter_.get(), nlj);
    disk_hash_ = std::make_unique<QueryEngine>(adapter_.get(), hash);
  }

  void TearDown() override {
    adapter_.reset();
    disk_.reset();
    std::remove(path_.c_str());
  }

  std::string path_;
  rdf::TripleStore store_;
  std::unique_ptr<storage::DiskTripleStore> disk_;
  std::unique_ptr<storage::DiskSourceAdapter> adapter_;
  std::unique_ptr<QueryEngine> mem_engine_;
  std::unique_ptr<QueryEngine> disk_engine_;
  // Forced-strategy engines: same sources, planner knob pinned to one join
  // strategy. Results must be bit-identical to the adaptive engines.
  std::unique_ptr<QueryEngine> mem_nlj_;
  std::unique_ptr<QueryEngine> mem_hash_;
  std::unique_ptr<QueryEngine> disk_nlj_;
  std::unique_ptr<QueryEngine> disk_hash_;
};

TEST_F(SparqlParityFixture, SelectAndAskIdenticalAcrossBackends) {
  for (const char* q : kSelectQueries) {
    auto mem = mem_engine_->ExecuteString(q);
    auto disk = disk_engine_->ExecuteString(q);
    ASSERT_TRUE(mem.ok()) << q << "\n" << mem.status().ToString();
    ASSERT_TRUE(disk.ok()) << q << "\n" << disk.status().ToString();
    EXPECT_EQ(TableKey(mem.ValueOrDie()), TableKey(disk.ValueOrDie())) << q;
  }
}

TEST_F(SparqlParityFixture, GraphQueriesIdenticalAcrossBackends) {
  for (const char* q : kGraphQueries) {
    auto mem = mem_engine_->ExecuteGraphString(q);
    auto disk = disk_engine_->ExecuteGraphString(q);
    ASSERT_TRUE(mem.ok()) << q << "\n" << mem.status().ToString();
    ASSERT_TRUE(disk.ok()) << q << "\n" << disk.status().ToString();
    EXPECT_EQ(GraphKey(mem.ValueOrDie()), GraphKey(disk.ValueOrDie())) << q;
  }
}

TEST_F(SparqlParityFixture, PlansIdenticalAcrossBackends) {
  // Bit-identical execution starts with identical plans: the shared
  // (non-virtual) selectivity model over the virtual statistics interface
  // must order joins the same way for both backends.
  for (const char* q : kSelectQueries) {
    auto mem = mem_engine_->ExplainString(q);
    auto disk = disk_engine_->ExplainString(q);
    ASSERT_TRUE(mem.ok()) << q;
    ASSERT_TRUE(disk.ok()) << q;
    EXPECT_EQ(mem.ValueOrDie(), disk.ValueOrDie()) << q;
  }
}

TEST(SparqlParityLeafFormat, FixedAndCompressedDiskLegsIdentical) {
  // The B+-tree leaf format (fixed 24-byte entries vs delta-compressed
  // varint pages) is a page-layout choice, never a semantics choice: the
  // same data behind either format must produce identical plans (same
  // statistics come out of the same aggregated indexes) and bit-identical
  // rows for every parity query, on both sides compared against the
  // in-memory reference.
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store).ok());
  store.Compact();
  std::vector<rdf::Triple> triples;
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });
  QueryEngine mem_engine(&store);

  struct Leg {
    storage::LeafFormat format;
    const char* name;
    std::string path;
    std::unique_ptr<storage::DiskTripleStore> disk;
    std::unique_ptr<storage::DiskSourceAdapter> adapter;
    std::unique_ptr<QueryEngine> engine;
  };
  Leg legs[2] = {{storage::LeafFormat::kFixed, "fixed", "", {}, {}, {}},
                 {storage::LeafFormat::kCompressed, "compressed", "", {}, {}, {}}};
  for (Leg& leg : legs) {
    leg.path = "/tmp/lodviz_parity_leaf_" + std::string(leg.name) + "_" +
               std::to_string(::getpid()) + ".db";
    auto disk = storage::DiskTripleStore::Create(leg.path, 8, leg.format);
    ASSERT_TRUE(disk.ok()) << disk.status().ToString();
    leg.disk = std::move(disk).ValueOrDie();
    ASSERT_TRUE(leg.disk->BulkLoad(triples).ok());
    leg.adapter = std::make_unique<storage::DiskSourceAdapter>(leg.disk.get(),
                                                               &store.dict());
    leg.engine = std::make_unique<QueryEngine>(leg.adapter.get());
  }

  for (const char* q : kSelectQueries) {
    auto want = mem_engine.ExecuteString(q);
    ASSERT_TRUE(want.ok()) << q << "\n" << want.status().ToString();
    const std::string want_key = TableKey(want.ValueOrDie());
    auto want_plan = mem_engine.ExplainString(q);
    ASSERT_TRUE(want_plan.ok()) << q;
    for (Leg& leg : legs) {
      auto got = leg.engine->ExecuteString(q);
      ASSERT_TRUE(got.ok()) << leg.name << ": " << q << "\n"
                            << got.status().ToString();
      EXPECT_EQ(want_key, TableKey(got.ValueOrDie())) << leg.name << ": " << q;
      auto plan = leg.engine->ExplainString(q);
      ASSERT_TRUE(plan.ok()) << leg.name << ": " << q;
      EXPECT_EQ(want_plan.ValueOrDie(), plan.ValueOrDie())
          << leg.name << ": " << q;
    }
  }
  for (Leg& leg : legs) {
    leg.engine.reset();
    leg.adapter.reset();
    leg.disk.reset();
    std::remove(leg.path.c_str());
  }
}

TEST_F(SparqlParityFixture, ExplainMarksExactCardinalities) {
  // The aggregated indexes make (s,p)-bound and p-bound pattern
  // cardinalities exact; the plan says so. A pattern whose estimate still
  // goes through the heuristic shrink factors (bound object) must NOT be
  // marked exact — and both backends agree, because the flag comes out of
  // the shared estimator.
  const char* exact_q =
      "SELECT ?o WHERE { <http://x/alice> <http://x/knows> ?o . }";
  const char* est_q = "SELECT ?s WHERE { ?s <http://x/knows> <http://x/bob> . }";
  for (QueryEngine* engine : {mem_engine_.get(), disk_engine_.get()}) {
    auto exact_plan = engine->ExplainString(exact_q);
    ASSERT_TRUE(exact_plan.ok());
    EXPECT_NE(exact_plan.ValueOrDie().find("[exact]"), std::string::npos)
        << exact_plan.ValueOrDie();
    auto est_plan = engine->ExplainString(est_q);
    ASSERT_TRUE(est_plan.ok());
    EXPECT_EQ(est_plan.ValueOrDie().find("[exact]"), std::string::npos)
        << est_plan.ValueOrDie();
  }
}

TEST_F(SparqlParityFixture, JoinStrategyDoesNotChangeResults) {
  // Hash join is an execution-strategy choice, not a semantics choice: for
  // every query, forcing nested-loop or hash on either backend must yield
  // rows bit-identical to the adaptive plan. The hash probe walks its
  // buckets in the same index order a nested-loop Scan would use, so even
  // ORDER-BY-free queries (where row order is the delivery order) agree.
  for (const char* q : kSelectQueries) {
    auto baseline = mem_engine_->ExecuteString(q);
    ASSERT_TRUE(baseline.ok()) << q << "\n" << baseline.status().ToString();
    const std::string want = TableKey(baseline.ValueOrDie());
    QueryEngine* engines[] = {mem_nlj_.get(), mem_hash_.get(), disk_nlj_.get(),
                              disk_hash_.get(), disk_engine_.get()};
    const char* labels[] = {"mem/nlj", "mem/hash", "disk/nlj", "disk/hash",
                            "disk/auto"};
    for (int i = 0; i < 5; ++i) {
      auto got = engines[i]->ExecuteString(q);
      ASSERT_TRUE(got.ok()) << labels[i] << ": " << q << "\n"
                            << got.status().ToString();
      EXPECT_EQ(want, TableKey(got.ValueOrDie())) << labels[i] << ": " << q;
    }
  }
  for (const char* q : kGraphQueries) {
    auto baseline = mem_engine_->ExecuteGraphString(q);
    ASSERT_TRUE(baseline.ok()) << q;
    const std::string want = GraphKey(baseline.ValueOrDie());
    auto mem_hash = mem_hash_->ExecuteGraphString(q);
    auto disk_hash = disk_hash_->ExecuteGraphString(q);
    ASSERT_TRUE(mem_hash.ok() && disk_hash.ok()) << q;
    EXPECT_EQ(want, GraphKey(mem_hash.ValueOrDie())) << q;
    EXPECT_EQ(want, GraphKey(disk_hash.ValueOrDie())) << q;
  }
}

TEST_F(SparqlParityFixture, ForcedStrategyPlansIdenticalAcrossBackends) {
  // Because EstimateSelectivity is non-virtual and the force knob is part
  // of the plan inputs, the rendered plan (including the per-step
  // strategy) must match between backends for each forced mode — and the
  // forced-hash plan must actually say so.
  bool saw_hash = false;
  bool saw_scan_under_nlj = false;
  for (const char* q : kSelectQueries) {
    auto mem_nlj = mem_nlj_->ExplainString(q);
    auto disk_nlj = disk_nlj_->ExplainString(q);
    auto mem_hash = mem_hash_->ExplainString(q);
    auto disk_hash = disk_hash_->ExplainString(q);
    ASSERT_TRUE(mem_nlj.ok() && disk_nlj.ok() && mem_hash.ok() &&
                disk_hash.ok())
        << q;
    EXPECT_EQ(mem_nlj.ValueOrDie(), disk_nlj.ValueOrDie()) << q;
    EXPECT_EQ(mem_hash.ValueOrDie(), disk_hash.ValueOrDie()) << q;
    EXPECT_EQ(mem_nlj.ValueOrDie().find("hash-join"), std::string::npos) << q;
    if (mem_hash.ValueOrDie().find("hash-join") != std::string::npos) {
      saw_hash = true;
    }
    if (mem_nlj.ValueOrDie().find("scan ") != std::string::npos) {
      saw_scan_under_nlj = true;
    }
  }
  // The knob is only real if it changes at least one plan each way.
  EXPECT_TRUE(saw_hash);
  EXPECT_TRUE(saw_scan_under_nlj);
}

TEST_F(SparqlParityFixture, ProfilingDoesNotPerturbResults) {
  // EXPLAIN ANALYZE's contract: per-operator instrumentation observes the
  // execution, it never participates in it. For every parity query, a
  // profiling engine must return bit-identical rows/triples on both
  // backends. (scripts/check.sh additionally re-runs this whole suite with
  // LODVIZ_PROFILE=1 so the force-enable path is pinned too.)
  QueryEngine::Options prof_opts;
  prof_opts.profile = true;
  QueryEngine mem_prof(&store_, prof_opts);
  QueryEngine disk_prof(adapter_.get(), prof_opts);
  for (const char* q : kSelectQueries) {
    auto plain = mem_engine_->ExecuteString(q);
    ASSERT_TRUE(plain.ok()) << q << "\n" << plain.status().ToString();
    const std::string want = TableKey(plain.ValueOrDie());
    QueryStats mem_stats;
    QueryStats disk_stats;
    auto mem = mem_prof.ExecuteString(q, &mem_stats);
    auto disk = disk_prof.ExecuteString(q, &disk_stats);
    ASSERT_TRUE(mem.ok() && disk.ok()) << q;
    EXPECT_EQ(want, TableKey(mem.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(disk.ValueOrDie())) << q;
    // The profiles themselves agree on everything deterministic: same
    // plan, same per-operator actual rows on both backends.
    EXPECT_TRUE(mem_stats.profile.profiled) << q;
    EXPECT_TRUE(disk_stats.profile.profiled) << q;
    EXPECT_EQ(mem_stats.fingerprint, disk_stats.fingerprint) << q;
    ASSERT_EQ(mem_stats.profile.root.children.size(),
              disk_stats.profile.root.children.size())
        << q;
    for (size_t i = 0; i < mem_stats.profile.root.children.size(); ++i) {
      const obs::OperatorProfile& m = mem_stats.profile.root.children[i];
      const obs::OperatorProfile& d = disk_stats.profile.root.children[i];
      EXPECT_EQ(m.op, d.op) << q;
      EXPECT_EQ(m.label, d.label) << q;
      EXPECT_EQ(m.actual_rows, d.actual_rows) << q << " op " << m.op;
      EXPECT_EQ(m.invocations, d.invocations) << q << " op " << m.op;
    }
  }
  for (const char* q : kGraphQueries) {
    auto plain = mem_engine_->ExecuteGraphString(q);
    ASSERT_TRUE(plain.ok()) << q;
    auto mem = mem_prof.ExecuteGraphString(q);
    auto disk = disk_prof.ExecuteGraphString(q);
    ASSERT_TRUE(mem.ok() && disk.ok()) << q;
    EXPECT_EQ(GraphKey(plain.ValueOrDie()), GraphKey(mem.ValueOrDie())) << q;
    EXPECT_EQ(GraphKey(plain.ValueOrDie()), GraphKey(disk.ValueOrDie())) << q;
  }
}

TEST_F(SparqlParityFixture, ExplainAnalyzeWorksOnBothBackends) {
  const char* q =
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . "
      "?b <http://x/knows> ?c . ?a a <http://x/Person> . }";
  auto mem = mem_engine_->ExplainAnalyzeString(q);
  auto disk = disk_engine_->ExplainAnalyzeString(q);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  for (const std::string& report : {mem.ValueOrDie(), disk.ValueOrDie()}) {
    EXPECT_NE(report.find("explain analyze"), std::string::npos) << report;
    EXPECT_NE(report.find("est="), std::string::npos) << report;
    EXPECT_NE(report.find("act="), std::string::npos) << report;
    EXPECT_NE(report.find("inv="), std::string::npos) << report;
  }
  // Wall times differ between backends, but everything else in the
  // reports (plan shape, labels, estimates, actual rows) matches. Strip
  // time fields and compare the rest wholesale.
  auto strip_times = [](const std::string& s) {
    std::string out;
    size_t pos = 0;
    while (pos < s.size()) {
      size_t t = s.find("time=", pos);
      if (t == std::string::npos) {
        out += s.substr(pos);
        break;
      }
      out += s.substr(pos, t - pos);
      size_t end = t;
      while (end < s.size() && s[end] != '\n' && s[end] != ' ') ++end;
      pos = end;
    }
    return out;
  };
  EXPECT_EQ(strip_times(mem.ValueOrDie()), strip_times(disk.ValueOrDie()));
}

TEST_F(SparqlParityFixture, FilterEvalErrorsAreCounted) {
  // FILTER expression errors make the row fail the filter (SPARQL
  // semantics) but must not vanish silently: each one increments
  // sparql.op.filter_errors. "?n + 1" over string names errors per row.
  obs::Counter& errors =
      obs::MetricRegistry::Global().GetCounter("sparql.op.filter_errors");
  const uint64_t before = errors.value();
  auto got = mem_engine_->ExecuteString(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(?n + 1 > 0) }");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.ValueOrDie().num_rows(), 0u);
  // Three name triples, one eval error each.
  EXPECT_EQ(errors.value() - before, 3u);
}

TEST_F(SparqlParityFixture, ThreadCountDoesNotChangeResults) {
  for (const char* q : kSelectQueries) {
    exec::SetThreads(1);
    auto serial_mem = mem_engine_->ExecuteString(q);
    auto serial_disk = disk_engine_->ExecuteString(q);
    exec::SetThreads(4);
    auto four_mem = mem_engine_->ExecuteString(q);
    auto four_disk = disk_engine_->ExecuteString(q);
    exec::SetThreads(0);  // hardware default
    auto auto_mem = mem_engine_->ExecuteString(q);
    ASSERT_TRUE(serial_mem.ok() && serial_disk.ok() && four_mem.ok() &&
                four_disk.ok() && auto_mem.ok())
        << q;
    const std::string want = TableKey(serial_mem.ValueOrDie());
    EXPECT_EQ(want, TableKey(four_mem.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(auto_mem.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(serial_disk.ValueOrDie())) << q;
    EXPECT_EQ(want, TableKey(four_disk.ValueOrDie())) << q;
  }
  exec::SetThreads(0);
}

TEST_F(SparqlParityFixture, RowAndBatchModesIdentical) {
  // The ExecMode contract (DESIGN.md §4.9): vectorized batch execution is
  // a pure representation change. For every query, every backend, every
  // join strategy and every thread count, batch mode must return rows
  // bit-identical to the row engine — including row order, since ORDER
  // BY-free queries expose delivery order directly.
  struct Leg {
    std::string label;
    std::unique_ptr<QueryEngine> engine;
  };
  std::vector<Leg> legs;
  const rdf::TripleSource* sources[] = {&store_, adapter_.get()};
  const char* source_names[] = {"mem", "disk"};
  const JoinForce forces[] = {JoinForce::kAuto, JoinForce::kNestedLoop,
                              JoinForce::kHash};
  const char* force_names[] = {"auto", "nlj", "hash"};
  const ExecMode modes[] = {ExecMode::kRow, ExecMode::kBatch};
  const char* mode_names[] = {"row", "batch"};
  for (int s = 0; s < 2; ++s) {
    for (int f = 0; f < 3; ++f) {
      for (int m = 0; m < 2; ++m) {
        QueryEngine::Options opts;
        opts.force_join = forces[f];
        opts.exec_mode = modes[m];
        legs.push_back(Leg{std::string(source_names[s]) + "/" +
                               force_names[f] + "/" + mode_names[m],
                           std::make_unique<QueryEngine>(sources[s], opts)});
      }
    }
  }

  for (int threads : {1, 4, 0}) {
    exec::SetThreads(threads);
    for (const char* q : kSelectQueries) {
      // Reference: the row engine on the in-memory store.
      QueryEngine::Options row_opts;
      row_opts.exec_mode = ExecMode::kRow;
      QueryEngine reference(&store_, row_opts);
      auto want = reference.ExecuteString(q);
      ASSERT_TRUE(want.ok()) << q << "\n" << want.status().ToString();
      const std::string want_key = TableKey(want.ValueOrDie());
      for (const Leg& leg : legs) {
        auto got = leg.engine->ExecuteString(q);
        ASSERT_TRUE(got.ok()) << leg.label << " threads=" << threads << ": "
                              << q << "\n" << got.status().ToString();
        EXPECT_EQ(want_key, TableKey(got.ValueOrDie()))
            << leg.label << " threads=" << threads << ": " << q;
      }
    }
  }
  exec::SetThreads(0);

  // Plans are mode-independent: exec_mode is an executor knob, invisible
  // to the planner and the plan rendering.
  for (const char* q : kSelectQueries) {
    QueryEngine::Options row_opts;
    row_opts.exec_mode = ExecMode::kRow;
    QueryEngine::Options batch_opts;
    batch_opts.exec_mode = ExecMode::kBatch;
    QueryEngine row_engine(&store_, row_opts);
    QueryEngine batch_engine(&store_, batch_opts);
    auto row_plan = row_engine.ExplainString(q);
    auto batch_plan = batch_engine.ExplainString(q);
    ASSERT_TRUE(row_plan.ok() && batch_plan.ok()) << q;
    EXPECT_EQ(row_plan.ValueOrDie(), batch_plan.ValueOrDie()) << q;
  }

  // Graph queries: CONSTRUCT/DESCRIBE materialization consumes batches
  // from either executor identically.
  QueryEngine::Options row_opts;
  row_opts.exec_mode = ExecMode::kRow;
  QueryEngine mem_row(&store_, row_opts);
  QueryEngine disk_row(adapter_.get(), row_opts);
  for (const char* q : kGraphQueries) {
    auto want = mem_engine_->ExecuteGraphString(q);
    auto row_mem = mem_row.ExecuteGraphString(q);
    auto row_disk = disk_row.ExecuteGraphString(q);
    ASSERT_TRUE(want.ok() && row_mem.ok() && row_disk.ok()) << q;
    EXPECT_EQ(GraphKey(want.ValueOrDie()), GraphKey(row_mem.ValueOrDie()))
        << q;
    EXPECT_EQ(GraphKey(want.ValueOrDie()), GraphKey(row_disk.ValueOrDie()))
        << q;
  }
}

// Batch-mode variant of the shared-engine TSan regression: one engine per
// mode over one store, queried concurrently from both sides. Batch
// execution shares the engine's statistics plumbing and the source's scan
// path with row execution, so racing the two modes against each other on
// the same store is the interesting interleaving. Run under TSan via
// scripts/check.sh (gate 6 matches ^SparqlParity).
TEST(SparqlParitySharedEngine, ConcurrentRowAndBatchModesOnOneEngine) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store).ok());
  store.Compact();
  QueryEngine::Options row_opts;
  row_opts.exec_mode = ExecMode::kRow;
  QueryEngine::Options batch_opts;
  batch_opts.exec_mode = ExecMode::kBatch;
  QueryEngine row_engine(&store, row_opts);
  QueryEngine batch_engine(&store, batch_opts);

  const char* q =
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . "
      "?b <http://x/knows> ?c . }";
  auto want = row_engine.ExecuteString(q);
  ASSERT_TRUE(want.ok());
  const std::string want_key = TableKey(want.ValueOrDie());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 16;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      QueryEngine* engine = (i % 2 == 0) ? &row_engine : &batch_engine;
      for (int j = 0; j < kQueriesPerThread; ++j) {
        auto got = engine->ExecuteString(q);
        if (!got.ok() || TableKey(got.ValueOrDie()) != want_key) {
          ++mismatches[i];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(mismatches[i], 0) << "thread " << i;
  }
}

// Regression for the `mutable uint64_t intermediate_rows_` race: a single
// QueryEngine must be shareable across threads. Per-query row counts now
// come back through QueryStats, so concurrent queries cannot trample each
// other's statistics. Run under TSan via scripts/check.sh.
TEST(SparqlParitySharedEngine, ConcurrentQueriesOnOneEngine) {
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store).ok());
  store.Compact();
  QueryEngine engine(&store);

  const char* q =
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . "
      "?b <http://x/knows> ?c . }";
  auto want = engine.ExecuteString(q);
  ASSERT_TRUE(want.ok());
  const std::string want_key = TableKey(want.ValueOrDie());

  constexpr int kThreads = 4;
  constexpr int kQueriesPerThread = 16;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<uint64_t> stat_errors(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      for (int j = 0; j < kQueriesPerThread; ++j) {
        QueryStats stats;
        auto got = engine.ExecuteString(q, &stats);
        if (!got.ok() || TableKey(got.ValueOrDie()) != want_key) {
          ++mismatches[i];
        }
        // Each query joins 2 `knows` scans: rows must be per-query, not
        // an accumulating shared total.
        if (stats.intermediate_rows == 0 || stats.intermediate_rows > 8) {
          ++stat_errors[i];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(mismatches[i], 0) << "thread " << i;
    EXPECT_EQ(stat_errors[i], 0u) << "thread " << i;
  }
}

TEST(SparqlParitySharedEngine, ConcurrentQueriesOnDiskBackend) {
  // The disk adapter forwards scans straight to B-trees over the
  // lock-striped BufferPool — nothing serializes concurrent callers
  // anymore, so this doubles as a TSan regression for the whole
  // engine → adapter → pool stack. Everyone must still get the right
  // answer out of an 8-page (single-shard) pool under heavy eviction.
  const std::string path = "/tmp/lodviz_parity_shared_" +
                           std::to_string(::getpid()) + ".db";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(kDoc, &store).ok());
  store.Compact();
  std::vector<rdf::Triple> triples;
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    triples.push_back(t);
    return true;
  });
  auto disk = storage::DiskTripleStore::Create(path, 8);
  ASSERT_TRUE(disk.ok());
  ASSERT_TRUE(disk.ValueOrDie()->BulkLoad(triples).ok());
  storage::DiskSourceAdapter adapter(disk.ValueOrDie().get(), &store.dict());
  QueryEngine engine(&adapter);

  const char* q = "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY ?s";
  auto want = engine.ExecuteString(q);
  ASSERT_TRUE(want.ok());
  const std::string want_key = TableKey(want.ValueOrDie());

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> mismatches(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      for (int j = 0; j < 8; ++j) {
        auto got = engine.ExecuteString(q);
        if (!got.ok() || TableKey(got.ValueOrDie()) != want_key) {
          ++mismatches[i];
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) EXPECT_EQ(mismatches[i], 0);
  std::remove(path.c_str());
}

// --- Striped BufferPool TSan regressions -------------------------------
//
// These live in the parity suite (not storage_test) so scripts/check.sh's
// TSan gate — which runs suites matching ^(Obs|Exec|SparqlParity) — picks
// them up. They replace the old "serialized adapter" concurrency test:
// the pool itself is now the concurrent object under test.

std::string StripedPoolPath(const char* tag) {
  return "/tmp/lodviz_striped_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".db";
}

// Fills page `id` with a content pattern a reader can verify byte-for-byte.
void FillPage(uint8_t* data, storage::PageId id) {
  for (size_t i = 0; i < storage::kPageSize; ++i) {
    data[i] = static_cast<uint8_t>((id * 131 + i) & 0xFF);
  }
}

bool CheckPage(const uint8_t* data, storage::PageId id) {
  for (size_t i = 0; i < storage::kPageSize; ++i) {
    if (data[i] != static_cast<uint8_t>((id * 131 + i) & 0xFF)) return false;
  }
  return true;
}

TEST(SparqlParityStripedPool, ConcurrentFetchWithEviction) {
  // 4 readers hammer a 64-frame pool (8 shards) with 256 distinct pages:
  // every Fetch has a 3/4 chance of needing a victim, so the shard-local
  // eviction path runs constantly while other shards serve hits. Content
  // verification catches any frame recycled while still visible.
  const std::string path = StripedPoolPath("fetch");
  storage::PageFile file;
  ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
  constexpr storage::PageId kPages = 256;
  {
    uint8_t buf[storage::kPageSize];
    for (storage::PageId id = 0; id < kPages; ++id) {
      FillPage(buf, id);
      ASSERT_TRUE(file.WritePage(id, buf).ok());
    }
  }
  storage::BufferPool pool(&file, 64);
  EXPECT_GT(pool.num_shards(), 1u);

  constexpr int kThreads = 4;
  std::vector<std::thread> workers;
  std::vector<int> corruptions(kThreads, 0);
  std::vector<int> errors(kThreads, 0);
  for (int i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      // Each thread walks all pages at a different coprime stride, so at
      // any instant the threads are in different shards — and sometimes
      // in the same one, which is the interesting case.
      const storage::PageId stride = 1 + 2 * static_cast<storage::PageId>(i);
      storage::PageId id = static_cast<storage::PageId>(i * 17) % kPages;
      for (storage::PageId j = 0; j < 2 * kPages; ++j) {
        auto ref = pool.Fetch(id);
        if (!ref.ok()) {
          ++errors[i];
        } else if (!CheckPage(ref->data(), id)) {
          ++corruptions[i];
        }
        id = (id + stride) % kPages;
      }
    });
  }
  for (std::thread& w : workers) w.join();
  for (int i = 0; i < kThreads; ++i) {
    EXPECT_EQ(errors[i], 0) << "thread " << i;
    EXPECT_EQ(corruptions[i], 0) << "thread " << i;
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  std::remove(path.c_str());
}

TEST(SparqlParityStripedPool, ConcurrentWritersOnDistinctPages) {
  // Writers own disjoint page ranges: pin, fill, MarkDirty, unpin. Dirty
  // write-back happens on eviction inside whichever shard needs a victim,
  // concurrently with other writers. After FlushAll, a cold re-read must
  // see every byte — this pins down the atomic dirty flag and the
  // write-back path under contention.
  const std::string path = StripedPoolPath("write");
  storage::PageFile file;
  ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
  constexpr storage::PageId kPages = 128;
  constexpr int kThreads = 4;
  {
    storage::BufferPool pool(&file, 32);
    // NewPage serializes allocation; create the address space up front.
    for (storage::PageId id = 0; id < kPages; ++id) {
      auto ref = pool.NewPage();
      ASSERT_TRUE(ref.ok());
      ASSERT_EQ(ref->page_id(), id);
    }
    std::vector<std::thread> workers;
    std::atomic<int> errors{0};
    for (int i = 0; i < kThreads; ++i) {
      workers.emplace_back([&, i] {
        const storage::PageId lo = kPages / kThreads * i;
        const storage::PageId hi = lo + kPages / kThreads;
        for (storage::PageId id = lo; id < hi; ++id) {
          auto ref = pool.Fetch(id);
          if (!ref.ok()) {
            errors.fetch_add(1);
            continue;
          }
          FillPage(ref->data(), id);
          ref->MarkDirty();
        }
      });
    }
    for (std::thread& w : workers) w.join();
    EXPECT_EQ(errors.load(), 0);
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  // Cold pool: everything must come back from disk intact.
  storage::BufferPool reread(&file, 8);
  EXPECT_EQ(reread.num_shards(), 1u);  // tiny pools degrade to one shard
  for (storage::PageId id = 0; id < kPages; ++id) {
    auto ref = reread.Fetch(id);
    ASSERT_TRUE(ref.ok()) << "page " << id;
    EXPECT_TRUE(CheckPage(ref->data(), id)) << "page " << id;
  }
  std::remove(path.c_str());
}

TEST(SparqlParityStripedPool, ShardCountScalesWithCapacity) {
  // PickShards keeps ≥8 frames per shard and caps at 8 shards, so tiny
  // test pools behave exactly like the old single-mutex pool while big
  // pools stripe. (Capacity 4 is the constructor's documented minimum.)
  const std::string path = StripedPoolPath("shards");
  storage::PageFile file;
  ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
  struct Case {
    size_t capacity;
    size_t shards;
  } cases[] = {{4, 1}, {8, 1}, {16, 2}, {32, 4}, {64, 8}, {128, 8}, {1024, 8}};
  for (const Case& c : cases) {
    storage::BufferPool pool(&file, c.capacity);
    EXPECT_EQ(pool.num_shards(), c.shards) << "capacity " << c.capacity;
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace lodviz::sparql
