#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "viz/canvas.h"
#include "viz/m4.h"
#include "viz/renderers.h"
#include "viz/svg.h"
#include "viz/types.h"
#include "workload/scenario.h"

namespace lodviz::viz {
namespace {

TEST(TypesTest, CodesMatchPaperLegend) {
  EXPECT_EQ(DataTypeCode(DataType::kNumeric), "N");
  EXPECT_EQ(DataTypeCode(DataType::kGraph), "G");
  EXPECT_EQ(VisKindCode(VisKind::kCircles), "CI");
  EXPECT_EQ(VisKindCode(VisKind::kParallelCoords), "PC");
  EXPECT_EQ(VisKindCode(VisKind::kTimeline), "TL");
  EXPECT_EQ(VisKindCode(VisKind::kTreemap), "T");
}

TEST(CanvasTest, PointCountingAndOverplot) {
  Canvas canvas(10, 10);
  canvas.DrawPoint(0.05, 0.05);
  canvas.DrawPoint(0.05, 0.05);  // same pixel
  canvas.DrawPoint(0.95, 0.95);
  EXPECT_EQ(canvas.total_marks(), 3u);
  EXPECT_EQ(canvas.pixels_touched(), 2u);
  EXPECT_DOUBLE_EQ(canvas.OverplotFactor(), 1.5);
  EXPECT_EQ(canvas.MaxCount(), 2u);
  EXPECT_NEAR(canvas.HiddenMarkFraction(), 1.0 / 3.0, 1e-12);
  canvas.Clear();
  EXPECT_EQ(canvas.total_marks(), 0u);
}

TEST(CanvasTest, LineTouchesContiguousPixels) {
  Canvas canvas(100, 100);
  canvas.DrawLine(0.0, 0.5, 1.0, 0.5);
  EXPECT_GE(canvas.pixels_touched(), 99u);
  EXPECT_LE(canvas.pixels_touched(), 101u);
}

TEST(CanvasTest, FillRectAndCircle) {
  Canvas canvas(100, 100);
  canvas.FillRect({0.1, 0.1, 0.3, 0.2});
  EXPECT_NEAR(static_cast<double>(canvas.pixels_touched()), 200.0, 50.0);
  Canvas c2(100, 100);
  c2.DrawCircle(0.5, 0.5, 0.25);
  EXPECT_GT(c2.pixels_touched(), 50u);
}

TEST(CanvasTest, OutOfRangeIsClamped) {
  Canvas canvas(10, 10);
  canvas.DrawPoint(2.0, -1.0);
  EXPECT_EQ(canvas.total_marks(), 1u);
}

TEST(CanvasTest, AsciiArtRenders) {
  Canvas canvas(40, 40);
  for (int i = 0; i < 100; ++i) canvas.DrawPoint(0.5, 0.5);
  std::string art = canvas.ToAscii(20);
  EXPECT_FALSE(art.empty());
  EXPECT_NE(art.find('\n'), std::string::npos);
}

TEST(M4Test, BudgetIsFourPerColumn) {
  auto series = workload::RandomWalkSeries(100000, 3);
  auto reduced = M4Downsample(series, 200);
  EXPECT_LE(reduced.size(), 4u * 200u);
  EXPECT_GE(reduced.size(), 200u);
  EXPECT_TRUE(std::is_sorted(reduced.begin(), reduced.end(),
                             [](const Sample& a, const Sample& b) {
                               return a.t < b.t;
                             }));
}

TEST(M4Test, PreservesExtremes) {
  auto series = workload::RandomWalkSeries(50000, 5);
  auto reduced = M4Downsample(series, 100);
  auto min_raw = std::min_element(series.begin(), series.end(),
                                  [](const Sample& a, const Sample& b) {
                                    return a.v < b.v;
                                  });
  auto max_raw = std::max_element(series.begin(), series.end(),
                                  [](const Sample& a, const Sample& b) {
                                    return a.v < b.v;
                                  });
  bool has_min = false, has_max = false;
  for (const Sample& s : reduced) {
    if (s.v == min_raw->v) has_min = true;
    if (s.v == max_raw->v) has_max = true;
  }
  EXPECT_TRUE(has_min);
  EXPECT_TRUE(has_max);
  // Stride downsampling to the same budget loses the extremes (almost
  // surely on a 50k random walk).
  auto strided = StrideDownsample(series, reduced.size());
  bool stride_has_min = false;
  for (const Sample& s : strided) {
    if (s.v == min_raw->v) stride_has_min = true;
  }
  EXPECT_FALSE(stride_has_min);
}

/// The M4 guarantee: rendering the reduced series touches (nearly) the
/// same pixels as rendering every raw point.
TEST(M4Test, PixelErrorIsTiny) {
  auto series = workload::RandomWalkSeries(200000, 7);
  const int width = 400, height = 300;
  Canvas raw(width, height), reduced(width, height);
  RenderLineChart(&raw, series);
  RenderLineChart(&reduced, M4Downsample(series, width));

  uint64_t differing = 0;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      bool a = raw.At(x, y) > 0;
      bool b = reduced.At(x, y) > 0;
      if (a != b) ++differing;
    }
  }
  double error = static_cast<double>(differing) /
                 static_cast<double>(raw.pixels_touched());
  EXPECT_LT(error, 0.02) << "M4 should be (near) pixel-perfect";
}

TEST(M4Test, EmptyAndDegenerate) {
  EXPECT_TRUE(M4Downsample({}, 100).empty());
  std::vector<Sample> one = {{5.0, 2.0}};
  auto r = M4Downsample(one, 100);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r[0].v, 2.0);
}

TEST(RenderersTest, ScatterDrawsAllPoints) {
  Canvas canvas(200, 200);
  std::vector<geo::Point> points;
  Rng rng(1);
  for (int i = 0; i < 500; ++i) {
    points.push_back({rng.UniformDouble(), rng.UniformDouble()});
  }
  RenderStats stats = RenderScatter(&canvas, points);
  EXPECT_EQ(stats.elements_drawn, 500u);
  EXPECT_EQ(stats.input_size, 500u);
  EXPECT_GT(canvas.pixels_touched(), 300u);
}

TEST(RenderersTest, BarsAndTimeline) {
  Canvas canvas(100, 100);
  RenderStats bars = RenderBars(&canvas, {1, 5, 3, 8});
  EXPECT_EQ(bars.elements_drawn, 4u);
  EXPECT_GT(canvas.pixels_touched(), 100u);

  Canvas c2(100, 100);
  RenderStats timeline = RenderTimeline(&c2, {0.0, 1.0, 1.0, 2.0, 10.0});
  EXPECT_EQ(timeline.elements_drawn, 5u);
}

TEST(RenderersTest, ClusteredMapBoundsElements) {
  Rng rng(9);
  std::vector<GeoPoint> points;
  for (int i = 0; i < 50000; ++i) {
    points.push_back({rng.UniformDouble(-180, 180),
                      rng.UniformDouble(-90, 90)});
  }
  Canvas canvas(200, 100);
  RenderStats stats = RenderClusteredMap(&canvas, points, 16);
  EXPECT_EQ(stats.input_size, 50000u);
  EXPECT_LE(stats.elements_drawn, 16u * 16u);
  EXPECT_GT(stats.elements_drawn, 100u);  // uniform data fills most cells
  // Clustered markers at the same budget: empty input is safe too.
  Canvas empty(10, 10);
  EXPECT_EQ(RenderClusteredMap(&empty, {}, 16).elements_drawn, 0u);
}

TEST(RenderersTest, MapProjectsIntoBounds) {
  Canvas canvas(100, 50);
  RenderStats stats =
      RenderMap(&canvas, {{-74.0, 40.7}, {151.2, -33.9}, {0.0, 0.0}});
  EXPECT_EQ(stats.elements_drawn, 3u);
  EXPECT_EQ(canvas.pixels_touched(), 3u);
}

TEST(TreemapTest, CellsTileTheAreaProportionally) {
  std::vector<double> weights = {50, 30, 15, 5};
  auto cells = SquarifiedTreemap(weights, {0, 0, 1, 1});
  ASSERT_EQ(cells.size(), 4u);
  double total_area = 0;
  for (const auto& cell : cells) {
    total_area += cell.rect.Area();
    EXPECT_GE(cell.rect.min_x, -1e-9);
    EXPECT_LE(cell.rect.max_x, 1.0 + 1e-9);
  }
  EXPECT_NEAR(total_area, 1.0, 1e-6);
  // Area proportional to weight.
  for (const auto& cell : cells) {
    EXPECT_NEAR(cell.rect.Area(), cell.weight / 100.0, 1e-6);
  }
  // No overlaps (pairwise intersection area ~ 0).
  for (size_t i = 0; i < cells.size(); ++i) {
    for (size_t j = i + 1; j < cells.size(); ++j) {
      geo::Rect a = cells[i].rect, b = cells[j].rect;
      double ox = std::max(0.0, std::min(a.max_x, b.max_x) -
                                    std::max(a.min_x, b.min_x));
      double oy = std::max(0.0, std::min(a.max_y, b.max_y) -
                                    std::max(a.min_y, b.min_y));
      EXPECT_LT(ox * oy, 1e-9) << "cells " << i << " and " << j << " overlap";
    }
  }
}

TEST(TreemapTest, AspectRatiosAreReasonable) {
  std::vector<double> weights(20, 5.0);
  auto cells = SquarifiedTreemap(weights, {0, 0, 1, 1});
  ASSERT_EQ(cells.size(), 20u);
  for (const auto& cell : cells) {
    double w = cell.rect.Width(), h = cell.rect.Height();
    double aspect = std::max(w / h, h / w);
    EXPECT_LT(aspect, 4.0);
  }
}

TEST(SvgTest, ProducesValidishDocument) {
  SvgWriter svg(200, 100);
  svg.Circle(0.5, 0.5, 3.0);
  svg.Line(0, 0, 1, 1);
  svg.Rect({0.1, 0.1, 0.2, 0.2});
  svg.Polyline({{0, 0}, {0.5, 1}, {1, 0}});
  svg.Text(0.1, 0.9, "hello <world> & co");
  std::string doc = svg.ToString();
  EXPECT_NE(doc.find("<svg"), std::string::npos);
  EXPECT_NE(doc.find("</svg>"), std::string::npos);
  EXPECT_NE(doc.find("&lt;world&gt;"), std::string::npos);
  EXPECT_EQ(svg.num_elements(), 5u);
  // y-flip: circle at unit y=0.5 lands at pixel y=50.
  EXPECT_NE(doc.find("cy=\"50.00\""), std::string::npos);
}

}  // namespace
}  // namespace lodviz::viz
