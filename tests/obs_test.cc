// Tests for the lodviz::obs observability layer: metric registry identity
// and concurrency, histogram quantile accuracy against a sorted reference,
// hierarchical span trees, and the machine-readable exporters. Suites are
// named with an `Obs` prefix so `ctest -R '^Obs'` selects exactly this
// binary's tests (scripts/check.sh runs them under TSan).

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/query_log.h"
#include "obs/trace.h"

namespace lodviz::obs {
namespace {

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(ObsRegistryTest, SameNameReturnsSameMetric) {
  MetricRegistry reg;
  Counter& a = reg.GetCounter("x.count");
  Counter& b = reg.GetCounter("x.count");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.GetGauge("x.level");
  Gauge& g2 = reg.GetGauge("x.level");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = reg.GetHistogram("x.lat_us");
  Histogram& h2 = reg.GetHistogram("x.lat_us");
  EXPECT_EQ(&h1, &h2);
  // Same name in different metric families are distinct objects.
  EXPECT_NE(static_cast<void*>(&a), static_cast<void*>(&reg.GetGauge("x.count")));
}

TEST(ObsRegistryTest, CounterGaugeBasics) {
  MetricRegistry reg;
  Counter& c = reg.GetCounter("t.events");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);

  Gauge& g = reg.GetGauge("t.depth");
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
}

TEST(ObsRegistryTest, SnapshotSortedAndComplete) {
  MetricRegistry reg;
  reg.GetCounter("b.two").Increment(2);
  reg.GetCounter("a.one").Increment(1);
  reg.GetGauge("g.level").Set(-5);
  reg.GetHistogram("h.lat").Record(10);
  MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "a.one");
  EXPECT_EQ(snap.counters[0].second, 1u);
  EXPECT_EQ(snap.counters[1].first, "b.two");
  EXPECT_EQ(snap.counters[1].second, 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].second, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].second.count, 1u);
}

// Hammers registration and increments from many threads: every thread asks
// the registry for the same names while incrementing, so first-use
// registration races with lookups. Run under TSan via scripts/check.sh.
TEST(ObsConcurrencyTest, RacingRegistrationAndIncrements) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      Counter& mine = reg.GetCounter("race.shared");
      Histogram& hist = reg.GetHistogram("race.lat");
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        mine.Increment();
        hist.Record(static_cast<uint64_t>(t * kIncrementsPerThread + i));
        if (i % 1000 == 0) {
          // Re-lookup mid-flight: must hit the same object.
          reg.GetCounter("race.shared").Increment(0);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(reg.GetCounter("race.shared").value(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
  EXPECT_EQ(reg.GetHistogram("race.lat").count(),
            static_cast<uint64_t>(kThreads) * kIncrementsPerThread);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < Histogram::kSubBucketCount; ++v) {
    EXPECT_EQ(Histogram::BucketUpperBound(Histogram::BucketFor(v)), v);
  }
  for (uint64_t v = 0; v < 10; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(h.Quantile(0.0), 0u);
  EXPECT_EQ(h.Quantile(1.0), 9u);
}

TEST(ObsHistogramTest, BucketMappingIsMonotonicAndTight) {
  size_t prev = Histogram::BucketFor(0);
  for (uint64_t v = 1; v < 1'000'000; v = v * 17 / 16 + 1) {
    size_t b = Histogram::BucketFor(v);
    EXPECT_GE(b, prev) << "v=" << v;
    // The value must not exceed its bucket's upper bound, and the bound
    // must stay within the promised relative error.
    uint64_t ub = Histogram::BucketUpperBound(b);
    EXPECT_GE(ub, v);
    EXPECT_LE(static_cast<double>(ub),
              static_cast<double>(v) * (1.0 + 1.0 / Histogram::kSubBucketCount))
        << "v=" << v;
    prev = b;
  }
}

TEST(ObsHistogramTest, QuantilesTrackSortedReference) {
  Histogram h;
  Rng rng(42);
  std::vector<uint64_t> reference;
  reference.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    // Skewed latency-like distribution spanning several powers of two.
    uint64_t v = 1 + rng.Uniform(100) * rng.Uniform(100) * rng.Uniform(50);
    reference.push_back(v);
    h.Record(v);
  }
  std::sort(reference.begin(), reference.end());
  for (double q : {0.5, 0.95, 0.99}) {
    uint64_t exact =
        reference[static_cast<size_t>(q * (reference.size() - 1))];
    uint64_t approx = h.Quantile(q);
    // Log-bucketing promises <= 1/16 relative error; allow slack for the
    // rank-vs-index off-by-one at the bucket edge.
    EXPECT_GE(static_cast<double>(approx), static_cast<double>(exact) * 0.93)
        << "q=" << q;
    EXPECT_LE(static_cast<double>(approx), static_cast<double>(exact) * 1.08)
        << "q=" << q;
  }
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, reference.size());
  EXPECT_EQ(s.min, reference.front());
  EXPECT_EQ(s.max, reference.back());
  double exact_sum = 0;
  for (uint64_t v : reference) exact_sum += static_cast<double>(v);
  EXPECT_DOUBLE_EQ(s.sum, exact_sum);
  EXPECT_NEAR(s.mean, exact_sum / static_cast<double>(s.count), 1e-9);
}

TEST(ObsHistogramTest, EmptyAndNegativeInputs) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  HistogramSummary s = h.Summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  h.RecordDouble(-12.5);  // clamps to 0
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Quantile(1.0), 0u);
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TEST(ObsTraceTest, DisabledSpansRecordNothing) {
  Tracer& tracer = Tracer::Global();
  tracer.SetEnabled(false);
  tracer.Clear();
  {
    LODVIZ_TRACE_SPAN("off.outer");
    LODVIZ_TRACE_SPAN("off.inner");
  }
  EXPECT_EQ(tracer.size(), 0u);
}

TEST(ObsTraceTest, NestedSpansFormTree) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    LODVIZ_TRACE_SPAN("t.root");
    {
      LODVIZ_TRACE_SPAN("t.child");
      { LODVIZ_TRACE_SPAN("t.grandchild"); }
    }
    { LODVIZ_TRACE_SPAN("t.sibling"); }
  }
  tracer.SetEnabled(false);
  std::vector<SpanRecord> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 4u);
  // Completion order: innermost scopes close first.
  auto find = [&](const std::string& name) -> const SpanRecord& {
    for (const SpanRecord& s : spans) {
      if (s.name == name) return s;
    }
    ADD_FAILURE() << "span not found: " << name;
    return spans[0];
  };
  const SpanRecord& root = find("t.root");
  const SpanRecord& child = find("t.child");
  const SpanRecord& grandchild = find("t.grandchild");
  const SpanRecord& sibling = find("t.sibling");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(root.depth, 0u);
  EXPECT_EQ(child.parent_id, root.id);
  EXPECT_EQ(child.depth, 1u);
  EXPECT_EQ(grandchild.parent_id, child.id);
  EXPECT_EQ(grandchild.depth, 2u);
  EXPECT_EQ(sibling.parent_id, root.id);
  // Time containment: children nest inside their parents.
  EXPECT_LE(root.start_ns, child.start_ns);
  EXPECT_LE(child.end_ns, root.end_ns);
  EXPECT_LE(child.start_ns, grandchild.start_ns);
  EXPECT_LE(grandchild.end_ns, child.end_ns);
  EXPECT_GE(root.duration_ns(), 0);
}

TEST(ObsTraceTest, BufferIsBoundedAndCountsDrops) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  for (size_t i = 0; i < Tracer::kMaxFinishedSpans + 100; ++i) {
    LODVIZ_TRACE_SPAN("cap.span");
  }
  tracer.SetEnabled(false);
  EXPECT_EQ(tracer.size(), Tracer::kMaxFinishedSpans);
  EXPECT_EQ(tracer.dropped(), 100u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
}

// Concurrent span streams from several threads: each thread's spans must
// chain to its own roots, never across threads. Exercised under TSan.
TEST(ObsConcurrencyTest, ThreadedSpansStayPerThread) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        LODVIZ_TRACE_SPAN("mt.outer");
        LODVIZ_TRACE_SPAN("mt.inner");
      }
    });
  }
  for (std::thread& th : threads) th.join();
  tracer.SetEnabled(false);
  std::vector<SpanRecord> spans = tracer.Finished();
  ASSERT_EQ(spans.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread * 2);
  // Index spans by id so parents can be resolved.
  std::vector<const SpanRecord*> by_id;
  for (const SpanRecord& s : spans) {
    if (s.id >= by_id.size()) by_id.resize(s.id + 1, nullptr);
    by_id[s.id] = &s;
  }
  for (const SpanRecord& s : spans) {
    if (s.name == "mt.outer") {
      EXPECT_EQ(s.parent_id, 0u);
    } else {
      ASSERT_LT(s.parent_id, by_id.size());
      const SpanRecord* parent = by_id[s.parent_id];
      ASSERT_NE(parent, nullptr);
      EXPECT_EQ(parent->thread_id, s.thread_id)
          << "span parented across threads";
    }
  }
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

// Minimal recursive-descent JSON reader — just enough to validate that the
// exporters emit structurally well-formed JSON. Accepts objects, arrays,
// strings, numbers, true/false/null; rejects trailing garbage.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) return false;
    SkipWs();
    return pos_ == s_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* lit) {
    size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') ++pos_;
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= s_.size()) return false;
    char c = s_[pos_];
    if (c == '{') return Object();
    if (c == '[') return Array();
    if (c == '"') return String();
    if (c == 't') return Literal("true");
    if (c == 'f') return Literal("false");
    if (c == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    ++pos_;  // '{'
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (!String()) return false;
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != ':') return false;
      ++pos_;
      if (!Value()) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != '}') return false;
    ++pos_;
    return true;
  }
  bool Array() {
    ++pos_;  // '['
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      if (!Value()) return false;
      SkipWs();
      if (pos_ < s_.size() && s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      break;
    }
    if (pos_ >= s_.size() || s_[pos_] != ']') return false;
    ++pos_;
    return true;
  }

  const std::string& s_;
  size_t pos_ = 0;
};

TEST(ObsExportTest, JsonEscapeHandlesSpecials) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  std::string ctl = JsonEscape(std::string(1, '\x01'));
  EXPECT_EQ(ctl, "\\u0001");
}

TEST(ObsExportTest, JsonEscapeUtf8AndInvalidBytes) {
  // Well-formed UTF-8 passes through untouched (2-, 3- and 4-byte forms).
  EXPECT_EQ(JsonEscape("caf\xC3\xA9"), "caf\xC3\xA9");
  EXPECT_EQ(JsonEscape("\xE2\x82\xAC"), "\xE2\x82\xAC");        // €
  EXPECT_EQ(JsonEscape("\xF0\x9F\x94\xA5"), "\xF0\x9F\x94\xA5");  // 🔥
  // Invalid bytes are escaped so the document always parses: a stray
  // continuation byte, a lone lead byte at end of string, an overlong
  // lead (0xC0/0xC1), and a lead byte past U+10FFFF (0xF5..0xFF).
  EXPECT_EQ(JsonEscape(std::string(1, '\xA9')), "\\u00a9");
  EXPECT_EQ(JsonEscape(std::string(1, '\xC3')), "\\u00c3");
  EXPECT_EQ(JsonEscape("\xC0\xAF"), "\\u00c0\\u00af");
  EXPECT_EQ(JsonEscape(std::string(1, '\xFF')), "\\u00ff");
  // A truncated 3-byte sequence: the lead is escaped, and the tail bytes
  // (now stray continuations) are escaped too.
  EXPECT_EQ(JsonEscape("\xE2\x82"), "\\u00e2\\u0082");
  // Valid multibyte directly after an invalid byte still passes through.
  EXPECT_EQ(JsonEscape("\xFF\xC3\xA9"), "\\u00ff\xC3\xA9");
}

TEST(ObsExportTest, HostileMetricNamesStayParseable) {
  MetricRegistry reg;
  reg.GetCounter("evil\"name\\with\nnewline").Increment(2);
  reg.GetCounter(std::string("latin1_caf\xE9_suffix")).Increment(5);
  reg.GetGauge("caf\xC3\xA9.gauge").Set(-1);
  reg.GetHistogram("h\"ist\\o").Record(7);
  std::string json = JsonSnapshot(reg.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline"), std::string::npos)
      << json;
  EXPECT_NE(json.find("latin1_caf\\u00e9_suffix"), std::string::npos) << json;
  EXPECT_NE(json.find("caf\xC3\xA9.gauge"), std::string::npos) << json;

  // Prometheus names must stay in [a-zA-Z0-9_] whatever the input.
  std::string prom = PrometheusText(reg.Snapshot());
  for (size_t pos = prom.find("lodviz_"); pos != std::string::npos;
       pos = prom.find("lodviz_", pos + 1)) {
    size_t end = pos;
    while (end < prom.size() && !std::isspace(static_cast<unsigned char>(
                                    prom[end])) && prom[end] != '{') {
      char c = prom[end];
      bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                (c >= '0' && c <= '9') || c == '_';
      EXPECT_TRUE(ok) << "byte " << static_cast<int>(c) << " in " << prom;
      ++end;
    }
  }
}

TEST(ObsExportTest, HostileSpanNamesStayParseable) {
  std::vector<SpanRecord> spans(1);
  spans[0].name = "sp\"an\\one\x01\xFF";
  spans[0].start_ns = 10;
  spans[0].end_ns = 20;
  std::string array = ChromeTraceJson(spans);
  EXPECT_TRUE(JsonChecker(array).Valid()) << array;
  EXPECT_NE(array.find("sp\\\"an\\\\one\\u0001\\u00ff"), std::string::npos)
      << array;
}

TEST(ObsExportTest, JsonSnapshotIsWellFormedAndComplete) {
  MetricRegistry reg;
  reg.GetCounter("sub.hits").Increment(3);
  reg.GetGauge("sub.capacity").Set(64);
  Histogram& h = reg.GetHistogram("sub.lat_us");
  for (uint64_t v = 1; v <= 100; ++v) h.Record(v);
  std::string json = JsonSnapshot(reg.Snapshot());
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"sub.hits\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"sub.capacity\":64"), std::string::npos) << json;
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p95\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"count\":100"), std::string::npos);
}

TEST(ObsExportTest, PrometheusTextFormat) {
  MetricRegistry reg;
  reg.GetCounter("storage.buffer_pool.hits").Increment(9);
  reg.GetGauge("explore.depth").Set(2);
  reg.GetHistogram("sparql.execute_us").Record(500);
  std::string text = PrometheusText(reg.Snapshot());
  EXPECT_NE(text.find("# TYPE lodviz_storage_buffer_pool_hits counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lodviz_storage_buffer_pool_hits 9"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lodviz_explore_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lodviz_sparql_execute_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.5\""), std::string::npos);
  EXPECT_NE(text.find("lodviz_sparql_execute_us_count 1"), std::string::npos);
}

TEST(ObsExportTest, ChromeTraceRoundTrip) {
  Tracer& tracer = Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    LODVIZ_TRACE_SPAN("exp.root");
    { LODVIZ_TRACE_SPAN("exp.child"); }
  }
  tracer.SetEnabled(false);
  std::vector<SpanRecord> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 2u);

  std::string array = ChromeTraceJson(spans);
  EXPECT_TRUE(JsonChecker(array).Valid()) << array;
  EXPECT_EQ(array.front(), '[');
  EXPECT_EQ(array.back(), ']');
  EXPECT_NE(array.find("\"name\":\"exp.root\""), std::string::npos) << array;
  EXPECT_NE(array.find("\"name\":\"exp.child\""), std::string::npos);
  EXPECT_NE(array.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(array.find("\"ts\":"), std::string::npos);
  EXPECT_NE(array.find("\"dur\":"), std::string::npos);

  std::string doc = ChromeTraceDocument(spans);
  EXPECT_TRUE(JsonChecker(doc).Valid()) << doc;
  EXPECT_EQ(doc.find("{\"traceEvents\":"), 0u);

  // Empty trace still yields a valid (empty) array.
  EXPECT_EQ(ChromeTraceJson({}), "[]");
}

TEST(ObsExportTest, GlobalConvenienceOverloadsRender) {
  MetricRegistry::Global().GetCounter("obs_test.global_probe").Increment();
  std::string json = JsonSnapshot();
  EXPECT_TRUE(JsonChecker(json).Valid());
  EXPECT_NE(json.find("obs_test.global_probe"), std::string::npos);
  std::string prom = PrometheusText();
  EXPECT_NE(prom.find("lodviz_obs_test_global_probe"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Histogram merge
// ---------------------------------------------------------------------------

TEST(ObsHistogramTest, MergeMatchesSingleHistogramExactly) {
  // Bucketing is deterministic, so recording a value stream into shards
  // and merging must reproduce the single-histogram state bit for bit:
  // identical counts, sum, min/max, and every quantile.
  Histogram all;
  Histogram shard_a;
  Histogram shard_b;
  Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = 1 + rng.Uniform(100) * rng.Uniform(100) * rng.Uniform(50);
    all.Record(v);
    (i % 2 == 0 ? shard_a : shard_b).Record(v);
  }
  Histogram merged;
  merged.Merge(shard_a);
  merged.Merge(shard_b);
  EXPECT_EQ(merged.count(), all.count());
  HistogramSummary ms = merged.Summarize();
  HistogramSummary as = all.Summarize();
  EXPECT_EQ(ms.min, as.min);
  EXPECT_EQ(ms.max, as.max);
  EXPECT_DOUBLE_EQ(ms.sum, as.sum);
  for (double q = 0.0; q <= 1.0; q += 0.01) {
    EXPECT_EQ(merged.Quantile(q), all.Quantile(q)) << "q=" << q;
  }
}

TEST(ObsHistogramTest, MergeEmptyAndSelfConsistency) {
  Histogram h;
  h.Record(5);
  h.Record(500);
  Histogram empty;
  h.Merge(empty);  // merging an empty histogram is a no-op
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.Summarize().min, 5u);
  EXPECT_EQ(h.Summarize().max, 500u);

  Histogram target;
  target.Merge(h);
  target.Merge(h);  // doubling the population keeps the quantiles
  EXPECT_EQ(target.count(), 4u);
  EXPECT_EQ(target.Quantile(0.5), h.Quantile(0.5));
  EXPECT_EQ(target.Summarize().min, 5u);
  EXPECT_EQ(target.Summarize().max, 500u);
}

// ---------------------------------------------------------------------------
// Operator profiles
// ---------------------------------------------------------------------------

TEST(ObsProfileTest, TimerAccumulatesAndNullIsInert) {
  OperatorProfile node;
  {
    OperatorTimer t(&node, 3);
    t.Finish(42);
    t.Finish(99);  // second Finish is a no-op
  }
  EXPECT_EQ(node.invocations, 3u);
  EXPECT_EQ(node.actual_rows, 42u);
  EXPECT_GE(node.wall_ns, 0);
  {
    OperatorTimer t(nullptr, 5);
    t.Finish(7);
  }
  EXPECT_EQ(node.invocations, 3u);  // untouched

  OperatorTimer again(&node);
  again.Finish(8);
  EXPECT_EQ(node.invocations, 4u);
  EXPECT_EQ(node.actual_rows, 50u);
}

TEST(ObsProfileTest, MisestimateFlagging) {
  EXPECT_FALSE(IsMisestimate(-1.0, 1000));  // no estimate, never flags
  EXPECT_FALSE(IsMisestimate(100.0, 100));
  EXPECT_FALSE(IsMisestimate(100.0, 350));
  EXPECT_TRUE(IsMisestimate(100.0, 500));
  EXPECT_TRUE(IsMisestimate(500.0, 100));
  EXPECT_FALSE(IsMisestimate(0.0, 2));  // +1 smoothing: 3/1 < 4
  EXPECT_TRUE(IsMisestimate(0.0, 5));
}

TEST(ObsProfileTest, TreeRenderingAndJson) {
  QueryProfile qp;
  qp.fingerprint = 0xDEADBEEFCAFEF00DULL;
  qp.total_ns = 1'500'000;
  qp.rows_out = 3;
  qp.intermediate_rows = 12;
  qp.profiled = true;
  qp.root.op = "group";
  qp.root.invocations = 1;
  qp.root.actual_rows = 3;
  OperatorProfile scan;
  scan.op = "scan";
  scan.label = "?s <p> ?o";
  scan.est_rows = 2.0;
  scan.actual_rows = 100;
  scan.invocations = 1;
  scan.wall_ns = 12'345;
  qp.root.children.push_back(scan);

  std::string tree = ProfileTreeString(qp.root);
  EXPECT_NE(tree.find("group"), std::string::npos) << tree;
  EXPECT_NE(tree.find("?s <p> ?o"), std::string::npos) << tree;
  EXPECT_NE(tree.find("est=2"), std::string::npos) << tree;
  EXPECT_NE(tree.find("act=100"), std::string::npos) << tree;
  EXPECT_NE(tree.find("misestimate"), std::string::npos) << tree;

  std::string json = ProfileJson(qp);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"fingerprint\":\"0xdeadbeefcafef00d\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"profiled\":true"), std::string::npos) << json;
  EXPECT_NE(json.find("\"children\":["), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Slow-query journal
// ---------------------------------------------------------------------------

QueryLogEntry MakeEntry(uint64_t fp, double latency_us) {
  QueryLogEntry e;
  e.fingerprint = fp;
  e.query = "SELECT ?s WHERE { ?s ?p ?o }";
  e.latency_us = latency_us;
  e.rows_out = 1;
  e.intermediate_rows = 2;
  return e;
}

TEST(ObsQueryLogTest, DisabledByDefaultAndThresholdGates) {
  QueryLog log(4);
  EXPECT_FALSE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(1e9));
  EXPECT_FALSE(log.Record(MakeEntry(1, 1e9)));
  EXPECT_EQ(log.size(), 0u);

  log.SetThresholdMicros(1000);
  EXPECT_TRUE(log.enabled());
  EXPECT_FALSE(log.ShouldRecord(999.0));
  EXPECT_TRUE(log.ShouldRecord(1000.0));
  EXPECT_FALSE(log.Record(MakeEntry(2, 10.0)));  // below threshold
  EXPECT_TRUE(log.Record(MakeEntry(3, 2000.0)));
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.total_admitted(), 1u);

  log.SetThresholdMicros(0);  // 0 journals everything
  EXPECT_TRUE(log.ShouldRecord(0.0));
  log.SetThresholdMicros(-1);  // negative disables again
  EXPECT_FALSE(log.ShouldRecord(1e9));
}

TEST(ObsQueryLogTest, RingOverwritesOldestAndKeepsSequence) {
  QueryLog log(3);
  log.SetThresholdMicros(0);
  for (uint64_t i = 1; i <= 5; ++i) {
    EXPECT_TRUE(log.Record(MakeEntry(i, static_cast<double>(i))));
  }
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.capacity(), 3u);
  EXPECT_EQ(log.total_admitted(), 5u);
  std::vector<QueryLogEntry> entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest first; entries 1 and 2 were overwritten.
  EXPECT_EQ(entries[0].fingerprint, 3u);
  EXPECT_EQ(entries[1].fingerprint, 4u);
  EXPECT_EQ(entries[2].fingerprint, 5u);
  EXPECT_EQ(entries[0].sequence, 3u);
  EXPECT_EQ(entries[2].sequence, 5u);

  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.total_admitted(), 0u);
}

TEST(ObsQueryLogTest, TruncatesOversizedQueryText) {
  QueryLog log(2);
  log.SetThresholdMicros(0);
  QueryLogEntry e = MakeEntry(9, 5.0);
  e.query.assign(QueryLog::kMaxQueryBytes + 100, 'x');
  EXPECT_TRUE(log.Record(std::move(e)));
  EXPECT_EQ(log.Entries()[0].query.size(), QueryLog::kMaxQueryBytes);
}

TEST(ObsQueryLogTest, JsonRoundTripsEntries) {
  QueryLog log(4);
  log.SetThresholdMicros(100);
  QueryLogEntry e = MakeEntry(0xABCDULL, 250.0);
  e.query = "SELECT ?s WHERE { ?s \"weird\\string\" ?o }";
  e.profile.fingerprint = 0xABCDULL;
  e.profile.profiled = true;
  e.profile.root.op = "group";
  ASSERT_TRUE(log.Record(std::move(e)));
  std::string json = log.ToJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"threshold_us\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"admitted\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fingerprint\":\"0x000000000000abcd\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("weird\\\\string"), std::string::npos) << json;
  EXPECT_NE(json.find("\"profile\":{"), std::string::npos) << json;
}

TEST(ObsConcurrencyTest, QueryLogConcurrentRecordAndRead) {
  QueryLog log(8);
  log.SetThresholdMicros(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Record(MakeEntry(static_cast<uint64_t>(t * kPerThread + i), 1.0));
      }
    });
  }
  threads.emplace_back([&log] {
    for (int i = 0; i < 200; ++i) {
      std::vector<QueryLogEntry> snapshot = log.Entries();
      EXPECT_LE(snapshot.size(), log.capacity());
      std::string json = log.ToJson();
      EXPECT_FALSE(json.empty());
    }
  });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(log.total_admitted(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(log.size(), 8u);
}

}  // namespace
}  // namespace lodviz::obs
