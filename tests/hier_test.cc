#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/random.h"
#include "hier/hetree.h"
#include "rdf/triple_store.h"

namespace lodviz::hier {
namespace {

std::vector<Item> UniformItems(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Item> items(n);
  for (size_t i = 0; i < n; ++i) {
    items[i] = {rng.UniformDouble(0, 100), i};
  }
  return items;
}

HETree::Options ContentOpts(bool lazy = false) {
  HETree::Options o;
  o.kind = HETree::Kind::kContent;
  o.fanout = 4;
  o.leaf_capacity = 16;
  o.lazy = lazy;
  return o;
}

HETree::Options RangeOpts(bool lazy = false) {
  HETree::Options o = ContentOpts(lazy);
  o.kind = HETree::Kind::kRange;
  return o;
}

TEST(HETreeTest, RootSummarizesEverything) {
  auto tree = HETree::Build(UniformItems(1000, 1), ContentOpts());
  ASSERT_TRUE(tree.ok());
  const auto& root = tree->node(tree->root());
  EXPECT_EQ(root.stats.count, 1000u);
  EXPECT_NEAR(root.stats.mean, 50.0, 3.0);
  EXPECT_GE(root.stats.min, 0.0);
  EXPECT_LE(root.stats.max, 100.0);
}

TEST(HETreeTest, BuildRejectsBadInput) {
  EXPECT_FALSE(HETree::Build({}, ContentOpts()).ok());
  HETree::Options bad = ContentOpts();
  bad.fanout = 1;
  EXPECT_FALSE(HETree::Build(UniformItems(10, 1), bad).ok());
}

/// Children partition their parent and their stats roll up exactly —
/// for both tree kinds.
class HETreeInvariants
    : public ::testing::TestWithParam<std::tuple<HETree::Kind, size_t>> {};

TEST_P(HETreeInvariants, ChildrenPartitionParent) {
  auto [kind, n] = GetParam();
  HETree::Options opts = kind == HETree::Kind::kContent ? ContentOpts()
                                                        : RangeOpts();
  auto tree_r = HETree::Build(UniformItems(n, 7 + n), opts);
  ASSERT_TRUE(tree_r.ok());
  HETree& tree = tree_r.ValueOrDie();

  // BFS over all materialized nodes.
  std::vector<HETree::NodeId> queue = {tree.root()};
  while (!queue.empty()) {
    HETree::NodeId id = queue.back();
    queue.pop_back();
    const auto& node = tree.node(id);
    if (node.is_leaf) {
      EXPECT_LE(node.stats.count,
                std::max<uint64_t>(opts.leaf_capacity, 1))
          << "leaf too big (content trees only)";
      continue;
    }
    auto children = tree.Children(id);
    ASSERT_FALSE(children.empty());
    uint64_t child_count = 0;
    double child_sum = 0.0;
    size_t expected_first = node.first;
    for (HETree::NodeId c : children) {
      const auto& child = tree.node(c);
      EXPECT_EQ(child.first, expected_first) << "gap in item ranges";
      expected_first = child.last;
      child_count += child.stats.count;
      child_sum += child.stats.sum;
      EXPECT_EQ(child.parent, id);
      EXPECT_EQ(child.depth, node.depth + 1);
      queue.push_back(c);
    }
    EXPECT_EQ(expected_first, node.last);
    EXPECT_EQ(child_count, node.stats.count);
    EXPECT_NEAR(child_sum, node.stats.sum, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    KindsAndSizes, HETreeInvariants,
    ::testing::Combine(::testing::Values(HETree::Kind::kContent,
                                         HETree::Kind::kRange),
                       ::testing::Values<size_t>(5, 64, 1000, 5000)));

TEST(HETreeTest, ContentLeavesAreBalanced) {
  auto tree = HETree::Build(UniformItems(1024, 3), ContentOpts());
  ASSERT_TRUE(tree.ok());
  // Collect all leaves.
  std::vector<HETree::NodeId> queue = {tree->root()};
  std::vector<uint64_t> leaf_sizes;
  while (!queue.empty()) {
    auto id = queue.back();
    queue.pop_back();
    if (tree->node(id).is_leaf) {
      leaf_sizes.push_back(tree->node(id).stats.count);
      continue;
    }
    for (auto c : tree->Children(id)) queue.push_back(c);
  }
  uint64_t lo = *std::min_element(leaf_sizes.begin(), leaf_sizes.end());
  uint64_t hi = *std::max_element(leaf_sizes.begin(), leaf_sizes.end());
  EXPECT_LE(hi - lo, 1u);  // equal content split
}

TEST(HETreeTest, RangeChildrenHaveEqualWidths) {
  auto tree = HETree::Build(UniformItems(4000, 5), RangeOpts());
  ASSERT_TRUE(tree.ok());
  auto children = tree->Children(tree->root());
  ASSERT_GE(children.size(), 2u);
  double width = tree->node(children[0]).hi - tree->node(children[0]).lo;
  for (auto c : children) {
    EXPECT_NEAR(tree->node(c).hi - tree->node(c).lo, width, width * 0.01);
  }
}

TEST(HETreeTest, SingleValueDataTerminates) {
  std::vector<Item> items(500, Item{42.0, 0});
  for (size_t i = 0; i < items.size(); ++i) items[i].object = i;
  for (auto kind : {HETree::Kind::kContent, HETree::Kind::kRange}) {
    HETree::Options opts = kind == HETree::Kind::kContent ? ContentOpts()
                                                          : RangeOpts();
    auto tree = HETree::Build(items, opts);
    ASSERT_TRUE(tree.ok());
    EXPECT_EQ(tree->node(tree->root()).stats.count, 500u);
    EXPECT_GT(tree->materialized_nodes(), 1u);
  }
}

TEST(HETreeTest, RangeStatsExactAgainstNaive) {
  Rng rng(11);
  std::vector<Item> items = UniformItems(5000, 11);
  auto tree = HETree::Build(items, ContentOpts());
  ASSERT_TRUE(tree.ok());
  for (int q = 0; q < 50; ++q) {
    double lo = rng.UniformDouble(0, 90);
    double hi = lo + rng.UniformDouble(0, 10);
    NodeStats got = tree->RangeStats(lo, hi);
    uint64_t count = 0;
    double sum = 0;
    for (const Item& it : items) {
      if (it.value >= lo && it.value <= hi) {
        ++count;
        sum += it.value;
      }
    }
    EXPECT_EQ(got.count, count);
    EXPECT_NEAR(got.sum, sum, 1e-6);
  }
  EXPECT_EQ(tree->RangeStats(50, 40).count, 0u);
}

TEST(HETreeTest, IcoMaterializesOnlyVisitedPath) {
  auto lazy = HETree::Build(UniformItems(100000, 13), ContentOpts(true));
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(lazy->materialized_nodes(), 1u);  // just the root

  // Drill down one path (what a SynopsViz user does).
  HETree::NodeId current = lazy->root();
  int depth = 0;
  while (!lazy->node(current).is_leaf) {
    current = lazy->Children(current).front();
    ++depth;
  }
  EXPECT_GE(depth, 3);
  // Materialized nodes = fanout per visited level, nowhere near the full
  // tree (~100000/16 leaves alone).
  EXPECT_LE(lazy->materialized_nodes(), 1u + 4u * static_cast<size_t>(depth));

  auto eager = HETree::Build(UniformItems(100000, 13), ContentOpts(false));
  ASSERT_TRUE(eager.ok());
  EXPECT_GT(eager->materialized_nodes(), 1000u);
}

TEST(HETreeTest, NodesAtDepthCoverAllItems) {
  auto tree = HETree::Build(UniformItems(2000, 17), ContentOpts());
  ASSERT_TRUE(tree.ok());
  for (uint32_t depth : {0u, 1u, 2u, 3u}) {
    uint64_t total = 0;
    for (auto id : tree->NodesAtDepth(depth)) {
      total += tree->node(id).stats.count;
    }
    EXPECT_EQ(total, 2000u) << "depth " << depth;
  }
}

TEST(HETreeTest, AdaptReusesDataAndAgreesWithRebuild) {
  std::vector<Item> items = UniformItems(20000, 19);
  auto original = HETree::Build(items, ContentOpts());
  ASSERT_TRUE(original.ok());

  HETree::Options new_opts = RangeOpts();
  new_opts.fanout = 8;
  HETree adapted = original->Adapt(new_opts);
  // Adaptation materializes nothing but the root.
  EXPECT_EQ(adapted.materialized_nodes(), 1u);

  auto rebuilt = HETree::Build(items, new_opts);
  ASSERT_TRUE(rebuilt.ok());
  // Same structure when materialized the same way.
  auto a_children = adapted.Children(adapted.root());
  auto r_children = rebuilt->Children(rebuilt->root());
  ASSERT_EQ(a_children.size(), r_children.size());
  for (size_t i = 0; i < a_children.size(); ++i) {
    EXPECT_EQ(adapted.node(a_children[i]).stats.count,
              rebuilt->node(r_children[i]).stats.count);
    EXPECT_NEAR(adapted.node(a_children[i]).stats.mean,
                rebuilt->node(r_children[i]).stats.mean, 1e-9);
  }
}

TEST(HETreeTest, LeafItemsRoundTrip) {
  std::vector<Item> items = {{5, 50}, {1, 10}, {3, 30}, {2, 20}, {4, 40}};
  HETree::Options opts = ContentOpts();
  opts.leaf_capacity = 2;
  auto tree = HETree::Build(items, opts);
  ASSERT_TRUE(tree.ok());
  // Walk to the leftmost leaf: must contain the smallest values.
  HETree::NodeId current = tree->root();
  while (!tree->node(current).is_leaf) {
    current = tree->Children(current).front();
  }
  auto leaf_items = tree->LeafItems(current);
  ASSERT_FALSE(leaf_items.empty());
  EXPECT_DOUBLE_EQ(leaf_items.front().value, 1.0);
  EXPECT_EQ(leaf_items.front().object, 10u);
}

TEST(HETreeTest, BuildFromRdfProperty) {
  rdf::TripleStore store;
  using rdf::Term;
  for (int i = 0; i < 200; ++i) {
    store.Add(Term::Iri("http://x/item" + std::to_string(i)),
              Term::Iri("http://x/price"), Term::DoubleLiteral(10.0 + i));
  }
  // A non-numeric straggler should be skipped, not fail the build.
  store.Add(Term::Iri("http://x/weird"), Term::Iri("http://x/price"),
            Term::Literal("not-a-number-at-all x"));
  rdf::TermId price = store.dict().Lookup(Term::Iri("http://x/price"));
  auto tree = HETree::BuildFromProperty(store, price, ContentOpts());
  ASSERT_TRUE(tree.ok()) << tree.status().ToString();
  EXPECT_EQ(tree->node(tree->root()).stats.count, 200u);
  EXPECT_DOUBLE_EQ(tree->node(tree->root()).stats.min, 10.0);

  rdf::TermId missing = store.dict().InternIri("http://x/nothing");
  EXPECT_FALSE(HETree::BuildFromProperty(store, missing, ContentOpts()).ok());
}

TEST(HETreeTest, TemporalPropertySupported) {
  rdf::TripleStore store;
  using rdf::Term;
  for (int i = 0; i < 50; ++i) {
    store.Add(Term::Iri("http://x/e" + std::to_string(i)),
              Term::Iri("http://x/date"),
              Term::DateTimeLiteral(1000000000 + i * 86400LL));
  }
  rdf::TermId date = store.dict().Lookup(Term::Iri("http://x/date"));
  auto tree = HETree::BuildFromProperty(store, date, RangeOpts());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node(tree->root()).stats.count, 50u);
  EXPECT_DOUBLE_EQ(tree->node(tree->root()).stats.min, 1000000000.0);
}

}  // namespace
}  // namespace lodviz::hier
