#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <string>

#include "common/random.h"
#include "rdf/triple_store.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/cracking.h"
#include "storage/disk_triple_store.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace lodviz::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/lodviz_" + name + "_" +
         std::to_string(::getpid());
}

TEST(PageFileTest, AllocateWriteRead) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("pf1"), /*truncate=*/true).ok());
  auto p0 = file.AllocatePage();
  auto p1 = file.AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(p0.ValueOrDie(), 0u);
  EXPECT_EQ(p1.ValueOrDie(), 1u);
  EXPECT_EQ(file.num_pages(), 2u);

  char out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) out[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(file.WritePage(1, out).ok());
  char in[kPageSize] = {};
  ASSERT_TRUE(file.ReadPage(1, in).ok());
  EXPECT_EQ(0, std::memcmp(out, in, kPageSize));
  EXPECT_GE(file.reads(), 1u);
  EXPECT_GE(file.writes(), 1u);
  ASSERT_TRUE(file.Close().ok());
}

TEST(PageFileTest, ReadPastEndFails) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("pf2"), true).ok());
  char buf[kPageSize];
  EXPECT_FALSE(file.ReadPage(5, buf).ok());
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bp1"), true).ok());
  BufferPool pool(&file, 4);
  auto p = pool.NewPage();
  ASSERT_TRUE(p.ok());
  PageId id = p->page_id();
  p->data()[0] = 42;
  p->MarkDirty();
  p->Release();

  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 42);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bp2"), true).ok());
  BufferPool pool(&file, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) {
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    p->data()[0] = static_cast<uint8_t>(i);
    p->MarkDirty();
    ids.push_back(p->page_id());
  }
  EXPECT_GT(pool.evictions(), 0u);
  // All pages must read back their data even after eviction.
  for (int i = 0; i < 10; ++i) {
    auto p = pool.Fetch(ids[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], static_cast<uint8_t>(i));
  }
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bp3"), true).ok());
  BufferPool pool(&file, 4);
  std::vector<PageRef> pins;
  for (int i = 0; i < 4; ++i) {
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    pins.push_back(std::move(p).ValueOrDie());
  }
  auto fifth = pool.NewPage();
  EXPECT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
  pins.clear();  // unpin
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(BufferPoolTest, FlushAllPersists) {
  std::string path = TempPath("bp4");
  PageId id;
  {
    PageFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    BufferPool pool(&file, 4);
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    id = p->page_id();
    p->data()[100] = 77;
    p->MarkDirty();
    p->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  char buf[kPageSize];
  ASSERT_TRUE(file.ReadPage(id, buf).ok());
  EXPECT_EQ(buf[100], 77);
}

Key128 K(uint64_t hi, uint64_t lo = 0) { return {hi, lo}; }

TEST(BTreeTest, InsertAndLookupSmall) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt1"), true).ok());
  BufferPool pool(&file, 64);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(K(5), 50).ok());
  ASSERT_TRUE(tree->Insert(K(3), 30).ok());
  ASSERT_TRUE(tree->Insert(K(9), 90).ok());
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(3))), 30u);
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(5))), 50u);
  EXPECT_FALSE(tree->Lookup(K(4)).ok());
  EXPECT_EQ(tree->size(), 3u);
}

TEST(BTreeTest, OverwriteKeepsSize) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt2"), true).ok());
  BufferPool pool(&file, 64);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(K(1), 10).ok());
  ASSERT_TRUE(tree->Insert(K(1), 11).ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(1))), 11u);
}

/// Model check: random inserts + range scans vs std::map, with a pool far
/// smaller than the data so splits and evictions are exercised.
class BTreeModelCheck : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModelCheck, AgreesWithStdMap) {
  PageFile file;
  ASSERT_TRUE(
      file.Open(TempPath("btm" + std::to_string(GetParam())), true).ok());
  BufferPool pool(&file, 16);
  auto tree_r = BTree::Create(&pool);
  ASSERT_TRUE(tree_r.ok());
  BTree& tree = tree_r.ValueOrDie();

  Rng rng(GetParam());
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    Key128 key = K(rng.Uniform(5000), rng.Uniform(4));
    uint64_t value = rng.Next();
    ASSERT_TRUE(tree.Insert(key, value).ok());
    model[{key.hi, key.lo}] = value;
  }
  EXPECT_EQ(tree.size(), model.size());

  // Point lookups.
  for (int i = 0; i < 500; ++i) {
    Key128 key = K(rng.Uniform(5000), rng.Uniform(4));
    auto it = model.find({key.hi, key.lo});
    auto r = tree.Lookup(key);
    if (it == model.end()) {
      EXPECT_FALSE(r.ok());
    } else {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.ValueOrDie(), it->second);
    }
  }

  // Range scans: ordered and complete.
  for (int i = 0; i < 50; ++i) {
    uint64_t a = rng.Uniform(5000), b = rng.Uniform(5000);
    if (a > b) std::swap(a, b);
    Key128 lo = K(a, 0), hi = K(b, ~0ULL);
    std::vector<std::pair<uint64_t, uint64_t>> got;
    ASSERT_TRUE(tree.RangeScan(lo, hi, [&](const BTree::Item& item) {
                      got.emplace_back(item.key.hi, item.key.lo);
                      return true;
                    }).ok());
    std::vector<std::pair<uint64_t, uint64_t>> want;
    for (auto it = model.lower_bound({a, 0});
         it != model.end() && it->first.first <= b; ++it) {
      want.push_back(it->first);
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelCheck, ::testing::Range(1, 4));

TEST(BTreeTest, BulkLoadEqualsInserts) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt3"), true).ok());
  BufferPool pool(&file, 32);

  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < 5000; ++i) items.push_back({K(i * 3, i), i});
  auto tree = BTree::BulkLoad(&pool, items);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 5000u);
  for (uint64_t i : {0ULL, 17ULL, 4999ULL}) {
    EXPECT_EQ(test::Unwrap(tree->Lookup(K(i * 3, i))), i);
  }
  EXPECT_FALSE(tree->Lookup(K(1, 0)).ok());

  // Full scan yields everything in order.
  uint64_t n = 0;
  Key128 prev = Key128::Min();
  ASSERT_TRUE(tree->RangeScan(Key128::Min(), Key128::Max(),
                              [&](const BTree::Item& item) {
                                EXPECT_TRUE(prev <= item.key);
                                prev = item.key;
                                ++n;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(n, 5000u);

  // Inserts still work after bulk load.
  ASSERT_TRUE(tree->Insert(K(1, 0), 999).ok());
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(1, 0))), 999u);
  EXPECT_EQ(tree->size(), 5001u);
}

TEST(BTreeTest, EmptyBulkLoad) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt4"), true).ok());
  BufferPool pool(&file, 16);
  auto tree = BTree::BulkLoad(&pool, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_FALSE(tree->Lookup(K(1)).ok());
}

TEST(DiskTripleStoreTest, ScanAgreesWithMemoryStore) {
  Rng rng(77);
  rdf::TripleStore mem;
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 3000; ++i) {
    rdf::Triple t(static_cast<rdf::TermId>(1 + rng.Uniform(100)),
                  static_cast<rdf::TermId>(1 + rng.Uniform(8)),
                  static_cast<rdf::TermId>(1 + rng.Uniform(200)));
    mem.AddEncoded(t);
    triples.push_back(t);
  }
  auto disk_r = DiskTripleStore::Create(TempPath("dts1"), /*pool_pages=*/32);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;
  ASSERT_TRUE(disk.BulkLoad(triples).ok());
  mem.Compact();
  EXPECT_EQ(disk.size(), mem.Count(rdf::TriplePattern()));

  for (int mask = 0; mask < 8; ++mask) {
    rdf::TriplePattern pat;
    if (mask & 1) pat.s = static_cast<rdf::TermId>(1 + rng.Uniform(100));
    if (mask & 2) pat.p = static_cast<rdf::TermId>(1 + rng.Uniform(8));
    if (mask & 4) pat.o = static_cast<rdf::TermId>(1 + rng.Uniform(200));
    EXPECT_EQ(disk.Count(pat), mem.Count(pat)) << "mask=" << mask;
  }
}

TEST(DiskTripleStoreTest, InsertAfterBulkLoad) {
  auto disk_r = DiskTripleStore::Create(TempPath("dts2"), 32);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;
  ASSERT_TRUE(disk.BulkLoad({{1, 2, 3}, {4, 5, 6}}).ok());
  ASSERT_TRUE(disk.Insert({7, 8, 9}).ok());
  EXPECT_EQ(disk.Count(rdf::TriplePattern()), 3u);
  EXPECT_EQ(disk.Count({7, 8, 9}), 1u);
  EXPECT_EQ(disk.Count({rdf::kInvalidTermId, 8, rdf::kInvalidTermId}), 1u);
}

TEST(DiskTripleStoreTest, BoundedMemory) {
  // 50k triples through a 64-page (512 KiB) pool: memory stays capped.
  Rng rng(5);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 50000; ++i) {
    triples.emplace_back(static_cast<rdf::TermId>(1 + rng.Uniform(10000)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(20)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(10000)));
  }
  auto disk_r = DiskTripleStore::Create(TempPath("dts3"), 64);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;
  ASSERT_TRUE(disk.BulkLoad(triples).ok());
  EXPECT_LE(disk.MemoryUsage(), 64u * kPageSize);
  EXPECT_GT(disk.pool().evictions(), 0u);
  // Queries still work with the tiny pool.
  EXPECT_GT(disk.Count({rdf::kInvalidTermId, 1, rdf::kInvalidTermId}), 0u);
}

TEST(CrackingTest, ResultsMatchSortedBaseline) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.UniformDouble(0, 1000));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  CrackerColumn cracker(values);
  for (int q = 0; q < 100; ++q) {
    double lo = rng.UniformDouble(0, 900);
    double hi = lo + rng.UniformDouble(0, 100);
    uint64_t expected = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), hi) -
        std::lower_bound(sorted.begin(), sorted.end(), lo));
    EXPECT_EQ(cracker.CountRange(lo, hi), expected) << "query " << q;
  }
  EXPECT_GT(cracker.num_cracks(), 0u);
}

TEST(CrackingTest, RangeReturnsExactValues) {
  CrackerColumn cracker({5, 1, 9, 3, 7, 2, 8});
  std::vector<double> got = cracker.Range(3, 8);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<double>{3, 5, 7}));
  EXPECT_DOUBLE_EQ(cracker.SumRange(3, 8), 15.0);
}

TEST(CrackingTest, WorkDecreasesOverSession) {
  // The adaptive-indexing property: later queries touch fewer elements.
  Rng rng(13);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(rng.UniformDouble(0, 1.0));
  CrackerColumn cracker(values);

  uint64_t before_first = cracker.elements_touched();
  cracker.CountRange(0.4, 0.6);
  uint64_t first_cost = cracker.elements_touched() - before_first;

  for (int q = 0; q < 50; ++q) {
    double lo = rng.UniformDouble(0, 0.9);
    cracker.CountRange(lo, lo + 0.05);
  }
  uint64_t before_last = cracker.elements_touched();
  cracker.CountRange(0.41, 0.59);
  uint64_t last_cost = cracker.elements_touched() - before_last;
  EXPECT_LT(last_cost, first_cost / 2);
}

/// Failure injection at the syscall seam: transfers at most `max_chunk`
/// bytes per pread/pwrite and fails every `eintr_every`-th call with
/// EINTR — the short-transfer/interrupt behavior POSIX permits, which the
/// page I/O retry loops must absorb without corrupting pages.
class ShortIoPageFile : public PageFile {
 public:
  ShortIoPageFile(size_t max_chunk, uint64_t eintr_every)
      : max_chunk_(max_chunk), eintr_every_(eintr_every) {}

  uint64_t raw_calls() const { return calls_; }

 protected:
  ssize_t PreadSome(void* buf, size_t count, off_t offset) override {
    if (++calls_ % eintr_every_ == 0) {
      errno = EINTR;
      return -1;
    }
    return PageFile::PreadSome(buf, std::min(count, max_chunk_), offset);
  }

  ssize_t PwriteSome(const void* buf, size_t count, off_t offset) override {
    if (++calls_ % eintr_every_ == 0) {
      errno = EINTR;
      return -1;
    }
    return PageFile::PwriteSome(buf, std::min(count, max_chunk_), offset);
  }

 private:
  size_t max_chunk_;
  uint64_t eintr_every_;
  uint64_t calls_ = 0;
};

TEST(ShortIoTest, PageSurvivesShortTransfersAndEintr) {
  // 1000-byte transfers force ceil(8192/1000) = 9 raw calls per page, and
  // every 3rd call is interrupted on top of that.
  ShortIoPageFile file(/*max_chunk=*/1000, /*eintr_every=*/3);
  ASSERT_TRUE(file.Open(TempPath("shortio1"), true).ok());
  char out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) out[i] = static_cast<char>(i * 7 % 251);
  ASSERT_TRUE(file.WritePage(0, out).ok());
  char in[kPageSize] = {};
  ASSERT_TRUE(file.ReadPage(0, in).ok());
  EXPECT_EQ(0, std::memcmp(out, in, kPageSize));
  // One logical read + one logical write, many raw calls underneath.
  EXPECT_EQ(file.reads(), 1u);
  EXPECT_EQ(file.writes(), 1u);
  EXPECT_GT(file.raw_calls(), 18u);
  ASSERT_TRUE(file.Close().ok());
}

TEST(ShortIoTest, BTreeRoundTripsOverFlakyIo) {
  ShortIoPageFile file(/*max_chunk=*/4096, /*eintr_every=*/5);
  ASSERT_TRUE(file.Open(TempPath("shortio2"), true).ok());
  BufferPool pool(&file, 16);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree->Insert({i * 2654435761u, 0}, i).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  for (uint64_t i = 0; i < 5000; ++i) {
    auto r = tree->Lookup({i * 2654435761u, 0});
    ASSERT_TRUE(r.ok());
  }
}

TEST(PageFileTest, SyncFlushesOpenFile) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("sync1"), true).ok());
  char buf[kPageSize] = {42};
  ASSERT_TRUE(file.WritePage(0, buf).ok());
  EXPECT_TRUE(file.Sync().ok());
  ASSERT_TRUE(file.Close().ok());
  // Sync on a closed/unopened file is an error, not a crash.
  PageFile closed;
  EXPECT_FALSE(closed.Sync().ok());
}

/// Failure injection: a PageFile whose reads start failing after a set
/// number of operations. Verifies errors propagate (not crash) through
/// the buffer pool and B+-tree.
class FlakyPageFile : public PageFile {
 public:
  explicit FlakyPageFile(uint64_t fail_after) : fail_after_(fail_after) {}

  Status ReadPage(PageId id, void* buf) override {
    if (ops_++ >= fail_after_) {
      return Status::IoError("injected read failure");
    }
    return PageFile::ReadPage(id, buf);
  }

 private:
  uint64_t fail_after_;
  uint64_t ops_ = 0;
};

TEST(FailureInjectionTest, ReadErrorsPropagateThroughBTree) {
  FlakyPageFile file(/*fail_after=*/40);
  ASSERT_TRUE(file.Open(TempPath("flaky1"), true).ok());
  BufferPool pool(&file, 8);  // tiny pool forces re-reads
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(1);
  Status failure = Status::OK();
  for (int i = 0; i < 100000; ++i) {
    Status s = tree->Insert({rng.Next(), 0}, 1);
    if (!s.ok()) {
      failure = s;
      break;
    }
  }
  ASSERT_FALSE(failure.ok()) << "injected failure never surfaced";
  EXPECT_EQ(failure.code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, LookupReportsIoError) {
  FlakyPageFile file(/*fail_after=*/1000000);  // healthy during build
  ASSERT_TRUE(file.Open(TempPath("flaky2"), true).ok());
  auto pool = std::make_unique<BufferPool>(&file, 8);
  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < 50000; ++i) items.push_back({{i, 0}, i});
  auto tree = BTree::BulkLoad(pool.get(), items);
  ASSERT_TRUE(tree.ok());

  // Rebuild the pool over a now-failing file view: all reads fail.
  FlakyPageFile dead(/*fail_after=*/0);
  ASSERT_TRUE(dead.Open(TempPath("flaky2"), false).ok());
  BufferPool dead_pool(&dead, 8);
  BTree attached = BTree::Attach(&dead_pool, tree->root(), tree->size());
  auto r = attached.Lookup({7, 0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CrackingTest, RepeatedQueryIsFree) {
  CrackerColumn cracker({4, 2, 6, 8, 1});
  cracker.CountRange(2, 6);
  uint64_t touched = cracker.elements_touched();
  cracker.CountRange(2, 6);
  EXPECT_EQ(cracker.elements_touched(), touched);
}

// ---- leaf codec ----

TEST(LeafCodecTest, VarintRoundTrip) {
  const uint64_t values[] = {0,    1,        127,        128,
                             300,  16383,    16384,      (1ULL << 32) - 1,
                             1ULL << 32,     ~0ULL};
  uint8_t buf[16];
  for (uint64_t v : values) {
    uint8_t* end = PutVarint64(buf, v);
    EXPECT_EQ(static_cast<size_t>(end - buf), VarintLength(v));
    uint64_t back = 0;
    const uint8_t* rd = GetVarint64(buf, end, &back);
    ASSERT_NE(rd, nullptr) << v;
    EXPECT_EQ(rd, end);
    EXPECT_EQ(back, v);
    // Truncated input must fail, not read past the limit.
    if (end - buf > 1) {
      EXPECT_EQ(GetVarint64(buf, end - 1, &back), nullptr) << v;
    }
  }
}

TEST(LeafCodecTest, BuildDecodeFindRoundTrip) {
  alignas(8) uint8_t page[kPageSize] = {};
  const size_t header = 16;
  CompressedLeafBuilder builder(page, header);
  // Clustered keys (shared hi runs) with a mix of zero and set values —
  // the triple-index shape the format is tuned for.
  std::vector<BTree::Item> items;
  for (uint64_t hi = 10; hi < 40; ++hi) {
    for (uint64_t lo = 0; lo < 20; lo += 3) {
      items.push_back({{hi << 8, lo * 7}, (hi + lo) % 3 == 0 ? hi + lo : 0});
    }
  }
  for (const BTree::Item& item : items) {
    ASSERT_TRUE(builder.Append(item.key, item.value));
  }
  const uint16_t count = builder.Finish();
  ASSERT_EQ(count, items.size());

  CompressedLeafReader reader(page, header, count);
  std::vector<BTree::Item> decoded;
  reader.DecodeFrom(Key128::Min(), &decoded);
  ASSERT_EQ(decoded.size(), items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_TRUE(decoded[i].key == items[i].key) << i;
    EXPECT_EQ(decoded[i].value, items[i].value) << i;
  }

  // Point lookups: every key found, gaps absent.
  for (const BTree::Item& item : items) {
    uint64_t v = ~0ULL;
    ASSERT_TRUE(reader.Find(item.key, &v));
    EXPECT_EQ(v, item.value);
  }
  uint64_t v;
  EXPECT_FALSE(reader.Find({1, 1}, &v));
  EXPECT_FALSE(reader.Find({items[3].key.hi, items[3].key.lo + 1}, &v));

  // Mid-page seek: DecodeFrom(k) returns exactly the suffix from k on.
  const Key128 mid = items[items.size() / 2].key;
  decoded.clear();
  reader.DecodeFrom(mid, &decoded);
  ASSERT_EQ(decoded.size(), items.size() - items.size() / 2);
  EXPECT_TRUE(decoded.front().key == mid);
}

TEST(LeafCodecTest, CompressedPageHoldsManyMoreClusteredEntries) {
  alignas(8) uint8_t page[kPageSize] = {};
  CompressedLeafBuilder builder(page, 16);
  // Dense SPO-like keys: small gaps, zero values.
  size_t n = 0;
  while (builder.Append({1000 + n / 16, (n % 16) * 3}, 0)) ++n;
  const size_t fixed_capacity = (kPageSize - 16) / 24;
  EXPECT_GE(n, 2 * fixed_capacity)
      << "compressed leaf should pack >=2x the fixed-format entries";
}

// ---- BulkLoad edge cases (both leaf formats) ----

class BTreeFormatTest : public ::testing::TestWithParam<LeafFormat> {
 protected:
  static std::string Name() {
    return GetParam() == LeafFormat::kFixed ? "fixed" : "compressed";
  }
};

TEST_P(BTreeFormatTest, BulkLoadEmpty) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bl0" + Name()), true).ok());
  BufferPool pool(&file, 16);
  auto tree = BTree::BulkLoad(&pool, {}, GetParam());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_FALSE(tree->Lookup(K(1)).ok());
  // An empty-loaded tree accepts inserts in its declared format.
  bool inserted = false;
  ASSERT_TRUE(tree->Insert(K(5, 5), 1, &inserted).ok());
  EXPECT_TRUE(inserted);
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(5, 5))), 1u);
}

TEST_P(BTreeFormatTest, BulkLoadSingleItem) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bl1" + Name()), true).ok());
  BufferPool pool(&file, 16);
  auto tree = BTree::BulkLoad(&pool, {{K(42, 7), 99}}, GetParam());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(42, 7))), 99u);
  EXPECT_FALSE(tree->Lookup(K(42, 8)).ok());
}

TEST_P(BTreeFormatTest, BulkLoadExactlyOneFullLeaf) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bl2" + Name()), true).ok());
  BufferPool pool(&file, 16);
  // The fixed bulk loader packs (capacity - 1) entries per leaf; fill
  // exactly that so the tree is a single full leaf with no internal level.
  const size_t per_leaf = (kPageSize - 16) / 24 - 1;
  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < per_leaf; ++i) items.push_back({K(i), i});
  auto tree = BTree::BulkLoad(&pool, items, GetParam());
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), per_leaf);
  if (GetParam() == LeafFormat::kFixed) {
    EXPECT_EQ(tree->height(), 1);
  }
  uint64_t n = 0;
  ASSERT_TRUE(tree->RangeScan(Key128::Min(), Key128::Max(),
                              [&](const BTree::Item& item) {
                                EXPECT_EQ(item.key.hi, n);
                                ++n;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(n, per_leaf);
  // The next insert still works (splits if the leaf is full).
  ASSERT_TRUE(tree->Insert(K(per_leaf), per_leaf).ok());
  EXPECT_EQ(tree->size(), per_leaf + 1);
}

TEST_P(BTreeFormatTest, BulkLoadRejectsNonAscendingInput) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bl3" + Name()), true).ok());
  BufferPool pool(&file, 16);
  // Duplicate key.
  auto dup = BTree::BulkLoad(&pool, {{K(1), 1}, {K(1), 2}}, GetParam());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.status().code(), StatusCode::kInvalidArgument);
  // Out of order.
  auto desc = BTree::BulkLoad(&pool, {{K(2), 1}, {K(1), 2}}, GetParam());
  ASSERT_FALSE(desc.ok());
  EXPECT_EQ(desc.status().code(), StatusCode::kInvalidArgument);
}

TEST_P(BTreeFormatTest, RangeScanRunsConcatenationEqualsRangeScan) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bl4" + Name()), true).ok());
  BufferPool pool(&file, 32);
  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < 8000; ++i) items.push_back({K(i / 5, i % 5), i});
  auto tree = BTree::BulkLoad(&pool, items, GetParam());
  ASSERT_TRUE(tree.ok());

  const Key128 lo = K(37, 1), hi = K(1200, 2);
  std::vector<BTree::Item> via_scan;
  ASSERT_TRUE(tree->RangeScan(lo, hi, [&](const BTree::Item& item) {
                    via_scan.push_back(item);
                    return true;
                  }).ok());
  std::vector<BTree::Item> via_runs;
  size_t num_runs = 0;
  ASSERT_TRUE(tree->RangeScanRuns(lo, hi,
                                  [&](const BTree::Item* run, size_t n) {
                                    via_runs.insert(via_runs.end(), run,
                                                    run + n);
                                    ++num_runs;
                                    return true;
                                  })
                  .ok());
  ASSERT_EQ(via_runs.size(), via_scan.size());
  for (size_t i = 0; i < via_scan.size(); ++i) {
    EXPECT_TRUE(via_runs[i].key == via_scan[i].key) << i;
    EXPECT_EQ(via_runs[i].value, via_scan[i].value) << i;
  }
  // Runs are leaf-granular: far fewer callbacks than items.
  EXPECT_LT(num_runs, via_scan.size() / 8);

  // Early exit: one run, then stop.
  size_t calls = 0;
  ASSERT_TRUE(tree->RangeScanRuns(lo, hi,
                                  [&](const BTree::Item*, size_t) {
                                    ++calls;
                                    return false;
                                  })
                  .ok());
  EXPECT_EQ(calls, 1u);
}

INSTANTIATE_TEST_SUITE_P(Formats, BTreeFormatTest,
                         ::testing::Values(LeafFormat::kFixed,
                                           LeafFormat::kCompressed));

/// Model check of the compressed leaf format under random point inserts:
/// exercises decode/re-encode in place and compressed-leaf splits against
/// std::map, with evictions (16-page pool).
TEST(BTreeCompressedTest, RandomInsertsAgreeWithStdMap) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("btc1"), true).ok());
  BufferPool pool(&file, 16);
  auto tree_r = BTree::Create(&pool, LeafFormat::kCompressed);
  ASSERT_TRUE(tree_r.ok());
  BTree& tree = tree_r.ValueOrDie();

  Rng rng(99);
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    Key128 key = K(rng.Uniform(3000), rng.Uniform(4));
    uint64_t value = rng.Next();
    ASSERT_TRUE(tree.Insert(key, value).ok());
    model[{key.hi, key.lo}] = value;
  }
  EXPECT_EQ(tree.size(), model.size());

  for (int i = 0; i < 500; ++i) {
    Key128 key = K(rng.Uniform(3000), rng.Uniform(4));
    auto it = model.find({key.hi, key.lo});
    auto r = tree.Lookup(key);
    if (it == model.end()) {
      EXPECT_FALSE(r.ok());
    } else {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.ValueOrDie(), it->second);
    }
  }

  std::vector<std::pair<uint64_t, uint64_t>> got;
  ASSERT_TRUE(tree.RangeScan(Key128::Min(), Key128::Max(),
                             [&](const BTree::Item& item) {
                               got.emplace_back(item.key.hi, item.key.lo);
                               return true;
                             })
                  .ok());
  std::vector<std::pair<uint64_t, uint64_t>> want;
  for (const auto& [k, v] : model) want.push_back(k);
  EXPECT_EQ(got, want);
}

/// Same data under both leaf formats: identical query results, far fewer
/// pages for the compressed layout.
TEST(BTreeCompressedTest, FormatsAgreeAndCompressedUsesFewerPages) {
  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < 60000; ++i) items.push_back({K(i / 8, i % 8), 0});

  PageFile fixed_file, comp_file;
  ASSERT_TRUE(fixed_file.Open(TempPath("fmt_f"), true).ok());
  ASSERT_TRUE(comp_file.Open(TempPath("fmt_c"), true).ok());
  BufferPool fixed_pool(&fixed_file, 64), comp_pool(&comp_file, 64);
  auto fixed = BTree::BulkLoad(&fixed_pool, items, LeafFormat::kFixed);
  auto comp = BTree::BulkLoad(&comp_pool, items, LeafFormat::kCompressed);
  ASSERT_TRUE(fixed.ok() && comp.ok());

  const Key128 lo = K(100, 0), hi = K(5000, ~0ULL);
  std::vector<Key128> from_fixed, from_comp;
  ASSERT_TRUE(fixed->RangeScan(lo, hi, [&](const BTree::Item& item) {
                     from_fixed.push_back(item.key);
                     return true;
                   }).ok());
  ASSERT_TRUE(comp->RangeScan(lo, hi, [&](const BTree::Item& item) {
                    from_comp.push_back(item.key);
                    return true;
                  }).ok());
  ASSERT_EQ(from_fixed.size(), from_comp.size());
  for (size_t i = 0; i < from_fixed.size(); ++i) {
    EXPECT_TRUE(from_fixed[i] == from_comp[i]) << i;
  }

  EXPECT_LE(comp_file.num_pages() * 2, fixed_file.num_pages())
      << "compressed layout should use <= half the pages";
}

// ---- aggregated indexes ----

TEST(DiskTripleStoreTest, AggregatesExactAfterBulkLoadAndInsert) {
  auto disk_r =
      DiskTripleStore::Create(TempPath("agg1"), 64, LeafFormat::kCompressed);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;

  Rng rng(11);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 5000; ++i) {
    triples.emplace_back(static_cast<rdf::TermId>(1 + rng.Uniform(50)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(6)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(400)));
  }
  ASSERT_TRUE(disk.BulkLoad(triples).ok());

  auto brute_pair = [&](rdf::TermId s, rdf::TermId p) {
    uint64_t n = 0;
    Status st = disk.Scan(rdf::TriplePattern(s, p, rdf::kInvalidTermId),
                          [&](const rdf::Triple&) {
                            ++n;
                            return true;
                          });
    EXPECT_TRUE(st.ok());
    return n;
  };
  for (rdf::TermId s = 1; s <= 50; ++s) {
    for (rdf::TermId p = 1; p <= 6; ++p) {
      ASSERT_EQ(disk.PairCount(s, p), brute_pair(s, p)) << s << " " << p;
    }
  }
  for (rdf::TermId p = 1; p <= 7; ++p) {
    uint64_t brute = 0;
    for (rdf::TermId s = 1; s <= 50; ++s) brute += brute_pair(s, p);
    ASSERT_EQ(disk.PredicateCount(p), brute) << p;
  }
  EXPECT_EQ(disk.PairCount(51, 1), 0u);

  // Point inserts keep the aggregates exact: a new triple bumps both, a
  // duplicate bumps neither.
  const uint64_t sp_before = disk.PairCount(1, 1);
  const uint64_t p_before = disk.PredicateCount(1);
  ASSERT_TRUE(disk.Insert({1, 1, 999}).ok());
  EXPECT_EQ(disk.PairCount(1, 1), sp_before + 1);
  EXPECT_EQ(disk.PredicateCount(1), p_before + 1);
  ASSERT_TRUE(disk.Insert({1, 1, 999}).ok());
  EXPECT_EQ(disk.PairCount(1, 1), sp_before + 1);
  EXPECT_EQ(disk.PredicateCount(1), p_before + 1);
}

TEST(DiskTripleStoreTest, ScanRunsMatchesScanAcrossFormats) {
  Rng rng(21);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 4000; ++i) {
    triples.emplace_back(static_cast<rdf::TermId>(1 + rng.Uniform(80)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(5)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(300)));
  }
  for (LeafFormat format : {LeafFormat::kFixed, LeafFormat::kCompressed}) {
    auto disk_r = DiskTripleStore::Create(
        TempPath(format == LeafFormat::kFixed ? "sr_f" : "sr_c"), 32, format);
    ASSERT_TRUE(disk_r.ok());
    DiskTripleStore& disk = **disk_r;
    ASSERT_TRUE(disk.BulkLoad(triples).ok());
    for (int mask = 0; mask < 8; ++mask) {
      rdf::TriplePattern pat;
      if (mask & 1) pat.s = 17;
      if (mask & 2) pat.p = 3;
      if (mask & 4) pat.o = 150;
      std::vector<rdf::Triple> via_scan, via_runs;
      ASSERT_TRUE(disk.Scan(pat, [&](const rdf::Triple& t) {
                        via_scan.push_back(t);
                        return true;
                      }).ok());
      ASSERT_TRUE(disk.ScanRuns(pat,
                                [&](const rdf::Triple* run, size_t n) {
                                  via_runs.insert(via_runs.end(), run,
                                                  run + n);
                                  return true;
                                })
                      .ok());
      ASSERT_EQ(via_runs.size(), via_scan.size()) << "mask=" << mask;
      for (size_t i = 0; i < via_scan.size(); ++i) {
        EXPECT_EQ(via_runs[i], via_scan[i]) << "mask=" << mask << " i=" << i;
      }
    }
  }
}

}  // namespace
}  // namespace lodviz::storage
