#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <map>
#include <string>

#include "common/random.h"
#include "rdf/triple_store.h"
#include "storage/btree.h"
#include "storage/buffer_pool.h"
#include "storage/cracking.h"
#include "storage/disk_triple_store.h"
#include "storage/page_file.h"
#include "test_util.h"

namespace lodviz::storage {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/lodviz_" + name + "_" +
         std::to_string(::getpid());
}

TEST(PageFileTest, AllocateWriteRead) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("pf1"), /*truncate=*/true).ok());
  auto p0 = file.AllocatePage();
  auto p1 = file.AllocatePage();
  ASSERT_TRUE(p0.ok() && p1.ok());
  EXPECT_EQ(p0.ValueOrDie(), 0u);
  EXPECT_EQ(p1.ValueOrDie(), 1u);
  EXPECT_EQ(file.num_pages(), 2u);

  char out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) out[i] = static_cast<char>(i % 251);
  ASSERT_TRUE(file.WritePage(1, out).ok());
  char in[kPageSize] = {};
  ASSERT_TRUE(file.ReadPage(1, in).ok());
  EXPECT_EQ(0, std::memcmp(out, in, kPageSize));
  EXPECT_GE(file.reads(), 1u);
  EXPECT_GE(file.writes(), 1u);
  ASSERT_TRUE(file.Close().ok());
}

TEST(PageFileTest, ReadPastEndFails) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("pf2"), true).ok());
  char buf[kPageSize];
  EXPECT_FALSE(file.ReadPage(5, buf).ok());
}

TEST(BufferPoolTest, HitAndMissAccounting) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bp1"), true).ok());
  BufferPool pool(&file, 4);
  auto p = pool.NewPage();
  ASSERT_TRUE(p.ok());
  PageId id = p->page_id();
  p->data()[0] = 42;
  p->MarkDirty();
  p->Release();

  auto again = pool.Fetch(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->data()[0], 42);
  EXPECT_EQ(pool.hits(), 1u);
  EXPECT_EQ(pool.misses(), 0u);
}

TEST(BufferPoolTest, EvictsLruAndWritesBackDirty) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bp2"), true).ok());
  BufferPool pool(&file, 4);
  std::vector<PageId> ids;
  for (int i = 0; i < 10; ++i) {
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    p->data()[0] = static_cast<uint8_t>(i);
    p->MarkDirty();
    ids.push_back(p->page_id());
  }
  EXPECT_GT(pool.evictions(), 0u);
  // All pages must read back their data even after eviction.
  for (int i = 0; i < 10; ++i) {
    auto p = pool.Fetch(ids[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p->data()[0], static_cast<uint8_t>(i));
  }
}

TEST(BufferPoolTest, AllPinnedIsResourceExhausted) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bp3"), true).ok());
  BufferPool pool(&file, 4);
  std::vector<PageRef> pins;
  for (int i = 0; i < 4; ++i) {
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    pins.push_back(std::move(p).ValueOrDie());
  }
  auto fifth = pool.NewPage();
  EXPECT_FALSE(fifth.ok());
  EXPECT_EQ(fifth.status().code(), StatusCode::kResourceExhausted);
  pins.clear();  // unpin
  EXPECT_TRUE(pool.NewPage().ok());
}

TEST(BufferPoolTest, FlushAllPersists) {
  std::string path = TempPath("bp4");
  PageId id;
  {
    PageFile file;
    ASSERT_TRUE(file.Open(path, true).ok());
    BufferPool pool(&file, 4);
    auto p = pool.NewPage();
    ASSERT_TRUE(p.ok());
    id = p->page_id();
    p->data()[100] = 77;
    p->MarkDirty();
    p->Release();
    ASSERT_TRUE(pool.FlushAll().ok());
  }
  PageFile file;
  ASSERT_TRUE(file.Open(path, false).ok());
  char buf[kPageSize];
  ASSERT_TRUE(file.ReadPage(id, buf).ok());
  EXPECT_EQ(buf[100], 77);
}

Key128 K(uint64_t hi, uint64_t lo = 0) { return {hi, lo}; }

TEST(BTreeTest, InsertAndLookupSmall) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt1"), true).ok());
  BufferPool pool(&file, 64);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(K(5), 50).ok());
  ASSERT_TRUE(tree->Insert(K(3), 30).ok());
  ASSERT_TRUE(tree->Insert(K(9), 90).ok());
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(3))), 30u);
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(5))), 50u);
  EXPECT_FALSE(tree->Lookup(K(4)).ok());
  EXPECT_EQ(tree->size(), 3u);
}

TEST(BTreeTest, OverwriteKeepsSize) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt2"), true).ok());
  BufferPool pool(&file, 64);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  ASSERT_TRUE(tree->Insert(K(1), 10).ok());
  ASSERT_TRUE(tree->Insert(K(1), 11).ok());
  EXPECT_EQ(tree->size(), 1u);
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(1))), 11u);
}

/// Model check: random inserts + range scans vs std::map, with a pool far
/// smaller than the data so splits and evictions are exercised.
class BTreeModelCheck : public ::testing::TestWithParam<int> {};

TEST_P(BTreeModelCheck, AgreesWithStdMap) {
  PageFile file;
  ASSERT_TRUE(
      file.Open(TempPath("btm" + std::to_string(GetParam())), true).ok());
  BufferPool pool(&file, 16);
  auto tree_r = BTree::Create(&pool);
  ASSERT_TRUE(tree_r.ok());
  BTree& tree = tree_r.ValueOrDie();

  Rng rng(GetParam());
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> model;
  for (int i = 0; i < 20000; ++i) {
    Key128 key = K(rng.Uniform(5000), rng.Uniform(4));
    uint64_t value = rng.Next();
    ASSERT_TRUE(tree.Insert(key, value).ok());
    model[{key.hi, key.lo}] = value;
  }
  EXPECT_EQ(tree.size(), model.size());

  // Point lookups.
  for (int i = 0; i < 500; ++i) {
    Key128 key = K(rng.Uniform(5000), rng.Uniform(4));
    auto it = model.find({key.hi, key.lo});
    auto r = tree.Lookup(key);
    if (it == model.end()) {
      EXPECT_FALSE(r.ok());
    } else {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(r.ValueOrDie(), it->second);
    }
  }

  // Range scans: ordered and complete.
  for (int i = 0; i < 50; ++i) {
    uint64_t a = rng.Uniform(5000), b = rng.Uniform(5000);
    if (a > b) std::swap(a, b);
    Key128 lo = K(a, 0), hi = K(b, ~0ULL);
    std::vector<std::pair<uint64_t, uint64_t>> got;
    ASSERT_TRUE(tree.RangeScan(lo, hi, [&](const BTree::Item& item) {
                      got.emplace_back(item.key.hi, item.key.lo);
                      return true;
                    }).ok());
    std::vector<std::pair<uint64_t, uint64_t>> want;
    for (auto it = model.lower_bound({a, 0});
         it != model.end() && it->first.first <= b; ++it) {
      want.push_back(it->first);
    }
    EXPECT_EQ(got, want);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BTreeModelCheck, ::testing::Range(1, 4));

TEST(BTreeTest, BulkLoadEqualsInserts) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt3"), true).ok());
  BufferPool pool(&file, 32);

  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < 5000; ++i) items.push_back({K(i * 3, i), i});
  auto tree = BTree::BulkLoad(&pool, items);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 5000u);
  for (uint64_t i : {0ULL, 17ULL, 4999ULL}) {
    EXPECT_EQ(test::Unwrap(tree->Lookup(K(i * 3, i))), i);
  }
  EXPECT_FALSE(tree->Lookup(K(1, 0)).ok());

  // Full scan yields everything in order.
  uint64_t n = 0;
  Key128 prev = Key128::Min();
  ASSERT_TRUE(tree->RangeScan(Key128::Min(), Key128::Max(),
                              [&](const BTree::Item& item) {
                                EXPECT_TRUE(prev <= item.key);
                                prev = item.key;
                                ++n;
                                return true;
                              })
                  .ok());
  EXPECT_EQ(n, 5000u);

  // Inserts still work after bulk load.
  ASSERT_TRUE(tree->Insert(K(1, 0), 999).ok());
  EXPECT_EQ(test::Unwrap(tree->Lookup(K(1, 0))), 999u);
  EXPECT_EQ(tree->size(), 5001u);
}

TEST(BTreeTest, EmptyBulkLoad) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("bt4"), true).ok());
  BufferPool pool(&file, 16);
  auto tree = BTree::BulkLoad(&pool, {});
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->size(), 0u);
  EXPECT_FALSE(tree->Lookup(K(1)).ok());
}

TEST(DiskTripleStoreTest, ScanAgreesWithMemoryStore) {
  Rng rng(77);
  rdf::TripleStore mem;
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 3000; ++i) {
    rdf::Triple t(static_cast<rdf::TermId>(1 + rng.Uniform(100)),
                  static_cast<rdf::TermId>(1 + rng.Uniform(8)),
                  static_cast<rdf::TermId>(1 + rng.Uniform(200)));
    mem.AddEncoded(t);
    triples.push_back(t);
  }
  auto disk_r = DiskTripleStore::Create(TempPath("dts1"), /*pool_pages=*/32);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;
  ASSERT_TRUE(disk.BulkLoad(triples).ok());
  mem.Compact();
  EXPECT_EQ(disk.size(), mem.Count(rdf::TriplePattern()));

  for (int mask = 0; mask < 8; ++mask) {
    rdf::TriplePattern pat;
    if (mask & 1) pat.s = static_cast<rdf::TermId>(1 + rng.Uniform(100));
    if (mask & 2) pat.p = static_cast<rdf::TermId>(1 + rng.Uniform(8));
    if (mask & 4) pat.o = static_cast<rdf::TermId>(1 + rng.Uniform(200));
    EXPECT_EQ(disk.Count(pat), mem.Count(pat)) << "mask=" << mask;
  }
}

TEST(DiskTripleStoreTest, InsertAfterBulkLoad) {
  auto disk_r = DiskTripleStore::Create(TempPath("dts2"), 32);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;
  ASSERT_TRUE(disk.BulkLoad({{1, 2, 3}, {4, 5, 6}}).ok());
  ASSERT_TRUE(disk.Insert({7, 8, 9}).ok());
  EXPECT_EQ(disk.Count(rdf::TriplePattern()), 3u);
  EXPECT_EQ(disk.Count({7, 8, 9}), 1u);
  EXPECT_EQ(disk.Count({rdf::kInvalidTermId, 8, rdf::kInvalidTermId}), 1u);
}

TEST(DiskTripleStoreTest, BoundedMemory) {
  // 50k triples through a 64-page (512 KiB) pool: memory stays capped.
  Rng rng(5);
  std::vector<rdf::Triple> triples;
  for (int i = 0; i < 50000; ++i) {
    triples.emplace_back(static_cast<rdf::TermId>(1 + rng.Uniform(10000)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(20)),
                         static_cast<rdf::TermId>(1 + rng.Uniform(10000)));
  }
  auto disk_r = DiskTripleStore::Create(TempPath("dts3"), 64);
  ASSERT_TRUE(disk_r.ok());
  DiskTripleStore& disk = **disk_r;
  ASSERT_TRUE(disk.BulkLoad(triples).ok());
  EXPECT_LE(disk.MemoryUsage(), 64u * kPageSize);
  EXPECT_GT(disk.pool().evictions(), 0u);
  // Queries still work with the tiny pool.
  EXPECT_GT(disk.Count({rdf::kInvalidTermId, 1, rdf::kInvalidTermId}), 0u);
}

TEST(CrackingTest, ResultsMatchSortedBaseline) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.UniformDouble(0, 1000));
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());

  CrackerColumn cracker(values);
  for (int q = 0; q < 100; ++q) {
    double lo = rng.UniformDouble(0, 900);
    double hi = lo + rng.UniformDouble(0, 100);
    uint64_t expected = static_cast<uint64_t>(
        std::lower_bound(sorted.begin(), sorted.end(), hi) -
        std::lower_bound(sorted.begin(), sorted.end(), lo));
    EXPECT_EQ(cracker.CountRange(lo, hi), expected) << "query " << q;
  }
  EXPECT_GT(cracker.num_cracks(), 0u);
}

TEST(CrackingTest, RangeReturnsExactValues) {
  CrackerColumn cracker({5, 1, 9, 3, 7, 2, 8});
  std::vector<double> got = cracker.Range(3, 8);
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, (std::vector<double>{3, 5, 7}));
  EXPECT_DOUBLE_EQ(cracker.SumRange(3, 8), 15.0);
}

TEST(CrackingTest, WorkDecreasesOverSession) {
  // The adaptive-indexing property: later queries touch fewer elements.
  Rng rng(13);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(rng.UniformDouble(0, 1.0));
  CrackerColumn cracker(values);

  uint64_t before_first = cracker.elements_touched();
  cracker.CountRange(0.4, 0.6);
  uint64_t first_cost = cracker.elements_touched() - before_first;

  for (int q = 0; q < 50; ++q) {
    double lo = rng.UniformDouble(0, 0.9);
    cracker.CountRange(lo, lo + 0.05);
  }
  uint64_t before_last = cracker.elements_touched();
  cracker.CountRange(0.41, 0.59);
  uint64_t last_cost = cracker.elements_touched() - before_last;
  EXPECT_LT(last_cost, first_cost / 2);
}

/// Failure injection at the syscall seam: transfers at most `max_chunk`
/// bytes per pread/pwrite and fails every `eintr_every`-th call with
/// EINTR — the short-transfer/interrupt behavior POSIX permits, which the
/// page I/O retry loops must absorb without corrupting pages.
class ShortIoPageFile : public PageFile {
 public:
  ShortIoPageFile(size_t max_chunk, uint64_t eintr_every)
      : max_chunk_(max_chunk), eintr_every_(eintr_every) {}

  uint64_t raw_calls() const { return calls_; }

 protected:
  ssize_t PreadSome(void* buf, size_t count, off_t offset) override {
    if (++calls_ % eintr_every_ == 0) {
      errno = EINTR;
      return -1;
    }
    return PageFile::PreadSome(buf, std::min(count, max_chunk_), offset);
  }

  ssize_t PwriteSome(const void* buf, size_t count, off_t offset) override {
    if (++calls_ % eintr_every_ == 0) {
      errno = EINTR;
      return -1;
    }
    return PageFile::PwriteSome(buf, std::min(count, max_chunk_), offset);
  }

 private:
  size_t max_chunk_;
  uint64_t eintr_every_;
  uint64_t calls_ = 0;
};

TEST(ShortIoTest, PageSurvivesShortTransfersAndEintr) {
  // 1000-byte transfers force ceil(8192/1000) = 9 raw calls per page, and
  // every 3rd call is interrupted on top of that.
  ShortIoPageFile file(/*max_chunk=*/1000, /*eintr_every=*/3);
  ASSERT_TRUE(file.Open(TempPath("shortio1"), true).ok());
  char out[kPageSize];
  for (size_t i = 0; i < kPageSize; ++i) out[i] = static_cast<char>(i * 7 % 251);
  ASSERT_TRUE(file.WritePage(0, out).ok());
  char in[kPageSize] = {};
  ASSERT_TRUE(file.ReadPage(0, in).ok());
  EXPECT_EQ(0, std::memcmp(out, in, kPageSize));
  // One logical read + one logical write, many raw calls underneath.
  EXPECT_EQ(file.reads(), 1u);
  EXPECT_EQ(file.writes(), 1u);
  EXPECT_GT(file.raw_calls(), 18u);
  ASSERT_TRUE(file.Close().ok());
}

TEST(ShortIoTest, BTreeRoundTripsOverFlakyIo) {
  ShortIoPageFile file(/*max_chunk=*/4096, /*eintr_every=*/5);
  ASSERT_TRUE(file.Open(TempPath("shortio2"), true).ok());
  BufferPool pool(&file, 16);
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  for (uint64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(tree->Insert({i * 2654435761u, 0}, i).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  for (uint64_t i = 0; i < 5000; ++i) {
    auto r = tree->Lookup({i * 2654435761u, 0});
    ASSERT_TRUE(r.ok());
  }
}

TEST(PageFileTest, SyncFlushesOpenFile) {
  PageFile file;
  ASSERT_TRUE(file.Open(TempPath("sync1"), true).ok());
  char buf[kPageSize] = {42};
  ASSERT_TRUE(file.WritePage(0, buf).ok());
  EXPECT_TRUE(file.Sync().ok());
  ASSERT_TRUE(file.Close().ok());
  // Sync on a closed/unopened file is an error, not a crash.
  PageFile closed;
  EXPECT_FALSE(closed.Sync().ok());
}

/// Failure injection: a PageFile whose reads start failing after a set
/// number of operations. Verifies errors propagate (not crash) through
/// the buffer pool and B+-tree.
class FlakyPageFile : public PageFile {
 public:
  explicit FlakyPageFile(uint64_t fail_after) : fail_after_(fail_after) {}

  Status ReadPage(PageId id, void* buf) override {
    if (ops_++ >= fail_after_) {
      return Status::IoError("injected read failure");
    }
    return PageFile::ReadPage(id, buf);
  }

 private:
  uint64_t fail_after_;
  uint64_t ops_ = 0;
};

TEST(FailureInjectionTest, ReadErrorsPropagateThroughBTree) {
  FlakyPageFile file(/*fail_after=*/40);
  ASSERT_TRUE(file.Open(TempPath("flaky1"), true).ok());
  BufferPool pool(&file, 8);  // tiny pool forces re-reads
  auto tree = BTree::Create(&pool);
  ASSERT_TRUE(tree.ok());
  Rng rng(1);
  Status failure = Status::OK();
  for (int i = 0; i < 100000; ++i) {
    Status s = tree->Insert({rng.Next(), 0}, 1);
    if (!s.ok()) {
      failure = s;
      break;
    }
  }
  ASSERT_FALSE(failure.ok()) << "injected failure never surfaced";
  EXPECT_EQ(failure.code(), StatusCode::kIoError);
}

TEST(FailureInjectionTest, LookupReportsIoError) {
  FlakyPageFile file(/*fail_after=*/1000000);  // healthy during build
  ASSERT_TRUE(file.Open(TempPath("flaky2"), true).ok());
  auto pool = std::make_unique<BufferPool>(&file, 8);
  std::vector<BTree::Item> items;
  for (uint64_t i = 0; i < 50000; ++i) items.push_back({{i, 0}, i});
  auto tree = BTree::BulkLoad(pool.get(), items);
  ASSERT_TRUE(tree.ok());

  // Rebuild the pool over a now-failing file view: all reads fail.
  FlakyPageFile dead(/*fail_after=*/0);
  ASSERT_TRUE(dead.Open(TempPath("flaky2"), false).ok());
  BufferPool dead_pool(&dead, 8);
  BTree attached = BTree::Attach(&dead_pool, tree->root(), tree->size());
  auto r = attached.Lookup({7, 0});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST(CrackingTest, RepeatedQueryIsFree) {
  CrackerColumn cracker({4, 2, 6, 8, 1});
  cracker.CountRange(2, 6);
  uint64_t touched = cracker.elements_touched();
  cracker.CountRange(2, 6);
  EXPECT_EQ(cracker.elements_touched(), touched);
}

}  // namespace
}  // namespace lodviz::storage
