// The SPARQL serving layer: result serialization goldens, the
// fingerprint-keyed plan cache (LRU, counters, collision handling), the
// Frontend's admission control and status mapping, and a concurrent
// server test that doubles as the TSan suite for serve (suite names
// start with "Serve" so check.sh's TSan gate picks them up).

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "serve/frontend.h"
#include "serve/http.h"
#include "serve/plan_cache.h"
#include "serve/serialize.h"
#include "serve/server.h"
#include "sparql/engine.h"
#include "sparql/fingerprint.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace lodviz::serve {
namespace {

rdf::TripleStore MakeStore() {
  rdf::TripleStore store;
  const char* doc = R"(
<http://x/a> <http://x/p> "hello" .
<http://x/a> <http://x/name> "Ann \"A\""@en .
<http://x/b> <http://x/p> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/b> <http://x/q> <http://x/a> .
)";
  LODVIZ_CHECK_OK(rdf::LoadNTriplesString(doc, &store).status());
  return store;
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

TEST(ServeSerializeTest, JsonBindingsGolden) {
  sparql::ResultTable t({"s", "v"});
  t.AddRow({{rdf::Term::Iri("http://x/a"), true},
            {rdf::Term::LangLiteral("Ann \"A\"", "en"), true}});
  t.AddRow({{rdf::Term::Literal(
                 "3", "http://www.w3.org/2001/XMLSchema#integer"),
             true},
            {rdf::Term(), false}});  // unbound cell must be absent
  const std::string json = ResultTableJson(t, /*is_ask=*/false);
  EXPECT_EQ(json,
            "{\"head\":{\"vars\":[\"s\",\"v\"]},\"results\":{\"bindings\":["
            "{\"s\":{\"type\":\"uri\",\"value\":\"http://x/a\"},"
            "\"v\":{\"type\":\"literal\",\"value\":\"Ann \\\"A\\\"\","
            "\"xml:lang\":\"en\"}},"
            "{\"s\":{\"type\":\"literal\",\"value\":\"3\","
            "\"datatype\":\"http://www.w3.org/2001/XMLSchema#integer\"}}"
            "]}}");
}

TEST(ServeSerializeTest, JsonAskGolden) {
  sparql::ResultTable t;
  t.ask_result = true;
  EXPECT_EQ(ResultTableJson(t, /*is_ask=*/true),
            "{\"head\":{},\"boolean\":true}");
}

TEST(ServeSerializeTest, TsvGolden) {
  sparql::ResultTable t({"s", "v"});
  t.AddRow({{rdf::Term::Iri("http://x/a"), true},
            {rdf::Term::Literal("plain"), true}});
  t.AddRow({{rdf::Term::Blank("b0"), true}, {rdf::Term(), false}});
  EXPECT_EQ(ResultTableTsv(t, /*is_ask=*/false),
            "?s\t?v\n<http://x/a>\t\"plain\"\n_:b0\t\n");
}

TEST(ServeSerializeTest, SerializationIsDeterministic) {
  rdf::TripleStore store = MakeStore();
  sparql::QueryEngine engine(&store);
  const char* q = "SELECT ?s ?o WHERE { ?s ?p ?o } ORDER BY ?s ?o";
  auto a = engine.ExecuteString(q);
  auto b = engine.ExecuteString(q);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(ResultTableJson(a.ValueOrDie(), false),
            ResultTableJson(b.ValueOrDie(), false));
  EXPECT_EQ(ResultTableTsv(a.ValueOrDie(), false),
            ResultTableTsv(b.ValueOrDie(), false));
}

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

class ServePlanCacheTest : public ::testing::Test {
 protected:
  ServePlanCacheTest() : store_(MakeStore()), engine_(&store_) {}

  sparql::QueryPlan PlanFor(const std::string& text) {
    auto q = sparql::ParseQuery(text);
    LODVIZ_CHECK_OK(q.status());
    return engine_.Plan(q.ValueOrDie());
  }

  rdf::TripleStore store_;
  sparql::QueryEngine engine_;
};

TEST_F(ServePlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  EXPECT_EQ(cache.Lookup(1, "k1"), nullptr);
  cache.Insert(1, "k1", PlanFor("SELECT ?s WHERE { ?s ?p ?o }"));
  auto hit = cache.Lookup(1, "k1");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(cache.size(), 1u);
}

TEST_F(ServePlanCacheTest, LruEvictsOldest) {
  PlanCache cache(2);
  const sparql::QueryPlan plan = PlanFor("SELECT ?s WHERE { ?s ?p ?o }");
  cache.Insert(1, "k1", plan);
  cache.Insert(2, "k2", plan);
  // Touch k1 so k2 becomes the LRU victim.
  EXPECT_NE(cache.Lookup(1, "k1"), nullptr);
  cache.Insert(3, "k3", plan);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.Lookup(1, "k1"), nullptr);
  EXPECT_EQ(cache.Lookup(2, "k2"), nullptr);  // evicted
  EXPECT_NE(cache.Lookup(3, "k3"), nullptr);
}

TEST_F(ServePlanCacheTest, FingerprintCollisionIsMissNotWrongPlan) {
  PlanCache cache(4);
  cache.Insert(42, "query-A", PlanFor("SELECT ?s WHERE { ?s ?p ?o }"));
  // Same fingerprint, different canonical bytes: must NOT return A's plan.
  obs::Counter& collisions = obs::MetricRegistry::Global().GetCounter(
      "serve.plan_cache.collisions");
  const uint64_t before = collisions.value();
  EXPECT_EQ(cache.Lookup(42, "query-B"), nullptr);
  EXPECT_EQ(collisions.value(), before + 1);
}

TEST_F(ServePlanCacheTest, CountersAdvance) {
  obs::MetricRegistry& reg = obs::MetricRegistry::Global();
  obs::Counter& hits = reg.GetCounter("serve.plan_cache.hits");
  obs::Counter& misses = reg.GetCounter("serve.plan_cache.misses");
  obs::Counter& evictions = reg.GetCounter("serve.plan_cache.evictions");
  const uint64_t h0 = hits.value(), m0 = misses.value(),
                 e0 = evictions.value();
  PlanCache cache(1);
  const sparql::QueryPlan plan = PlanFor("SELECT ?s WHERE { ?s ?p ?o }");
  EXPECT_EQ(cache.Lookup(1, "k1"), nullptr);  // miss
  cache.Insert(1, "k1", plan);
  EXPECT_NE(cache.Lookup(1, "k1"), nullptr);  // hit
  cache.Insert(2, "k2", plan);                // evicts k1
  EXPECT_EQ(hits.value(), h0 + 1);
  EXPECT_EQ(misses.value(), m0 + 1);
  EXPECT_EQ(evictions.value(), e0 + 1);
}

TEST_F(ServePlanCacheTest, ZeroCapacityNeverStores) {
  PlanCache cache(0);
  cache.Insert(1, "k1", PlanFor("SELECT ?s WHERE { ?s ?p ?o }"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(1, "k1"), nullptr);
}

// ---------------------------------------------------------------------------
// Frontend
// ---------------------------------------------------------------------------

TEST(ServeFrontendTest, AnswersSelectAndAsk) {
  rdf::TripleStore store = MakeStore();
  Frontend frontend(&store, FrontendOptions());
  QueryRequest req;
  req.query = "SELECT ?s WHERE { ?s <http://x/q> <http://x/a> }";
  QueryResponse resp = frontend.Handle(req);
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_EQ(resp.content_type, "application/sparql-results+json");
  EXPECT_NE(resp.body.find("http://x/b"), std::string::npos);
  EXPECT_FALSE(resp.plan_cache_hit);

  // Same query again: identical bytes, now from the plan cache.
  QueryResponse warm = frontend.Handle(req);
  EXPECT_TRUE(warm.plan_cache_hit);
  EXPECT_EQ(warm.body, resp.body);

  req.query = "ASK { ?s <http://x/p> \"hello\" }";
  req.format = ResultFormat::kTsv;
  resp = frontend.Handle(req);
  EXPECT_EQ(resp.status, RequestStatus::kOk);
  EXPECT_EQ(resp.body, "true\n");
}

TEST(ServeFrontendTest, ParseErrorIs400) {
  rdf::TripleStore store = MakeStore();
  Frontend frontend(&store, FrontendOptions());
  QueryRequest req;
  req.query = "SELECT ?s WHERE { ?s ?p ?o } LIMIT 99999999999999999999";
  QueryResponse resp = frontend.Handle(req);
  EXPECT_EQ(resp.status, RequestStatus::kBadRequest);
  EXPECT_EQ(resp.content_type, "text/plain");
}

TEST(ServeFrontendTest, BudgetExhaustionIs504) {
  rdf::TripleStore store;
  std::string doc;
  for (int i = 0; i < 100; ++i) {
    doc += "<http://x/s" + std::to_string(i) + "> <http://x/p> <http://x/o" +
           std::to_string(i) + "> .\n";
  }
  LODVIZ_CHECK_OK(rdf::LoadNTriplesString(doc, &store).status());
  FrontendOptions options;
  options.budget.max_intermediate_rows = 5;
  Frontend frontend(&store, options);
  QueryRequest req;
  req.query = "SELECT ?s ?o WHERE { ?s ?p ?o }";
  QueryResponse resp = frontend.Handle(req);
  EXPECT_EQ(resp.status, RequestStatus::kBudgetExceeded);
}

TEST(ServeFrontendTest, AdmissionControlShedsWhenSaturated) {
  rdf::TripleStore store = MakeStore();
  FrontendOptions options;
  options.max_concurrent = 0;  // every request is over the limit
  Frontend frontend(&store, options);
  obs::Counter& shed = obs::MetricRegistry::Global().GetCounter("serve.shed");
  const uint64_t before = shed.value();
  QueryRequest req;
  req.query = "SELECT ?s WHERE { ?s ?p ?o }";
  QueryResponse resp = frontend.Handle(req);
  EXPECT_EQ(resp.status, RequestStatus::kOverloaded);
  EXPECT_EQ(shed.value(), before + 1);
}

// ---------------------------------------------------------------------------
// HTTP parsing (network-facing: hostile bytes must be clean errors)
// ---------------------------------------------------------------------------

TEST(ServeHttpTest, RequestRoundTrip) {
  const std::string raw =
      "POST /sparql HTTP/1.1\r\nHost: x\r\nContent-Type: "
      "application/x-www-form-urlencoded\r\nContent-Length: 11\r\n\r\n"
      "query=ASK%7B";
  auto len = HttpRequestLength(raw);
  ASSERT_TRUE(len.ok());
  EXPECT_EQ(len.ValueOrDie(), raw.size() - 1);  // body is 11 of 12 bytes
  auto req = ParseHttpRequest(raw.substr(0, len.ValueOrDie()));
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->method, "POST");
  EXPECT_EQ(req->path, "/sparql");
  EXPECT_EQ(req->headers.at("content-type"),
            "application/x-www-form-urlencoded");
  EXPECT_EQ(req->body, "query=ASK%7");
}

TEST(ServeHttpTest, QueryStringDecoding) {
  auto req = ParseHttpRequest(
      "GET /sparql?query=SELECT%20%3Fs&format=json HTTP/1.1\r\n\r\n");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->params.at("query"), "SELECT ?s");
  EXPECT_EQ(req->params.at("format"), "json");
}

TEST(ServeHttpTest, HostileBytesAreErrors) {
  EXPECT_FALSE(ParseHttpRequest("GARBAGE\r\n\r\n").ok());
  EXPECT_FALSE(ParseHttpRequest("GET /x\r\n\r\n").ok());           // no version
  EXPECT_FALSE(ParseHttpRequest("GET /x FTP/1.0\r\n\r\n").ok());   // not HTTP
  EXPECT_FALSE(
      ParseHttpRequest("GET /x HTTP/1.1\r\nBadHeader\r\n\r\n").ok());
  EXPECT_FALSE(HttpRequestLength(
                   "GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n")
                   .ok());
  EXPECT_FALSE(HttpRequestLength(
                   "GET /x HTTP/1.1\r\nContent-Length: 1e9\r\n\r\n")
                   .ok());
  EXPECT_FALSE(PercentDecode("abc%").ok());
  EXPECT_FALSE(PercentDecode("abc%2").ok());
  EXPECT_FALSE(PercentDecode("abc%zz").ok());
}

TEST(ServeHttpTest, IncompleteRequestWantsMoreBytes) {
  auto no_head = HttpRequestLength("GET /x HTTP/1.1\r\n");
  ASSERT_TRUE(no_head.ok());
  EXPECT_EQ(no_head.ValueOrDie(), 0u);
  auto short_body =
      HttpRequestLength("POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc");
  ASSERT_TRUE(short_body.ok());
  EXPECT_EQ(short_body.ValueOrDie(), 0u);
}

// ---------------------------------------------------------------------------
// Concurrent serving (the serve TSan suite)
// ---------------------------------------------------------------------------

std::string BlockingFetch(int port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n =
        ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char chunk[2048];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;
    response.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(ServeConcurrencyTest, ParallelClientsGetConsistentAnswers) {
  rdf::TripleStore store = MakeStore();
  Frontend frontend(&store, FrontendOptions());
  exec::ThreadPool pool(4);
  Server::Options sopts;
  sopts.port = 0;
  sopts.num_workers = 3;
  Server server(&frontend, &pool, sopts);
  LODVIZ_CHECK_OK(server.Start());
  const int port = server.port();

  const std::string request =
      "GET /sparql?query=SELECT%20%3Fs%20WHERE%20%7B%20%3Fs%20"
      "%3Chttp%3A%2F%2Fx%2Fq%3E%20%3Fo%20%7D HTTP/1.1\r\nHost: x\r\n\r\n";
  const std::string reference = BlockingFetch(port, request);
  auto ref = ParseHttpResponse(reference);
  ASSERT_TRUE(ref.ok());
  ASSERT_EQ(ref->status, 200) << ref->body;

  // 6 client threads x 10 requests racing against 3 server workers; all
  // bodies must be identical (std::thread is fine in tests).
  std::vector<std::thread> clients;
  std::vector<int> mismatches(6, 0);
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < 10; ++r) {
        auto resp = ParseHttpResponse(BlockingFetch(port, request));
        if (!resp.ok() || resp->status != 200 ||
            resp->body != ref->body) {
          ++mismatches[c];
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < 6; ++c) EXPECT_EQ(mismatches[c], 0) << "client " << c;

  server.Stop();
  pool.Shutdown();
}

TEST(ServeConcurrencyTest, StopWhileClientsInFlight) {
  rdf::TripleStore store = MakeStore();
  Frontend frontend(&store, FrontendOptions());
  exec::ThreadPool pool(3);
  Server::Options sopts;
  sopts.port = 0;
  sopts.num_workers = 2;
  Server server(&frontend, &pool, sopts);
  LODVIZ_CHECK_OK(server.Start());
  const int port = server.port();

  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([port] {
      for (int r = 0; r < 5; ++r) {
        // Responses may be complete, refused, or cut off mid-stop; the
        // only requirement is no crash, race, or hang.
        BlockingFetch(port,
                      "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
      }
    });
  }
  server.Stop();
  for (std::thread& t : clients) t.join();
  pool.Shutdown();
}

TEST(ServeConcurrencyTest, RestartAfterStop) {
  rdf::TripleStore store = MakeStore();
  Frontend frontend(&store, FrontendOptions());
  exec::ThreadPool pool(3);
  for (int round = 0; round < 2; ++round) {
    Server::Options sopts;
    sopts.port = 0;
    sopts.num_workers = 2;
    Server server(&frontend, &pool, sopts);
    LODVIZ_CHECK_OK(server.Start());
    auto resp = ParseHttpResponse(BlockingFetch(
        server.port(), "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"));
    ASSERT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    server.Stop();
  }
  pool.Shutdown();
}

}  // namespace
}  // namespace lodviz::serve
