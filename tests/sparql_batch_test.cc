// Vectorized-execution tests: ColumnBatch representation invariants
// (constant/dense segment encoding, selection vectors, batch-list
// addressing), engine-level row-vs-batch agreement at the kBatchRows chunk
// boundaries (0/1/1023/1024/1025 rows), and the GROUP BY determinism pin —
// group output order is ascending TermId-vector order, a contract the
// FNV-hashed grouping map must reproduce by sorting its keys (the former
// std::map got it implicitly).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/column_batch.h"
#include "sparql/engine.h"

namespace lodviz::sparql {
namespace {

using rdf::kInvalidTermId;
using rdf::TermId;

TEST(ColumnBatchTest, SegmentStaysConstantOnAgreement) {
  ColumnSegment seg;
  EXPECT_TRUE(seg.constant());
  EXPECT_EQ(seg.constant_value(), kInvalidTermId);

  seg.Append(7, 0);
  EXPECT_TRUE(seg.constant());
  EXPECT_EQ(seg.constant_value(), 7u);
  seg.AppendRepeat(7, 100, 1);
  EXPECT_TRUE(seg.constant());

  const TermId same[3] = {7, 7, 7};
  seg.AppendDense(same, 3, 101);
  EXPECT_TRUE(seg.constant());
  EXPECT_EQ(seg.at(0), 7u);
  EXPECT_EQ(seg.at(103), 7u);
}

TEST(ColumnBatchTest, SegmentDensifiesOnDisagreementAndBackfills) {
  ColumnSegment seg;
  seg.AppendRepeat(5, 4, 0);  // 4 rows of 5, still constant
  ASSERT_TRUE(seg.constant());
  seg.Append(9, 4);  // first disagreement: rows 0-3 must backfill to 5
  EXPECT_FALSE(seg.constant());
  for (uint32_t r = 0; r < 4; ++r) EXPECT_EQ(seg.at(r), 5u) << r;
  EXPECT_EQ(seg.at(4), 9u);

  // A dense run that starts agreeing and then diverges mid-run.
  ColumnSegment seg2;
  seg2.Append(1, 0);
  const TermId run[4] = {1, 1, 2, 3};
  seg2.AppendDense(run, 4, 1);
  EXPECT_FALSE(seg2.constant());
  const TermId want[5] = {1, 1, 1, 2, 3};
  for (uint32_t r = 0; r < 5; ++r) EXPECT_EQ(seg2.at(r), want[r]) << r;
}

TEST(ColumnBatchTest, AppendRunKeepsCarriedColumnsConstant) {
  ColumnBatch batch(3);
  // Base solution: slot 0 bound to 42, slots 1-2 unbound; slot 1 varies.
  const TermId sol[3] = {42, kInvalidTermId, kInvalidTermId};
  const TermId vals[4] = {10, 11, 12, 13};
  const ColumnBatch::RunColumn var[1] = {{1, vals}};
  batch.AppendRun(sol, 4, var, 1);

  EXPECT_EQ(batch.rows(), 4u);
  EXPECT_TRUE(batch.col(0).constant());
  EXPECT_EQ(batch.col(0).constant_value(), 42u);
  EXPECT_FALSE(batch.col(1).constant());
  EXPECT_TRUE(batch.col(2).constant());
  EXPECT_EQ(batch.col(2).constant_value(), kInvalidTermId);
  for (uint32_t r = 0; r < 4; ++r) {
    EXPECT_EQ(batch.at(r, 1), vals[r]) << r;
  }
  TermId out[3];
  batch.GatherRow(2, out);
  EXPECT_EQ(out[0], 42u);
  EXPECT_EQ(out[1], 12u);
  EXPECT_EQ(out[2], kInvalidTermId);
}

TEST(ColumnBatchTest, SelectionRoundTrip) {
  ColumnBatch batch(2);
  for (TermId r = 0; r < 6; ++r) {
    const TermId row[2] = {r, 100 + r};
    batch.AppendRow(row);
  }
  EXPECT_EQ(batch.active(), 6u);
  EXPECT_FALSE(batch.has_selection());
  EXPECT_EQ(batch.ActiveRow(3), 3u);

  batch.SetSelection({0, 2, 5});
  EXPECT_EQ(batch.rows(), 6u);  // physical rows untouched
  EXPECT_EQ(batch.active(), 3u);
  EXPECT_TRUE(batch.has_selection());
  EXPECT_EQ(batch.ActiveRow(0), 0u);
  EXPECT_EQ(batch.ActiveRow(1), 2u);
  EXPECT_EQ(batch.ActiveRow(2), 5u);
  EXPECT_EQ(batch.at(batch.ActiveRow(2), 1), 105u);

  // Re-filtering installs a subset selection in physical indices — the
  // pattern FilterBatches uses on already-filtered batches.
  batch.SetSelection({2, 5});
  EXPECT_EQ(batch.active(), 2u);
  EXPECT_EQ(batch.at(batch.ActiveRow(0), 0), 2u);

  batch.Clear();
  EXPECT_EQ(batch.rows(), 0u);
  EXPECT_EQ(batch.active(), 0u);
  EXPECT_FALSE(batch.has_selection());
}

TEST(ColumnBatchTest, RowsToBatchesChunksAtBoundary) {
  const size_t width = 2;
  for (size_t n : {size_t{0}, size_t{1}, kBatchRows - 1, kBatchRows,
                   kBatchRows + 1}) {
    std::vector<TermId> data(n * width);
    for (size_t r = 0; r < n; ++r) {
      data[r * width] = static_cast<TermId>(r);
      data[r * width + 1] = static_cast<TermId>(r * 2);
    }
    std::vector<ColumnBatch> batches = RowsToBatches(data.data(), n, width);
    const size_t want_batches = (n + kBatchRows - 1) / kBatchRows;
    ASSERT_EQ(batches.size(), want_batches) << n;
    EXPECT_EQ(TotalActiveRows(batches), n) << n;
    if (n > kBatchRows) {
      EXPECT_EQ(batches[0].rows(), kBatchRows);
      EXPECT_EQ(batches[1].rows(), n - kBatchRows);
    }
    // Logical order is row order.
    const BatchListView view(batches);
    ASSERT_EQ(view.total(), n);
    size_t li = 0;
    view.ForEachRow(0, view.total(),
                    [&](const ColumnBatch& b, uint32_t phys) {
                      EXPECT_EQ(b.at(phys, 0), static_cast<TermId>(li));
                      ++li;
                    });
    EXPECT_EQ(li, n);
  }
}

TEST(ColumnBatchTest, BatchListViewSkipsEmptyAndHonorsSelections) {
  std::vector<ColumnBatch> batches;
  // Batch 0: 3 rows, selection keeps {1}. Batch 1: empty. Batch 2: 2 rows.
  batches.emplace_back(1);
  for (TermId r = 0; r < 3; ++r) {
    batches.back().AppendRow(&r);
  }
  batches.back().SetSelection({1});
  batches.emplace_back(1);
  batches.emplace_back(1);
  for (TermId r = 10; r < 12; ++r) {
    batches.back().AppendRow(&r);
  }

  const BatchListView view(batches);
  ASSERT_EQ(view.total(), 3u);
  std::vector<TermId> seen;
  view.ForEachRow(0, view.total(), [&](const ColumnBatch& b, uint32_t phys) {
    seen.push_back(b.at(phys, 0));
  });
  EXPECT_EQ(seen, (std::vector<TermId>{1, 10, 11}));

  // Locate agrees with the iteration, including sub-ranges.
  EXPECT_EQ(view.Locate(0).first, 0u);
  EXPECT_EQ(view.Locate(0).second, 1u);
  EXPECT_EQ(view.Locate(1).first, 2u);
  EXPECT_EQ(view.Locate(1).second, 0u);
  EXPECT_EQ(view.Locate(2).second, 1u);
  seen.clear();
  view.ForEachRow(1, 3, [&](const ColumnBatch& b, uint32_t phys) {
    seen.push_back(b.at(phys, 0));
  });
  EXPECT_EQ(seen, (std::vector<TermId>{10, 11}));
}

// ---------------------------------------------------------------------------
// Engine-level chunk-boundary agreement: build stores whose solution counts
// land exactly around kBatchRows and compare the two executors wholesale.
// ---------------------------------------------------------------------------

std::string Key(const ResultTable& t) {
  return (t.ask_result ? "ask:true\n" : "ask:false\n") +
         t.ToString(t.num_rows());
}

void FillStore(size_t n, rdf::TripleStore* store) {
  std::string doc;
  for (size_t i = 0; i < n; ++i) {
    const std::string num = std::to_string(i);
    std::string padded = num;
    padded.insert(0, 6 - padded.size(), '0');  // fixed-width subject names
    doc += "<http://z/s" + padded + "> <http://z/v> \"" + num +
           "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  }
  ASSERT_TRUE(rdf::LoadNTriplesString(doc, store).ok());
}

TEST(BatchBoundaryTest, RowAndBatchAgreeAroundChunkBoundaries) {
  static_assert(kBatchRows == 1024, "boundary sizes assume 1K chunks");
  const char* queries[] = {
      "SELECT ?s ?v WHERE { ?s <http://z/v> ?v . }",
      "SELECT ?s WHERE { ?s <http://z/v> ?v . FILTER(?v >= 512) }",
      "SELECT DISTINCT ?v WHERE { ?s <http://z/v> ?v . }",
      "SELECT ?s WHERE { ?s <http://z/v> ?v . } LIMIT 10 OFFSET 1020",
      "SELECT ?s ?v WHERE { ?s <http://z/v> ?v . } ORDER BY DESC(?v)",
      "SELECT (COUNT(*) AS ?n) (SUM(?v) AS ?sum) WHERE "
      "{ ?s <http://z/v> ?v . }",
      "ASK { ?s <http://z/v> ?v . FILTER(?v > 1023) }",
  };
  for (size_t n : {size_t{0}, size_t{1}, kBatchRows - 1, kBatchRows,
                   kBatchRows + 1}) {
    rdf::TripleStore store;
    FillStore(n, &store);
    QueryEngine::Options row_opts;
    row_opts.exec_mode = ExecMode::kRow;
    QueryEngine::Options batch_opts;
    batch_opts.exec_mode = ExecMode::kBatch;
    QueryEngine row_engine(&store, row_opts);
    QueryEngine batch_engine(&store, batch_opts);
    for (const char* q : queries) {
      auto row = row_engine.ExecuteString(q);
      auto batch = batch_engine.ExecuteString(q);
      ASSERT_TRUE(row.ok()) << n << " " << q << "\n"
                            << row.status().ToString();
      ASSERT_TRUE(batch.ok()) << n << " " << q << "\n"
                              << batch.status().ToString();
      EXPECT_EQ(Key(row.ValueOrDie()), Key(batch.ValueOrDie()))
          << "n=" << n << " " << q;
    }
    // Spot-check the specialized filter count so both modes being equal
    // cannot hide both being wrong.
    auto filtered = batch_engine.ExecuteString(
        "SELECT ?s WHERE { ?s <http://z/v> ?v . FILTER(?v >= 512) }");
    ASSERT_TRUE(filtered.ok());
    EXPECT_EQ(filtered.ValueOrDie().num_rows(), n > 512 ? n - 512 : 0u)
        << n;
  }
}

// ---------------------------------------------------------------------------
// GROUP BY output-order determinism.
// ---------------------------------------------------------------------------

TEST(GroupByDeterminismTest, OutputOrderIsAscendingGroupKeyIds) {
  // <http://g/B> is interned before <http://g/A> (document order), so its
  // TermId is smaller and its group must come FIRST — group order is
  // ascending TermId order, not lexicographic string order. This pins the
  // sorted-keys contract of the FNV-hashed grouping map (and documents
  // that the old std::map behaved identically: both sort the TermId key
  // vector).
  const char* doc = R"(
<http://g/b1> <http://g/type> <http://g/B> .
<http://g/a1> <http://g/type> <http://g/A> .
<http://g/a2> <http://g/type> <http://g/A> .
<http://g/a3> <http://g/type> <http://g/A> .
)";
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(doc, &store).ok());
  store.Compact();
  const char* q =
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s <http://g/type> ?t . } "
      "GROUP BY ?t";

  for (ExecMode mode : {ExecMode::kRow, ExecMode::kBatch}) {
    QueryEngine::Options opts;
    opts.exec_mode = mode;
    QueryEngine engine(&store, opts);
    std::string first;
    for (int repeat = 0; repeat < 5; ++repeat) {
      auto got = engine.ExecuteString(q);
      ASSERT_TRUE(got.ok());
      const ResultTable& t = got.ValueOrDie();
      ASSERT_EQ(t.num_rows(), 2u);
      EXPECT_EQ(t.rows()[0][0].term.lexical, "http://g/B");
      EXPECT_EQ(t.rows()[0][1].term.lexical, "1");
      EXPECT_EQ(t.rows()[1][0].term.lexical, "http://g/A");
      EXPECT_EQ(t.rows()[1][1].term.lexical, "3");
      // And the whole rendering is identical run to run (hash-map
      // iteration order must never leak into the output).
      if (repeat == 0) {
        first = Key(t);
      } else {
        EXPECT_EQ(first, Key(t)) << "mode " << static_cast<int>(mode);
      }
    }
  }
}

}  // namespace
}  // namespace lodviz::sparql
