// Hostile-input hardening for the SPARQL front door: every malformed,
// oversized, or adversarially nested query must come back as a clean
// Err — never a throw, crash, or hang. These inputs all reached the
// parser unsanitized once the serving layer exposed it to the network.

#include <gtest/gtest.h>

#include <string>

#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace lodviz::sparql {
namespace {

// ---------------------------------------------------------------------------
// Numeric bounds: LIMIT/OFFSET used to run through a bare std::stoll,
// which throws std::out_of_range on values past int64 — a remote crash.
// ---------------------------------------------------------------------------

TEST(SparqlHostileTest, OversizedLimitIsErrNotThrow) {
  auto q = ParseQuery(
      "SELECT ?s WHERE { ?s ?p ?o } LIMIT 99999999999999999999");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("LIMIT"), std::string::npos);
}

TEST(SparqlHostileTest, OversizedOffsetIsErrNotThrow) {
  auto q = ParseQuery(
      "SELECT ?s WHERE { ?s ?p ?o } OFFSET 18446744073709551616000");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().ToString().find("OFFSET"), std::string::npos);
}

TEST(SparqlHostileTest, NegativeLimitAndOffsetRejected) {
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o } LIMIT -1").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o } OFFSET -10").ok());
}

TEST(SparqlHostileTest, NonIntegerLimitRejected) {
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o } LIMIT 1.5").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o } LIMIT ten").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?s WHERE { ?s ?p ?o } LIMIT").ok());
}

TEST(SparqlHostileTest, SaneLimitStillParses) {
  auto q = ParseQuery("SELECT ?s WHERE { ?s ?p ?o } LIMIT 10 OFFSET 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->limit, 10);
  EXPECT_EQ(q->offset, 5);
}

// ---------------------------------------------------------------------------
// Truncation: a network peer can hang up mid-query at any byte.
// ---------------------------------------------------------------------------

TEST(SparqlHostileTest, TruncatedQueriesAreErrNotCrash) {
  const char* fragments[] = {
      "",
      "SELECT",
      "SELECT ?s",
      "SELECT ?s WHERE",
      "SELECT ?s WHERE {",
      "SELECT ?s WHERE { ?s",
      "SELECT ?s WHERE { ?s <http://x/p>",
      "SELECT ?s WHERE { ?s <http://x/p> ?o",
      "SELECT ?s WHERE { ?s <http://x/p> ?o . FILTER(",
      "SELECT ?s WHERE { ?s <http://x/p> ?o . FILTER(?o >",
      "SELECT ?s WHERE { ?s <http://x/p> ?o } ORDER BY",
      "PREFIX ex: <http://x/",
      "ASK {",
      "CONSTRUCT { ?s ?p ?o } WHERE {",
  };
  for (const char* f : fragments) {
    EXPECT_FALSE(ParseQuery(f).ok()) << "accepted truncated query: " << f;
  }
}

// ---------------------------------------------------------------------------
// Depth bombs: recursive-descent parsing must cap nesting, or a few
// kilobytes of '(' overflow the stack.
// ---------------------------------------------------------------------------

TEST(SparqlHostileTest, DeepParenNestingIsErrNotStackOverflow) {
  const std::string bomb = "SELECT ?s WHERE { ?s ?p ?o . FILTER(" +
                           std::string(20000, '(') + "1" +
                           std::string(20000, ')') + " > 0) }";
  EXPECT_FALSE(ParseQuery(bomb).ok());
}

TEST(SparqlHostileTest, DeepUnaryNestingIsErrNotStackOverflow) {
  // '!' recurses through ParseUnary without consuming a paren.
  const std::string bomb = "SELECT ?s WHERE { ?s ?p ?o . FILTER(" +
                           std::string(100000, '!') + "?s) }";
  EXPECT_FALSE(ParseQuery(bomb).ok());
}

TEST(SparqlHostileTest, DeepGroupNestingIsErrNotStackOverflow) {
  std::string bomb = "SELECT ?s WHERE ";
  bomb += std::string(20000, '{');
  bomb += " ?s ?p ?o ";
  bomb += std::string(20000, '}');
  EXPECT_FALSE(ParseQuery(bomb).ok());
}

TEST(SparqlHostileTest, ModerateNestingStillParses) {
  // Well under the cap: normal queries must be untouched by the guard.
  std::string q = "SELECT ?s WHERE { ?s ?p ?o . FILTER(";
  q += std::string(40, '(');
  q += "?o";
  q += std::string(40, ')');
  q += " > 0) }";
  auto parsed = ParseQuery(q);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
}

// ---------------------------------------------------------------------------
// ORDER BY comparator: mixed valid/invalid typed literals once mapped
// comparison errors to "equal", violating strict weak ordering — UB in
// std::sort, observed as crashes on hostile data. The fix gives every
// term a total order (numeric < temporal < boolean < everything else).
// ---------------------------------------------------------------------------

class OrderBySwoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Valid doubles, invalid doubles ("abc", empty), an IRI, a date, and
    // a plain string under one predicate — the comparator sees every
    // cross-class pair during the sort.
    const char* doc = R"(
<http://x/a> <http://x/v> "3.5"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://x/b> <http://x/v> "abc"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://x/c> <http://x/v> "1.5"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://x/d> <http://x/v> ""^^<http://www.w3.org/2001/XMLSchema#double> .
<http://x/e> <http://x/v> <http://x/not-a-number> .
<http://x/f> <http://x/v> "2016-01-01T00:00:00"^^<http://www.w3.org/2001/XMLSchema#dateTime> .
<http://x/g> <http://x/v> "plain" .
<http://x/h> <http://x/v> "NaN"^^<http://www.w3.org/2001/XMLSchema#double> .
<http://x/i> <http://x/v> "-7"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/j> <http://x/v> "true"^^<http://www.w3.org/2001/XMLSchema#boolean> .
)";
    LODVIZ_CHECK_OK(rdf::LoadNTriplesString(doc, &store_).status());
  }

  rdf::TripleStore store_;
};

TEST_F(OrderBySwoTest, MixedTypesSortWithoutCrashing) {
  QueryEngine engine(&store_);
  auto result = engine.ExecuteString(
      "SELECT ?s ?v WHERE { ?s <http://x/v> ?v } ORDER BY ?v ?s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 10u);

  // Numerics first, in value order; undecodable literals sort after all
  // decodable classes.
  const int v = result->ColumnIndex("v");
  ASSERT_GE(v, 0);
  EXPECT_EQ(result->rows()[0][v].term.lexical, "-7");
  EXPECT_EQ(result->rows()[1][v].term.lexical, "1.5");
  EXPECT_EQ(result->rows()[2][v].term.lexical, "3.5");
  EXPECT_EQ(result->rows()[3][v].term.lexical, "2016-01-01T00:00:00");
  EXPECT_EQ(result->rows()[4][v].term.lexical, "true");
}

TEST_F(OrderBySwoTest, SortIsDeterministicAcrossRuns) {
  QueryEngine engine(&store_);
  const char* q =
      "SELECT ?s ?v WHERE { ?s <http://x/v> ?v } ORDER BY DESC(?v) ?s";
  auto first = engine.ExecuteString(q);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  for (int i = 0; i < 5; ++i) {
    auto again = engine.ExecuteString(q);
    ASSERT_TRUE(again.ok());
    ASSERT_EQ(again->num_rows(), first->num_rows());
    const int s = again->ColumnIndex("s");
    ASSERT_GE(s, 0);
    for (size_t r = 0; r < first->num_rows(); ++r) {
      EXPECT_EQ(again->rows()[r][s].term.lexical,
                first->rows()[r][s].term.lexical)
          << "row " << r << " changed between runs";
    }
  }
}

TEST_F(OrderBySwoTest, SecondaryKeyBreaksValueTies) {
  // "03" and "3" decode to the same number; the secondary ?s key must
  // decide their order, which it can only do if the primary comparator
  // treats them as equivalent (not erroneous).
  rdf::TripleStore store;
  const char* doc = R"(
<http://x/b> <http://x/v> "03"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/a> <http://x/v> "3"^^<http://www.w3.org/2001/XMLSchema#integer> .
)";
  LODVIZ_CHECK_OK(rdf::LoadNTriplesString(doc, &store).status());
  QueryEngine engine(&store);
  auto result = engine.ExecuteString(
      "SELECT ?s ?v WHERE { ?s <http://x/v> ?v } ORDER BY ?v ?s");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->num_rows(), 2u);
  const int s = result->ColumnIndex("s");
  ASSERT_GE(s, 0);
  EXPECT_EQ(result->rows()[0][s].term.lexical, "http://x/a");
  EXPECT_EQ(result->rows()[1][s].term.lexical, "http://x/b");
}

// ---------------------------------------------------------------------------
// Execution budgets: the serving layer's defense against queries that
// parse fine but run forever or explode intermediate state.
// ---------------------------------------------------------------------------

TEST(SparqlBudgetTest, RowBudgetMapsToResourceExhausted) {
  rdf::TripleStore store;
  std::string doc;
  for (int i = 0; i < 200; ++i) {
    doc += "<http://x/s" + std::to_string(i) + "> <http://x/p> <http://x/o" +
           std::to_string(i) + "> .\n";
  }
  LODVIZ_CHECK_OK(rdf::LoadNTriplesString(doc, &store).status());

  QueryEngine::Options options;
  options.budget.max_intermediate_rows = 10;
  QueryEngine engine(&store, options);
  auto result = engine.ExecuteString("SELECT ?s ?o WHERE { ?s ?p ?o }");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(SparqlBudgetTest, UnlimitedBudgetChangesNothing) {
  rdf::TripleStore store;
  LODVIZ_CHECK_OK(
      rdf::LoadNTriplesString("<http://x/s> <http://x/p> <http://x/o> .\n",
                              &store)
          .status());
  QueryEngine engine(&store);  // default: no budget
  auto result = engine.ExecuteString("SELECT ?s WHERE { ?s ?p ?o }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 1u);
}

}  // namespace
}  // namespace lodviz::sparql
