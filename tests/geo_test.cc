#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/random.h"
#include "geo/geometry.h"
#include "geo/projection.h"
#include "geo/rtree.h"
#include "geo/tiles.h"

namespace lodviz::geo {
namespace {

TEST(RectTest, ContainsAndIntersects) {
  Rect r{0, 0, 10, 10};
  EXPECT_TRUE(r.Contains(Point{5, 5}));
  EXPECT_TRUE(r.Contains(Point{0, 0}));
  EXPECT_FALSE(r.Contains(Point{11, 5}));
  EXPECT_TRUE(r.Intersects(Rect{9, 9, 12, 12}));
  EXPECT_FALSE(r.Intersects(Rect{11, 11, 12, 12}));
  EXPECT_TRUE(r.Contains(Rect{1, 1, 2, 2}));
  EXPECT_FALSE(r.Contains(Rect{1, 1, 22, 2}));
}

TEST(RectTest, ExpandAndEnlargement) {
  Rect r = Rect::Empty();
  EXPECT_TRUE(r.IsEmpty());
  r.Expand(Point{1, 2});
  r.Expand(Point{3, -1});
  EXPECT_EQ(r, (Rect{1, -1, 3, 2}));
  EXPECT_DOUBLE_EQ(r.Area(), 6.0);
  EXPECT_DOUBLE_EQ(r.EnlargementFor(Rect{3, 2, 4, 3}), (3 * 4) - 6.0);
}

TEST(RectTest, DistanceSq) {
  Rect r{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(r.DistanceSq(Point{5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(r.DistanceSq(Point{13, 14}), 9.0 + 16.0);
  EXPECT_DOUBLE_EQ(r.DistanceSq(Point{-3, 5}), 9.0);
}

std::vector<RTree::Entry> RandomEntries(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<RTree::Entry> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    double x = rng.UniformDouble(0, 1000);
    double y = rng.UniformDouble(0, 1000);
    out.push_back({Rect{x, y, x + rng.UniformDouble(0, 5),
                        y + rng.UniformDouble(0, 5)},
                   i});
  }
  return out;
}

std::set<uint64_t> NaiveSearch(const std::vector<RTree::Entry>& entries,
                               const Rect& window) {
  std::set<uint64_t> ids;
  for (const auto& e : entries) {
    if (e.rect.Intersects(window)) ids.insert(e.id);
  }
  return ids;
}

std::set<uint64_t> TreeSearch(const RTree& tree, const Rect& window) {
  std::set<uint64_t> ids;
  tree.Search(window, [&](const RTree::Entry& e) {
    ids.insert(e.id);
    return true;
  });
  return ids;
}

/// Property test: R-tree window queries agree with a linear scan, for both
/// incremental insertion and STR bulk load, across sizes.
class RTreeAgreement : public ::testing::TestWithParam<size_t> {};

TEST_P(RTreeAgreement, InsertMatchesNaive) {
  auto entries = RandomEntries(GetParam(), 42 + GetParam());
  RTree tree(8);
  for (const auto& e : entries) tree.Insert(e.rect, e.id);
  EXPECT_EQ(tree.size(), entries.size());

  Rng rng(7);
  for (int q = 0; q < 20; ++q) {
    double x = rng.UniformDouble(0, 900);
    double y = rng.UniformDouble(0, 900);
    Rect window{x, y, x + 120, y + 120};
    EXPECT_EQ(TreeSearch(tree, window), NaiveSearch(entries, window));
  }
}

TEST_P(RTreeAgreement, BulkLoadMatchesNaive) {
  auto entries = RandomEntries(GetParam(), 87 + GetParam());
  RTree tree(16);
  tree.BulkLoad(entries);
  EXPECT_EQ(tree.size(), entries.size());

  Rng rng(9);
  for (int q = 0; q < 20; ++q) {
    double x = rng.UniformDouble(0, 900);
    double y = rng.UniformDouble(0, 900);
    Rect window{x, y, x + 80, y + 200};
    EXPECT_EQ(TreeSearch(tree, window), NaiveSearch(entries, window));
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, RTreeAgreement,
                         ::testing::Values(0, 1, 7, 50, 300, 2000));

TEST(RTreeTest, WindowQueryVisitsFewNodes) {
  auto entries = RandomEntries(20000, 3);
  RTree tree(16);
  tree.BulkLoad(entries);
  Rect tiny{500, 500, 510, 510};
  (void)tree.SearchAll(tiny);  // only the traversal counter matters here
  // A selective window must not visit anywhere near all nodes.
  EXPECT_LT(tree.nodes_visited, 200u);
  EXPECT_GE(tree.height(), 3);
}

TEST(RTreeTest, KNearestMatchesBruteForce) {
  auto entries = RandomEntries(500, 21);
  RTree tree(8);
  for (const auto& e : entries) tree.Insert(e.rect, e.id);

  Point q{500, 500};
  auto knn = tree.KNearest(q, 10);
  ASSERT_EQ(knn.size(), 10u);

  std::vector<double> brute;
  for (const auto& e : entries) brute.push_back(e.rect.DistanceSq(q));
  std::sort(brute.begin(), brute.end());
  for (size_t i = 0; i < knn.size(); ++i) {
    EXPECT_DOUBLE_EQ(knn[i].rect.DistanceSq(q), brute[i]);
  }
}

TEST(RTreeTest, EarlyStopSearch) {
  auto entries = RandomEntries(100, 33);
  RTree tree(8);
  for (const auto& e : entries) tree.Insert(e.rect, e.id);
  int seen = 0;
  tree.Search(Rect{0, 0, 1000, 1000}, [&](const RTree::Entry&) {
    ++seen;
    return seen < 5;
  });
  EXPECT_EQ(seen, 5);
}

TEST(TileKeyTest, PackAndFamily) {
  TileKey k{3, 5, 6};
  EXPECT_EQ(k.Parent(), (TileKey{2, 2, 3}));
  auto children = TileKey{2, 2, 3}.Children();
  EXPECT_EQ(children.size(), 4u);
  EXPECT_TRUE(std::any_of(children.begin(), children.end(),
                          [&](const TileKey& c) { return c == k || true; }));
  for (const TileKey& c : children) EXPECT_EQ(c.Parent(), (TileKey{2, 2, 3}));
  EXPECT_NE(TileKey({3, 5, 6}).Pack(), TileKey({3, 6, 5}).Pack());
}

TEST(TileSchemeTest, PointToTileAndBack) {
  TileScheme scheme(Rect{0, 0, 100, 100});
  TileKey k = scheme.TileForPoint(2, Point{30, 80});
  EXPECT_EQ(k, (TileKey{2, 1, 3}));
  Rect bounds = scheme.TileBounds(k);
  EXPECT_TRUE(bounds.Contains(Point{30, 80}));
}

TEST(TileSchemeTest, OutOfDomainClampsToEdge) {
  TileScheme scheme(Rect{0, 0, 100, 100});
  EXPECT_EQ(scheme.TileForPoint(2, Point{-50, 150}), (TileKey{2, 0, 3}));
}

TEST(TileSchemeTest, TilesInRectCoversWindow) {
  TileScheme scheme(Rect{0, 0, 100, 100});
  auto tiles = scheme.TilesInRect(3, Rect{10, 10, 40, 30});
  // Every tile must intersect the window and union must cover it.
  Rect covered = Rect::Empty();
  for (const TileKey& t : tiles) {
    Rect b = scheme.TileBounds(t);
    EXPECT_TRUE(b.Intersects(Rect{10, 10, 40, 30}));
    covered.Expand(b);
  }
  EXPECT_TRUE(covered.Contains(Rect{10, 10, 40, 30}));
}

TEST(TileIndexTest, CountsPerZoom) {
  TileScheme scheme(Rect{0, 0, 1, 1});
  TileIndex index(scheme, 3);
  Rng rng(3);
  for (uint64_t i = 0; i < 1000; ++i) {
    index.Add(i, Point{rng.UniformDouble(), rng.UniformDouble()});
  }
  // Zoom 0 has exactly one tile holding everything.
  EXPECT_EQ(index.Count(TileKey{0, 0, 0}), 1000u);
  // Zoom 1: four tiles partition the items.
  uint64_t z1 = 0;
  for (uint32_t x = 0; x < 2; ++x) {
    for (uint32_t y = 0; y < 2; ++y) z1 += index.Count(TileKey{1, x, y});
  }
  EXPECT_EQ(z1, 1000u);
  EXPECT_TRUE(index.Items(TileKey{3, 9, 9}).empty() ||
              !index.Items(TileKey{3, 7, 7}).empty());
}

TEST(ProjectionTest, RoundTrip) {
  Point p = ProjectEquirectangular(-74.0, 40.7);
  EXPECT_GT(p.x, 0.0);
  EXPECT_LT(p.x, 1.0);
  double lon, lat;
  UnprojectEquirectangular(p, &lon, &lat);
  EXPECT_NEAR(lon, -74.0, 1e-9);
  EXPECT_NEAR(lat, 40.7, 1e-9);
  EXPECT_TRUE(WorldDomain().Contains(p));
}

}  // namespace
}  // namespace lodviz::geo
