#include <gtest/gtest.h>

#include <algorithm>

#include "obs/query_log.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/lexer.h"
#include "sparql/parser.h"
#include "test_util.h"

namespace lodviz::sparql {
namespace {

TEST(LexerTest, TokenizesRepresentativeQuery) {
  auto tokens = Tokenize(
      "SELECT ?x WHERE { ?x <http://x/p> \"v\"@en . FILTER(?y >= 10) }");
  ASSERT_TRUE(tokens.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens.ValueOrDie()) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kKeyword);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  // Spot-check a few tokens.
  const auto& v = tokens.ValueOrDie();
  EXPECT_EQ(v[1].kind, TokenKind::kVar);
  EXPECT_EQ(v[1].text, "x");
  EXPECT_EQ(v[5].kind, TokenKind::kIriRef);
  EXPECT_EQ(v[6].kind, TokenKind::kString);
  EXPECT_EQ(v[7].kind, TokenKind::kLangTag);
  EXPECT_EQ(v[7].text, "en");
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  auto tokens = Tokenize("select Where fIlTeR");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ(tokens.ValueOrDie()[0].text, "SELECT");
  EXPECT_EQ(tokens.ValueOrDie()[1].text, "WHERE");
  EXPECT_EQ(tokens.ValueOrDie()[2].text, "FILTER");
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("<unterminated").ok());
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
  EXPECT_FALSE(Tokenize("? ").ok());
  EXPECT_FALSE(Tokenize("@@").ok());
}

TEST(ParserTest, BasicSelect) {
  auto q = ParseQuery("SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->form, QueryForm::kSelect);
  EXPECT_EQ(q->select_vars, (std::vector<std::string>{"s", "o"}));
  ASSERT_EQ(q->where.triples.size(), 1u);
  EXPECT_TRUE(IsVar(q->where.triples[0].s));
  EXPECT_FALSE(IsVar(q->where.triples[0].p));
}

TEST(ParserTest, PrefixExpansion) {
  auto q = ParseQuery(
      "PREFIX ex: <http://x/> SELECT ?s WHERE { ?s ex:knows ex:bob . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(AsTerm(q->where.triples[0].p).lexical, "http://x/knows");
  EXPECT_EQ(AsTerm(q->where.triples[0].o).lexical, "http://x/bob");
}

TEST(ParserTest, SemicolonAndCommaAbbreviations) {
  auto q = ParseQuery(
      "SELECT * WHERE { <http://x/a> <http://x/p> ?b , ?c ; <http://x/q> ?d . }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.triples.size(), 3u);
  // All share the subject.
  for (const auto& t : q->where.triples) {
    EXPECT_EQ(AsTerm(t.s).lexical, "http://x/a");
  }
  EXPECT_EQ(AsTerm(q->where.triples[0].p).lexical, "http://x/p");
  EXPECT_EQ(AsTerm(q->where.triples[1].p).lexical, "http://x/p");
  EXPECT_EQ(AsTerm(q->where.triples[2].p).lexical, "http://x/q");
}

TEST(ParserTest, RdfTypeShorthand) {
  auto q = ParseQuery("SELECT ?s WHERE { ?s a <http://x/Person> . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(AsTerm(q->where.triples[0].p).lexical,
            "http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
}

TEST(ParserTest, FilterPrecedence) {
  auto q = ParseQuery(
      "SELECT ?x WHERE { ?x <http://x/p> ?y . FILTER(?y > 1 + 2 * 3 && ?y < 100 || BOUND(?x)) }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->where.filters.size(), 1u);
  const Expr& root = *q->where.filters[0];
  EXPECT_EQ(root.kind, Expr::Kind::kBinary);
  EXPECT_EQ(root.bin_op, BinOp::kOr);  // || binds loosest
  EXPECT_EQ(root.args[0]->bin_op, BinOp::kAnd);
}

TEST(ParserTest, OptionalAndUnion) {
  auto q = ParseQuery(
      "SELECT * WHERE { ?s <http://x/p> ?o . "
      "OPTIONAL { ?s <http://x/q> ?r . } "
      "{ ?s <http://x/t1> ?u . } UNION { ?s <http://x/t2> ?u . } }");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->where.optionals.size(), 1u);
  EXPECT_EQ(q->where.union_branches.size(), 2u);
}

TEST(ParserTest, SolutionModifiers) {
  auto q = ParseQuery(
      "SELECT DISTINCT ?s WHERE { ?s ?p ?o . } ORDER BY DESC(?s) LIMIT 5 OFFSET 2");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->distinct);
  ASSERT_EQ(q->order_by.size(), 1u);
  EXPECT_FALSE(q->order_by[0].ascending);
  EXPECT_EQ(q->limit, 5);
  EXPECT_EQ(q->offset, 2);
}

TEST(ParserTest, Aggregates) {
  auto q = ParseQuery(
      "SELECT ?t (COUNT(*) AS ?n) (AVG(?age) AS ?avg) WHERE { ?s <http://x/t> ?t ; "
      "<http://x/age> ?age . } GROUP BY ?t");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_EQ(q->aggregates.size(), 2u);
  EXPECT_EQ(q->aggregates[0].fn, Aggregate::Fn::kCount);
  EXPECT_TRUE(q->aggregates[0].var.empty());
  EXPECT_EQ(q->aggregates[0].alias, "n");
  EXPECT_EQ(q->aggregates[1].fn, Aggregate::Fn::kAvg);
  EXPECT_EQ(q->aggregates[1].var, "age");
  EXPECT_EQ(q->group_by, (std::vector<std::string>{"t"}));
}

TEST(ParserTest, Ask) {
  auto q = ParseQuery("ASK { <http://x/a> ?p ?o . }");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->form, QueryForm::kAsk);
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("SELECT WHERE { }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x { ?x ?p ?o . } garbage").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { ?x unknown:p ?o . }").ok());
  EXPECT_FALSE(ParseQuery("SELECT ?x WHERE { \"lit\" ?p ?o . }").ok());
  EXPECT_FALSE(ParseQuery("FOO ?x WHERE { }").ok());
}

// ---- engine tests over a small social dataset ----

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    const char* doc = R"(
<http://x/alice> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/bob> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/carol> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Person> .
<http://x/acme> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://x/Company> .
<http://x/alice> <http://x/name> "Alice" .
<http://x/bob> <http://x/name> "Bob" .
<http://x/carol> <http://x/name> "Carol" .
<http://x/alice> <http://x/age> "30"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/bob> <http://x/age> "40"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/carol> <http://x/age> "35"^^<http://www.w3.org/2001/XMLSchema#integer> .
<http://x/alice> <http://x/knows> <http://x/bob> .
<http://x/bob> <http://x/knows> <http://x/carol> .
<http://x/alice> <http://x/worksAt> <http://x/acme> .
<http://x/alice> <http://x/city> "Athens" .
<http://x/bob> <http://x/city> "Melbourne" .
)";
    ASSERT_TRUE(rdf::LoadNTriplesString(doc, &store_).ok());
    engine_ = std::make_unique<QueryEngine>(&store_);
  }

  ResultTable Run(const std::string& q) {
    auto r = engine_->ExecuteString(q);
    EXPECT_TRUE(r.ok()) << q << "\n" << r.status().ToString();
    return r.ok() ? std::move(r).ValueOrDie() : ResultTable();
  }

  rdf::TripleStore store_;
  std::unique_ptr<QueryEngine> engine_;
};

TEST_F(EngineFixture, SingleStatement) {
  ResultTable t = Run("SELECT ?s WHERE { ?s <http://x/knows> <http://x/bob> . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "http://x/alice");
}

TEST_F(EngineFixture, TwoHopJoin) {
  ResultTable t = Run(
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "http://x/alice");
  EXPECT_EQ(t.rows()[0][1].term.lexical, "http://x/carol");
}

TEST_F(EngineFixture, NumericFilter) {
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 32 && ?a <= 40) } ORDER BY ?s");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "http://x/bob");
  EXPECT_EQ(t.rows()[1][0].term.lexical, "http://x/carol");
}

TEST_F(EngineFixture, ArithmeticInFilter) {
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a * 2 = 60) }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "http://x/alice");
}

TEST_F(EngineFixture, StringFunctions) {
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(CONTAINS(?n, \"aro\")) }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "http://x/carol");

  ResultTable t2 = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . FILTER(STRSTARTS(?n, \"A\")) }");
  ASSERT_EQ(t2.num_rows(), 1u);
}

TEST_F(EngineFixture, OptionalLeavesUnbound) {
  ResultTable t = Run(
      "SELECT ?s ?w WHERE { ?s a <http://x/Person> . "
      "OPTIONAL { ?s <http://x/worksAt> ?w . } } ORDER BY ?s");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_TRUE(t.rows()[0][1].bound);   // alice works
  EXPECT_FALSE(t.rows()[1][1].bound);  // bob doesn't
  EXPECT_FALSE(t.rows()[2][1].bound);  // carol doesn't
}

TEST_F(EngineFixture, BoundFilterOnOptional) {
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s a <http://x/Person> . "
      "OPTIONAL { ?s <http://x/worksAt> ?w . } FILTER(!BOUND(?w)) } ORDER BY ?s");
  ASSERT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "http://x/bob");
}

TEST_F(EngineFixture, UnionCombines) {
  ResultTable t = Run(
      "SELECT ?s WHERE { { ?s <http://x/city> \"Athens\" . } UNION "
      "{ ?s <http://x/city> \"Melbourne\" . } } ORDER BY ?s");
  ASSERT_EQ(t.num_rows(), 2u);
}

TEST_F(EngineFixture, DistinctAndLimit) {
  ResultTable all = Run("SELECT ?p WHERE { ?s ?p ?o . }");
  ResultTable distinct = Run("SELECT DISTINCT ?p WHERE { ?s ?p ?o . }");
  EXPECT_GT(all.num_rows(), distinct.num_rows());
  EXPECT_EQ(distinct.num_rows(), 6u);  // type, name, age, knows, worksAt, city

  ResultTable limited =
      Run("SELECT ?p WHERE { ?s ?p ?o . } LIMIT 3 OFFSET 1");
  EXPECT_EQ(limited.num_rows(), 3u);
}

TEST_F(EngineFixture, StarProjection) {
  ResultTable t = Run("SELECT * WHERE { ?s <http://x/knows> ?o . }");
  EXPECT_EQ(t.columns(), (std::vector<std::string>{"s", "o"}));
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(EngineFixture, AggregatesWithGroupBy) {
  ResultTable t = Run(
      "SELECT ?t (COUNT(*) AS ?n) WHERE { ?s a ?t . } GROUP BY ?t ORDER BY ?t");
  ASSERT_EQ(t.num_rows(), 2u);
  // Company: 1, Person: 3 (map ordering by group key string).
  int company = t.rows()[0][0].term.lexical == "http://x/Company" ? 0 : 1;
  EXPECT_EQ(t.rows()[company][1].term.lexical, "1");
  EXPECT_EQ(t.rows()[1 - company][1].term.lexical, "3");
}

TEST_F(EngineFixture, NumericAggregates) {
  ResultTable t = Run(
      "SELECT (SUM(?a) AS ?sum) (AVG(?a) AS ?avg) (MIN(?a) AS ?lo) (MAX(?a) AS ?hi) "
      "WHERE { ?s <http://x/age> ?a . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(test::Unwrap(t.rows()[0][0].term.AsDouble()), 105.0);
  EXPECT_EQ(test::Unwrap(t.rows()[0][1].term.AsDouble()), 35.0);
  EXPECT_EQ(t.rows()[0][2].term.lexical, "30");
  EXPECT_EQ(t.rows()[0][3].term.lexical, "40");
}

TEST_F(EngineFixture, CountDistinct) {
  ResultTable t = Run(
      "SELECT (COUNT(DISTINCT ?t) AS ?n) WHERE { ?s a ?t . }");
  ASSERT_EQ(t.num_rows(), 1u);
  EXPECT_EQ(t.rows()[0][0].term.lexical, "2");
}

TEST_F(EngineFixture, AskQueries) {
  EXPECT_TRUE(Run("ASK { <http://x/alice> <http://x/knows> ?x . }").ask_result);
  EXPECT_FALSE(Run("ASK { <http://x/carol> <http://x/knows> ?x . }").ask_result);
}

TEST_F(EngineFixture, UnknownConstantYieldsEmptyNotError) {
  ResultTable t = Run("SELECT ?o WHERE { <http://x/nobody> ?p ?o . }");
  EXPECT_EQ(t.num_rows(), 0u);
}

TEST_F(EngineFixture, OrderByDescending) {
  ResultTable t = Run(
      "SELECT ?s ?a WHERE { ?s <http://x/age> ?a . } ORDER BY DESC(?a)");
  ASSERT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.rows()[0][1].term.lexical, "40");
  EXPECT_EQ(t.rows()[2][1].term.lexical, "30");
}

TEST_F(EngineFixture, JoinOrderDoesNotChangeResults) {
  const char* queries[] = {
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }",
      "SELECT ?s ?n WHERE { ?s ?p ?o . ?s <http://x/name> ?n . }",
      "SELECT ?s WHERE { ?s a <http://x/Person> . ?s <http://x/age> ?a . FILTER(?a < 36) }",
  };
  QueryEngine::Options naive_opts;
  naive_opts.optimize_join_order = false;
  QueryEngine naive(&store_, naive_opts);
  for (const char* q : queries) {
    ResultTable opt = Run(q);
    auto r = naive.ExecuteString(q);
    ASSERT_TRUE(r.ok());
    std::vector<std::string> a, b;
    for (const auto& row : opt.rows()) {
      std::string key;
      for (const auto& c : row) key += c.term.ToNTriples() + "|";
      a.push_back(key);
    }
    for (const auto& row : r.ValueOrDie().rows()) {
      std::string key;
      for (const auto& c : row) key += c.term.ToNTriples() + "|";
      b.push_back(key);
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << q;
  }
}

TEST_F(EngineFixture, ExpressionFunctions) {
  // STR lifts the lexical form of an IRI.
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s <http://x/name> ?n . "
      "FILTER(CONTAINS(STR(?s), \"alice\")) }");
  EXPECT_EQ(t.num_rows(), 1u);

  // LANG and DATATYPE.
  ResultTable lang = Run(
      "SELECT ?o WHERE { ?s <http://x/name> ?o . FILTER(LANG(?o) = \"\") }");
  EXPECT_EQ(lang.num_rows(), 3u);  // plain literals have no language
  ResultTable dt = Run(
      "SELECT ?o WHERE { ?s <http://x/age> ?o . "
      "FILTER(DATATYPE(?o) = <http://www.w3.org/2001/XMLSchema#integer>) }");
  EXPECT_EQ(dt.num_rows(), 3u);

  // isIRI / isLITERAL partition objects.
  ResultTable iris = Run(
      "SELECT ?o WHERE { <http://x/alice> ?p ?o . FILTER(isIRI(?o)) }");
  ResultTable lits = Run(
      "SELECT ?o WHERE { <http://x/alice> ?p ?o . FILTER(isLITERAL(?o)) }");
  EXPECT_EQ(iris.num_rows() + lits.num_rows(), 6u);  // all of alice's triples
}

TEST_F(EngineFixture, DivisionByZeroRejectsRow) {
  // SPARQL error semantics: an erroring FILTER drops the row, not the query.
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(1 / (?a - 30) > 0) }");
  // alice (age 30) divides by zero and is dropped; bob/carol pass.
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST_F(EngineFixture, NegationAndUnaryMinus) {
  ResultTable t = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(-?a < -36) }");
  EXPECT_EQ(t.num_rows(), 1u);  // only bob (40)
  ResultTable n = Run(
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(!(?a > 32)) }");
  EXPECT_EQ(n.num_rows(), 1u);  // only alice
}

TEST_F(EngineFixture, ConstructBuildsNewTriples) {
  auto triples = engine_->ExecuteGraphString(
      "CONSTRUCT { ?b <http://x/knownBy> ?a . } WHERE { ?a <http://x/knows> ?b . }");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  ASSERT_EQ(triples->size(), 2u);
  for (const auto& t : *triples) {
    EXPECT_EQ(t.predicate.lexical, "http://x/knownBy");
  }
}

TEST_F(EngineFixture, ConstructSkipsUnboundAndInvalid) {
  // ?w is only bound via OPTIONAL; template instances with unbound ?w
  // are skipped rather than erroring.
  auto triples = engine_->ExecuteGraphString(
      "CONSTRUCT { ?s <http://x/employer> ?w . } WHERE { "
      "?s a <http://x/Person> . OPTIONAL { ?s <http://x/worksAt> ?w . } }");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  EXPECT_EQ(triples->size(), 1u);  // only alice works somewhere
}

TEST_F(EngineFixture, ConstructDeduplicates) {
  auto triples = engine_->ExecuteGraphString(
      "CONSTRUCT { ?s a <http://x/Thing> . } WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(triples.ok());
  // Every subject exactly once despite multiple solutions.
  std::set<std::string> subjects;
  for (const auto& t : *triples) subjects.insert(t.subject.lexical);
  EXPECT_EQ(triples->size(), subjects.size());
}

TEST_F(EngineFixture, DescribeConstant) {
  auto triples = engine_->ExecuteGraphString("DESCRIBE <http://x/bob>");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  // bob: type, name, age, city, knows carol (subject side) + alice knows
  // bob (object side) = 6 triples.
  EXPECT_EQ(triples->size(), 6u);
}

TEST_F(EngineFixture, DescribeVariableWithWhere) {
  auto triples = engine_->ExecuteGraphString(
      "DESCRIBE ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 38) }");
  ASSERT_TRUE(triples.ok()) << triples.status().ToString();
  // Only bob matches; same 6 triples as above.
  EXPECT_EQ(triples->size(), 6u);
}

TEST_F(EngineFixture, GraphFormsRejectedByTabularApi) {
  EXPECT_FALSE(engine_->ExecuteString("DESCRIBE <http://x/bob>").ok());
  EXPECT_FALSE(
      engine_
          ->ExecuteGraphString("SELECT ?s WHERE { ?s ?p ?o . }")
          .ok());
}

TEST(ParserGraphForms, ConstructTemplateRestrictions) {
  EXPECT_FALSE(ParseQuery(
                   "CONSTRUCT { ?s ?p ?o . FILTER(?o > 1) } WHERE { ?s ?p ?o . }")
                   .ok());
  EXPECT_FALSE(ParseQuery("DESCRIBE").ok());
  auto q = ParseQuery("DESCRIBE <http://x/a> <http://x/b>");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->describe_targets.size(), 2u);
}

TEST_F(EngineFixture, ResultTableToString) {
  ResultTable t = Run("SELECT ?s WHERE { ?s <http://x/city> \"Athens\" . }");
  std::string rendered = t.ToString();
  EXPECT_NE(rendered.find("?s"), std::string::npos);
  EXPECT_NE(rendered.find("alice"), std::string::npos);
}

// ---- query profiling & slow-query journal ----

TEST_F(EngineFixture, ProfileOffLeavesStatsCheap) {
  QueryStats stats;
  ResultTable t = [&] {
    auto r = engine_->ExecuteString(
        "SELECT ?a WHERE { ?a <http://x/knows> ?b . }", &stats);
    EXPECT_TRUE(r.ok());
    return std::move(r).ValueOrDie();
  }();
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(stats.rows_out, 2u);
  EXPECT_GT(stats.latency_us, 0.0);
  // Profiling off and journal disarmed: no fingerprint, no profile tree.
  EXPECT_FALSE(stats.profile.profiled);
  EXPECT_EQ(stats.fingerprint, 0u);
  EXPECT_TRUE(stats.profile.root.children.empty());
}

TEST_F(EngineFixture, ProfileOnRecordsOperatorTree) {
  QueryEngine::Options opts;
  opts.profile = true;
  QueryEngine profiled(&store_, opts);
  QueryStats stats;
  auto r = profiled.ExecuteString(
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }",
      &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(stats.profile.profiled);
  EXPECT_NE(stats.fingerprint, 0u);
  EXPECT_EQ(stats.profile.fingerprint, stats.fingerprint);
  EXPECT_EQ(stats.profile.rows_out, 1u);
  EXPECT_GT(stats.profile.total_ns, 0);
  // Root mirrors the top-level group: one invocation, two pattern steps.
  const obs::OperatorProfile& root = stats.profile.root;
  EXPECT_EQ(root.invocations, 1u);
  EXPECT_EQ(root.actual_rows, 1u);
  ASSERT_EQ(root.children.size(), 2u);
  for (const obs::OperatorProfile& step : root.children) {
    EXPECT_TRUE(step.op == "scan" || step.op == "hash-join") << step.op;
    EXPECT_FALSE(step.label.empty());
    EXPECT_GE(step.wall_ns, 0);
  }
  // Step invocations count input solutions probed: one empty seed row for
  // the first step, then both of its solutions for the second.
  EXPECT_EQ(root.children[0].invocations, 1u);
  EXPECT_EQ(root.children[0].actual_rows, 2u);
  EXPECT_EQ(root.children[1].invocations, 2u);
  // The join keeps only alice->bob joined with bob->carol.
  EXPECT_EQ(root.children[1].actual_rows, 1u);
}

TEST_F(EngineFixture, ProfileCoversUnionOptionalAndFilter) {
  QueryEngine::Options opts;
  opts.profile = true;
  QueryEngine profiled(&store_, opts);
  QueryStats stats;
  auto r = profiled.ExecuteString(
      "SELECT * WHERE { ?s <http://x/age> ?a . "
      "OPTIONAL { ?s <http://x/city> ?c . } "
      "{ ?s <http://x/knows> ?k . } UNION { ?s <http://x/worksAt> ?k . } "
      "FILTER(?a > 20) }",
      &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const obs::OperatorProfile& root = stats.profile.root;
  // Layout: [step][union][union][optional][filter].
  ASSERT_EQ(root.children.size(), 5u);
  EXPECT_EQ(root.children[1].op, "union");
  EXPECT_EQ(root.children[2].op, "union");
  EXPECT_EQ(root.children[3].op, "optional");
  EXPECT_EQ(root.children[4].op, "filter");
  // Union branches and the optional mirror their sub-plans.
  EXPECT_EQ(root.children[1].children.size(), 1u);
  EXPECT_EQ(root.children[3].children.size(), 1u);
  // The filter saw the post-union solutions and kept all adults.
  EXPECT_GT(root.children[4].invocations, 0u);
}

TEST_F(EngineFixture, ProfileWorksForGraphForms) {
  QueryEngine::Options opts;
  opts.profile = true;
  QueryEngine profiled(&store_, opts);
  QueryStats stats;
  auto r = profiled.ExecuteGraphString(
      "CONSTRUCT { ?a <http://x/friend> ?b . } WHERE { ?a <http://x/knows> ?b . }",
      &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);
  EXPECT_TRUE(stats.profile.profiled);
  EXPECT_NE(stats.fingerprint, 0u);
  EXPECT_EQ(stats.profile.rows_out, 2u);
  ASSERT_EQ(stats.profile.root.children.size(), 1u);
  EXPECT_EQ(stats.profile.root.children[0].actual_rows, 2u);
}

TEST_F(EngineFixture, ExplainAnalyzeRendersActuals) {
  auto r = engine_->ExplainAnalyzeString(
      "SELECT ?a ?c WHERE { ?a <http://x/knows> ?b . ?b <http://x/knows> ?c . }");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const std::string& report = r.ValueOrDie();
  EXPECT_NE(report.find("explain analyze"), std::string::npos) << report;
  EXPECT_NE(report.find("fingerprint=0x"), std::string::npos) << report;
  EXPECT_NE(report.find("est="), std::string::npos) << report;
  EXPECT_NE(report.find("act="), std::string::npos) << report;
  EXPECT_NE(report.find("total: rows_out=1"), std::string::npos) << report;
  // Parse errors surface as Status, not a report.
  EXPECT_FALSE(engine_->ExplainAnalyzeString("SELECT garbage").ok());
}

TEST_F(EngineFixture, SlowQueryJournalCapturesInjectedSlowQuery) {
  obs::QueryLog& journal = obs::QueryLog::Global();
  journal.Clear();
  journal.SetThresholdMicros(0);  // journal everything for the test
  const std::string query_text =
      "SELECT ?s WHERE { ?s <http://x/age> ?a . FILTER(?a > 32) }";
  QueryStats stats;
  auto r = engine_->ExecuteString(query_text, &stats);
  ASSERT_TRUE(r.ok());
  journal.SetThresholdMicros(-1);  // disarm before inspecting

  std::vector<obs::QueryLogEntry> entries = journal.Entries();
  ASSERT_EQ(entries.size(), 1u);
  const obs::QueryLogEntry& e = entries[0];
  EXPECT_EQ(e.query, query_text);
  EXPECT_NE(e.fingerprint, 0u);
  EXPECT_EQ(e.fingerprint, stats.fingerprint);
  EXPECT_EQ(e.rows_out, 2u);
  EXPECT_EQ(e.intermediate_rows, stats.intermediate_rows);
  EXPECT_GT(e.latency_us, 0.0);
  // Journal admission without Options::profile still captures totals, just
  // no per-operator actuals.
  EXPECT_FALSE(e.profile.profiled);
  EXPECT_EQ(e.profile.fingerprint, e.fingerprint);

  // The JSON dump round-trips the entry.
  std::string json = journal.ToJson();
  EXPECT_NE(json.find("\"admitted\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("FILTER(?a > 32)"), std::string::npos) << json;
  journal.Clear();
}

TEST_F(EngineFixture, FastQueriesStayOutOfTheJournal) {
  obs::QueryLog& journal = obs::QueryLog::Global();
  journal.Clear();
  journal.SetThresholdMicros(60'000'000);  // one minute: nothing qualifies
  auto r = engine_->ExecuteString("SELECT ?s WHERE { ?s ?p ?o . }");
  ASSERT_TRUE(r.ok());
  journal.SetThresholdMicros(-1);
  EXPECT_EQ(journal.size(), 0u);
}

}  // namespace
}  // namespace lodviz::sparql
