// Tests for the WoD-browser, interest-guidance, and schema-summary
// exploration services.
#include <gtest/gtest.h>

#include "explore/browser.h"
#include "explore/explain.h"
#include "common/random.h"
#include "explore/interest.h"
#include "explore/summary.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"
#include "workload/synthetic_lod.h"

namespace lodviz::explore {
namespace {

rdf::TripleStore MakeCityStore() {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:athens a ex:City ;
    rdfs:label "Athens" ;
    ex:population 664046 ;
    ex:country ex:greece .
ex:piraeus a ex:City ;
    rdfs:label "Piraeus" ;
    ex:country ex:greece .
ex:greece a ex:Country ;
    rdfs:label "Greece" .
)";
  rdf::TripleStore store;
  auto n = rdf::LoadTurtleString(doc, &store);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  return store;
}

TEST(BrowserTest, DescribeShowsPropertiesAndIncoming) {
  rdf::TripleStore store = MakeCityStore();
  ResourceBrowser browser(&store);
  auto view = browser.DescribeIri("http://x.org/athens");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->label, "Athens");
  EXPECT_EQ(view->outgoing.size(), 4u);  // type, label, population, country
  EXPECT_TRUE(view->incoming.empty());

  auto greece = browser.DescribeIri("http://x.org/greece");
  ASSERT_TRUE(greece.ok());
  EXPECT_EQ(greece->label, "Greece");
  EXPECT_EQ(greece->incoming.size(), 2u);  // two cities point at it
}

TEST(BrowserTest, LinkNavigationAndHistory) {
  rdf::TripleStore store = MakeCityStore();
  ResourceBrowser browser(&store);
  rdf::TermId athens = store.dict().Lookup(rdf::Term::Iri("http://x.org/athens"));
  auto view = browser.Navigate(athens);
  ASSERT_TRUE(view.ok());

  // Follow the country link.
  rdf::TermId link = rdf::kInvalidTermId;
  for (const PropertyRow& row : view->outgoing) {
    if (row.predicate_label == "http://x.org/country") link = row.link;
  }
  ASSERT_NE(link, rdf::kInvalidTermId);
  auto greece = browser.Navigate(link);
  ASSERT_TRUE(greece.ok());
  EXPECT_EQ(greece->label, "Greece");
  EXPECT_EQ(browser.history().size(), 2u);
  EXPECT_EQ(browser.current(), link);

  auto back = browser.Back();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->label, "Athens");
  EXPECT_EQ(browser.current(), athens);
  EXPECT_FALSE(browser.Back().ok());  // start of history
}

TEST(BrowserTest, RenderAndErrors) {
  rdf::TripleStore store = MakeCityStore();
  ResourceBrowser browser(&store);
  auto view = browser.DescribeIri("http://x.org/athens");
  ASSERT_TRUE(view.ok());
  std::string text = browser.Render(*view);
  EXPECT_NE(text.find("Athens"), std::string::npos);
  EXPECT_NE(text.find("[navigable]"), std::string::npos);

  EXPECT_FALSE(browser.DescribeIri("http://x.org/nothing").ok());
  EXPECT_FALSE(browser.Describe(999999).ok());
}

TEST(InterestTest, FindsDiscriminatingSignalsAndSuggests) {
  // 100 entities; 10 are "red cubes", the rest mixed.
  rdf::TripleStore store;
  using rdf::Term;
  for (int i = 0; i < 100; ++i) {
    std::string s = "http://x/e" + std::to_string(i);
    bool special = i < 10;
    store.Add(Term::Iri(s), Term::Iri("http://x/color"),
              Term::Literal(special ? "red" : (i % 2 ? "blue" : "green")));
    store.Add(Term::Iri(s), Term::Iri("http://x/shape"),
              Term::Literal(special ? "cube" : (i % 3 ? "ball" : "cone")));
    store.Add(Term::Iri(s), Term::Iri("http://x/size"),
              Term::Literal("medium"));  // uninformative: everyone has it
  }
  InterestModel model(&store);
  // User marks 4 of the special entities.
  for (int i = 0; i < 4; ++i) {
    model.MarkInteresting(
        store.dict().Lookup(Term::Iri("http://x/e" + std::to_string(i))));
  }
  ASSERT_EQ(model.num_marked(), 4u);

  auto signals = model.TopSignals(5);
  ASSERT_GE(signals.size(), 2u);
  // red and cube should be the strongest signals; "medium" must not appear.
  EXPECT_TRUE(signals[0].value_label == "red" ||
              signals[0].value_label == "cube");
  for (const auto& s : signals) {
    EXPECT_NE(s.value_label, "medium");
    EXPECT_GT(s.lift, 1.0);
  }

  // Suggestions should be the other red cubes (e4..e9).
  auto suggestions = model.SuggestEntities(6);
  ASSERT_EQ(suggestions.size(), 6u);
  for (const auto& [entity, score] : suggestions) {
    std::string iri = store.dict().term(entity).lexical;
    int idx = std::stoi(iri.substr(iri.find("/e") + 2));
    EXPECT_GE(idx, 4);
    EXPECT_LT(idx, 10) << "suggested non-special entity " << iri;
    EXPECT_GT(score, 0.0);
  }
}

TEST(InterestTest, EmptyModelIsSafe) {
  rdf::TripleStore store = MakeCityStore();
  InterestModel model(&store);
  EXPECT_TRUE(model.TopSignals().empty());
  EXPECT_TRUE(model.SuggestEntities().empty());
}

TEST(SummaryTest, SchemaOfCityStore) {
  rdf::TripleStore store = MakeCityStore();
  SchemaSummary summary = BuildSchemaSummary(store);
  EXPECT_EQ(summary.total_entities, 3u);
  ASSERT_EQ(summary.classes.size(), 2u);  // City, Country
  EXPECT_EQ(summary.classes[0].label, "http://x.org/City");
  EXPECT_EQ(summary.classes[0].instances, 2u);
  EXPECT_EQ(summary.classes[1].instances, 1u);

  // One class-to-class edge: City --country--> Country (count 2).
  ASSERT_EQ(summary.edges.size(), 1u);
  EXPECT_EQ(summary.edges[0].predicate_label, "http://x.org/country");
  EXPECT_EQ(summary.edges[0].count, 2u);
  EXPECT_EQ(summary.classes[summary.edges[0].from].label, "http://x.org/City");
  EXPECT_EQ(summary.classes[summary.edges[0].to].label,
            "http://x.org/Country");

  // Datatype properties: labels (3) and population (1).
  uint64_t label_count = 0;
  for (const auto& p : summary.datatype_properties) {
    if (p.predicate_label == rdf::vocab::kRdfsLabel) label_count += p.count;
  }
  EXPECT_EQ(label_count, 3u);

  std::string text = summary.ToString();
  EXPECT_NE(text.find("City"), std::string::npos);
  EXPECT_NE(text.find("country"), std::string::npos);
}

TEST(SummaryTest, UntypedBucketAndScale) {
  rdf::TripleStore store;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 2000;
  lod.with_types = false;  // everything untyped
  workload::GenerateSyntheticLod(lod, &store);
  SchemaSummary summary = BuildSchemaSummary(store);
  ASSERT_GE(summary.classes.size(), 1u);
  EXPECT_EQ(summary.classes[0].label, "(untyped)");
  // Summary stays tiny even though the instance graph is large.
  EXPECT_LT(summary.classes.size() + summary.edges.size(), 30u);
}

TEST(SummaryTest, SyntheticLodShape) {
  rdf::TripleStore store;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 3000;
  workload::GenerateSyntheticLod(lod, &store);
  SchemaSummary summary = BuildSchemaSummary(store);
  // Person/Place/Organization + category values turned classes? No —
  // categories are untyped objects, so: 3 classes + untyped bucket.
  ASSERT_GE(summary.classes.size(), 4u);
  uint64_t typed = 0;
  for (const auto& c : summary.classes) {
    if (c.label != "(untyped)") typed += c.instances;
  }
  EXPECT_EQ(typed, 3000u);
  // knows edges dominate the class-to-class links.
  ASSERT_FALSE(summary.edges.empty());
  bool knows_edge = false;
  for (const auto& e : summary.edges) {
    knows_edge |= e.predicate_label == workload::lod::kKnows;
  }
  EXPECT_TRUE(knows_edge);
}

TEST(ExplainTest, FindsTheCausalFacet) {
  // Sensors: those at site "foundry" read ~90, everything else ~20.
  rdf::TripleStore store;
  using rdf::Term;
  Rng rng(3);
  for (int i = 0; i < 120; ++i) {
    std::string s = "http://x/sensor" + std::to_string(i);
    bool hot = i < 25;
    store.Add(Term::Iri(s), Term::Iri("http://x/site"),
              Term::Literal(hot ? "foundry" : (i % 2 ? "office" : "yard")));
    store.Add(Term::Iri(s), Term::Iri("http://x/vendor"),
              Term::Literal(i % 3 == 0 ? "acme" : "globex"));
    store.Add(Term::Iri(s), Term::Iri("http://x/reading"),
              Term::DoubleLiteral((hot ? 90.0 : 20.0) + rng.Normal(0, 2)));
  }
  rdf::TermId reading = store.dict().Lookup(Term::Iri("http://x/reading"));
  ASSERT_NE(reading, rdf::kInvalidTermId);

  // Outlier group: the 30 hottest sensors (25 foundry + 5 noise).
  auto outliers = TopValueSubjects(store, reading, 30);
  ASSERT_EQ(outliers.size(), 30u);

  auto explanations = ExplainDeviation(store, reading, outliers, 3);
  ASSERT_TRUE(explanations.ok()) << explanations.status().ToString();
  ASSERT_FALSE(explanations->empty());
  const Explanation& top = explanations->front();
  EXPECT_EQ(top.predicate_label, "http://x/site");
  EXPECT_EQ(top.value_label, "foundry");
  // Removing the foundry sensors drops the group's mean substantially.
  EXPECT_GT(top.influence, 20.0);
  EXPECT_EQ(top.support, 25u);
  EXPECT_GT(top.facet_mean, 80.0);
}

TEST(ExplainTest, ErrorsAndEdgeCases) {
  rdf::TripleStore store = MakeCityStore();
  rdf::TermId pop = store.dict().Lookup(rdf::Term::Iri("http://x.org/population"));
  EXPECT_FALSE(ExplainDeviation(store, pop, {}).ok());
  // Outliers with no numeric target.
  rdf::TermId greece = store.dict().Lookup(rdf::Term::Iri("http://x.org/greece"));
  EXPECT_FALSE(ExplainDeviation(store, pop, {greece}).ok());
  // Top-value helper respects k and ordering.
  auto top = TopValueSubjects(store, pop, 5);
  ASSERT_EQ(top.size(), 1u);  // only athens has a population
}

}  // namespace
}  // namespace lodviz::explore
