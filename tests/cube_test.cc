#include <gtest/gtest.h>

#include <cmath>

#include "cube/data_cube.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"

namespace lodviz::cube {
namespace {

/// Population cube: region x year -> population, unemployment.
class CubeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    using rdf::Term;
    struct Row {
      const char* region;
      const char* year;
      double population;
      double unemployment;
    };
    const Row rows[] = {
        {"north", "2014", 100, 5.0}, {"north", "2015", 110, 4.5},
        {"south", "2014", 200, 8.0}, {"south", "2015", 210, 7.5},
        {"east", "2014", 50, 3.0},   {"east", "2015", 55, 3.5},
    };
    int i = 0;
    for (const Row& r : rows) {
      std::string obs = "http://x/obs" + std::to_string(i++);
      store_.Add(Term::Iri(obs), Term::Iri(rdf::vocab::kRdfType),
                 Term::Iri(rdf::vocab::kQbObservation));
      store_.Add(Term::Iri(obs), Term::Iri("http://x/region"),
                 Term::Iri(std::string("http://x/") + r.region));
      store_.Add(Term::Iri(obs), Term::Iri("http://x/year"),
                 Term::Literal(r.year));
      store_.Add(Term::Iri(obs), Term::Iri("http://x/population"),
                 Term::DoubleLiteral(r.population));
      store_.Add(Term::Iri(obs), Term::Iri("http://x/unemployment"),
                 Term::DoubleLiteral(r.unemployment));
    }
    auto cube = DataCube::FromStore(
        store_, {"http://x/region", "http://x/year"},
        {"http://x/population", "http://x/unemployment"});
    ASSERT_TRUE(cube.ok()) << cube.status().ToString();
    cube_ = std::make_unique<DataCube>(std::move(cube).ValueOrDie());
  }

  rdf::TermId Region(const std::string& name) {
    return store_.dict().Lookup(rdf::Term::Iri("http://x/" + name));
  }
  rdf::TermId Year(const std::string& y) {
    return store_.dict().Lookup(rdf::Term::Literal(y));
  }

  rdf::TripleStore store_;
  std::unique_ptr<DataCube> cube_;
};

TEST_F(CubeFixture, ExtractsAllObservations) {
  EXPECT_EQ(cube_->size(), 6u);
  EXPECT_EQ(cube_->dimension_names().size(), 2u);
  EXPECT_EQ(cube_->measure_names().size(), 2u);
}

TEST_F(CubeFixture, DimensionValues) {
  auto regions = cube_->DimensionValues(0);
  EXPECT_EQ(regions.size(), 3u);
  auto years = cube_->DimensionValues(1);
  EXPECT_EQ(years.size(), 2u);
  EXPECT_EQ(cube_->ValueLabel(years[0]), "2014");
}

TEST_F(CubeFixture, SliceRemovesDimension) {
  DataCube sliced = cube_->Slice(1, Year("2014"));
  EXPECT_EQ(sliced.size(), 3u);
  EXPECT_EQ(sliced.dimension_names(),
            (std::vector<std::string>{"http://x/region"}));
  double total = 0;
  for (const auto& o : sliced.observations()) total += o.measures[0];
  EXPECT_DOUBLE_EQ(total, 350.0);
}

TEST_F(CubeFixture, DiceKeepsDimension) {
  DataCube diced = cube_->Dice(0, {Region("north"), Region("south")});
  EXPECT_EQ(diced.size(), 4u);
  EXPECT_EQ(diced.dimension_names().size(), 2u);
}

TEST_F(CubeFixture, RollUpSumByRegion) {
  auto rows = cube_->RollUp({0}, 0, Agg::kSum);
  ASSERT_EQ(rows.size(), 3u);
  double total = 0;
  for (const auto& r : rows) {
    total += r.value;
    EXPECT_EQ(r.count, 2u);
  }
  EXPECT_DOUBLE_EQ(total, 725.0);
}

TEST_F(CubeFixture, RollUpGrandTotal) {
  auto rows = cube_->RollUp({}, 0, Agg::kSum);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(rows[0].value, 725.0);
  EXPECT_EQ(rows[0].count, 6u);

  auto avg = cube_->RollUp({}, 1, Agg::kAvg);
  EXPECT_NEAR(avg[0].value, (5.0 + 4.5 + 8.0 + 7.5 + 3.0 + 3.5) / 6, 1e-12);
  auto mx = cube_->RollUp({}, 1, Agg::kMax);
  EXPECT_DOUBLE_EQ(mx[0].value, 8.0);
}

TEST_F(CubeFixture, PivotTable) {
  auto pivot = cube_->Pivot(0, 1, 0, Agg::kSum);
  ASSERT_EQ(pivot.row_values.size(), 3u);
  ASSERT_EQ(pivot.col_values.size(), 2u);
  // Row order is label-sorted: east, north, south.
  EXPECT_DOUBLE_EQ(pivot.cells[0][0], 50.0);   // east 2014
  EXPECT_DOUBLE_EQ(pivot.cells[1][1], 110.0);  // north 2015
  EXPECT_DOUBLE_EQ(pivot.cells[2][0], 200.0);  // south 2014

  std::string rendered = cube_->PivotToString(pivot);
  EXPECT_NE(rendered.find("2014"), std::string::npos);
  EXPECT_NE(rendered.find("south"), std::string::npos);
}

TEST_F(CubeFixture, PivotWithMissingCombinationsHasNaN) {
  DataCube diced = cube_->Dice(0, {Region("north")});
  // Remove north/2015 by dicing years too? Instead pivot a cube missing
  // combinations: slice to 2014 first then pivot region x region... use
  // FromObservations for a sparse cube.
  rdf::Dictionary* dict = &store_.dict();
  std::vector<DataCube::Observation> obs = {
      {{Region("north"), Year("2014")}, {1.0}},
      {{Region("south"), Year("2015")}, {2.0}},
  };
  auto sparse = DataCube::FromObservations({"r", "y"}, {"m"}, obs, dict);
  ASSERT_TRUE(sparse.ok());
  auto pivot = sparse->Pivot(0, 1, 0, Agg::kSum);
  ASSERT_EQ(pivot.cells.size(), 2u);
  int nan_count = 0;
  for (const auto& row : pivot.cells) {
    for (double v : row) {
      if (std::isnan(v)) ++nan_count;
    }
  }
  EXPECT_EQ(nan_count, 2);
}

TEST(CubeTest, FromStoreErrors) {
  rdf::TripleStore empty;
  EXPECT_FALSE(
      DataCube::FromStore(empty, {"http://x/d"}, {"http://x/m"}).ok());
  EXPECT_FALSE(DataCube::FromStore(empty, {}, {"http://x/m"}).ok());
}

TEST(CubeTest, IncompleteObservationsSkipped) {
  using rdf::Term;
  rdf::TripleStore store;
  store.Add(Term::Iri("http://x/o1"), Term::Iri("http://x/d"),
            Term::Iri("http://x/v1"));
  store.Add(Term::Iri("http://x/o1"), Term::Iri("http://x/m"),
            Term::DoubleLiteral(1.0));
  // o2 lacks the measure.
  store.Add(Term::Iri("http://x/o2"), Term::Iri("http://x/d"),
            Term::Iri("http://x/v2"));
  // o3 has a non-numeric measure.
  store.Add(Term::Iri("http://x/o3"), Term::Iri("http://x/d"),
            Term::Iri("http://x/v3"));
  store.Add(Term::Iri("http://x/o3"), Term::Iri("http://x/m"),
            Term::Literal("n/a"));
  auto cube = DataCube::FromStore(store, {"http://x/d"}, {"http://x/m"});
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->size(), 1u);
}

TEST(CubeTest, ArityMismatchRejected) {
  std::vector<DataCube::Observation> obs = {{{1}, {1.0, 2.0}}};
  EXPECT_FALSE(DataCube::FromObservations({"d"}, {"m"}, obs, nullptr).ok());
}

}  // namespace
}  // namespace lodviz::cube
