#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "common/string_util.h"
#include "rdf/ntriples.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace lodviz::rdf {
namespace {

TEST(TurtleTest, BasicTriplesWithPrefixes) {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
@prefix foaf: <http://xmlns.com/foaf/0.1/> .

ex:alice foaf:knows ex:bob .
ex:bob foaf:knows ex:carol .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 2u);
  TermId knows = store.dict().Lookup(
      Term::Iri("http://xmlns.com/foaf/0.1/knows"));
  ASSERT_NE(knows, kInvalidTermId);
  EXPECT_EQ(store.Count({kInvalidTermId, knows, kInvalidTermId}), 2u);
}

TEST(TurtleTest, SparqlStylePrefixDeclaration) {
  const char* doc = R"(
PREFIX ex: <http://x.org/>
ex:a ex:p ex:b .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 1u);
}

TEST(TurtleTest, SemicolonAndCommaLists) {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
ex:alice a ex:Person ;
    ex:name "Alice" ;
    ex:knows ex:bob , ex:carol , ex:dave .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 5u);
  TermId type = store.dict().Lookup(Term::Iri(vocab::kRdfType));
  EXPECT_EQ(store.Count({kInvalidTermId, type, kInvalidTermId}), 1u);
}

TEST(TurtleTest, LiteralsNumbersAndBooleans) {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:int 42 ;
     ex:neg -7 ;
     ex:dec 3.14 ;
     ex:exp 6.02e23 ;
     ex:flag true ;
     ex:off false ;
     ex:lang "hallo"@de ;
     ex:typed "5"^^xsd:integer ;
     ex:typed2 "x"^^<http://x.org/custom> ;
     ex:long """multi
line "quoted" text""" .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 10u);

  const auto& dict = store.dict();
  EXPECT_NE(dict.Lookup(Term::Literal("42", vocab::kXsdInteger)),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Literal("-7", vocab::kXsdInteger)),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Literal("3.14", vocab::kXsdDecimal)),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Literal("6.02e23", vocab::kXsdDouble)),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::BoolLiteral(true)), kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::LangLiteral("hallo", "de")), kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Literal("5", vocab::kXsdInteger)),
            kInvalidTermId);
  EXPECT_NE(dict.Lookup(Term::Literal("multi\nline \"quoted\" text")),
            kInvalidTermId);
}

TEST(TurtleTest, BlankNodes) {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
_:b1 ex:p _:b2 .
ex:a ex:address [ ex:city "Athens" ; ex:zip "10552" ] .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  // _:b1 p _:b2  +  a address anon  +  anon city  +  anon zip.
  EXPECT_EQ(n.ValueOrDie(), 4u);
  TermId city = store.dict().Lookup(Term::Iri("http://x.org/city"));
  auto city_triples = store.Match({kInvalidTermId, city, kInvalidTermId});
  ASSERT_EQ(city_triples.size(), 1u);
  EXPECT_TRUE(store.dict().term(city_triples[0].s).is_blank());
}

TEST(TurtleTest, BaseResolution) {
  const char* doc = R"(
@base <http://base.org/data/> .
<item1> <prop> <item2> .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_NE(store.dict().Lookup(Term::Iri("http://base.org/data/item1")),
            kInvalidTermId);
}

TEST(TurtleTest, CommentsAndWhitespace) {
  const char* doc =
      "# header comment\n"
      "@prefix ex: <http://x.org/> . # trailing\n"
      "\n"
      "ex:a ex:p ex:b . # done\n";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 1u);
}

TEST(TurtleTest, Errors) {
  TripleStore store;
  EXPECT_FALSE(LoadTurtleString("ex:a ex:p ex:b .", &store).ok());  // no prefix
  EXPECT_FALSE(
      LoadTurtleString("@prefix ex: <http://x/> . ex:a ex:p (1 2) .", &store)
          .ok());  // collections unsupported
  EXPECT_FALSE(
      LoadTurtleString("@prefix ex: <http://x/> . ex:a ex:p \"open", &store)
          .ok());  // unterminated string
  EXPECT_FALSE(
      LoadTurtleString("@prefix ex: <http://x/> . ex:a ex:p ex:b ", &store)
          .ok());  // missing '.'
  EXPECT_FALSE(LoadTurtleString("@prefix ex <http://x/> .", &store).ok());
}

/// Round trip: synthetic data -> N-Triples -> store A; the same data fed
/// through hand-assembled Turtle must produce the same triples.
TEST(TurtleTest, AgreesWithNTriplesOnSharedSubset) {
  const char* nt_doc =
      "<http://x/a> <http://x/p> <http://x/b> .\n"
      "<http://x/a> <http://x/q> \"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n"
      "<http://x/a> <http://x/r> \"hi\"@en .\n"
      "_:b0 <http://x/p> \"plain\" .\n";
  const char* ttl_doc = R"(
@prefix x: <http://x/> .
x:a x:p x:b ; x:q 5 ; x:r "hi"@en .
_:b0 x:p "plain" .
)";
  TripleStore from_nt, from_ttl;
  ASSERT_TRUE(LoadNTriplesString(nt_doc, &from_nt).ok());
  ASSERT_TRUE(LoadTurtleString(ttl_doc, &from_ttl).ok());

  std::ostringstream a, b;
  WriteNTriples(from_nt, a);
  WriteNTriples(from_ttl, b);
  // Same canonical serialization (term ids differ; text must not).
  std::vector<std::string> la = SplitString(a.str(), '\n');
  std::vector<std::string> lb = SplitString(b.str(), '\n');
  std::sort(la.begin(), la.end());
  std::sort(lb.begin(), lb.end());
  EXPECT_EQ(la, lb);
}

TEST(TurtleTest, TrailingSemicolonTolerated) {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
ex:a ex:p ex:b ; .
)";
  TripleStore store;
  auto n = LoadTurtleString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 1u);
}

}  // namespace
}  // namespace lodviz::rdf
