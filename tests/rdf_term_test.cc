#include <gtest/gtest.h>

#include "rdf/term.h"
#include "rdf/vocab.h"
#include "test_util.h"

namespace lodviz::rdf {
namespace {

TEST(TermTest, Constructors) {
  Term iri = Term::Iri("http://example.org/a");
  EXPECT_TRUE(iri.is_iri());
  EXPECT_EQ(iri.ToNTriples(), "<http://example.org/a>");

  Term blank = Term::Blank("b0");
  EXPECT_TRUE(blank.is_blank());
  EXPECT_EQ(blank.ToNTriples(), "_:b0");

  Term plain = Term::Literal("hello");
  EXPECT_TRUE(plain.is_literal());
  EXPECT_EQ(plain.ToNTriples(), "\"hello\"");

  Term typed = Term::Literal("5", vocab::kXsdInteger);
  EXPECT_EQ(typed.ToNTriples(),
            "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer>");

  Term lang = Term::LangLiteral("bonjour", "fr");
  EXPECT_EQ(lang.ToNTriples(), "\"bonjour\"@fr");
}

TEST(TermTest, TypedLiteralHelpers) {
  EXPECT_EQ(Term::IntLiteral(-42).lexical, "-42");
  EXPECT_EQ(Term::BoolLiteral(true).lexical, "true");
  EXPECT_DOUBLE_EQ(test::Unwrap(Term::DoubleLiteral(2.5).AsDouble()), 2.5);
}

TEST(TermTest, NumericDetection) {
  EXPECT_TRUE(Term::Literal("3.14", vocab::kXsdDouble).IsNumericLiteral());
  EXPECT_TRUE(Term::Literal("42", vocab::kXsdInteger).IsNumericLiteral());
  EXPECT_TRUE(Term::Literal("-1e9").IsNumericLiteral());  // untyped numeric
  EXPECT_FALSE(Term::Literal("abc").IsNumericLiteral());
  EXPECT_FALSE(Term::Iri("http://x/3").IsNumericLiteral());
  EXPECT_FALSE(Term::LangLiteral("3", "en").IsNumericLiteral());
}

TEST(TermTest, TemporalDetection) {
  EXPECT_TRUE(
      Term::Literal("2015-01-01", vocab::kXsdDate).IsTemporalLiteral());
  EXPECT_TRUE(Term::Literal("2015-01-01T10:00:00Z", vocab::kXsdDateTime)
                  .IsTemporalLiteral());
  EXPECT_FALSE(Term::Literal("2015-01-01").IsTemporalLiteral());
}

TEST(TermTest, AsDoubleErrors) {
  EXPECT_FALSE(Term::Literal("xyz").AsDouble().ok());
  EXPECT_FALSE(Term::Iri("http://a").AsDouble().ok());
  EXPECT_FALSE(Term::Literal("1.5extra").AsDouble().ok());
}

struct EscapeCase {
  std::string raw;
};

class EscapeRoundTrip : public ::testing::TestWithParam<EscapeCase> {};

TEST_P(EscapeRoundTrip, RoundTrips) {
  const std::string& raw = GetParam().raw;
  std::string escaped = EscapeNTriplesString(raw);
  Result<std::string> back = UnescapeNTriplesString(escaped);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.ValueOrDie(), raw);
}

INSTANTIATE_TEST_SUITE_P(
    Strings, EscapeRoundTrip,
    ::testing::Values(EscapeCase{""}, EscapeCase{"plain"},
                      EscapeCase{"quote\"inside"}, EscapeCase{"back\\slash"},
                      EscapeCase{"tab\tand\nnewline\r"},
                      EscapeCase{"mixed \"\\\t\n all"},
                      EscapeCase{"utf8 \xC3\xA9\xE2\x82\xAC intact"}));

TEST(EscapeTest, UnescapeUnicode) {
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("\\u0041")), "A");
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("\\u00e9")), "\xC3\xA9");
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("\\U0001F600")),
            "\xF0\x9F\x98\x80");
}

TEST(EscapeTest, MalformedEscapesError) {
  EXPECT_FALSE(UnescapeNTriplesString("dangling\\").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\q").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\u00").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\u00zz").ok());
}

TEST(EscapeTest, SurrogatePairsCombine) {
  // UTF-16 pair for U+1F600: must decode to one 4-byte UTF-8 character,
  // identical to the direct \U form (not two 3-byte CESU-8 sequences).
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("\\uD83D\\uDE00")),
            "\xF0\x9F\x98\x80");
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("\\uD83D\\uDE00")),
            test::Unwrap(UnescapeNTriplesString("\\U0001F600")));
  // Pair in context, plus the first/last code points of the supplementary
  // range: U+10000 = D800/DC00, U+10FFFF = DBFF/DFFF.
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("a\\uD800\\uDC00b")),
            "a\xF0\x90\x80\x80"
            "b");
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString("\\uDBFF\\uDFFF")),
            "\xF4\x8F\xBF\xBF");
}

TEST(EscapeTest, SurrogatePairRoundTripsThroughTerm) {
  Result<std::string> decoded = UnescapeNTriplesString("\\uD83D\\uDE00 ok");
  ASSERT_TRUE(decoded.ok());
  std::string escaped = EscapeNTriplesString(decoded.ValueOrDie());
  EXPECT_EQ(test::Unwrap(UnescapeNTriplesString(escaped)),
            decoded.ValueOrDie());
}

TEST(EscapeTest, LoneAndInvalidSurrogatesError) {
  // Lone high surrogate: at end, before ordinary text, and before a
  // non-surrogate escape.
  EXPECT_FALSE(UnescapeNTriplesString("\\uD83D").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\uD83Dxyz").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\uD83D\\u0041").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\uD83D\\n").ok());
  // Lone low surrogate, and a high pair half written as \U.
  EXPECT_FALSE(UnescapeNTriplesString("\\uDE00").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\U0000D83D").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\U0000DE00").ok());
  // Beyond the Unicode ceiling.
  EXPECT_FALSE(UnescapeNTriplesString("\\U00110000").ok());
  EXPECT_FALSE(UnescapeNTriplesString("\\UFFFFFFFF").ok());
}

struct DateCase {
  std::string text;
  int64_t expected;
};

class DateTimeParse : public ::testing::TestWithParam<DateCase> {};

TEST_P(DateTimeParse, ParsesToEpoch) {
  Result<int64_t> r = ParseDateTime(GetParam().text);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.ValueOrDie(), GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, DateTimeParse,
    ::testing::Values(DateCase{"1970-01-01", 0},
                      DateCase{"1970-01-02", 86400},
                      DateCase{"1970-01-01T00:00:01Z", 1},
                      DateCase{"2000-01-01T00:00:00Z", 946684800},
                      DateCase{"2016-03-15T12:30:45Z", 1458045045},
                      DateCase{"1969-12-31", -86400},
                      DateCase{"2016-02-29", 1456704000}));  // leap day

TEST(DateTimeTest, FormatsBackToCanonical) {
  EXPECT_EQ(FormatDateTime(0), "1970-01-01T00:00:00Z");
  EXPECT_EQ(FormatDateTime(1458045045), "2016-03-15T12:30:45Z");
  EXPECT_EQ(FormatDateTime(-86400), "1969-12-31T00:00:00Z");
}

TEST(DateTimeTest, RoundTripsThroughFormat) {
  for (int64_t t : {int64_t{0}, int64_t{123456789}, int64_t{-1000000},
                    int64_t{4102444800}}) {  // year 2100
    EXPECT_EQ(test::Unwrap(ParseDateTime(FormatDateTime(t))), t);
  }
}

TEST(DateTimeTest, RejectsMalformed) {
  EXPECT_FALSE(ParseDateTime("not-a-date").ok());
  EXPECT_FALSE(ParseDateTime("2016-13-01").ok());
  EXPECT_FALSE(ParseDateTime("2016-02-30").ok());
  EXPECT_FALSE(ParseDateTime("2015-02-29").ok());  // not a leap year
  EXPECT_FALSE(ParseDateTime("2016-01-01T25:00:00Z").ok());
  EXPECT_FALSE(ParseDateTime("2016-01-01Textra").ok());
  EXPECT_FALSE(ParseDateTime("2016-01-01T00:00:00Zjunk").ok());
}

TEST(TermTest, DateTimeLiteralRoundTrip) {
  Term t = Term::DateTimeLiteral(1458045045);
  EXPECT_TRUE(t.IsTemporalLiteral());
  EXPECT_EQ(test::Unwrap(t.AsEpochSeconds()), 1458045045);
}

TEST(TermTest, Equality) {
  EXPECT_EQ(Term::Iri("a"), Term::Iri("a"));
  EXPECT_NE(Term::Iri("a"), Term::Literal("a"));
  EXPECT_NE(Term::Literal("a", vocab::kXsdString), Term::Literal("a"));
  EXPECT_NE(Term::LangLiteral("a", "en"), Term::LangLiteral("a", "de"));
}

}  // namespace
}  // namespace lodviz::rdf
