#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <unistd.h>

#include "core/archetype.h"
#include "core/capabilities.h"
#include "core/engine.h"
#include "obs/query_log.h"
#include "core/ldvm.h"
#include "core/registry.h"
#include "rdf/vocab.h"
#include "workload/synthetic_lod.h"

namespace lodviz::core {
namespace {

TEST(RegistryTest, TableShapesMatchThePaper) {
  EXPECT_EQ(Table1Systems().size(), 11u);
  EXPECT_EQ(Table2Systems().size(), 21u);
  for (const auto& s : Table1Systems()) {
    EXPECT_EQ(s.table, 1);
    EXPECT_FALSE(s.data_types.empty()) << s.name;
    EXPECT_FALSE(s.vis_types.empty()) << s.name;
  }
  for (const auto& s : Table2Systems()) EXPECT_EQ(s.table, 2);
}

TEST(RegistryTest, SpotCheckRowsAgainstPaper) {
  const SurveyedSystem* synopsviz = FindSystem("SynopsViz");
  ASSERT_NE(synopsviz, nullptr);
  EXPECT_EQ(synopsviz->year, 2014);
  // SynopsViz is the only Table-1 system with Incr. + Disk.
  EXPECT_TRUE(HasCapability(synopsviz->caps, Capability::kIncremental));
  EXPECT_TRUE(HasCapability(synopsviz->caps, Capability::kDiskBased));
  EXPECT_TRUE(HasCapability(synopsviz->caps, Capability::kAggregation));
  EXPECT_FALSE(HasCapability(synopsviz->caps, Capability::kSampling));

  const SurveyedSystem* graphvizdb = FindSystem("graphVizdb");
  ASSERT_NE(graphvizdb, nullptr);
  EXPECT_EQ(graphvizdb->year, 2015);
  EXPECT_TRUE(HasCapability(graphvizdb->caps, Capability::kDiskBased));
  EXPECT_TRUE(HasCapability(graphvizdb->caps, Capability::kKeywordSearch));
  EXPECT_FALSE(HasCapability(graphvizdb->caps, Capability::kAggregation));

  const SurveyedSystem* fenfire = FindSystem("Fenfire");
  ASSERT_NE(fenfire, nullptr);
  EXPECT_EQ(fenfire->caps, kNoCapabilities);

  EXPECT_EQ(FindSystem("NotARealSystem"), nullptr);
}

TEST(RegistryTest, PaperCountsReproduced) {
  // Discussion section: only SynopsViz and VizBoard in Table 1 use
  // approximation (sampling or aggregation).
  int approximating = 0;
  for (const auto& s : Table1Systems()) {
    if (HasCapability(s.caps, Capability::kSampling) ||
        HasCapability(s.caps, Capability::kAggregation)) {
      ++approximating;
    }
  }
  EXPECT_EQ(approximating, 2);
  // ...and only SynopsViz uses disk at runtime.
  int disk = 0;
  for (const auto& s : Table1Systems()) {
    disk += HasCapability(s.caps, Capability::kDiskBased);
  }
  EXPECT_EQ(disk, 1);
}

TEST(CapabilitiesTest, NamesAndComposition) {
  CapabilitySet set = Caps(Capability::kFilter, Capability::kDiskBased);
  EXPECT_TRUE(HasCapability(set, Capability::kFilter));
  EXPECT_FALSE(HasCapability(set, Capability::kSampling));
  EXPECT_EQ(AllCapabilities().size(), 9u);
  EXPECT_EQ(CapabilityName(Capability::kIncremental), "Incr.");
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    workload::SyntheticLodOptions opts;
    opts.num_entities = 400;
    opts.seed = 99;
    engine_.LoadSynthetic(opts);
  }
  Engine engine_;
};

TEST_F(EngineFixture, LoadAndQuery) {
  EXPECT_GT(engine_.store().size(), 2000u);
  auto result = engine_.Query(
      "SELECT (COUNT(*) AS ?n) WHERE { ?s <http://lod.example/ontology/age> ?a . }");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows()[0][0].term.lexical, "400");
}

TEST_F(EngineFixture, ExplainAnalyzeAndSlowQueryJournal) {
  auto report = engine_.ExplainAnalyzeQuery(
      "SELECT ?s ?a WHERE { ?s <http://lod.example/ontology/age> ?a . }");
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_NE(report->find("explain analyze"), std::string::npos) << *report;
  EXPECT_NE(report->find("act="), std::string::npos) << *report;

  // An engine constructed with a slow-query threshold arms the process
  // journal; every query (threshold 0) is captured and dumped as JSON.
  obs::QueryLog::Global().Clear();
  Engine::Options opts;
  opts.slow_query_us = 0;
  Engine journaling(opts);
  workload::SyntheticLodOptions load;
  load.num_entities = 50;
  load.seed = 7;
  journaling.LoadSynthetic(load);
  ASSERT_TRUE(journaling
                  .Query("SELECT ?s WHERE { ?s "
                         "<http://lod.example/ontology/age> ?a . }")
                  .ok());
  obs::QueryLog::Global().SetThresholdMicros(-1);
  std::string json = journaling.SlowQueryLogJson();
  EXPECT_NE(json.find("\"entries\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("lod.example/ontology/age"), std::string::npos) << json;
  obs::QueryLog::Global().Clear();
}

TEST_F(EngineFixture, ProfileIsCachedAndInvalidated) {
  auto p1 = engine_.Profile();
  ASSERT_TRUE(p1.ok());
  uint64_t triples_before = p1->triple_count;
  // Loading more data invalidates the cache.
  ASSERT_TRUE(engine_
                  .LoadNTriples("<http://x/a> <http://x/p> <http://x/b> .\n")
                  .ok());
  auto p2 = engine_.Profile();
  ASSERT_TRUE(p2.ok());
  EXPECT_EQ(p2->triple_count, triples_before + 1);
}

TEST_F(EngineFixture, RecommendAndRenderTopChoice) {
  auto recs = engine_.Recommend(3);
  ASSERT_FALSE(recs.empty());
  auto view = engine_.Render(recs.front().spec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_GT(view->render.elements_drawn, 0u);
  EXPECT_GT(view->pixels_touched, 0u);
}

TEST_F(EngineFixture, RenderEveryKind) {
  using viz::VisKind;
  for (VisKind kind :
       {VisKind::kScatter, VisKind::kMap, VisKind::kTimeline, VisKind::kChart,
        VisKind::kPie, VisKind::kTreemap, VisKind::kGraph}) {
    viz::VisSpec spec;
    spec.kind = kind;
    spec.x_property = kind == VisKind::kTimeline
                          ? "http://lod.example/ontology/created"
                          : "http://lod.example/ontology/age";
    spec.y_property = "http://lod.example/ontology/age";
    if (kind == VisKind::kTreemap) {
      spec.x_property = "http://lod.example/ontology/category";
    }
    auto view = engine_.Render(spec);
    ASSERT_TRUE(view.ok()) << viz::VisKindName(kind) << ": "
                           << view.status().ToString();
    EXPECT_GT(view->render.elements_drawn, 0u) << viz::VisKindName(kind);
  }
}

TEST_F(EngineFixture, RenderWithSvg) {
  viz::VisSpec spec;
  spec.kind = viz::VisKind::kMap;
  auto view = engine_.Render(spec, /*with_svg=*/true);
  ASSERT_TRUE(view.ok());
  EXPECT_NE(view->svg.find("<svg"), std::string::npos);
}

TEST_F(EngineFixture, RenderErrorsOnMissingData) {
  viz::VisSpec spec;
  spec.kind = viz::VisKind::kScatter;
  spec.x_property = "http://nowhere/p";
  spec.y_property = "http://nowhere/q";
  EXPECT_FALSE(engine_.Render(spec).ok());
}

TEST_F(EngineFixture, ElementBudgetCapsScatter) {
  Engine::Options opts;
  opts.element_budget = 100;
  Engine small(opts);
  workload::SyntheticLodOptions lod;
  lod.num_entities = 500;
  small.LoadSynthetic(lod);
  viz::VisSpec spec;
  spec.kind = viz::VisKind::kScatter;
  spec.x_property = rdf::vocab::kGeoLong;
  spec.y_property = rdf::vocab::kGeoLat;
  auto view = small.Render(spec);
  ASSERT_TRUE(view.ok());
  EXPECT_LE(view->render.elements_drawn, 100u);
}

TEST_F(EngineFixture, MapAggregatesAboveBudget) {
  Engine::Options opts;
  opts.element_budget = 50;  // far below 400 geo points
  Engine small(opts);
  workload::SyntheticLodOptions lod;
  lod.num_entities = 400;
  small.LoadSynthetic(lod);
  viz::VisSpec spec;
  spec.kind = viz::VisKind::kMap;
  auto view = small.Render(spec);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  // Clustered markers: bounded by the 48x48 grid, not by point count.
  EXPECT_LE(view->render.elements_drawn, 48u * 48u);
  EXPECT_EQ(view->render.input_size, 400u);
}

TEST_F(EngineFixture, HierarchyGraphSearchFacets) {
  hier::HETree::Options hopts;
  auto tree = engine_.BuildHierarchy("http://lod.example/ontology/age", hopts);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->node(tree->root()).stats.count, 400u);

  graph::Graph g = engine_.BuildGraph();
  EXPECT_GT(g.num_edges(), 100u);

  auto hits = engine_.Search("ancient");
  EXPECT_FALSE(hits.empty());

  auto browser = engine_.MakeBrowser();
  EXPECT_GT(browser.num_matching(), 0u);

  // Session recorded all those operations.
  EXPECT_GE(engine_.session().size(), 2u);
}

TEST_F(EngineFixture, LdvmDefaultPipelineRuns) {
  LdvmPipeline pipeline(&engine_);
  auto view = pipeline.Run();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_GT(view->render.elements_drawn, 0u);
  // The default visual stage picks the recommender's top choice (map for
  // this spatial dataset).
  EXPECT_EQ(pipeline.last_spec().kind, viz::VisKind::kMap);
}

TEST_F(EngineFixture, LdvmCustomStages) {
  LdvmPipeline pipeline(&engine_);
  pipeline.WithVisualStage(
      [](Engine&, const stats::DatasetProfile&) -> Result<viz::VisSpec> {
        viz::VisSpec spec;
        spec.kind = viz::VisKind::kChart;
        spec.x_property = "http://lod.example/ontology/age";
        return spec;
      });
  auto view = pipeline.Run();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view->spec.kind, viz::VisKind::kChart);
}

TEST_F(EngineFixture, ArchetypeProbesRespectFlags) {
  // Fenfire: no capabilities — every probe must refuse.
  ArchetypeAdapter fenfire(*FindSystem("Fenfire"), &engine_);
  for (Capability cap : AllCapabilities()) {
    auto r = fenfire.Probe(cap);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnimplemented);
  }

  // SynopsViz archetype: aggregation/incremental/disk/recommendation/
  // preferences/statistics all actually execute.
  ArchetypeAdapter synopsviz(*FindSystem("SynopsViz"), &engine_);
  for (Capability cap :
       {Capability::kAggregation, Capability::kIncremental,
        Capability::kDiskBased, Capability::kRecommendation,
        Capability::kStatistics}) {
    auto r = synopsviz.Probe(cap);
    ASSERT_TRUE(r.ok()) << CapabilityName(cap) << ": "
                        << r.status().ToString();
    EXPECT_TRUE(r->executed);
    EXPECT_GT(r->evidence, 0u);
  }
  // ...but sampling is refused (blank in the paper's table).
  EXPECT_EQ(synopsviz.Probe(Capability::kSampling).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(EngineFixture, LodvizRowExecutesEverything) {
  ArchetypeAdapter self(LodvizSystem(1), &engine_);
  auto results = self.ProbeAll();
  ASSERT_EQ(results.size(), AllCapabilities().size());
  for (const ProbeResult& r : results) {
    EXPECT_TRUE(r.executed) << CapabilityName(r.capability);
  }
}

TEST_F(EngineFixture, DiskBackendMatchesMemoryAndTracksLoads) {
  Engine::Options opts;
  opts.backend = Engine::Backend::kDisk;
  opts.disk_path =
      "/tmp/lodviz_core_disk_" + std::to_string(::getpid()) + ".db";
  opts.pool_pages = 32;
  Engine disk_engine(opts);
  workload::SyntheticLodOptions lod;
  lod.num_entities = 400;
  lod.seed = 99;
  disk_engine.LoadSynthetic(lod);

  const char* q =
      "SELECT ?s ?a WHERE { ?s <http://lod.example/ontology/age> ?a . "
      "FILTER(?a > 80) } ORDER BY ?s";
  auto mem = engine_.Query(q);
  auto disk = disk_engine.Query(q);
  ASSERT_TRUE(mem.ok()) << mem.status().ToString();
  ASSERT_TRUE(disk.ok()) << disk.status().ToString();
  EXPECT_EQ(mem->ToString(mem->num_rows()), disk->ToString(disk->num_rows()));

  // The plan is backend-independent too, and mentions an estimate.
  auto mem_plan = engine_.ExplainQuery(q);
  auto disk_plan = disk_engine.ExplainQuery(q);
  ASSERT_TRUE(mem_plan.ok() && disk_plan.ok());
  EXPECT_EQ(mem_plan.ValueOrDie(), disk_plan.ValueOrDie());

  // Loading more data invalidates the mirror: the next query sees it.
  ASSERT_TRUE(disk_engine
                  .LoadNTriples("<http://x/new> "
                                "<http://lod.example/ontology/age> "
                                "\"99\"^^<http://www.w3.org/2001/"
                                "XMLSchema#integer> .\n")
                  .ok());
  auto after = disk_engine.Query(q);
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after->num_rows(), disk->num_rows() + 1);
  std::remove(opts.disk_path.c_str());
}

TEST_F(EngineFixture, StreamingIngestInvalidatesDerivedState) {
  auto triples = workload::GenerateSyntheticLodTriples(
      {.num_entities = 50, .seed = 123});
  rdf::VectorStreamSource source(triples);
  size_t before = engine_.store().size();
  size_t added = engine_.IngestStream(&source, 64);
  EXPECT_GT(added, 100u);
  EXPECT_EQ(engine_.store().size(), before + added);
}

}  // namespace
}  // namespace lodviz::core
