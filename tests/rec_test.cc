#include <gtest/gtest.h>

#include "rec/recommender.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "stats/profile.h"
#include "workload/synthetic_lod.h"

namespace lodviz::rec {
namespace {

stats::DatasetProfile ProfileOf(const rdf::TripleStore& store) {
  auto p = stats::ProfileDataset(store);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).ValueOrDie();
}

rdf::TripleStore SyntheticStore() {
  rdf::TripleStore store;
  workload::SyntheticLodOptions opts;
  opts.num_entities = 300;
  workload::GenerateSyntheticLod(opts, &store);
  return store;
}

TEST(RecommenderTest, MapTopsSpatialDataset) {
  rdf::TripleStore store = SyntheticStore();
  Recommender rec;
  auto recs = rec.Recommend(ProfileOf(store), 5);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs.front().spec.kind, viz::VisKind::kMap);
  EXPECT_FALSE(recs.front().reason.empty());
  // Scores are sorted descending.
  for (size_t i = 1; i < recs.size(); ++i) {
    EXPECT_LE(recs[i].score, recs[i - 1].score);
  }
}

TEST(RecommenderTest, DetectDataTypesCoversTaxonomy) {
  rdf::TripleStore store = SyntheticStore();
  auto types = DetectDataTypes(ProfileOf(store));
  // Synthetic LOD has numeric (age), temporal (created), spatial (geo)
  // and graph (knows) data.
  auto has = [&](viz::DataType t) {
    for (auto x : types) {
      if (x == t) return true;
    }
    return false;
  };
  EXPECT_TRUE(has(viz::DataType::kNumeric));
  EXPECT_TRUE(has(viz::DataType::kTemporal));
  EXPECT_TRUE(has(viz::DataType::kSpatial));
  EXPECT_TRUE(has(viz::DataType::kGraph));
  EXPECT_FALSE(has(viz::DataType::kHierarchical));
}

TEST(RecommenderTest, NumericOnlyDatasetGetsChart) {
  rdf::TripleStore store;
  using rdf::Term;
  for (int i = 0; i < 100; ++i) {
    store.Add(Term::Iri("http://x/e" + std::to_string(i)),
              Term::Iri("http://x/value"), Term::DoubleLiteral(i * 1.5));
  }
  Recommender rec;
  auto recs = rec.Recommend(ProfileOf(store), 3);
  ASSERT_FALSE(recs.empty());
  EXPECT_EQ(recs.front().spec.kind, viz::VisKind::kChart);
  EXPECT_EQ(recs.front().spec.x_property, "http://x/value");
}

TEST(RecommenderTest, TwoNumericsSuggestScatter) {
  rdf::TripleStore store;
  using rdf::Term;
  for (int i = 0; i < 100; ++i) {
    std::string s = "http://x/e" + std::to_string(i);
    store.Add(Term::Iri(s), Term::Iri("http://x/height"),
              Term::DoubleLiteral(i));
    store.Add(Term::Iri(s), Term::Iri("http://x/weight"),
              Term::DoubleLiteral(i * 2));
  }
  Recommender rec;
  auto recs = rec.Recommend(ProfileOf(store), 5);
  bool has_scatter = false;
  for (const auto& r : recs) {
    if (r.spec.kind == viz::VisKind::kScatter) {
      has_scatter = true;
      EXPECT_FALSE(r.spec.x_property.empty());
      EXPECT_FALSE(r.spec.y_property.empty());
    }
  }
  EXPECT_TRUE(has_scatter);
}

TEST(RecommenderTest, HierarchyYieldsTreemap) {
  rdf::TripleStore store;
  using rdf::Term;
  store.Add(Term::Iri("http://x/Dog"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/Animal"));
  store.Add(Term::Iri("http://x/Cat"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/Animal"));
  Recommender rec;
  auto recs = rec.Recommend(ProfileOf(store), 5);
  bool has_treemap = false;
  for (const auto& r : recs) {
    has_treemap |= r.spec.kind == viz::VisKind::kTreemap;
  }
  EXPECT_TRUE(has_treemap);
}

TEST(RecommenderTest, PreferencesReorderRanking) {
  rdf::TripleStore store = SyntheticStore();
  stats::DatasetProfile profile = ProfileOf(store);
  Recommender rec;
  auto before = rec.Recommend(profile, 3);
  ASSERT_GE(before.size(), 2u);
  viz::VisKind top = before.front().spec.kind;

  rec.SetPreference(top, 0.25);
  auto after = rec.Recommend(profile, 3);
  ASSERT_FALSE(after.empty());
  EXPECT_NE(after.front().spec.kind, top);
}

TEST(RecommenderTest, FeedbackLearnsGradually) {
  Recommender rec;
  EXPECT_DOUBLE_EQ(rec.preference(viz::VisKind::kPie), 1.0);
  rec.RecordFeedback(viz::VisKind::kPie, /*accepted=*/true);
  EXPECT_GT(rec.preference(viz::VisKind::kPie), 1.0);
  for (int i = 0; i < 50; ++i) rec.RecordFeedback(viz::VisKind::kPie, false);
  EXPECT_DOUBLE_EQ(rec.preference(viz::VisKind::kPie), 0.25);  // clamped
  for (int i = 0; i < 100; ++i) rec.RecordFeedback(viz::VisKind::kPie, true);
  EXPECT_DOUBLE_EQ(rec.preference(viz::VisKind::kPie), 4.0);  // clamped
}

TEST(RecommenderTest, EmptyProfileYieldsNothing) {
  stats::DatasetProfile empty;
  Recommender rec;
  EXPECT_TRUE(rec.Recommend(empty, 5).empty());
}

}  // namespace
}  // namespace lodviz::rec
