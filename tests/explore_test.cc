#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "explore/cache.h"
#include "explore/facets.h"
#include "explore/keyword.h"
#include "explore/prefetch.h"
#include "explore/progressive.h"
#include "explore/session.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "workload/scenario.h"

namespace lodviz::explore {
namespace {

rdf::TripleStore MakeBookStore() {
  using rdf::Term;
  rdf::TripleStore store;
  struct Book {
    const char* title;
    const char* genre;
    const char* language;
  };
  const Book books[] = {
      {"The Old Fortress", "history", "en"},
      {"Modern Databases", "technology", "en"},
      {"Griechische Inseln", "travel", "de"},
      {"Linked Data Basics", "technology", "en"},
      {"Ancient Harbors", "history", "en"},
      {"Databases in Depth", "technology", "de"},
  };
  int i = 0;
  for (const Book& b : books) {
    std::string s = "http://x/book" + std::to_string(i++);
    store.Add(Term::Iri(s), Term::Iri(rdf::vocab::kRdfsLabel),
              Term::LangLiteral(b.title, "en"));
    store.Add(Term::Iri(s), Term::Iri("http://x/genre"),
              Term::Literal(b.genre));
    store.Add(Term::Iri(s), Term::Iri("http://x/language"),
              Term::Literal(b.language));
  }
  return store;
}

TEST(FacetsTest, ListsFacetsWithCounts) {
  rdf::TripleStore store = MakeBookStore();
  FacetedBrowser browser(&store);
  EXPECT_EQ(browser.num_matching(), 6u);

  auto facets = browser.Facets();
  // genre, language, label all qualify (few distinct values).
  ASSERT_GE(facets.size(), 2u);
  const Facet* genre = nullptr;
  for (const Facet& f : facets) {
    if (f.label == "http://x/genre") genre = &f;
  }
  ASSERT_NE(genre, nullptr);
  ASSERT_EQ(genre->values.size(), 3u);
  EXPECT_EQ(genre->values[0].label, "technology");  // most frequent first
  EXPECT_EQ(genre->values[0].count, 3u);
}

TEST(FacetsTest, ConjunctiveRefinement) {
  rdf::TripleStore store = MakeBookStore();
  FacetedBrowser browser(&store);
  rdf::TermId genre = store.dict().Lookup(rdf::Term::Iri("http://x/genre"));
  rdf::TermId tech = store.dict().Lookup(rdf::Term::Literal("technology"));
  rdf::TermId lang = store.dict().Lookup(rdf::Term::Iri("http://x/language"));
  rdf::TermId de = store.dict().Lookup(rdf::Term::Literal("de"));

  ASSERT_TRUE(browser.Select(genre, tech).ok());
  EXPECT_EQ(browser.num_matching(), 3u);
  ASSERT_TRUE(browser.Select(lang, de).ok());
  EXPECT_EQ(browser.num_matching(), 1u);

  // Counts of remaining facets are computed on the refined set.
  auto facets = browser.Facets();
  for (const Facet& f : facets) {
    uint64_t total = 0;
    for (const FacetValue& v : f.values) total += v.count;
    EXPECT_LE(total, 1u * 3u);  // at most the matching set per predicate
  }

  ASSERT_TRUE(browser.Deselect(lang).ok());
  EXPECT_EQ(browser.num_matching(), 3u);
  browser.Reset();
  EXPECT_EQ(browser.num_matching(), 6u);
}

TEST(FacetsTest, SelectErrors) {
  rdf::TripleStore store = MakeBookStore();
  FacetedBrowser browser(&store);
  EXPECT_FALSE(browser.Select(9999, 1).ok());
  EXPECT_FALSE(browser.Deselect(9999).ok());
}

TEST(FacetsTest, EmptyIntersection) {
  rdf::TripleStore store = MakeBookStore();
  FacetedBrowser browser(&store);
  rdf::TermId genre = store.dict().Lookup(rdf::Term::Iri("http://x/genre"));
  rdf::TermId travel = store.dict().Lookup(rdf::Term::Literal("travel"));
  rdf::TermId lang = store.dict().Lookup(rdf::Term::Iri("http://x/language"));
  rdf::TermId en = store.dict().Lookup(rdf::Term::Literal("en"));
  ASSERT_TRUE(browser.Select(genre, travel).ok());
  ASSERT_TRUE(browser.Select(lang, en).ok());
  EXPECT_EQ(browser.num_matching(), 0u);  // the travel book is German
}

TEST(KeywordTest, FindsByLabelAndRanksLabelHigher) {
  rdf::TripleStore store = MakeBookStore();
  KeywordIndex index = KeywordIndex::Build(store);
  EXPECT_EQ(index.num_documents(), 6u);

  auto hits = index.Search("databases");
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].label.find("Databases"), std::string::npos);

  // AND semantics.
  auto and_hits = index.Search("modern databases");
  ASSERT_EQ(and_hits.size(), 1u);
  EXPECT_EQ(and_hits[0].label, "Modern Databases");
}

TEST(KeywordTest, OrFallbackWhenConjunctionEmpty) {
  rdf::TripleStore store = MakeBookStore();
  KeywordIndex index = KeywordIndex::Build(store);
  // No doc has both; falls back to OR.
  auto hits = index.Search("fortress harbors");
  EXPECT_EQ(hits.size(), 2u);
}

TEST(KeywordTest, NoMatch) {
  rdf::TripleStore store = MakeBookStore();
  KeywordIndex index = KeywordIndex::Build(store);
  EXPECT_TRUE(index.Search("zzzznothing").empty());
  EXPECT_TRUE(index.Search("").empty());
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  LruCache<int, std::string> cache(2);
  cache.Put(1, "one");
  cache.Put(2, "two");
  EXPECT_NE(cache.Get(1), nullptr);  // 1 is now most recent
  cache.Put(3, "three");             // evicts 2
  EXPECT_EQ(cache.Get(2), nullptr);
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_NE(cache.Get(3), nullptr);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(LruCacheTest, OverwriteRefreshes) {
  LruCache<int, int> cache(2);
  cache.Put(1, 10);
  cache.Put(2, 20);
  cache.Put(1, 11);  // refresh 1
  cache.Put(3, 30);  // evicts 2, not 1
  EXPECT_NE(cache.Get(1), nullptr);
  EXPECT_EQ(*cache.Get(1), 11);
  EXPECT_EQ(cache.Get(2), nullptr);
}

TEST(PrefetchTest, MomentumPrefetchingLiftsHitRate) {
  uint64_t backend_calls = 0;
  auto fetch = [&](const geo::TileKey& key) {
    ++backend_calls;
    return std::vector<uint64_t>{key.Pack()};
  };

  auto scenario = workload::PanZoomTileScenario(8, 400, 11);

  TilePrefetcher::Options off;
  off.enable_prefetch = false;
  TilePrefetcher cold(fetch, off);
  for (const auto& key : scenario) cold.Request(key);

  TilePrefetcher::Options on;
  on.enable_prefetch = true;
  TilePrefetcher warm(fetch, on);
  for (const auto& key : scenario) warm.Request(key);

  EXPECT_GT(warm.UserHitRate(), cold.UserHitRate() + 0.2)
      << "prefetching should serve many pans from cache";
}

TEST(PrefetchTest, ReturnsCorrectPayload) {
  auto fetch = [](const geo::TileKey& key) {
    return std::vector<uint64_t>{key.Pack(), 42};
  };
  TilePrefetcher prefetcher(fetch, {});
  geo::TileKey key{3, 2, 1};
  auto a = prefetcher.Request(key);
  auto b = prefetcher.Request(key);  // cached
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], key.Pack());
}

TEST(ProgressiveTest, EstimateConvergesWithShrinkingCi) {
  Rng rng(3);
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(rng.Normal(10.0, 4.0));

  auto trajectory = RunProgressive(values, 1000, /*epsilon=*/0.0, 5);
  ASSERT_GT(trajectory.size(), 3u);
  // CI shrinks monotonically-ish; check first vs late.
  EXPECT_GT(trajectory[1].ci95, trajectory[trajectory.size() - 2].ci95);
  // All intermediate estimates are near the true mean.
  for (const auto& est : trajectory) {
    EXPECT_NEAR(est.mean, 10.0, 0.5);
  }
  EXPECT_TRUE(trajectory.back().complete);
  EXPECT_DOUBLE_EQ(trajectory.back().ci95, 0.0);
}

TEST(ProgressiveTest, EarlyStopAtEpsilon) {
  Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 1000000; ++i) values.push_back(rng.Normal(100.0, 5.0));
  auto trajectory = RunProgressive(values, 5000, /*epsilon=*/0.01, 9);
  // Must stop far before scanning the million rows.
  EXPECT_LT(trajectory.back().rows_seen, values.size() / 4);
  // ...and the early answer is within ~1%.
  EXPECT_NEAR(trajectory.back().mean, 100.0, 1.5);
}

TEST(ProgressiveTest, TrueMeanWithinCi95MostOfTheTime) {
  Rng seed_rng(1);
  int covered = 0;
  const int kTrials = 60;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(1000 + trial);
    std::vector<double> values;
    double true_sum = 0;
    for (int i = 0; i < 20000; ++i) {
      double v = rng.UniformDouble(0, 10);
      values.push_back(v);
      true_sum += v;
    }
    double true_mean = true_sum / values.size();
    auto trajectory = RunProgressive(values, 500, 0.0, 77 + trial);
    const auto& first = trajectory.front();  // 500-row estimate
    if (std::abs(first.mean - true_mean) <= first.ci95) ++covered;
  }
  // 95% nominal coverage; allow slack for 60 trials.
  EXPECT_GE(covered, 51);
}

TEST(SessionTest, RecordsAndSummarizes) {
  SessionLog log;
  log.Record(OpKind::kQuery, "q1", 10.0, 100);
  log.Record(OpKind::kZoom, "z1", 30.0, 50);
  log.Record(OpKind::kPan, "p1", 20.0, 25);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_DOUBLE_EQ(log.TotalLatencyMs(), 60.0);
  EXPECT_DOUBLE_EQ(log.MaxLatencyMs(), 30.0);
  EXPECT_DOUBLE_EQ(log.MeanLatencyMs(), 20.0);
  EXPECT_DOUBLE_EQ(log.LatencyQuantileMs(0.5), 20.0);
  std::string trace = log.ToString();
  EXPECT_NE(trace.find("zoom"), std::string::npos);
}

}  // namespace
}  // namespace lodviz::explore
