#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "exec/parallel.h"
#include "exec/thread_pool.h"
#include "explore/progressive.h"
#include "graph/bundling.h"
#include "graph/clustering.h"
#include "graph/generators.h"
#include "graph/layout.h"
#include "hier/hetree.h"
#include "obs/trace.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"

namespace lodviz::exec {
namespace {

/// Pins the global thread count for one test and restores the
/// environment-derived default on exit.
class ScopedThreads {
 public:
  explicit ScopedThreads(size_t n) { SetThreads(n); }
  ~ScopedThreads() { SetThreads(0); }
};

TEST(ExecPoolTest, ExecutesEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Shutdown();
  EXPECT_EQ(count.load(), 100);
  EXPECT_EQ(pool.tasks_executed(), 100u);
}

TEST(ExecPoolTest, ShutdownDrainsQueueUnderLoad) {
  // Flood the queue faster than 2 workers can drain it, then shut down
  // immediately: graceful shutdown must still run every submitted task.
  ThreadPool pool(2);
  std::atomic<uint64_t> sum{0};
  constexpr int kTasks = 5000;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&sum, i] {
      sum.fetch_add(static_cast<uint64_t>(i), std::memory_order_relaxed);
    });
  }
  pool.Shutdown();
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kTasks) * (kTasks - 1) / 2);
  EXPECT_EQ(pool.tasks_executed(), static_cast<uint64_t>(kTasks));
}

TEST(ExecPoolTest, PerWorkerCountersSumToTotal) {
  ThreadPool pool(3);
  for (int i = 0; i < 300; ++i) pool.Submit([] {});
  pool.Shutdown();
  uint64_t sum = 0;
  for (size_t w = 0; w < pool.num_threads(); ++w) sum += pool.worker_tasks(w);
  EXPECT_EQ(sum, pool.tasks_executed());
  EXPECT_EQ(sum, 300u);
}

TEST(ExecPoolTest, WorkerThreadsAreRecognized) {
  EXPECT_FALSE(ThreadPool::InAnyPool());
  ThreadPool pool(2);
  EXPECT_FALSE(pool.InThisPool());
  std::atomic<bool> in_this{false}, in_any{false};
  pool.Submit([&] {
    in_this.store(pool.InThisPool());
    in_any.store(ThreadPool::InAnyPool());
  });
  pool.Shutdown();
  EXPECT_TRUE(in_this.load());
  EXPECT_TRUE(in_any.load());
}

TEST(ExecParallelTest, ForMatchesSerialSum) {
  ScopedThreads threads(4);
  constexpr size_t kN = 1 << 20;
  std::atomic<uint64_t> sum{0};
  ParallelFor(0, kN, 4096, [&](size_t b, size_t e) {
    uint64_t local = 0;
    for (size_t i = b; i < e; ++i) local += i;
    sum.fetch_add(local, std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), static_cast<uint64_t>(kN) * (kN - 1) / 2);
}

TEST(ExecParallelTest, ForCoversEveryIndexExactlyOnce) {
  ScopedThreads threads(8);
  constexpr size_t kN = 100000;
  std::vector<uint8_t> hits(kN, 0);
  ParallelFor(0, kN, 17, [&](size_t b, size_t e) {
    for (size_t i = b; i < e; ++i) ++hits[i];  // chunks are disjoint
  });
  EXPECT_EQ(std::count(hits.begin(), hits.end(), 1),
            static_cast<ptrdiff_t>(kN));
}

TEST(ExecParallelTest, ReduceMatchesSerialForAnyThreadCount) {
  constexpr size_t kN = 333333;
  auto run = [&] {
    return ParallelReduce<uint64_t>(
        0, kN, 1000,
        [](size_t b, size_t e) {
          uint64_t s = 0;
          for (size_t i = b; i < e; ++i) s += i;
          return s;
        },
        [](uint64_t& acc, uint64_t&& part) { acc += part; });
  };
  uint64_t expected = static_cast<uint64_t>(kN) * (kN - 1) / 2;
  {
    ScopedThreads threads(1);
    EXPECT_EQ(run(), expected);
  }
  {
    ScopedThreads threads(4);
    EXPECT_EQ(run(), expected);
  }
}

TEST(ExecParallelTest, SortMatchesStdSort) {
  ScopedThreads threads(4);
  Rng rng(7);
  std::vector<uint64_t> values(1 << 16);
  for (uint64_t& v : values) v = rng.Next();
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  ParallelSort(values.begin(), values.end(), std::less<uint64_t>());
  EXPECT_EQ(values, expected);
}

TEST(ExecParallelTest, OneThreadRunsInlineAsSingleCall) {
  ScopedThreads threads(1);
  EXPECT_TRUE(SerialMode());
  // The serial contract: exactly one fn invocation covering the whole
  // range on the calling thread — bit-identical to pre-exec code.
  std::vector<std::pair<size_t, size_t>> calls;
  ParallelFor(0, 10000, 64, [&](size_t b, size_t e) {
    EXPECT_FALSE(InWorkerThread());
    calls.emplace_back(b, e);
  });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], (std::pair<size_t, size_t>(0, 10000)));
}

TEST(ExecParallelTest, NestedParallelismDegradesToSerial) {
  ScopedThreads threads(4);
  std::atomic<int> nested_serial{0}, chunks{0};
  ParallelFor(0, 8, 1, [&](size_t, size_t) {
    chunks.fetch_add(1);
    if (SerialMode()) nested_serial.fetch_add(1);
    // A nested call must run inline on this worker, not deadlock the pool.
    std::atomic<int> inner{0};
    ParallelFor(0, 4, 1, [&](size_t b, size_t e) {
      inner.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(inner.load(), 4);
  });
  EXPECT_EQ(chunks.load(), 8);
  EXPECT_EQ(nested_serial.load(), 8);  // every chunk saw SerialMode()
}

TEST(ExecTraceTest, SpanParentPropagatesIntoWorkers) {
  ScopedThreads threads(4);
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Clear();
  tracer.SetEnabled(true);
  {
    LODVIZ_TRACE_SPAN("exec.test.parent");
    ParallelFor(0, 64, 1, [&](size_t, size_t) {
      LODVIZ_TRACE_SPAN("exec.test.child");
    });
  }
  tracer.SetEnabled(false);
  uint64_t parent_id = 0;
  for (const obs::SpanRecord& r : tracer.Finished()) {
    if (r.name == "exec.test.parent") parent_id = r.id;
  }
  ASSERT_NE(parent_id, 0u);
  size_t children = 0;
  for (const obs::SpanRecord& r : tracer.Finished()) {
    if (r.name != "exec.test.child") continue;
    ++children;
    EXPECT_EQ(r.parent_id, parent_id)
        << "child span lost its cross-thread parent";
  }
  EXPECT_EQ(children, 64u);
  tracer.Clear();
}

// --- Determinism and TSan coverage of the parallelized hot paths. Run
// each path at 1 thread and at 4 and require identical (or, where the
// parallel algorithm legitimately reassociates floating point,
// near-identical) results.

std::vector<hier::Item> DistinctItems(size_t n) {
  std::vector<hier::Item> items(n);
  Rng rng(99);
  std::vector<double> values(n);
  std::iota(values.begin(), values.end(), 0.0);  // distinct => unique order
  for (size_t i = n; i > 1; --i) std::swap(values[i - 1], values[rng.Uniform(i)]);
  for (size_t i = 0; i < n; ++i) items[i] = {values[i], i};
  return items;
}

TEST(ExecDeterminismTest, HETreeBuildIsThreadCountInvariant) {
  constexpr size_t kN = 80000;  // above the parallel-sort cutoff
  hier::HETree::Options opt;
  opt.fanout = 4;
  opt.leaf_capacity = 64;
  auto build = [&] {
    auto t = hier::HETree::Build(DistinctItems(kN), opt);
    EXPECT_TRUE(t.ok());
    return std::move(t).ValueOrDie();
  };
  SetThreads(1);
  hier::HETree serial = build();
  SetThreads(4);
  hier::HETree parallel = build();
  SetThreads(0);
  ASSERT_EQ(serial.materialized_nodes(), parallel.materialized_nodes());
  for (hier::HETree::NodeId id = 0; id < serial.materialized_nodes(); ++id) {
    const auto& a = serial.node(id);
    const auto& b = parallel.node(id);
    EXPECT_EQ(a.first, b.first);
    EXPECT_EQ(a.last, b.last);
    EXPECT_EQ(a.lo, b.lo);
    EXPECT_EQ(a.hi, b.hi);
    EXPECT_EQ(a.depth, b.depth);
    EXPECT_EQ(a.stats.sum, b.stats.sum);
    EXPECT_EQ(a.children, b.children);
  }
}

TEST(ExecDeterminismTest, ModularityIsExactAcrossThreadCounts) {
  graph::Graph g = graph::ErdosRenyi(3000, 0.01, 11);
  graph::Clustering c = graph::LabelPropagation(g, 5, 20);
  SetThreads(1);
  double serial = graph::Modularity(g, c);
  SetThreads(4);
  double parallel = graph::Modularity(g, c);
  SetThreads(0);
  EXPECT_EQ(serial, parallel);  // integer-valued sums: exact either way
}

TEST(ExecDeterminismTest, BundlingIsExactAcrossThreadCounts) {
  graph::Graph g = graph::BarabasiAlbert(60, 2, 3);
  graph::Layout layout = graph::CircularLayout(g);
  graph::BundlingOptions opt;
  opt.iterations = 20;
  SetThreads(1);
  graph::BundlingResult serial = BundleEdges(g, layout, opt);
  SetThreads(4);
  graph::BundlingResult parallel = BundleEdges(g, layout, opt);
  SetThreads(0);
  EXPECT_EQ(serial.compatible_pairs, parallel.compatible_pairs);
  ASSERT_EQ(serial.polylines.size(), parallel.polylines.size());
  for (size_t e = 0; e < serial.polylines.size(); ++e) {
    ASSERT_EQ(serial.polylines[e].size(), parallel.polylines[e].size());
    for (size_t i = 0; i < serial.polylines[e].size(); ++i) {
      EXPECT_EQ(serial.polylines[e][i].x, parallel.polylines[e][i].x);
      EXPECT_EQ(serial.polylines[e][i].y, parallel.polylines[e][i].y);
    }
  }
}

TEST(ExecDeterminismTest, ForceLayoutRunsUnderParallelism) {
  // The parallel repulsion reassociates float sums, so only structural
  // properties are asserted; this is primarily a TSan target.
  ScopedThreads threads(4);
  graph::Graph g = graph::BarabasiAlbert(400, 2, 21);
  graph::ForceLayoutOptions opt;
  opt.iterations = 10;
  graph::Layout layout = graph::ForceDirectedLayout(g, opt);
  ASSERT_EQ(layout.size(), g.num_nodes());
  for (const geo::Point& p : layout) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 1.0);
  }
}

TEST(ExecDeterminismTest, ProgressiveMomentsMatchSerialClosely) {
  std::vector<double> values(50000);
  Rng rng(13);
  for (double& v : values) v = rng.UniformDouble(-5.0, 5.0);
  auto run = [&] {
    explore::ProgressiveAggregator agg(values.size());
    agg.ProcessChunk(values);
    agg.MarkComplete();
    return agg.Estimate();
  };
  SetThreads(1);
  explore::ProgressiveEstimate serial = run();
  SetThreads(4);
  explore::ProgressiveEstimate parallel = run();
  SetThreads(0);
  EXPECT_EQ(serial.rows_seen, parallel.rows_seen);
  // Chan's pairwise merge reassociates the Welford recurrence; values agree
  // to ~1e-12 relative, far tighter than anything downstream observes.
  EXPECT_NEAR(serial.mean, parallel.mean, 1e-9);
  EXPECT_NEAR(serial.sum_estimate, parallel.sum_estimate,
              1e-9 * std::abs(serial.sum_estimate));
}

TEST(ExecDeterminismTest, SparqlRowsIdenticalAcrossThreadCounts) {
  std::string doc;
  for (int i = 0; i < 400; ++i) {
    doc += "<http://x/s" + std::to_string(i) + "> <http://x/v> \"" +
           std::to_string(i) +
           "\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
    doc += "<http://x/s" + std::to_string(i) + "> <http://x/type> <http://x/T" +
           std::to_string(i % 3) + "> .\n";
  }
  rdf::TripleStore store;
  ASSERT_TRUE(rdf::LoadNTriplesString(doc, &store).ok());
  sparql::QueryEngine engine(&store);
  const char* query =
      "SELECT ?s ?v WHERE { ?s <http://x/v> ?v . "
      "?s <http://x/type> <http://x/T1> . FILTER(?v >= 100) }";
  SetThreads(1);
  auto serial = engine.ExecuteString(query);
  ASSERT_TRUE(serial.ok());
  SetThreads(4);
  auto parallel = engine.ExecuteString(query);
  ASSERT_TRUE(parallel.ok());
  SetThreads(0);
  EXPECT_GT(serial->num_rows(), 0u);
  // Same rows in the same order: parallel chunks concatenate in order.
  EXPECT_EQ(serial->ToString(1000), parallel->ToString(1000));
}

}  // namespace
}  // namespace lodviz::exec
