// Fixture: lexer false-positive regressions. Nothing here may fire.
//
// (1) A line comment whose last character is a backslash splices the next
// physical line into the comment, so the "delete p;" below is commentary,
// not code — the old per-line scanner reported it as a naked delete. \
delete p; std::printf("never code");

// (2) Rule keywords inside string and raw-string literals are data, not
// code; the old scanner matched them.
#include <string>

namespace lodviz::fixture {

const char* SuspiciousStrings() {
  static const std::string usage =
      "usage: do not call delete or printf directly";
  static const char* raw = R"lint(new delete cout printf steady_clock)lint";
  (void)usage;
  return raw;
}

/* (3) Block comments spanning lines with std::thread worker(...)
   construction text must also stay invisible. */

}  // namespace lodviz::fixture
