#include "clean_mod.h"

#include <cstdio>
#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"

namespace lodviz {

// Comment text mentioning a new node or delete keys must not trip the
// naked-new rule, and neither must the strings below trip io-print.
Result<int> CleanMod::Parse(const std::string& text) const {
  if (text.empty()) return Status::InvalidArgument("empty");
  return static_cast<int>(text.size());
}

int UseCheckedResult(const CleanMod& m) {
  Result<int> r = m.Parse("abc");
  if (!r.ok()) return -1;
  return r.ValueOrDie();  // ok() checked above, same scope
}

int UseMovedResult(const CleanMod& m) {
  Result<int> r = m.Parse("xyz");
  LODVIZ_CHECK_OK(r);
  return std::move(r).ValueOrDie();  // CHECK_OK counts as a check
}

int UseTernary(const CleanMod& m) {
  Result<int> r = m.Parse("q");
  return r.ok() ? *r : 0;  // deref guarded by lexically preceding ok()
}

int UseValueOr(const CleanMod& m) {
  return m.Parse("fallback is fine, no check needed").ValueOr(7);
}

double MeasureParse(const CleanMod& m) {
  Stopwatch sw;  // the sanctioned clock: must not trip no-raw-clock
  (void)m.Parse("timed");
  return sw.ElapsedMicros();
}

std::string FormatCount(int n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%d", n);  // snprintf is not printf
  std::string s = "printf and cout inside strings do not fire io-print";
  (void)s;
  return buf;
}

}  // namespace lodviz
