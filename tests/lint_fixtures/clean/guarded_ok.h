// Fixture: a fully annotated mutex-owning class. Every member is either
// GUARDED_BY/PT_GUARDED_BY, internally thread-safe (atomic, obs counter),
// const/static, or carries an explicit LINT-ALLOW rationale — so
// concurrency.guarded_by must stay silent. The two ACQUIRED_BEFORE edges
// here are acyclic, so concurrency.lock_order must stay silent too.
#ifndef LODVIZ_GUARDED_OK_H_
#define LODVIZ_GUARDED_OK_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/metrics.h"

namespace lodviz::fixture {

class FrontLog {
 public:
  void Append(const std::string& line);

 private:
  Mutex mu_;
  std::map<uint64_t, std::string> lines_ LODVIZ_GUARDED_BY(mu_);
};

class AnnotatedServer {
 public:
  void Serve();

 private:
  // Acyclic order: AnnotatedServer::mu_ -> FrontLog::mu_ (both spellings).
  mutable Mutex mu_ LODVIZ_ACQUIRED_BEFORE(fixture::FrontLog::mu_);
  Mutex log_mu_ LODVIZ_ACQUIRED_AFTER(mu_);
  std::map<std::string, int> routes_ LODVIZ_GUARDED_BY(mu_);
  std::unique_ptr<int> owned_slot_ LODVIZ_PT_GUARDED_BY(mu_);
  uint64_t epoch_ LODVIZ_GUARDED_BY(log_mu_) = 0;
  std::atomic<uint64_t> requests_{0};
  obs::Counter served_;
  const int port_ = 8080;
  static constexpr int kMaxRoutes = 1024;
  // LINT-ALLOW(concurrency.guarded_by): written once before Serve() starts
  std::string name_;
};

}  // namespace lodviz::fixture

#endif  // LODVIZ_GUARDED_OK_H_
