#ifndef LODVIZ_CLEAN_MOD_H_
#define LODVIZ_CLEAN_MOD_H_

#include <memory>
#include <string>

#include "common/result.h"

namespace lodviz {

/// A well-behaved module: proper guard, no using-namespace, RAII ownership.
class CleanMod {
 public:
  CleanMod() = default;
  CleanMod(const CleanMod&) = delete;             // `= delete` is not naked
  CleanMod& operator=(const CleanMod&) = delete;  // delete

  Result<int> Parse(const std::string& text) const;

 private:
  std::unique_ptr<int> owned_;  // make_unique in the .cc, never naked new
};

/// Near-miss for sparql.no_concrete_store: the abstract interface name
/// (and identifiers merely containing "TripleStore") must not fire; only
/// the exact concrete class names do.
class TripleSource;
void UseAbstractSource(const TripleSource* source);
void UseLookalike(int my_triple_store_count);

}  // namespace lodviz

#endif  // LODVIZ_CLEAN_MOD_H_
