// Fixture: layering-conformant includes. `viz` (layer 8) may include
// `graph` (7), `sparql` (5) and `common` (0) — all strictly below it.
#include "common/mutex.h"
#include "graph/graph.h"
#include "sparql/ast.h"

namespace lodviz::viz {

int RenderFromLowerLayers() { return 0; }

}  // namespace lodviz::viz
