// Fixture: batch-operator code that is allowed to touch Scan. A
// once-per-step Scan outside any loop is the batch scan primitive itself;
// a per-row probe inside a loop is sanctioned only with a LINT-ALLOW
// rationale (the runtime-unbound NLJ fallback); and row-engine functions
// (no "Batch" in the name) are out of the rule's scope entirely.

namespace lodviz::sparql {

void Executor::EvalBgpBatches(const GroupPlan& plan) {
  // Once per pattern step, not per row: this IS the vectorized scan.
  source_->Scan(plan.pattern, [&](const Triple& t) { Append(t); });

  // The join key is unbound at runtime for some rows; that per-solution
  // index probe has no batch equivalent, so it carries a waiver (which
  // must sit directly above the Scan call line to apply).
  for (size_t row = 0; row < plan.rows; ++row) {
    // LINT-ALLOW(sparql.no_row_loop_in_batch_ops): runtime-unbound NLJ probe
    source_->Scan(Substitute(plan.pattern, row), [&](const Triple& t) {
      Emit(row, t);
    });
  }
}

void Executor::EvalBgp(const GroupPlan& plan) {
  // Row engine: per-row Scan is its contract, the rule does not apply.
  for (size_t row = 0; row < plan.rows; ++row) {
    source_->Scan(plan.pattern, [&](const Triple& t) { Emit(row, t); });
  }
}

}  // namespace lodviz::sparql
