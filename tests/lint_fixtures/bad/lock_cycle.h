// Fixture: a seeded lock-order inversion. Scheduler::mu_ declares it is
// acquired before Journal::mu_, while Journal::mu_ declares it is acquired
// before Scheduler::mu_ (via ACQUIRED_AFTER on the Scheduler side too) —
// a cycle in the static acquisition graph, i.e. a latent deadlock.
// LINT-EXPECT: concurrency.lock_order
#ifndef LODVIZ_LOCK_CYCLE_H_
#define LODVIZ_LOCK_CYCLE_H_

#include <cstdint>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lodviz::fixture {

class Scheduler {
 public:
  void Tick();

 private:
  // Edge 1: Scheduler::mu_ -> Journal::mu_ (Tick logs under its lock)...
  // ...and edge 2 via ACQUIRED_AFTER: Journal::mu_ -> Scheduler::mu_,
  // closing the cycle from this side alone.
  Mutex mu_ LODVIZ_ACQUIRED_BEFORE(fixture::Journal::mu_)
      LODVIZ_ACQUIRED_AFTER(fixture::Journal::mu_);
  std::vector<uint64_t> run_queue_ LODVIZ_GUARDED_BY(mu_);
};

class Journal {
 public:
  void Append(uint64_t entry);

 private:
  Mutex mu_;
  std::vector<uint64_t> entries_ LODVIZ_GUARDED_BY(mu_);
};

}  // namespace lodviz::fixture

#endif  // LODVIZ_LOCK_CYCLE_H_
