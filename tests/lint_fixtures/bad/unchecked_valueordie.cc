// LINT-EXPECT: unchecked-result
// ValueOrDie() with no lexically preceding ok() / CHECK_OK in scope, and
// ValueOrDie() directly on a temporary.
#include "common/result.h"

namespace lodviz {

Result<int> ParseNumber(int x);

int UncheckedLocal() {
  Result<int> r = ParseNumber(1);
  return r.ValueOrDie();  // never checked r.ok()
}

int UncheckedTemporary() { return ParseNumber(2).ValueOrDie(); }

}  // namespace lodviz
