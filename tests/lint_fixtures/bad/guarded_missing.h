// Fixture: a class that owns a mutex but leaves members unannotated.
// LINT-EXPECT: concurrency.guarded_by
#ifndef LODVIZ_GUARDED_MISSING_H_
#define LODVIZ_GUARDED_MISSING_H_

#include <map>
#include <string>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lodviz::fixture {

class SessionTable {
 public:
  void Insert(const std::string& key, int value);
  int Lookup(const std::string& key) const;

 private:
  mutable Mutex mu_;
  // Neither member says which lock protects it: both must fire.
  std::map<std::string, int> sessions_;
  int generation_ = 0;
};

}  // namespace lodviz::fixture

#endif  // LODVIZ_GUARDED_MISSING_H_
