// LINT-EXPECT: using-namespace-header
#ifndef LODVIZ_USING_NS_H_
#define LODVIZ_USING_NS_H_

#include <string>

using namespace std;  // pollutes every includer

namespace lodviz {
inline string UsingNsName() { return "bad"; }
}  // namespace lodviz

#endif  // LODVIZ_USING_NS_H_
