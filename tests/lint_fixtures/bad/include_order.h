#ifndef LODVIZ_INCLUDE_ORDER_H_
#define LODVIZ_INCLUDE_ORDER_H_

namespace lodviz {
int IncludeOrderAnswer();
}  // namespace lodviz

#endif  // LODVIZ_INCLUDE_ORDER_H_
