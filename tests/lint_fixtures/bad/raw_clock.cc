// LINT-EXPECT: no-raw-clock
// Reading std::chrono clocks directly scatters timing logic; all timing
// must flow through common/stopwatch.h so it is observable and mockable.
#include <chrono>
#include <cstdint>

namespace lodviz {

int64_t RawClockNanos() {
  auto t = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             t.time_since_epoch())
      .count();
}

int64_t RawWallSeconds() {
  return std::chrono::duration_cast<std::chrono::seconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace lodviz
