// LINT-EXPECT: exec.no_raw_thread
// Spawning std::thread directly bypasses the exec subsystem: the thread is
// invisible to LODVIZ_THREADS, per-worker metrics, and graceful shutdown.
// All parallelism must go through exec::ParallelFor / exec::ThreadPool.
#include <thread>
#include <vector>

namespace lodviz {

void ScatterWorkAcrossRawThreads(std::vector<int>* data) {
  std::thread worker([data] {
    for (int& v : *data) v *= 2;
  });
  worker.join();
}

// Allowed (and must NOT fire): querying the hardware, not making a thread.
unsigned QueryHardware() { return std::thread::hardware_concurrency(); }

}  // namespace lodviz
