// LINT-EXPECT: naked-new
// Raw new/delete instead of RAII ownership.
namespace lodviz {

int* Allocate() { return new int(7); }

void Deallocate(int* p) { delete p; }

}  // namespace lodviz
