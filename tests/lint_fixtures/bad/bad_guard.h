// LINT-EXPECT: header-guard
// Guard name does not match the file path (should be LODVIZ_BAD_GUARD_H_).
#ifndef WRONG_GUARD_NAME_H
#define WRONG_GUARD_NAME_H

namespace lodviz {
inline int BadGuardAnswer() { return 42; }
}  // namespace lodviz

#endif  // WRONG_GUARD_NAME_H
