// LINT-EXPECT: sparql.no_concrete_store
// Query-layer code naming a concrete storage backend: planning and
// execution must go through the abstract rdf::TripleSource contract so
// the in-memory and disk backends stay interchangeable (and bit-identical
// in their answers). Both concrete class names are banned.

namespace lodviz::rdf {
class TripleStore;
}  // namespace lodviz::rdf
namespace lodviz::storage {
class DiskTripleStore;
}  // namespace lodviz::storage

namespace lodviz::sparql {

// Bad: execution pinned to the in-memory store.
void BindToConcreteStore(const rdf::TripleStore* store);

// Bad: execution pinned to the disk store.
void BindToDiskStore(const storage::DiskTripleStore* store);

}  // namespace lodviz::sparql
