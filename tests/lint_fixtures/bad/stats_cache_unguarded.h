// Fixture: a read-path memoization cache mutated under a mutex from const
// methods — the shape the disk adapter's statistics cache uses — but with
// the cache member left unannotated. The lint must not be fooled by the
// `mutable` keyword or by the class being "logically const".
// LINT-EXPECT: concurrency.guarded_by
#ifndef LODVIZ_STATS_CACHE_UNGUARDED_H_
#define LODVIZ_STATS_CACHE_UNGUARDED_H_

#include <cstdint>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace lodviz::fixture {

class CardinalityCache {
 public:
  // Looks up a memoized count, loading and inserting on miss.
  uint64_t Get(uint64_t key) const;

 private:
  mutable Mutex stats_mu_;
  // Mutated from const readers under stats_mu_, but nothing here says so:
  // must fire.
  mutable std::unordered_map<uint64_t, uint64_t> cache_;
};

}  // namespace lodviz::fixture

#endif  // LODVIZ_STATS_CACHE_UNGUARDED_H_
