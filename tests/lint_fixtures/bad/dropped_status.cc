// LINT-EXPECT: unchecked-result
// Dereferencing a Result (operator* / operator->) without checking ok():
// the value may not exist, and the error status is silently dropped.
#include <string>

#include "common/result.h"

namespace lodviz {

Result<std::string> LoadName();

std::string DroppedStatusDeref() {
  Result<std::string> name = LoadName();
  return *name;  // status dropped; aborts at runtime if LoadName failed
}

size_t DroppedStatusArrow() {
  Result<std::string> name = LoadName();
  return name->size();
}

}  // namespace lodviz
