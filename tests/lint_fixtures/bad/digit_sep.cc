// Fixture: C++14 digit separators. The odd number of apostrophes in the
// literal below made the old lexer open a bogus char literal and swallow
// the rest of the file, hiding the naked delete and the printf from every
// rule (false negatives). The token lexer must still see and report both.
// LINT-EXPECT: naked-new, io-print
#include <cstdint>
#include <cstdio>

namespace lodviz::fixture {

void LeakTimer(int* p) {
  constexpr uint64_t kNanosPerSecond = 1'000'000'000;
  delete p;
  std::printf("%llu\n", static_cast<unsigned long long>(kNanosPerSecond));
}

}  // namespace lodviz::fixture
