// Fixture: a batch operator that has silently regressed to row-at-a-time
// execution — it walks its input one row at a time and issues a virtual
// TripleSource::Scan per row. Batch operators must extend whole runs
// (ColumnBatch::AppendRun); a deliberate per-row probe needs a LINT-ALLOW
// rationale.
// LINT-EXPECT: sparql.no_row_loop_in_batch_ops

namespace lodviz::sparql {

void Executor::EvalBgpBatches(const GroupPlan& plan) {
  for (size_t row = 0; row < plan.rows; ++row) {
    source_->Scan(plan.pattern, [&](const Triple& t) { Emit(row, t); });
  }
}

}  // namespace lodviz::sparql
