// Fixture: the query layer reaching up into core. `sparql` (layer 5) may
// only include modules strictly below it; `core` is the top of the DAG.
// LINT-EXPECT: arch.layering
#include "core/engine.h"

namespace lodviz::sparql {

int UseEngineFromQueryLayer() { return 1; }

}  // namespace lodviz::sparql
