// LINT-EXPECT: include-first
// A .cc must include its own header first (catches missing-include bugs in
// the header itself).
#include <vector>

#include "include_order.h"

namespace lodviz {
int IncludeOrderAnswer() { return static_cast<int>(std::vector<int>{1}.size()); }
}  // namespace lodviz
