// LINT-EXPECT: io-print
#include <cstdio>
#include <iostream>

namespace lodviz {

void Announce() {
  std::cout << "library code must not write to stdout directly\n";
  printf("neither via printf\n");
}

}  // namespace lodviz
