#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/random.h"
#include "onto/containment.h"
#include "onto/hierarchy.h"
#include "rdf/turtle.h"
#include "rdf/vocab.h"

namespace lodviz::onto {
namespace {

rdf::TripleStore MakeTaxonomyStore() {
  const char* doc = R"(
@prefix ex: <http://x.org/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .

ex:Animal rdfs:label "Animal" .
ex:Mammal rdfs:subClassOf ex:Animal .
ex:Bird rdfs:subClassOf ex:Animal .
ex:Dog rdfs:subClassOf ex:Mammal .
ex:Cat rdfs:subClassOf ex:Mammal .

ex:rex a ex:Dog .
ex:fido a ex:Dog .
ex:tom a ex:Cat .
ex:tweety a ex:Bird .
ex:generic a ex:Animal .
)";
  rdf::TripleStore store;
  auto n = rdf::LoadTurtleString(doc, &store);
  EXPECT_TRUE(n.ok()) << n.status().ToString();
  return store;
}

TEST(HierarchyTest, ExtractsTreeWithCounts) {
  rdf::TripleStore store = MakeTaxonomyStore();
  ClassHierarchy h = ClassHierarchy::Extract(store);
  ASSERT_EQ(h.size(), 5u);
  ASSERT_EQ(h.roots().size(), 1u);

  const ClassInfo& animal = h.classes()[h.roots()[0]];
  EXPECT_EQ(animal.label, "Animal");
  EXPECT_EQ(animal.direct_instances, 1u);   // generic
  EXPECT_EQ(animal.subtree_instances, 5u);  // everything
  EXPECT_EQ(animal.children.size(), 2u);
  EXPECT_EQ(animal.depth, 0u);

  int32_t dog = h.IndexOf(store.dict().Lookup(rdf::Term::Iri("http://x.org/Dog")));
  ASSERT_GE(dog, 0);
  EXPECT_EQ(h.classes()[dog].direct_instances, 2u);
  EXPECT_EQ(h.classes()[dog].subtree_instances, 2u);
  EXPECT_EQ(h.classes()[dog].depth, 2u);
  EXPECT_EQ(h.MaxDepth(), 2u);
}

TEST(HierarchyTest, CyclesAreBroken) {
  rdf::TripleStore store;
  using rdf::Term;
  store.Add(Term::Iri("http://x/A"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/B"));
  store.Add(Term::Iri("http://x/B"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/C"));
  store.Add(Term::Iri("http://x/C"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/A"));
  ClassHierarchy h = ClassHierarchy::Extract(store);
  EXPECT_EQ(h.size(), 3u);
  ASSERT_GE(h.roots().size(), 1u);
  // Every class is reachable exactly once via the forest: instance
  // roll-up terminates and depths are finite.
  for (const ClassInfo& c : h.classes()) {
    EXPECT_LE(c.depth, 2u);
  }
}

TEST(HierarchyTest, SelfLoopAndMultiParent) {
  rdf::TripleStore store;
  using rdf::Term;
  store.Add(Term::Iri("http://x/A"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/A"));  // ignored
  store.Add(Term::Iri("http://x/C"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/A"));
  store.Add(Term::Iri("http://x/C"), Term::Iri(rdf::vocab::kRdfsSubClassOf),
            Term::Iri("http://x/B"));  // second parent dropped
  ClassHierarchy h = ClassHierarchy::Extract(store);
  int32_t c = h.IndexOf(store.dict().Lookup(Term::Iri("http://x/C")));
  ASSERT_GE(c, 0);
  EXPECT_NE(h.classes()[c].parent, -1);
}

TEST(HierarchyTest, KeyConceptsPreferBigShallowClasses) {
  rdf::TripleStore store = MakeTaxonomyStore();
  ClassHierarchy h = ClassHierarchy::Extract(store);
  auto key = h.KeyConcepts(2);
  ASSERT_EQ(key.size(), 2u);
  // Animal (all instances, 2 children, depth 0) must rank first.
  EXPECT_EQ(h.classes()[key[0]].label, "Animal");
}

TEST(HierarchyTest, EmptyStore) {
  rdf::TripleStore store;
  ClassHierarchy h = ClassHierarchy::Extract(store);
  EXPECT_EQ(h.size(), 0u);
  EXPECT_TRUE(h.KeyConcepts(3).empty());
  EXPECT_TRUE(CropCirclesLayout(h).empty());
}

TEST(HierarchyTest, ToStringIndentsByDepth) {
  rdf::TripleStore store = MakeTaxonomyStore();
  ClassHierarchy h = ClassHierarchy::Extract(store);
  std::string text = h.ToString();
  EXPECT_NE(text.find("Animal (1 direct, 5 total)"), std::string::npos);
  EXPECT_NE(text.find("    "), std::string::npos);  // depth-2 indent
}

// ---- containment layout invariants ----

double Dist(const ContainmentCircle& a, const ContainmentCircle& b) {
  return std::hypot(a.cx - b.cx, a.cy - b.cy);
}

class ContainmentInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainmentInvariants, ChildrenInsideParentsSiblingsDisjoint) {
  // Random forest: ~40 classes with random parents (acyclic by
  // construction: parent index < child index) and random instance counts.
  Rng rng(GetParam());
  rdf::TripleStore store;
  using rdf::Term;
  const int kClasses = 40;
  for (int i = 1; i < kClasses; ++i) {
    if (rng.Bernoulli(0.8)) {
      int parent = static_cast<int>(rng.Uniform(i));
      store.Add(Term::Iri("http://x/C" + std::to_string(i)),
                Term::Iri(rdf::vocab::kRdfsSubClassOf),
                Term::Iri("http://x/C" + std::to_string(parent)));
    }
    int instances = static_cast<int>(rng.Uniform(20));
    for (int k = 0; k < instances; ++k) {
      store.Add(Term::Iri("http://x/i" + std::to_string(i) + "_" +
                          std::to_string(k)),
                Term::Iri(rdf::vocab::kRdfType),
                Term::Iri("http://x/C" + std::to_string(i)));
    }
  }
  ClassHierarchy h = ClassHierarchy::Extract(store);
  auto circles = CropCirclesLayout(h);
  ASSERT_EQ(circles.size(), h.size());

  // Index circles by class idx.
  std::vector<const ContainmentCircle*> by_class(h.size(), nullptr);
  for (const auto& c : circles) by_class[c.class_idx] = &c;

  for (size_t i = 0; i < h.size(); ++i) {
    const ClassInfo& info = h.classes()[i];
    const ContainmentCircle& me = *by_class[i];
    EXPECT_GT(me.r, 0.0);
    // Inside the unit square.
    EXPECT_GE(me.cx - me.r, -1e-9);
    EXPECT_LE(me.cx + me.r, 1.0 + 1e-9);
    // Strictly inside the parent.
    if (info.parent >= 0) {
      const ContainmentCircle& parent = *by_class[info.parent];
      EXPECT_LE(Dist(me, parent) + me.r, parent.r + 1e-9)
          << "class " << i << " leaks out of its parent";
    }
    // Siblings disjoint.
    for (size_t j = 0; j < info.children.size(); ++j) {
      for (size_t k = j + 1; k < info.children.size(); ++k) {
        const ContainmentCircle& a = *by_class[info.children[j]];
        const ContainmentCircle& b = *by_class[info.children[k]];
        EXPECT_GE(Dist(a, b) + 1e-9, a.r + b.r)
            << "siblings " << info.children[j] << " and "
            << info.children[k] << " overlap";
      }
    }
  }
  // Roots disjoint too.
  for (size_t j = 0; j < h.roots().size(); ++j) {
    for (size_t k = j + 1; k < h.roots().size(); ++k) {
      const ContainmentCircle& a = *by_class[h.roots()[j]];
      const ContainmentCircle& b = *by_class[h.roots()[k]];
      EXPECT_GE(Dist(a, b) + 1e-9, a.r + b.r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ContainmentTest, SingleClass) {
  rdf::TripleStore store;
  store.Add(rdf::Term::Iri("http://x/i"), rdf::Term::Iri(rdf::vocab::kRdfType),
            rdf::Term::Iri("http://x/Only"));
  ClassHierarchy h = ClassHierarchy::Extract(store);
  auto circles = CropCirclesLayout(h);
  ASSERT_EQ(circles.size(), 1u);
  EXPECT_NEAR(circles[0].cx, 0.5, 1e-9);
  EXPECT_NEAR(circles[0].cy, 0.5, 1e-9);
}

TEST(ContainmentTest, BiggerSubtreesGetBiggerCircles) {
  rdf::TripleStore store = MakeTaxonomyStore();
  ClassHierarchy h = ClassHierarchy::Extract(store);
  auto circles = CropCirclesLayout(h);
  auto radius_of = [&](const char* iri) {
    int32_t idx = h.IndexOf(store.dict().Lookup(rdf::Term::Iri(iri)));
    for (const auto& c : circles) {
      if (c.class_idx == idx) return c.r;
    }
    return -1.0;
  };
  EXPECT_GT(radius_of("http://x.org/Animal"), radius_of("http://x.org/Mammal"));
  EXPECT_GT(radius_of("http://x.org/Mammal"), radius_of("http://x.org/Cat"));
}

}  // namespace
}  // namespace lodviz::onto
