// End-to-end integration tests spanning the whole stack: the flows a
// downstream user of lodviz would actually run.
#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "core/ldvm.h"
#include "explore/browser.h"
#include "explore/interest.h"
#include "explore/progressive.h"
#include "explore/summary.h"
#include "hier/hetree.h"
#include "rdf/ntriples.h"
#include "rdf/streaming.h"
#include "workload/synthetic_lod.h"
#include "test_util.h"

namespace lodviz {
namespace {

/// Turtle in -> explore -> CONSTRUCT out -> N-Triples round trip.
TEST(IntegrationTest, TurtleToConstructToNTriples) {
  core::Engine engine;
  ASSERT_TRUE(engine
                  .LoadTurtle(R"(
@prefix ex: <http://shop.example/> .
@prefix rdfs: <http://www.w3.org/2000/01/rdf-schema#> .
ex:p1 a ex:Product ; rdfs:label "Anvil" ; ex:price 99.5 ; ex:madeBy ex:acme .
ex:p2 a ex:Product ; rdfs:label "Rocket skates" ; ex:price 240.0 ; ex:madeBy ex:acme .
ex:p3 a ex:Product ; rdfs:label "Bird seed" ; ex:price 5.25 ; ex:madeBy ex:birdco .
ex:acme a ex:Company ; rdfs:label "ACME Corp" .
ex:birdco a ex:Company ; rdfs:label "BirdCo" .
)")
                  .ok());

  // SPARQL over the turtle data.
  auto expensive = engine.Query(
      "PREFIX ex: <http://shop.example/> "
      "SELECT ?label WHERE { ?p ex:price ?v ; "
      "<http://www.w3.org/2000/01/rdf-schema#label> ?label . "
      "FILTER(?v > 50) } ORDER BY ?label");
  ASSERT_TRUE(expensive.ok()) << expensive.status().ToString();
  ASSERT_EQ(expensive->num_rows(), 2u);
  EXPECT_EQ(expensive->rows()[0][0].term.lexical, "Anvil");

  // CONSTRUCT a derived graph and round-trip it through N-Triples.
  auto derived = engine.QueryGraph(
      "PREFIX ex: <http://shop.example/> "
      "CONSTRUCT { ?c ex:sells ?p . } WHERE { ?p ex:madeBy ?c . }");
  ASSERT_TRUE(derived.ok()) << derived.status().ToString();
  EXPECT_EQ(derived->size(), 3u);

  rdf::TripleStore derived_store;
  for (const auto& t : *derived) {
    derived_store.Add(t.subject, t.predicate, t.object);
  }
  std::ostringstream out;
  rdf::WriteNTriples(derived_store, out);
  rdf::TripleStore reloaded;
  auto n = rdf::LoadNTriplesString(out.str(), &reloaded);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.ValueOrDie(), 3u);

  // Browse: ACME sells two products (incoming links via ex:sells).
  explore::ResourceBrowser browser(&derived_store);
  auto acme = browser.DescribeIri("http://shop.example/acme");
  ASSERT_TRUE(acme.ok());
  EXPECT_EQ(acme->outgoing.size(), 2u);
}

/// Dynamic setting: data streams in from a paged endpoint; after each
/// batch the engine re-profiles and the HETree adapts — nothing is
/// precomputed.
TEST(IntegrationTest, StreamingIngestWithIncrementalAnalysis) {
  auto triples = workload::GenerateSyntheticLodTriples(
      {.num_entities = 3000, .seed = 11});
  rdf::EndpointSimulator endpoint(triples, /*page_size=*/2000,
                                  /*per_request_ms=*/10);

  core::Engine engine;
  size_t batches = 0;
  uint64_t last_count = 0;
  while (!endpoint.Exhausted()) {
    auto page = endpoint.NextBatch(2000);
    for (const auto& pt : page) {
      engine.store().Add(pt.subject, pt.predicate, pt.object);
    }
    ++batches;
    // Incremental analysis over the data so far.
    hier::HETree::Options opts;
    opts.lazy = true;
    auto tree = engine.BuildHierarchy(workload::lod::kAge, opts);
    ASSERT_TRUE(tree.ok());
    uint64_t count = tree->node(tree->root()).stats.count;
    EXPECT_GE(count, last_count);
    last_count = count;
  }
  EXPECT_GT(batches, 5u);
  EXPECT_EQ(last_count, 3000u);
  EXPECT_GT(endpoint.requests_made(), 5u);
}

/// The full SynopsViz-style session: load, profile, recommend, render,
/// drill into a hierarchy, check the session log recorded it all.
TEST(IntegrationTest, FullExplorationSession) {
  core::Engine engine;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 5000;
  lod.seed = 3;
  engine.LoadSynthetic(lod);

  // LDVM end to end.
  core::LdvmPipeline pipeline(&engine);
  auto view = pipeline.Run();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_GT(view->render.elements_drawn, 0u);

  // Facets narrow, search finds, hierarchy drills.
  auto browser = engine.MakeBrowser();
  ASSERT_FALSE(browser.Facets().empty());
  EXPECT_FALSE(engine.Search("harbor").empty());

  hier::HETree::Options hopts;
  hopts.lazy = true;
  auto tree = engine.BuildHierarchy(workload::lod::kAge, hopts);
  ASSERT_TRUE(tree.ok());
  auto children = tree->Children(tree->root());
  ASSERT_FALSE(children.empty());
  auto stats = tree->RangeStats(30, 50);
  EXPECT_GT(stats.count, 0u);

  // Schema summary fits on a screen even though the data does not.
  explore::SchemaSummary summary =
      explore::BuildSchemaSummary(engine.store());
  EXPECT_LE(summary.classes.size(), 10u);
  // Category IRIs appear only as objects, so entities = the 5000 subjects.
  EXPECT_EQ(summary.total_entities, 5000u);

  // Interest-driven steering over the category facet.
  explore::InterestModel interest(&engine.store());
  rdf::TermId cat0 = engine.store().dict().Lookup(
      rdf::Term::Iri(std::string(workload::lod::kCategoryPrefix) + "0"));
  ASSERT_NE(cat0, rdf::kInvalidTermId);
  int marked = 0;
  engine.store().Scan(
      {rdf::kInvalidTermId,
       engine.store().dict().Lookup(rdf::Term::Iri(workload::lod::kCategory)),
       cat0},
      [&](const rdf::Triple& t) {
        interest.MarkInteresting(t.s);
        return ++marked < 5;
      });
  ASSERT_EQ(interest.num_marked(), 5u);
  auto signals = interest.TopSignals(5);
  ASSERT_FALSE(signals.empty());
  // The shared category must rank among the strongest signals (the marked
  // five may also share a type, which can legitimately tie or beat it).
  bool has_cat0 = false;
  for (const auto& sig : signals) has_cat0 |= sig.value == cat0;
  EXPECT_TRUE(has_cat0);
  auto suggestions = interest.SuggestEntities(5);
  EXPECT_FALSE(suggestions.empty());

  // The session log captured load/query/render operations.
  EXPECT_GE(engine.session().size(), 3u);
  EXPECT_GT(engine.session().TotalLatencyMs(), 0.0);
}

/// Progressive + approximate answers agree with exact SPARQL aggregates.
TEST(IntegrationTest, ProgressiveMatchesExactAggregate) {
  core::Engine engine;
  workload::SyntheticLodOptions lod;
  lod.num_entities = 20000;
  lod.seed = 9;
  engine.LoadSynthetic(lod);

  auto exact = engine.Query(
      "SELECT (AVG(?age) AS ?avg) WHERE { ?s <http://lod.example/ontology/age> ?age . }");
  ASSERT_TRUE(exact.ok());
  double exact_avg = test::Unwrap(exact->rows()[0][0].term.AsDouble());

  std::vector<double> ages;
  engine.store().Scan(
      {rdf::kInvalidTermId,
       engine.store().dict().Lookup(
           rdf::Term::Iri(workload::lod::kAge)),
       rdf::kInvalidTermId},
      [&](const rdf::Triple& t) {
        auto v = engine.store().dict().term(t.o).AsDouble();
        if (v.ok()) ages.push_back(*v);
        return true;
      });
  auto trajectory = explore::RunProgressive(ages, 500, 0.02, 5);
  ASSERT_FALSE(trajectory.empty());
  // The early-stopped progressive answer is within its CI of the exact.
  const auto& est = trajectory.back();
  EXPECT_LT(est.rows_seen, ages.size());
  EXPECT_NEAR(est.mean, exact_avg, std::max(0.5, 3 * est.ci95));
}

}  // namespace
}  // namespace lodviz
