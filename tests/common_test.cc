#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/table_printer.h"
#include "test_util.h"

namespace lodviz {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::IoError("x"), Status::IoError("x"));
  EXPECT_FALSE(Status::IoError("x") == Status::IoError("y"));
  EXPECT_FALSE(Status::IoError("x") == Status::Internal("x"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  LODVIZ_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(3).ok());
  EXPECT_EQ(UsesReturnNotOk(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x;
}

Result<int> DoubleIt(int x) {
  LODVIZ_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 21);
  EXPECT_EQ(*r, 21);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(0);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(r.ValueOr(-7), -7);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(test::Unwrap(DoubleIt(5)), 10);
  EXPECT_FALSE(DoubleIt(-5).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(9);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 9);
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
}

TEST(StringUtilTest, JoinInvertsSplit) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, "--"), "x--y--z");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(TrimWhitespace("  hi\t\n"), "hi");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("  \t "), "");
}

TEST(StringUtilTest, TokenizeWordsLowercasesAndSplits) {
  EXPECT_EQ(TokenizeWords("Hello, Linked-Data World!"),
            (std::vector<std::string>{"hello", "linked", "data", "world"}));
  EXPECT_TRUE(TokenizeWords("...").empty());
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(12.5), "12.5");
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
}

TEST(StringUtilTest, FormatCountAddsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformDoubleInRange) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIsDeterministicForFixedSeed) {
  Rng a(23), b(23);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Uniform(1000), b.Uniform(1000));
}

TEST(RngTest, UniformPassesChiSquared) {
  // 64 buckets, 64k draws: expected 1000 per bucket. Chi-squared with 63
  // degrees of freedom exceeds 103 with p < 0.001, so a fixed seed makes
  // this deterministic and a uniformity regression makes it fail hard.
  Rng rng(29);
  constexpr uint64_t kBuckets = 64;
  constexpr int kDraws = 64000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[rng.Uniform(kBuckets)];
  const double expected = static_cast<double>(kDraws) / kBuckets;
  double chi2 = 0.0;
  for (int c : counts) {
    double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 103.0);
}

TEST(RngTest, UniformHasNoModuloBias) {
  // The old `Next() % n` maps [0, 2^64) onto n = 3 * 2^62 so that values
  // below 2^62 are twice as likely as the rest: P(v < 2^62) was 1/2
  // instead of 1/3. Rejection sampling restores 1/3, which 40k draws
  // separate from 1/2 by ~70 standard errors.
  Rng rng(31);
  const uint64_t n = 3ULL << 62;
  const uint64_t third = 1ULL << 62;
  int low = 0;
  const int draws = 40000;
  for (int i = 0; i < draws; ++i) {
    uint64_t v = rng.Uniform(n);
    ASSERT_LT(v, n);
    if (v < third) ++low;
  }
  double frac = static_cast<double>(low) / draws;
  EXPECT_NEAR(frac, 1.0 / 3.0, 0.02);
}

TEST(RngTest, NormalHasExpectedMoments) {
  Rng rng(17);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    double v = rng.Normal();
    sum += v;
    sumsq += v * v;
  }
  double mean = sum / n;
  double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(ZipfTest, RankZeroIsMostFrequent) {
  Rng rng(19);
  ZipfSampler zipf(100, 1.1);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[50]);
  // Everything must be in range.
  int total = 0;
  for (int c : counts) total += c;
  EXPECT_EQ(total, 50000);
}

TEST(ZipfTest, AlphaZeroIsRoughlyUniform) {
  Rng rng(23);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 600);
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"name", "n"});
  tp.AddRow({"alpha", "1"});
  tp.AddRow({"b", "22"});
  std::string rendered = tp.ToString();
  EXPECT_NE(rendered.find("| name  | n  |"), std::string::npos);
  EXPECT_NE(rendered.find("| alpha | 1  |"), std::string::npos);
  EXPECT_NE(rendered.find("| b     | 22 |"), std::string::npos);
  EXPECT_EQ(tp.num_rows(), 2u);
}

}  // namespace
}  // namespace lodviz
