#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

#include "common/random.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "stats/histogram.h"
#include "stats/moments.h"
#include "stats/profile.h"
#include "stats/quantile.h"
#include "stats/sampler.h"
#include "stats/sketch.h"
#include "test_util.h"

namespace lodviz::stats {
namespace {

TEST(MomentsTest, BasicStatistics) {
  RunningMoments m;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(v);
  EXPECT_EQ(m.count(), 8u);
  EXPECT_DOUBLE_EQ(m.mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.variance(), 4.0);
  EXPECT_DOUBLE_EQ(m.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(m.min(), 2.0);
  EXPECT_DOUBLE_EQ(m.max(), 9.0);
  EXPECT_DOUBLE_EQ(m.sum(), 40.0);
}

TEST(MomentsTest, EmptyIsSafe) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_TRUE(std::isnan(m.min()));
}

/// Merge must equal bulk accumulation — the exactness property that makes
/// hierarchical statistics roll-up correct.
class MomentsMerge : public ::testing::TestWithParam<int> {};

TEST_P(MomentsMerge, MergeEqualsBulk) {
  Rng rng(GetParam());
  RunningMoments bulk, left, right;
  for (int i = 0; i < 1000; ++i) {
    double v = rng.Normal(10.0, 3.0);
    bulk.Add(v);
    (i % 3 == 0 ? left : right).Add(v);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), bulk.min());
  EXPECT_DOUBLE_EQ(left.max(), bulk.max());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MomentsMerge, ::testing::Range(1, 8));

TEST(MomentsTest, MergeWithEmpty) {
  RunningMoments a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningMoments a_copy = a;
  a.Merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), a_copy.mean());
  b.Merge(a);  // adopt
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(CorrelationTest, PerfectLinear) {
  Correlation c;
  for (int i = 0; i < 100; ++i) c.Add(i, 2.0 * i + 1.0);
  EXPECT_NEAR(c.Pearson(), 1.0, 1e-12);
  Correlation neg;
  for (int i = 0; i < 100; ++i) neg.Add(i, -3.0 * i);
  EXPECT_NEAR(neg.Pearson(), -1.0, 1e-12);
}

TEST(CorrelationTest, IndependentIsNearZero) {
  Rng rng(5);
  Correlation c;
  for (int i = 0; i < 20000; ++i) c.Add(rng.UniformDouble(), rng.UniformDouble());
  EXPECT_NEAR(c.Pearson(), 0.0, 0.03);
}

TEST(HistogramTest, EquiWidthCountsAreExact) {
  std::vector<double> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);  // 0..99
  auto h = Histogram::Build(values, 10, BinningKind::kEquiWidth);
  ASSERT_TRUE(h.ok());
  ASSERT_EQ(h->bins().size(), 10u);
  for (const Bin& b : h->bins()) EXPECT_EQ(b.count, 10u);
  EXPECT_EQ(h->total_count(), 100u);
}

TEST(HistogramTest, EquiDepthBalancesSkew) {
  // Heavily skewed data: equi-depth should still balance counts.
  std::vector<double> values;
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) values.push_back(std::pow(rng.UniformDouble(), 4));
  auto h = Histogram::Build(values, 10, BinningKind::kEquiDepth);
  ASSERT_TRUE(h.ok());
  for (const Bin& b : h->bins()) {
    EXPECT_GT(b.count, 500u);
    EXPECT_LT(b.count, 2000u);
  }
}

TEST(HistogramTest, SingleValueDegenerate) {
  std::vector<double> values(50, 3.25);
  auto h = Histogram::Build(values, 5, BinningKind::kEquiWidth);
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->total_count(), 50u);
}

TEST(HistogramTest, RangeEstimateInterpolates) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i * 0.1);  // uniform 0..100
  auto h = Histogram::Build(values, 20, BinningKind::kEquiWidth);
  ASSERT_TRUE(h.ok());
  double est = h->EstimateRangeCount(0.0, 50.0);
  EXPECT_NEAR(est, 500.0, 15.0);
}

TEST(HistogramTest, FixedBinsClampOutOfRange) {
  auto h = Histogram::MakeFixed(0.0, 10.0, 5);
  ASSERT_TRUE(h.ok());
  h->Add(-100.0);
  h->Add(100.0);
  h->Add(5.0);
  EXPECT_EQ(h->bins().front().count, 1u);
  EXPECT_EQ(h->bins().back().count, 1u);
  EXPECT_EQ(h->total_count(), 3u);
}

TEST(HistogramTest, InvalidArguments) {
  EXPECT_FALSE(Histogram::Build({}, 4, BinningKind::kEquiWidth).ok());
  EXPECT_FALSE(Histogram::Build({1.0}, 0, BinningKind::kEquiWidth).ok());
  EXPECT_FALSE(Histogram::MakeFixed(5.0, 5.0, 4).ok());
}

TEST(ReservoirTest, KeepsAllWhenUnderCapacity) {
  ReservoirSampler<int> r(100, 1);
  for (int i = 0; i < 50; ++i) r.Add(i);
  EXPECT_EQ(r.sample().size(), 50u);
  EXPECT_EQ(r.seen(), 50u);
}

TEST(ReservoirTest, UniformInclusionProbability) {
  // Each of 1000 items should land in a 100-slot reservoir ~10% of the time.
  const int kTrials = 400;
  std::vector<int> inclusion(1000, 0);
  for (int trial = 0; trial < kTrials; ++trial) {
    ReservoirSampler<int> r(100, 1000 + trial);
    for (int i = 0; i < 1000; ++i) r.Add(i);
    for (int v : r.sample()) ++inclusion[v];
  }
  // First, middle and last items must all be included at comparable rates.
  for (int idx : {0, 1, 499, 500, 998, 999}) {
    double rate = static_cast<double>(inclusion[idx]) / kTrials;
    EXPECT_NEAR(rate, 0.1, 0.05) << "item " << idx;
  }
}

TEST(ReservoirTest, SampleMeanApproximatesPopulation) {
  Rng rng(3);
  ReservoirSampler<double> r(2000, 4);
  RunningMoments pop;
  for (int i = 0; i < 200000; ++i) {
    double v = rng.Normal(50.0, 10.0);
    r.Add(v);
    pop.Add(v);
  }
  RunningMoments samp;
  for (double v : r.sample()) samp.Add(v);
  EXPECT_NEAR(samp.mean(), pop.mean(), 1.0);
  EXPECT_NEAR(r.ScaleFactor(), 100.0, 0.01);
}

TEST(BernoulliTest, SampleSizeNearExpectation) {
  BernoulliSampler<int> s(0.1, 9);
  for (int i = 0; i < 100000; ++i) s.Add(i);
  EXPECT_NEAR(static_cast<double>(s.sample().size()), 10000.0, 500.0);
}

TEST(StratifiedTest, RareStrataAreRepresented) {
  StratifiedSampler<int, int> s(10, 11);
  // Stratum 0: 100000 items; stratum 1: only 5 items.
  for (int i = 0; i < 100000; ++i) s.Add(0, i);
  for (int i = 0; i < 5; ++i) s.Add(1, i);
  ASSERT_EQ(s.strata().size(), 2u);
  EXPECT_EQ(s.strata().at(0).sample().size(), 10u);
  EXPECT_EQ(s.strata().at(1).sample().size(), 5u);
  EXPECT_EQ(s.Flatten().size(), 15u);
}

TEST(CountMinTest, NeverUndercounts) {
  CountMinSketch cms(256, 4);
  Rng rng(13);
  std::unordered_map<uint64_t, uint64_t> truth;
  for (int i = 0; i < 5000; ++i) {
    uint64_t item = rng.Uniform(500);
    ++truth[item];
    cms.Add(item);
  }
  for (const auto& [item, count] : truth) {
    EXPECT_GE(cms.Estimate(item), count);
  }
  EXPECT_EQ(cms.total(), 5000u);
}

TEST(CountMinTest, HeavyHitterIsAccurate) {
  CountMinSketch cms(2048, 5);
  for (int i = 0; i < 10000; ++i) cms.AddString("popular");
  for (int i = 0; i < 1000; ++i) {
    cms.AddString("rare" + std::to_string(i));
  }
  uint64_t est = cms.EstimateString("popular");
  EXPECT_GE(est, 10000u);
  EXPECT_LE(est, 10050u);
}

class HllAccuracy : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HllAccuracy, WithinFivePercent) {
  uint64_t n = GetParam();
  HyperLogLog hll(14);
  for (uint64_t i = 0; i < n; ++i) hll.Add(i * 2654435761ULL + 17);
  double est = hll.Estimate();
  EXPECT_NEAR(est, static_cast<double>(n), static_cast<double>(n) * 0.05 + 3.0);
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllAccuracy,
                         ::testing::Values(10, 100, 1000, 50000, 200000));

TEST(HllTest, MergeEqualsUnion) {
  HyperLogLog a(12), b(12), u(12);
  for (uint64_t i = 0; i < 10000; ++i) {
    a.Add(i);
    u.Add(i);
  }
  for (uint64_t i = 5000; i < 15000; ++i) {
    b.Add(i);
    u.Add(i);
  }
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.Estimate(), u.Estimate());
}

TEST(P2QuantileTest, MedianOfUniform) {
  Rng rng(17);
  P2Quantile median(0.5);
  for (int i = 0; i < 100000; ++i) median.Add(rng.UniformDouble() * 100.0);
  EXPECT_NEAR(median.Estimate(), 50.0, 2.0);
}

TEST(P2QuantileTest, TailQuantile) {
  Rng rng(19);
  P2Quantile p95(0.95);
  for (int i = 0; i < 100000; ++i) p95.Add(rng.UniformDouble() * 100.0);
  EXPECT_NEAR(p95.Estimate(), 95.0, 2.5);
}

TEST(P2QuantileTest, SmallSampleIsExactish) {
  P2Quantile median(0.5);
  median.Add(10.0);
  median.Add(20.0);
  median.Add(30.0);
  double est = median.Estimate();
  EXPECT_GE(est, 10.0);
  EXPECT_LE(est, 30.0);
}

// ---- Profiler over a synthetic RDF dataset ----

rdf::TripleStore MakeProfileStore() {
  rdf::TripleStore store;
  using rdf::Term;
  for (int i = 0; i < 200; ++i) {
    std::string s = "http://x/person" + std::to_string(i);
    store.Add(Term::Iri(s), Term::Iri("http://x/age"),
              Term::IntLiteral(20 + i % 50));
    store.Add(Term::Iri(s), Term::Iri("http://x/born"),
              Term::DateTimeLiteral(100000000 + i * 86400LL));
    store.Add(Term::Iri(s), Term::Iri("http://x/team"),
              Term::Literal(i % 2 ? "red" : "blue"));
    store.Add(Term::Iri(s), Term::Iri("http://x/bio"),
              Term::Literal("unique text " + std::to_string(i * 7919)));
    store.Add(Term::Iri(s), Term::Iri("http://x/knows"),
              Term::Iri("http://x/person" + std::to_string((i + 1) % 200)));
    store.Add(Term::Iri(s), Term::Iri(rdf::vocab::kGeoLat),
              Term::DoubleLiteral(40.0 + i * 0.01));
    store.Add(Term::Iri(s), Term::Iri(rdf::vocab::kGeoLong),
              Term::DoubleLiteral(-74.0 + i * 0.01));
  }
  return store;
}

TEST(ProfilerTest, DetectsValueKinds) {
  rdf::TripleStore store = MakeProfileStore();
  auto profile = ProfileDataset(store);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  const DatasetProfile& dp = profile.ValueOrDie();

  EXPECT_EQ(dp.FindProperty("http://x/age")->kind, ValueKind::kNumeric);
  EXPECT_EQ(dp.FindProperty("http://x/born")->kind, ValueKind::kTemporal);
  EXPECT_EQ(dp.FindProperty("http://x/team")->kind, ValueKind::kCategorical);
  EXPECT_EQ(dp.FindProperty("http://x/bio")->kind, ValueKind::kText);
  EXPECT_EQ(dp.FindProperty("http://x/knows")->kind, ValueKind::kEntity);
}

TEST(ProfilerTest, DatasetLevelSignals) {
  rdf::TripleStore store = MakeProfileStore();
  auto dp = test::Unwrap(ProfileDataset(store));
  EXPECT_TRUE(dp.has_spatial);
  EXPECT_FALSE(dp.has_class_hierarchy);
  EXPECT_EQ(dp.subject_count, 200u);
  EXPECT_EQ(dp.triple_count, 200u * 7);
  EXPECT_GE(dp.entity_link_count, 200u);
}

TEST(ProfilerTest, NumericMomentsAndDistinct) {
  rdf::TripleStore store = MakeProfileStore();
  auto dp = test::Unwrap(ProfileDataset(store));
  const PropertyProfile* age = dp.FindProperty("http://x/age");
  ASSERT_NE(age, nullptr);
  EXPECT_EQ(age->count, 200u);
  EXPECT_NEAR(age->distinct_estimate, 50.0, 5.0);
  EXPECT_GE(age->moments.min(), 20.0);
  EXPECT_LE(age->moments.max(), 69.0);
}

TEST(ProfilerTest, TopValuesForCategorical) {
  rdf::TripleStore store = MakeProfileStore();
  auto dp = test::Unwrap(ProfileDataset(store));
  const PropertyProfile* team = dp.FindProperty("http://x/team");
  ASSERT_NE(team, nullptr);
  ASSERT_EQ(team->top_values.size(), 2u);
  EXPECT_EQ(team->top_values[0].second, 100u);
}

TEST(ProfilerTest, GeoCoordinateFlag) {
  rdf::TripleStore store = MakeProfileStore();
  auto dp = test::Unwrap(ProfileDataset(store));
  EXPECT_TRUE(dp.FindProperty(rdf::vocab::kGeoLat)->is_geo_coordinate);
  EXPECT_FALSE(dp.FindProperty("http://x/age")->is_geo_coordinate);
}

}  // namespace
}  // namespace lodviz::stats
