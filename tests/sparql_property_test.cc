// Property test: the query engine's BGP evaluation (with selectivity
// ordering, indexes, and early termination) must agree with a brute-force
// reference evaluator on randomly generated stores and queries.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "common/random.h"
#include "rdf/triple_store.h"
#include "sparql/engine.h"
#include "sparql/fingerprint.h"
#include "sparql/parser.h"

namespace lodviz::sparql {
namespace {

using rdf::TermId;

/// Brute-force BGP evaluation: try every triple for every pattern,
/// backtracking over variable bindings. Exponential, only for tiny data.
void NaiveEval(const std::vector<rdf::Triple>& triples,
               const std::vector<TriplePatternAst>& patterns, size_t next,
               std::map<std::string, TermId>* binding,
               const rdf::Dictionary& dict,
               std::set<std::string>* results,
               const std::vector<std::string>& projection) {
  if (next == patterns.size()) {
    std::string row;
    for (const std::string& var : projection) {
      auto it = binding->find(var);
      row += (it == binding->end() ? "~" : std::to_string(it->second));
      row += "|";
    }
    results->insert(std::move(row));
    return;
  }
  const TriplePatternAst& pat = patterns[next];
  for (const rdf::Triple& t : triples) {
    std::vector<std::pair<std::string, bool>> bound_here;
    auto match = [&](const NodeOrVar& n, TermId value) {
      if (!IsVar(n)) {
        return dict.Lookup(AsTerm(n)) == value;
      }
      const std::string& name = AsVar(n).name;
      auto it = binding->find(name);
      if (it != binding->end()) return it->second == value;
      binding->emplace(name, value);
      bound_here.emplace_back(name, true);
      return true;
    };
    bool ok = match(pat.s, t.s) && match(pat.p, t.p) && match(pat.o, t.o);
    if (ok) {
      NaiveEval(triples, patterns, next + 1, binding, dict, results,
                projection);
    }
    for (const auto& [name, added] : bound_here) binding->erase(name);
  }
}

class BgpAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BgpAgreement, EngineMatchesBruteForce) {
  Rng rng(GetParam());

  // Small random store over a tiny vocabulary (forces shared variables to
  // actually join).
  rdf::TripleStore store;
  std::vector<rdf::Triple> all;
  const int kSubjects = 6, kPredicates = 3, kObjects = 6;
  std::vector<TermId> subjects, predicates, objects;
  for (int i = 0; i < kSubjects; ++i) {
    subjects.push_back(
        store.dict().InternIri("http://t/s" + std::to_string(i)));
  }
  for (int i = 0; i < kPredicates; ++i) {
    predicates.push_back(
        store.dict().InternIri("http://t/p" + std::to_string(i)));
  }
  for (int i = 0; i < kObjects; ++i) {
    objects.push_back(
        store.dict().InternIri("http://t/o" + std::to_string(i)));
  }
  for (int i = 0; i < 40; ++i) {
    rdf::Triple t(subjects[rng.Uniform(kSubjects)],
                  predicates[rng.Uniform(kPredicates)],
                  objects[rng.Uniform(kObjects)]);
    store.AddEncoded(t);
  }
  store.Compact();
  store.Scan(rdf::TriplePattern(), [&](const rdf::Triple& t) {
    all.push_back(t);
    return true;
  });

  QueryEngine engine(&store);
  const rdf::Dictionary& dict = store.dict();

  // 20 random BGP queries of 1-3 patterns over variables ?a ?b ?c ?d and
  // random constants.
  const char* var_names[] = {"a", "b", "c", "d"};
  for (int q = 0; q < 20; ++q) {
    size_t num_patterns = 1 + rng.Uniform(3);
    std::vector<TriplePatternAst> patterns;
    std::set<std::string> vars_used;
    for (size_t p = 0; p < num_patterns; ++p) {
      auto pick_node = [&](const std::vector<TermId>& pool) -> NodeOrVar {
        if (rng.Bernoulli(0.6)) {
          std::string v = var_names[rng.Uniform(4)];
          vars_used.insert(v);
          return Var{v};
        }
        return dict.term(pool[rng.Uniform(pool.size())]);
      };
      TriplePatternAst pat{pick_node(subjects), pick_node(predicates),
                           pick_node(objects)};
      patterns.push_back(std::move(pat));
    }
    std::vector<std::string> projection(vars_used.begin(), vars_used.end());

    // Engine answer.
    Query query;
    query.form = QueryForm::kSelect;
    query.select_vars = projection;
    for (auto& p : patterns) query.where.triples.push_back(p);
    auto engine_result = engine.Execute(query);
    ASSERT_TRUE(engine_result.ok()) << engine_result.status().ToString();

    std::set<std::string> engine_rows;
    for (const auto& row : engine_result->rows()) {
      std::string key;
      for (size_t c = 0; c < row.size(); ++c) {
        key += row[c].bound
                   ? std::to_string(dict.Lookup(row[c].term))
                   : "~";
        key += "|";
      }
      engine_rows.insert(std::move(key));
    }

    // Reference answer.
    std::set<std::string> naive_rows;
    std::map<std::string, TermId> binding;
    NaiveEval(all, patterns, 0, &binding, dict, &naive_rows, projection);

    EXPECT_EQ(engine_rows, naive_rows)
        << "seed " << GetParam() << " query " << q << " with "
        << num_patterns << " patterns disagrees";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BgpAgreement,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Fingerprint properties: the fingerprint is invariant under everything
// the parser erases (whitespace, comments, prefix spelling), consistent
// variable renaming, and literal re-spelling — and sensitive to every
// structural change.
// ---------------------------------------------------------------------------

uint64_t Fp(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << "\n" << q.status().ToString();
  return q.ok() ? QueryFingerprint(q.ValueOrDie()) : 0;
}

TEST(FingerprintProperty, WhitespaceAndPrefixSpellingInvariant) {
  const uint64_t want =
      Fp("SELECT ?s WHERE { ?s <http://x/p> ?o . FILTER(?o > 30) }");
  EXPECT_EQ(want, Fp("SELECT   ?s\nWHERE {\n  ?s <http://x/p> ?o .\n"
                     "  FILTER( ?o > 30 )\n}"));
  EXPECT_EQ(want,
            Fp("PREFIX ex: <http://x/> "
               "SELECT ?s WHERE { ?s ex:p ?o . FILTER(?o > 30) }"));
  EXPECT_EQ(want,
            Fp("PREFIX zz: <http://x/> "
               "SELECT ?s WHERE { ?s zz:p ?o . FILTER(?o > 30) }"));
}

TEST(FingerprintProperty, ConsistentVariableRenamingInvariant) {
  EXPECT_EQ(Fp("SELECT ?a ?c WHERE { ?a <http://x/p> ?b . "
               "?b <http://x/p> ?c . }"),
            Fp("SELECT ?x ?z WHERE { ?x <http://x/p> ?y . "
               "?y <http://x/p> ?z . }"));
  // Swapping two variables' roles is NOT a consistent renaming.
  EXPECT_NE(Fp("SELECT ?a WHERE { ?a <http://x/p> ?b . }"),
            Fp("SELECT ?b WHERE { ?a <http://x/p> ?b . }"));
}

TEST(FingerprintProperty, LiteralSpellingInvariant) {
  const char* tmpl = "SELECT ?s WHERE { ?s <http://x/age> %s . }";
  char buf[160];
  std::snprintf(buf, sizeof(buf), tmpl, "30");
  const uint64_t want = Fp(buf);
  std::snprintf(buf, sizeof(buf), tmpl,
                "\"30\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(want, Fp(buf));
  std::snprintf(buf, sizeof(buf), tmpl,
                "\"+30\"^^<http://www.w3.org/2001/XMLSchema#integer>");
  EXPECT_EQ(want, Fp(buf));
  std::snprintf(buf, sizeof(buf), tmpl,
                "\"30.0\"^^<http://www.w3.org/2001/XMLSchema#double>");
  EXPECT_EQ(want, Fp(buf));
  // A different value is a different query.
  std::snprintf(buf, sizeof(buf), tmpl, "31");
  EXPECT_NE(want, Fp(buf));
}

TEST(FingerprintProperty, StructuralChangesChangeTheFingerprint) {
  const std::string base = "SELECT ?s WHERE { ?s <http://x/p> ?o . }";
  const uint64_t want = Fp(base);
  EXPECT_NE(want, Fp("SELECT DISTINCT ?s WHERE { ?s <http://x/p> ?o . }"));
  EXPECT_NE(want, Fp("SELECT ?s WHERE { ?s <http://x/q> ?o . }"));
  EXPECT_NE(want, Fp("SELECT ?s ?o WHERE { ?s <http://x/p> ?o . }"));
  EXPECT_NE(want, Fp("SELECT ?s WHERE { ?s <http://x/p> ?o . } LIMIT 5"));
  EXPECT_NE(want, Fp("SELECT ?s WHERE { ?s <http://x/p> ?o . } ORDER BY ?s"));
  EXPECT_NE(want, Fp("ASK { ?s <http://x/p> ?o . }"));
  EXPECT_NE(want,
            Fp("SELECT ?s WHERE { ?s <http://x/p> ?o . FILTER(?o > 1) }"));
  EXPECT_NE(want, Fp("SELECT ?s WHERE { ?s <http://x/p> ?o . "
                     "OPTIONAL { ?s <http://x/q> ?r . } }"));
  // Pattern order keys plans, so it is deliberately part of the identity.
  EXPECT_NE(Fp("SELECT ?a WHERE { ?a <http://x/p> ?b . ?b <http://x/q> ?c . }"),
            Fp("SELECT ?a WHERE { ?b <http://x/q> ?c . ?a <http://x/p> ?b . }"));
}

TEST(FingerprintProperty, RandomQueriesStableAcrossReparseAndRename) {
  // Generate random BGP queries; each must fingerprint identically after
  // (a) re-parsing the same text and (b) renaming every variable
  // consistently — and distinct structures should essentially never
  // collide (64-bit hash over ≤ a few hundred queries).
  Rng rng(99);
  const char* var_names[] = {"a", "b", "c", "d"};
  const char* renamed[] = {"long_one", "v2", "x", "qqq"};
  std::map<uint64_t, std::string> seen;
  int collisions = 0;
  for (int iter = 0; iter < 200; ++iter) {
    size_t num_patterns = 1 + rng.Uniform(3);
    std::string body;
    std::string body_renamed;
    std::string body_canonical;  // vars renumbered in first-appearance order
    std::map<size_t, size_t> canon_ids;
    for (size_t p = 0; p < num_patterns; ++p) {
      auto node = [&](int pool, std::string* plain, std::string* ren,
                      std::string* canon) {
        if (rng.Bernoulli(0.6)) {
          size_t v = rng.Uniform(4);
          *plain += "?" + std::string(var_names[v]) + " ";
          *ren += "?" + std::string(renamed[v]) + " ";
          auto [it, ignored] = canon_ids.emplace(v, canon_ids.size());
          *canon += "?v" + std::to_string(it->second) + " ";
        } else {
          std::string iri = "<http://t/c" +
                            std::to_string(rng.Uniform(pool)) + "> ";
          *plain += iri;
          *ren += iri;
          *canon += iri;
        }
      };
      node(6, &body, &body_renamed, &body_canonical);
      node(3, &body, &body_renamed, &body_canonical);
      node(6, &body, &body_renamed, &body_canonical);
      body += ". ";
      body_renamed += ". ";
      body_canonical += ". ";
    }
    const std::string text = "SELECT * WHERE { " + body + "}";
    const std::string text_renamed =
        "SELECT * WHERE { " + body_renamed + "}";
    const uint64_t fp = Fp(text);
    EXPECT_EQ(fp, Fp(text)) << text;  // reparse stability
    EXPECT_EQ(fp, Fp(text_renamed)) << text << " vs " << text_renamed;
    // Collision detection must compare canonical forms: two generated
    // texts that are consistent renamings of each other are the SAME
    // query and share a fingerprint by design.
    auto [it, inserted] = seen.emplace(fp, body_canonical);
    if (!inserted && it->second != body_canonical) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

}  // namespace
}  // namespace lodviz::sparql
