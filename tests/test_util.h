#ifndef LODVIZ_TESTS_TEST_UTIL_H_
#define LODVIZ_TESTS_TEST_UTIL_H_

#include <utility>

#include "common/check.h"
#include "common/result.h"

namespace lodviz::test {

/// Unwraps a Result<T>, aborting with the carried error message (file:line
/// of the check) when it is an error. The test-suite idiom for "this must
/// succeed"; satisfies lodviz_lint's unchecked-result rule because the
/// access is preceded by LODVIZ_CHECK_OK.
///
///   BTree tree = test::Unwrap(BTree::Create(&pool));
template <typename T>
T Unwrap(Result<T> r) {
  LODVIZ_CHECK_OK(r);
  return std::move(r).ValueOrDie();
}

}  // namespace lodviz::test

#endif  // LODVIZ_TESTS_TEST_UTIL_H_
