#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/graph.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "stats/profile.h"
#include "workload/scenario.h"
#include "workload/synthetic_lod.h"
#include "test_util.h"

namespace lodviz::workload {
namespace {

TEST(SyntheticLodTest, GeneratesExpectedShape) {
  rdf::TripleStore store;
  SyntheticLodOptions opts;
  opts.num_entities = 500;
  size_t n = GenerateSyntheticLod(opts, &store);
  EXPECT_EQ(n, store.size());
  // Each entity gets type + label + age + created + lat + long + category
  // + ~3 knows links.
  EXPECT_GT(n, 500u * 7);
  EXPECT_LT(n, 500u * 13);

  auto profile = test::Unwrap(stats::ProfileDataset(store));
  EXPECT_TRUE(profile.has_spatial);
  EXPECT_EQ(profile.FindProperty(lod::kAge)->kind,
            stats::ValueKind::kNumeric);
  EXPECT_EQ(profile.FindProperty(lod::kCreated)->kind,
            stats::ValueKind::kTemporal);
  EXPECT_EQ(profile.FindProperty(lod::kKnows)->kind,
            stats::ValueKind::kEntity);
  EXPECT_EQ(profile.subject_count, 500u);
}

TEST(SyntheticLodTest, DeterministicAcrossRuns) {
  SyntheticLodOptions opts;
  opts.num_entities = 100;
  opts.seed = 7;
  auto a = GenerateSyntheticLodTriples(opts);
  auto b = GenerateSyntheticLodTriples(opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].subject, b[i].subject);
    EXPECT_EQ(a[i].object, b[i].object);
  }
  opts.seed = 8;
  auto c = GenerateSyntheticLodTriples(opts);
  bool identical = a.size() == c.size();
  if (identical) {
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i].object == c[i].object)) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST(SyntheticLodTest, LinkGraphIsHeavyTailed) {
  rdf::TripleStore store;
  SyntheticLodOptions opts;
  opts.num_entities = 2000;
  opts.links_per_entity = 3.0;
  GenerateSyntheticLod(opts, &store);
  graph::Graph g = graph::Graph::FromTripleStore(store);
  EXPECT_GT(static_cast<double>(g.MaxDegree()), 4.0 * g.AverageDegree());
}

TEST(SyntheticLodTest, CategoriesAreZipfSkewed) {
  rdf::TripleStore store;
  SyntheticLodOptions opts;
  opts.num_entities = 3000;
  opts.category_zipf_alpha = 1.1;
  GenerateSyntheticLod(opts, &store);
  rdf::TermId cat = store.dict().Lookup(rdf::Term::Iri(lod::kCategory));
  ASSERT_NE(cat, rdf::kInvalidTermId);
  std::unordered_map<rdf::TermId, uint64_t> counts;
  store.Scan({rdf::kInvalidTermId, cat, rdf::kInvalidTermId},
             [&](const rdf::Triple& t) {
               ++counts[t.o];
               return true;
             });
  std::vector<uint64_t> sorted;
  for (const auto& [v, c] : counts) sorted.push_back(c);
  std::sort(sorted.rbegin(), sorted.rend());
  ASSERT_GE(sorted.size(), 3u);
  EXPECT_GT(sorted[0], 3 * sorted.back());
}

TEST(SyntheticLodTest, TogglesDisableProperties) {
  rdf::TripleStore store;
  SyntheticLodOptions opts;
  opts.num_entities = 50;
  opts.with_geo = false;
  opts.with_dates = false;
  GenerateSyntheticLod(opts, &store);
  EXPECT_EQ(store.dict().Lookup(rdf::Term::Iri(rdf::vocab::kGeoLat)),
            rdf::kInvalidTermId);
  EXPECT_EQ(store.dict().Lookup(rdf::Term::Iri(lod::kCreated)),
            rdf::kInvalidTermId);
}

TEST(ScenarioTest, RangeScenarioStaysInDomainAndZoomsIn) {
  auto queries = ExplorationRangeScenario(0.0, 1000.0, 200, 3);
  ASSERT_EQ(queries.size(), 200u);
  double first_width_sum = 0, last_width_sum = 0;
  for (size_t i = 0; i < 20; ++i) {
    first_width_sum += queries[i].hi - queries[i].lo;
    last_width_sum += queries[180 + i].hi - queries[180 + i].lo;
  }
  for (const auto& q : queries) {
    EXPECT_GE(q.lo, 0.0);
    EXPECT_LE(q.hi, 1000.0);
    EXPECT_LT(q.lo, q.hi);
  }
  // Sessions trend toward narrower (zoomed-in) queries.
  EXPECT_LT(last_width_sum, first_width_sum);
}

TEST(ScenarioTest, TileScenarioIsValidAndHasLocality) {
  auto requests = PanZoomTileScenario(8, 500, 5);
  ASSERT_EQ(requests.size(), 500u);
  size_t adjacent = 0;
  for (size_t i = 1; i < requests.size(); ++i) {
    const auto& a = requests[i - 1];
    const auto& b = requests[i];
    uint32_t n = 1u << b.zoom;
    EXPECT_LT(b.x, n);
    EXPECT_LT(b.y, n);
    if (a.zoom == b.zoom) {
      int dx = std::abs(static_cast<int>(a.x) - static_cast<int>(b.x));
      int dy = std::abs(static_cast<int>(a.y) - static_cast<int>(b.y));
      if (dx <= 1 && dy <= 1) ++adjacent;
    }
  }
  // Most moves are single-tile pans (locality for the prefetcher).
  EXPECT_GT(adjacent, requests.size() / 2);
}

TEST(ScenarioTest, RandomWalkSeriesShape) {
  auto series = RandomWalkSeries(1000, 9);
  ASSERT_EQ(series.size(), 1000u);
  for (size_t i = 0; i < series.size(); ++i) {
    EXPECT_DOUBLE_EQ(series[i].t, static_cast<double>(i));
  }
  // A random walk wanders: end differs from start (w.h.p.).
  EXPECT_NE(series.front().v, series.back().v);
}

}  // namespace
}  // namespace lodviz::workload
