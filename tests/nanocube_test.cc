#include <gtest/gtest.h>

#include "common/random.h"
#include "geo/nanocube.h"

namespace lodviz::geo {
namespace {

std::vector<StEvent> RandomEvents(size_t n, uint64_t seed,
                                  uint16_t categories) {
  Rng rng(seed);
  std::vector<StEvent> events(n);
  for (size_t i = 0; i < n; ++i) {
    events[i].position = {rng.UniformDouble(), rng.UniformDouble()};
    events[i].time = rng.UniformDouble();
    events[i].category = static_cast<uint16_t>(rng.Uniform(categories));
  }
  return events;
}

/// Exact count over raw events for a tile-aligned window.
uint64_t Naive(const std::vector<StEvent>& events, const TileScheme& scheme,
               uint8_t zoom, const Rect& window, double t_lo, double t_hi,
               std::optional<uint16_t> cat) {
  // Expand the window to whole tiles (the cube's semantics).
  auto tiles = scheme.TilesInRect(zoom, window);
  uint64_t total = 0;
  for (const StEvent& e : events) {
    if (e.time < t_lo || e.time >= t_hi) continue;
    if (cat.has_value() && e.category != *cat) continue;
    TileKey mine = scheme.TileForPoint(zoom, e.position);
    for (const TileKey& t : tiles) {
      if (t == mine) {
        ++total;
        break;
      }
    }
  }
  return total;
}

SpatioTemporalCube::Options SmallOptions() {
  SpatioTemporalCube::Options opts;
  opts.max_zoom = 5;
  opts.time_bins = 64;
  opts.num_categories = 3;
  return opts;
}

TEST(NanocubeTest, TotalAndFullDomain) {
  auto events = RandomEvents(5000, 3, 3);
  auto cube = SpatioTemporalCube::Build(events, SmallOptions());
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->total_events(), 5000u);
  EXPECT_EQ(cube->Count(0, {0, 0, 1, 1}, 0.0, 1.0), 5000u);
  // Categories partition the total.
  uint64_t by_cat = 0;
  for (uint16_t c = 0; c < 3; ++c) {
    by_cat += cube->Count(0, {0, 0, 1, 1}, 0.0, 1.0, c);
  }
  EXPECT_EQ(by_cat, 5000u);
}

class NanocubeAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NanocubeAgreement, MatchesNaiveOnRandomQueries) {
  auto opts = SmallOptions();
  auto events = RandomEvents(3000, GetParam(), 3);
  auto cube = SpatioTemporalCube::Build(events, opts);
  ASSERT_TRUE(cube.ok());
  TileScheme scheme(opts.domain);

  Rng rng(100 + GetParam());
  for (int q = 0; q < 30; ++q) {
    uint8_t zoom = static_cast<uint8_t>(rng.Uniform(opts.max_zoom + 1));
    double x = rng.UniformDouble(0, 0.8), y = rng.UniformDouble(0, 0.8);
    Rect window{x, y, x + rng.UniformDouble(0.05, 0.2),
                y + rng.UniformDouble(0.05, 0.2)};
    double t_lo = rng.UniformDouble(0, 0.7);
    double t_hi = t_lo + rng.UniformDouble(0.05, 0.3);
    // Snap times to bin edges so exclusive-bound semantics line up.
    t_lo = std::floor(t_lo * opts.time_bins) / opts.time_bins;
    t_hi = std::ceil(t_hi * opts.time_bins) / opts.time_bins;
    std::optional<uint16_t> cat;
    if (rng.Bernoulli(0.5)) cat = static_cast<uint16_t>(rng.Uniform(3));

    EXPECT_EQ(cube->Count(zoom, window, t_lo, t_hi, cat),
              Naive(events, scheme, zoom, window, t_lo, t_hi, cat))
        << "zoom " << int(zoom) << " q " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NanocubeAgreement, ::testing::Range<uint64_t>(1, 6));

TEST(NanocubeTest, TimeSeriesSumsToCount) {
  auto opts = SmallOptions();
  auto events = RandomEvents(4000, 9, 3);
  auto cube = SpatioTemporalCube::Build(events, opts);
  ASSERT_TRUE(cube.ok());
  Rect window{0.2, 0.2, 0.6, 0.6};
  auto series = cube->TimeSeries(3, window);
  ASSERT_EQ(series.size(), opts.time_bins);
  uint64_t sum = 0;
  for (uint64_t v : series) sum += v;
  EXPECT_EQ(sum, cube->Count(3, window, 0.0, 1.0));
}

TEST(NanocubeTest, ZoomLevelsAgree) {
  // A tile-aligned window counts identically at every zoom.
  auto opts = SmallOptions();
  auto events = RandomEvents(3000, 11, 3);
  auto cube = SpatioTemporalCube::Build(events, opts);
  ASSERT_TRUE(cube.ok());
  Rect quadrant{0.0, 0.0, 0.4999, 0.4999};  // strictly inside tiles
  uint64_t at1 = cube->Count(1, quadrant, 0.0, 1.0);
  uint64_t at3 = cube->Count(3, quadrant, 0.0, 1.0);
  uint64_t at5 = cube->Count(5, quadrant, 0.0, 1.0);
  EXPECT_EQ(at1, at3);
  EXPECT_EQ(at3, at5);
}

TEST(NanocubeTest, ErrorsAndEdges) {
  auto opts = SmallOptions();
  EXPECT_FALSE(SpatioTemporalCube::Build(
                   {{{0.5, 0.5}, 0.5, 99}}, opts)  // bad category
                   .ok());
  opts.num_categories = 0;
  EXPECT_FALSE(SpatioTemporalCube::Build({}, opts).ok());
  opts = SmallOptions();
  opts.t1 = opts.t0;
  EXPECT_FALSE(SpatioTemporalCube::Build({}, opts).ok());

  auto cube = SpatioTemporalCube::Build({}, SmallOptions());
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->Count(0, {0, 0, 1, 1}, 0.0, 1.0), 0u);
  // Inverted time range.
  EXPECT_EQ(cube->Count(0, {0, 0, 1, 1}, 0.8, 0.2), 0u);
  // Zoom beyond the pyramid.
  EXPECT_EQ(cube->Count(30, {0, 0, 1, 1}, 0.0, 1.0), 0u);
}

TEST(NanocubeTest, OutOfDomainEventsClampToEdges) {
  auto opts = SmallOptions();
  std::vector<StEvent> events = {
      {{-5.0, 0.5}, -2.0, 0},  // clamps to left edge, first bin
      {{5.0, 0.5}, 2.0, 0},    // clamps to right edge, last bin
  };
  auto cube = SpatioTemporalCube::Build(events, opts);
  ASSERT_TRUE(cube.ok());
  EXPECT_EQ(cube->Count(0, {0, 0, 1, 1}, 0.0, 1.0), 2u);
}

TEST(NanocubeTest, MemoryIsSparse) {
  // Clustered events touch few tiles: memory far below the dense bound.
  Rng rng(13);
  std::vector<StEvent> events(20000);
  for (auto& e : events) {
    e.position = {0.5 + rng.Normal(0, 0.01), 0.5 + rng.Normal(0, 0.01)};
    e.time = rng.UniformDouble();
    e.category = 0;
  }
  auto opts = SmallOptions();
  opts.max_zoom = 8;
  auto cube = SpatioTemporalCube::Build(events, opts);
  ASSERT_TRUE(cube.ok());
  size_t dense_bound = (1u << 16) * 3 * 64 * 8;  // zoom-8 dense grid
  EXPECT_LT(cube->MemoryUsage(), dense_bound / 10);
}

}  // namespace
}  // namespace lodviz::geo
