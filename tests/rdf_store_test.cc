#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>

#include "common/random.h"
#include "rdf/ntriples.h"
#include "rdf/streaming.h"
#include "rdf/triple_store.h"
#include "rdf/vocab.h"
#include "test_util.h"

namespace lodviz::rdf {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary dict;
  TermId a = dict.Intern(Term::Iri("http://x/a"));
  TermId b = dict.Intern(Term::Iri("http://x/b"));
  EXPECT_NE(a, b);
  EXPECT_EQ(dict.Intern(Term::Iri("http://x/a")), a);
  EXPECT_EQ(dict.size(), 2u);
}

TEST(DictionaryTest, DistinguishesKindsAndTags) {
  Dictionary dict;
  TermId iri = dict.Intern(Term::Iri("v"));
  TermId lit = dict.Intern(Term::Literal("v"));
  TermId typed = dict.Intern(Term::Literal("v", vocab::kXsdString));
  TermId lang = dict.Intern(Term::LangLiteral("v", "en"));
  TermId blank = dict.Intern(Term::Blank("v"));
  std::set<TermId> ids = {iri, lit, typed, lang, blank};
  EXPECT_EQ(ids.size(), 5u);
}

TEST(DictionaryTest, RoundTrip) {
  Dictionary dict;
  Term t = Term::LangLiteral("caf\xC3\xA9", "fr");
  TermId id = dict.Intern(t);
  EXPECT_EQ(test::Unwrap(dict.GetTerm(id)), t);
  EXPECT_EQ(dict.Lookup(t), id);
}

TEST(DictionaryTest, InvalidLookups) {
  Dictionary dict;
  EXPECT_EQ(dict.Lookup(Term::Iri("nope")), kInvalidTermId);
  EXPECT_FALSE(dict.GetTerm(kInvalidTermId).ok());
  EXPECT_FALSE(dict.GetTerm(999).ok());
}

class TripleStoreFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    alice_ = store_.dict().InternIri("http://x/alice");
    bob_ = store_.dict().InternIri("http://x/bob");
    carol_ = store_.dict().InternIri("http://x/carol");
    knows_ = store_.dict().InternIri("http://x/knows");
    age_ = store_.dict().InternIri("http://x/age");
    v30_ = store_.dict().InternLiteral("30", vocab::kXsdInteger);
    v40_ = store_.dict().InternLiteral("40", vocab::kXsdInteger);
    store_.AddEncoded({alice_, knows_, bob_});
    store_.AddEncoded({bob_, knows_, carol_});
    store_.AddEncoded({alice_, age_, v30_});
    store_.AddEncoded({bob_, age_, v40_});
  }

  TripleStore store_;
  TermId alice_, bob_, carol_, knows_, age_, v30_, v40_;
};

TEST_F(TripleStoreFixture, MatchBySubject) {
  auto r = store_.Match({alice_, kInvalidTermId, kInvalidTermId});
  EXPECT_EQ(r.size(), 2u);
}

TEST_F(TripleStoreFixture, MatchByPredicate) {
  EXPECT_EQ(store_.Count({kInvalidTermId, knows_, kInvalidTermId}), 2u);
  EXPECT_EQ(store_.Count({kInvalidTermId, age_, kInvalidTermId}), 2u);
}

TEST_F(TripleStoreFixture, MatchByObject) {
  auto r = store_.Match({kInvalidTermId, kInvalidTermId, bob_});
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].s, alice_);
}

TEST_F(TripleStoreFixture, MatchFullyBound) {
  EXPECT_EQ(store_.Count({alice_, knows_, bob_}), 1u);
  EXPECT_EQ(store_.Count({alice_, knows_, carol_}), 0u);
}

TEST_F(TripleStoreFixture, ScanEarlyStop) {
  int seen = 0;
  store_.Scan(TriplePattern(), [&](const Triple&) {
    ++seen;
    return seen < 2;
  });
  EXPECT_EQ(seen, 2);
}

TEST_F(TripleStoreFixture, VisibleBeforeCompaction) {
  // Small store: nothing has hit the compaction threshold, yet everything
  // must be query-visible (dynamic setting).
  EXPECT_EQ(store_.Count(TriplePattern()), 4u);
  store_.Compact();
  EXPECT_EQ(store_.Count(TriplePattern()), 4u);
}

TEST_F(TripleStoreFixture, DuplicatesRemovedOnCompact) {
  store_.AddEncoded({alice_, knows_, bob_});
  store_.Compact();
  EXPECT_EQ(store_.Count({alice_, knows_, bob_}), 1u);
}

TEST_F(TripleStoreFixture, DistinctSubjectsAndObjects) {
  auto subjects = store_.DistinctSubjects();
  EXPECT_EQ(subjects.size(), 2u);  // alice, bob
  auto ages = store_.DistinctObjects(age_);
  EXPECT_EQ(ages.size(), 2u);
  auto known = store_.DistinctObjects(knows_);
  EXPECT_EQ(known.size(), 2u);  // bob, carol
}

TEST_F(TripleStoreFixture, PredicateCounts) {
  EXPECT_EQ(store_.predicate_counts().at(knows_), 2u);
  EXPECT_EQ(store_.predicate_counts().at(age_), 2u);
}

/// Property test: for random data and every pattern shape, the indexed scan
/// must agree with a naive filter over all triples.
class PatternAgreement : public ::testing::TestWithParam<int> {};

TEST_P(PatternAgreement, IndexedMatchesNaive) {
  Rng rng(GetParam());
  TripleStore store(/*compaction_threshold=*/64);  // force compactions
  std::vector<Triple> all;
  for (int i = 0; i < 500; ++i) {
    Triple t(static_cast<TermId>(1 + rng.Uniform(20)),
             static_cast<TermId>(1 + rng.Uniform(5)),
             static_cast<TermId>(1 + rng.Uniform(30)));
    store.AddEncoded(t);
    all.push_back(t);
  }
  // Dedup the oracle the same way the store does.
  std::sort(all.begin(), all.end(), OrderSpo());
  all.erase(std::unique(all.begin(), all.end()), all.end());

  for (int mask = 0; mask < 8; ++mask) {
    TriplePattern pat;
    if (mask & 1) pat.s = static_cast<TermId>(1 + rng.Uniform(20));
    if (mask & 2) pat.p = static_cast<TermId>(1 + rng.Uniform(5));
    if (mask & 4) pat.o = static_cast<TermId>(1 + rng.Uniform(30));
    store.Compact();
    uint64_t naive = static_cast<uint64_t>(
        std::count_if(all.begin(), all.end(),
                      [&](const Triple& t) { return pat.Matches(t); }));
    EXPECT_EQ(store.Count(pat), naive) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PatternAgreement, ::testing::Range(1, 6));

TEST(NTriplesTest, ParsesBasicLine) {
  auto r = ParseNTriplesLine("<http://x/s> <http://x/p> <http://x/o> .");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->subject.lexical, "http://x/s");
  EXPECT_EQ(r->object.lexical, "http://x/o");
}

TEST(NTriplesTest, ParsesLiteralsWithDatatypeAndLang) {
  auto r1 = ParseNTriplesLine(
      "<http://x/s> <http://x/p> \"42\"^^<http://www.w3.org/2001/XMLSchema#integer> .");
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(r1->object.datatype, vocab::kXsdInteger);

  auto r2 = ParseNTriplesLine("<http://x/s> <http://x/p> \"hi\"@en .");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->object.language, "en");
}

TEST(NTriplesTest, ParsesBlankNodes) {
  auto r = ParseNTriplesLine("_:b1 <http://x/p> _:b2 .");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->subject.is_blank());
  EXPECT_TRUE(r->object.is_blank());
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  EXPECT_EQ(ParseNTriplesLine("# comment").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ParseNTriplesLine("   ").status().code(), StatusCode::kNotFound);
}

TEST(NTriplesTest, RejectsMalformed) {
  EXPECT_FALSE(ParseNTriplesLine("<http://x/s> <http://x/p>").ok());
  EXPECT_FALSE(ParseNTriplesLine("\"lit\" <http://x/p> <http://x/o> .").ok());
  EXPECT_FALSE(ParseNTriplesLine("<http://x/s> _:b <http://x/o> .").ok());
  EXPECT_FALSE(
      ParseNTriplesLine("<http://x/s> <http://x/p> <http://x/o>").ok());
  EXPECT_FALSE(ParseNTriplesLine("<unterminated <p> <o> .").ok());
}

TEST(NTriplesTest, DocumentRoundTrip) {
  const char* doc =
      "# people\n"
      "<http://x/alice> <http://x/knows> <http://x/bob> .\n"
      "<http://x/alice> <http://x/name> \"Alice \\\"A\\\"\"@en .\n"
      "<http://x/bob> <http://x/age> \"40\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n";
  TripleStore store;
  auto n = LoadNTriplesString(doc, &store);
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(n.ValueOrDie(), 3u);

  std::ostringstream out;
  WriteNTriples(store, out);
  TripleStore store2;
  auto n2 = LoadNTriplesString(out.str(), &store2);
  ASSERT_TRUE(n2.ok());
  EXPECT_EQ(n2.ValueOrDie(), 3u);

  std::ostringstream out2;
  WriteNTriples(store2, out2);
  EXPECT_EQ(out.str(), out2.str());
}

TEST(NTriplesTest, StrictModeStopsOnBadLine) {
  const char* doc = "<http://x/a> <http://x/p> <http://x/b> .\nbad line\n";
  TripleStore strict_store;
  EXPECT_FALSE(LoadNTriplesString(doc, &strict_store, /*strict=*/true).ok());
  TripleStore lax_store;
  auto n = LoadNTriplesString(doc, &lax_store, /*strict=*/false);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.ValueOrDie(), 1u);
}

TEST(StreamingTest, VectorSourceDeliversAll) {
  std::vector<ParsedTriple> data;
  for (int i = 0; i < 10; ++i) {
    data.push_back({Term::Iri("http://x/s" + std::to_string(i)),
                    Term::Iri("http://x/p"), Term::IntLiteral(i)});
  }
  VectorStreamSource source(data);
  TripleStore store;
  size_t batches = 0;
  size_t total = IngestStream(&source, &store, 3,
                              [&](size_t) { ++batches; });
  EXPECT_EQ(total, 10u);
  EXPECT_EQ(batches, 4u);  // 3+3+3+1
  EXPECT_EQ(store.size(), 10u);
}

TEST(StreamingTest, GeneratorSourceStopsWhenDone) {
  int produced = 0;
  GeneratorStreamSource source([&](ParsedTriple* out) {
    if (produced >= 5) return false;
    out->subject = Term::Iri("http://x/s" + std::to_string(produced));
    out->predicate = Term::Iri("http://x/p");
    out->object = Term::IntLiteral(produced);
    ++produced;
    return true;
  });
  TripleStore store;
  EXPECT_EQ(IngestStream(&source, &store, 2), 5u);
  EXPECT_TRUE(source.Exhausted());
}

TEST(StreamingTest, EndpointSimulatorCountsRequests) {
  std::vector<ParsedTriple> data(25, {Term::Iri("http://x/s"),
                                      Term::Iri("http://x/p"),
                                      Term::Iri("http://x/o")});
  EndpointSimulator endpoint(data, /*page_size=*/10, /*per_request_ms=*/50);
  TripleStore store;
  IngestStream(&endpoint, &store, /*batch_size=*/100);
  EXPECT_EQ(endpoint.requests_made(), 3u);  // 10+10+5
  EXPECT_DOUBLE_EQ(endpoint.simulated_latency_ms(), 150.0);
}

}  // namespace
}  // namespace lodviz::rdf
