#include "cube/data_cube.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/table_printer.h"

namespace lodviz::cube {

namespace {

double ApplyAgg(Agg agg, const std::vector<double>& values) {
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  switch (agg) {
    case Agg::kCount:
      return static_cast<double>(values.size());
    case Agg::kSum:
    case Agg::kAvg: {
      double sum = 0;
      for (double v : values) sum += v;
      return agg == Agg::kSum ? sum : sum / static_cast<double>(values.size());
    }
    case Agg::kMin:
      return *std::min_element(values.begin(), values.end());
    case Agg::kMax:
      return *std::max_element(values.begin(), values.end());
  }
  return 0.0;
}

}  // namespace

Result<DataCube> DataCube::FromStore(
    const rdf::TripleStore& store,
    const std::vector<std::string>& dimension_predicates,
    const std::vector<std::string>& measure_predicates) {
  if (dimension_predicates.empty()) {
    return Status::InvalidArgument("cube needs at least one dimension");
  }
  if (measure_predicates.empty()) {
    return Status::InvalidArgument("cube needs at least one measure");
  }
  DataCube cube;
  cube.dict_ = &store.dict();
  cube.dimension_names_ = dimension_predicates;
  cube.measure_names_ = measure_predicates;

  std::vector<rdf::TermId> dim_ids, measure_ids;
  for (const std::string& p : dimension_predicates) {
    rdf::TermId id = store.dict().Lookup(rdf::Term::Iri(p));
    if (id == rdf::kInvalidTermId) {
      return Status::NotFound("dimension predicate absent: " + p);
    }
    dim_ids.push_back(id);
  }
  for (const std::string& p : measure_predicates) {
    rdf::TermId id = store.dict().Lookup(rdf::Term::Iri(p));
    if (id == rdf::kInvalidTermId) {
      return Status::NotFound("measure predicate absent: " + p);
    }
    measure_ids.push_back(id);
  }

  // Candidate observations: subjects of the first dimension predicate.
  std::vector<rdf::TermId> subjects;
  store.Scan({rdf::kInvalidTermId, dim_ids[0], rdf::kInvalidTermId},
             [&](const rdf::Triple& t) {
               subjects.push_back(t.s);
               return true;
             });
  std::sort(subjects.begin(), subjects.end());
  subjects.erase(std::unique(subjects.begin(), subjects.end()),
                 subjects.end());

  for (rdf::TermId s : subjects) {
    Observation obs;
    bool complete = true;
    for (rdf::TermId d : dim_ids) {
      auto matches = store.Match({s, d, rdf::kInvalidTermId});
      if (matches.empty()) {
        complete = false;
        break;
      }
      obs.dims.push_back(matches.front().o);
    }
    if (!complete) continue;
    for (rdf::TermId m : measure_ids) {
      auto matches = store.Match({s, m, rdf::kInvalidTermId});
      if (matches.empty()) {
        complete = false;
        break;
      }
      Result<double> v = store.dict().term(matches.front().o).AsDouble();
      if (!v.ok()) {
        complete = false;
        break;
      }
      obs.measures.push_back(v.ValueOrDie());
    }
    if (complete) cube.observations_.push_back(std::move(obs));
  }
  if (cube.observations_.empty()) {
    return Status::NotFound("no complete observations found");
  }
  return cube;
}

Result<DataCube> DataCube::FromObservations(
    std::vector<std::string> dimension_names,
    std::vector<std::string> measure_names,
    std::vector<Observation> observations, const rdf::Dictionary* dict) {
  for (const Observation& o : observations) {
    if (o.dims.size() != dimension_names.size() ||
        o.measures.size() != measure_names.size()) {
      return Status::InvalidArgument("observation arity mismatch");
    }
  }
  DataCube cube;
  cube.dimension_names_ = std::move(dimension_names);
  cube.measure_names_ = std::move(measure_names);
  cube.observations_ = std::move(observations);
  cube.dict_ = dict;
  return cube;
}

std::string DataCube::ValueLabel(rdf::TermId value) const {
  if (dict_ != nullptr && dict_->Contains(value)) {
    return dict_->term(value).lexical;
  }
  std::string label = "#";
  label += std::to_string(value);
  return label;
}

std::vector<rdf::TermId> DataCube::DimensionValues(size_t dim) const {
  std::vector<rdf::TermId> values;
  for (const Observation& o : observations_) values.push_back(o.dims[dim]);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  std::sort(values.begin(), values.end(),
            [this](rdf::TermId a, rdf::TermId b) {
              return ValueLabel(a) < ValueLabel(b);
            });
  return values;
}

DataCube DataCube::Slice(size_t dim, rdf::TermId value) const {
  DataCube out;
  out.dict_ = dict_;
  out.measure_names_ = measure_names_;
  for (size_t d = 0; d < dimension_names_.size(); ++d) {
    if (d != dim) out.dimension_names_.push_back(dimension_names_[d]);
  }
  for (const Observation& o : observations_) {
    if (o.dims[dim] != value) continue;
    Observation kept;
    for (size_t d = 0; d < o.dims.size(); ++d) {
      if (d != dim) kept.dims.push_back(o.dims[d]);
    }
    kept.measures = o.measures;
    out.observations_.push_back(std::move(kept));
  }
  return out;
}

DataCube DataCube::Dice(size_t dim, const std::set<rdf::TermId>& values) const {
  DataCube out;
  out.dict_ = dict_;
  out.dimension_names_ = dimension_names_;
  out.measure_names_ = measure_names_;
  for (const Observation& o : observations_) {
    if (values.count(o.dims[dim])) out.observations_.push_back(o);
  }
  return out;
}

std::vector<DataCube::RollupRow> DataCube::RollUp(
    const std::vector<size_t>& keep_dims, size_t measure, Agg agg) const {
  std::map<std::vector<rdf::TermId>, std::vector<double>> groups;
  for (const Observation& o : observations_) {
    std::vector<rdf::TermId> key;
    key.reserve(keep_dims.size());
    for (size_t d : keep_dims) key.push_back(o.dims[d]);
    groups[key].push_back(o.measures[measure]);
  }
  std::vector<RollupRow> rows;
  for (const auto& [key, values] : groups) {
    RollupRow row;
    row.group = key;
    row.value = ApplyAgg(agg, values);
    row.count = values.size();
    rows.push_back(std::move(row));
  }
  return rows;
}

DataCube::PivotTable DataCube::Pivot(size_t row_dim, size_t col_dim,
                                     size_t measure, Agg agg) const {
  PivotTable table;
  table.row_values = DimensionValues(row_dim);
  table.col_values = DimensionValues(col_dim);
  std::map<std::pair<rdf::TermId, rdf::TermId>, std::vector<double>> groups;
  for (const Observation& o : observations_) {
    groups[{o.dims[row_dim], o.dims[col_dim]}].push_back(o.measures[measure]);
  }
  table.cells.assign(table.row_values.size(),
                     std::vector<double>(table.col_values.size(),
                                         std::numeric_limits<double>::quiet_NaN()));
  for (size_t r = 0; r < table.row_values.size(); ++r) {
    for (size_t c = 0; c < table.col_values.size(); ++c) {
      auto it = groups.find({table.row_values[r], table.col_values[c]});
      if (it != groups.end()) table.cells[r][c] = ApplyAgg(agg, it->second);
    }
  }
  return table;
}

std::string DataCube::PivotToString(const PivotTable& table) const {
  std::vector<std::string> header = {""};
  for (rdf::TermId c : table.col_values) header.push_back(ValueLabel(c));
  TablePrinter tp(header);
  for (size_t r = 0; r < table.row_values.size(); ++r) {
    std::vector<std::string> row = {ValueLabel(table.row_values[r])};
    for (double v : table.cells[r]) {
      if (std::isnan(v)) {
        row.push_back("-");
      } else {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", v);
        row.push_back(buf);
      }
    }
    tp.AddRow(std::move(row));
  }
  return tp.ToString();
}

}  // namespace lodviz::cube
