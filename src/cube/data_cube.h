#ifndef LODVIZ_CUBE_DATA_CUBE_H_
#define LODVIZ_CUBE_DATA_CUBE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "rdf/triple_store.h"

namespace lodviz::cube {

/// Aggregation functions for roll-up / pivot.
enum class Agg { kSum, kAvg, kCount, kMin, kMax };

/// A multidimensional statistical dataset in the W3C Data Cube (qb:)
/// sense: observations with categorical dimensions and numeric measures.
/// This is the substrate of the statistical-WoD tools in Section 3.3
/// (CubeViz, OpenCube, LDCE): faceted cube browsing, 2-D pivot tables,
/// and OLAP slice/dice/roll-up.
class DataCube {
 public:
  struct Observation {
    /// One term id per dimension (aligned with dimension_names()).
    std::vector<rdf::TermId> dims;
    /// One value per measure (aligned with measure_names()).
    std::vector<double> measures;
  };

  /// Extracts a cube from RDF: subjects typed qb:Observation (or all
  /// subjects having every dimension+measure predicate), dimension values
  /// are the objects of `dimension_predicates`, measure values the numeric
  /// objects of `measure_predicates`. Observations missing any component
  /// are skipped.
  static Result<DataCube> FromStore(
      const rdf::TripleStore& store,
      const std::vector<std::string>& dimension_predicates,
      const std::vector<std::string>& measure_predicates);

  /// Builds directly from rows (tests / generators).
  static Result<DataCube> FromObservations(
      std::vector<std::string> dimension_names,
      std::vector<std::string> measure_names,
      std::vector<Observation> observations,
      const rdf::Dictionary* dict);

  const std::vector<std::string>& dimension_names() const {
    return dimension_names_;
  }
  const std::vector<std::string>& measure_names() const {
    return measure_names_;
  }
  const std::vector<Observation>& observations() const {
    return observations_;
  }
  size_t size() const { return observations_.size(); }

  /// Distinct values of one dimension (sorted by label).
  std::vector<rdf::TermId> DimensionValues(size_t dim) const;

  /// Human-readable label of a dimension value.
  std::string ValueLabel(rdf::TermId value) const;

  /// OLAP slice: fix dimension `dim` to `value`; the dimension is removed.
  DataCube Slice(size_t dim, rdf::TermId value) const;

  /// OLAP dice: keep observations whose `dim` value is in `values`
  /// (dimension retained).
  DataCube Dice(size_t dim, const std::set<rdf::TermId>& values) const;

  /// OLAP roll-up: aggregate `measure` grouped by the kept dimensions.
  /// Returns (group key terms, aggregated value) rows.
  struct RollupRow {
    std::vector<rdf::TermId> group;
    double value = 0.0;
    uint64_t count = 0;
  };
  std::vector<RollupRow> RollUp(const std::vector<size_t>& keep_dims,
                                size_t measure, Agg agg) const;

  /// 2-D pivot table over two dimensions (the OpenCube Browser view).
  struct PivotTable {
    std::vector<rdf::TermId> row_values;
    std::vector<rdf::TermId> col_values;
    /// cells[r][c]; NaN when the combination has no observations.
    std::vector<std::vector<double>> cells;
  };
  PivotTable Pivot(size_t row_dim, size_t col_dim, size_t measure,
                   Agg agg) const;

  /// Renders a pivot table as aligned ASCII.
  std::string PivotToString(const PivotTable& table) const;

 private:
  DataCube() = default;

  std::vector<std::string> dimension_names_;
  std::vector<std::string> measure_names_;
  std::vector<Observation> observations_;
  const rdf::Dictionary* dict_ = nullptr;  // not owned; labels only
};

}  // namespace lodviz::cube

#endif  // LODVIZ_CUBE_DATA_CUBE_H_
