#ifndef LODVIZ_SPARQL_EXECUTOR_H_
#define LODVIZ_SPARQL_EXECUTOR_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "rdf/dictionary.h"
#include "rdf/triple_source.h"
#include "sparql/column_batch.h"
#include "sparql/planner.h"
#include "sparql/row_append.h"

namespace lodviz::sparql {

/// Registry handles for the sparql hot counters, looked up once. Shared by
/// the executor (per-operator counters) and the engine facade (query and
/// latency counters).
struct SparqlMetrics {
  obs::Counter& queries;
  obs::Counter& intermediate_rows;
  obs::Counter& rows_out;
  obs::Counter& op_join_rows;
  obs::Counter& op_filter_dropped;
  obs::Counter& op_filter_errors;
  obs::Counter& op_optional_rows;
  obs::Counter& op_union_rows;
  obs::Counter& op_hash_joins;
  obs::Counter& op_hash_build_rows;
  obs::Histogram& execute_us;

  static SparqlMetrics& Get();
};

/// A dense solution multiset: every row is `width` TermId slots, one per
/// query variable (see planner.h), stored contiguously. kInvalidTermId
/// marks an unbound slot. This replaces the original engine's per-row
/// `unordered_map<string, TermId>` bindings: extension, conflict checks
/// and filters index slots directly instead of hashing names.
class BindingTable {
 public:
  BindingTable() = default;
  explicit BindingTable(size_t width) : rows_(width) {}

  [[nodiscard]] size_t width() const { return rows_.width(); }
  [[nodiscard]] size_t num_rows() const { return rows_.num_rows(); }

  [[nodiscard]] const rdf::TermId* row(size_t i) const {
    return rows_.row(i);
  }

  /// Appends a copy of `src` (width TermIds).
  void AppendRow(const rdf::TermId* src) { rows_.AppendRow(src); }

  /// Appends one all-unbound row.
  void AppendEmptyRow() { rows_.AppendFillRow(rdf::kInvalidTermId); }

  /// Concatenates `other` (same width; an empty table of any width is ok).
  void Append(BindingTable&& other) { rows_.Append(std::move(other.rows_)); }

  void Reserve(size_t rows) { rows_.Reserve(rows); }

  /// Drops all rows, keeping capacity (for seed-table reuse in loops).
  void Clear() { rows_.Clear(); }

  /// Splits the table into column batches of at most kBatchRows — the
  /// bridge from row-engine output to the batch-consuming engine tail.
  [[nodiscard]] std::vector<ColumnBatch> ToBatches() const {
    return RowsToBatches(rows_.data().data(), num_rows(), width());
  }

 private:
  FlatRows<rdf::TermId> rows_;
};

/// Per-query resource budget, threaded from the serving layer's admission
/// control (serve/frontend.h) into the executor. A budget bounds how much
/// a single hostile or runaway query can cost before the engine gives up
/// with StatusCode::kResourceExhausted; the default is unlimited, so every
/// pre-existing caller is unaffected.
///
/// Enforcement is best-effort at operator granularity: the executor checks
/// between BGP steps, union branches, optional iterations and filter
/// passes, and pool workers re-check the wall clock every few hundred rows
/// inside join chunks — a query can therefore overshoot by roughly one
/// operator's worth of work, never by an unbounded amount.
struct ExecBudget {
  /// Wall-time budget for execution (planning excluded), microseconds.
  /// Negative = unlimited.
  int64_t time_budget_us = -1;

  /// Cap on rows materialized across all BGP steps (the same quantity
  /// QueryStats::intermediate_rows reports). 0 = unlimited.
  uint64_t max_intermediate_rows = 0;

  [[nodiscard]] bool unlimited() const {
    return time_budget_us < 0 && max_intermediate_rows == 0;
  }
};

/// Three-way comparison following lodviz's pragmatic SPARQL ordering:
/// numeric if both numeric, temporal if both temporal, else lexical form.
/// Used by FILTER relations, ORDER BY and MIN/MAX aggregates.
Result<int> CompareTerms(const rdf::Term& a, const rdf::Term& b);

/// SPARQL effective boolean value; errors on non-literals.
Result<bool> EffectiveBool(const rdf::Term& t);

/// Evaluates a compiled expression over one slot row (SPARQL error
/// semantics: unbound variables and type errors surface as Status).
Result<rdf::Term> EvalExpr(const CompiledExpr& e, const rdf::Dictionary& dict,
                           const rdf::TermId* row);

/// FILTER semantics: keep the row iff the expression evaluates to a true
/// EBV; evaluation errors reject the row (and bump the
/// `sparql.op.filter_errors` counter so silent per-row errors show up in
/// the metrics snapshot).
bool PassesFilter(const CompiledExpr& e, const rdf::Dictionary& dict,
                  const rdf::TermId* row);

/// Builds the obs::OperatorProfile tree mirroring `plan`: one node per
/// pattern step (op "scan"/"hash-join", the planner's label and estimate),
/// one "union"/"optional" group node per branch (recursively mirrored),
/// and one trailing "filter" node when the group has filters. The executor
/// walks plan and skeleton in lockstep, so the layout here is load-bearing:
/// children are [steps...][unions...][optionals...][filter?].
[[nodiscard]] obs::OperatorProfile BuildProfileSkeleton(const GroupPlan& plan);

/// Executes a compiled GroupPlan against a TripleSource: per-step index
/// nested-loop or build-once hash joins over slot rows (the planner picks
/// per PatternStep), then unions, optionals and filters. One Executor per
/// query execution (it accumulates the intermediate-row statistic); the
/// underlying source is only read.
///
/// Profiling: pass a skeleton built by BuildProfileSkeleton(plan) to
/// record per-operator actual rows, invocations, and wall time into it.
/// Instrumentation is per operator, never per row, and with a null
/// profile each operator pays exactly one pointer test — execution
/// (plans, row order, results) is bit-identical either way, which the
/// parity suite pins under LODVIZ_PROFILE=1 (see scripts/check.sh). The
/// profile tree is written only from the thread driving EvalGroup.
class Executor {
 public:
  Executor(const rdf::TripleSource* source, size_t width,
           obs::OperatorProfile* profile = nullptr,
           ExecBudget budget = ExecBudget())
      : source_(source), width_(width), profile_(profile), budget_(budget) {}

  /// Evaluates `plan` with `seeds` as the initial solutions (pass a single
  /// all-unbound row for a top-level group). `seeds` is only read; the
  /// caller keeps ownership.
  BindingTable EvalGroup(const GroupPlan& plan, const BindingTable& seeds) {
    return EvalGroup(plan, seeds, profile_);
  }

  /// Vectorized evaluation of `plan`: scan/extend, joins and filters
  /// process ColumnBatch chunks instead of per-row lambdas; filters
  /// restrict batches via selection vectors without materializing rows.
  /// Logical row order (batches in order, active rows in order) is
  /// bit-identical to EvalGroup's row order — the ExecMode contract the
  /// parity suite pins (DESIGN.md §4.9).
  std::vector<ColumnBatch> EvalGroupBatches(const GroupPlan& plan,
                                            const std::vector<ColumnBatch>& seeds) {
    return EvalGroupBatches(plan, seeds, profile_);
  }

  /// Rows produced across all BGP steps, including intermediate join
  /// results (cost introspection for E10).
  [[nodiscard]] uint64_t intermediate_rows() const {
    return intermediate_rows_;
  }

  /// True once the execution crossed its ExecBudget. The caller (the
  /// engine) must discard the — deliberately truncated — tables EvalGroup
  /// returned and surface StatusCode::kResourceExhausted instead.
  [[nodiscard]] bool budget_exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

 private:
  BindingTable EvalGroup(const GroupPlan& plan, const BindingTable& seeds,
                         obs::OperatorProfile* prof);
  BindingTable EvalBgp(const std::vector<PatternStep>& steps,
                       const BindingTable& seeds, obs::OperatorProfile* prof);
  std::vector<ColumnBatch> EvalGroupBatches(const GroupPlan& plan,
                                            const std::vector<ColumnBatch>& seeds,
                                            obs::OperatorProfile* prof);
  std::vector<ColumnBatch> EvalBgpBatches(const std::vector<PatternStep>& steps,
                                          const std::vector<ColumnBatch>& seeds,
                                          obs::OperatorProfile* prof);
  /// Segment-at-a-time FILTER: installs a selection vector on every batch
  /// (specialized numeric comparisons where the plan allows, the generic
  /// per-row evaluator elsewhere — same row-by-row semantics and error
  /// accounting as the row engine).
  void FilterBatches(const GroupPlan& plan, std::vector<ColumnBatch>* batches,
                     obs::OperatorProfile* prof);

  /// Driving-thread budget check between operators: tests both the wall
  /// clock and the intermediate-row cap, latches `exhausted_`, and returns
  /// whether execution should stop.
  bool CheckBudget();

  /// Worker-side wall-clock recheck, called every few hundred rows from
  /// inside ParallelReduce chunks. Reads are const and the flag is atomic,
  /// so concurrent chunk workers race benignly to set it.
  bool TimeExpired();

  const rdf::TripleSource* source_;
  size_t width_;
  obs::OperatorProfile* profile_;
  ExecBudget budget_;
  Stopwatch budget_sw_;
  uint64_t intermediate_rows_ = 0;
  /// Latched by CheckBudget/TimeExpired (driving thread or any pool
  /// worker), read by all of them; atomic, not mutex-guarded, because
  /// a stale read merely delays the stop by one check interval.
  std::atomic<bool> exhausted_{false};
};

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_EXECUTOR_H_
