#ifndef LODVIZ_SPARQL_PARSER_H_
#define LODVIZ_SPARQL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "sparql/ast.h"

namespace lodviz::sparql {

/// Parses a SPARQL SELECT/ASK query (the lodviz subset) into an AST.
///
/// Supported grammar (informally):
///   PREFIX p: <iri>
///   SELECT [DISTINCT] (* | ?v... | aggregates (COUNT/SUM/AVG/MIN/MAX with AS))
///   ASK
///   WHERE { triples . FILTER(expr) OPTIONAL {...} {A} UNION {B} }
///   triples support ';' (same subject) and ',' (same subject+predicate),
///   and 'a' for rdf:type
///   GROUP BY ?v... / ORDER BY [ASC|DESC](?v)... / LIMIT n / OFFSET n
Result<Query> ParseQuery(std::string_view text);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_PARSER_H_
