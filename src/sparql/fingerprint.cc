#include "sparql/fingerprint.h"

#include <cstring>
#include <string>
#include <unordered_map>

#include "rdf/dictionary.h"

namespace lodviz::sparql {

namespace {

/// Canonical byte-stream builder. Every value is fed through a typed
/// Tag* method so adjacent fields cannot alias (e.g. the var index 1
/// followed by literal "2" never collides with var 12): each tag byte
/// separates fields, and integers always contribute exactly 8 bytes.
/// The emitted bytes ARE the canonical serialization — the fingerprint is
/// Fnv1a64 over them, and the plan cache keeps them verbatim as the
/// exact-match verifier behind the 64-bit key.
class Hasher {
 public:
  void Byte(uint8_t b) { out_.push_back(static_cast<char>(b)); }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) Byte(static_cast<uint8_t>(v >> (i * 8)));
  }
  void Tag(char c) { Byte(static_cast<uint8_t>(c)); }
  void Str(const std::string& s) {
    U64(s.size());
    for (char c : s) Byte(static_cast<uint8_t>(c));
  }
  void F64(double d) {
    // +0.0 and -0.0 compare equal but differ in bits; canonicalize so the
    // two spellings of zero fingerprint identically.
    if (d == 0.0) d = 0.0;
    uint64_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    U64(bits);
  }
  [[nodiscard]] std::string&& TakeBytes() { return std::move(out_); }

 private:
  std::string out_;
};

class FingerprintVisitor {
 public:
  explicit FingerprintVisitor(Hasher* h) : h_(h) {}

  void VisitQuery(const Query& q) {
    h_->Tag('Q');
    h_->Byte(static_cast<uint8_t>(q.form));
    h_->Byte(q.distinct ? 1 : 0);
    h_->Tag('S');
    h_->U64(q.select_vars.size());
    for (const std::string& v : q.select_vars) Variable(v);
    h_->Tag('A');
    h_->U64(q.aggregates.size());
    for (const Aggregate& a : q.aggregates) {
      h_->Byte(static_cast<uint8_t>(a.fn));
      h_->Byte(a.distinct ? 1 : 0);
      if (a.var.empty()) {
        h_->Tag('*');
      } else {
        Variable(a.var);
      }
      // The alias names an output column: part of the query's meaning
      // (consumers address columns by it), so it hashes verbatim.
      h_->Str(a.alias);
    }
    h_->Tag('C');
    h_->U64(q.construct_template.size());
    for (const TriplePatternAst& t : q.construct_template) Pattern(t);
    h_->Tag('D');
    h_->U64(q.describe_targets.size());
    for (const NodeOrVar& n : q.describe_targets) Node(n);
    h_->Tag('W');
    Group(q.where);
    h_->Tag('G');
    h_->U64(q.group_by.size());
    for (const std::string& v : q.group_by) Variable(v);
    h_->Tag('O');
    h_->U64(q.order_by.size());
    for (const OrderKey& k : q.order_by) {
      Variable(k.var);
      h_->Byte(k.ascending ? 1 : 0);
    }
    h_->Tag('L');
    h_->U64(static_cast<uint64_t>(q.limit));
    h_->U64(static_cast<uint64_t>(q.offset));
  }

 private:
  /// Canonical variable id: dense index in first-appearance order of this
  /// traversal. Renaming variables consistently cannot change the ids.
  void Variable(const std::string& name) {
    auto [it, inserted] = var_ids_.emplace(name, var_ids_.size());
    h_->Tag('v');
    h_->U64(it->second);
  }

  void Literal(const rdf::Term& t) {
    if (t.is_iri()) {
      h_->Tag('i');
      h_->Str(t.lexical);
      return;
    }
    if (t.is_blank()) {
      h_->Tag('b');
      h_->Str(t.lexical);
      return;
    }
    // Literal spelling canonicalization: decodable values hash their
    // decoded form, so `30`, `"30"^^xsd:integer` and `"+30"^^xsd:integer`
    // agree; everything else hashes lexical + language + datatype.
    const rdf::DecodedValue dec = rdf::DecodeTerm(t);
    switch (dec.kind) {
      case rdf::DecodedValue::Kind::kNum:
        h_->Tag('n');
        h_->F64(dec.num);
        return;
      case rdf::DecodedValue::Kind::kTime:
        h_->Tag('t');
        h_->U64(static_cast<uint64_t>(dec.epoch));
        return;
      case rdf::DecodedValue::Kind::kBool:
        h_->Tag('B');
        h_->Byte(dec.b ? 1 : 0);
        return;
      case rdf::DecodedValue::Kind::kNone:
        break;
    }
    h_->Tag('l');
    h_->Str(t.lexical);
    h_->Str(t.language);
    h_->Str(t.datatype);
  }

  void Node(const NodeOrVar& n) {
    if (IsVar(n)) {
      Variable(AsVar(n).name);
    } else {
      Literal(AsTerm(n));
    }
  }

  void Pattern(const TriplePatternAst& t) {
    h_->Tag('p');
    Node(t.s);
    Node(t.p);
    Node(t.o);
  }

  void Expression(const Expr& e) {
    h_->Tag('e');
    h_->Byte(static_cast<uint8_t>(e.kind));
    switch (e.kind) {
      case Expr::Kind::kLiteral:
        Literal(e.literal);
        break;
      case Expr::Kind::kVar:
        Variable(e.var);
        break;
      case Expr::Kind::kBinary:
        h_->Byte(static_cast<uint8_t>(e.bin_op));
        break;
      case Expr::Kind::kUnary:
        h_->Byte(static_cast<uint8_t>(e.un_op));
        break;
      case Expr::Kind::kFunc:
        h_->Byte(static_cast<uint8_t>(e.func));
        break;
    }
    h_->U64(e.args.size());
    for (const ExprPtr& a : e.args) Expression(*a);
  }

  void Group(const GraphPattern& g) {
    h_->Tag('{');
    h_->U64(g.triples.size());
    for (const TriplePatternAst& t : g.triples) Pattern(t);
    h_->U64(g.filters.size());
    for (const ExprPtr& f : g.filters) Expression(*f);
    h_->U64(g.optionals.size());
    for (const GraphPattern& o : g.optionals) Group(o);
    h_->U64(g.union_branches.size());
    for (const GraphPattern& u : g.union_branches) Group(u);
    h_->Tag('}');
  }

  Hasher* h_;
  std::unordered_map<std::string, uint64_t> var_ids_;
};

}  // namespace

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001B3ULL;  // FNV prime
  }
  return h;
}

std::string CanonicalQueryKey(const Query& query) {
  Hasher h;
  FingerprintVisitor(&h).VisitQuery(query);
  return h.TakeBytes();
}

uint64_t QueryFingerprint(const Query& query) {
  return Fnv1a64(CanonicalQueryKey(query));
}

}  // namespace lodviz::sparql
