#ifndef LODVIZ_SPARQL_LEXER_H_
#define LODVIZ_SPARQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace lodviz::sparql {

enum class TokenKind {
  kKeyword,   ///< SELECT, WHERE, FILTER, ... (upper-cased in `text`)
  kVar,       ///< ?name (text holds the name without '?')
  kIriRef,    ///< <...> (text holds the IRI)
  kPname,     ///< prefix:local (text holds the full form)
  kString,    ///< "..." (text holds the unescaped value)
  kLangTag,   ///< @en
  kNumber,    ///< integer or decimal literal (text holds the lexical form)
  kA,         ///< the keyword 'a' (rdf:type shorthand)
  kPunct,     ///< one of { } ( ) . ; , * = != < <= > >= && || ! + - / ^^
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;
  size_t offset = 0;  ///< byte offset in the input (for error messages)
};

/// Tokenizes a SPARQL query string. Keywords are recognized
/// case-insensitively and normalized to upper case.
Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_LEXER_H_
