#include "sparql/column_batch.h"

#include <algorithm>

namespace lodviz::sparql {

BatchListView::BatchListView(const std::vector<ColumnBatch>& batches)
    : batches_(&batches) {
  prefix_.reserve(batches.size() + 1);
  size_t sum = 0;
  for (const ColumnBatch& b : batches) {
    prefix_.push_back(sum);
    sum += b.active();
  }
  prefix_.push_back(sum);
  total_ = sum;
}

size_t BatchListView::FindBatch(size_t li) const {
  // upper_bound lands past every batch whose prefix is <= li, which also
  // skips empty batches (their prefix equals the next batch's).
  auto it = std::upper_bound(prefix_.begin(), prefix_.end() - 1, li);
  return static_cast<size_t>(it - prefix_.begin()) - 1;
}

size_t TotalActiveRows(const std::vector<ColumnBatch>& batches) {
  size_t sum = 0;
  for (const ColumnBatch& b : batches) sum += b.active();
  return sum;
}

std::vector<ColumnBatch> RowsToBatches(const rdf::TermId* data, size_t rows,
                                       size_t width) {
  std::vector<ColumnBatch> out;
  out.reserve(rows / kBatchRows + 1);
  for (size_t begin = 0; begin < rows; begin += kBatchRows) {
    const size_t end = std::min(rows, begin + kBatchRows);
    ColumnBatch& batch = out.emplace_back(width);
    for (size_t r = begin; r < end; ++r) batch.AppendRow(data + r * width);
  }
  return out;
}

}  // namespace lodviz::sparql
