#include "sparql/executor.h"

#include <algorithm>
#include <unordered_map>

#include "exec/parallel.h"
#include "obs/trace.h"
#include "rdf/vocab.h"

namespace lodviz::sparql {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

SparqlMetrics& SparqlMetrics::Get() {
  obs::MetricRegistry& r = obs::MetricRegistry::Global();
  static SparqlMetrics m{r.GetCounter("sparql.queries"),
                         r.GetCounter("sparql.intermediate_rows"),
                         r.GetCounter("sparql.rows_out"),
                         r.GetCounter("sparql.op.join_rows"),
                         r.GetCounter("sparql.op.filter_dropped"),
                         r.GetCounter("sparql.op.filter_errors"),
                         r.GetCounter("sparql.op.optional_rows"),
                         r.GetCounter("sparql.op.union_rows"),
                         r.GetCounter("sparql.op.hash_joins"),
                         r.GetCounter("sparql.op.hash_build_rows"),
                         r.GetHistogram("sparql.execute_us")};
  return m;
}

namespace {

Term BoolTerm(bool b) { return Term::BoolLiteral(b); }

/// A value flowing through expression evaluation without materializing a
/// string-carrying Term per row. Bound variables and plan-time constants
/// are references to already-interned terms plus their decoded cache entry
/// (kRef); computed numerics and booleans stay machine values (kNum,
/// kBool); only the string-producing functions (STR/LANG/DATATYPE) build a
/// fresh Term (kOwned).
struct SlimVal {
  enum class Kind : uint8_t { kRef, kNum, kBool, kOwned };
  Kind kind = Kind::kRef;
  const Term* term = nullptr;              // kRef
  const rdf::DecodedValue* dec = nullptr;  // kRef
  TermId id = kInvalidTermId;              // kRef: 0 for plan constants
  double num = 0.0;                        // kNum
  bool b = false;                          // kBool
  Term owned;                              // kOwned

  static SlimVal Ref(const Term* t, const rdf::DecodedValue* d, TermId i) {
    SlimVal v;
    v.kind = Kind::kRef;
    v.term = t;
    v.dec = d;
    v.id = i;
    return v;
  }
  static SlimVal Num(double x) {
    SlimVal v;
    v.kind = Kind::kNum;
    v.num = x;
    return v;
  }
  static SlimVal Bool(bool x) {
    SlimVal v;
    v.kind = Kind::kBool;
    v.b = x;
    return v;
  }
  static SlimVal Owned(Term t) {
    SlimVal v;
    v.kind = Kind::kOwned;
    v.owned = std::move(t);
    return v;
  }
};

/// Term view of `v`. Only computed values (kNum/kBool) build a Term, into
/// `*scratch`; references are returned as-is, so the common paths stay
/// allocation-free.
const Term* SlimTermPtr(const SlimVal& v, Term* scratch) {
  switch (v.kind) {
    case SlimVal::Kind::kRef:
      return v.term;
    case SlimVal::Kind::kOwned:
      return &v.owned;
    case SlimVal::Kind::kNum:
      *scratch = Term::DoubleLiteral(v.num);
      return scratch;
    case SlimVal::Kind::kBool:
      *scratch = BoolTerm(v.b);
      return scratch;
  }
  return scratch;
}

bool SlimIsNumeric(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kNum:
      return true;
    case SlimVal::Kind::kBool:
      return false;
    case SlimVal::Kind::kRef:
      // kNum in the cache implies IsNumericLiteral; kNone does not imply
      // the opposite (unparseable typed numerics decode to kNone).
      return v.dec->kind == rdf::DecodedValue::Kind::kNum ||
             v.term->IsNumericLiteral();
    case SlimVal::Kind::kOwned:
      return v.owned.IsNumericLiteral();
  }
  return false;
}

bool SlimIsTemporal(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kRef:
      return v.dec->kind == rdf::DecodedValue::Kind::kTime ||
             v.term->IsTemporalLiteral();
    case SlimVal::Kind::kOwned:
      return v.owned.IsTemporalLiteral();
    default:
      return false;
  }
}

/// AsDouble with the decoded fast path; everything the cache could not
/// decode takes the exact Term slow path (including its errors).
Result<double> SlimNum(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kNum:
      return v.num;
    case SlimVal::Kind::kRef:
      if (v.dec->kind == rdf::DecodedValue::Kind::kNum) return v.dec->num;
      return v.term->AsDouble();
    case SlimVal::Kind::kOwned:
      return v.owned.AsDouble();
    case SlimVal::Kind::kBool:
      return BoolTerm(v.b).AsDouble();
  }
  return Status::Internal("unhandled slim kind");
}

Result<int64_t> SlimEpoch(const SlimVal& v) {
  if (v.kind == SlimVal::Kind::kRef &&
      v.dec->kind == rdf::DecodedValue::Kind::kTime) {
    return v.dec->epoch;
  }
  Term scratch;
  return SlimTermPtr(v, &scratch)->AsEpochSeconds();
}

/// SPARQL effective boolean value (mirrors EffectiveBool on Terms).
Result<bool> SlimBool(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kBool:
      return v.b;
    case SlimVal::Kind::kNum:
      return v.num != 0.0;
    case SlimVal::Kind::kRef:
      switch (v.dec->kind) {
        case rdf::DecodedValue::Kind::kBool:
          return v.dec->b;
        case rdf::DecodedValue::Kind::kNum:
          return v.dec->num != 0.0;
        case rdf::DecodedValue::Kind::kTime:
          return true;  // a parsed temporal literal has a non-empty lexical
        case rdf::DecodedValue::Kind::kNone:
          return EffectiveBool(*v.term);
      }
      return EffectiveBool(*v.term);
    case SlimVal::Kind::kOwned:
      return EffectiveBool(v.owned);
  }
  return Status::Internal("unhandled slim kind");
}

/// Three-way comparison with the semantics of CompareTerms, taking the
/// decoded fast path wherever the cache has a value.
Result<int> SlimCompare(const SlimVal& a, const SlimVal& b) {
  if (SlimIsNumeric(a) && SlimIsNumeric(b)) {
    LODVIZ_ASSIGN_OR_RETURN(double x, SlimNum(a));
    LODVIZ_ASSIGN_OR_RETURN(double y, SlimNum(b));
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (SlimIsTemporal(a) && SlimIsTemporal(b)) {
    LODVIZ_ASSIGN_OR_RETURN(int64_t x, SlimEpoch(a));
    LODVIZ_ASSIGN_OR_RETURN(int64_t y, SlimEpoch(b));
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  Term sa, sb;
  int c = SlimTermPtr(a, &sa)->lexical.compare(SlimTermPtr(b, &sb)->lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Structural term equality (the non-numeric branch of = and !=). Two
/// valid dictionary ids compare directly: interning is injective, so equal
/// ids mean equal terms and vice versa within one dictionary.
bool SlimTermEq(const SlimVal& a, const SlimVal& b) {
  if (a.kind == SlimVal::Kind::kRef && b.kind == SlimVal::Kind::kRef &&
      a.id != kInvalidTermId && b.id != kInvalidTermId) {
    return a.id == b.id;
  }
  if (a.kind == SlimVal::Kind::kBool && b.kind == SlimVal::Kind::kBool) {
    return a.b == b.b;
  }
  Term sa, sb;
  return *SlimTermPtr(a, &sa) == *SlimTermPtr(b, &sb);
}

Result<SlimVal> EvalSlim(const CompiledExpr& e, const rdf::Dictionary& dict,
                         const TermId* row);

Result<SlimVal> EvalSlimBinary(const CompiledExpr& e,
                               const rdf::Dictionary& dict,
                               const TermId* row) {
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    LODVIZ_ASSIGN_OR_RETURN(SlimVal lhs, EvalSlim(e.args[0], dict, row));
    LODVIZ_ASSIGN_OR_RETURN(bool l, SlimBool(lhs));
    if (e.bin_op == BinOp::kAnd && !l) return SlimVal::Bool(false);
    if (e.bin_op == BinOp::kOr && l) return SlimVal::Bool(true);
    LODVIZ_ASSIGN_OR_RETURN(SlimVal rhs, EvalSlim(e.args[1], dict, row));
    LODVIZ_ASSIGN_OR_RETURN(bool r, SlimBool(rhs));
    return SlimVal::Bool(r);
  }

  LODVIZ_ASSIGN_OR_RETURN(SlimVal lhs, EvalSlim(e.args[0], dict, row));
  LODVIZ_ASSIGN_OR_RETURN(SlimVal rhs, EvalSlim(e.args[1], dict, row));

  switch (e.bin_op) {
    case BinOp::kEq:
    case BinOp::kNe: {
      bool eq;
      if (SlimIsNumeric(lhs) && SlimIsNumeric(rhs)) {
        LODVIZ_ASSIGN_OR_RETURN(int c, SlimCompare(lhs, rhs));
        eq = c == 0;
      } else {
        eq = SlimTermEq(lhs, rhs);
      }
      return SlimVal::Bool(e.bin_op == BinOp::kEq ? eq : !eq);
    }
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      LODVIZ_ASSIGN_OR_RETURN(int c, SlimCompare(lhs, rhs));
      switch (e.bin_op) {
        case BinOp::kLt:
          return SlimVal::Bool(c < 0);
        case BinOp::kLe:
          return SlimVal::Bool(c <= 0);
        case BinOp::kGt:
          return SlimVal::Bool(c > 0);
        default:
          return SlimVal::Bool(c >= 0);
      }
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      LODVIZ_ASSIGN_OR_RETURN(double x, SlimNum(lhs));
      LODVIZ_ASSIGN_OR_RETURN(double y, SlimNum(rhs));
      switch (e.bin_op) {
        case BinOp::kAdd:
          return SlimVal::Num(x + y);
        case BinOp::kSub:
          return SlimVal::Num(x - y);
        case BinOp::kMul:
          return SlimVal::Num(x * y);
        default:
          if (y == 0.0) return Status::InvalidArgument("division by zero");
          return SlimVal::Num(x / y);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<SlimVal> EvalSlimFunc(const CompiledExpr& e, const rdf::Dictionary& dict,
                             const TermId* row) {
  auto arg = [&](size_t i) -> Result<SlimVal> {
    return EvalSlim(e.args[i], dict, row);
  };
  switch (e.func) {
    case FuncOp::kBound: {
      if (e.args.size() != 1 || e.args[0].kind != Expr::Kind::kVar) {
        return Status::InvalidArgument("BOUND needs a variable");
      }
      SlotId slot = e.args[0].slot;
      return SlimVal::Bool(slot != kNoSlot && row[slot] != kInvalidTermId);
    }
    case FuncOp::kIsIri: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Bool(SlimTermPtr(t, &scratch)->is_iri());
    }
    case FuncOp::kIsLiteral: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Bool(SlimTermPtr(t, &scratch)->is_literal());
    }
    case FuncOp::kIsBlank: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Bool(SlimTermPtr(t, &scratch)->is_blank());
    }
    case FuncOp::kStr: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Owned(Term::Literal(SlimTermPtr(t, &scratch)->lexical));
    }
    case FuncOp::kContains: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal a, arg(0));
      LODVIZ_ASSIGN_OR_RETURN(SlimVal b, arg(1));
      Term sa, sb;
      return SlimVal::Bool(SlimTermPtr(a, &sa)->lexical.find(
                               SlimTermPtr(b, &sb)->lexical) !=
                           std::string::npos);
    }
    case FuncOp::kStrStarts: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal a, arg(0));
      LODVIZ_ASSIGN_OR_RETURN(SlimVal b, arg(1));
      Term sa, sb;
      return SlimVal::Bool(SlimTermPtr(a, &sa)->lexical.rfind(
                               SlimTermPtr(b, &sb)->lexical, 0) == 0);
    }
    case FuncOp::kLang: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Owned(Term::Literal(SlimTermPtr(t, &scratch)->language));
    }
    case FuncOp::kDatatype: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      const Term* tp = SlimTermPtr(t, &scratch);
      if (!tp->is_literal()) {
        return Status::InvalidArgument("DATATYPE of non-literal");
      }
      return SlimVal::Owned(Term::Iri(
          tp->datatype.empty() ? rdf::vocab::kXsdString : tp->datatype));
    }
  }
  return Status::Internal("unhandled function");
}

Result<SlimVal> EvalSlim(const CompiledExpr& e, const rdf::Dictionary& dict,
                         const TermId* row) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return SlimVal::Ref(&e.literal, &e.lit_decoded, kInvalidTermId);
    case Expr::Kind::kVar: {
      if (e.slot == kNoSlot || row[e.slot] == kInvalidTermId) {
        return Status::NotFound("unbound variable");
      }
      const TermId id = row[e.slot];
      return SlimVal::Ref(&dict.term(id), &dict.decoded(id), id);
    }
    case Expr::Kind::kBinary:
      return EvalSlimBinary(e, dict, row);
    case Expr::Kind::kUnary: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, EvalSlim(e.args[0], dict, row));
      if (e.un_op == UnOp::kNot) {
        LODVIZ_ASSIGN_OR_RETURN(bool b, SlimBool(t));
        return SlimVal::Bool(!b);
      }
      LODVIZ_ASSIGN_OR_RETURN(double v, SlimNum(t));
      return SlimVal::Num(-v);
    }
    case Expr::Kind::kFunc:
      return EvalSlimFunc(e, dict, row);
  }
  return Status::Internal("unhandled expr kind");
}

}  // namespace

Result<bool> EffectiveBool(const Term& t) {
  if (!t.is_literal()) {
    return Status::InvalidArgument("EBV of non-literal");
  }
  if (t.datatype == rdf::vocab::kXsdBoolean) return t.lexical == "true";
  if (t.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double v, t.AsDouble());
    return v != 0.0;
  }
  return !t.lexical.empty();
}

Result<int> CompareTerms(const Term& a, const Term& b) {
  if (a.IsNumericLiteral() && b.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double x, a.AsDouble());
    LODVIZ_ASSIGN_OR_RETURN(double y, b.AsDouble());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.IsTemporalLiteral() && b.IsTemporalLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(int64_t x, a.AsEpochSeconds());
    LODVIZ_ASSIGN_OR_RETURN(int64_t y, b.AsEpochSeconds());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int c = a.lexical.compare(b.lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

Result<Term> EvalExpr(const CompiledExpr& e, const rdf::Dictionary& dict,
                      const TermId* row) {
  LODVIZ_ASSIGN_OR_RETURN(SlimVal v, EvalSlim(e, dict, row));
  switch (v.kind) {
    case SlimVal::Kind::kRef:
      return *v.term;
    case SlimVal::Kind::kOwned:
      return std::move(v.owned);
    case SlimVal::Kind::kNum:
      return Term::DoubleLiteral(v.num);
    case SlimVal::Kind::kBool:
      return BoolTerm(v.b);
  }
  return Status::Internal("unhandled slim kind");
}

bool PassesFilter(const CompiledExpr& e, const rdf::Dictionary& dict,
                  const TermId* row) {
  Result<SlimVal> v = EvalSlim(e, dict, row);
  if (!v.ok()) {
    SparqlMetrics::Get().op_filter_errors.Increment();
    return false;
  }
  Result<bool> b = SlimBool(v.ValueOrDie());
  if (!b.ok()) {
    SparqlMetrics::Get().op_filter_errors.Increment();
    return false;
  }
  return b.ValueOrDie();
}

namespace {

/// Hash-join key: the runtime TermIds at the pattern's statically-bound
/// join slots; kInvalidTermId at every other position.
struct JoinKey {
  TermId a = kInvalidTermId;
  TermId b = kInvalidTermId;
  TermId c = kInvalidTermId;
  bool operator==(const JoinKey& o) const {
    return a == o.a && b == o.b && c == o.c;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.a) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(k.b) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    h ^= static_cast<uint64_t>(k.c) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace

obs::OperatorProfile BuildProfileSkeleton(const GroupPlan& plan) {
  obs::OperatorProfile node;
  node.op = "group";
  node.children.reserve(plan.steps.size() + plan.union_branches.size() +
                        plan.optionals.size() +
                        (plan.filters.empty() ? 0 : 1));
  for (const PatternStep& st : plan.steps) {
    obs::OperatorProfile& step = node.children.emplace_back();
    step.op = st.strategy == JoinStrategy::kHash ? "hash-join" : "scan";
    step.label = st.label;
    step.est_rows = st.est_rows;
  }
  for (const GroupPlan& u : plan.union_branches) {
    obs::OperatorProfile& branch =
        node.children.emplace_back(BuildProfileSkeleton(u));
    branch.op = "union";
  }
  for (const GroupPlan& o : plan.optionals) {
    obs::OperatorProfile& opt =
        node.children.emplace_back(BuildProfileSkeleton(o));
    opt.op = "optional";
  }
  if (!plan.filters.empty()) {
    obs::OperatorProfile& filter = node.children.emplace_back();
    filter.op = "filter";
    filter.label = "x" + std::to_string(plan.filters.size());
  }
  return node;
}

bool Executor::CheckBudget() {
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (budget_.max_intermediate_rows != 0 &&
      intermediate_rows_ > budget_.max_intermediate_rows) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return TimeExpired();
}

bool Executor::TimeExpired() {
  if (budget_.time_budget_us < 0) return false;
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (budget_sw_.ElapsedMicros() >
      static_cast<double>(budget_.time_budget_us)) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

BindingTable Executor::EvalBgp(const std::vector<PatternStep>& steps,
                               const BindingTable& seeds,
                               obs::OperatorProfile* prof) {
  if (steps.empty()) return seeds;
  LODVIZ_TRACE_SPAN("sparql.bgp");
  // One clock read per step when a time budget is set; zero otherwise.
  const bool timed = budget_.time_budget_us >= 0;

  const BindingTable* input = &seeds;
  BindingTable current;
  size_t step_index = 0;
  for (const PatternStep& st : steps) {
    // Per-operator instrumentation: with profiling off this whole block is
    // the construction branch below plus one null test at Finish — no
    // clock reads, nothing per row.
    obs::OperatorTimer timer(
        prof == nullptr ? nullptr : &prof->children[step_index],
        input->num_rows());
    ++step_index;
    BindingTable next(width_);
    if (!st.dead && input->num_rows() > 0) {
      // Extends `sol` with one matching triple: bind pattern variables,
      // reject on conflict with an existing binding. Shared verbatim by
      // both join strategies so kept rows (and their order within one
      // solution's match list) are identical by construction.
      auto extend = [&](BindingTable& out, const TermId* sol,
                        std::vector<TermId>& extended, const rdf::Triple& t) {
        std::copy(sol, sol + width_, extended.begin());
        bool ok = true;
        auto bind = [&](SlotId slot, TermId value) {
          if (slot == kNoSlot) return;
          TermId& cell = extended[slot];
          if (cell == kInvalidTermId) {
            cell = value;
          } else if (cell != value) {
            ok = false;
          }
        };
        bind(st.s_slot, t.s);
        if (ok) bind(st.p_slot, t.p);
        if (ok) bind(st.o_slot, t.o);
        if (ok) out.AppendRow(extended.data());
      };

      // Index nested-loop for one solution: probe the source with the
      // runtime-substituted pattern. Matches are copied out of the Scan
      // callback so the source is held only for the index walk, not the
      // binding work.
      auto nlj_row = [&](BindingTable& out, const TermId* sol,
                         std::vector<rdf::Triple>& matches,
                         std::vector<TermId>& extended) {
        rdf::TriplePattern pat(
            st.s_slot == kNoSlot ? st.s_id : sol[st.s_slot],
            st.p_slot == kNoSlot ? st.p_id : sol[st.p_slot],
            st.o_slot == kNoSlot ? st.o_id : sol[st.o_slot]);
        matches.clear();
        source_->Scan(pat, [&](const rdf::Triple& t) {
          matches.push_back(t);
          return true;
        });
        for (const rdf::Triple& t : matches) extend(out, sol, extended, t);
      };

      auto combine = [](BindingTable& acc, BindingTable&& rhs) {
        acc.Append(std::move(rhs));
      };

      if (st.strategy == JoinStrategy::kHash) {
        // Build once: a single scan with the join slots wildcarded (only
        // plan constants stay fixed), bucketed on the key positions.
        SparqlMetrics::Get().op_hash_joins.Increment();
        rdf::TriplePattern build_pat(
            st.s_slot == kNoSlot ? st.s_id : kInvalidTermId,
            st.p_slot == kNoSlot ? st.p_id : kInvalidTermId,
            st.o_slot == kNoSlot ? st.o_id : kInvalidTermId);
        std::unordered_map<JoinKey, std::vector<rdf::Triple>, JoinKeyHash>
            table;
        uint64_t build_rows = 0;
        source_->Scan(build_pat, [&](const rdf::Triple& t) {
          ++build_rows;
          JoinKey k{st.s_bound ? t.s : kInvalidTermId,
                    st.p_bound ? t.p : kInvalidTermId,
                    st.o_bound ? t.o : kInvalidTermId};
          table[k].push_back(t);
          return true;
        });
        SparqlMetrics::Get().op_hash_build_rows.Increment(build_rows);

        // Restore NLJ probe delivery order inside every bucket: the index
        // a probe would pick is a function of which positions are bound
        // (SPO when the s position is, else POS when p is, else SPO for
        // o-only — both backends agree, see DESIGN.md §4.5), and a sorted
        // bucket filtered by the runtime bindings stays in that order.
        const bool s_fixed = st.s_slot == kNoSlot || st.s_bound;
        const bool p_fixed = st.p_slot == kNoSlot || st.p_bound;
        for (auto& [key, bucket] : table) {
          if (s_fixed || !p_fixed) {
            std::sort(bucket.begin(), bucket.end(), rdf::OrderSpo());
          } else {
            std::sort(bucket.begin(), bucket.end(), rdf::OrderPos());
          }
        }

        next = exec::ParallelReduce<BindingTable>(
            0, input->num_rows(), 8,
            [&](size_t cb, size_t ce) {
              BindingTable out(width_);
              if (timed && TimeExpired()) return out;
              std::vector<rdf::Triple> matches;
              std::vector<TermId> extended(width_);
              for (size_t si = cb; si < ce; ++si) {
                const TermId* sol = input->row(si);
                // The planner's "certainly bound" is a static property: a
                // key slot can still be unbound at runtime (seeds from an
                // outer group), where NLJ semantics treat it as a
                // wildcard. Fall back to the index probe for such rows.
                if ((st.s_bound && sol[st.s_slot] == kInvalidTermId) ||
                    (st.p_bound && sol[st.p_slot] == kInvalidTermId) ||
                    (st.o_bound && sol[st.o_slot] == kInvalidTermId)) {
                  nlj_row(out, sol, matches, extended);
                  continue;
                }
                JoinKey k{st.s_bound ? sol[st.s_slot] : kInvalidTermId,
                          st.p_bound ? sol[st.p_slot] : kInvalidTermId,
                          st.o_bound ? sol[st.o_slot] : kInvalidTermId};
                auto it = table.find(k);
                if (it == table.end()) continue;
                for (const rdf::Triple& t : it->second) {
                  extend(out, sol, extended, t);
                }
              }
              return out;
            },
            combine);
      } else {
        // Solutions extend independently; per-chunk outputs concatenate
        // in chunk order, so `next` is ordered exactly as the serial loop
        // would produce it.
        next = exec::ParallelReduce<BindingTable>(
            0, input->num_rows(), 8,
            [&](size_t cb, size_t ce) {
              BindingTable out(width_);
              if (timed && TimeExpired()) return out;
              std::vector<rdf::Triple> matches;
              std::vector<TermId> extended(width_);
              for (size_t si = cb; si < ce; ++si) {
                nlj_row(out, input->row(si), matches, extended);
              }
              return out;
            },
            combine);
      }
    }
    intermediate_rows_ += next.num_rows();
    SparqlMetrics::Get().op_join_rows.Increment(next.num_rows());
    timer.Finish(next.num_rows());
    current = std::move(next);
    input = &current;
    if (current.num_rows() == 0) break;
    // Budget check per step (driving thread): a tripped budget truncates
    // the result; the engine discards it and reports kResourceExhausted.
    if (CheckBudget()) return BindingTable(width_);
  }
  return current;
}

BindingTable Executor::EvalGroup(const GroupPlan& plan,
                                 const BindingTable& seeds,
                                 obs::OperatorProfile* prof) {
  BindingTable solutions = EvalBgp(plan.steps, seeds, prof);

  // Child-node layout mirrors BuildProfileSkeleton:
  // [steps...][unions...][optionals...][filter?].
  size_t child_index = plan.steps.size();

  if (!plan.union_branches.empty()) {
    BindingTable unioned(width_);
    for (const GroupPlan& branch : plan.union_branches) {
      if (CheckBudget()) return BindingTable(width_);
      obs::OperatorProfile* branch_prof =
          prof == nullptr ? nullptr : &prof->children[child_index];
      ++child_index;
      obs::OperatorTimer timer(branch_prof);
      BindingTable rows = EvalGroup(branch, solutions, branch_prof);
      timer.Finish(rows.num_rows());
      unioned.Append(std::move(rows));
    }
    solutions = std::move(unioned);
    SparqlMetrics::Get().op_union_rows.Increment(solutions.num_rows());
  }

  if (!plan.optionals.empty()) {
    // One reusable seed table for the whole loop; each iteration clears
    // it and appends the current row instead of allocating a fresh table.
    BindingTable seed(width_);
    for (const GroupPlan& opt : plan.optionals) {
      obs::OperatorProfile* opt_prof =
          prof == nullptr ? nullptr : &prof->children[child_index];
      ++child_index;
      obs::OperatorTimer timer(opt_prof, solutions.num_rows());
      BindingTable next(width_);
      next.Reserve(solutions.num_rows());
      for (size_t i = 0; i < solutions.num_rows(); ++i) {
        if (CheckBudget()) return BindingTable(width_);
        seed.Clear();
        seed.AppendRow(solutions.row(i));
        // Inner operators of the optional accumulate across the per-row
        // re-evaluations (their `invocations` counts the re-runs); the
        // optional node itself carries the whole loop's wall time.
        BindingTable extended = EvalGroup(opt, seed, opt_prof);
        if (extended.num_rows() == 0) {
          next.AppendRow(solutions.row(i));
        } else {
          next.Append(std::move(extended));
        }
      }
      timer.Finish(next.num_rows());
      solutions = std::move(next);
      SparqlMetrics::Get().op_optional_rows.Increment(solutions.num_rows());
    }
  }

  if (!plan.filters.empty() && solutions.num_rows() > 0) {
    obs::OperatorProfile* filter_prof =
        prof == nullptr ? nullptr : &prof->children.back();
    obs::OperatorTimer timer(filter_prof, solutions.num_rows());
    const size_t before = solutions.num_rows();
    const rdf::Dictionary& dict = source_->dict();
    // Filters are pure per solution (dictionary reads are const), so
    // chunks evaluate independently and keep order on concatenation.
    const bool timed = budget_.time_budget_us >= 0;
    BindingTable kept = exec::ParallelReduce<BindingTable>(
        0, before, 64,
        [&](size_t cb, size_t ce) {
          BindingTable out(width_);
          if (timed && TimeExpired()) return out;
          for (size_t si = cb; si < ce; ++si) {
            const TermId* row = solutions.row(si);
            bool pass = true;
            for (const CompiledExpr& f : plan.filters) {
              if (!PassesFilter(f, dict, row)) {
                pass = false;
                break;
              }
            }
            if (pass) out.AppendRow(row);
          }
          return out;
        },
        [](BindingTable& acc, BindingTable&& rhs) {
          acc.Append(std::move(rhs));
        });
    solutions = std::move(kept);
    SparqlMetrics::Get().op_filter_dropped.Increment(before -
                                                     solutions.num_rows());
    timer.Finish(solutions.num_rows());
  }
  return solutions;
}

}  // namespace lodviz::sparql
