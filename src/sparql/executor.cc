#include "sparql/executor.h"

#include <algorithm>

#include "exec/parallel.h"
#include "obs/trace.h"
#include "rdf/vocab.h"

namespace lodviz::sparql {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

SparqlMetrics& SparqlMetrics::Get() {
  obs::MetricRegistry& r = obs::MetricRegistry::Global();
  static SparqlMetrics m{r.GetCounter("sparql.queries"),
                         r.GetCounter("sparql.intermediate_rows"),
                         r.GetCounter("sparql.rows_out"),
                         r.GetCounter("sparql.op.join_rows"),
                         r.GetCounter("sparql.op.filter_dropped"),
                         r.GetCounter("sparql.op.optional_rows"),
                         r.GetCounter("sparql.op.union_rows"),
                         r.GetHistogram("sparql.execute_us")};
  return m;
}

namespace {

Term BoolTerm(bool b) { return Term::BoolLiteral(b); }

Result<Term> EvalBinary(const CompiledExpr& e, const rdf::Dictionary& dict,
                        const TermId* row) {
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    LODVIZ_ASSIGN_OR_RETURN(Term lhs, EvalExpr(e.args[0], dict, row));
    LODVIZ_ASSIGN_OR_RETURN(bool l, EffectiveBool(lhs));
    if (e.bin_op == BinOp::kAnd && !l) return BoolTerm(false);
    if (e.bin_op == BinOp::kOr && l) return BoolTerm(true);
    LODVIZ_ASSIGN_OR_RETURN(Term rhs, EvalExpr(e.args[1], dict, row));
    LODVIZ_ASSIGN_OR_RETURN(bool r, EffectiveBool(rhs));
    return BoolTerm(r);
  }

  LODVIZ_ASSIGN_OR_RETURN(Term lhs, EvalExpr(e.args[0], dict, row));
  LODVIZ_ASSIGN_OR_RETURN(Term rhs, EvalExpr(e.args[1], dict, row));

  switch (e.bin_op) {
    case BinOp::kEq:
      if (lhs.IsNumericLiteral() && rhs.IsNumericLiteral()) {
        LODVIZ_ASSIGN_OR_RETURN(int c, CompareTerms(lhs, rhs));
        return BoolTerm(c == 0);
      }
      return BoolTerm(lhs == rhs);
    case BinOp::kNe:
      if (lhs.IsNumericLiteral() && rhs.IsNumericLiteral()) {
        LODVIZ_ASSIGN_OR_RETURN(int c, CompareTerms(lhs, rhs));
        return BoolTerm(c != 0);
      }
      return BoolTerm(!(lhs == rhs));
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      LODVIZ_ASSIGN_OR_RETURN(int c, CompareTerms(lhs, rhs));
      switch (e.bin_op) {
        case BinOp::kLt:
          return BoolTerm(c < 0);
        case BinOp::kLe:
          return BoolTerm(c <= 0);
        case BinOp::kGt:
          return BoolTerm(c > 0);
        default:
          return BoolTerm(c >= 0);
      }
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      LODVIZ_ASSIGN_OR_RETURN(double x, lhs.AsDouble());
      LODVIZ_ASSIGN_OR_RETURN(double y, rhs.AsDouble());
      double v = 0;
      switch (e.bin_op) {
        case BinOp::kAdd:
          v = x + y;
          break;
        case BinOp::kSub:
          v = x - y;
          break;
        case BinOp::kMul:
          v = x * y;
          break;
        default:
          if (y == 0.0) return Status::InvalidArgument("division by zero");
          v = x / y;
      }
      return Term::DoubleLiteral(v);
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<Term> EvalFunc(const CompiledExpr& e, const rdf::Dictionary& dict,
                      const TermId* row) {
  auto arg_term = [&](size_t i) -> Result<Term> {
    return EvalExpr(e.args[i], dict, row);
  };
  switch (e.func) {
    case FuncOp::kBound: {
      if (e.args.size() != 1 || e.args[0].kind != Expr::Kind::kVar) {
        return Status::InvalidArgument("BOUND needs a variable");
      }
      SlotId slot = e.args[0].slot;
      return BoolTerm(slot != kNoSlot && row[slot] != kInvalidTermId);
    }
    case FuncOp::kIsIri: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return BoolTerm(t.is_iri());
    }
    case FuncOp::kIsLiteral: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return BoolTerm(t.is_literal());
    }
    case FuncOp::kIsBlank: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return BoolTerm(t.is_blank());
    }
    case FuncOp::kStr: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return Term::Literal(t.lexical);
    }
    case FuncOp::kContains: {
      LODVIZ_ASSIGN_OR_RETURN(Term a, arg_term(0));
      LODVIZ_ASSIGN_OR_RETURN(Term b, arg_term(1));
      return BoolTerm(a.lexical.find(b.lexical) != std::string::npos);
    }
    case FuncOp::kStrStarts: {
      LODVIZ_ASSIGN_OR_RETURN(Term a, arg_term(0));
      LODVIZ_ASSIGN_OR_RETURN(Term b, arg_term(1));
      return BoolTerm(a.lexical.rfind(b.lexical, 0) == 0);
    }
    case FuncOp::kLang: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      return Term::Literal(t.language);
    }
    case FuncOp::kDatatype: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, arg_term(0));
      if (!t.is_literal()) {
        return Status::InvalidArgument("DATATYPE of non-literal");
      }
      return Term::Iri(t.datatype.empty() ? rdf::vocab::kXsdString
                                          : t.datatype);
    }
  }
  return Status::Internal("unhandled function");
}

}  // namespace

Result<bool> EffectiveBool(const Term& t) {
  if (!t.is_literal()) {
    return Status::InvalidArgument("EBV of non-literal");
  }
  if (t.datatype == rdf::vocab::kXsdBoolean) return t.lexical == "true";
  if (t.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double v, t.AsDouble());
    return v != 0.0;
  }
  return !t.lexical.empty();
}

Result<int> CompareTerms(const Term& a, const Term& b) {
  if (a.IsNumericLiteral() && b.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double x, a.AsDouble());
    LODVIZ_ASSIGN_OR_RETURN(double y, b.AsDouble());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.IsTemporalLiteral() && b.IsTemporalLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(int64_t x, a.AsEpochSeconds());
    LODVIZ_ASSIGN_OR_RETURN(int64_t y, b.AsEpochSeconds());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int c = a.lexical.compare(b.lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

Result<Term> EvalExpr(const CompiledExpr& e, const rdf::Dictionary& dict,
                      const TermId* row) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return e.literal;
    case Expr::Kind::kVar: {
      if (e.slot == kNoSlot || row[e.slot] == kInvalidTermId) {
        return Status::NotFound("unbound variable");
      }
      return dict.term(row[e.slot]);
    }
    case Expr::Kind::kBinary:
      return EvalBinary(e, dict, row);
    case Expr::Kind::kUnary: {
      LODVIZ_ASSIGN_OR_RETURN(Term t, EvalExpr(e.args[0], dict, row));
      if (e.un_op == UnOp::kNot) {
        LODVIZ_ASSIGN_OR_RETURN(bool b, EffectiveBool(t));
        return BoolTerm(!b);
      }
      LODVIZ_ASSIGN_OR_RETURN(double v, t.AsDouble());
      return Term::DoubleLiteral(-v);
    }
    case Expr::Kind::kFunc:
      return EvalFunc(e, dict, row);
  }
  return Status::Internal("unhandled expr kind");
}

bool PassesFilter(const CompiledExpr& e, const rdf::Dictionary& dict,
                  const TermId* row) {
  Result<Term> t = EvalExpr(e, dict, row);
  if (!t.ok()) return false;
  Result<bool> b = EffectiveBool(t.ValueOrDie());
  return b.ok() && b.ValueOrDie();
}

BindingTable Executor::EvalBgp(const std::vector<PatternStep>& steps,
                               BindingTable seeds) {
  if (steps.empty()) return seeds;
  LODVIZ_TRACE_SPAN("sparql.bgp");

  BindingTable current = std::move(seeds);
  for (const PatternStep& st : steps) {
    BindingTable next(width_);
    if (!st.dead && current.num_rows() > 0) {
      // Solutions extend independently; per-chunk outputs concatenate in
      // chunk order, so `next` is ordered exactly as the serial loop would
      // produce it. Matches are copied out of the Scan callback so the
      // source's scan lock is held only for the index walk, not the
      // binding work.
      next = exec::ParallelReduce<BindingTable>(
          0, current.num_rows(), 8,
          [&](size_t cb, size_t ce) {
            BindingTable out(width_);
            std::vector<rdf::Triple> matches;
            std::vector<TermId> extended(width_);
            for (size_t si = cb; si < ce; ++si) {
              const TermId* sol = current.row(si);
              rdf::TriplePattern pat(
                  st.s_slot == kNoSlot ? st.s_id : sol[st.s_slot],
                  st.p_slot == kNoSlot ? st.p_id : sol[st.p_slot],
                  st.o_slot == kNoSlot ? st.o_id : sol[st.o_slot]);
              matches.clear();
              source_->Scan(pat, [&](const rdf::Triple& t) {
                matches.push_back(t);
                return true;
              });
              for (const rdf::Triple& t : matches) {
                std::copy(sol, sol + width_, extended.begin());
                bool ok = true;
                auto bind = [&](SlotId slot, TermId value) {
                  if (slot == kNoSlot) return;
                  TermId& cell = extended[slot];
                  if (cell == kInvalidTermId) {
                    cell = value;
                  } else if (cell != value) {
                    ok = false;
                  }
                };
                bind(st.s_slot, t.s);
                if (ok) bind(st.p_slot, t.p);
                if (ok) bind(st.o_slot, t.o);
                if (ok) out.AppendRow(extended.data());
              }
            }
            return out;
          },
          [](BindingTable& acc, BindingTable&& rhs) {
            acc.Append(std::move(rhs));
          });
    }
    intermediate_rows_ += next.num_rows();
    SparqlMetrics::Get().op_join_rows.Increment(next.num_rows());
    current = std::move(next);
    if (current.num_rows() == 0) break;
  }
  return current;
}

BindingTable Executor::EvalGroup(const GroupPlan& plan, BindingTable seeds) {
  BindingTable solutions = EvalBgp(plan.steps, std::move(seeds));

  if (!plan.union_branches.empty()) {
    BindingTable unioned(width_);
    for (const GroupPlan& branch : plan.union_branches) {
      BindingTable branch_seeds(width_);
      branch_seeds.Reserve(solutions.num_rows());
      for (size_t i = 0; i < solutions.num_rows(); ++i) {
        branch_seeds.AppendRow(solutions.row(i));
      }
      unioned.Append(EvalGroup(branch, std::move(branch_seeds)));
    }
    solutions = std::move(unioned);
    SparqlMetrics::Get().op_union_rows.Increment(solutions.num_rows());
  }

  for (const GroupPlan& opt : plan.optionals) {
    BindingTable next(width_);
    for (size_t i = 0; i < solutions.num_rows(); ++i) {
      BindingTable seed(width_);
      seed.AppendRow(solutions.row(i));
      BindingTable extended = EvalGroup(opt, std::move(seed));
      if (extended.num_rows() == 0) {
        next.AppendRow(solutions.row(i));
      } else {
        next.Append(std::move(extended));
      }
    }
    solutions = std::move(next);
    SparqlMetrics::Get().op_optional_rows.Increment(solutions.num_rows());
  }

  if (!plan.filters.empty() && solutions.num_rows() > 0) {
    const size_t before = solutions.num_rows();
    const rdf::Dictionary& dict = source_->dict();
    // Filters are pure per solution (dictionary reads are const), so
    // chunks evaluate independently and keep order on concatenation.
    BindingTable kept = exec::ParallelReduce<BindingTable>(
        0, before, 64,
        [&](size_t cb, size_t ce) {
          BindingTable out(width_);
          for (size_t si = cb; si < ce; ++si) {
            const TermId* row = solutions.row(si);
            bool pass = true;
            for (const CompiledExpr& f : plan.filters) {
              if (!PassesFilter(f, dict, row)) {
                pass = false;
                break;
              }
            }
            if (pass) out.AppendRow(row);
          }
          return out;
        },
        [](BindingTable& acc, BindingTable&& rhs) {
          acc.Append(std::move(rhs));
        });
    solutions = std::move(kept);
    SparqlMetrics::Get().op_filter_dropped.Increment(before -
                                                     solutions.num_rows());
  }
  return solutions;
}

}  // namespace lodviz::sparql
