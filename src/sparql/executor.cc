#include "sparql/executor.h"

#include <algorithm>
#include <unordered_map>

#include "exec/parallel.h"
#include "obs/trace.h"
#include "rdf/vocab.h"

namespace lodviz::sparql {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

SparqlMetrics& SparqlMetrics::Get() {
  obs::MetricRegistry& r = obs::MetricRegistry::Global();
  static SparqlMetrics m{r.GetCounter("sparql.queries"),
                         r.GetCounter("sparql.intermediate_rows"),
                         r.GetCounter("sparql.rows_out"),
                         r.GetCounter("sparql.op.join_rows"),
                         r.GetCounter("sparql.op.filter_dropped"),
                         r.GetCounter("sparql.op.filter_errors"),
                         r.GetCounter("sparql.op.optional_rows"),
                         r.GetCounter("sparql.op.union_rows"),
                         r.GetCounter("sparql.op.hash_joins"),
                         r.GetCounter("sparql.op.hash_build_rows"),
                         r.GetHistogram("sparql.execute_us")};
  return m;
}

namespace {

Term BoolTerm(bool b) { return Term::BoolLiteral(b); }

/// A value flowing through expression evaluation without materializing a
/// string-carrying Term per row. Bound variables and plan-time constants
/// are references to already-interned terms plus their decoded cache entry
/// (kRef); computed numerics and booleans stay machine values (kNum,
/// kBool); only the string-producing functions (STR/LANG/DATATYPE) build a
/// fresh Term (kOwned).
struct SlimVal {
  enum class Kind : uint8_t { kRef, kNum, kBool, kOwned };
  Kind kind = Kind::kRef;
  const Term* term = nullptr;              // kRef
  const rdf::DecodedValue* dec = nullptr;  // kRef
  TermId id = kInvalidTermId;              // kRef: 0 for plan constants
  double num = 0.0;                        // kNum
  bool b = false;                          // kBool
  Term owned;                              // kOwned

  static SlimVal Ref(const Term* t, const rdf::DecodedValue* d, TermId i) {
    SlimVal v;
    v.kind = Kind::kRef;
    v.term = t;
    v.dec = d;
    v.id = i;
    return v;
  }
  static SlimVal Num(double x) {
    SlimVal v;
    v.kind = Kind::kNum;
    v.num = x;
    return v;
  }
  static SlimVal Bool(bool x) {
    SlimVal v;
    v.kind = Kind::kBool;
    v.b = x;
    return v;
  }
  static SlimVal Owned(Term t) {
    SlimVal v;
    v.kind = Kind::kOwned;
    v.owned = std::move(t);
    return v;
  }
};

/// Term view of `v`. Only computed values (kNum/kBool) build a Term, into
/// `*scratch`; references are returned as-is, so the common paths stay
/// allocation-free.
const Term* SlimTermPtr(const SlimVal& v, Term* scratch) {
  switch (v.kind) {
    case SlimVal::Kind::kRef:
      return v.term;
    case SlimVal::Kind::kOwned:
      return &v.owned;
    case SlimVal::Kind::kNum:
      *scratch = Term::DoubleLiteral(v.num);
      return scratch;
    case SlimVal::Kind::kBool:
      *scratch = BoolTerm(v.b);
      return scratch;
  }
  return scratch;
}

bool SlimIsNumeric(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kNum:
      return true;
    case SlimVal::Kind::kBool:
      return false;
    case SlimVal::Kind::kRef:
      // kNum in the cache implies IsNumericLiteral; kNone does not imply
      // the opposite (unparseable typed numerics decode to kNone).
      return v.dec->kind == rdf::DecodedValue::Kind::kNum ||
             v.term->IsNumericLiteral();
    case SlimVal::Kind::kOwned:
      return v.owned.IsNumericLiteral();
  }
  return false;
}

bool SlimIsTemporal(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kRef:
      return v.dec->kind == rdf::DecodedValue::Kind::kTime ||
             v.term->IsTemporalLiteral();
    case SlimVal::Kind::kOwned:
      return v.owned.IsTemporalLiteral();
    default:
      return false;
  }
}

/// AsDouble with the decoded fast path; everything the cache could not
/// decode takes the exact Term slow path (including its errors).
Result<double> SlimNum(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kNum:
      return v.num;
    case SlimVal::Kind::kRef:
      if (v.dec->kind == rdf::DecodedValue::Kind::kNum) return v.dec->num;
      return v.term->AsDouble();
    case SlimVal::Kind::kOwned:
      return v.owned.AsDouble();
    case SlimVal::Kind::kBool:
      return BoolTerm(v.b).AsDouble();
  }
  return Status::Internal("unhandled slim kind");
}

Result<int64_t> SlimEpoch(const SlimVal& v) {
  if (v.kind == SlimVal::Kind::kRef &&
      v.dec->kind == rdf::DecodedValue::Kind::kTime) {
    return v.dec->epoch;
  }
  Term scratch;
  return SlimTermPtr(v, &scratch)->AsEpochSeconds();
}

/// SPARQL effective boolean value (mirrors EffectiveBool on Terms).
Result<bool> SlimBool(const SlimVal& v) {
  switch (v.kind) {
    case SlimVal::Kind::kBool:
      return v.b;
    case SlimVal::Kind::kNum:
      return v.num != 0.0;
    case SlimVal::Kind::kRef:
      switch (v.dec->kind) {
        case rdf::DecodedValue::Kind::kBool:
          return v.dec->b;
        case rdf::DecodedValue::Kind::kNum:
          return v.dec->num != 0.0;
        case rdf::DecodedValue::Kind::kTime:
          return true;  // a parsed temporal literal has a non-empty lexical
        case rdf::DecodedValue::Kind::kNone:
          return EffectiveBool(*v.term);
      }
      return EffectiveBool(*v.term);
    case SlimVal::Kind::kOwned:
      return EffectiveBool(v.owned);
  }
  return Status::Internal("unhandled slim kind");
}

/// Three-way comparison with the semantics of CompareTerms, taking the
/// decoded fast path wherever the cache has a value.
Result<int> SlimCompare(const SlimVal& a, const SlimVal& b) {
  if (SlimIsNumeric(a) && SlimIsNumeric(b)) {
    LODVIZ_ASSIGN_OR_RETURN(double x, SlimNum(a));
    LODVIZ_ASSIGN_OR_RETURN(double y, SlimNum(b));
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (SlimIsTemporal(a) && SlimIsTemporal(b)) {
    LODVIZ_ASSIGN_OR_RETURN(int64_t x, SlimEpoch(a));
    LODVIZ_ASSIGN_OR_RETURN(int64_t y, SlimEpoch(b));
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  Term sa, sb;
  int c = SlimTermPtr(a, &sa)->lexical.compare(SlimTermPtr(b, &sb)->lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

/// Structural term equality (the non-numeric branch of = and !=). Two
/// valid dictionary ids compare directly: interning is injective, so equal
/// ids mean equal terms and vice versa within one dictionary.
bool SlimTermEq(const SlimVal& a, const SlimVal& b) {
  if (a.kind == SlimVal::Kind::kRef && b.kind == SlimVal::Kind::kRef &&
      a.id != kInvalidTermId && b.id != kInvalidTermId) {
    return a.id == b.id;
  }
  if (a.kind == SlimVal::Kind::kBool && b.kind == SlimVal::Kind::kBool) {
    return a.b == b.b;
  }
  Term sa, sb;
  return *SlimTermPtr(a, &sa) == *SlimTermPtr(b, &sb);
}

Result<SlimVal> EvalSlim(const CompiledExpr& e, const rdf::Dictionary& dict,
                         const TermId* row);

Result<SlimVal> EvalSlimBinary(const CompiledExpr& e,
                               const rdf::Dictionary& dict,
                               const TermId* row) {
  if (e.bin_op == BinOp::kAnd || e.bin_op == BinOp::kOr) {
    LODVIZ_ASSIGN_OR_RETURN(SlimVal lhs, EvalSlim(e.args[0], dict, row));
    LODVIZ_ASSIGN_OR_RETURN(bool l, SlimBool(lhs));
    if (e.bin_op == BinOp::kAnd && !l) return SlimVal::Bool(false);
    if (e.bin_op == BinOp::kOr && l) return SlimVal::Bool(true);
    LODVIZ_ASSIGN_OR_RETURN(SlimVal rhs, EvalSlim(e.args[1], dict, row));
    LODVIZ_ASSIGN_OR_RETURN(bool r, SlimBool(rhs));
    return SlimVal::Bool(r);
  }

  LODVIZ_ASSIGN_OR_RETURN(SlimVal lhs, EvalSlim(e.args[0], dict, row));
  LODVIZ_ASSIGN_OR_RETURN(SlimVal rhs, EvalSlim(e.args[1], dict, row));

  switch (e.bin_op) {
    case BinOp::kEq:
    case BinOp::kNe: {
      bool eq;
      if (SlimIsNumeric(lhs) && SlimIsNumeric(rhs)) {
        LODVIZ_ASSIGN_OR_RETURN(int c, SlimCompare(lhs, rhs));
        eq = c == 0;
      } else {
        eq = SlimTermEq(lhs, rhs);
      }
      return SlimVal::Bool(e.bin_op == BinOp::kEq ? eq : !eq);
    }
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe: {
      LODVIZ_ASSIGN_OR_RETURN(int c, SlimCompare(lhs, rhs));
      switch (e.bin_op) {
        case BinOp::kLt:
          return SlimVal::Bool(c < 0);
        case BinOp::kLe:
          return SlimVal::Bool(c <= 0);
        case BinOp::kGt:
          return SlimVal::Bool(c > 0);
        default:
          return SlimVal::Bool(c >= 0);
      }
    }
    case BinOp::kAdd:
    case BinOp::kSub:
    case BinOp::kMul:
    case BinOp::kDiv: {
      LODVIZ_ASSIGN_OR_RETURN(double x, SlimNum(lhs));
      LODVIZ_ASSIGN_OR_RETURN(double y, SlimNum(rhs));
      switch (e.bin_op) {
        case BinOp::kAdd:
          return SlimVal::Num(x + y);
        case BinOp::kSub:
          return SlimVal::Num(x - y);
        case BinOp::kMul:
          return SlimVal::Num(x * y);
        default:
          if (y == 0.0) return Status::InvalidArgument("division by zero");
          return SlimVal::Num(x / y);
      }
    }
    default:
      return Status::Internal("unhandled binary op");
  }
}

Result<SlimVal> EvalSlimFunc(const CompiledExpr& e, const rdf::Dictionary& dict,
                             const TermId* row) {
  auto arg = [&](size_t i) -> Result<SlimVal> {
    return EvalSlim(e.args[i], dict, row);
  };
  switch (e.func) {
    case FuncOp::kBound: {
      if (e.args.size() != 1 || e.args[0].kind != Expr::Kind::kVar) {
        return Status::InvalidArgument("BOUND needs a variable");
      }
      SlotId slot = e.args[0].slot;
      return SlimVal::Bool(slot != kNoSlot && row[slot] != kInvalidTermId);
    }
    case FuncOp::kIsIri: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Bool(SlimTermPtr(t, &scratch)->is_iri());
    }
    case FuncOp::kIsLiteral: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Bool(SlimTermPtr(t, &scratch)->is_literal());
    }
    case FuncOp::kIsBlank: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Bool(SlimTermPtr(t, &scratch)->is_blank());
    }
    case FuncOp::kStr: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Owned(Term::Literal(SlimTermPtr(t, &scratch)->lexical));
    }
    case FuncOp::kContains: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal a, arg(0));
      LODVIZ_ASSIGN_OR_RETURN(SlimVal b, arg(1));
      Term sa, sb;
      return SlimVal::Bool(SlimTermPtr(a, &sa)->lexical.find(
                               SlimTermPtr(b, &sb)->lexical) !=
                           std::string::npos);
    }
    case FuncOp::kStrStarts: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal a, arg(0));
      LODVIZ_ASSIGN_OR_RETURN(SlimVal b, arg(1));
      Term sa, sb;
      return SlimVal::Bool(SlimTermPtr(a, &sa)->lexical.rfind(
                               SlimTermPtr(b, &sb)->lexical, 0) == 0);
    }
    case FuncOp::kLang: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      return SlimVal::Owned(Term::Literal(SlimTermPtr(t, &scratch)->language));
    }
    case FuncOp::kDatatype: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, arg(0));
      Term scratch;
      const Term* tp = SlimTermPtr(t, &scratch);
      if (!tp->is_literal()) {
        return Status::InvalidArgument("DATATYPE of non-literal");
      }
      return SlimVal::Owned(Term::Iri(
          tp->datatype.empty() ? rdf::vocab::kXsdString : tp->datatype));
    }
  }
  return Status::Internal("unhandled function");
}

Result<SlimVal> EvalSlim(const CompiledExpr& e, const rdf::Dictionary& dict,
                         const TermId* row) {
  switch (e.kind) {
    case Expr::Kind::kLiteral:
      return SlimVal::Ref(&e.literal, &e.lit_decoded, kInvalidTermId);
    case Expr::Kind::kVar: {
      if (e.slot == kNoSlot || row[e.slot] == kInvalidTermId) {
        return Status::NotFound("unbound variable");
      }
      const TermId id = row[e.slot];
      return SlimVal::Ref(&dict.term(id), &dict.decoded(id), id);
    }
    case Expr::Kind::kBinary:
      return EvalSlimBinary(e, dict, row);
    case Expr::Kind::kUnary: {
      LODVIZ_ASSIGN_OR_RETURN(SlimVal t, EvalSlim(e.args[0], dict, row));
      if (e.un_op == UnOp::kNot) {
        LODVIZ_ASSIGN_OR_RETURN(bool b, SlimBool(t));
        return SlimVal::Bool(!b);
      }
      LODVIZ_ASSIGN_OR_RETURN(double v, SlimNum(t));
      return SlimVal::Num(-v);
    }
    case Expr::Kind::kFunc:
      return EvalSlimFunc(e, dict, row);
  }
  return Status::Internal("unhandled expr kind");
}

}  // namespace

Result<bool> EffectiveBool(const Term& t) {
  if (!t.is_literal()) {
    return Status::InvalidArgument("EBV of non-literal");
  }
  if (t.datatype == rdf::vocab::kXsdBoolean) return t.lexical == "true";
  if (t.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double v, t.AsDouble());
    return v != 0.0;
  }
  return !t.lexical.empty();
}

Result<int> CompareTerms(const Term& a, const Term& b) {
  if (a.IsNumericLiteral() && b.IsNumericLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(double x, a.AsDouble());
    LODVIZ_ASSIGN_OR_RETURN(double y, b.AsDouble());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  if (a.IsTemporalLiteral() && b.IsTemporalLiteral()) {
    LODVIZ_ASSIGN_OR_RETURN(int64_t x, a.AsEpochSeconds());
    LODVIZ_ASSIGN_OR_RETURN(int64_t y, b.AsEpochSeconds());
    if (x < y) return -1;
    if (x > y) return 1;
    return 0;
  }
  int c = a.lexical.compare(b.lexical);
  return c < 0 ? -1 : (c > 0 ? 1 : 0);
}

Result<Term> EvalExpr(const CompiledExpr& e, const rdf::Dictionary& dict,
                      const TermId* row) {
  LODVIZ_ASSIGN_OR_RETURN(SlimVal v, EvalSlim(e, dict, row));
  switch (v.kind) {
    case SlimVal::Kind::kRef:
      return *v.term;
    case SlimVal::Kind::kOwned:
      return std::move(v.owned);
    case SlimVal::Kind::kNum:
      return Term::DoubleLiteral(v.num);
    case SlimVal::Kind::kBool:
      return BoolTerm(v.b);
  }
  return Status::Internal("unhandled slim kind");
}

bool PassesFilter(const CompiledExpr& e, const rdf::Dictionary& dict,
                  const TermId* row) {
  Result<SlimVal> v = EvalSlim(e, dict, row);
  if (!v.ok()) {
    SparqlMetrics::Get().op_filter_errors.Increment();
    return false;
  }
  Result<bool> b = SlimBool(v.ValueOrDie());
  if (!b.ok()) {
    SparqlMetrics::Get().op_filter_errors.Increment();
    return false;
  }
  return b.ValueOrDie();
}

namespace {

/// Hash-join key: the runtime TermIds at the pattern's statically-bound
/// join slots; kInvalidTermId at every other position.
struct JoinKey {
  TermId a = kInvalidTermId;
  TermId b = kInvalidTermId;
  TermId c = kInvalidTermId;
  bool operator==(const JoinKey& o) const {
    return a == o.a && b == o.b && c == o.c;
  }
};

struct JoinKeyHash {
  size_t operator()(const JoinKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.a) * 0x9E3779B97F4A7C15ULL;
    h ^= static_cast<uint64_t>(k.b) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    h ^= static_cast<uint64_t>(k.c) + 0x9E3779B97F4A7C15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

using JoinTable =
    std::unordered_map<JoinKey, std::vector<rdf::Triple>, JoinKeyHash>;

/// Build side of a hash-join step, shared verbatim by the row and batch
/// executors: one scan with the join slots wildcarded (only plan constants
/// stay fixed), bucketed on the key positions. Every bucket is then sorted
/// back into NLJ probe delivery order: the index a probe would pick is a
/// function of which positions are bound (SPO when the s position is, else
/// POS when p is, else SPO for o-only — both backends agree, see DESIGN.md
/// §4.5), and a sorted bucket filtered by the runtime bindings stays in
/// that order. This is what keeps hash-join output bit-identical to NLJ
/// output in both execution modes.
JoinTable BuildJoinTable(const rdf::TripleSource& source,
                         const PatternStep& st) {
  SparqlMetrics::Get().op_hash_joins.Increment();
  rdf::TriplePattern build_pat(
      st.s_slot == kNoSlot ? st.s_id : kInvalidTermId,
      st.p_slot == kNoSlot ? st.p_id : kInvalidTermId,
      st.o_slot == kNoSlot ? st.o_id : kInvalidTermId);
  JoinTable table;
  uint64_t build_rows = 0;
  source.Scan(build_pat, [&](const rdf::Triple& t) {
    ++build_rows;
    JoinKey k{st.s_bound ? t.s : kInvalidTermId,
              st.p_bound ? t.p : kInvalidTermId,
              st.o_bound ? t.o : kInvalidTermId};
    table[k].push_back(t);
    return true;
  });
  SparqlMetrics::Get().op_hash_build_rows.Increment(build_rows);

  const bool s_fixed = st.s_slot == kNoSlot || st.s_bound;
  const bool p_fixed = st.p_slot == kNoSlot || st.p_bound;
  for (auto& [key, bucket] : table) {
    if (s_fixed || !p_fixed) {
      std::sort(bucket.begin(), bucket.end(), rdf::OrderSpo());
    } else {
      std::sort(bucket.begin(), bucket.end(), rdf::OrderPos());
    }
  }
  return table;
}

}  // namespace

obs::OperatorProfile BuildProfileSkeleton(const GroupPlan& plan) {
  obs::OperatorProfile node;
  node.op = "group";
  node.children.reserve(plan.steps.size() + plan.union_branches.size() +
                        plan.optionals.size() +
                        (plan.filters.empty() ? 0 : 1));
  for (const PatternStep& st : plan.steps) {
    obs::OperatorProfile& step = node.children.emplace_back();
    step.op = st.strategy == JoinStrategy::kHash ? "hash-join" : "scan";
    step.label = st.label;
    step.est_rows = st.est_rows;
  }
  for (const GroupPlan& u : plan.union_branches) {
    obs::OperatorProfile& branch =
        node.children.emplace_back(BuildProfileSkeleton(u));
    branch.op = "union";
  }
  for (const GroupPlan& o : plan.optionals) {
    obs::OperatorProfile& opt =
        node.children.emplace_back(BuildProfileSkeleton(o));
    opt.op = "optional";
  }
  if (!plan.filters.empty()) {
    obs::OperatorProfile& filter = node.children.emplace_back();
    filter.op = "filter";
    filter.label = "x" + std::to_string(plan.filters.size());
  }
  return node;
}

bool Executor::CheckBudget() {
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (budget_.max_intermediate_rows != 0 &&
      intermediate_rows_ > budget_.max_intermediate_rows) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return TimeExpired();
}

bool Executor::TimeExpired() {
  if (budget_.time_budget_us < 0) return false;
  if (exhausted_.load(std::memory_order_relaxed)) return true;
  if (budget_sw_.ElapsedMicros() >
      static_cast<double>(budget_.time_budget_us)) {
    exhausted_.store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

BindingTable Executor::EvalBgp(const std::vector<PatternStep>& steps,
                               const BindingTable& seeds,
                               obs::OperatorProfile* prof) {
  if (steps.empty()) return seeds;
  LODVIZ_TRACE_SPAN("sparql.bgp");
  // One clock read per step when a time budget is set; zero otherwise.
  const bool timed = budget_.time_budget_us >= 0;

  const BindingTable* input = &seeds;
  BindingTable current;
  size_t step_index = 0;
  for (const PatternStep& st : steps) {
    // Per-operator instrumentation: with profiling off this whole block is
    // the construction branch below plus one null test at Finish — no
    // clock reads, nothing per row.
    obs::OperatorTimer timer(
        prof == nullptr ? nullptr : &prof->children[step_index],
        input->num_rows());
    ++step_index;
    BindingTable next(width_);
    if (!st.dead && input->num_rows() > 0) {
      // Extends `sol` with one matching triple: bind pattern variables,
      // reject on conflict with an existing binding. Shared verbatim by
      // both join strategies so kept rows (and their order within one
      // solution's match list) are identical by construction.
      auto extend = [&](BindingTable& out, const TermId* sol,
                        std::vector<TermId>& extended, const rdf::Triple& t) {
        std::copy(sol, sol + width_, extended.begin());
        bool ok = true;
        auto bind = [&](SlotId slot, TermId value) {
          if (slot == kNoSlot) return;
          TermId& cell = extended[slot];
          if (cell == kInvalidTermId) {
            cell = value;
          } else if (cell != value) {
            ok = false;
          }
        };
        bind(st.s_slot, t.s);
        if (ok) bind(st.p_slot, t.p);
        if (ok) bind(st.o_slot, t.o);
        if (ok) out.AppendRow(extended.data());
      };

      // Index nested-loop for one solution: probe the source with the
      // runtime-substituted pattern. Matches are copied out of the Scan
      // callback so the source is held only for the index walk, not the
      // binding work.
      auto nlj_row = [&](BindingTable& out, const TermId* sol,
                         std::vector<rdf::Triple>& matches,
                         std::vector<TermId>& extended) {
        rdf::TriplePattern pat(
            st.s_slot == kNoSlot ? st.s_id : sol[st.s_slot],
            st.p_slot == kNoSlot ? st.p_id : sol[st.p_slot],
            st.o_slot == kNoSlot ? st.o_id : sol[st.o_slot]);
        matches.clear();
        source_->Scan(pat, [&](const rdf::Triple& t) {
          matches.push_back(t);
          return true;
        });
        for (const rdf::Triple& t : matches) extend(out, sol, extended, t);
      };

      auto combine = [](BindingTable& acc, BindingTable&& rhs) {
        acc.Append(std::move(rhs));
      };

      if (st.strategy == JoinStrategy::kHash) {
        const JoinTable table = BuildJoinTable(*source_, st);

        next = exec::ParallelReduce<BindingTable>(
            0, input->num_rows(), 8,
            [&](size_t cb, size_t ce) {
              BindingTable out(width_);
              if (timed && TimeExpired()) return out;
              std::vector<rdf::Triple> matches;
              std::vector<TermId> extended(width_);
              for (size_t si = cb; si < ce; ++si) {
                const TermId* sol = input->row(si);
                // The planner's "certainly bound" is a static property: a
                // key slot can still be unbound at runtime (seeds from an
                // outer group), where NLJ semantics treat it as a
                // wildcard. Fall back to the index probe for such rows.
                if ((st.s_bound && sol[st.s_slot] == kInvalidTermId) ||
                    (st.p_bound && sol[st.p_slot] == kInvalidTermId) ||
                    (st.o_bound && sol[st.o_slot] == kInvalidTermId)) {
                  nlj_row(out, sol, matches, extended);
                  continue;
                }
                JoinKey k{st.s_bound ? sol[st.s_slot] : kInvalidTermId,
                          st.p_bound ? sol[st.p_slot] : kInvalidTermId,
                          st.o_bound ? sol[st.o_slot] : kInvalidTermId};
                auto it = table.find(k);
                if (it == table.end()) continue;
                for (const rdf::Triple& t : it->second) {
                  extend(out, sol, extended, t);
                }
              }
              return out;
            },
            combine);
      } else {
        // Solutions extend independently; per-chunk outputs concatenate
        // in chunk order, so `next` is ordered exactly as the serial loop
        // would produce it.
        next = exec::ParallelReduce<BindingTable>(
            0, input->num_rows(), 8,
            [&](size_t cb, size_t ce) {
              BindingTable out(width_);
              if (timed && TimeExpired()) return out;
              std::vector<rdf::Triple> matches;
              std::vector<TermId> extended(width_);
              for (size_t si = cb; si < ce; ++si) {
                nlj_row(out, input->row(si), matches, extended);
              }
              return out;
            },
            combine);
      }
    }
    intermediate_rows_ += next.num_rows();
    SparqlMetrics::Get().op_join_rows.Increment(next.num_rows());
    timer.Finish(next.num_rows());
    current = std::move(next);
    input = &current;
    if (current.num_rows() == 0) break;
    // Budget check per step (driving thread): a tripped budget truncates
    // the result; the engine discards it and reports kResourceExhausted.
    if (CheckBudget()) return BindingTable(width_);
  }
  return current;
}

BindingTable Executor::EvalGroup(const GroupPlan& plan,
                                 const BindingTable& seeds,
                                 obs::OperatorProfile* prof) {
  BindingTable solutions = EvalBgp(plan.steps, seeds, prof);

  // Child-node layout mirrors BuildProfileSkeleton:
  // [steps...][unions...][optionals...][filter?].
  size_t child_index = plan.steps.size();

  if (!plan.union_branches.empty()) {
    BindingTable unioned(width_);
    for (const GroupPlan& branch : plan.union_branches) {
      if (CheckBudget()) return BindingTable(width_);
      obs::OperatorProfile* branch_prof =
          prof == nullptr ? nullptr : &prof->children[child_index];
      ++child_index;
      obs::OperatorTimer timer(branch_prof);
      BindingTable rows = EvalGroup(branch, solutions, branch_prof);
      timer.Finish(rows.num_rows());
      unioned.Append(std::move(rows));
    }
    solutions = std::move(unioned);
    SparqlMetrics::Get().op_union_rows.Increment(solutions.num_rows());
  }

  if (!plan.optionals.empty()) {
    // One reusable seed table for the whole loop; each iteration clears
    // it and appends the current row instead of allocating a fresh table.
    BindingTable seed(width_);
    for (const GroupPlan& opt : plan.optionals) {
      obs::OperatorProfile* opt_prof =
          prof == nullptr ? nullptr : &prof->children[child_index];
      ++child_index;
      obs::OperatorTimer timer(opt_prof, solutions.num_rows());
      BindingTable next(width_);
      next.Reserve(solutions.num_rows());
      for (size_t i = 0; i < solutions.num_rows(); ++i) {
        if (CheckBudget()) return BindingTable(width_);
        seed.Clear();
        seed.AppendRow(solutions.row(i));
        // Inner operators of the optional accumulate across the per-row
        // re-evaluations (their `invocations` counts the re-runs); the
        // optional node itself carries the whole loop's wall time.
        BindingTable extended = EvalGroup(opt, seed, opt_prof);
        if (extended.num_rows() == 0) {
          next.AppendRow(solutions.row(i));
        } else {
          next.Append(std::move(extended));
        }
      }
      timer.Finish(next.num_rows());
      solutions = std::move(next);
      SparqlMetrics::Get().op_optional_rows.Increment(solutions.num_rows());
    }
  }

  if (!plan.filters.empty() && solutions.num_rows() > 0) {
    obs::OperatorProfile* filter_prof =
        prof == nullptr ? nullptr : &prof->children.back();
    obs::OperatorTimer timer(filter_prof, solutions.num_rows());
    const size_t before = solutions.num_rows();
    const rdf::Dictionary& dict = source_->dict();
    // Filters are pure per solution (dictionary reads are const), so
    // chunks evaluate independently and keep order on concatenation.
    const bool timed = budget_.time_budget_us >= 0;
    BindingTable kept = exec::ParallelReduce<BindingTable>(
        0, before, 64,
        [&](size_t cb, size_t ce) {
          BindingTable out(width_);
          if (timed && TimeExpired()) return out;
          for (size_t si = cb; si < ce; ++si) {
            const TermId* row = solutions.row(si);
            bool pass = true;
            for (const CompiledExpr& f : plan.filters) {
              if (!PassesFilter(f, dict, row)) {
                pass = false;
                break;
              }
            }
            if (pass) out.AppendRow(row);
          }
          return out;
        },
        [](BindingTable& acc, BindingTable&& rhs) {
          acc.Append(std::move(rhs));
        });
    solutions = std::move(kept);
    SparqlMetrics::Get().op_filter_dropped.Increment(before -
                                                     solutions.num_rows());
    timer.Finish(solutions.num_rows());
  }
  return solutions;
}

// ---------------------------------------------------------------------------
// Vectorized (batch) execution. The contract with the row engine above is
// bit-identical output: same logical rows in the same order, same plans,
// same metric deltas. Every structural choice below — chunk grains, chunk
// concatenation order, per-bucket sorting, filter error accounting — exists
// to preserve that contract; see DESIGN.md §4.9 before changing any of it.
// ---------------------------------------------------------------------------

namespace {

/// Applies a normalized BatchFilterSpec comparison the way SlimCompare
/// would: three-way result first, then the operator on it. The detour
/// through `c` is deliberate — SlimCompare maps NaN operands to c == 0, so
/// kLe/kGe/kEq hold for NaN exactly as in the row engine, where a direct
/// `x <= rhs` would not.
bool NumPasses(double x, BinOp op, double rhs) {
  const int c = x < rhs ? -1 : (x > rhs ? 1 : 0);
  switch (op) {
    case BinOp::kEq:
      return c == 0;
    case BinOp::kNe:
      return c != 0;
    case BinOp::kLt:
      return c < 0;
    case BinOp::kLe:
      return c <= 0;
    case BinOp::kGt:
      return c > 0;
    default:
      return c >= 0;  // kGe; other ops never specialize
  }
}

/// Packs output rows into ColumnBatches of at most kBatchRows, appended to
/// a caller-owned list. One sink per ParallelReduce chunk, so chunk
/// outputs concatenate in chunk order just like row-mode BindingTables.
class BatchSink {
 public:
  BatchSink(size_t width, std::vector<ColumnBatch>* out)
      : width_(width), out_(out) {}

  void AppendRow(const TermId* row) { Open()->AppendRow(row); }

  /// AppendRun split across batch boundaries: each slice advances the
  /// per-column value pointers by the rows already written.
  void AppendRun(const TermId* sol, size_t n,
                 const ColumnBatch::RunColumn* var, size_t num_var) {
    size_t off = 0;
    while (n > 0) {
      ColumnBatch* cur = Open();
      const size_t m = std::min(n, kBatchRows - cur->rows());
      ColumnBatch::RunColumn adj[3];
      for (size_t j = 0; j < num_var; ++j) {
        adj[j] = {var[j].slot, var[j].values + off};
      }
      cur->AppendRun(sol, m, adj, num_var);
      off += m;
      n -= m;
    }
  }

  /// Splices whole batches (an OPTIONAL subtree's output) into the list.
  /// Spliced batches may carry selections, so subsequent appends open a
  /// fresh batch rather than writing into them.
  void AppendBatchList(std::vector<ColumnBatch>&& list) {
    for (ColumnBatch& b : list) {
      if (b.active() > 0) out_->push_back(std::move(b));
    }
    open_ = false;
  }

 private:
  ColumnBatch* Open() {
    if (!open_ || out_->back().rows() >= kBatchRows) {
      out_->emplace_back(width_);
      open_ = true;
    }
    return &out_->back();
  }

  size_t width_;
  std::vector<ColumnBatch>* out_;
  bool open_ = false;
};

/// Batch counterpart of the row engine's `extend` lambda: conflict-checks
/// one solution's match list and appends the survivors column-wise in one
/// run. The accept condition is computed per position up front (the
/// solution fixes what each pattern position must do), so the per-match
/// loop is a handful of integer compares; carried-over columns then append
/// as a run — O(1) while constant — instead of a per-row width_-wide copy.
class RunExtender {
 public:
  explicit RunExtender(const PatternStep& st) : st_(st) {}

  void Extend(BatchSink& sink, const TermId* sol, const rdf::Triple* matches,
              size_t n) {
    if (n == 0) return;
    const SlotId slots[3] = {st_.s_slot, st_.p_slot, st_.o_slot};
    // Per-position action for this solution: kSkip (constant position),
    // kCheckSol (slot already bound — match value must agree), kBind
    // (first unbound occurrence — emits a column), kCheckPrev (repeated
    // unbound slot — must agree with the earlier position's value). This
    // reproduces the row engine's bind() semantics including the
    // duplicate-slot case (?x ?p ?x).
    enum : uint8_t { kSkip, kCheckSol, kBind, kCheckPrev };
    uint8_t act[3];
    uint8_t prev_pos[3] = {0, 0, 0};
    SlotId bind_slots[3];
    uint8_t bind_pos[3];
    size_t num_bind = 0;
    for (int i = 0; i < 3; ++i) {
      const SlotId s = slots[i];
      if (s == kNoSlot) {
        act[i] = kSkip;
        continue;
      }
      if (sol[s] != kInvalidTermId) {
        act[i] = kCheckSol;
        continue;
      }
      int prev = -1;
      for (int j = 0; j < i; ++j) {
        if (slots[j] == s) {
          prev = j;
          break;
        }
      }
      if (prev >= 0) {
        act[i] = kCheckPrev;
        prev_pos[i] = static_cast<uint8_t>(prev);
        continue;
      }
      act[i] = kBind;
      bind_slots[num_bind] = s;
      bind_pos[num_bind] = static_cast<uint8_t>(i);
      ++num_bind;
    }

    for (size_t k = 0; k < num_bind; ++k) vals_[k].clear();
    size_t accepted = 0;
    for (size_t m = 0; m < n; ++m) {
      const TermId v[3] = {matches[m].s, matches[m].p, matches[m].o};
      bool ok = true;
      for (int i = 0; i < 3 && ok; ++i) {
        if (act[i] == kCheckSol) {
          ok = v[i] == sol[slots[i]];
        } else if (act[i] == kCheckPrev) {
          ok = v[i] == v[prev_pos[i]];
        }
      }
      if (!ok) continue;
      for (size_t k = 0; k < num_bind; ++k) vals_[k].push_back(v[bind_pos[k]]);
      ++accepted;
    }
    if (accepted == 0) return;
    ColumnBatch::RunColumn var[3];
    for (size_t k = 0; k < num_bind; ++k) {
      var[k] = {bind_slots[k], vals_[k].data()};
    }
    sink.AppendRun(sol, accepted, var, num_bind);
  }

 private:
  const PatternStep& st_;
  std::vector<TermId> vals_[3];  // reused across Extend calls within a chunk
};

}  // namespace

std::vector<ColumnBatch> Executor::EvalBgpBatches(
    const std::vector<PatternStep>& steps,
    const std::vector<ColumnBatch>& seeds, obs::OperatorProfile* prof) {
  if (steps.empty()) return seeds;
  LODVIZ_TRACE_SPAN("sparql.bgp");
  const bool timed = budget_.time_budget_us >= 0;

  const std::vector<ColumnBatch>* input = &seeds;
  std::vector<ColumnBatch> current;
  size_t step_index = 0;
  for (const PatternStep& st : steps) {
    const BatchListView view(*input);
    obs::OperatorProfile* step_prof =
        prof == nullptr ? nullptr : &prof->children[step_index];
    obs::OperatorTimer timer(step_prof, view.total());
    ++step_index;
    std::vector<ColumnBatch> next;
    if (!st.dead && view.total() > 0) {
      const bool hash = st.strategy == JoinStrategy::kHash;
      const JoinTable table =
          hash ? BuildJoinTable(*source_, st) : JoinTable();

      // Chunking mirrors the row engine exactly (logical rows, grain 8,
      // chunk-order concatenation), so the logical row order of `next` is
      // the row engine's row order by construction. Batch boundaries may
      // differ between the two modes and across thread counts; row order
      // never does.
      next = exec::ParallelReduce<std::vector<ColumnBatch>>(
          0, view.total(), 8,
          [&](size_t cb, size_t ce) {
            std::vector<ColumnBatch> out;
            if (timed && TimeExpired()) return out;
            BatchSink sink(width_, &out);
            RunExtender extender(st);
            std::vector<TermId> sol(width_);
            // Index nested-loop probe for one gathered solution. The
            // per-solution index walk is the NLJ fallback by design; the
            // source hands matches back as whole runs (index-resident for
            // the memory store, one decoded leaf per run on disk) and each
            // run extends into the column batch without an intermediate
            // copy — Extend is callable once per run per solution.
            auto nlj_probe = [&]() {
              rdf::TriplePattern pat(
                  st.s_slot == kNoSlot ? st.s_id : sol[st.s_slot],
                  st.p_slot == kNoSlot ? st.p_id : sol[st.p_slot],
                  st.o_slot == kNoSlot ? st.o_id : sol[st.o_slot]);
              source_->ScanRuns(pat, [&](const rdf::Triple* run, size_t n) {
                extender.Extend(sink, sol.data(), run, n);
                return true;
              });
            };
            view.ForEachRow(cb, ce, [&](const ColumnBatch& b, uint32_t r) {
              b.GatherRow(r, sol.data());
              if (!hash) {
                nlj_probe();
                return;
              }
              // The planner's "certainly bound" is static: a key slot can
              // still be unbound at runtime (seeds from an outer group),
              // where NLJ semantics treat it as a wildcard. Fall back to
              // the index probe for such rows — same rule as the row
              // engine.
              if ((st.s_bound && sol[st.s_slot] == kInvalidTermId) ||
                  (st.p_bound && sol[st.p_slot] == kInvalidTermId) ||
                  (st.o_bound && sol[st.o_slot] == kInvalidTermId)) {
                nlj_probe();
                return;
              }
              JoinKey k{st.s_bound ? sol[st.s_slot] : kInvalidTermId,
                        st.p_bound ? sol[st.p_slot] : kInvalidTermId,
                        st.o_bound ? sol[st.o_slot] : kInvalidTermId};
              auto it = table.find(k);
              if (it == table.end()) return;
              extender.Extend(sink, sol.data(), it->second.data(),
                              it->second.size());
            });
            return out;
          },
          [](std::vector<ColumnBatch>& acc, std::vector<ColumnBatch>&& rhs) {
            for (ColumnBatch& b : rhs) acc.push_back(std::move(b));
          });
    }
    const size_t produced = TotalActiveRows(next);
    intermediate_rows_ += produced;
    SparqlMetrics::Get().op_join_rows.Increment(produced);
    if (step_prof != nullptr) step_prof->batches += next.size();
    timer.Finish(produced);
    current = std::move(next);
    input = &current;
    if (produced == 0) break;
    if (CheckBudget()) return {};
  }
  return current;
}

std::vector<ColumnBatch> Executor::EvalGroupBatches(
    const GroupPlan& plan, const std::vector<ColumnBatch>& seeds,
    obs::OperatorProfile* prof) {
  std::vector<ColumnBatch> solutions = EvalBgpBatches(plan.steps, seeds, prof);

  // Child-node layout mirrors BuildProfileSkeleton:
  // [steps...][unions...][optionals...][filter?].
  size_t child_index = plan.steps.size();

  if (!plan.union_branches.empty()) {
    std::vector<ColumnBatch> unioned;
    for (const GroupPlan& branch : plan.union_branches) {
      if (CheckBudget()) return {};
      obs::OperatorProfile* branch_prof =
          prof == nullptr ? nullptr : &prof->children[child_index];
      ++child_index;
      obs::OperatorTimer timer(branch_prof);
      std::vector<ColumnBatch> rows = EvalGroupBatches(branch, solutions,
                                                       branch_prof);
      timer.Finish(TotalActiveRows(rows));
      // Branch outputs concatenate at batch granularity (batches may carry
      // selections from branch filters); logical row order is branch order
      // then row order within the branch, as in the row engine.
      for (ColumnBatch& b : rows) {
        if (b.active() > 0) unioned.push_back(std::move(b));
      }
    }
    solutions = std::move(unioned);
    SparqlMetrics::Get().op_union_rows.Increment(TotalActiveRows(solutions));
  }

  if (!plan.optionals.empty()) {
    // One reusable single-row seed batch per parent row: every column of a
    // one-row batch is constant-encoded, so re-seeding allocates nothing
    // after the first iteration.
    std::vector<ColumnBatch> seed(1, ColumnBatch(width_));
    std::vector<TermId> sol(width_);
    for (const GroupPlan& opt : plan.optionals) {
      obs::OperatorProfile* opt_prof =
          prof == nullptr ? nullptr : &prof->children[child_index];
      ++child_index;
      obs::OperatorTimer timer(opt_prof, TotalActiveRows(solutions));
      std::vector<ColumnBatch> next;
      BatchSink sink(width_, &next);
      for (const ColumnBatch& b : solutions) {
        for (size_t i = 0; i < b.active(); ++i) {
          if (CheckBudget()) return {};
          b.GatherRow(b.ActiveRow(i), sol.data());
          seed[0].Clear();
          seed[0].AppendRow(sol.data());
          std::vector<ColumnBatch> extended =
              EvalGroupBatches(opt, seed, opt_prof);
          if (TotalActiveRows(extended) == 0) {
            sink.AppendRow(sol.data());
          } else {
            sink.AppendBatchList(std::move(extended));
          }
        }
      }
      timer.Finish(TotalActiveRows(next));
      solutions = std::move(next);
      SparqlMetrics::Get().op_optional_rows.Increment(
          TotalActiveRows(solutions));
    }
  }

  if (!plan.filters.empty() && TotalActiveRows(solutions) > 0) {
    FilterBatches(plan, &solutions, prof);
  }
  return solutions;
}

void Executor::FilterBatches(const GroupPlan& plan,
                             std::vector<ColumnBatch>* batches,
                             obs::OperatorProfile* prof) {
  obs::OperatorProfile* filter_prof =
      prof == nullptr ? nullptr : &prof->children.back();
  const size_t before = TotalActiveRows(*batches);
  obs::OperatorTimer timer(filter_prof, before);
  const rdf::Dictionary& dict = source_->dict();
  const bool timed = budget_.time_budget_us >= 0;
  const size_t nf = plan.filters.size();

  for (ColumnBatch& b : *batches) {
    if (b.active() == 0) continue;
    // Per-batch pre-pass: a specialized filter over a constant segment has
    // one outcome for the whole batch. A batch-wide fail still cannot
    // short-circuit earlier generic filters — their per-row error counting
    // must accrue exactly as in the row engine — so outcomes stay
    // per-filter and the row loop walks them in order.
    enum : uint8_t { kPerRowSpec, kPerRowGeneric, kBatchPass, kBatchFail };
    std::vector<uint8_t> state(nf);
    for (size_t fi = 0; fi < nf; ++fi) {
      const BatchFilterSpec& spec = plan.batch_filters[fi];
      if (!spec.specialized) {
        state[fi] = kPerRowGeneric;
        continue;
      }
      const ColumnSegment& col = b.col(spec.slot);
      if (!col.constant()) {
        state[fi] = kPerRowSpec;
        continue;
      }
      const TermId id = col.constant_value();
      if (id == kInvalidTermId) {
        // Unbound for the whole batch: the generic evaluator errors (and
        // counts) per row, exactly like the row engine.
        state[fi] = kPerRowGeneric;
        continue;
      }
      const rdf::DecodedValue& dv = dict.decoded(id);
      if (dv.kind != rdf::DecodedValue::Kind::kNum) {
        state[fi] = kPerRowGeneric;
        continue;
      }
      state[fi] = NumPasses(dv.num, spec.op, spec.rhs) ? kBatchPass
                                                       : kBatchFail;
    }

    // Selection build: chunks of active rows evaluate independently and
    // concatenate ascending (same grain-64 chunking as the row engine), so
    // the resulting selection is ascending physical indices — a subset of
    // any selection already installed.
    std::vector<uint32_t> sel = exec::ParallelReduce<std::vector<uint32_t>>(
        0, b.active(), 64,
        [&](size_t cb, size_t ce) {
          std::vector<uint32_t> keep;
          if (timed && TimeExpired()) return keep;
          std::vector<TermId> row(width_);
          for (size_t i = cb; i < ce; ++i) {
            const uint32_t phys = b.ActiveRow(i);
            bool pass = true;
            bool gathered = false;
            for (size_t fi = 0; fi < nf && pass; ++fi) {
              switch (state[fi]) {
                case kBatchPass:
                  break;
                case kBatchFail:
                  pass = false;
                  break;
                case kPerRowSpec: {
                  const BatchFilterSpec& spec = plan.batch_filters[fi];
                  const TermId id = b.at(phys, spec.slot);
                  if (id != kInvalidTermId) {
                    const rdf::DecodedValue& dv = dict.decoded(id);
                    if (dv.kind == rdf::DecodedValue::Kind::kNum) {
                      pass = NumPasses(dv.num, spec.op, spec.rhs);
                      break;
                    }
                  }
                  // Unbound or non-numeric at runtime: the generic
                  // evaluator reproduces exact row-engine semantics,
                  // including the error counters.
                  if (!gathered) {
                    b.GatherRow(phys, row.data());
                    gathered = true;
                  }
                  pass = PassesFilter(plan.filters[fi], dict, row.data());
                  break;
                }
                default: {  // kPerRowGeneric
                  if (!gathered) {
                    b.GatherRow(phys, row.data());
                    gathered = true;
                  }
                  pass = PassesFilter(plan.filters[fi], dict, row.data());
                  break;
                }
              }
            }
            if (pass) keep.push_back(phys);
          }
          return keep;
        },
        [](std::vector<uint32_t>& acc, std::vector<uint32_t>&& rhs) {
          acc.insert(acc.end(), rhs.begin(), rhs.end());
        });
    b.SetSelection(std::move(sel));
  }

  const size_t after = TotalActiveRows(*batches);
  SparqlMetrics::Get().op_filter_dropped.Increment(before - after);
  if (filter_prof != nullptr) filter_prof->batches += batches->size();
  timer.Finish(after);
}

}  // namespace lodviz::sparql
