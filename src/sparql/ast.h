#ifndef LODVIZ_SPARQL_AST_H_
#define LODVIZ_SPARQL_AST_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "rdf/term.h"

namespace lodviz::sparql {

/// A SPARQL variable (without the leading '?').
struct Var {
  std::string name;

  bool operator==(const Var& other) const { return name == other.name; }
};

/// One position of a triple pattern: a constant term or a variable.
using NodeOrVar = std::variant<rdf::Term, Var>;

inline bool IsVar(const NodeOrVar& n) { return std::holds_alternative<Var>(n); }
inline const Var& AsVar(const NodeOrVar& n) { return std::get<Var>(n); }
inline const rdf::Term& AsTerm(const NodeOrVar& n) {
  return std::get<rdf::Term>(n);
}

/// A triple pattern in the WHERE clause.
struct TriplePatternAst {
  NodeOrVar s;
  NodeOrVar p;
  NodeOrVar o;
};

// ---- FILTER expressions ----

enum class BinOp {
  kAnd, kOr,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv,
};

enum class UnOp { kNot, kNeg };

enum class FuncOp {
  kBound,      ///< BOUND(?v)
  kIsIri,      ///< isIRI(?v)
  kIsLiteral,  ///< isLITERAL(?v)
  kIsBlank,    ///< isBLANK(?v)
  kStr,        ///< STR(?v): lexical form
  kContains,   ///< CONTAINS(str, str)
  kStrStarts,  ///< STRSTARTS(str, str)
  kLang,       ///< LANG(?v)
  kDatatype,   ///< DATATYPE(?v)
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A FILTER expression tree node.
struct Expr {
  enum class Kind { kLiteral, kVar, kBinary, kUnary, kFunc };

  Kind kind = Kind::kLiteral;
  rdf::Term literal;        // kLiteral
  std::string var;          // kVar
  BinOp bin_op{};           // kBinary
  UnOp un_op{};             // kUnary
  FuncOp func{};            // kFunc
  std::vector<ExprPtr> args;

  static ExprPtr Literal(rdf::Term t) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kLiteral;
    e->literal = std::move(t);
    return e;
  }
  static ExprPtr Variable(std::string name) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kVar;
    e->var = std::move(name);
    return e;
  }
  static ExprPtr Binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kBinary;
    e->bin_op = op;
    e->args.push_back(std::move(lhs));
    e->args.push_back(std::move(rhs));
    return e;
  }
  static ExprPtr Unary(UnOp op, ExprPtr arg) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kUnary;
    e->un_op = op;
    e->args.push_back(std::move(arg));
    return e;
  }
  static ExprPtr Func(FuncOp op, std::vector<ExprPtr> args) {
    auto e = std::make_unique<Expr>();
    e->kind = Kind::kFunc;
    e->func = op;
    e->args = std::move(args);
    return e;
  }
};

// ---- Graph patterns ----

/// A group graph pattern: basic patterns + filters + OPTIONAL groups +
/// UNION alternatives. If `union_branches` is non-empty the group's
/// solutions are the union of the branches' solutions joined with the
/// group's own triples.
struct GraphPattern {
  std::vector<TriplePatternAst> triples;
  std::vector<ExprPtr> filters;
  std::vector<GraphPattern> optionals;
  std::vector<GraphPattern> union_branches;
};

// ---- Query ----

enum class QueryForm { kSelect, kAsk, kConstruct, kDescribe };

struct Aggregate {
  enum class Fn { kCount, kSum, kAvg, kMin, kMax };
  Fn fn = Fn::kCount;
  bool distinct = false;
  std::string var;    ///< argument variable; empty means COUNT(*)
  std::string alias;  ///< output column name (from AS, or synthesized)
};

struct OrderKey {
  std::string var;
  bool ascending = true;
};

/// A parsed SPARQL query (SELECT or ASK subset).
struct Query {
  QueryForm form = QueryForm::kSelect;
  bool distinct = false;
  /// Projected variables; empty means '*' (all in-scope variables).
  std::vector<std::string> select_vars;
  std::vector<Aggregate> aggregates;
  /// CONSTRUCT template (kConstruct only).
  std::vector<TriplePatternAst> construct_template;
  /// DESCRIBE target: a variable or a constant IRI (kDescribe only).
  std::vector<NodeOrVar> describe_targets;
  GraphPattern where;
  std::vector<std::string> group_by;
  std::vector<OrderKey> order_by;
  int64_t limit = -1;
  int64_t offset = 0;
  std::unordered_map<std::string, std::string> prefixes;
};

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_AST_H_
