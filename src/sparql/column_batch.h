#ifndef LODVIZ_SPARQL_COLUMN_BATCH_H_
#define LODVIZ_SPARQL_COLUMN_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "rdf/dictionary.h"
#include "sparql/planner.h"

namespace lodviz::sparql {

/// Rows per ColumnBatch. Chosen so one batch's columns fit comfortably in
/// L1/L2 for typical widths (8 slots x 1024 rows x 4 bytes = 32 KiB) while
/// amortizing per-batch overhead over enough rows that per-row virtual
/// dispatch disappears from the profile.
inline constexpr size_t kBatchRows = 1024;

/// One column of a ColumnBatch: the TermIds of a single slot across the
/// batch's rows. Two encodings:
///
///   constant — every row holds the same value (one TermId, no array).
///     This is the natural state of seed slots, slots bound by plan
///     constants, and slots not yet touched by any pattern (all
///     kInvalidTermId); appending a repeated value keeps it O(1).
///   dense    — one TermId per row.
///
/// A segment starts constant and demotes to dense on the first append
/// that disagrees with the constant; it never promotes back. The segment
/// does not track its own length — the owning batch's row count is the
/// length of every column, passed in by the append paths.
class ColumnSegment {
 public:
  [[nodiscard]] bool constant() const { return constant_; }

  /// Value shared by all rows; meaningful only while constant().
  [[nodiscard]] rdf::TermId constant_value() const { return value_; }

  [[nodiscard]] rdf::TermId at(uint32_t row) const {
    return constant_ ? value_ : dense_[row];
  }

  /// Appends one value to a column currently `len` rows long.
  void Append(rdf::TermId v, size_t len) {
    if (constant_) {
      if (len == 0) {
        value_ = v;
        return;
      }
      if (v == value_) return;
      Densify(len);
    }
    dense_.push_back(v);
  }

  /// Appends `n` copies of `v`; O(1) while the column stays constant.
  void AppendRepeat(rdf::TermId v, size_t n, size_t len) {
    if (constant_) {
      if (len == 0) {
        value_ = v;
        return;
      }
      if (v == value_) return;
      Densify(len);
    }
    dense_.resize(dense_.size() + n, v);
  }

  /// Appends `n` row-varying values.
  void AppendDense(const rdf::TermId* v, size_t n, size_t len) {
    if (constant_) {
      // Stay constant when the incoming run happens to agree throughout.
      size_t i = 0;
      if (len == 0 && n > 0) {
        value_ = v[0];
        i = 1;
      }
      for (; i < n; ++i) {
        if (v[i] != value_) break;
      }
      if (i == n) return;
      Densify(len + i);
      dense_.insert(dense_.end(), v + i, v + n);
      return;
    }
    dense_.insert(dense_.end(), v, v + n);
  }

  /// Back to an empty constant segment, keeping dense capacity.
  void Reset() {
    constant_ = true;
    value_ = rdf::kInvalidTermId;
    dense_.clear();
  }

 private:
  void Densify(size_t len) {
    dense_.assign(len, value_);
    constant_ = false;
  }

  bool constant_ = true;
  rdf::TermId value_ = rdf::kInvalidTermId;
  std::vector<rdf::TermId> dense_;
};

/// A chunk of up to kBatchRows intermediate solutions in columnar form:
/// one ColumnSegment per slot plus an optional selection vector. The
/// selection vector (ascending physical row indices) is how filters drop
/// rows without materializing anything — downstream operators iterate
/// active rows only. Logical row order is physical order restricted to
/// the selection, which is what keeps batch execution bit-identical to
/// the row engine (see DESIGN.md §4.9).
class ColumnBatch {
 public:
  ColumnBatch() = default;
  explicit ColumnBatch(size_t width) : cols_(width) {}

  [[nodiscard]] size_t width() const { return cols_.size(); }

  /// Physical rows (ignoring the selection).
  [[nodiscard]] size_t rows() const { return rows_; }

  /// Rows surviving the selection; equals rows() when none is set.
  [[nodiscard]] size_t active() const {
    return has_sel_ ? sel_.size() : rows_;
  }

  [[nodiscard]] bool has_selection() const { return has_sel_; }

  /// Physical index of the i-th active row.
  [[nodiscard]] uint32_t ActiveRow(size_t i) const {
    return has_sel_ ? sel_[i] : static_cast<uint32_t>(i);
  }

  /// Installs a selection (ascending physical row indices). Appending to
  /// a batch with a selection is a bug: writers fill a batch first, then
  /// filters restrict it.
  void SetSelection(std::vector<uint32_t> sel) {
    sel_ = std::move(sel);
    has_sel_ = true;
  }

  [[nodiscard]] const ColumnSegment& col(size_t c) const { return cols_[c]; }

  [[nodiscard]] rdf::TermId at(uint32_t phys_row, size_t c) const {
    return cols_[c].at(phys_row);
  }

  /// Copies one physical row into `out` (width() TermIds) — the bridge to
  /// per-row code (generic filter expressions, CONSTRUCT templates).
  void GatherRow(uint32_t phys_row, rdf::TermId* out) const {
    for (size_t c = 0; c < cols_.size(); ++c) out[c] = cols_[c].at(phys_row);
  }

  /// Appends one row given as width() contiguous TermIds.
  void AppendRow(const rdf::TermId* row) {
    LODVIZ_DCHECK(!has_sel_);
    for (size_t c = 0; c < cols_.size(); ++c) cols_[c].Append(row[c], rows_);
    ++rows_;
  }

  /// One column of an AppendRun that varies per row; every column not
  /// listed repeats the base solution's value.
  struct RunColumn {
    SlotId slot;
    const rdf::TermId* values;  // n entries
  };

  /// Appends `n` rows that all equal the base solution `sol` except at
  /// `num_var` columns, which take per-row values. This is the batch
  /// extend primitive: carried-over columns cost O(1) while constant
  /// (seed/unbound slots) instead of a per-row copy.
  void AppendRun(const rdf::TermId* sol, size_t n, const RunColumn* var,
                 size_t num_var) {
    LODVIZ_DCHECK(!has_sel_);
    for (size_t c = 0; c < cols_.size(); ++c) {
      const rdf::TermId* values = nullptr;
      for (size_t j = 0; j < num_var; ++j) {
        if (var[j].slot == c) {
          values = var[j].values;
          break;
        }
      }
      if (values != nullptr) {
        cols_[c].AppendDense(values, n, rows_);
      } else {
        cols_[c].AppendRepeat(sol[c], n, rows_);
      }
    }
    rows_ += n;
  }

  /// Drops all rows and the selection, keeping column capacity (for
  /// seed-batch reuse in the OPTIONAL loop).
  void Clear() {
    for (ColumnSegment& c : cols_) c.Reset();
    rows_ = 0;
    has_sel_ = false;
    sel_.clear();
  }

 private:
  std::vector<ColumnSegment> cols_;
  size_t rows_ = 0;
  bool has_sel_ = false;
  std::vector<uint32_t> sel_;
};

/// Flattened-row addressing over a list of batches: logical row i is the
/// i-th active row across the list in order. Built once per consumer (a
/// prefix-sum array), then chunks of the logical range resolve to
/// (batch, physical row) pairs — this is how ParallelReduce chunks and
/// the engine's late-materialization tail address batch output without
/// compacting selections away.
class BatchListView {
 public:
  explicit BatchListView(const std::vector<ColumnBatch>& batches);

  [[nodiscard]] size_t total() const { return total_; }

  /// Calls fn(batch, physical_row) for logical rows [begin, end), in
  /// order.
  template <typename Fn>
  void ForEachRow(size_t begin, size_t end, Fn&& fn) const {
    size_t b = FindBatch(begin);
    size_t li = begin;
    while (li < end) {
      const ColumnBatch& batch = (*batches_)[b];
      size_t local = li - prefix_[b];
      const size_t local_end =
          std::min(batch.active(), local + (end - li));
      for (; local < local_end; ++local, ++li) {
        fn(batch, batch.ActiveRow(local));
      }
      ++b;
    }
  }

  /// Resolves one logical row to (batch index, physical row).
  [[nodiscard]] std::pair<size_t, uint32_t> Locate(size_t li) const {
    const size_t b = FindBatch(li);
    return {b, (*batches_)[b].ActiveRow(li - prefix_[b])};
  }

 private:
  /// Index of the batch containing logical row `li` (binary search over
  /// the prefix sums, skipping empty batches).
  [[nodiscard]] size_t FindBatch(size_t li) const;

  const std::vector<ColumnBatch>* batches_;
  std::vector<size_t> prefix_;  // prefix_[i] = active rows before batch i
  size_t total_ = 0;
};

/// Sum of active rows across `batches` (cheaper than a BatchListView when
/// only the count is needed).
[[nodiscard]] size_t TotalActiveRows(const std::vector<ColumnBatch>& batches);

/// Splits a row-major table (`rows` x `width`) into batches of at most
/// kBatchRows — the row-engine-to-batch bridge the engine tail uses so
/// solution modifiers consume one representation regardless of ExecMode.
[[nodiscard]] std::vector<ColumnBatch> RowsToBatches(const rdf::TermId* data,
                                                     size_t rows,
                                                     size_t width);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_COLUMN_BATCH_H_
