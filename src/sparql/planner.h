#ifndef LODVIZ_SPARQL_PLANNER_H_
#define LODVIZ_SPARQL_PLANNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/dictionary.h"
#include "rdf/triple.h"
#include "rdf/triple_source.h"
#include "sparql/ast.h"

namespace lodviz::sparql {

/// Index of a query variable in a slot row: the executor represents every
/// (partial) solution as a dense `width`-wide array of TermIds, one slot
/// per variable, with rdf::kInvalidTermId meaning "unbound". Slots replace
/// the per-row string-keyed hash maps of the original engine.
using SlotId = uint32_t;
inline constexpr SlotId kNoSlot = UINT32_MAX;

/// An ast::Expr compiled for slot-row evaluation: the same tree shape with
/// every variable name resolved to its SlotId at plan time, so execution
/// never touches strings. Constant sub-expressions (no variables anywhere
/// beneath) are folded into a single kLiteral node at plan time, and every
/// literal carries its decoded numeric/temporal value so per-row filter
/// evaluation never re-parses a constant.
struct CompiledExpr {
  Expr::Kind kind = Expr::Kind::kLiteral;
  rdf::Term literal;       // kLiteral
  SlotId slot = kNoSlot;   // kVar
  BinOp bin_op{};          // kBinary
  UnOp un_op{};            // kUnary
  FuncOp func{};           // kFunc
  std::vector<CompiledExpr> args;

  /// Plan-time decode of `literal` (kLiteral only): the same cache entry
  /// the dictionary keeps for interned terms, computed here because filter
  /// constants need not be in the dictionary.
  rdf::DecodedValue lit_decoded;
};

/// How a PatternStep joins against the solutions produced so far.
enum class JoinStrategy : uint8_t {
  /// Index nested-loop: one index probe per intermediate solution.
  kNestedLoop = 0,
  /// Build-once hash join: a single scan of the pattern (join slots
  /// treated as wildcards) builds a hash table keyed on the shared slots;
  /// every solution then probes the table instead of the index.
  kHash = 1,
};

/// One triple pattern scheduled for execution. Each position is either a
/// slot (variable) or a constant already resolved to its dictionary id.
struct PatternStep {
  SlotId s_slot = kNoSlot;
  SlotId p_slot = kNoSlot;
  SlotId o_slot = kNoSlot;
  rdf::TermId s_id = rdf::kInvalidTermId;
  rdf::TermId p_id = rdf::kInvalidTermId;
  rdf::TermId o_id = rdf::kInvalidTermId;

  /// A constant term absent from the dictionary: the step (and therefore
  /// the whole conjunction) matches nothing.
  bool dead = false;

  /// Join strategy picked by the planner — a pure function of the source
  /// statistics, so identical data yields identical plans on any backend.
  JoinStrategy strategy = JoinStrategy::kNestedLoop;

  /// Per-position flag: the slot is certainly bound by earlier steps when
  /// this one runs. These positions form the hash-join key.
  bool s_bound = false;
  bool p_bound = false;
  bool o_bound = false;

  /// Planner cardinality estimate at this point of the join order
  /// (EstimateCardinality over the source's statistics); surfaced by
  /// explain.
  double est_rows = 0.0;

  /// est_rows came from an aggregated index (exact count), not a
  /// heuristic: constants-only patterns of shape {}, {p}, {s,p}.
  /// Patterns involving variables bound by earlier steps are always
  /// estimates. Explain renders exact counts with an [exact] marker.
  bool est_exact = false;

  /// Estimated rows of the build-side scan (pattern with join slots
  /// wildcarded); drives the hash-vs-NLJ choice and explain output.
  double est_build_rows = 0.0;

  /// Human-readable pattern text for explain output.
  std::string label;
};

/// A FILTER expression specialized for segment-at-a-time evaluation in the
/// batch executor: `?var <cmp> numeric-constant` (either operand order,
/// normalized so the spec always reads `slot <op> rhs`). At runtime a row
/// whose slot value decodes as numeric compares directly against `rhs` —
/// the same double comparison the row engine's SlimVal fast path performs,
/// so results and error accounting stay bit-identical; rows that do not
/// decode fall back to the generic per-row evaluator. Computed once at
/// plan time; `specialized == false` means the whole expression always
/// takes the generic path. Never affects planning decisions or the plan
/// rendering, so row- and batch-mode plans are identical.
struct BatchFilterSpec {
  bool specialized = false;
  SlotId slot = kNoSlot;
  BinOp op = BinOp::kEq;  // normalized: variable on the left
  double rhs = 0.0;
};

/// Inspects a compiled filter for the var-vs-numeric-constant shape the
/// segment evaluator handles; flips the comparison when the variable is
/// on the right so the spec is always `slot <op> rhs`.
[[nodiscard]] BatchFilterSpec SpecializeFilterForBatch(const CompiledExpr& e);

/// A group graph pattern compiled against one TripleSource: triple steps
/// in execution order, then union branches, optionals, and filters —
/// mirroring the evaluation order of GraphPattern.
struct GroupPlan {
  std::vector<PatternStep> steps;
  std::vector<CompiledExpr> filters;
  /// Parallel to `filters`: the batch executor's plan-time specialization
  /// of each expression (batch-aware operator wiring; ignored by the row
  /// engine).
  std::vector<BatchFilterSpec> batch_filters;
  std::vector<GroupPlan> union_branches;
  std::vector<GroupPlan> optionals;
};

/// A compiled query: slot table + operator tree. Produced by PlanQuery;
/// consumed by the Executor and (rendered) by explore/explain.
struct QueryPlan {
  /// Width of every binding row.
  size_t num_slots = 0;

  /// SlotId -> variable name.
  std::vector<std::string> slot_names;

  /// Variables appearing in triple-pattern positions of the WHERE clause,
  /// in first-appearance order (the projection for `SELECT *`).
  std::vector<std::string> visible_vars;

  GroupPlan root;

  /// Slot of `var`; kNoSlot if the variable occurs nowhere in the query
  /// (a projected-but-never-bound column).
  [[nodiscard]] SlotId SlotOf(const std::string& var) const {
    auto it = slots.find(var);
    return it == slots.end() ? kNoSlot : it->second;
  }

  /// Multi-line rendering of the plan (slots, join order, per-pattern
  /// cardinality estimates) for explore/explain.
  [[nodiscard]] std::string ToString() const;

  /// Variable name -> slot (name resolution happens only at plan time).
  std::unordered_map<std::string, SlotId> slots;
};

/// Overrides the planner's adaptive hash-vs-NLJ choice. Used by the parity
/// tests (every query under both strategies must return identical rows)
/// and the join micro-benchmarks; production code leaves it on kAuto.
enum class JoinForce : uint8_t {
  kAuto = 0,        // cost-based choice
  kNestedLoop = 1,  // always index nested-loop
  kHash = 2,        // hash join wherever a join key exists (steps without
                    // a bound slot still run as NLJ — there is no key)
};

struct PlannerOptions {
  /// Greedy selectivity-based join ordering; disable to execute basic
  /// graph patterns in textual order (used by the E10 bench and the
  /// order-independence property test).
  bool optimize_join_order = true;

  /// Test/bench knob forcing the per-step join strategy.
  JoinForce force_join = JoinForce::kAuto;
};

/// Compiles `query` against `source`: resolves variable names to slots and
/// constants to dictionary ids, and fixes the join order with the greedy
/// selectivity heuristic. The plan depends only on the query and the
/// source's data statistics (PredicateCount/size via the shared
/// EstimateSelectivity), so two sources holding the same data — e.g. the
/// in-memory store and its disk mirror — produce identical plans, which is
/// what makes execution bit-identical across backends.
QueryPlan PlanQuery(const Query& query, const rdf::TripleSource& source,
                    const PlannerOptions& options);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_PLANNER_H_
