#ifndef LODVIZ_SPARQL_PLANNER_H_
#define LODVIZ_SPARQL_PLANNER_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rdf/triple.h"
#include "rdf/triple_source.h"
#include "sparql/ast.h"

namespace lodviz::sparql {

/// Index of a query variable in a slot row: the executor represents every
/// (partial) solution as a dense `width`-wide array of TermIds, one slot
/// per variable, with rdf::kInvalidTermId meaning "unbound". Slots replace
/// the per-row string-keyed hash maps of the original engine.
using SlotId = uint32_t;
inline constexpr SlotId kNoSlot = UINT32_MAX;

/// An ast::Expr compiled for slot-row evaluation: the same tree shape with
/// every variable name resolved to its SlotId at plan time, so execution
/// never touches strings.
struct CompiledExpr {
  Expr::Kind kind = Expr::Kind::kLiteral;
  rdf::Term literal;       // kLiteral
  SlotId slot = kNoSlot;   // kVar
  BinOp bin_op{};          // kBinary
  UnOp un_op{};            // kUnary
  FuncOp func{};           // kFunc
  std::vector<CompiledExpr> args;
};

/// One triple pattern scheduled for execution. Each position is either a
/// slot (variable) or a constant already resolved to its dictionary id.
struct PatternStep {
  SlotId s_slot = kNoSlot;
  SlotId p_slot = kNoSlot;
  SlotId o_slot = kNoSlot;
  rdf::TermId s_id = rdf::kInvalidTermId;
  rdf::TermId p_id = rdf::kInvalidTermId;
  rdf::TermId o_id = rdf::kInvalidTermId;

  /// A constant term absent from the dictionary: the step (and therefore
  /// the whole conjunction) matches nothing.
  bool dead = false;

  /// Planner cardinality estimate at this point of the join order
  /// (EstimateSelectivity x source size); surfaced by explain.
  double est_rows = 0.0;

  /// Human-readable pattern text for explain output.
  std::string label;
};

/// A group graph pattern compiled against one TripleSource: triple steps
/// in execution order, then union branches, optionals, and filters —
/// mirroring the evaluation order of GraphPattern.
struct GroupPlan {
  std::vector<PatternStep> steps;
  std::vector<CompiledExpr> filters;
  std::vector<GroupPlan> union_branches;
  std::vector<GroupPlan> optionals;
};

/// A compiled query: slot table + operator tree. Produced by PlanQuery;
/// consumed by the Executor and (rendered) by explore/explain.
struct QueryPlan {
  /// Width of every binding row.
  size_t num_slots = 0;

  /// SlotId -> variable name.
  std::vector<std::string> slot_names;

  /// Variables appearing in triple-pattern positions of the WHERE clause,
  /// in first-appearance order (the projection for `SELECT *`).
  std::vector<std::string> visible_vars;

  GroupPlan root;

  /// Slot of `var`; kNoSlot if the variable occurs nowhere in the query
  /// (a projected-but-never-bound column).
  [[nodiscard]] SlotId SlotOf(const std::string& var) const {
    auto it = slots.find(var);
    return it == slots.end() ? kNoSlot : it->second;
  }

  /// Multi-line rendering of the plan (slots, join order, per-pattern
  /// cardinality estimates) for explore/explain.
  [[nodiscard]] std::string ToString() const;

  /// Variable name -> slot (name resolution happens only at plan time).
  std::unordered_map<std::string, SlotId> slots;
};

struct PlannerOptions {
  /// Greedy selectivity-based join ordering; disable to execute basic
  /// graph patterns in textual order (used by the E10 bench and the
  /// order-independence property test).
  bool optimize_join_order = true;
};

/// Compiles `query` against `source`: resolves variable names to slots and
/// constants to dictionary ids, and fixes the join order with the greedy
/// selectivity heuristic. The plan depends only on the query and the
/// source's data statistics (PredicateCount/size via the shared
/// EstimateSelectivity), so two sources holding the same data — e.g. the
/// in-memory store and its disk mirror — produce identical plans, which is
/// what makes execution bit-identical across backends.
QueryPlan PlanQuery(const Query& query, const rdf::TripleSource& source,
                    const PlannerOptions& options);

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_PLANNER_H_
