#include "sparql/parser.h"

#include <charconv>
#include <utility>

#include "rdf/vocab.h"
#include "sparql/lexer.h"

namespace lodviz::sparql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  /// Combined cap on expression, unary-chain, and group nesting. Server
  /// input is untrusted: without a cap, `((((...))))` or `{{{{...}}}}`
  /// recurses once per level and overflows the stack (and the planner /
  /// fingerprint visitors would recurse just as deep downstream). ~7
  /// frames per expression level keeps the worst case well under 1 MiB of
  /// stack while leaving room for any human-written query.
  static constexpr int kMaxNestingDepth = 128;

  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Query> Parse() {
    Query q;
    while (PeekKeyword("PREFIX")) {
      LODVIZ_RETURN_NOT_OK(ParsePrefix(&q));
    }
    if (AcceptKeyword("SELECT")) {
      q.form = QueryForm::kSelect;
      LODVIZ_RETURN_NOT_OK(ParseSelectClause(&q));
    } else if (AcceptKeyword("ASK")) {
      q.form = QueryForm::kAsk;
    } else if (AcceptKeyword("CONSTRUCT")) {
      q.form = QueryForm::kConstruct;
      LODVIZ_RETURN_NOT_OK(Expect("{"));
      LODVIZ_ASSIGN_OR_RETURN(GraphPattern tmpl, ParseGroup(&q));
      if (!tmpl.filters.empty() || !tmpl.optionals.empty() ||
          !tmpl.union_branches.empty()) {
        return Err("CONSTRUCT template must contain only triples");
      }
      q.construct_template = std::move(tmpl.triples);
    } else if (AcceptKeyword("DESCRIBE")) {
      q.form = QueryForm::kDescribe;
      while (true) {
        if (Peek().kind == TokenKind::kVar) {
          q.describe_targets.push_back(Var{Next().text});
          continue;
        }
        if (Peek().kind == TokenKind::kIriRef) {
          q.describe_targets.push_back(rdf::Term::Iri(Next().text));
          continue;
        }
        if (Peek().kind == TokenKind::kPname) {
          LODVIZ_ASSIGN_OR_RETURN(std::string iri, ExpandPname(&q, Next().text));
          q.describe_targets.push_back(rdf::Term::Iri(std::move(iri)));
          continue;
        }
        break;
      }
      if (q.describe_targets.empty()) {
        return Err("DESCRIBE needs at least one target");
      }
      // DESCRIBE <iri> without a WHERE clause is complete.
      bool has_where = PeekKeyword("WHERE") ||
                       (Peek().kind == TokenKind::kPunct && Peek().text == "{");
      if (!has_where) {
        if (Peek().kind != TokenKind::kEof) {
          return Err("trailing tokens after DESCRIBE");
        }
        return q;
      }
    } else {
      return Err("expected SELECT, ASK, CONSTRUCT or DESCRIBE");
    }
    AcceptKeyword("WHERE");  // optional before '{'
    LODVIZ_RETURN_NOT_OK(Expect("{"));
    LODVIZ_ASSIGN_OR_RETURN(q.where, ParseGroup(&q));

    // Solution modifiers.
    while (true) {
      if (AcceptKeyword("GROUP")) {
        if (!AcceptKeyword("BY")) return Err("expected BY after GROUP");
        while (Peek().kind == TokenKind::kVar) {
          q.group_by.push_back(Next().text);
        }
        if (q.group_by.empty()) return Err("GROUP BY needs variables");
        continue;
      }
      if (AcceptKeyword("ORDER")) {
        if (!AcceptKeyword("BY")) return Err("expected BY after ORDER");
        bool any = false;
        while (true) {
          OrderKey key;
          if (AcceptKeyword("ASC") || AcceptKeyword("DESC")) {
            key.ascending = tokens_[pos_ - 1].text == "ASC";
            LODVIZ_RETURN_NOT_OK(Expect("("));
            if (Peek().kind != TokenKind::kVar) return Err("expected variable");
            key.var = Next().text;
            LODVIZ_RETURN_NOT_OK(Expect(")"));
          } else if (Peek().kind == TokenKind::kVar) {
            key.var = Next().text;
          } else {
            break;
          }
          q.order_by.push_back(key);
          any = true;
        }
        if (!any) return Err("ORDER BY needs keys");
        continue;
      }
      if (AcceptKeyword("LIMIT")) {
        LODVIZ_ASSIGN_OR_RETURN(q.limit, ParseBound("LIMIT"));
        continue;
      }
      if (AcceptKeyword("OFFSET")) {
        LODVIZ_ASSIGN_OR_RETURN(q.offset, ParseBound("OFFSET"));
        continue;
      }
      break;
    }
    if (Peek().kind != TokenKind::kEof) {
      return Err("trailing tokens after query");
    }
    return q;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Next() { return tokens_[pos_++]; }

  bool PeekKeyword(std::string_view kw) const {
    return Peek().kind == TokenKind::kKeyword && Peek().text == kw;
  }
  bool AcceptKeyword(std::string_view kw) {
    if (PeekKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptPunct(std::string_view p) {
    if (Peek().kind == TokenKind::kPunct && Peek().text == p) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Expect(std::string_view p) {
    if (!AcceptPunct(p)) {
      return Status::ParseError("expected '" + std::string(p) + "' near '" +
                                Peek().text + "' (offset " +
                                std::to_string(Peek().offset) + ")");
    }
    return Status::OK();
  }
  Status Err(std::string msg) const {
    return Status::ParseError(msg + " near '" + Peek().text + "' (offset " +
                              std::to_string(Peek().offset) + ")");
  }

  /// Checked LIMIT/OFFSET numeral parse. The lexer's number token admits a
  /// sign and a decimal point, and untrusted input can carry arbitrarily
  /// many digits — `std::stoll` would throw std::out_of_range straight
  /// through the Status-based API and kill the process. from_chars never
  /// throws; anything unconsumed (a '.'), a negative value, or overflow is
  /// a ParseError.
  Result<int64_t> ParseBound(const char* clause) {
    if (Peek().kind != TokenKind::kNumber) return Err("expected number");
    const std::string& text = Peek().text;
    int64_t value = 0;
    auto [end, ec] =
        std::from_chars(text.data(), text.data() + text.size(), value);
    if (ec == std::errc::result_out_of_range) {
      return Err(std::string(clause) + " value out of range");
    }
    if (ec != std::errc() || end != text.data() + text.size()) {
      return Err(std::string(clause) + " needs an integer");
    }
    if (value < 0) {
      return Err(std::string(clause) + " must be non-negative");
    }
    ++pos_;
    return value;
  }

  /// RAII nesting guard shared by every recursive production. Construct,
  /// then check status() before recursing further.
  class DepthGuard {
   public:
    explicit DepthGuard(Parser* p) : p_(p) { ++p_->depth_; }
    ~DepthGuard() { --p_->depth_; }
    DepthGuard(const DepthGuard&) = delete;
    DepthGuard& operator=(const DepthGuard&) = delete;
    [[nodiscard]] Status status() const {
      if (p_->depth_ > kMaxNestingDepth) {
        return Status::ParseError("query nesting too deep (limit " +
                                  std::to_string(kMaxNestingDepth) + ")");
      }
      return Status::OK();
    }

   private:
    Parser* p_;
  };

  Status ParsePrefix(Query* q) {
    ++pos_;  // PREFIX
    if (Peek().kind != TokenKind::kPname) return Err("expected prefix name");
    std::string pname = Next().text;
    if (pname.empty() || pname.back() != ':') {
      // pname token holds "p:" or "p:rest" — prefix decls must be "p:".
      size_t colon = pname.find(':');
      if (colon == std::string::npos || colon + 1 != pname.size()) {
        return Err("PREFIX name must end with ':'");
      }
    }
    if (Peek().kind != TokenKind::kIriRef) return Err("expected IRI");
    q->prefixes[pname.substr(0, pname.size() - 1)] = Next().text;
    return Status::OK();
  }

  Status ParseSelectClause(Query* q) {
    if (AcceptKeyword("DISTINCT")) q->distinct = true;
    if (AcceptPunct("*")) return Status::OK();
    bool any = false;
    while (true) {
      if (Peek().kind == TokenKind::kVar) {
        q->select_vars.push_back(Next().text);
        any = true;
        continue;
      }
      if (AcceptPunct("(")) {
        LODVIZ_ASSIGN_OR_RETURN(Aggregate agg, ParseAggregate());
        q->aggregates.push_back(std::move(agg));
        any = true;
        continue;
      }
      // Bare aggregate without (expr AS ?alias) wrapper: COUNT(...)
      if (Peek().kind == TokenKind::kKeyword && IsAggregateKeyword(Peek().text)) {
        LODVIZ_ASSIGN_OR_RETURN(Aggregate agg, ParseAggregateCall());
        agg.alias = DefaultAlias(agg);
        q->aggregates.push_back(std::move(agg));
        any = true;
        continue;
      }
      break;
    }
    if (!any) return Err("SELECT needs projection");
    return Status::OK();
  }

  static bool IsAggregateKeyword(const std::string& kw) {
    return kw == "COUNT" || kw == "SUM" || kw == "AVG" || kw == "MIN" ||
           kw == "MAX";
  }

  static std::string DefaultAlias(const Aggregate& agg) {
    switch (agg.fn) {
      case Aggregate::Fn::kCount:
        return "count";
      case Aggregate::Fn::kSum:
        return "sum";
      case Aggregate::Fn::kAvg:
        return "avg";
      case Aggregate::Fn::kMin:
        return "min";
      case Aggregate::Fn::kMax:
        return "max";
    }
    return "agg";
  }

  /// Parses "AGG(...) AS ?alias)" after the opening '(' was consumed.
  Result<Aggregate> ParseAggregate() {
    LODVIZ_ASSIGN_OR_RETURN(Aggregate agg, ParseAggregateCall());
    if (!AcceptKeyword("AS")) return Err("expected AS in aggregate");
    if (Peek().kind != TokenKind::kVar) return Err("expected alias variable");
    agg.alias = Next().text;
    LODVIZ_RETURN_NOT_OK(Expect(")"));
    return agg;
  }

  /// Parses "COUNT(DISTINCT ?v)" / "SUM(?v)" / "COUNT(*)".
  Result<Aggregate> ParseAggregateCall() {
    Aggregate agg;
    const std::string& kw = Peek().text;
    if (kw == "COUNT") agg.fn = Aggregate::Fn::kCount;
    else if (kw == "SUM") agg.fn = Aggregate::Fn::kSum;
    else if (kw == "AVG") agg.fn = Aggregate::Fn::kAvg;
    else if (kw == "MIN") agg.fn = Aggregate::Fn::kMin;
    else if (kw == "MAX") agg.fn = Aggregate::Fn::kMax;
    else return Err("expected aggregate function");
    ++pos_;
    LODVIZ_RETURN_NOT_OK(Expect("("));
    if (AcceptKeyword("DISTINCT")) agg.distinct = true;
    if (AcceptPunct("*")) {
      if (agg.fn != Aggregate::Fn::kCount) return Err("* only valid in COUNT");
    } else {
      if (Peek().kind != TokenKind::kVar) return Err("expected variable");
      agg.var = Next().text;
    }
    LODVIZ_RETURN_NOT_OK(Expect(")"));
    return agg;
  }

  /// Parses the body of a group after '{'. Consumes the closing '}'.
  Result<GraphPattern> ParseGroup(Query* q) {
    DepthGuard depth(this);
    LODVIZ_RETURN_NOT_OK(depth.status());
    GraphPattern group;
    while (true) {
      if (AcceptPunct("}")) break;
      if (AcceptKeyword("FILTER")) {
        LODVIZ_RETURN_NOT_OK(Expect("("));
        LODVIZ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(q));
        LODVIZ_RETURN_NOT_OK(Expect(")"));
        group.filters.push_back(std::move(e));
        continue;
      }
      if (AcceptKeyword("OPTIONAL")) {
        LODVIZ_RETURN_NOT_OK(Expect("{"));
        LODVIZ_ASSIGN_OR_RETURN(GraphPattern opt, ParseGroup(q));
        group.optionals.push_back(std::move(opt));
        continue;
      }
      if (AcceptPunct("{")) {
        // {A} UNION {B} [UNION {C} ...]
        LODVIZ_ASSIGN_OR_RETURN(GraphPattern first, ParseGroup(q));
        group.union_branches.push_back(std::move(first));
        while (AcceptKeyword("UNION")) {
          LODVIZ_RETURN_NOT_OK(Expect("{"));
          LODVIZ_ASSIGN_OR_RETURN(GraphPattern branch, ParseGroup(q));
          group.union_branches.push_back(std::move(branch));
        }
        if (group.union_branches.size() == 1) {
          // A plain nested group: fold its contents into the parent.
          GraphPattern inner = std::move(group.union_branches.back());
          group.union_branches.pop_back();
          for (auto& t : inner.triples) group.triples.push_back(std::move(t));
          for (auto& f : inner.filters) group.filters.push_back(std::move(f));
          for (auto& o : inner.optionals) {
            group.optionals.push_back(std::move(o));
          }
          for (auto& u : inner.union_branches) {
            group.union_branches.push_back(std::move(u));
          }
        }
        continue;
      }
      // Triple block with ';' and ',' abbreviations.
      LODVIZ_ASSIGN_OR_RETURN(NodeOrVar s, ParseNode(q, /*allow_literal=*/false));
      while (true) {
        LODVIZ_ASSIGN_OR_RETURN(NodeOrVar p, ParseVerb(q));
        while (true) {
          LODVIZ_ASSIGN_OR_RETURN(NodeOrVar o, ParseNode(q, true));
          group.triples.push_back({s, p, o});
          if (!AcceptPunct(",")) break;
        }
        if (!AcceptPunct(";")) break;
        if (Peek().kind == TokenKind::kPunct && Peek().text == ".") break;
      }
      AcceptPunct(".");  // terminator optional before '}'
    }
    return group;
  }

  Result<NodeOrVar> ParseVerb(Query* q) {
    if (Peek().kind == TokenKind::kA) {
      ++pos_;
      return NodeOrVar(rdf::Term::Iri(rdf::vocab::kRdfType));
    }
    return ParseNode(q, /*allow_literal=*/false);
  }

  Result<NodeOrVar> ParseNode(Query* q, bool allow_literal) {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kVar:
        return NodeOrVar(Var{Next().text});
      case TokenKind::kIriRef:
        return NodeOrVar(rdf::Term::Iri(Next().text));
      case TokenKind::kPname: {
        LODVIZ_ASSIGN_OR_RETURN(std::string iri, ExpandPname(q, Next().text));
        return NodeOrVar(rdf::Term::Iri(std::move(iri)));
      }
      case TokenKind::kString: {
        if (!allow_literal) return Err("literal not allowed here");
        std::string value = Next().text;
        if (Peek().kind == TokenKind::kLangTag) {
          return NodeOrVar(rdf::Term::LangLiteral(value, Next().text));
        }
        if (Peek().kind == TokenKind::kPunct && Peek().text == "^^") {
          ++pos_;
          if (Peek().kind == TokenKind::kIriRef) {
            return NodeOrVar(rdf::Term::Literal(value, Next().text));
          }
          if (Peek().kind == TokenKind::kPname) {
            LODVIZ_ASSIGN_OR_RETURN(std::string dt, ExpandPname(q, Next().text));
            return NodeOrVar(rdf::Term::Literal(value, std::move(dt)));
          }
          return Err("expected datatype IRI after ^^");
        }
        return NodeOrVar(rdf::Term::Literal(std::move(value)));
      }
      case TokenKind::kNumber: {
        if (!allow_literal) return Err("literal not allowed here");
        std::string text = Next().text;
        const char* dt = text.find('.') != std::string::npos
                             ? rdf::vocab::kXsdDecimal
                             : rdf::vocab::kXsdInteger;
        return NodeOrVar(rdf::Term::Literal(std::move(text), dt));
      }
      case TokenKind::kKeyword:
        if (tok.text == "TRUE" || tok.text == "FALSE") {
          if (!allow_literal) return Err("literal not allowed here");
          return NodeOrVar(rdf::Term::BoolLiteral(Next().text == "TRUE"));
        }
        return Err("unexpected keyword in pattern");
      default:
        return Err("expected term or variable");
    }
  }

  Result<std::string> ExpandPname(Query* q, const std::string& pname) {
    size_t colon = pname.find(':');
    if (colon == std::string::npos) {
      return Status::ParseError("malformed prefixed name '" + pname + "'");
    }
    std::string prefix = pname.substr(0, colon);
    auto it = q->prefixes.find(prefix);
    if (it == q->prefixes.end()) {
      return Status::ParseError("unknown prefix '" + prefix + ":'");
    }
    return it->second + pname.substr(colon + 1);
  }

  // ---- expressions (precedence climbing) ----

  Result<ExprPtr> ParseExpr(Query* q) {
    DepthGuard depth(this);
    LODVIZ_RETURN_NOT_OK(depth.status());
    return ParseOr(q);
  }

  Result<ExprPtr> ParseOr(Query* q) {
    LODVIZ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(q));
    while (AcceptPunct("||")) {
      LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(q));
      lhs = Expr::Binary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd(Query* q) {
    LODVIZ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseCompare(q));
    while (AcceptPunct("&&")) {
      LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseCompare(q));
      lhs = Expr::Binary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseCompare(Query* q) {
    LODVIZ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive(q));
    static constexpr std::pair<const char*, BinOp> kOps[] = {
        {"<=", BinOp::kLe}, {">=", BinOp::kGe}, {"!=", BinOp::kNe},
        {"=", BinOp::kEq},  {"<", BinOp::kLt},  {">", BinOp::kGt}};
    for (const auto& [text, op] : kOps) {
      if (AcceptPunct(text)) {
        LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive(q));
        return Expr::Binary(op, std::move(lhs), std::move(rhs));
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive(Query* q) {
    LODVIZ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative(q));
    while (true) {
      if (AcceptPunct("+")) {
        LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(q));
        lhs = Expr::Binary(BinOp::kAdd, std::move(lhs), std::move(rhs));
      } else if (AcceptPunct("-")) {
        LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative(q));
        lhs = Expr::Binary(BinOp::kSub, std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative(Query* q) {
    LODVIZ_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary(q));
    while (true) {
      if (AcceptPunct("*")) {
        LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(q));
        lhs = Expr::Binary(BinOp::kMul, std::move(lhs), std::move(rhs));
      } else if (AcceptPunct("/")) {
        LODVIZ_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary(q));
        lhs = Expr::Binary(BinOp::kDiv, std::move(lhs), std::move(rhs));
      } else {
        break;
      }
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary(Query* q) {
    // Guarded separately from ParseExpr: `!!!!...x` and `----x` recurse
    // here without ever re-entering ParseExpr.
    DepthGuard depth(this);
    LODVIZ_RETURN_NOT_OK(depth.status());
    if (AcceptPunct("!")) {
      LODVIZ_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary(q));
      return Expr::Unary(UnOp::kNot, std::move(arg));
    }
    if (AcceptPunct("-")) {
      LODVIZ_ASSIGN_OR_RETURN(ExprPtr arg, ParseUnary(q));
      return Expr::Unary(UnOp::kNeg, std::move(arg));
    }
    return ParsePrimary(q);
  }

  Result<ExprPtr> ParsePrimary(Query* q) {
    const Token& tok = Peek();
    if (tok.kind == TokenKind::kPunct && tok.text == "(") {
      ++pos_;
      LODVIZ_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr(q));
      LODVIZ_RETURN_NOT_OK(Expect(")"));
      return e;
    }
    if (tok.kind == TokenKind::kKeyword) {
      static constexpr std::pair<const char*, FuncOp> kFuncs[] = {
          {"BOUND", FuncOp::kBound},       {"ISIRI", FuncOp::kIsIri},
          {"ISLITERAL", FuncOp::kIsLiteral}, {"ISBLANK", FuncOp::kIsBlank},
          {"STR", FuncOp::kStr},           {"CONTAINS", FuncOp::kContains},
          {"STRSTARTS", FuncOp::kStrStarts}, {"LANG", FuncOp::kLang},
          {"DATATYPE", FuncOp::kDatatype}};
      for (const auto& [name, op] : kFuncs) {
        if (tok.text == name) {
          ++pos_;
          LODVIZ_RETURN_NOT_OK(Expect("("));
          std::vector<ExprPtr> args;
          if (!AcceptPunct(")")) {
            while (true) {
              LODVIZ_ASSIGN_OR_RETURN(ExprPtr a, ParseExpr(q));
              args.push_back(std::move(a));
              if (!AcceptPunct(",")) break;
            }
            LODVIZ_RETURN_NOT_OK(Expect(")"));
          }
          return Expr::Func(op, std::move(args));
        }
      }
      if (tok.text == "TRUE" || tok.text == "FALSE") {
        ++pos_;
        return Expr::Literal(rdf::Term::BoolLiteral(tok.text == "TRUE"));
      }
      return Err("unexpected keyword in expression");
    }
    if (tok.kind == TokenKind::kVar) {
      return Expr::Variable(Next().text);
    }
    // Constants share the node parser.
    LODVIZ_ASSIGN_OR_RETURN(NodeOrVar n, ParseNode(q, /*allow_literal=*/true));
    return Expr::Literal(AsTerm(n));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  /// Current recursion depth across groups and expressions (DepthGuard).
  int depth_ = 0;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text) {
  LODVIZ_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(text));
  Parser parser(std::move(tokens));
  return parser.Parse();
}

}  // namespace lodviz::sparql
