#include "sparql/planner.h"

#include <algorithm>
#include <limits>
#include <set>

#include "obs/trace.h"
#include "sparql/executor.h"

namespace lodviz::sparql {

namespace {

using rdf::kInvalidTermId;
using rdf::TermId;

/// Cost-model constants for the hash-vs-NLJ choice (rows-equivalent).
/// An index probe walks a tree; a hash-table probe is one lookup; building
/// the table touches every build row twice (scan + insert). Pure numbers,
/// so the choice depends only on the source statistics.
constexpr double kNljProbeCost = 4.0;
constexpr double kHashProbeCost = 1.0;
constexpr double kHashBuildCost = 2.0;

/// True when every node of the compiled subtree is a literal (no variable
/// and therefore no slot/row dependency anywhere beneath).
bool IsConstExpr(const CompiledExpr& e) {
  if (e.kind == Expr::Kind::kVar) return false;
  if (e.kind == Expr::Kind::kLiteral) return true;
  // BOUND() takes a variable; any other function of constants is constant.
  for (const CompiledExpr& a : e.args) {
    if (!IsConstExpr(a)) return false;
  }
  return true;
}

class PlannerImpl {
 public:
  PlannerImpl(const rdf::TripleSource& source, const PlannerOptions& options,
              QueryPlan* plan)
      : source_(source), options_(options), plan_(plan) {}

  void Run(const Query& query) {
    // Pass 1: intern triple-pattern variables of the WHERE clause in
    // first-appearance order. Their slots form the `SELECT *` projection,
    // matching the original engine's CollectVars column order.
    CollectPatternVars(query.where);
    plan_->visible_vars = plan_->slot_names;

    // Pass 2: every other place a variable can occur gets a (later) slot.
    for (const std::string& v : query.select_vars) InternVar(v);
    for (const Aggregate& a : query.aggregates) {
      if (!a.var.empty()) InternVar(a.var);
    }
    for (const std::string& v : query.group_by) InternVar(v);
    for (const OrderKey& k : query.order_by) InternVar(k.var);
    for (const TriplePatternAst& t : query.construct_template) {
      InternTripleVars(t);
    }
    for (const NodeOrVar& n : query.describe_targets) {
      if (IsVar(n)) InternVar(AsVar(n).name);
    }

    // Pass 3: compile the operator tree (filters may intern more slots).
    PlanGroup(query.where, {}, 1.0, &plan_->root);
    plan_->num_slots = plan_->slot_names.size();
  }

 private:
  SlotId InternVar(const std::string& name) {
    auto [it, inserted] = plan_->slots.emplace(
        name, static_cast<SlotId>(plan_->slot_names.size()));
    if (inserted) plan_->slot_names.push_back(name);
    return it->second;
  }

  void InternTripleVars(const TriplePatternAst& t) {
    if (IsVar(t.s)) InternVar(AsVar(t.s).name);
    if (IsVar(t.p)) InternVar(AsVar(t.p).name);
    if (IsVar(t.o)) InternVar(AsVar(t.o).name);
  }

  void CollectPatternVars(const GraphPattern& group) {
    for (const TriplePatternAst& t : group.triples) InternTripleVars(t);
    for (const GraphPattern& u : group.union_branches) CollectPatternVars(u);
    for (const GraphPattern& o : group.optionals) CollectPatternVars(o);
  }

  /// Estimated result size of scanning `ast` with the variables in `bound`
  /// already bound. Constants resolve to dictionary ids and reach the
  /// source's EstimateCardinality, which answers {}, {p} and {s,p} shapes
  /// exactly from aggregated indexes; a constant missing from the
  /// dictionary makes the pattern free (it kills the conjunction
  /// immediately, exactly). Variables bound by earlier steps have no
  /// single id to look up, so their positions stay wildcards for the
  /// lookup and apply the legacy per-position shrink factors on top —
  /// and force `exact = false`. Both halves are pure functions of the
  /// source statistics, so every backend estimates (and plans) alike.
  rdf::TripleSource::CardinalityEstimate EstimateCost(
      const TriplePatternAst& ast, const std::set<std::string>& bound) const {
    rdf::TriplePattern pat;
    bool s_standin = false, p_standin = false, o_standin = false;
    auto fill = [&](const NodeOrVar& n, TermId* slot, bool* standin) {
      if (IsVar(n)) {
        *slot = kInvalidTermId;
        *standin = bound.count(AsVar(n).name) > 0;
        return true;
      }
      *slot = source_.dict().Lookup(AsTerm(n));
      return *slot != kInvalidTermId;
    };
    if (!fill(ast.s, &pat.s, &s_standin) || !fill(ast.p, &pat.p, &p_standin) ||
        !fill(ast.o, &pat.o, &o_standin)) {
      return {0.0, true};
    }
    rdf::TripleSource::CardinalityEstimate ce =
        source_.EstimateCardinality(pat);
    const double total = static_cast<double>(source_.size());
    if (s_standin) {
      ce.rows /= std::max(1.0, total / 100.0);
      ce.exact = false;
    }
    if (p_standin) {
      ce.rows /= std::max(1.0, total / 1000.0);
      ce.exact = false;
    }
    if (o_standin) {
      ce.rows /= std::max(1.0, total / 1000.0);
      ce.exact = false;
    }
    return ce;
  }

  PatternStep CompileStep(const TriplePatternAst& ast) {
    PatternStep st;
    auto fill = [&](const NodeOrVar& n, SlotId* slot, TermId* id,
                    std::string* label) {
      if (IsVar(n)) {
        *slot = InternVar(AsVar(n).name);
        *label += "?" + AsVar(n).name;
      } else {
        *id = source_.dict().Lookup(AsTerm(n));
        if (*id == kInvalidTermId) st.dead = true;
        *label += AsTerm(n).ToNTriples();
      }
    };
    fill(ast.s, &st.s_slot, &st.s_id, &st.label);
    st.label += " ";
    fill(ast.p, &st.p_slot, &st.p_id, &st.label);
    st.label += " ";
    fill(ast.o, &st.o_slot, &st.o_id, &st.label);
    return st;
  }

  CompiledExpr CompileExpr(const Expr& e) {
    CompiledExpr c;
    c.kind = e.kind;
    c.literal = e.literal;
    c.bin_op = e.bin_op;
    c.un_op = e.un_op;
    c.func = e.func;
    if (e.kind == Expr::Kind::kVar) c.slot = InternVar(e.var);
    if (e.kind == Expr::Kind::kLiteral) c.lit_decoded = rdf::DecodeTerm(c.literal);
    c.args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) c.args.push_back(CompileExpr(*a));

    // Constant folding: a variable-free subtree evaluates to the same term
    // for every row, so evaluate it once now. A constant that *errors*
    // (e.g. 1/0) is left unfolded — re-evaluating per row reproduces the
    // SPARQL error semantics (the filter rejects every row) exactly.
    if (c.kind != Expr::Kind::kLiteral && IsConstExpr(c)) {
      Result<rdf::Term> folded = EvalExpr(c, source_.dict(), nullptr);
      if (folded.ok()) {
        CompiledExpr lit;
        lit.kind = Expr::Kind::kLiteral;
        lit.literal = std::move(folded).ValueOrDie();
        lit.lit_decoded = rdf::DecodeTerm(lit.literal);
        return lit;
      }
    }
    return c;
  }

  /// Compiles one group. `bound_in` is the set of variables certainly
  /// bound by the enclosing context (the static image of the dynamic
  /// engine's seed-binding keys). Returns the variables certainly bound in
  /// every solution the group emits: input vars + own triple vars + the
  /// intersection across union branches; optionals contribute nothing
  /// (they may not match).
  std::set<std::string> PlanGroup(const GraphPattern& group,
                                  std::set<std::string> bound,
                                  double in_est, GroupPlan* out,
                                  bool in_optional = false) {
    LODVIZ_TRACE_SPAN("sparql.plan");

    // Replay the greedy selectivity loop statically: repeatedly take the
    // cheapest remaining pattern under the evolving bound set (first
    // minimum wins, as in the dynamic loop), or keep textual order when
    // join optimization is off.
    std::vector<const TriplePatternAst*> remaining;
    remaining.reserve(group.triples.size());
    for (const TriplePatternAst& t : group.triples) remaining.push_back(&t);
    while (!remaining.empty()) {
      size_t pick = 0;
      if (options_.optimize_join_order) {
        double best = std::numeric_limits<double>::infinity();
        for (size_t i = 0; i < remaining.size(); ++i) {
          double cost = EstimateCost(*remaining[i], bound).rows;
          if (cost < best) {
            best = cost;
            pick = i;
          }
        }
      }
      const TriplePatternAst& ast = *remaining[pick];
      remaining.erase(remaining.begin() + pick);
      PatternStep st = CompileStep(ast);
      const rdf::TripleSource::CardinalityEstimate ce =
          EstimateCost(ast, bound);
      st.est_rows = ce.rows;
      st.est_exact = ce.exact;
      st.s_bound = IsVar(ast.s) && bound.count(AsVar(ast.s).name) > 0;
      st.p_bound = IsVar(ast.p) && bound.count(AsVar(ast.p).name) > 0;
      st.o_bound = IsVar(ast.o) && bound.count(AsVar(ast.o).name) > 0;
      st.est_build_rows = EstimateCost(ast, {}).rows;

      // Adaptive join choice. NLJ probes the index once per intermediate
      // solution; the hash join pays one build-side scan up front and then
      // a constant-time probe per solution. Both costs are pure functions
      // of PredicateCount/size, so every backend plans identically.
      const bool has_key = st.s_bound || st.p_bound || st.o_bound;
      if (has_key && !st.dead) {
        const double nlj_cost = in_est * (kNljProbeCost + st.est_rows);
        const double hash_cost =
            kHashBuildCost * st.est_build_rows + kHashProbeCost * in_est;
        bool pick_hash = hash_cost < nlj_cost;
        // Optional groups are re-evaluated once per parent solution, so a
        // hash step here would rebuild its table per row — quadratic, never
        // a win. Under kAuto they always use NLJ; a forced kHash still
        // applies (the parity tests rely on forcing both strategies).
        if (in_optional) pick_hash = false;
        if (options_.force_join == JoinForce::kNestedLoop) pick_hash = false;
        if (options_.force_join == JoinForce::kHash) pick_hash = true;
        st.strategy =
            pick_hash ? JoinStrategy::kHash : JoinStrategy::kNestedLoop;
      }
      in_est *= st.est_rows;
      out->steps.push_back(std::move(st));
      auto note = [&](const NodeOrVar& n) {
        if (IsVar(n)) bound.insert(AsVar(n).name);
      };
      note(ast.s);
      note(ast.p);
      note(ast.o);
    }

    if (!group.union_branches.empty()) {
      std::set<std::string> certain;
      bool first = true;
      for (const GraphPattern& branch : group.union_branches) {
        std::set<std::string> branch_certain =
            PlanGroup(branch, bound, in_est, &out->union_branches.emplace_back(),
                      in_optional);
        if (first) {
          certain = std::move(branch_certain);
          first = false;
        } else {
          std::set<std::string> inter;
          for (const std::string& v : certain) {
            if (branch_certain.count(v)) inter.insert(v);
          }
          certain = std::move(inter);
        }
      }
      bound = std::move(certain);
    }

    for (const GraphPattern& opt : group.optionals) {
      PlanGroup(opt, bound, in_est, &out->optionals.emplace_back(),
                /*in_optional=*/true);
    }

    out->filters.reserve(group.filters.size());
    out->batch_filters.reserve(group.filters.size());
    for (const ExprPtr& f : group.filters) {
      out->filters.push_back(CompileExpr(*f));
      out->batch_filters.push_back(SpecializeFilterForBatch(out->filters.back()));
    }
    return bound;
  }

  const rdf::TripleSource& source_;
  const PlannerOptions& options_;
  QueryPlan* plan_;
};

void AppendGroup(const GroupPlan& g, int depth, std::string* out) {
  std::string indent(static_cast<size_t>(depth) * 2, ' ');
  for (const PatternStep& st : g.steps) {
    const bool hash = st.strategy == JoinStrategy::kHash;
    *out += indent + (hash ? "hash-join " : "scan ") + st.label +
            "  est_rows=" + std::to_string(st.est_rows) +
            (st.est_exact ? " [exact]" : "");
    if (hash) *out += "  build_est=" + std::to_string(st.est_build_rows);
    if (st.dead) *out += "  [dead: constant not in dictionary]";
    *out += "\n";
  }
  for (const GroupPlan& u : g.union_branches) {
    *out += indent + "union branch:\n";
    AppendGroup(u, depth + 1, out);
  }
  for (const GroupPlan& o : g.optionals) {
    *out += indent + "optional:\n";
    AppendGroup(o, depth + 1, out);
  }
  if (!g.filters.empty()) {
    *out += indent + "filter x" + std::to_string(g.filters.size()) + "\n";
  }
}

}  // namespace

BatchFilterSpec SpecializeFilterForBatch(const CompiledExpr& e) {
  BatchFilterSpec spec;
  if (e.kind != Expr::Kind::kBinary || e.args.size() != 2) return spec;
  switch (e.bin_op) {
    case BinOp::kEq:
    case BinOp::kNe:
    case BinOp::kLt:
    case BinOp::kLe:
    case BinOp::kGt:
    case BinOp::kGe:
      break;
    default:
      return spec;
  }
  const CompiledExpr* var = nullptr;
  const CompiledExpr* lit = nullptr;
  bool var_left = true;
  if (e.args[0].kind == Expr::Kind::kVar &&
      e.args[1].kind == Expr::Kind::kLiteral) {
    var = &e.args[0];
    lit = &e.args[1];
  } else if (e.args[0].kind == Expr::Kind::kLiteral &&
             e.args[1].kind == Expr::Kind::kVar) {
    var = &e.args[1];
    lit = &e.args[0];
    var_left = false;
  } else {
    return spec;
  }
  if (var->slot == kNoSlot) return spec;
  // Only a plan-time-decoded numeric constant qualifies: this restricts
  // the fast path to exactly the shape where the row engine takes the
  // both-sides-numeric SlimCompare branch, which is what lets the segment
  // evaluator skip per-row error handling without changing semantics.
  if (lit->lit_decoded.kind != rdf::DecodedValue::Kind::kNum) return spec;
  spec.specialized = true;
  spec.slot = var->slot;
  spec.rhs = lit->lit_decoded.num;
  if (var_left) {
    spec.op = e.bin_op;
  } else {
    // Mirror the comparison so the spec always reads `slot <op> rhs`.
    switch (e.bin_op) {
      case BinOp::kLt:
        spec.op = BinOp::kGt;
        break;
      case BinOp::kLe:
        spec.op = BinOp::kGe;
        break;
      case BinOp::kGt:
        spec.op = BinOp::kLt;
        break;
      case BinOp::kGe:
        spec.op = BinOp::kLe;
        break;
      default:
        spec.op = e.bin_op;  // = and != are symmetric
        break;
    }
  }
  return spec;
}

std::string QueryPlan::ToString() const {
  std::string out = "plan: " + std::to_string(num_slots) + " slots [";
  for (size_t i = 0; i < slot_names.size(); ++i) {
    if (i) out += " ";
    out += "?" + slot_names[i];
  }
  out += "]\n";
  AppendGroup(root, 1, &out);
  return out;
}

QueryPlan PlanQuery(const Query& query, const rdf::TripleSource& source,
                    const PlannerOptions& options) {
  QueryPlan plan;
  PlannerImpl(source, options, &plan).Run(query);
  return plan;
}

}  // namespace lodviz::sparql
