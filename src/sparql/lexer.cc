#include "sparql/lexer.h"

#include <cctype>
#include <unordered_set>

#include "common/string_util.h"
#include "rdf/term.h"

namespace lodviz::sparql {

namespace {

const std::unordered_set<std::string>& Keywords() {
  static const std::unordered_set<std::string> kKeywords = {
      "PREFIX", "SELECT", "ASK",    "CONSTRUCT", "DESCRIBE",
      "DISTINCT", "WHERE",  "FILTER",
      "OPTIONAL", "UNION", "ORDER", "BY",       "ASC",    "DESC",
      "LIMIT",  "OFFSET", "GROUP",  "AS",       "COUNT",  "SUM",
      "AVG",    "MIN",    "MAX",    "BOUND",    "ISIRI",  "ISLITERAL",
      "ISBLANK", "STR",   "CONTAINS", "STRSTARTS", "LANG", "DATATYPE",
      "TRUE",   "FALSE"};
  return kKeywords;
}

bool IsPnameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
         c == '.' || c == '/';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view in) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto push = [&](TokenKind kind, std::string text, size_t off) {
    tokens.push_back({kind, std::move(text), off});
  };

  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < in.size() && in[i] != '\n') ++i;
      continue;
    }
    size_t start = i;
    if (c == '<') {
      // '<' opens an IRI only if a '>' closes it before any whitespace or
      // quote; otherwise it is the less-than operator (e.g. "?a < 10").
      size_t end = std::string_view::npos;
      for (size_t j = i + 1; j < in.size(); ++j) {
        if (in[j] == '>') {
          end = j;
          break;
        }
        if (std::isspace(static_cast<unsigned char>(in[j])) || in[j] == '"' ||
            in[j] == '{' || in[j] == '}' || in[j] == '<') {
          break;
        }
      }
      if (end != std::string_view::npos) {
        push(TokenKind::kIriRef, std::string(in.substr(i + 1, end - i - 1)),
             start);
        i = end + 1;
        continue;
      }
      if (i + 1 < in.size() && in[i + 1] == '=') {
        push(TokenKind::kPunct, "<=", start);
        i += 2;
      } else {
        push(TokenKind::kPunct, "<", start);
        ++i;
      }
      continue;
    }
    if (c == '?' || c == '$') {
      size_t j = i + 1;
      while (j < in.size() &&
             (std::isalnum(static_cast<unsigned char>(in[j])) || in[j] == '_')) {
        ++j;
      }
      if (j == i + 1) {
        return Status::ParseError("empty variable name at offset " +
                                  std::to_string(i));
      }
      push(TokenKind::kVar, std::string(in.substr(i + 1, j - i - 1)), start);
      i = j;
      continue;
    }
    if (c == '"') {
      size_t j = i + 1;
      while (j < in.size()) {
        if (in[j] == '\\') {
          j += 2;
          continue;
        }
        if (in[j] == '"') break;
        ++j;
      }
      if (j >= in.size()) {
        return Status::ParseError("unterminated string at offset " +
                                  std::to_string(i));
      }
      LODVIZ_ASSIGN_OR_RETURN(
          std::string value,
          rdf::UnescapeNTriplesString(in.substr(i + 1, j - i - 1)));
      push(TokenKind::kString, std::move(value), start);
      i = j + 1;
      continue;
    }
    if (c == '@') {
      size_t j = i + 1;
      while (j < in.size() &&
             (std::isalnum(static_cast<unsigned char>(in[j])) || in[j] == '-')) {
        ++j;
      }
      if (j == i + 1) {
        return Status::ParseError("empty language tag at offset " +
                                  std::to_string(i));
      }
      push(TokenKind::kLangTag, std::string(in.substr(i + 1, j - i - 1)),
           start);
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        ((c == '-' || c == '+') && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      size_t j = i + 1;
      bool dot = false;
      while (j < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[j])) ||
              (in[j] == '.' && !dot))) {
        if (in[j] == '.') {
          // A trailing '.' is the statement terminator, not a decimal point.
          if (j + 1 >= in.size() ||
              !std::isdigit(static_cast<unsigned char>(in[j + 1]))) {
            break;
          }
          dot = true;
        }
        ++j;
      }
      push(TokenKind::kNumber, std::string(in.substr(i, j - i)), start);
      i = j;
      continue;
    }
    // Multi-char operators.
    auto two = in.substr(i, 2);
    if (two == "<=" || two == ">=" || two == "!=" || two == "&&" ||
        two == "||" || two == "^^") {
      push(TokenKind::kPunct, std::string(two), start);
      i += 2;
      continue;
    }
    if (std::string_view("{}().;,*=<>!+-/").find(c) != std::string_view::npos) {
      push(TokenKind::kPunct, std::string(1, c), start);
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < in.size() && IsPnameChar(in[j])) ++j;
      std::string word(in.substr(i, j - i));
      // 'a' shorthand only when it stands alone.
      if (word == "a") {
        push(TokenKind::kA, "a", start);
        i = j;
        continue;
      }
      if (word.find(':') == std::string::npos && j < in.size() && in[j] == ':') {
        // prefix: — take the colon and local part.
        ++j;
        while (j < in.size() && IsPnameChar(in[j])) ++j;
        std::string pname(in.substr(i, j - i));
        // A trailing '.' is the statement terminator, not part of the name.
        if (!pname.empty() && pname.back() == '.') {
          pname.pop_back();
          --j;
        }
        push(TokenKind::kPname, std::move(pname), start);
        i = j;
        continue;
      }
      std::string upper = AsciiToLower(word);
      for (char& ch : upper) ch = static_cast<char>(std::toupper(ch));
      if (Keywords().count(upper)) {
        push(TokenKind::kKeyword, upper, start);
      } else {
        // Bare word containing ':'? treat as pname, else error.
        if (word.find(':') != std::string::npos) {
          push(TokenKind::kPname, word, start);
        } else {
          return Status::ParseError("unknown token '" + word + "' at offset " +
                                    std::to_string(i));
        }
      }
      i = j;
      continue;
    }
    return Status::ParseError(std::string("unexpected character '") + c +
                              "' at offset " + std::to_string(i));
  }
  push(TokenKind::kEof, "", in.size());
  return tokens;
}

}  // namespace lodviz::sparql
