#ifndef LODVIZ_SPARQL_ENGINE_H_
#define LODVIZ_SPARQL_ENGINE_H_

#include <string_view>

#include "common/result.h"
#include "rdf/ntriples.h"
#include "rdf/triple_store.h"
#include "sparql/ast.h"
#include "sparql/result_table.h"

namespace lodviz::sparql {

/// Executes parsed queries against an in-memory TripleStore using
/// selectivity-ordered index nested-loop joins (volcano-style, fully
/// materialized per group).
class QueryEngine {
 public:
  struct Options {
    /// Greedy selectivity-based join ordering; disable to execute basic
    /// graph patterns in textual order (used by the E10 bench and the
    /// order-independence property test).
    bool optimize_join_order = true;
  };

  explicit QueryEngine(const rdf::TripleStore* store)
      : QueryEngine(store, Options()) {}
  QueryEngine(const rdf::TripleStore* store, Options options);

  /// Parses and executes a SELECT/ASK query.
  Result<ResultTable> ExecuteString(std::string_view text) const;

  /// Executes an already-parsed SELECT/ASK query.
  Result<ResultTable> Execute(const Query& query) const;

  /// Parses and executes a CONSTRUCT/DESCRIBE query, yielding triples.
  Result<std::vector<rdf::ParsedTriple>> ExecuteGraphString(
      std::string_view text) const;

  /// Executes an already-parsed CONSTRUCT/DESCRIBE query.
  Result<std::vector<rdf::ParsedTriple>> ExecuteGraph(
      const Query& query) const;

  /// Rows produced by the most recent BGP evaluation, including
  /// intermediate join results (cost introspection for E10).
  uint64_t last_intermediate_rows() const { return intermediate_rows_; }

 private:
  const rdf::TripleStore* store_;
  Options options_;
  mutable uint64_t intermediate_rows_ = 0;
};

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_ENGINE_H_
