#ifndef LODVIZ_SPARQL_ENGINE_H_
#define LODVIZ_SPARQL_ENGINE_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "obs/profile.h"
#include "rdf/ntriples.h"
#include "rdf/triple_source.h"
#include "sparql/ast.h"
#include "sparql/executor.h"
#include "sparql/planner.h"
#include "sparql/result_table.h"

namespace lodviz::sparql {

/// How the executor evaluates the operator tree. Both modes run the same
/// plan and return bit-identical results in the same order (the parity
/// suite pins the full grid, see DESIGN.md §4.9); they differ only in the
/// intermediate representation — per-row slot arrays vs vectorized
/// ColumnBatch chunks — and therefore in speed.
enum class ExecMode : uint8_t {
  /// Row-at-a-time BindingTable execution (the original engine).
  kRow = 0,
  /// Vectorized batch execution over ColumnBatch segments (the default).
  kBatch = 1,
};

/// Per-query execution statistics, returned through an out-parameter so
/// the engine keeps no mutable per-query state and a single QueryEngine is
/// safely shareable across threads.
struct QueryStats {
  /// Rows produced by BGP evaluation, including intermediate join results
  /// (cost introspection for E10).
  uint64_t intermediate_rows = 0;
  /// Rows (SELECT/ASK) or triples (CONSTRUCT/DESCRIBE) in the result.
  uint64_t rows_out = 0;
  /// Wall time of planning + execution (parsing excluded), microseconds.
  double latency_us = 0.0;
  /// Normalized-query fingerprint (sparql/fingerprint.h), the plan-cache
  /// key. Computed — along with `profile` — only when profiling is active
  /// or the slow-query journal admits the query; 0 otherwise, so the
  /// disabled path never pays the AST walk.
  uint64_t fingerprint = 0;
  /// Per-operator actuals mirroring the plan; `profile.profiled` is true
  /// only when profiling was active for this execution (Options::profile,
  /// the LODVIZ_PROFILE environment override, or ExplainAnalyze).
  obs::QueryProfile profile;
};

/// Executes parsed queries against any rdf::TripleSource — the in-memory
/// store or a disk-resident one behind storage::DiskSourceAdapter — using
/// selectivity-ordered joins (per pattern either an index nested-loop or a
/// build-once hash join, chosen by the planner; volcano-style, fully
/// materialized per group) over slot-addressed binding rows; planning
/// lives in planner.h, the operator pipeline in executor.h.
///
/// Thread-safety: all methods are const and keep no per-query state, so
/// one engine may serve concurrent queries (TripleSource scans are safe to
/// run concurrently per the TripleSource contract).
class QueryEngine {
 public:
  struct Options {
    /// Greedy selectivity-based join ordering; disable to execute basic
    /// graph patterns in textual order (used by the E10 bench and the
    /// order-independence property test).
    bool optimize_join_order = true;

    /// Overrides the planner's adaptive hash-vs-NLJ join choice (parity
    /// tests and join micro-benchmarks); production leaves it on kAuto.
    JoinForce force_join = JoinForce::kAuto;

    /// Per-query resource budget (executor.h). Unlimited by default; the
    /// serving layer sets it so one hostile or runaway query cannot hold
    /// an engine thread indefinitely. A blown budget surfaces as
    /// StatusCode::kResourceExhausted from Execute*/ExecutePlanned.
    ExecBudget budget;

    /// Record a per-operator obs::QueryProfile into QueryStats::profile on
    /// every execution (what ExplainAnalyze uses internally). Off by
    /// default: the disabled path costs one pointer test per operator.
    /// Setting the LODVIZ_PROFILE environment variable (non-empty, not
    /// "0") force-enables profiling process-wide regardless of this flag —
    /// the parity gate in scripts/check.sh uses it to pin that profiling
    /// never perturbs results.
    bool profile = false;

    /// Execution mode (see ExecMode). Batch by default; kRow keeps the
    /// original row-at-a-time executor for comparison and as the reference
    /// implementation the parity suite checks batch mode against. Setting
    /// the LODVIZ_EXEC_MODE environment variable to "row" or "batch"
    /// force-overrides this flag process-wide — the gate in
    /// scripts/check.sh re-runs the parity suite under both values.
    ExecMode exec_mode = ExecMode::kBatch;
  };

  explicit QueryEngine(const rdf::TripleSource* source)
      : QueryEngine(source, Options()) {}
  QueryEngine(const rdf::TripleSource* source, Options options);

  /// Parses and executes a SELECT/ASK query.
  Result<ResultTable> ExecuteString(std::string_view text,
                                    QueryStats* stats = nullptr) const;

  /// Executes an already-parsed SELECT/ASK query.
  Result<ResultTable> Execute(const Query& query,
                              QueryStats* stats = nullptr) const;

  /// Plans `query` with this engine's source statistics and options, the
  /// same way Execute does internally. QueryPlan is a self-contained value
  /// (copyable), so callers may keep it — the serving layer's plan cache
  /// (serve/plan_cache.h) stores these keyed by the query fingerprint.
  [[nodiscard]] QueryPlan Plan(const Query& query) const;

  /// Executes a SELECT/ASK query with a plan previously produced by Plan()
  /// for an identical query against this engine's source — the cache-hit
  /// path of the serving layer. Results are bit-identical to Execute():
  /// both run the same plan through the same executor; Execute merely
  /// plans first. Passing a plan built from a *different* query is
  /// undefined (slots would not line up). `text`, when provided, is the
  /// query's source text, kept for the slow-query journal.
  Result<ResultTable> ExecutePlanned(const Query& query,
                                     const QueryPlan& plan,
                                     QueryStats* stats = nullptr,
                                     std::string_view text = {}) const;

  /// Parses and executes a CONSTRUCT/DESCRIBE query, yielding triples.
  Result<std::vector<rdf::ParsedTriple>> ExecuteGraphString(
      std::string_view text, QueryStats* stats = nullptr) const;

  /// Executes an already-parsed CONSTRUCT/DESCRIBE query.
  Result<std::vector<rdf::ParsedTriple>> ExecuteGraph(
      const Query& query, QueryStats* stats = nullptr) const;

  /// Renders the logical plan (slot table, join order, per-pattern
  /// cardinality estimates) without executing — the explain hook used by
  /// explore sessions and the CLI.
  Result<std::string> ExplainString(std::string_view text) const;
  [[nodiscard]] std::string Explain(const Query& query) const;

  /// Executes the query with profiling on (regardless of Options::profile)
  /// and renders the operator tree with estimated vs actual cardinality,
  /// invocation counts and wall time per operator; misestimates of
  /// obs::kMisestimateFactor or worse are flagged inline. Works for every
  /// query form; the result itself is discarded.
  Result<std::string> ExplainAnalyzeString(std::string_view text) const;
  Result<std::string> ExplainAnalyze(const Query& query) const {
    return ExplainAnalyzeImpl(query, {});
  }

 private:
  Result<std::string> ExplainAnalyzeImpl(const Query& query,
                                         std::string_view text) const;
  Result<ResultTable> ExecuteImpl(const Query& query, QueryStats* stats,
                                  std::string_view text) const;
  Result<ResultTable> ExecutePlannedImpl(const Query& query,
                                         const QueryPlan& plan,
                                         QueryStats* stats,
                                         std::string_view text) const;
  Result<std::vector<rdf::ParsedTriple>> ExecuteGraphImpl(
      const Query& query, QueryStats* stats, std::string_view text) const;

  const rdf::TripleSource* source_;
  Options options_;
};

}  // namespace lodviz::sparql

#endif  // LODVIZ_SPARQL_ENGINE_H_
