#include "sparql/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>

#include "rdf/dictionary.h"

#include "common/stopwatch.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "sparql/executor.h"
#include "sparql/fingerprint.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace lodviz::sparql {

namespace {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

Result<Query> ParseTraced(std::string_view text) {
  LODVIZ_TRACE_SPAN("sparql.parse");
  return ParseQuery(text);
}

/// Row width for executor tables: at least one slot so a zero-variable
/// query (e.g. ASK with only constants) can still represent its single
/// empty seed solution.
size_t RowWidth(const QueryPlan& plan) {
  return std::max<size_t>(1, plan.num_slots);
}

ResultCell CellFor(const rdf::Dictionary& dict, const TermId* row,
                   SlotId slot) {
  ResultCell cell;
  if (slot == kNoSlot || row[slot] == kInvalidTermId) {
    cell.bound = false;
  } else {
    cell.term = dict.term(row[slot]);
  }
  return cell;
}

std::string RowKey(const std::vector<ResultCell>& row) {
  std::string key;
  for (const ResultCell& c : row) {
    key += c.bound ? c.term.ToNTriples() : "~";
    key += '\x01';
  }
  return key;
}

/// Three-way ORDER BY comparison over two bound terms. Total and
/// deterministic: terms compare by value class first (numeric < temporal
/// < boolean < everything else), then by decoded value within the class,
/// and terms in the last class — plain/lang/undecodable literals, IRIs,
/// blanks, and NaN numerics — compare by their N-Triples spelling, so
/// "error" terms sort after all comparable values instead of mapping a
/// comparison failure to "equal". The previous comparator did the latter
/// (`cv = c.ok() ? value : 0`), which is asymmetric when only one pairing
/// errors and breaks the strict weak ordering std::stable_sort requires
/// (undefined behavior); it also compared mixed numeric/lexical pairs
/// lexically, making `5 ~ "abc" ~ 3` intransitive. Value-equal terms with
/// different spellings (`30` vs `"+30"^^xsd:integer`) stay equivalent so
/// secondary sort keys still apply.
int CompareCellsForOrder(const Term& a, const Term& b) {
  // 0 = numeric, 1 = temporal, 2 = boolean, 3 = lexical/error.
  auto cls = [](const rdf::DecodedValue& v) {
    switch (v.kind) {
      case rdf::DecodedValue::Kind::kNum:
        // NaN compares false both ways; keep it out of the numeric class
        // or it would be "equivalent" to every number at once.
        return std::isnan(v.num) ? 3 : 0;
      case rdf::DecodedValue::Kind::kTime:
        return 1;
      case rdf::DecodedValue::Kind::kBool:
        return 2;
      case rdf::DecodedValue::Kind::kNone:
        return 3;
    }
    return 3;
  };
  const rdf::DecodedValue da = rdf::DecodeTerm(a);
  const rdf::DecodedValue db = rdf::DecodeTerm(b);
  const int ca = cls(da);
  const int cb = cls(db);
  if (ca != cb) return ca < cb ? -1 : 1;
  switch (ca) {
    case 0:
      if (da.num < db.num) return -1;
      if (da.num > db.num) return 1;
      return 0;
    case 1:
      if (da.epoch < db.epoch) return -1;
      if (da.epoch > db.epoch) return 1;
      return 0;
    case 2:
      if (da.b != db.b) return da.b ? 1 : -1;
      return 0;
    default: {
      const std::string sa = a.ToNTriples();
      const std::string sb = b.ToNTriples();
      if (sa != sb) return sa < sb ? -1 : 1;
      return 0;
    }
  }
}

PlannerOptions ToPlannerOptions(const QueryEngine::Options& o) {
  PlannerOptions p;
  p.optimize_join_order = o.optimize_join_order;
  p.force_join = o.force_join;
  return p;
}

/// LODVIZ_PROFILE (non-empty, not "0") force-enables profiling for every
/// engine in the process regardless of Options::profile — the parity gate
/// in scripts/check.sh runs the suite under it to pin that profiling never
/// perturbs results. Read once; afterwards the check is one static load.
bool ProfilingForced() {
  static const bool forced = [] {
    const char* v = std::getenv("LODVIZ_PROFILE");
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return forced;
}

/// Shared tail of both execution paths, run from the ExecFold destructor
/// on every exit: publishes the profile into `stats` and journals the
/// query when it crosses the slow-query threshold. With profiling off and
/// the journal disabled (or the query fast) this returns after two cheap
/// tests — in particular the fingerprint's AST walk is never paid.
void FinalizeObservability(const Query& query, std::string_view text,
                           double latency_us, uint64_t rows_out,
                           uint64_t intermediate_rows,
                           obs::OperatorProfile* skeleton,
                           QueryStats* stats) {
  obs::QueryLog& journal = obs::QueryLog::Global();
  const bool journaled = journal.ShouldRecord(latency_us);
  if (skeleton == nullptr && !journaled) return;

  obs::QueryProfile profile;
  profile.fingerprint = QueryFingerprint(query);
  profile.total_ns = static_cast<int64_t>(latency_us * 1e3);
  profile.rows_out = rows_out;
  profile.intermediate_rows = intermediate_rows;
  profile.profiled = skeleton != nullptr;
  if (skeleton != nullptr) profile.root = std::move(*skeleton);
  if (stats != nullptr) {
    stats->fingerprint = profile.fingerprint;
    if (journaled) {
      stats->profile = profile;
    } else {
      stats->profile = std::move(profile);
    }
  }
  if (journaled) {
    obs::QueryLogEntry entry;
    entry.fingerprint = profile.fingerprint;
    entry.query = std::string(text);
    entry.latency_us = latency_us;
    entry.rows_out = rows_out;
    entry.intermediate_rows = intermediate_rows;
    entry.profile = std::move(profile);
    journal.Record(std::move(entry));
  }
}

}  // namespace

QueryEngine::QueryEngine(const rdf::TripleSource* source, Options options)
    : source_(source), options_(options) {}

Result<ResultTable> QueryEngine::ExecuteString(std::string_view text,
                                               QueryStats* stats) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExecuteImpl(q, stats, text);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraphString(
    std::string_view text, QueryStats* stats) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExecuteGraphImpl(q, stats, text);
}

Result<ResultTable> QueryEngine::Execute(const Query& query,
                                         QueryStats* stats) const {
  return ExecuteImpl(query, stats, {});
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraph(
    const Query& query, QueryStats* stats) const {
  return ExecuteGraphImpl(query, stats, {});
}

QueryPlan QueryEngine::Plan(const Query& query) const {
  return PlanQuery(query, *source_, ToPlannerOptions(options_));
}

Result<ResultTable> QueryEngine::ExecutePlanned(const Query& query,
                                                const QueryPlan& plan,
                                                QueryStats* stats,
                                                std::string_view text) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "use ExecuteGraph for CONSTRUCT/DESCRIBE queries");
  }
  return ExecutePlannedImpl(query, plan, stats, text);
}

std::string QueryEngine::Explain(const Query& query) const {
  return Plan(query).ToString();
}

Result<std::string> QueryEngine::ExplainString(std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return Explain(q);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraphImpl(
    const Query& query, QueryStats* stats, std::string_view text) const {
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;
  const rdf::Dictionary& dict = source_->dict();
  std::vector<rdf::ParsedTriple> out;

  const bool profiling = options_.profile || ProfilingForced();
  QueryPlan plan = PlanQuery(query, *source_, ToPlannerOptions(options_));
  obs::OperatorProfile skeleton;
  if (profiling) skeleton = BuildProfileSkeleton(plan.root);
  obs::OperatorProfile* prof = profiling ? &skeleton : nullptr;
  uint64_t intermediate = 0;
  // Counted separately from `out`: `return out;` moves the vector into the
  // Result before the fold below destructs, so out.size() would read the
  // moved-from (empty) vector there.
  uint64_t emitted = 0;

  // Record latency, output rows, profile and journal on every exit path.
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const uint64_t& emitted;
    QueryStats* stats;
    const Query& query;
    std::string_view text;
    const uint64_t& intermediate;
    obs::OperatorProfile* prof;
    ~ExecFold() {
      const double us = sw.ElapsedMicros();
      metrics.rows_out.Increment(emitted);
      metrics.execute_us.RecordDouble(us);
      if (stats != nullptr) {
        stats->rows_out = emitted;
        stats->latency_us = us;
      }
      FinalizeObservability(query, text, us, emitted, intermediate, prof,
                            stats);
    }
  } fold{metrics, sw, emitted, stats, query, text, intermediate, prof};
  std::set<std::string> seen;
  auto emit = [&](Term s, Term p, Term o) {
    std::string key =
        s.ToNTriples() + "\x01" + p.ToNTriples() + "\x01" + o.ToNTriples();
    if (seen.insert(std::move(key)).second) {
      out.push_back({std::move(s), std::move(p), std::move(o)});
      ++emitted;
    }
  };

  bool budget_blown = false;
  auto eval_where = [&]() {
    Executor executor(source_, RowWidth(plan), prof, options_.budget);
    BindingTable seeds(RowWidth(plan));
    seeds.AppendEmptyRow();
    obs::OperatorTimer timer(prof);
    BindingTable solutions = executor.EvalGroup(plan.root, seeds);
    timer.Finish(solutions.num_rows());
    metrics.intermediate_rows.Increment(executor.intermediate_rows());
    intermediate = executor.intermediate_rows();
    if (stats != nullptr) {
      stats->intermediate_rows = executor.intermediate_rows();
    }
    budget_blown = executor.budget_exhausted();
    return solutions;
  };

  if (query.form == QueryForm::kConstruct) {
    BindingTable solutions = eval_where();
    if (budget_blown) {
      return Status::ResourceExhausted("query exceeded its execution budget");
    }
    // Resolve template positions to slots once, not per solution.
    struct TemplateStep {
      SlotId s_slot, p_slot, o_slot;
      Term s_const, p_const, o_const;
    };
    std::vector<TemplateStep> compiled;
    for (const TriplePatternAst& tmpl : query.construct_template) {
      TemplateStep ts{kNoSlot, kNoSlot, kNoSlot, {}, {}, {}};
      auto fill = [&](const NodeOrVar& n, SlotId* slot, Term* c) {
        if (IsVar(n)) {
          *slot = plan.SlotOf(AsVar(n).name);
        } else {
          *c = AsTerm(n);
        }
      };
      fill(tmpl.s, &ts.s_slot, &ts.s_const);
      fill(tmpl.p, &ts.p_slot, &ts.p_const);
      fill(tmpl.o, &ts.o_slot, &ts.o_const);
      compiled.push_back(std::move(ts));
    }
    for (size_t i = 0; i < solutions.num_rows(); ++i) {
      const TermId* row = solutions.row(i);
      for (const TemplateStep& ts : compiled) {
        auto resolve = [&](SlotId slot, const Term& c, Term* t) {
          if (slot == kNoSlot) {
            *t = c;
            return true;
          }
          if (row[slot] == kInvalidTermId) return false;
          *t = dict.term(row[slot]);
          return true;
        };
        Term s, p, o;
        if (!resolve(ts.s_slot, ts.s_const, &s) ||
            !resolve(ts.p_slot, ts.p_const, &p) ||
            !resolve(ts.o_slot, ts.o_const, &o)) {
          continue;  // unbound variable: skip this template instance
        }
        if (s.is_literal() || !p.is_iri()) continue;  // invalid RDF
        emit(std::move(s), std::move(p), std::move(o));
      }
    }
    return out;
  }

  if (query.form == QueryForm::kDescribe) {
    // Collect the resources to describe.
    std::vector<TermId> resources;
    std::vector<SlotId> target_slots;
    bool has_var_target = false;
    for (const NodeOrVar& target : query.describe_targets) {
      if (IsVar(target)) {
        has_var_target = true;
        target_slots.push_back(plan.SlotOf(AsVar(target).name));
      } else {
        TermId id = dict.Lookup(AsTerm(target));
        if (id != kInvalidTermId) resources.push_back(id);
      }
    }
    if (has_var_target) {
      BindingTable solutions = eval_where();
      if (budget_blown) {
        return Status::ResourceExhausted(
            "query exceeded its execution budget");
      }
      for (size_t i = 0; i < solutions.num_rows(); ++i) {
        const TermId* row = solutions.row(i);
        for (SlotId slot : target_slots) {
          if (slot != kNoSlot && row[slot] != kInvalidTermId) {
            resources.push_back(row[slot]);
          }
        }
      }
    }
    std::sort(resources.begin(), resources.end());
    resources.erase(std::unique(resources.begin(), resources.end()),
                    resources.end());

    // Emit every triple where the resource is subject or object.
    for (TermId r : resources) {
      source_->Scan({r, kInvalidTermId, kInvalidTermId},
                    [&](const rdf::Triple& t) {
                      emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                      return true;
                    });
      source_->Scan({kInvalidTermId, kInvalidTermId, r},
                    [&](const rdf::Triple& t) {
                      emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                      return true;
                    });
    }
    return out;
  }

  return Status::InvalidArgument(
      "ExecuteGraph expects a CONSTRUCT or DESCRIBE query");
}

Result<ResultTable> QueryEngine::ExecuteImpl(const Query& query,
                                             QueryStats* stats,
                                             std::string_view text) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "use ExecuteGraph for CONSTRUCT/DESCRIBE queries");
  }
  return ExecutePlannedImpl(query, Plan(query), stats, text);
}

Result<ResultTable> QueryEngine::ExecutePlannedImpl(
    const Query& query, const QueryPlan& plan, QueryStats* stats,
    std::string_view text) const {
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;

  const bool profiling = options_.profile || ProfilingForced();
  obs::OperatorProfile skeleton;
  if (profiling) skeleton = BuildProfileSkeleton(plan.root);
  obs::OperatorProfile* prof = profiling ? &skeleton : nullptr;

  Executor executor(source_, RowWidth(plan), prof, options_.budget);
  BindingTable seeds(RowWidth(plan));
  seeds.AppendEmptyRow();
  obs::OperatorTimer root_timer(prof);
  BindingTable solutions = executor.EvalGroup(plan.root, seeds);
  root_timer.Finish(solutions.num_rows());
  metrics.intermediate_rows.Increment(executor.intermediate_rows());
  const uint64_t intermediate = executor.intermediate_rows();
  if (stats != nullptr) {
    stats->intermediate_rows = intermediate;
  }

  // Record latency, output rows, profile and journal on every exit path.
  uint64_t rows_out = 0;
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const uint64_t& rows_out;
    QueryStats* stats;
    const Query& query;
    std::string_view text;
    uint64_t intermediate;
    obs::OperatorProfile* prof;
    ~ExecFold() {
      const double us = sw.ElapsedMicros();
      metrics.rows_out.Increment(rows_out);
      metrics.execute_us.RecordDouble(us);
      if (stats != nullptr) {
        stats->rows_out = rows_out;
        stats->latency_us = us;
      }
      FinalizeObservability(query, text, us, rows_out, intermediate, prof,
                            stats);
    }
  } fold{metrics, sw, rows_out, stats, query, text, intermediate, prof};

  // A blown budget leaves a deliberately truncated solution table; discard
  // it (the fold above still records latency and journals the query).
  if (executor.budget_exhausted()) {
    return Status::ResourceExhausted("query exceeded its execution budget");
  }

  const rdf::Dictionary& dict = source_->dict();

  if (query.form == QueryForm::kAsk) {
    ResultTable table;
    table.ask_result = solutions.num_rows() > 0;
    return table;
  }

  // Determine output columns.
  std::vector<std::string> columns = query.select_vars;
  if (columns.empty() && query.aggregates.empty()) {
    columns = plan.visible_vars;
  }
  std::vector<SlotId> column_slots;
  column_slots.reserve(columns.size());
  for (const std::string& v : columns) column_slots.push_back(plan.SlotOf(v));

  // ---- Aggregation path ----
  if (!query.aggregates.empty()) {
    std::vector<std::string> out_columns = query.group_by;
    for (const Aggregate& a : query.aggregates) out_columns.push_back(a.alias);
    ResultTable table(out_columns);

    std::vector<SlotId> group_slots;
    group_slots.reserve(query.group_by.size());
    for (const std::string& v : query.group_by) {
      group_slots.push_back(plan.SlotOf(v));
    }

    // Group solution rows by the group-by key (slot values; unbound = 0).
    std::map<std::vector<TermId>, std::vector<size_t>> groups;
    for (size_t i = 0; i < solutions.num_rows(); ++i) {
      const TermId* row = solutions.row(i);
      std::vector<TermId> key;
      key.reserve(group_slots.size());
      for (SlotId slot : group_slots) {
        key.push_back(slot == kNoSlot ? kInvalidTermId : row[slot]);
      }
      groups[std::move(key)].push_back(i);
    }
    if (groups.empty() && query.group_by.empty()) {
      groups[{}] = {};  // aggregates over zero rows still yield one row
    }

    for (const auto& [key, members] : groups) {
      std::vector<ResultCell> row;
      if (!members.empty()) {
        const TermId* first = solutions.row(members.front());
        for (SlotId slot : group_slots) {
          row.push_back(CellFor(dict, first, slot));
        }
      } else {
        for (size_t i = 0; i < group_slots.size(); ++i) {
          row.push_back(ResultCell{{}, false});
        }
      }
      for (const Aggregate& agg : query.aggregates) {
        if (agg.fn == Aggregate::Fn::kCount && agg.var.empty()) {
          row.push_back(ResultCell{
              Term::IntLiteral(static_cast<int64_t>(members.size()))});
          continue;
        }
        // Collect the argument terms (bound only). DISTINCT dedups on the
        // dictionary id: interning is injective, so id equality is term
        // equality.
        SlotId arg_slot = plan.SlotOf(agg.var);
        std::vector<Term> values;
        std::set<TermId> distinct_seen;
        for (size_t member : members) {
          const TermId* mrow = solutions.row(member);
          if (arg_slot == kNoSlot || mrow[arg_slot] == kInvalidTermId) {
            continue;
          }
          if (agg.distinct && !distinct_seen.insert(mrow[arg_slot]).second) {
            continue;
          }
          values.push_back(dict.term(mrow[arg_slot]));
        }
        switch (agg.fn) {
          case Aggregate::Fn::kCount:
            row.push_back(ResultCell{
                Term::IntLiteral(static_cast<int64_t>(values.size()))});
            break;
          case Aggregate::Fn::kSum:
          case Aggregate::Fn::kAvg: {
            double sum = 0;
            uint64_t n = 0;
            for (const Term& t : values) {
              Result<double> v = t.AsDouble();
              if (v.ok()) {
                sum += v.ValueOrDie();
                ++n;
              }
            }
            double result = agg.fn == Aggregate::Fn::kSum
                                ? sum
                                : (n ? sum / static_cast<double>(n) : 0.0);
            row.push_back(ResultCell{Term::DoubleLiteral(result)});
            break;
          }
          case Aggregate::Fn::kMin:
          case Aggregate::Fn::kMax: {
            if (values.empty()) {
              row.push_back(ResultCell{{}, false});
              break;
            }
            const Term* best = &values.front();
            for (const Term& t : values) {
              Result<int> c = CompareTerms(t, *best);
              if (c.ok() &&
                  ((agg.fn == Aggregate::Fn::kMin && c.ValueOrDie() < 0) ||
                   (agg.fn == Aggregate::Fn::kMax && c.ValueOrDie() > 0))) {
                best = &t;
              }
            }
            row.push_back(ResultCell{*best});
            break;
          }
        }
      }
      table.AddRow(std::move(row));
    }
    rows_out = table.num_rows();
    return table;
  }

  // ---- Plain projection path ----
  ResultTable table(columns);
  for (size_t i = 0; i < solutions.num_rows(); ++i) {
    const TermId* srow = solutions.row(i);
    std::vector<ResultCell> row;
    row.reserve(columns.size());
    for (SlotId slot : column_slots) row.push_back(CellFor(dict, srow, slot));
    table.AddRow(std::move(row));
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    std::vector<int> key_idx;
    for (const OrderKey& k : query.order_by) {
      key_idx.push_back(table.ColumnIndex(k.var));
    }
    std::vector<std::vector<ResultCell>> rows = table.rows();
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const std::vector<ResultCell>& a,
                         const std::vector<ResultCell>& b) {
                       for (size_t i = 0; i < key_idx.size(); ++i) {
                         int idx = key_idx[i];
                         if (idx < 0) continue;
                         const ResultCell& ca = a[idx];
                         const ResultCell& cb = b[idx];
                         if (!ca.bound && !cb.bound) continue;
                         if (!ca.bound) return query.order_by[i].ascending;
                         if (!cb.bound) return !query.order_by[i].ascending;
                         int cv = CompareCellsForOrder(ca.term, cb.term);
                         if (cv != 0) {
                           return query.order_by[i].ascending ? cv < 0
                                                              : cv > 0;
                         }
                       }
                       return false;
                     });
    ResultTable sorted(columns);
    for (auto& r : rows) sorted.AddRow(std::move(r));
    table = std::move(sorted);
  }

  // DISTINCT.
  if (query.distinct) {
    ResultTable deduped(columns);
    std::set<std::string> seen;
    for (const auto& row : table.rows()) {
      if (seen.insert(RowKey(row)).second) deduped.AddRow(row);
    }
    table = std::move(deduped);
  }

  // OFFSET / LIMIT.
  if (query.offset > 0 || query.limit >= 0) {
    ResultTable sliced(columns);
    int64_t skipped = 0, taken = 0;
    for (const auto& row : table.rows()) {
      if (skipped < query.offset) {
        ++skipped;
        continue;
      }
      if (query.limit >= 0 && taken >= query.limit) break;
      sliced.AddRow(row);
      ++taken;
    }
    table = std::move(sliced);
  }

  rows_out = table.num_rows();
  return table;
}

Result<std::string> QueryEngine::ExplainAnalyzeImpl(
    const Query& query, std::string_view text) const {
  Options opts = options_;
  opts.profile = true;
  QueryEngine profiled(source_, opts);
  QueryStats stats;
  // Threads `text` through so a journal-admitted run keeps the query text.
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    LODVIZ_ASSIGN_OR_RETURN(std::vector<rdf::ParsedTriple> discarded,
                            profiled.ExecuteGraphImpl(query, &stats, text));
    (void)discarded;
  } else {
    LODVIZ_ASSIGN_OR_RETURN(ResultTable discarded,
                            profiled.ExecuteImpl(query, &stats, text));
    (void)discarded;
  }

  char line[160];
  std::snprintf(line, sizeof(line),
                "explain analyze  fingerprint=0x%016llx\n",
                static_cast<unsigned long long>(stats.fingerprint));
  std::string out = line;
  out += obs::ProfileTreeString(stats.profile.root);
  std::snprintf(
      line, sizeof(line),
      "total: rows_out=%llu  intermediate_rows=%llu  time=%.1fus\n",
      static_cast<unsigned long long>(stats.rows_out),
      static_cast<unsigned long long>(stats.intermediate_rows),
      stats.latency_us);
  out += line;
  return out;
}

Result<std::string> QueryEngine::ExplainAnalyzeString(
    std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExplainAnalyzeImpl(q, text);
}

}  // namespace lodviz::sparql
