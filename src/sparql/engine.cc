#include "sparql/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "rdf/dictionary.h"

#include "common/stopwatch.h"
#include "obs/query_log.h"
#include "obs/trace.h"
#include "sparql/executor.h"
#include "sparql/fingerprint.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace lodviz::sparql {

namespace {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

Result<Query> ParseTraced(std::string_view text) {
  LODVIZ_TRACE_SPAN("sparql.parse");
  return ParseQuery(text);
}

/// Row width for executor tables: at least one slot so a zero-variable
/// query (e.g. ASK with only constants) can still represent its single
/// empty seed solution.
size_t RowWidth(const QueryPlan& plan) {
  return std::max<size_t>(1, plan.num_slots);
}

/// One solution row of a batch list: (batch index, physical row). The
/// engine tail works on vectors of these — ORDER BY, DISTINCT and
/// OFFSET/LIMIT permute/prune references and only the survivors
/// materialize Terms (late materialization).
struct RowRef {
  uint32_t batch;
  uint32_t phys;
};

/// Slot value of a referenced solution row; kInvalidTermId for kNoSlot
/// (projected-but-never-bound columns) and unbound slots alike, which is
/// exactly the "unbound" notion the result layer uses.
TermId SlotAt(const std::vector<ColumnBatch>& solutions, RowRef r,
              SlotId slot) {
  return slot == kNoSlot ? kInvalidTermId : solutions[r.batch].at(r.phys, slot);
}

ResultCell CellAt(const rdf::Dictionary& dict,
                  const std::vector<ColumnBatch>& solutions, RowRef r,
                  SlotId slot) {
  ResultCell cell;
  const TermId id = SlotAt(solutions, r, slot);
  if (id == kInvalidTermId) {
    cell.bound = false;
  } else {
    cell.term = dict.term(id);
  }
  return cell;
}

/// Flattens the batch list into one RowRef per active row, in logical
/// order.
std::vector<RowRef> CollectRefs(const std::vector<ColumnBatch>& solutions) {
  std::vector<RowRef> refs;
  refs.reserve(TotalActiveRows(solutions));
  for (size_t bi = 0; bi < solutions.size(); ++bi) {
    const ColumnBatch& b = solutions[bi];
    for (size_t i = 0; i < b.active(); ++i) {
      refs.push_back({static_cast<uint32_t>(bi), b.ActiveRow(i)});
    }
  }
  return refs;
}

/// FNV-1a over a TermId vector, word at a time — the GROUP BY / DISTINCT
/// hash key. TermIds are interned, so id-vector equality is term-tuple
/// equality and no string ever enters the key.
struct TermVecHash {
  size_t operator()(const std::vector<TermId>& v) const {
    uint64_t h = 0xCBF29CE484222325ULL;  // FNV offset basis
    for (TermId t : v) {
      h ^= static_cast<uint64_t>(t);
      h *= 0x100000001B3ULL;  // FNV prime
    }
    return static_cast<size_t>(h);
  }
};

/// Three-way ORDER BY comparison over two bound terms. Total and
/// deterministic: terms compare by value class first (numeric < temporal
/// < boolean < everything else), then by decoded value within the class,
/// and terms in the last class — plain/lang/undecodable literals, IRIs,
/// blanks, and NaN numerics — compare by their N-Triples spelling, so
/// "error" terms sort after all comparable values instead of mapping a
/// comparison failure to "equal". The previous comparator did the latter
/// (`cv = c.ok() ? value : 0`), which is asymmetric when only one pairing
/// errors and breaks the strict weak ordering std::stable_sort requires
/// (undefined behavior); it also compared mixed numeric/lexical pairs
/// lexically, making `5 ~ "abc" ~ 3` intransitive. Value-equal terms with
/// different spellings (`30` vs `"+30"^^xsd:integer`) stay equivalent so
/// secondary sort keys still apply.
int CompareCellsForOrder(const Term& a, const Term& b) {
  // 0 = numeric, 1 = temporal, 2 = boolean, 3 = lexical/error.
  auto cls = [](const rdf::DecodedValue& v) {
    switch (v.kind) {
      case rdf::DecodedValue::Kind::kNum:
        // NaN compares false both ways; keep it out of the numeric class
        // or it would be "equivalent" to every number at once.
        return std::isnan(v.num) ? 3 : 0;
      case rdf::DecodedValue::Kind::kTime:
        return 1;
      case rdf::DecodedValue::Kind::kBool:
        return 2;
      case rdf::DecodedValue::Kind::kNone:
        return 3;
    }
    return 3;
  };
  const rdf::DecodedValue da = rdf::DecodeTerm(a);
  const rdf::DecodedValue db = rdf::DecodeTerm(b);
  const int ca = cls(da);
  const int cb = cls(db);
  if (ca != cb) return ca < cb ? -1 : 1;
  switch (ca) {
    case 0:
      if (da.num < db.num) return -1;
      if (da.num > db.num) return 1;
      return 0;
    case 1:
      if (da.epoch < db.epoch) return -1;
      if (da.epoch > db.epoch) return 1;
      return 0;
    case 2:
      if (da.b != db.b) return da.b ? 1 : -1;
      return 0;
    default: {
      const std::string sa = a.ToNTriples();
      const std::string sb = b.ToNTriples();
      if (sa != sb) return sa < sb ? -1 : 1;
      return 0;
    }
  }
}

PlannerOptions ToPlannerOptions(const QueryEngine::Options& o) {
  PlannerOptions p;
  p.optimize_join_order = o.optimize_join_order;
  p.force_join = o.force_join;
  return p;
}

/// LODVIZ_PROFILE (non-empty, not "0") force-enables profiling for every
/// engine in the process regardless of Options::profile — the parity gate
/// in scripts/check.sh runs the suite under it to pin that profiling never
/// perturbs results. Read once; afterwards the check is one static load.
bool ProfilingForced() {
  static const bool forced = [] {
    const char* v = std::getenv("LODVIZ_PROFILE");
    return v != nullptr && *v != '\0' && std::string_view(v) != "0";
  }();
  return forced;
}

/// LODVIZ_EXEC_MODE ("row" or "batch") force-overrides Options::exec_mode
/// for every engine in the process — scripts/check.sh re-runs the parity
/// suite under both values to pin that the two executors agree on the same
/// binaries. Any other value is ignored. Read once, like LODVIZ_PROFILE.
ExecMode EffectiveExecMode(const QueryEngine::Options& options) {
  enum class Forced : uint8_t { kNone, kRow, kBatch };
  static const Forced forced = [] {
    const char* v = std::getenv("LODVIZ_EXEC_MODE");
    if (v == nullptr) return Forced::kNone;
    const std::string_view s(v);
    if (s == "row") return Forced::kRow;
    if (s == "batch") return Forced::kBatch;
    return Forced::kNone;
  }();
  switch (forced) {
    case Forced::kRow:
      return ExecMode::kRow;
    case Forced::kBatch:
      return ExecMode::kBatch;
    case Forced::kNone:
      break;
  }
  return options.exec_mode;
}

/// Evaluates the plan's root group under `mode`, always yielding batches:
/// batch mode natively, row mode through the BindingTable→ColumnBatch
/// bridge. Everything downstream of this call (solution modifiers,
/// projection, templates) consumes one representation regardless of mode.
std::vector<ColumnBatch> RunRootGroup(Executor& executor,
                                      const QueryPlan& plan, ExecMode mode) {
  const size_t width = RowWidth(plan);
  if (mode == ExecMode::kBatch) {
    std::vector<ColumnBatch> seeds(1, ColumnBatch(width));
    const std::vector<TermId> empty_row(width, kInvalidTermId);
    seeds[0].AppendRow(empty_row.data());
    return executor.EvalGroupBatches(plan.root, seeds);
  }
  BindingTable seeds(width);
  seeds.AppendEmptyRow();
  return executor.EvalGroup(plan.root, seeds).ToBatches();
}

/// Shared tail of both execution paths, run from the ExecFold destructor
/// on every exit: publishes the profile into `stats` and journals the
/// query when it crosses the slow-query threshold. With profiling off and
/// the journal disabled (or the query fast) this returns after two cheap
/// tests — in particular the fingerprint's AST walk is never paid.
void FinalizeObservability(const Query& query, std::string_view text,
                           double latency_us, uint64_t rows_out,
                           uint64_t intermediate_rows,
                           obs::OperatorProfile* skeleton,
                           QueryStats* stats) {
  obs::QueryLog& journal = obs::QueryLog::Global();
  const bool journaled = journal.ShouldRecord(latency_us);
  if (skeleton == nullptr && !journaled) return;

  obs::QueryProfile profile;
  profile.fingerprint = QueryFingerprint(query);
  profile.total_ns = static_cast<int64_t>(latency_us * 1e3);
  profile.rows_out = rows_out;
  profile.intermediate_rows = intermediate_rows;
  profile.profiled = skeleton != nullptr;
  if (skeleton != nullptr) profile.root = std::move(*skeleton);
  if (stats != nullptr) {
    stats->fingerprint = profile.fingerprint;
    if (journaled) {
      stats->profile = profile;
    } else {
      stats->profile = std::move(profile);
    }
  }
  if (journaled) {
    obs::QueryLogEntry entry;
    entry.fingerprint = profile.fingerprint;
    entry.query = std::string(text);
    entry.latency_us = latency_us;
    entry.rows_out = rows_out;
    entry.intermediate_rows = intermediate_rows;
    entry.profile = std::move(profile);
    journal.Record(std::move(entry));
  }
}

}  // namespace

QueryEngine::QueryEngine(const rdf::TripleSource* source, Options options)
    : source_(source), options_(options) {}

Result<ResultTable> QueryEngine::ExecuteString(std::string_view text,
                                               QueryStats* stats) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExecuteImpl(q, stats, text);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraphString(
    std::string_view text, QueryStats* stats) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExecuteGraphImpl(q, stats, text);
}

Result<ResultTable> QueryEngine::Execute(const Query& query,
                                         QueryStats* stats) const {
  return ExecuteImpl(query, stats, {});
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraph(
    const Query& query, QueryStats* stats) const {
  return ExecuteGraphImpl(query, stats, {});
}

QueryPlan QueryEngine::Plan(const Query& query) const {
  return PlanQuery(query, *source_, ToPlannerOptions(options_));
}

Result<ResultTable> QueryEngine::ExecutePlanned(const Query& query,
                                                const QueryPlan& plan,
                                                QueryStats* stats,
                                                std::string_view text) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "use ExecuteGraph for CONSTRUCT/DESCRIBE queries");
  }
  return ExecutePlannedImpl(query, plan, stats, text);
}

std::string QueryEngine::Explain(const Query& query) const {
  return Plan(query).ToString();
}

Result<std::string> QueryEngine::ExplainString(std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return Explain(q);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraphImpl(
    const Query& query, QueryStats* stats, std::string_view text) const {
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;
  const rdf::Dictionary& dict = source_->dict();
  std::vector<rdf::ParsedTriple> out;

  const bool profiling = options_.profile || ProfilingForced();
  QueryPlan plan = PlanQuery(query, *source_, ToPlannerOptions(options_));
  obs::OperatorProfile skeleton;
  if (profiling) skeleton = BuildProfileSkeleton(plan.root);
  obs::OperatorProfile* prof = profiling ? &skeleton : nullptr;
  uint64_t intermediate = 0;
  // Counted separately from `out`: `return out;` moves the vector into the
  // Result before the fold below destructs, so out.size() would read the
  // moved-from (empty) vector there.
  uint64_t emitted = 0;

  // Record latency, output rows, profile and journal on every exit path.
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const uint64_t& emitted;
    QueryStats* stats;
    const Query& query;
    std::string_view text;
    const uint64_t& intermediate;
    obs::OperatorProfile* prof;
    ~ExecFold() {
      const double us = sw.ElapsedMicros();
      metrics.rows_out.Increment(emitted);
      metrics.execute_us.RecordDouble(us);
      if (stats != nullptr) {
        stats->rows_out = emitted;
        stats->latency_us = us;
      }
      FinalizeObservability(query, text, us, emitted, intermediate, prof,
                            stats);
    }
  } fold{metrics, sw, emitted, stats, query, text, intermediate, prof};
  std::set<std::string> seen;
  auto emit = [&](Term s, Term p, Term o) {
    std::string key =
        s.ToNTriples() + "\x01" + p.ToNTriples() + "\x01" + o.ToNTriples();
    if (seen.insert(std::move(key)).second) {
      out.push_back({std::move(s), std::move(p), std::move(o)});
      ++emitted;
    }
  };

  bool budget_blown = false;
  auto eval_where = [&]() {
    Executor executor(source_, RowWidth(plan), prof, options_.budget);
    obs::OperatorTimer timer(prof);
    std::vector<ColumnBatch> solutions =
        RunRootGroup(executor, plan, EffectiveExecMode(options_));
    timer.Finish(TotalActiveRows(solutions));
    metrics.intermediate_rows.Increment(executor.intermediate_rows());
    intermediate = executor.intermediate_rows();
    if (stats != nullptr) {
      stats->intermediate_rows = executor.intermediate_rows();
    }
    budget_blown = executor.budget_exhausted();
    return solutions;
  };

  if (query.form == QueryForm::kConstruct) {
    std::vector<ColumnBatch> solutions = eval_where();
    if (budget_blown) {
      return Status::ResourceExhausted("query exceeded its execution budget");
    }
    // Resolve template positions to slots once, not per solution.
    struct TemplateStep {
      SlotId s_slot, p_slot, o_slot;
      Term s_const, p_const, o_const;
    };
    std::vector<TemplateStep> compiled;
    for (const TriplePatternAst& tmpl : query.construct_template) {
      TemplateStep ts{kNoSlot, kNoSlot, kNoSlot, {}, {}, {}};
      auto fill = [&](const NodeOrVar& n, SlotId* slot, Term* c) {
        if (IsVar(n)) {
          *slot = plan.SlotOf(AsVar(n).name);
        } else {
          *c = AsTerm(n);
        }
      };
      fill(tmpl.s, &ts.s_slot, &ts.s_const);
      fill(tmpl.p, &ts.p_slot, &ts.p_const);
      fill(tmpl.o, &ts.o_slot, &ts.o_const);
      compiled.push_back(std::move(ts));
    }
    const BatchListView view(solutions);
    // Pre-size for the dedup-free upper bound (solutions x templates);
    // push_back never reallocates below.
    out.reserve(view.total() * compiled.size());
    view.ForEachRow(0, view.total(), [&](const ColumnBatch& b,
                                         uint32_t phys) {
      for (const TemplateStep& ts : compiled) {
        auto resolve = [&](SlotId slot, const Term& c, Term* t) {
          if (slot == kNoSlot) {
            *t = c;
            return true;
          }
          const TermId id = b.at(phys, slot);
          if (id == kInvalidTermId) return false;
          *t = dict.term(id);
          return true;
        };
        Term s, p, o;
        if (!resolve(ts.s_slot, ts.s_const, &s) ||
            !resolve(ts.p_slot, ts.p_const, &p) ||
            !resolve(ts.o_slot, ts.o_const, &o)) {
          continue;  // unbound variable: skip this template instance
        }
        if (s.is_literal() || !p.is_iri()) continue;  // invalid RDF
        emit(std::move(s), std::move(p), std::move(o));
      }
    });
    return out;
  }

  if (query.form == QueryForm::kDescribe) {
    // Collect the resources to describe.
    std::vector<TermId> resources;
    std::vector<SlotId> target_slots;
    bool has_var_target = false;
    for (const NodeOrVar& target : query.describe_targets) {
      if (IsVar(target)) {
        has_var_target = true;
        target_slots.push_back(plan.SlotOf(AsVar(target).name));
      } else {
        TermId id = dict.Lookup(AsTerm(target));
        if (id != kInvalidTermId) resources.push_back(id);
      }
    }
    if (has_var_target) {
      std::vector<ColumnBatch> solutions = eval_where();
      if (budget_blown) {
        return Status::ResourceExhausted(
            "query exceeded its execution budget");
      }
      const BatchListView view(solutions);
      resources.reserve(resources.size() +
                        view.total() * target_slots.size());
      view.ForEachRow(0, view.total(), [&](const ColumnBatch& b,
                                           uint32_t phys) {
        for (SlotId slot : target_slots) {
          if (slot == kNoSlot) continue;
          const TermId id = b.at(phys, slot);
          if (id != kInvalidTermId) resources.push_back(id);
        }
      });
    }
    std::sort(resources.begin(), resources.end());
    resources.erase(std::unique(resources.begin(), resources.end()),
                    resources.end());

    // Emit every triple where the resource is subject or object.
    for (TermId r : resources) {
      source_->Scan({r, kInvalidTermId, kInvalidTermId},
                    [&](const rdf::Triple& t) {
                      emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                      return true;
                    });
      source_->Scan({kInvalidTermId, kInvalidTermId, r},
                    [&](const rdf::Triple& t) {
                      emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                      return true;
                    });
    }
    return out;
  }

  return Status::InvalidArgument(
      "ExecuteGraph expects a CONSTRUCT or DESCRIBE query");
}

Result<ResultTable> QueryEngine::ExecuteImpl(const Query& query,
                                             QueryStats* stats,
                                             std::string_view text) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "use ExecuteGraph for CONSTRUCT/DESCRIBE queries");
  }
  return ExecutePlannedImpl(query, Plan(query), stats, text);
}

Result<ResultTable> QueryEngine::ExecutePlannedImpl(
    const Query& query, const QueryPlan& plan, QueryStats* stats,
    std::string_view text) const {
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;

  const bool profiling = options_.profile || ProfilingForced();
  obs::OperatorProfile skeleton;
  if (profiling) skeleton = BuildProfileSkeleton(plan.root);
  obs::OperatorProfile* prof = profiling ? &skeleton : nullptr;

  Executor executor(source_, RowWidth(plan), prof, options_.budget);
  obs::OperatorTimer root_timer(prof);
  std::vector<ColumnBatch> solutions =
      RunRootGroup(executor, plan, EffectiveExecMode(options_));
  const size_t total_rows = TotalActiveRows(solutions);
  root_timer.Finish(total_rows);
  metrics.intermediate_rows.Increment(executor.intermediate_rows());
  const uint64_t intermediate = executor.intermediate_rows();
  if (stats != nullptr) {
    stats->intermediate_rows = intermediate;
  }

  // Record latency, output rows, profile and journal on every exit path.
  uint64_t rows_out = 0;
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const uint64_t& rows_out;
    QueryStats* stats;
    const Query& query;
    std::string_view text;
    uint64_t intermediate;
    obs::OperatorProfile* prof;
    ~ExecFold() {
      const double us = sw.ElapsedMicros();
      metrics.rows_out.Increment(rows_out);
      metrics.execute_us.RecordDouble(us);
      if (stats != nullptr) {
        stats->rows_out = rows_out;
        stats->latency_us = us;
      }
      FinalizeObservability(query, text, us, rows_out, intermediate, prof,
                            stats);
    }
  } fold{metrics, sw, rows_out, stats, query, text, intermediate, prof};

  // A blown budget leaves a deliberately truncated solution table; discard
  // it (the fold above still records latency and journals the query).
  if (executor.budget_exhausted()) {
    return Status::ResourceExhausted("query exceeded its execution budget");
  }

  const rdf::Dictionary& dict = source_->dict();

  if (query.form == QueryForm::kAsk) {
    ResultTable table;
    table.ask_result = total_rows > 0;
    return table;
  }

  // Determine output columns.
  std::vector<std::string> columns = query.select_vars;
  if (columns.empty() && query.aggregates.empty()) {
    columns = plan.visible_vars;
  }
  std::vector<SlotId> column_slots;
  column_slots.reserve(columns.size());
  for (const std::string& v : columns) column_slots.push_back(plan.SlotOf(v));

  // ---- Aggregation path ----
  if (!query.aggregates.empty()) {
    std::vector<std::string> out_columns = query.group_by;
    for (const Aggregate& a : query.aggregates) out_columns.push_back(a.alias);
    ResultTable table(out_columns);

    std::vector<SlotId> group_slots;
    group_slots.reserve(query.group_by.size());
    for (const std::string& v : query.group_by) {
      group_slots.push_back(plan.SlotOf(v));
    }

    // Group solution rows by the group-by key (slot values; unbound = 0),
    // reading the key straight off the batch columns. The map is FNV-hashed
    // (formerly a std::map over TermId vectors, a tree comparing whole keys
    // per step); keys are sorted once afterwards so group output order —
    // ascending TermId-vector order, pinned by the determinism test — is
    // unchanged.
    std::unordered_map<std::vector<TermId>, std::vector<RowRef>, TermVecHash>
        groups;
    std::vector<TermId> key;
    for (size_t bi = 0; bi < solutions.size(); ++bi) {
      const ColumnBatch& b = solutions[bi];
      for (size_t i = 0; i < b.active(); ++i) {
        const RowRef ref{static_cast<uint32_t>(bi), b.ActiveRow(i)};
        key.clear();
        for (SlotId slot : group_slots) {
          key.push_back(SlotAt(solutions, ref, slot));
        }
        groups[key].push_back(ref);
      }
    }
    if (groups.empty() && query.group_by.empty()) {
      groups[{}] = {};  // aggregates over zero rows still yield one row
    }
    std::vector<const std::vector<TermId>*> group_keys;
    group_keys.reserve(groups.size());
    for (const auto& kv : groups) group_keys.push_back(&kv.first);
    std::sort(group_keys.begin(), group_keys.end(),
              [](const std::vector<TermId>* a, const std::vector<TermId>* b) {
                return *a < *b;
              });

    table.Reserve(groups.size());
    for (const std::vector<TermId>* group_key : group_keys) {
      const std::vector<RowRef>& members = groups.find(*group_key)->second;
      std::vector<ResultCell> row;
      if (!members.empty()) {
        for (SlotId slot : group_slots) {
          row.push_back(CellAt(dict, solutions, members.front(), slot));
        }
      } else {
        for (size_t i = 0; i < group_slots.size(); ++i) {
          row.push_back(ResultCell{{}, false});
        }
      }
      for (const Aggregate& agg : query.aggregates) {
        if (agg.fn == Aggregate::Fn::kCount && agg.var.empty()) {
          row.push_back(ResultCell{
              Term::IntLiteral(static_cast<int64_t>(members.size()))});
          continue;
        }
        // Collect the argument terms (bound only). DISTINCT dedups on the
        // dictionary id: interning is injective, so id equality is term
        // equality.
        SlotId arg_slot = plan.SlotOf(agg.var);
        std::vector<Term> values;
        std::set<TermId> distinct_seen;
        for (const RowRef member : members) {
          const TermId id = SlotAt(solutions, member, arg_slot);
          if (id == kInvalidTermId) continue;
          if (agg.distinct && !distinct_seen.insert(id).second) continue;
          values.push_back(dict.term(id));
        }
        switch (agg.fn) {
          case Aggregate::Fn::kCount:
            row.push_back(ResultCell{
                Term::IntLiteral(static_cast<int64_t>(values.size()))});
            break;
          case Aggregate::Fn::kSum:
          case Aggregate::Fn::kAvg: {
            double sum = 0;
            uint64_t n = 0;
            for (const Term& t : values) {
              Result<double> v = t.AsDouble();
              if (v.ok()) {
                sum += v.ValueOrDie();
                ++n;
              }
            }
            double result = agg.fn == Aggregate::Fn::kSum
                                ? sum
                                : (n ? sum / static_cast<double>(n) : 0.0);
            row.push_back(ResultCell{Term::DoubleLiteral(result)});
            break;
          }
          case Aggregate::Fn::kMin:
          case Aggregate::Fn::kMax: {
            if (values.empty()) {
              row.push_back(ResultCell{{}, false});
              break;
            }
            const Term* best = &values.front();
            for (const Term& t : values) {
              Result<int> c = CompareTerms(t, *best);
              if (c.ok() &&
                  ((agg.fn == Aggregate::Fn::kMin && c.ValueOrDie() < 0) ||
                   (agg.fn == Aggregate::Fn::kMax && c.ValueOrDie() > 0))) {
                best = &t;
              }
            }
            row.push_back(ResultCell{*best});
            break;
          }
        }
      }
      table.AddRow(std::move(row));
    }
    rows_out = table.num_rows();
    return table;
  }

  // ---- Plain projection path (late materialization) ----
  // ORDER BY, DISTINCT and OFFSET/LIMIT permute and prune RowRefs over the
  // batch list; only the rows that survive every modifier materialize
  // Terms. The row engine materialized the full ResultTable first — same
  // rows, same order, fewer Term copies.
  std::vector<RowRef> refs = CollectRefs(solutions);

  // ORDER BY. Sort keys resolve through the projected columns, as before:
  // an ORDER BY variable that is not projected is silently ignored
  // (longstanding behavior, preserved).
  if (!query.order_by.empty()) {
    std::vector<SlotId> key_slots;
    key_slots.reserve(query.order_by.size());
    for (const OrderKey& k : query.order_by) {
      SlotId slot = kNoSlot;
      for (size_t c = 0; c < columns.size(); ++c) {
        if (columns[c] == k.var) {
          slot = column_slots[c];
          break;
        }
      }
      key_slots.push_back(slot);
    }
    std::stable_sort(
        refs.begin(), refs.end(), [&](const RowRef a, const RowRef b) {
          for (size_t i = 0; i < key_slots.size(); ++i) {
            // A key over an unprojected variable resolved to kNoSlot above;
            // SlotAt then yields "unbound" on both sides and the key is
            // skipped via the both-unbound case.
            const TermId ia = SlotAt(solutions, a, key_slots[i]);
            const TermId ib = SlotAt(solutions, b, key_slots[i]);
            if (ia == ib) continue;  // same id: identical term
            if (ia == kInvalidTermId) return query.order_by[i].ascending;
            if (ib == kInvalidTermId) return !query.order_by[i].ascending;
            int cv = CompareCellsForOrder(dict.term(ia), dict.term(ib));
            if (cv != 0) {
              return query.order_by[i].ascending ? cv < 0 : cv > 0;
            }
          }
          return false;
        });
  }

  // DISTINCT: first occurrence wins, keyed on the projected TermId tuple
  // (FNV-hashed). Equivalent to the former serialized-string key because
  // interning is injective — equal ids iff equal terms — and unbound cells
  // are uniformly kInvalidTermId.
  if (query.distinct) {
    std::unordered_set<std::vector<TermId>, TermVecHash> seen;
    std::vector<RowRef> kept;
    std::vector<TermId> key;
    for (const RowRef r : refs) {
      key.clear();
      for (SlotId slot : column_slots) key.push_back(SlotAt(solutions, r, slot));
      if (seen.insert(key).second) kept.push_back(r);
    }
    refs = std::move(kept);
  }

  // OFFSET / LIMIT: slice the reference list before materializing.
  if (query.offset > 0 || query.limit >= 0) {
    const size_t begin =
        std::min(refs.size(), static_cast<size_t>(std::max<int64_t>(
                                  0, query.offset)));
    size_t end = refs.size();
    if (query.limit >= 0) {
      end = std::min(end, begin + static_cast<size_t>(query.limit));
    }
    refs.assign(refs.begin() + static_cast<ptrdiff_t>(begin),
                refs.begin() + static_cast<ptrdiff_t>(end));
  }

  ResultTable table(columns);
  table.Reserve(refs.size());
  for (const RowRef r : refs) {
    std::vector<ResultCell> row;
    row.reserve(columns.size());
    for (SlotId slot : column_slots) {
      row.push_back(CellAt(dict, solutions, r, slot));
    }
    table.AddRow(std::move(row));
  }

  rows_out = table.num_rows();
  return table;
}

Result<std::string> QueryEngine::ExplainAnalyzeImpl(
    const Query& query, std::string_view text) const {
  Options opts = options_;
  opts.profile = true;
  QueryEngine profiled(source_, opts);
  QueryStats stats;
  // Threads `text` through so a journal-admitted run keeps the query text.
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    LODVIZ_ASSIGN_OR_RETURN(std::vector<rdf::ParsedTriple> discarded,
                            profiled.ExecuteGraphImpl(query, &stats, text));
    (void)discarded;
  } else {
    LODVIZ_ASSIGN_OR_RETURN(ResultTable discarded,
                            profiled.ExecuteImpl(query, &stats, text));
    (void)discarded;
  }

  char line[160];
  std::snprintf(line, sizeof(line),
                "explain analyze  fingerprint=0x%016llx\n",
                static_cast<unsigned long long>(stats.fingerprint));
  std::string out = line;
  out += obs::ProfileTreeString(stats.profile.root);
  std::snprintf(
      line, sizeof(line),
      "total: rows_out=%llu  intermediate_rows=%llu  time=%.1fus\n",
      static_cast<unsigned long long>(stats.rows_out),
      static_cast<unsigned long long>(stats.intermediate_rows),
      stats.latency_us);
  out += line;
  return out;
}

Result<std::string> QueryEngine::ExplainAnalyzeString(
    std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExplainAnalyzeImpl(q, text);
}

}  // namespace lodviz::sparql
