#include "sparql/engine.h"

#include <algorithm>
#include <map>
#include <set>

#include "common/stopwatch.h"
#include "obs/trace.h"
#include "sparql/executor.h"
#include "sparql/parser.h"
#include "sparql/planner.h"

namespace lodviz::sparql {

namespace {

using rdf::kInvalidTermId;
using rdf::Term;
using rdf::TermId;

Result<Query> ParseTraced(std::string_view text) {
  LODVIZ_TRACE_SPAN("sparql.parse");
  return ParseQuery(text);
}

/// Row width for executor tables: at least one slot so a zero-variable
/// query (e.g. ASK with only constants) can still represent its single
/// empty seed solution.
size_t RowWidth(const QueryPlan& plan) {
  return std::max<size_t>(1, plan.num_slots);
}

ResultCell CellFor(const rdf::Dictionary& dict, const TermId* row,
                   SlotId slot) {
  ResultCell cell;
  if (slot == kNoSlot || row[slot] == kInvalidTermId) {
    cell.bound = false;
  } else {
    cell.term = dict.term(row[slot]);
  }
  return cell;
}

std::string RowKey(const std::vector<ResultCell>& row) {
  std::string key;
  for (const ResultCell& c : row) {
    key += c.bound ? c.term.ToNTriples() : "~";
    key += '\x01';
  }
  return key;
}

PlannerOptions ToPlannerOptions(const QueryEngine::Options& o) {
  PlannerOptions p;
  p.optimize_join_order = o.optimize_join_order;
  p.force_join = o.force_join;
  return p;
}

}  // namespace

QueryEngine::QueryEngine(const rdf::TripleSource* source, Options options)
    : source_(source), options_(options) {}

Result<ResultTable> QueryEngine::ExecuteString(std::string_view text,
                                               QueryStats* stats) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return Execute(q, stats);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraphString(
    std::string_view text, QueryStats* stats) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return ExecuteGraph(q, stats);
}

std::string QueryEngine::Explain(const Query& query) const {
  QueryPlan plan = PlanQuery(query, *source_, ToPlannerOptions(options_));
  return plan.ToString();
}

Result<std::string> QueryEngine::ExplainString(std::string_view text) const {
  LODVIZ_ASSIGN_OR_RETURN(Query q, ParseTraced(text));
  return Explain(q);
}

Result<std::vector<rdf::ParsedTriple>> QueryEngine::ExecuteGraph(
    const Query& query, QueryStats* stats) const {
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;
  const rdf::Dictionary& dict = source_->dict();
  std::vector<rdf::ParsedTriple> out;
  // Record latency and output rows on every exit path.
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const std::vector<rdf::ParsedTriple>& out;
    QueryStats* stats;
    ~ExecFold() {
      metrics.rows_out.Increment(out.size());
      metrics.execute_us.RecordDouble(sw.ElapsedMicros());
      if (stats != nullptr) stats->rows_out = out.size();
    }
  } fold{metrics, sw, out, stats};
  std::set<std::string> seen;
  auto emit = [&](Term s, Term p, Term o) {
    std::string key =
        s.ToNTriples() + "\x01" + p.ToNTriples() + "\x01" + o.ToNTriples();
    if (seen.insert(std::move(key)).second) {
      out.push_back({std::move(s), std::move(p), std::move(o)});
    }
  };

  QueryPlan plan = PlanQuery(query, *source_, ToPlannerOptions(options_));
  auto eval_where = [&]() {
    Executor executor(source_, RowWidth(plan));
    BindingTable seeds(RowWidth(plan));
    seeds.AppendEmptyRow();
    BindingTable solutions = executor.EvalGroup(plan.root, seeds);
    metrics.intermediate_rows.Increment(executor.intermediate_rows());
    if (stats != nullptr) {
      stats->intermediate_rows = executor.intermediate_rows();
    }
    return solutions;
  };

  if (query.form == QueryForm::kConstruct) {
    BindingTable solutions = eval_where();
    // Resolve template positions to slots once, not per solution.
    struct TemplateStep {
      SlotId s_slot, p_slot, o_slot;
      Term s_const, p_const, o_const;
    };
    std::vector<TemplateStep> compiled;
    for (const TriplePatternAst& tmpl : query.construct_template) {
      TemplateStep ts{kNoSlot, kNoSlot, kNoSlot, {}, {}, {}};
      auto fill = [&](const NodeOrVar& n, SlotId* slot, Term* c) {
        if (IsVar(n)) {
          *slot = plan.SlotOf(AsVar(n).name);
        } else {
          *c = AsTerm(n);
        }
      };
      fill(tmpl.s, &ts.s_slot, &ts.s_const);
      fill(tmpl.p, &ts.p_slot, &ts.p_const);
      fill(tmpl.o, &ts.o_slot, &ts.o_const);
      compiled.push_back(std::move(ts));
    }
    for (size_t i = 0; i < solutions.num_rows(); ++i) {
      const TermId* row = solutions.row(i);
      for (const TemplateStep& ts : compiled) {
        auto resolve = [&](SlotId slot, const Term& c, Term* t) {
          if (slot == kNoSlot) {
            *t = c;
            return true;
          }
          if (row[slot] == kInvalidTermId) return false;
          *t = dict.term(row[slot]);
          return true;
        };
        Term s, p, o;
        if (!resolve(ts.s_slot, ts.s_const, &s) ||
            !resolve(ts.p_slot, ts.p_const, &p) ||
            !resolve(ts.o_slot, ts.o_const, &o)) {
          continue;  // unbound variable: skip this template instance
        }
        if (s.is_literal() || !p.is_iri()) continue;  // invalid RDF
        emit(std::move(s), std::move(p), std::move(o));
      }
    }
    return out;
  }

  if (query.form == QueryForm::kDescribe) {
    // Collect the resources to describe.
    std::vector<TermId> resources;
    std::vector<SlotId> target_slots;
    bool has_var_target = false;
    for (const NodeOrVar& target : query.describe_targets) {
      if (IsVar(target)) {
        has_var_target = true;
        target_slots.push_back(plan.SlotOf(AsVar(target).name));
      } else {
        TermId id = dict.Lookup(AsTerm(target));
        if (id != kInvalidTermId) resources.push_back(id);
      }
    }
    if (has_var_target) {
      BindingTable solutions = eval_where();
      for (size_t i = 0; i < solutions.num_rows(); ++i) {
        const TermId* row = solutions.row(i);
        for (SlotId slot : target_slots) {
          if (slot != kNoSlot && row[slot] != kInvalidTermId) {
            resources.push_back(row[slot]);
          }
        }
      }
    }
    std::sort(resources.begin(), resources.end());
    resources.erase(std::unique(resources.begin(), resources.end()),
                    resources.end());

    // Emit every triple where the resource is subject or object.
    for (TermId r : resources) {
      source_->Scan({r, kInvalidTermId, kInvalidTermId},
                    [&](const rdf::Triple& t) {
                      emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                      return true;
                    });
      source_->Scan({kInvalidTermId, kInvalidTermId, r},
                    [&](const rdf::Triple& t) {
                      emit(dict.term(t.s), dict.term(t.p), dict.term(t.o));
                      return true;
                    });
    }
    return out;
  }

  return Status::InvalidArgument(
      "ExecuteGraph expects a CONSTRUCT or DESCRIBE query");
}

Result<ResultTable> QueryEngine::Execute(const Query& query,
                                         QueryStats* stats) const {
  if (query.form == QueryForm::kConstruct ||
      query.form == QueryForm::kDescribe) {
    return Status::InvalidArgument(
        "use ExecuteGraph for CONSTRUCT/DESCRIBE queries");
  }
  LODVIZ_TRACE_SPAN("sparql.execute");
  SparqlMetrics& metrics = SparqlMetrics::Get();
  metrics.queries.Increment();
  Stopwatch sw;

  QueryPlan plan = PlanQuery(query, *source_, ToPlannerOptions(options_));
  Executor executor(source_, RowWidth(plan));
  BindingTable seeds(RowWidth(plan));
  seeds.AppendEmptyRow();
  BindingTable solutions = executor.EvalGroup(plan.root, seeds);
  metrics.intermediate_rows.Increment(executor.intermediate_rows());
  if (stats != nullptr) {
    stats->intermediate_rows = executor.intermediate_rows();
  }

  // Record latency and output rows on every exit path.
  uint64_t rows_out = 0;
  struct ExecFold {
    SparqlMetrics& metrics;
    const Stopwatch& sw;
    const uint64_t& rows_out;
    QueryStats* stats;
    ~ExecFold() {
      metrics.rows_out.Increment(rows_out);
      metrics.execute_us.RecordDouble(sw.ElapsedMicros());
      if (stats != nullptr) stats->rows_out = rows_out;
    }
  } fold{metrics, sw, rows_out, stats};

  const rdf::Dictionary& dict = source_->dict();

  if (query.form == QueryForm::kAsk) {
    ResultTable table;
    table.ask_result = solutions.num_rows() > 0;
    return table;
  }

  // Determine output columns.
  std::vector<std::string> columns = query.select_vars;
  if (columns.empty() && query.aggregates.empty()) {
    columns = plan.visible_vars;
  }
  std::vector<SlotId> column_slots;
  column_slots.reserve(columns.size());
  for (const std::string& v : columns) column_slots.push_back(plan.SlotOf(v));

  // ---- Aggregation path ----
  if (!query.aggregates.empty()) {
    std::vector<std::string> out_columns = query.group_by;
    for (const Aggregate& a : query.aggregates) out_columns.push_back(a.alias);
    ResultTable table(out_columns);

    std::vector<SlotId> group_slots;
    group_slots.reserve(query.group_by.size());
    for (const std::string& v : query.group_by) {
      group_slots.push_back(plan.SlotOf(v));
    }

    // Group solution rows by the group-by key (slot values; unbound = 0).
    std::map<std::vector<TermId>, std::vector<size_t>> groups;
    for (size_t i = 0; i < solutions.num_rows(); ++i) {
      const TermId* row = solutions.row(i);
      std::vector<TermId> key;
      key.reserve(group_slots.size());
      for (SlotId slot : group_slots) {
        key.push_back(slot == kNoSlot ? kInvalidTermId : row[slot]);
      }
      groups[std::move(key)].push_back(i);
    }
    if (groups.empty() && query.group_by.empty()) {
      groups[{}] = {};  // aggregates over zero rows still yield one row
    }

    for (const auto& [key, members] : groups) {
      std::vector<ResultCell> row;
      if (!members.empty()) {
        const TermId* first = solutions.row(members.front());
        for (SlotId slot : group_slots) {
          row.push_back(CellFor(dict, first, slot));
        }
      } else {
        for (size_t i = 0; i < group_slots.size(); ++i) {
          row.push_back(ResultCell{{}, false});
        }
      }
      for (const Aggregate& agg : query.aggregates) {
        if (agg.fn == Aggregate::Fn::kCount && agg.var.empty()) {
          row.push_back(ResultCell{
              Term::IntLiteral(static_cast<int64_t>(members.size()))});
          continue;
        }
        // Collect the argument terms (bound only). DISTINCT dedups on the
        // dictionary id: interning is injective, so id equality is term
        // equality.
        SlotId arg_slot = plan.SlotOf(agg.var);
        std::vector<Term> values;
        std::set<TermId> distinct_seen;
        for (size_t member : members) {
          const TermId* mrow = solutions.row(member);
          if (arg_slot == kNoSlot || mrow[arg_slot] == kInvalidTermId) {
            continue;
          }
          if (agg.distinct && !distinct_seen.insert(mrow[arg_slot]).second) {
            continue;
          }
          values.push_back(dict.term(mrow[arg_slot]));
        }
        switch (agg.fn) {
          case Aggregate::Fn::kCount:
            row.push_back(ResultCell{
                Term::IntLiteral(static_cast<int64_t>(values.size()))});
            break;
          case Aggregate::Fn::kSum:
          case Aggregate::Fn::kAvg: {
            double sum = 0;
            uint64_t n = 0;
            for (const Term& t : values) {
              Result<double> v = t.AsDouble();
              if (v.ok()) {
                sum += v.ValueOrDie();
                ++n;
              }
            }
            double result = agg.fn == Aggregate::Fn::kSum
                                ? sum
                                : (n ? sum / static_cast<double>(n) : 0.0);
            row.push_back(ResultCell{Term::DoubleLiteral(result)});
            break;
          }
          case Aggregate::Fn::kMin:
          case Aggregate::Fn::kMax: {
            if (values.empty()) {
              row.push_back(ResultCell{{}, false});
              break;
            }
            const Term* best = &values.front();
            for (const Term& t : values) {
              Result<int> c = CompareTerms(t, *best);
              if (c.ok() &&
                  ((agg.fn == Aggregate::Fn::kMin && c.ValueOrDie() < 0) ||
                   (agg.fn == Aggregate::Fn::kMax && c.ValueOrDie() > 0))) {
                best = &t;
              }
            }
            row.push_back(ResultCell{*best});
            break;
          }
        }
      }
      table.AddRow(std::move(row));
    }
    rows_out = table.num_rows();
    return table;
  }

  // ---- Plain projection path ----
  ResultTable table(columns);
  for (size_t i = 0; i < solutions.num_rows(); ++i) {
    const TermId* srow = solutions.row(i);
    std::vector<ResultCell> row;
    row.reserve(columns.size());
    for (SlotId slot : column_slots) row.push_back(CellFor(dict, srow, slot));
    table.AddRow(std::move(row));
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    std::vector<int> key_idx;
    for (const OrderKey& k : query.order_by) {
      key_idx.push_back(table.ColumnIndex(k.var));
    }
    std::vector<std::vector<ResultCell>> rows = table.rows();
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const std::vector<ResultCell>& a,
                         const std::vector<ResultCell>& b) {
                       for (size_t i = 0; i < key_idx.size(); ++i) {
                         int idx = key_idx[i];
                         if (idx < 0) continue;
                         const ResultCell& ca = a[idx];
                         const ResultCell& cb = b[idx];
                         if (!ca.bound && !cb.bound) continue;
                         if (!ca.bound) return query.order_by[i].ascending;
                         if (!cb.bound) return !query.order_by[i].ascending;
                         Result<int> c = CompareTerms(ca.term, cb.term);
                         int cv = c.ok() ? c.ValueOrDie() : 0;
                         if (cv != 0) {
                           return query.order_by[i].ascending ? cv < 0
                                                              : cv > 0;
                         }
                       }
                       return false;
                     });
    ResultTable sorted(columns);
    for (auto& r : rows) sorted.AddRow(std::move(r));
    table = std::move(sorted);
  }

  // DISTINCT.
  if (query.distinct) {
    ResultTable deduped(columns);
    std::set<std::string> seen;
    for (const auto& row : table.rows()) {
      if (seen.insert(RowKey(row)).second) deduped.AddRow(row);
    }
    table = std::move(deduped);
  }

  // OFFSET / LIMIT.
  if (query.offset > 0 || query.limit >= 0) {
    ResultTable sliced(columns);
    int64_t skipped = 0, taken = 0;
    for (const auto& row : table.rows()) {
      if (skipped < query.offset) {
        ++skipped;
        continue;
      }
      if (query.limit >= 0 && taken >= query.limit) break;
      sliced.AddRow(row);
      ++taken;
    }
    table = std::move(sliced);
  }

  rows_out = table.num_rows();
  return table;
}

}  // namespace lodviz::sparql
